GO ?= go

.PHONY: all build test check vet fmt-check race bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: static checks plus the race detector on the
# packages with real concurrency (engine's job runner, obs's collector).
check: vet fmt-check race

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./internal/engine/... ./internal/obs/...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .
