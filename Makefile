GO ?= go

.PHONY: all build test check vet fmt-check ctxcheck race determinism fuzz-short bounded-growth golden bench bench-snapshot bench-gate crash

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: static checks (including the context-first API
# gate), the race detector on the packages with real concurrency
# (engine's pooled job runner, the parallel worker pool, olap's pooled
# cube builds, similarity's pooled signature/probe kernels, obs's
# collector plus its export/critpath/window subpackages — all covered by
# the ./internal/obs/... wildcard, including the windowed-metrics bucket
# rings — the live netio path, fault injector, and the multi-tenant
# serve front end plus its flight recorder), one short round of each fuzz
# harness, the report determinism check including cross-pool-width byte
# identity, and the kernel benchmark regression gate against the previous
# PR's snapshot.
check: vet fmt-check ctxcheck race fuzz-short determinism bounded-growth bench-gate

vet:
	$(GO) vet ./...

# ctxcheck rejects exported functions in the I/O-bearing packages
# (core, engine, netio, serve) whose names announce I/O or execution
# but that do not take a leading context.Context (Deprecated: bridges
# are exempt). See cmd/ctxcheck.
ctxcheck:
	$(GO) run ./cmd/ctxcheck

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./internal/engine/... ./internal/obs/... \
		./internal/netio/... ./internal/faults/... \
		./internal/parallel/... ./internal/olap/... ./internal/similarity/... \
		./internal/cache/... ./internal/serve/... ./internal/ingest/... \
		./internal/durable/... ./internal/lp/... ./internal/placement/...

# fuzz-short runs each native fuzz target briefly against its checked-in
# seed corpus — a smoke round, not a campaign. One -fuzz invocation per
# package (a go test restriction).
fuzz-short:
	$(GO) test ./internal/sql -run '^$$' -fuzz FuzzParse -fuzztime 5s
	$(GO) test ./internal/faults -run '^$$' -fuzz FuzzParse -fuzztime 5s
	$(GO) test ./internal/ingest -run '^$$' -fuzz FuzzRecordCodec -fuzztime 5s
	$(GO) test ./internal/durable -run '^$$' -fuzz FuzzWALFrame -fuzztime 5s

# crash runs the full crash-consistency harness under the race detector:
# 20 seeded kill-restart trials against a child bohrd (quiesced kills
# with byte-identical pinned queries, mid-stream kills inside the
# acked-but-unapplied window, racy kills landing mid-request, torn WAL
# tails), plus the recover-equals-never-crashed property and the
# server-crash chaos leg.
crash:
	$(GO) test -race ./internal/durable/crashtest -run TestCrashRecovery -count=1 -v
	$(GO) test -race ./internal/serve -run 'TestIngestServerCrashChaos|TestRecoverEquivalentToNeverCrashed' -count=1

# determinism: two bohrctl runs with the same seed and fault schedule must
# emit byte-identical JSON reports, and the report must be byte-identical
# whether the parallel kernels run sequentially (width 1) or pooled
# (width 8).
determinism:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	args="-workload bigdata-scan -scheme bohr -seed 7 -json -faults crash:site=2,start=40,end=70;degrade:site=0,start=0,end=120,factor=0.3"; \
	$(GO) run ./cmd/bohrctl $$args > "$$tmp/a.json"; \
	$(GO) run ./cmd/bohrctl $$args > "$$tmp/b.json"; \
	if ! cmp -s "$$tmp/a.json" "$$tmp/b.json"; then \
		echo "determinism: reports differ across identical runs"; \
		diff "$$tmp/a.json" "$$tmp/b.json" | head; exit 1; \
	fi; \
	grep -q '"fault_events"' "$$tmp/a.json" || \
		{ echo "determinism: report missing fault_events"; exit 1; }; \
	BOHR_PARALLEL_WIDTH=1 $(GO) run ./cmd/bohrctl $$args > "$$tmp/w1.json"; \
	BOHR_PARALLEL_WIDTH=8 $(GO) run ./cmd/bohrctl $$args > "$$tmp/w8.json"; \
	if ! cmp -s "$$tmp/w1.json" "$$tmp/w8.json"; then \
		echo "determinism: reports differ between pool width 1 and 8"; \
		diff "$$tmp/w1.json" "$$tmp/w8.json" | head; exit 1; \
	fi; \
	dargs="-dynamic -workload tpcds -scheme bohr -seed 7 -json -cache-entries 4"; \
	BOHR_PARALLEL_WIDTH=1 $(GO) run ./cmd/bohrctl $$dargs > "$$tmp/d1.json"; \
	BOHR_PARALLEL_WIDTH=8 $(GO) run ./cmd/bohrctl $$dargs > "$$tmp/d8.json"; \
	if ! cmp -s "$$tmp/d1.json" "$$tmp/d8.json"; then \
		echo "determinism: evicting dynamic reports differ between pool width 1 and 8"; \
		diff "$$tmp/d1.json" "$$tmp/d8.json" | head; exit 1; \
	fi; \
	echo "determinism: OK (byte-identical faulted reports, width-independent, eviction-neutral)"

# bounded-growth: a long dynamic run must settle every memo cache at or
# below its configured capacity (the PR 5 eviction gate).
bounded-growth:
	$(GO) test ./internal/core -run 'TestDynamicCacheBounded|TestDynamicReportEvictionNeutral' -count=1

# golden rebuilds every checked-in golden file from current code. Run it
# after an intentional schema or trace change, eyeball the diff, and bump
# core.ReportSchemaVersion if the report layout moved.
golden:
	$(GO) test ./internal/experiments -run TestReportSchemaGolden -update
	$(GO) test ./internal/obs/export -run TestChromeTraceGolden -update

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-snapshot appends to the perf trajectory: one JSON document of
# benchmark measurements per PR (BENCH_<tag>.json at the repo root).
bench-snapshot:
	$(GO) run ./cmd/benchsnap -tag pr10

# bench-gate reruns the CPU kernels (cube build, minhash, probe scoring,
# the 64-site placement LP) and fails if any regresses past the tolerance
# band relative to the previous PR's snapshot. Kernels the baseline lacks
# are skipped, so adding coverage never blocks the gate.
bench-gate:
	$(GO) run ./cmd/benchsnap -gate -baseline BENCH_pr9.json -band 1.3
