GO ?= go

.PHONY: all build test check vet fmt-check race determinism bench bench-snapshot

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# check is the CI gate: static checks, the race detector on the packages
# with real concurrency (engine's job runner, obs's collector plus its
# export/critpath subpackages — covered by the ./internal/obs/... wildcard
# — the live netio path and fault injector), and the report determinism
# check.
check: vet fmt-check race determinism

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./internal/engine/... ./internal/obs/... \
		./internal/netio/... ./internal/faults/...

# determinism: two bohrctl runs with the same seed and fault schedule
# must emit byte-identical JSON reports.
determinism:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	args="-workload bigdata-scan -scheme bohr -seed 7 -json -faults crash:site=2,start=40,end=70;degrade:site=0,start=0,end=120,factor=0.3"; \
	$(GO) run ./cmd/bohrctl $$args > "$$tmp/a.json"; \
	$(GO) run ./cmd/bohrctl $$args > "$$tmp/b.json"; \
	if ! cmp -s "$$tmp/a.json" "$$tmp/b.json"; then \
		echo "determinism: reports differ across identical runs"; \
		diff "$$tmp/a.json" "$$tmp/b.json" | head; exit 1; \
	fi; \
	grep -q '"fault_events"' "$$tmp/a.json" || \
		{ echo "determinism: report missing fault_events"; exit 1; }; \
	echo "determinism: OK (byte-identical faulted reports)"

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# bench-snapshot appends to the perf trajectory: one JSON document of
# benchmark measurements per PR (BENCH_<tag>.json at the repo root).
bench-snapshot:
	$(GO) run ./cmd/benchsnap -tag pr3
