// Package bohr_test hosts the repository-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation
// (§8). Each benchmark regenerates its exhibit on a reduced setup; run
// cmd/bohrbench for the full-size rows and series.
//
//	go test -bench=. -benchmem
package bohr_test

import (
	"testing"

	"bohr/internal/experiments"
)

// benchSetup is small enough that a full figure regenerates in a few
// seconds per benchmark iteration.
func benchSetup() experiments.Setup {
	s := experiments.DefaultSetup()
	s.Datasets = 4
	s.RowsPerSite = 1500
	s.KeysPerPool = 250
	s.Runs = 1
	return s
}

func BenchmarkFigure6QCTRandomPlacement(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7QCTLocalityPlacement(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure7(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8ReductionRandomPlacement(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9ReductionLocalityPlacement(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure9(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10ComponentQCT(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure10(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11ComponentReduction(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12ReductionVsProbeK(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure12(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13QCTVsProbeK(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure13(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2DatasetProbing(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3SimilarityCheckingTime(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4RDDOverhead(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5LPSolvingTime(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table5(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6StorageOverhead(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table6(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverheadCubeGeneration(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.OverheadCubeGeneration(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPlacement(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPlacement(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7DynamicDatasets(b *testing.B) {
	s := benchSetup()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table7(s); err != nil {
			b.Fatal(err)
		}
	}
}
