// Command benchsnap snapshots the repository's performance trajectory:
// it runs a fixed set of benchmarks through testing.Benchmark and writes
// one machine-readable JSON document (BENCH_<tag>.json at the repo root
// by convention), so successive PRs accumulate comparable numbers.
//
//	go run ./cmd/benchsnap -tag pr3
//	make bench-snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"bohr/internal/experiments"
	"bohr/internal/obs"
	"bohr/internal/obs/critpath"
	"bohr/internal/obs/export"
)

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	SecondsPerOp float64 `json:"s_per_op"`
}

// Snapshot is the document benchsnap writes.
type Snapshot struct {
	Tag        string        `json:"tag"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	NumCPU     int           `json:"num_cpu"`
	TakenAt    string        `json:"taken_at"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// benchSetup mirrors the reduced setup of the repo-level bench_test.go so
// snapshot numbers stay comparable with `make bench`.
func benchSetup() experiments.Setup {
	s := experiments.DefaultSetup()
	s.Datasets = 4
	s.RowsPerSite = 1500
	s.KeysPerPool = 250
	s.Runs = 1
	return s
}

func benchExperiment[T any](fn func(experiments.Setup) (T, error)) func(*testing.B) {
	return func(b *testing.B) {
		s := benchSetup()
		for i := 0; i < b.N; i++ {
			if _, err := fn(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// syntheticTrace builds a deterministic many-query span tree for the
// analyzer and exporter micro-benchmarks.
func syntheticTrace(queries int) *obs.Span {
	run := &obs.Span{Name: "run"}
	for i := 0; i < queries; i++ {
		q := &obs.Span{Name: fmt.Sprintf("q%02d:bench", i), Modeled: 10, Children: []*obs.Span{
			{Name: "map", Modeled: 3, Children: []*obs.Span{
				{Name: "site-0", Modeled: 3}, {Name: "site-1", Modeled: 1.5},
			}},
			{Name: "assign", Modeled: 0.2},
			{Name: "shuffle", Modeled: 5},
			{Name: "reduce", Modeled: 1.5, Children: []*obs.Span{
				{Name: "site-0", Modeled: 1.1}, {Name: "site-1", Modeled: 1.5},
			}},
		}}
		run.Children = append(run.Children, q)
	}
	return &obs.Span{Name: "bohr", Children: []*obs.Span{run}}
}

func main() {
	tag := flag.String("tag", "pr3", "snapshot tag; output defaults to BENCH_<tag>.json")
	out := flag.String("out", "", "output path (overrides -tag naming)")
	flag.Parse()
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", *tag)
	}

	trace := syntheticTrace(64)
	snap := &obs.Snapshot{Counters: map[string]float64{
		"wan.shuffle.site-0->site-1.mb": 120,
		"wan.shuffle.site-1->site-0.mb": 480,
	}}
	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"Figure6QCTRandomPlacement", benchExperiment(experiments.Figure6)},
		{"Figure8ReductionRandomPlacement", benchExperiment(experiments.Figure8)},
		{"Table3SimilarityCheckingTime", benchExperiment(experiments.Table3)},
		{"Table5LPSolvingTime", benchExperiment(experiments.Table5)},
		{"ObsCollectorObserve", func(b *testing.B) {
			col := obs.NewCollector()
			for i := 0; i < b.N; i++ {
				col.Observe("bench.series", float64(i))
			}
		}},
		{"CritpathAnalyze64Queries", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := critpath.Analyze(trace, snap); len(got) != 64 {
					b.Fatalf("paths = %d", len(got))
				}
			}
		}},
		{"ChromeTraceRender64Queries", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := export.ChromeTrace(trace); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	doc := &Snapshot{
		Tag:       *tag,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		TakenAt:   time.Now().UTC().Format(time.RFC3339),
	}
	for _, bm := range benches {
		fmt.Fprintf(os.Stderr, "benchsnap: %s...", bm.name)
		r := testing.Benchmark(bm.fn)
		res := BenchResult{
			Name:         bm.name,
			Iterations:   r.N,
			NsPerOp:      r.NsPerOp(),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
			SecondsPerOp: float64(r.NsPerOp()) / 1e9,
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
		fmt.Fprintf(os.Stderr, " %d iters, %.4fs/op\n", res.Iterations, res.SecondsPerOp)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchsnap: wrote %s (%d benchmarks)\n", path, len(doc.Benchmarks))
}
