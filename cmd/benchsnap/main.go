// Command benchsnap snapshots the repository's performance trajectory:
// it runs a fixed set of benchmarks through testing.Benchmark and writes
// one machine-readable JSON document (BENCH_<tag>.json at the repo root
// by convention), so successive PRs accumulate comparable numbers.
//
//	go run ./cmd/benchsnap -tag pr3
//	make bench-snapshot
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"bohr/internal/cache"
	"bohr/internal/core"
	"bohr/internal/durable"
	"bohr/internal/experiments"
	"bohr/internal/ingest"
	"bohr/internal/lp"
	"bohr/internal/obs"
	"bohr/internal/obs/critpath"
	"bohr/internal/obs/export"
	"bohr/internal/obs/window"
	"bohr/internal/olap"
	"bohr/internal/parallel"
	"bohr/internal/placement"
	"bohr/internal/serve"
	"bohr/internal/similarity"
	"bohr/internal/stats"
	"bohr/internal/workload"
)

// BenchResult is one benchmark's measurement.
type BenchResult struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	SecondsPerOp float64 `json:"s_per_op"`
}

// CacheStats measures the bounded memo layer under eviction pressure: a
// scripted recurring workload against a deliberately small signature
// cache, so successive PRs can compare hit rate and resident footprint.
type CacheStats struct {
	Scenario      string  `json:"scenario"`
	CapEntries    int     `json:"cap_entries"`
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	Evictions     uint64  `json:"evictions"`
	Entries       int     `json:"entries"`
	ResidentBytes int64   `json:"resident_bytes"`
}

// ServeStat measures the multi-tenant query front end under one client
// shape: N tenants each issuing requests sequentially over HTTP against
// the fair scheduler, with the result cache either effective (every
// tenant repeats the same statement) or bypassed.
type ServeStat struct {
	Tenants       int     `json:"tenants"`
	Cached        bool    `json:"cached"`
	Requests      int     `json:"requests"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
}

// IngestStat measures the streaming-ingestion path under one shape: a
// single source streaming records over HTTP into a live system, either
// unconstrained (throughput) or against a deliberately small admission
// window (backpressure), where the client must absorb 429s and resend.
type IngestStat struct {
	Scenario       string  `json:"scenario"`
	Records        int     `json:"records"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	BatchesFlushed uint64  `json:"batches_flushed"`
	ClientRetries  uint64  `json:"client_retries"`
	Overloaded     uint64  `json:"overloaded"`
	Deduped        uint64  `json:"deduped"`
}

// TelemetryStat measures the telemetry plane's serving overhead: the
// same cached single-tenant shape run with the plane off and then fully
// on (windowed-metrics sink, flight recorder, per-query structured
// logging at Debug into a discarding writer), as a relative throughput
// cost. The PR8 acceptance bar is OverheadPct < 5.
type TelemetryStat struct {
	Requests      int     `json:"requests"`
	BaselineRPS   float64 `json:"baseline_rps"`
	TelemetryRPS  float64 `json:"telemetry_rps"`
	OverheadPct   float64 `json:"overhead_pct"`
	BaselineP99MS float64 `json:"baseline_p99_ms"`
	TelemP99MS    float64 `json:"telemetry_p99_ms"`
}

// Snapshot is the document benchsnap writes.
type Snapshot struct {
	Tag        string         `json:"tag"`
	GoVersion  string         `json:"go_version"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	NumCPU     int            `json:"num_cpu"`
	TakenAt    string         `json:"taken_at"`
	Benchmarks []BenchResult  `json:"benchmarks"`
	Cache      *CacheStats    `json:"cache_stats,omitempty"`
	Serve      []ServeStat    `json:"serve_stats,omitempty"`
	Ingest     []IngestStat   `json:"ingest_stats,omitempty"`
	Telemetry  *TelemetryStat `json:"telemetry_stats,omitempty"`
}

// benchSetup mirrors the reduced setup of the repo-level bench_test.go so
// snapshot numbers stay comparable with `make bench`.
func benchSetup() experiments.Setup {
	s := experiments.DefaultSetup()
	s.Datasets = 4
	s.RowsPerSite = 1500
	s.KeysPerPool = 250
	s.Runs = 1
	return s
}

func benchExperiment[T any](fn func(experiments.Setup) (T, error)) func(*testing.B) {
	return func(b *testing.B) {
		s := benchSetup()
		for i := 0; i < b.N; i++ {
			if _, err := fn(s); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// syntheticTrace builds a deterministic many-query span tree for the
// analyzer and exporter micro-benchmarks.
func syntheticTrace(queries int) *obs.Span {
	run := &obs.Span{Name: "run"}
	for i := 0; i < queries; i++ {
		q := &obs.Span{Name: fmt.Sprintf("q%02d:bench", i), Modeled: 10, Children: []*obs.Span{
			{Name: "map", Modeled: 3, Children: []*obs.Span{
				{Name: "site-0", Modeled: 3}, {Name: "site-1", Modeled: 1.5},
			}},
			{Name: "assign", Modeled: 0.2},
			{Name: "shuffle", Modeled: 5},
			{Name: "reduce", Modeled: 1.5, Children: []*obs.Span{
				{Name: "site-0", Modeled: 1.1}, {Name: "site-1", Modeled: 1.5},
			}},
		}}
		run.Children = append(run.Children, q)
	}
	return &obs.Span{Name: "bohr", Children: []*obs.Span{run}}
}

// kernelRows generates the duplicate-heavy row set the cube-build kernel
// benchmarks fold: a realistic pre-processing shape where many rows land
// in the same cell.
func kernelRows(n int) []olap.Row {
	rng := stats.NewRand(42)
	rows := make([]olap.Row, n)
	for i := range rows {
		rows[i] = olap.Row{
			Coords: []string{
				fmt.Sprintf("region-us-east-%d", rng.Intn(5)),
				fmt.Sprintf("product-electronics-sku-%04d", rng.Intn(12)),
				fmt.Sprintf("day-2018-11-%02d", rng.Intn(8)),
			},
			Measure: rng.Float64() * 100,
		}
	}
	return rows
}

// kernelKeysets generates the probe key batches the minhash kernel
// benchmarks sign.
func kernelKeysets(sets, keys int) [][]string {
	rng := stats.NewRand(43)
	out := make([][]string, sets)
	for i := range out {
		ks := make([]string, keys)
		for j := range ks {
			ks[j] = fmt.Sprintf("cell-%d-%d", i, rng.Intn(keys*2))
		}
		out[i] = ks
	}
	return out
}

func benchCubeBuild(width int) func(*testing.B) {
	return func(b *testing.B) {
		schema := olap.MustSchema("region", "product", "day")
		rows := kernelRows(120_000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := olap.BuildCube(schema, rows, width); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchMinhashBatchCached(width int) func(*testing.B) {
	return func(b *testing.B) {
		h, err := similarity.NewMinHasher(128, 7)
		if err != nil {
			b.Fatal(err)
		}
		keysets := kernelKeysets(64, 400)
		c := similarity.NewSignatureCache(nil)
		c.SignatureBatch(h, keysets, width) // warm: the recurring-round shape
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sigs := c.SignatureBatch(h, keysets, width)
			if len(sigs) != len(keysets) {
				b.Fatalf("sigs = %d", len(sigs))
			}
		}
	}
}

// measureCacheStats drives 16 recurring rounds against a signature
// cache far smaller than the round's unique-set count: half of each
// batch recurs (the stable working set), half is fresh churn that has
// to age out. The resulting hit rate and resident footprint land in the
// snapshot next to the kernel timings.
func measureCacheStats() (*CacheStats, error) {
	const capEntries = 48
	h, err := similarity.NewMinHasher(128, 7)
	if err != nil {
		return nil, err
	}
	c := similarity.NewSignatureCacheSized(nil, cache.Caps{Entries: capEntries})
	stable := kernelKeysets(32, 400)
	for round := 0; round < 16; round++ {
		batch := make([][]string, 0, 64)
		batch = append(batch, stable...)
		for i := 0; i < 32; i++ { // churn: unique to this round
			ks := make([]string, 40)
			for j := range ks {
				ks[j] = fmt.Sprintf("churn-%d-%d-%d", round, i, j)
			}
			batch = append(batch, ks)
		}
		c.SignatureBatch(h, batch, 4)
		c.Advance()
	}
	hits, misses := c.Stats()
	st := &CacheStats{
		Scenario:      "sigcache 16 rounds, 32 stable + 32 churn sets, cap 48",
		CapEntries:    capEntries,
		Hits:          hits,
		Misses:        misses,
		Evictions:     c.Evictions(),
		Entries:       c.Len(),
		ResidentBytes: c.Bytes(),
	}
	if total := hits + misses; total > 0 {
		st.HitRate = float64(hits) / float64(total)
	}
	return st, nil
}

// uncachedBackend wraps a serve backend and withholds content hashes,
// which turns the front end's result cache off without touching the
// serving path — the bypass knob the cold-cache scenarios use.
type uncachedBackend struct{ serve.Backend }

func (uncachedBackend) ContentHash(string) (uint64, bool) { return 0, false }

// serveSystem prepares the small Bohr-placed system the serving
// scenarios query — the same substrate `bohrd serve -quick` runs.
func serveSystem() (*core.System, string, error) {
	s := experiments.QuickSetup()
	s.Datasets = 1
	s.RowsPerSite = 300
	c, w, err := s.Populated(workload.BigDataScan, false, 0)
	if err != nil {
		return nil, "", err
	}
	sys, err := core.New(c, w, placement.Bohr, s.PlacementOptions(0))
	if err != nil {
		return nil, "", err
	}
	if _, err := sys.Prepare(context.Background()); err != nil {
		return nil, "", err
	}
	ds := sys.Workload.Datasets[0]
	dim := ds.Schema.Dims()[0]
	query := "SELECT " + dim + ", SUM(measure) FROM " + ds.Name + " GROUP BY " + dim + " LIMIT 10"
	return sys, query, nil
}

// measureServe runs one client shape: `tenants` concurrent clients, each
// issuing its share of ~256 requests sequentially, against a fresh front
// end (MaxConcurrent 8, quota 2 — the bohrd serve defaults). Every
// client sends the same statement, so with the cache on the first miss
// fills the entry and the rest hit; with the cache bypassed every
// request runs the engine under the fair scheduler.
func measureServe(sys *core.System, query string, tenants int, cached bool) (ServeStat, error) {
	return measureServeCfg(sys, query, tenants, cached, serve.Config{
		Sched: serve.SchedConfig{MaxConcurrent: 8, TenantQuota: 2, MaxQueue: 1024},
	}, nil)
}

// measureServeCfg is measureServe with an explicit front-end config and
// collector, so the telemetry-overhead scenario can switch the full
// observability plane on.
func measureServeCfg(sys *core.System, query string, tenants int, cached bool, cfg serve.Config, col *obs.Collector) (ServeStat, error) {
	var backend serve.Backend = serve.NewEngineBackend(sys)
	if !cached {
		backend = uncachedBackend{backend}
	}
	fe := serve.New(backend, cfg, col)
	ts := httptest.NewServer(fe.Handler())
	defer ts.Close()

	perTenant := 256 / tenants
	if perTenant < 1 {
		perTenant = 1
	}
	total := perTenant * tenants
	lat := make([]float64, total)
	errs := make(chan error, tenants)
	start := time.Now()
	var wg sync.WaitGroup
	for t := 0; t < tenants; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"tenant":"t%02d","query":%q}`, t, query)
			for i := 0; i < perTenant; i++ {
				t0 := time.Now()
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					errs <- err
					return
				}
				if err := json.NewDecoder(resp.Body).Decode(&struct{}{}); err != nil {
					resp.Body.Close()
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("serve bench: status %d", resp.StatusCode)
					return
				}
				lat[t*perTenant+i] = float64(time.Since(t0).Microseconds()) / 1000
			}
		}(t)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	if err := <-errs; err != nil {
		return ServeStat{}, err
	}
	sort.Float64s(lat)
	pct := func(p float64) float64 {
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	return ServeStat{
		Tenants:       tenants,
		Cached:        cached,
		Requests:      total,
		ThroughputRPS: float64(total) / elapsed.Seconds(),
		P50MS:         pct(0.50),
		P99MS:         pct(0.99),
	}, nil
}

// measureTelemetry runs the cached single-tenant serve shape twice —
// plane off, then with the windowed sink, flight recorder, and Debug
// structured logging into a discarding writer all enabled — and reports
// the relative throughput cost. Cached requests are the cheapest the
// front end serves, so the fixed per-request telemetry work is at its
// most visible here; the acceptance bar is <5% overhead.
func measureTelemetry(sys *core.System, query string) (*TelemetryStat, error) {
	base, err := measureServe(sys, query, 1, true)
	if err != nil {
		return nil, err
	}
	col := obs.NewCollector(obs.WithWallClock())
	win := window.New(nil)
	col.SetSink(win)
	cfg := serve.Config{
		Sched:   serve.SchedConfig{MaxConcurrent: 8, TenantQuota: 2, MaxQueue: 1024},
		Flight:  &serve.FlightConfig{},
		Windows: win,
		Logger:  slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelDebug})),
	}
	telem, err := measureServeCfg(sys, query, 1, true, cfg, col)
	if err != nil {
		return nil, err
	}
	st := &TelemetryStat{
		Requests:      base.Requests,
		BaselineRPS:   base.ThroughputRPS,
		TelemetryRPS:  telem.ThroughputRPS,
		BaselineP99MS: base.P99MS,
		TelemP99MS:    telem.P99MS,
	}
	if base.ThroughputRPS > 0 {
		st.OverheadPct = 100 * (base.ThroughputRPS - telem.ThroughputRPS) / base.ThroughputRPS
	}
	return st, nil
}

// durableShape switches measureIngest onto the durable path: batches
// journal to a WAL in a temp directory before acking, with or without
// the per-append group-commit fsync. The fsync-on/off pair in the
// snapshot is the price of the crash guarantee.
type durableShape struct {
	fsync         bool
	snapshotEvery int
}

// measureIngest streams `records` from one client source into a fresh
// front end over HTTP and reports end-to-end throughput (push + drain).
// The pipeline config controls the shape: a roomy MaxPending measures raw
// throughput; a tight one forces the backpressure loop (429 → seeded
// backoff → whole-batch resend, deduped server-side); a durableShape
// adds the WAL at the ack boundary.
func measureIngest(scenario string, cfg ingest.Config, records int, dur *durableShape) (IngestStat, error) {
	sys, _, err := serveSystem()
	if err != nil {
		return IngestStat{}, err
	}
	ds := sys.Workload.Datasets[0]
	dims := ds.Schema.NumDims()
	fe := serve.New(serve.NewEngineBackend(sys), serve.Config{}, nil)
	var pipe *ingest.Pipeline
	if dur != nil {
		dir, err := os.MkdirTemp("", "benchsnap-wal-")
		if err != nil {
			return IngestStat{}, err
		}
		defer os.RemoveAll(dir)
		m, err := durable.Open(durable.Config{Dir: dir, Fsync: dur.fsync})
		if err != nil {
			return IngestStat{}, err
		}
		defer m.Close()
		pipe, _, err = fe.EnableDurableIngest(context.Background(), cfg, m, dur.snapshotEvery)
		if err != nil {
			return IngestStat{}, err
		}
	} else {
		pipe, err = fe.EnableIngest(cfg)
		if err != nil {
			return IngestStat{}, err
		}
	}
	defer pipe.Close()
	ts := httptest.NewServer(fe.Handler())
	defer ts.Close()

	cli := ingest.NewClient(ts.URL+"/v1/ingest", "bench", ingest.ClientConfig{
		BatchRecords: cfg.MaxBatchRecords, RetryBase: time.Millisecond, RetryAttempts: 64,
	})
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < records; i++ {
		coords := make([]string, dims)
		for j := range coords {
			coords[j] = fmt.Sprintf("ing%d-%d", j, i%16)
		}
		if err := cli.Add(ctx, ds.Name, i%sys.Cluster.N(), coords, 1); err != nil {
			return IngestStat{}, err
		}
	}
	if err := cli.Flush(ctx); err != nil {
		return IngestStat{}, err
	}
	if err := pipe.Flush(ctx); err != nil {
		return IngestStat{}, err
	}
	elapsed := time.Since(start)
	st := pipe.Stats()
	if st.RecordsDelivered != uint64(records) {
		return IngestStat{}, fmt.Errorf("ingest bench: delivered %d of %d records", st.RecordsDelivered, records)
	}
	return IngestStat{
		Scenario:       scenario,
		Records:        records,
		ThroughputRPS:  float64(records) / elapsed.Seconds(),
		BatchesFlushed: st.BatchesFlushed,
		ClientRetries:  cli.Stats().Retries,
		Overloaded:     st.Overloaded + st.Throttled,
		Deduped:        st.Deduped,
	}, nil
}

func benchMinhashBatch(width int) func(*testing.B) {
	return func(b *testing.B) {
		h, err := similarity.NewMinHasher(128, 7)
		if err != nil {
			b.Fatal(err)
		}
		keysets := kernelKeysets(64, 400)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sigs := h.SignatureBatch(keysets, width)
			if len(sigs) != len(keysets) {
				b.Fatalf("sigs = %d", len(sigs))
			}
		}
	}
}

// benchProbeScore measures the receiving site's similarity check — a
// Lookup per probe record against the local cube's columnar index, the
// inner loop of every planning round's cross-site probe exchange.
func benchProbeScore(b *testing.B) {
	schema := olap.MustSchema("region", "product", "day")
	sender, err := olap.BuildCube(schema, kernelRows(120_000), 1)
	if err != nil {
		b.Fatal(err)
	}
	local, err := olap.BuildCube(schema, kernelRows(60_000), 1)
	if err != nil {
		b.Fatal(err)
	}
	probe, err := similarity.BuildProbe("bench", "region,product,day", sender, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := similarity.Score(probe, local); err != nil {
			b.Fatal(err)
		}
	}
}

// placementInput64 synthesizes a deterministic 64-site, 2-dataset joint
// placement problem — thousands of x variables, the scale the sparse
// revised simplex exists for (the dense tableau renormalized every column
// of an (m)x(n·n·a) matrix per pivot).
func placementInput64() *lp.PlacementInput {
	const n, m = 64, 2
	rng := stats.NewRand(11)
	in := &lp.PlacementInput{
		Sites:    n,
		Datasets: m,
		Up:       make([]float64, n),
		Down:     make([]float64, n),
		Lag:      20,
	}
	for i := 0; i < n; i++ {
		in.Up[i] = 5 + rng.Float64()*45
		in.Down[i] = 5 + rng.Float64()*45
	}
	for a := 0; a < m; a++ {
		input := make([]float64, n)
		self := make([]float64, n)
		cross := make([][]float64, n)
		for i := 0; i < n; i++ {
			input[i] = rng.Float64() * 100
			self[i] = rng.Float64()
			cross[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				cross[i][j] = rng.Float64()
			}
			cross[i][i] = self[i]
		}
		in.Input = append(in.Input, input)
		in.SelfSim = append(in.SelfSim, self)
		in.CrossSim = append(in.CrossSim, cross)
		in.Reduction = append(in.Reduction, rng.Float64())
	}
	return in
}

// benchPlacementLP64Sites times the full alternating joint solve at 64
// sites — the acceptance-scale problem for the sparse solver.
func benchPlacementLP64Sites(b *testing.B) {
	in := placementInput64()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.SolvePlacement(in); err != nil {
			b.Fatal(err)
		}
	}
}

// runGate compares the kernel benchmarks against a previous snapshot and
// fails on regressions beyond the band: for each kernel benchmark present
// in the baseline, new ns/op must stay under old·band. Benchmarks the
// baseline lacks (newly added ones) are skipped, so the gate never blocks
// on coverage growth.
func runGate(baselinePath string, band float64, kernels []namedBench) int {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: -gate baseline: %v\n", err)
		return 1
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: -gate baseline %s: %v\n", baselinePath, err)
		return 1
	}
	baseNs := make(map[string]int64, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		baseNs[r.Name] = r.NsPerOp
	}
	failed := 0
	for _, bm := range kernels {
		old, ok := baseNs[bm.name]
		if !ok || old <= 0 {
			fmt.Fprintf(os.Stderr, "benchsnap: gate %-32s skipped (absent from %s)\n", bm.name, baselinePath)
			continue
		}
		// Best of three, with a GC fence before each run: the µs-scale
		// kernels are sensitive to garbage and scheduler state left behind
		// by earlier benchmarks in the same process, and for a regression
		// gate the minimum is the honest statistic — noise only ever adds.
		best := int64(math.MaxInt64)
		for rep := 0; rep < 3; rep++ {
			runtime.GC()
			if ns := testing.Benchmark(bm.fn).NsPerOp(); ns < best {
				best = ns
			}
		}
		ratio := float64(best) / float64(old)
		verdict := "ok"
		if ratio > band {
			verdict = "REGRESSION"
			failed++
		}
		fmt.Fprintf(os.Stderr, "benchsnap: gate %-32s %12d -> %12d ns/op (%.2fx, band %.2fx) %s\n",
			bm.name, old, best, ratio, band, verdict)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchsnap: gate FAILED: %d kernel(s) regressed past the band\n", failed)
		return 1
	}
	fmt.Fprintln(os.Stderr, "benchsnap: gate passed")
	return 0
}

// namedBench pairs a benchmark with its snapshot name.
type namedBench struct {
	name string
	fn   func(*testing.B)
}

func main() {
	tag := flag.String("tag", "pr10", "snapshot tag; output defaults to BENCH_<tag>.json")
	out := flag.String("out", "", "output path (overrides -tag naming)")
	benchtime := flag.String("benchtime", "2s", "per-benchmark measuring time (testing -benchtime)")
	gate := flag.Bool("gate", false, "regression-gate mode: rerun the kernel benchmarks, compare against -baseline, exit 1 past -band; writes nothing")
	baseline := flag.String("baseline", "BENCH_pr9.json", "baseline snapshot the -gate mode compares against")
	band := flag.Float64("band", 1.3, "allowed ns/op ratio over the baseline before -gate fails (absorbs machine noise)")
	testing.Init()
	flag.Parse()
	// The default 1s benchtime gives the millisecond-scale kernels only
	// ~100 iterations — too noisy for a number other PRs will compare
	// against. 2s keeps the snapshot stable without making it crawl.
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: -benchtime %q: %v\n", *benchtime, err)
		os.Exit(1)
	}
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", *tag)
	}

	trace := syntheticTrace(64)
	snap := &obs.Snapshot{Counters: map[string]float64{
		"wan.shuffle.site-0->site-1.mb": 120,
		"wan.shuffle.site-1->site-0.mb": 480,
	}}
	// kernels are the CPU-bound hot loops the gate guards: fast enough to
	// rerun in CI, and the ones a storage or solver rewrite would regress.
	kernels := []namedBench{
		{"CubeBuild120kRowsWidth1", benchCubeBuild(1)},
		{"CubeBuild120kRowsWidth4", benchCubeBuild(4)},
		{"MinhashBatch64x400Width1", benchMinhashBatch(1)},
		{"MinhashBatch64x400Width4", benchMinhashBatch(4)},
		{"MinhashBatchCached64x400Width4", benchMinhashBatchCached(4)},
		{"ProbeScore256Records", benchProbeScore},
		{"PlacementLP64Sites", benchPlacementLP64Sites},
	}
	// The width-4 kernels need a pool; make sure a narrow GOMAXPROCS or an
	// inherited BOHR_PARALLEL_WIDTH=1 cannot silently serialize them.
	parallel.SetDefaultWidth(4)
	if *gate {
		os.Exit(runGate(*baseline, *band, kernels))
	}
	benches := []namedBench{
		{"Figure6QCTRandomPlacement", benchExperiment(experiments.Figure6)},
		{"Figure8ReductionRandomPlacement", benchExperiment(experiments.Figure8)},
		{"Table3SimilarityCheckingTime", benchExperiment(experiments.Table3)},
		{"Table5LPSolvingTime", benchExperiment(experiments.Table5)},
		{"ObsCollectorObserve", func(b *testing.B) {
			col := obs.NewCollector()
			for i := 0; i < b.N; i++ {
				col.Observe("bench.series", float64(i))
			}
		}},
		{"CritpathAnalyze64Queries", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if got := critpath.Analyze(trace, snap); len(got) != 64 {
					b.Fatalf("paths = %d", len(got))
				}
			}
		}},
		{"ChromeTraceRender64Queries", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := export.ChromeTrace(trace); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	benches = append(benches, kernels...)

	doc := &Snapshot{
		Tag:       *tag,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		TakenAt:   time.Now().UTC().Format(time.RFC3339),
	}
	for _, bm := range benches {
		fmt.Fprintf(os.Stderr, "benchsnap: %s...", bm.name)
		r := testing.Benchmark(bm.fn)
		res := BenchResult{
			Name:         bm.name,
			Iterations:   r.N,
			NsPerOp:      r.NsPerOp(),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
			SecondsPerOp: float64(r.NsPerOp()) / 1e9,
		}
		doc.Benchmarks = append(doc.Benchmarks, res)
		fmt.Fprintf(os.Stderr, " %d iters, %.4fs/op\n", res.Iterations, res.SecondsPerOp)
	}
	cs, err := measureCacheStats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: cache stats: %v\n", err)
		os.Exit(1)
	}
	doc.Cache = cs
	fmt.Fprintf(os.Stderr, "benchsnap: cache hit rate %.2f, %d evictions, %d resident bytes\n",
		cs.HitRate, cs.Evictions, cs.ResidentBytes)
	sys, query, err := serveSystem()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: serve setup: %v\n", err)
		os.Exit(1)
	}
	for _, tenants := range []int{1, 8, 64} {
		for _, cached := range []bool{false, true} {
			st, err := measureServe(sys, query, tenants, cached)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchsnap: serve %d tenants: %v\n", tenants, err)
				os.Exit(1)
			}
			doc.Serve = append(doc.Serve, st)
			fmt.Fprintf(os.Stderr, "benchsnap: serve %2d tenants cached=%-5v %7.0f req/s p50 %6.2fms p99 %6.2fms\n",
				st.Tenants, st.Cached, st.ThroughputRPS, st.P50MS, st.P99MS)
		}
	}
	tst, err := measureTelemetry(sys, query)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: telemetry overhead: %v\n", err)
		os.Exit(1)
	}
	doc.Telemetry = tst
	fmt.Fprintf(os.Stderr, "benchsnap: telemetry plane %7.0f -> %7.0f req/s (overhead %.1f%%)\n",
		tst.BaselineRPS, tst.TelemetryRPS, tst.OverheadPct)
	for _, sc := range []struct {
		name    string
		cfg     ingest.Config
		records int
		durable *durableShape
	}{
		{"throughput: 1 source, batches of 256, no admission limits",
			ingest.Config{MaxBatchRecords: 256, FlushInterval: -1}, 5000, nil},
		{"backpressure: 1 source, batches of 64, pending capped at 256",
			ingest.Config{MaxBatchRecords: 64, FlushInterval: -1, MaxPending: 256}, 2000, nil},
		{"durable: WAL at the ack boundary, fsync group commit, batches of 256",
			ingest.Config{MaxBatchRecords: 256, FlushInterval: -1}, 5000,
			&durableShape{fsync: true}},
		{"durable: WAL at the ack boundary, no fsync, batches of 256",
			ingest.Config{MaxBatchRecords: 256, FlushInterval: -1}, 5000,
			&durableShape{fsync: false}},
	} {
		st, err := measureIngest(sc.name, sc.cfg, sc.records, sc.durable)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchsnap: ingest %q: %v\n", sc.name, err)
			os.Exit(1)
		}
		doc.Ingest = append(doc.Ingest, st)
		fmt.Fprintf(os.Stderr, "benchsnap: ingest %-55s %7.0f rec/s, %d batches, %d retries, %d overloads\n",
			sc.name, st.ThroughputRPS, st.BatchesFlushed, st.ClientRetries, st.Overloaded)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchsnap: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchsnap: wrote %s (%d benchmarks)\n", path, len(doc.Benchmarks))
}
