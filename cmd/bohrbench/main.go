// Command bohrbench regenerates every table and figure of the paper's
// evaluation section on the scaled-down reproduction. Each experiment
// prints the same rows or series the paper reports.
//
// Usage:
//
//	bohrbench -exp all
//	bohrbench -exp fig6,fig8,tab5 -datasets 12 -runs 5
//	bohrbench -exp fig6 -json out.json
//
// With -json, every scheme run additionally records a phase-span trace and
// metrics, and the whole invocation is written as one core.Report document
// (stable schema, byte-identical across runs with the same seed).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bohr/internal/cliflags"
	"bohr/internal/core"
	"bohr/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiments: fig6..fig13, tab2..tab7, overhead, ablation, faults, or all")
		sites    = flag.Int("sites", 0, "override number of sites")
		datasets = flag.Int("datasets", 0, "override datasets per workload")
		rows     = flag.Int("rows", 0, "override rows per site per dataset")
		runs     = flag.Int("runs", 0, "override experiment repetitions")
		probeK   = flag.Int("k", 0, "override probe record budget")
		seed     = flag.Int64("seed", 0, "override random seed")
		quick    = flag.Bool("quick", false, "use the small quick setup")
		jsonOut  = flag.String("json", "", "write the machine-readable core.Report document to this file")
	)
	var common cliflags.Common
	common.Register(flag.CommandLine)
	flag.Parse()
	common.Apply()

	s := experiments.DefaultSetup()
	if *quick {
		s = experiments.QuickSetup()
	}
	if *sites > 0 {
		s.Sites = *sites
	}
	if *datasets > 0 {
		s.Datasets = *datasets
	}
	if *rows > 0 {
		s.RowsPerSite = *rows
	}
	if *runs > 0 {
		s.Runs = *runs
	}
	if *probeK > 0 {
		s.ProbeK = *probeK
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	if *jsonOut != "" {
		s.EnableReports()
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]
	ran := 0
	var jsonExps []*core.Report
	run := func(name string, f func() (string, error)) {
		if !all && !want[name] {
			return
		}
		ran++
		start := time.Now()
		out, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bohrbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Printf("(%s in %.1fs)\n\n", name, time.Since(start).Seconds())
		if reps := s.DrainReports(); len(reps) > 0 {
			jsonExps = append(jsonExps, &core.Report{
				SchemaVersion: core.ReportSchemaVersion,
				Experiment:    name,
				Children:      reps,
			})
		}
	}

	comparison := []string{"Iridium", "Iridium-C", "Bohr"}
	micro := []string{"Iridium-C", "Bohr-Sim", "Bohr-Joint", "Bohr-RDD"}

	run("fig6", func() (string, error) {
		rows, err := experiments.Figure6(s)
		return experiments.FormatQCT("Figure 6: QCT comparison (random initial placement)", rows, comparison), err
	})
	run("fig7", func() (string, error) {
		rows, err := experiments.Figure7(s)
		return experiments.FormatQCT("Figure 7: QCT comparison (locality-aware initial placement)", rows, comparison), err
	})
	run("fig8", func() (string, error) {
		rows, err := experiments.Figure8(s)
		return experiments.FormatReduction("Figure 8: intermediate data reduction (random initial placement)", rows, comparison), err
	})
	run("fig9", func() (string, error) {
		rows, err := experiments.Figure9(s)
		return experiments.FormatReduction("Figure 9: intermediate data reduction (locality-aware initial placement)", rows, comparison), err
	})
	run("fig10", func() (string, error) {
		rows, err := experiments.Figure10(s)
		return experiments.FormatQCT("Figure 10: component benefit in QCT", rows, micro), err
	})
	run("fig11", func() (string, error) {
		rows, err := experiments.Figure11(s)
		return experiments.FormatReduction("Figure 11: component benefit in data reduction", rows, micro), err
	})
	run("fig12", func() (string, error) {
		rows, err := experiments.Figure12(s)
		return experiments.FormatKSweep("Figure 12: effect of k on data reduction ratio", "%", rows), err
	})
	run("fig13", func() (string, error) {
		rows, err := experiments.Figure13(s)
		return experiments.FormatKSweep("Figure 13: effect of k on QCT", "s", rows), err
	})
	run("tab2", func() (string, error) {
		rows, err := experiments.Table2(s)
		return experiments.FormatTable2(rows), err
	})
	run("tab3", func() (string, error) {
		rows, err := experiments.Table3(s)
		return experiments.FormatTable3(rows), err
	})
	run("tab4", func() (string, error) {
		rows, err := experiments.Table4(s)
		return experiments.FormatTable4(rows), err
	})
	run("tab5", func() (string, error) {
		rows, err := experiments.Table5(s)
		return experiments.FormatTable5(rows), err
	})
	run("tab6", func() (string, error) {
		rows, err := experiments.Table6(s)
		return experiments.FormatTable6(rows), err
	})
	run("tab7", func() (string, error) {
		rows, err := experiments.Table7(s)
		return experiments.FormatTable7(rows), err
	})
	run("overhead", func() (string, error) {
		rows, err := experiments.OverheadCubeGeneration(s)
		return experiments.FormatOverhead(rows), err
	})
	run("ablation", func() (string, error) {
		rows, err := experiments.AblationPlacement(s)
		return experiments.FormatAblation(rows), err
	})
	run("faults", func() (string, error) {
		rows, err := experiments.FaultSweep(s)
		return experiments.FormatFaultSweep(rows, comparison), err
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "bohrbench: no experiment matched %q (use fig6..fig13, tab2..tab7, overhead, ablation, faults, all)\n", *exp)
		os.Exit(2)
	}

	if *jsonOut != "" {
		doc := &core.Report{
			SchemaVersion: core.ReportSchemaVersion,
			Experiment:    "bohrbench",
			Seed:          s.Seed,
			Children:      jsonExps,
		}
		b, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bohrbench: encoding report: %v\n", err)
			os.Exit(1)
		}
		b = append(b, '\n')
		if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bohrbench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}
