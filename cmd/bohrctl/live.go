// Live-daemon tooling: `bohrctl top` renders a refreshing operational
// dashboard from a bohrd serve daemon's /v1/stats document (windowed
// throughput and latency percentiles, scheduler and ingest depths), and
// `bohrctl tail` streams the flight recorder's recent and slow query
// records from /v1/debug/flightrec.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"time"

	"bohr/internal/obs/critpath"
	"bohr/internal/obs/window"
	"bohr/internal/serve"
)

// fetchJSON GETs url and decodes the JSON body into out.
func fetchJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func runTop(args []string) error {
	fs := flag.NewFlagSet("bohrctl top", flag.ExitOnError)
	var (
		server   = fs.String("server", "http://127.0.0.1:8080", "bohrd serve base URL")
		interval = fs.Duration("interval", 2*time.Second, "refresh interval")
		win      = fs.String("window", "10s", "window to render (10s, 1m, 5m)")
		once     = fs.Bool("once", false, "render one frame and exit (no screen clearing)")
	)
	fs.Parse(args)
	client := &http.Client{Timeout: 10 * time.Second}
	url := strings.TrimRight(*server, "/") + "/v1/stats"

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	for {
		var doc serve.StatsDoc
		err := fetchJSON(client, url, &doc)
		if !*once {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear screen
		}
		if err != nil {
			fmt.Printf("bohrctl top: %v (retrying every %v)\n", err, *interval)
		} else {
			renderTop(&doc, *win, *server)
		}
		if *once {
			return err
		}
		select {
		case <-sig:
			return nil
		case <-time.After(*interval):
		}
	}
}

// renderTop prints one dashboard frame from a stats document.
func renderTop(doc *serve.StatsDoc, win, server string) {
	fmt.Printf("bohrd %s  up %s  window %s  (refreshed %s)\n\n",
		server, (time.Duration(doc.UptimeS * float64(time.Second))).Round(time.Second),
		win, time.Now().Format("15:04:05"))
	if doc.Windows == nil {
		fmt.Println("windowed metrics not enabled on this daemon")
	} else {
		req := doc.Windows.Counters["serve.requests"][win]
		hits := doc.Windows.Counters["serve.cache.hits"][win]
		lat := doc.Windows.Histograms["serve.latency_s"][win]
		hitPct := 0.0
		if req.Sum > 0 {
			hitPct = 100 * hits.Sum / req.Sum
		}
		fmt.Printf("queries   %8.1f/s   (%d in window, cache hit %.0f%%)\n",
			req.Rate, int(req.Sum), hitPct)
		fmt.Printf("latency   p50 %s  p90 %s  p99 %s  max %s\n",
			fmtSec(lat.P50), fmtSec(lat.P90), fmtSec(lat.P99), fmtSec(lat.Max))
		ing := doc.Windows.Counters["ingest.accepted"][win]
		e2e := doc.Windows.Histograms["ingest.batch_e2e_s"][win]
		fmt.Printf("ingest    %8.1f rec/s  batch e2e p99 %s\n", ing.Rate, fmtSec(e2e.P99))
		retries := doc.Windows.Counters["netio.retries"][win]
		timeouts := doc.Windows.Counters["netio.timeouts"][win]
		if retries.Sum > 0 || timeouts.Sum > 0 {
			fmt.Printf("netio     %8.1f retries/s  %.1f timeouts/s\n", retries.Rate, timeouts.Rate)
		}
	}
	fmt.Printf("\nsched     inflight %d  queued %d      cache entries %d\n",
		doc.Sched.Inflight, doc.Sched.QueueDepth, doc.Cache.Entries)
	if doc.Flight != nil {
		fmt.Printf("flightrec %d recorded, %d in ring, %d slow traces held (threshold %s)\n",
			doc.Flight.Recorded, doc.Flight.RingLen, doc.Flight.SlowHeld,
			fmtSec(doc.Flight.SlowThresholdS))
	}
	if len(doc.IngestSources) > 0 {
		fmt.Printf("\n%-20s %10s %8s %8s %10s %8s %12s\n",
			"SOURCE", "WATERMARK", "SPARSE", "PENDING", "ACCEPTED", "DEDUPE%", "BATCH E2E")
		for _, s := range doc.IngestSources {
			fmt.Printf("%-20s %10d %8d %8d %10d %7.1f%% %12s\n",
				s.Source, s.Watermark, s.Sparse, s.Pending, s.Accepted,
				100*s.DedupeRate, fmtSec(s.LastBatchE2ES))
		}
	}
	if doc.Windows != nil {
		renderTenants(doc.Windows, win)
	}
}

// renderTenants lists per-tenant windowed request rates and p99, derived
// from the serve.tenant.<t>.* series the serving path maintains.
func renderTenants(snap *window.Snapshot, win string) {
	var tenants []string
	for name := range snap.Counters {
		if t, ok := tenantOf(name, ".requests"); ok {
			tenants = append(tenants, t)
		}
	}
	if len(tenants) == 0 {
		return
	}
	sort.Strings(tenants)
	fmt.Printf("\n%-20s %10s %10s %10s %10s\n", "TENANT", "REQ/S", "REQS", "P99", "INFLIGHT")
	for _, t := range tenants {
		req := snap.Counters["serve.tenant."+t+".requests"][win]
		lat := snap.Histograms["serve.tenant."+t+".latency_s"][win]
		fmt.Printf("%-20s %10.1f %10d %10s %10.0f\n",
			t, req.Rate, int(req.Sum), fmtSec(lat.P99),
			snap.Gauges["serve.tenant."+t+".inflight"])
	}
}

// tenantOf extracts the tenant label from a serve.tenant.<t><suffix> name.
func tenantOf(name, suffix string) (string, bool) {
	const prefix = "serve.tenant."
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return "", false
	}
	t := name[len(prefix) : len(name)-len(suffix)]
	if t == "" || strings.Contains(t, ".") {
		return "", false
	}
	return t, true
}

// fmtSec renders a seconds value at a latency-friendly precision.
func fmtSec(s float64) string {
	switch {
	case s <= 0:
		return "-"
	case s < 1:
		return fmt.Sprintf("%.0fms", s*1000)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}

func runTail(args []string) error {
	fs := flag.NewFlagSet("bohrctl tail", flag.ExitOnError)
	var (
		server   = fs.String("server", "http://127.0.0.1:8080", "bohrd serve base URL")
		follow   = fs.Bool("follow", false, "keep polling for new records (like tail -f)")
		interval = fs.Duration("interval", time.Second, "poll interval with -follow")
		limit    = fs.Int("limit", 20, "max recent records per fetch")
		slow     = fs.Bool("slow", true, "print the retained slow queries with critical paths")
	)
	fs.Parse(args)
	client := &http.Client{Timeout: 10 * time.Second}
	base := strings.TrimRight(*server, "/") + "/v1/debug/flightrec"

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	var cursor uint64
	first := true
	for {
		// Only the first fetch pulls the slow set; follow polls just page
		// new recent records past the cursor.
		url := fmt.Sprintf("%s?after=%d&limit=%d", base, cursor, *limit)
		if !first || !*slow {
			url += "&slow=0"
		}
		var doc serve.FlightDoc
		if err := fetchJSON(client, url, &doc); err != nil {
			if !*follow {
				return err
			}
			fmt.Fprintf(os.Stderr, "bohrctl tail: %v\n", err)
		}
		if first {
			fmt.Printf("%-19s %-15s %-12s %-10s %-9s %8s %8s %6s\n",
				"TIME", "TRACE", "TENANT", "DATASET", "STATUS", "LATENCY", "QWAIT", "CACHED")
		}
		for _, r := range doc.Recent {
			printRecord(r)
			if r.Seq > cursor {
				cursor = r.Seq
			}
		}
		if first && *slow && len(doc.Slow) > 0 {
			fmt.Printf("\nslowest retained queries (full traces held):\n")
			for _, s := range doc.Slow {
				fmt.Printf("\n#%d %s tenant=%s %s latency=%s\n  stmt: %s\n",
					s.Seq, s.TraceID, s.Tenant, s.Dataset, fmtSec(s.LatencyS), s.Stmt)
				if len(s.CritPath) > 0 {
					for _, line := range strings.Split(strings.TrimRight(critpath.Format(s.CritPath), "\n"), "\n") {
						fmt.Printf("  %s\n", line)
					}
				}
			}
			if *follow {
				fmt.Println()
			}
		}
		if !*follow {
			return nil
		}
		first = false
		select {
		case <-sig:
			return nil
		case <-time.After(*interval):
		}
	}
}

// printRecord renders one flight-recorder line.
func printRecord(r serve.QueryRecord) {
	ts := r.Start
	if t, err := time.Parse(time.RFC3339Nano, r.Start); err == nil {
		ts = t.Local().Format("2006-01-02 15:04:05")
	}
	status := r.Status
	if r.Slow {
		status += "*"
	}
	cached := ""
	if r.Cached {
		cached = "yes"
	}
	fmt.Printf("%-19s %-15s %-12s %-10s %-9s %8s %8s %6s\n",
		ts, r.TraceID, clip(r.Tenant, 12), clip(r.Dataset, 10), status,
		fmtSec(r.LatencyS), fmtSec(r.QueueWaitS), cached)
	if r.Err != "" {
		fmt.Printf("    error: %s\n", clip(r.Err, 120))
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
