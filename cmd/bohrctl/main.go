// Command bohrctl drives single experiments against the simulated
// geo-distributed deployment: generate a workload, run it under one of the
// six compared schemes, and print the report; or execute an ad-hoc SQL
// query under full Bohr.
//
//	bohrctl -workload tpcds -scheme bohr
//	bohrctl -workload bigdata-scan -scheme iridium-c -datasets 12 -locality
//	bohrctl -workload facebook -sql "SELECT jobclass, COUNT(*) FROM facebook-000 GROUP BY jobclass"
//	bohrctl -workload tpcds -scheme bohr -faults "crash:site=2,start=40,end=70;degrade:site=0,start=0,end=120,factor=0.3"
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"bohr/internal/core"
	"bohr/internal/experiments"
	"bohr/internal/faults"
	"bohr/internal/obs"
	"bohr/internal/placement"
	"bohr/internal/sql"
	"bohr/internal/stats"
	"bohr/internal/workload"
)

func main() {
	var (
		kindName   = flag.String("workload", "bigdata-scan", "bigdata-scan | bigdata-udf | bigdata-aggr | tpcds | facebook")
		schemeName = flag.String("scheme", "bohr", "iridium | iridium-c | bohr-sim | bohr-joint | bohr-rdd | bohr")
		datasets   = flag.Int("datasets", 0, "datasets per workload (0 = default)")
		rows       = flag.Int("rows", 0, "rows per site per dataset (0 = default)")
		probeK     = flag.Int("k", 0, "probe budget (0 = default 30)")
		locality   = flag.Bool("locality", false, "locality-aware initial placement")
		seed       = flag.Int64("seed", 0, "random seed (0 = default)")
		sqlText    = flag.String("sql", "", "ad-hoc SQL to run under the chosen scheme")
		dynamic    = flag.Bool("dynamic", false, "run the §8.6 highly-dynamic-dataset protocol")
		jsonOut    = flag.Bool("json", false, "emit the machine-readable core.Report JSON (trace + metrics) instead of text; standard runs only")
		faultSpec  = flag.String("faults", "", `fault schedule, e.g. "crash:site=2,start=40,end=70;degrade:site=0,start=0,end=120,factor=0.3"`)
	)
	flag.Parse()

	if err := run(*kindName, *schemeName, *datasets, *rows, *probeK, *locality, *seed, *sqlText, *faultSpec, *dynamic, *jsonOut); err != nil {
		fmt.Fprintf(os.Stderr, "bohrctl: %v\n", err)
		os.Exit(1)
	}
}

func parseKind(name string) (workload.Kind, error) {
	switch strings.ToLower(name) {
	case "bigdata-scan":
		return workload.BigDataScan, nil
	case "bigdata-udf":
		return workload.BigDataUDF, nil
	case "bigdata-aggr":
		return workload.BigDataAggr, nil
	case "tpcds":
		return workload.TPCDS, nil
	case "facebook":
		return workload.Facebook, nil
	}
	return 0, fmt.Errorf("unknown workload %q", name)
}

func parseScheme(name string) (placement.SchemeID, error) {
	for _, id := range placement.AllSchemes() {
		if strings.EqualFold(id.String(), name) {
			return id, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", name)
}

func run(kindName, schemeName string, datasets, rows, probeK int, locality bool, seed int64, sqlText, faultSpec string, dynamic, jsonOut bool) error {
	kind, err := parseKind(kindName)
	if err != nil {
		return err
	}
	scheme, err := parseScheme(schemeName)
	if err != nil {
		return err
	}
	s := experiments.DefaultSetup()
	if datasets > 0 {
		s.Datasets = datasets
	}
	if rows > 0 {
		s.RowsPerSite = rows
	}
	if probeK > 0 {
		s.ProbeK = probeK
	}
	if seed != 0 {
		s.Seed = seed
	}
	if faultSpec != "" {
		sched, err := faults.Parse(faultSpec)
		if err != nil {
			return err
		}
		sched.Seed = s.Seed
		s.Faults = sched
	}

	c, w, err := s.Populated(kind, locality, 0)
	if err != nil {
		return err
	}

	if dynamic {
		empty, err := s.BuildCluster()
		if err != nil {
			return err
		}
		rep, err := core.RunDynamic(empty, w, scheme, s.PlacementOptions(0), core.DefaultDynamicConfig())
		if err != nil {
			return err
		}
		fmt.Printf("%s / %v, dynamic: mean QCT %.2fs over %d arrivals, %d replans, %d batches\n",
			scheme, kind, rep.MeanQCT, len(rep.QCTs), rep.Replans, rep.BatchesDelivered)
		return nil
	}

	vanilla, err := core.VanillaBaseline(c.Clone(), w)
	if err != nil {
		return err
	}
	opts := s.PlacementOptions(0)
	if jsonOut {
		opts = opts.With(placement.WithObs(obs.NewCollector()))
	}
	sys, err := core.New(c, w, scheme, opts)
	if err != nil {
		return err
	}
	prep, err := sys.Prepare()
	if err != nil {
		return err
	}
	if !jsonOut {
		fmt.Printf("%s on %v: moved %.1f MB in %.2fs (lag %.0fs), probe checking %.2fs, LP %.2fs\n",
			scheme, kind, prep.MovedMB, prep.MoveDuration, s.Lag, prep.CheckTime, prep.LPTime)
		if s.Faults != nil {
			fmt.Printf("faults: %d scheduled events (%s)\n", len(s.Faults.Events), s.Faults)
		}
	}

	if sqlText != "" {
		return runSQL(sys, w, sqlText)
	}

	rep, err := sys.RunAll()
	if err != nil {
		return err
	}
	red := core.DataReduction(vanilla, rep.IntermediateMBPerSite)
	if jsonOut {
		r := sys.Report()
		r.Experiment = "bohrctl"
		r.DataReductionPct = red
		b, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding report: %w", err)
		}
		fmt.Println(string(b))
		return nil
	}
	fmt.Printf("mean QCT %.2fs over %d queries, %.1f MB shuffled, mean data reduction %.1f%%\n",
		rep.MeanQCT, len(rep.Queries), rep.TotalShuffleMB, stats.Mean(red))
	top := s.Topology()
	fmt.Printf("%-12s %10s %12s\n", "Site", "Inter(MB)", "Reduction")
	for i := 0; i < c.N(); i++ {
		fmt.Printf("%-12s %10.1f %11.1f%%\n", top.Sites[i].Name, rep.IntermediateMBPerSite[i], red[i])
	}
	return nil
}

func runSQL(sys *core.System, w *workload.Workload, text string) error {
	stmt, err := sql.Parse(text)
	if err != nil {
		return err
	}
	var ds *workload.Dataset
	for _, d := range w.Datasets {
		if d.Name == stmt.Dataset {
			ds = d
			break
		}
	}
	if ds == nil {
		var names []string
		for _, d := range w.Datasets {
			names = append(names, d.Name)
		}
		return fmt.Errorf("dataset %q not in workload (have %v)", stmt.Dataset, names)
	}
	plan, err := sql.Compile(stmt, ds.Schema)
	if err != nil {
		return err
	}
	res, err := sys.RunQuery(plan.Query)
	if err != nil {
		return err
	}
	rows := plan.PostProcess(res.Output)
	fmt.Printf("%s: QCT %.2fs, %.1f MB shuffled, %d output rows\n",
		plan.Query.Name, res.QCT, res.TotalShuffleMB, len(rows))
	limit := len(rows)
	if limit > 20 {
		limit = 20
	}
	for _, kv := range rows[:limit] {
		fmt.Printf("%-50s %v\n", strings.ReplaceAll(kv.Key, "\x1f", "|"), kv.Val)
	}
	if len(rows) > limit {
		fmt.Printf("... (%d more rows)\n", len(rows)-limit)
	}
	return nil
}
