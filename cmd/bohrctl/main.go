// Command bohrctl drives single experiments against the simulated
// geo-distributed deployment: generate a workload, run it under one of the
// six compared schemes, and print the report; or execute an ad-hoc SQL
// query under full Bohr.
//
//	bohrctl -workload tpcds -scheme bohr
//	bohrctl -workload bigdata-scan -scheme iridium-c -datasets 12 -locality
//	bohrctl -workload facebook -sql "SELECT jobclass, COUNT(*) FROM facebook-000 GROUP BY jobclass"
//	bohrctl -workload tpcds -scheme bohr -faults "crash:site=2,start=40,end=70;degrade:site=0,start=0,end=120,factor=0.3"
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"bohr/internal/cliflags"
	"bohr/internal/core"
	"bohr/internal/experiments"
	"bohr/internal/faults"
	"bohr/internal/obs"
	"bohr/internal/obs/critpath"
	"bohr/internal/obs/export"
	"bohr/internal/placement"
	"bohr/internal/sql"
	"bohr/internal/stats"
	"bohr/internal/workload"
)

// cliOpts carries the parsed command line into run.
type cliOpts struct {
	kindName, schemeName   string
	datasets, rows, probeK int
	locality, dynamic      bool
	seed                   int64
	sqlText, faultSpec     string
	jsonOut                bool
	critPath               bool
	traceOut               string
	common                 cliflags.Common
}

func main() {
	// Live-daemon subcommands ride in front of the classic flag surface:
	// `bohrctl top` and `bohrctl tail` watch a running bohrd serve daemon.
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "top":
			if err := runTop(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "bohrctl: %v\n", err)
				os.Exit(1)
			}
			return
		case "tail":
			if err := runTail(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "bohrctl: %v\n", err)
				os.Exit(1)
			}
			return
		}
	}
	var o cliOpts
	flag.StringVar(&o.kindName, "workload", "bigdata-scan", "bigdata-scan | bigdata-udf | bigdata-aggr | tpcds | facebook")
	flag.StringVar(&o.schemeName, "scheme", "bohr", "iridium | iridium-c | bohr-sim | bohr-joint | bohr-rdd | bohr")
	flag.IntVar(&o.datasets, "datasets", 0, "datasets per workload (0 = default)")
	flag.IntVar(&o.rows, "rows", 0, "rows per site per dataset (0 = default)")
	flag.IntVar(&o.probeK, "k", 0, "probe budget (0 = default 30)")
	flag.BoolVar(&o.locality, "locality", false, "locality-aware initial placement")
	flag.Int64Var(&o.seed, "seed", 0, "random seed (0 = default)")
	flag.StringVar(&o.sqlText, "sql", "", "ad-hoc SQL to run under the chosen scheme")
	flag.BoolVar(&o.dynamic, "dynamic", false, "run the §8.6 highly-dynamic-dataset protocol")
	flag.BoolVar(&o.jsonOut, "json", false, "emit the machine-readable core.Report JSON (trace + metrics) instead of text; standard runs only")
	flag.StringVar(&o.faultSpec, "faults", "", `fault schedule, e.g. "crash:site=2,start=40,end=70;degrade:site=0,start=0,end=120,factor=0.3"`)
	flag.BoolVar(&o.critPath, "critpath", false, "print each query's critical-path decomposition after the run")
	flag.StringVar(&o.traceOut, "trace-out", "", "write the run's trace as Chrome trace-event JSON (chrome://tracing) to this file")
	o.common.Register(flag.CommandLine)
	flag.Parse()
	o.common.Apply()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "bohrctl: %v\n", err)
		os.Exit(1)
	}
}

func run(o cliOpts) error {
	kind, err := cliflags.ParseKind(o.kindName)
	if err != nil {
		return err
	}
	scheme, err := cliflags.ParseScheme(o.schemeName)
	if err != nil {
		return err
	}
	s := experiments.DefaultSetup()
	if o.datasets > 0 {
		s.Datasets = o.datasets
	}
	if o.rows > 0 {
		s.RowsPerSite = o.rows
	}
	if o.probeK > 0 {
		s.ProbeK = o.probeK
	}
	if o.seed != 0 {
		s.Seed = o.seed
	}
	if o.faultSpec != "" {
		sched, err := faults.Parse(o.faultSpec)
		if err != nil {
			return err
		}
		sched.Seed = s.Seed
		s.Faults = sched
	}

	c, w, err := s.Populated(kind, o.locality, 0)
	if err != nil {
		return err
	}

	if o.dynamic {
		empty, err := s.BuildCluster()
		if err != nil {
			return err
		}
		opts := s.PlacementOptions(0)
		var col *obs.Collector
		if o.jsonOut {
			col = obs.NewCollector()
			opts = opts.With(placement.WithObs(col))
		}
		rep, err := core.RunDynamic(context.Background(), empty, w, scheme, core.DefaultDynamicConfig(), core.WithPlacement(opts))
		if err != nil {
			return err
		}
		if o.jsonOut {
			report := &core.Report{
				SchemaVersion: core.ReportSchemaVersion,
				Experiment:    "bohrctl-dynamic",
				Scheme:        scheme.String(),
				Workload:      kind.String(),
				Seed:          s.Seed,
				Dynamic:       rep,
				Trace:         col.Trace(),
				Metrics:       col.MetricsSnapshot(),
			}
			b, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				return fmt.Errorf("encoding report: %w", err)
			}
			fmt.Println(string(b))
			return nil
		}
		fmt.Printf("%s / %v, dynamic: mean QCT %.2fs over %d arrivals, %d replans, %d batches\n",
			scheme, kind, rep.MeanQCT, len(rep.QCTs), rep.Replans, rep.BatchesDelivered)
		return nil
	}

	vanilla, err := core.VanillaBaseline(context.Background(), c.Clone(), w)
	if err != nil {
		return err
	}
	opts := s.PlacementOptions(0)
	needObs := o.jsonOut || o.critPath || o.traceOut != "" || o.common.TelemetryAddr != ""
	var col *obs.Collector
	if needObs {
		col = obs.NewCollector()
		opts = opts.With(placement.WithObs(col))
	}
	if o.common.TelemetryAddr != "" {
		srv := export.New(col)
		addr, err := srv.Start(o.common.TelemetryAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bohrctl: telemetry on http://%s/metrics\n", addr)
	}
	sys, err := core.New(c, w, scheme, opts)
	if err != nil {
		return err
	}
	prep, err := sys.Prepare(context.Background())
	if err != nil {
		return err
	}
	if !o.jsonOut {
		fmt.Printf("%s on %v: moved %.1f MB in %.2fs (lag %.0fs), probe checking %.2fs, LP %.2fs\n",
			scheme, kind, prep.MovedMB, prep.MoveDuration, s.Lag, prep.CheckTime, prep.LPTime)
		if s.Faults != nil {
			fmt.Printf("faults: %d scheduled events (%s)\n", len(s.Faults.Events), s.Faults)
		}
	}

	if o.sqlText != "" {
		return runSQL(sys, w, o.sqlText)
	}

	rep, err := sys.RunAll(context.Background())
	if err != nil {
		return err
	}
	red := core.DataReduction(vanilla, rep.IntermediateMBPerSite)
	var report *core.Report
	if needObs {
		report = sys.Report()
		report.Experiment = "bohrctl"
		report.DataReductionPct = red
	}
	if o.traceOut != "" {
		b, err := export.ChromeTrace(report.Trace)
		if err != nil {
			return fmt.Errorf("encoding trace: %w", err)
		}
		if err := os.WriteFile(o.traceOut, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bohrctl: wrote Chrome trace to %s\n", o.traceOut)
	}
	if o.critPath {
		fmt.Print(critpath.Format(report.CritPaths))
	}
	if o.jsonOut {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding report: %w", err)
		}
		fmt.Println(string(b))
		return nil
	}
	if o.critPath {
		return nil
	}
	fmt.Printf("mean QCT %.2fs over %d queries, %.1f MB shuffled, mean data reduction %.1f%%\n",
		rep.MeanQCT, len(rep.Queries), rep.TotalShuffleMB, stats.Mean(red))
	top := s.Topology()
	fmt.Printf("%-12s %10s %12s\n", "Site", "Inter(MB)", "Reduction")
	for i := 0; i < c.N(); i++ {
		fmt.Printf("%-12s %10.1f %11.1f%%\n", top.Sites[i].Name, rep.IntermediateMBPerSite[i], red[i])
	}
	return nil
}

func runSQL(sys *core.System, w *workload.Workload, text string) error {
	stmt, err := sql.Parse(text)
	if err != nil {
		return err
	}
	var ds *workload.Dataset
	for _, d := range w.Datasets {
		if d.Name == stmt.Dataset {
			ds = d
			break
		}
	}
	if ds == nil {
		var names []string
		for _, d := range w.Datasets {
			names = append(names, d.Name)
		}
		return fmt.Errorf("dataset %q not in workload (have %v)", stmt.Dataset, names)
	}
	plan, err := sql.Compile(stmt, ds.Schema)
	if err != nil {
		return err
	}
	res, err := sys.RunQuery(context.Background(), plan.Query)
	if err != nil {
		return err
	}
	rows := plan.PostProcess(res.Output)
	fmt.Printf("%s: QCT %.2fs, %.1f MB shuffled, %d output rows\n",
		plan.Query.Name, res.QCT, res.TotalShuffleMB, len(rows))
	limit := len(rows)
	if limit > 20 {
		limit = 20
	}
	for _, kv := range rows[:limit] {
		fmt.Printf("%-50s %v\n", strings.ReplaceAll(kv.Key, "\x1f", "|"), kv.Val)
	}
	if len(rows) > limit {
		fmt.Printf("... (%d more rows)\n", len(rows)-limit)
	}
	return nil
}
