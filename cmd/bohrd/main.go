// Command bohrd runs the live-TCP pieces of the Bohr reproduction.
//
// Worker mode starts one site daemon:
//
//	bohrd -mode worker -site 0 -listen 127.0.0.1:7000 -up 10
//
// Load mode pushes CSV records ("coord1,coord2,...,value" per line) to a
// worker:
//
//	bohrd -mode load -workers 127.0.0.1:7000,127.0.0.1:7001 \
//	      -site 0 -dataset logs -schema url,country -file data.csv
//
// Query mode runs a distributed projection/aggregate across workers:
//
//	bohrd -mode query -workers 127.0.0.1:7000,127.0.0.1:7001 \
//	      -dataset logs -dims url -agg sum
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"bohr/internal/core"
	"bohr/internal/engine"
	"bohr/internal/netio"
	"bohr/internal/obs"
	"bohr/internal/obs/critpath"
	"bohr/internal/obs/export"
)

func main() {
	var (
		mode    = flag.String("mode", "worker", "worker | load | query")
		site    = flag.Int("site", 0, "site ID (worker, load)")
		listen  = flag.String("listen", "127.0.0.1:0", "listen address (worker)")
		up      = flag.Float64("up", 0, "uplink shaping in MB/s, 0 = unshaped (worker)")
		seed    = flag.Int64("seed", 1, "random seed (worker)")
		workers = flag.String("workers", "", "comma-separated worker addresses (load, query)")
		dataset = flag.String("dataset", "", "dataset name (load, query)")
		schema  = flag.String("schema", "", "comma-separated dimension names (load)")
		file    = flag.String("file", "", "CSV file of records (load); - for stdin")
		dims    = flag.String("dims", "", "comma-separated projection dimensions (query)")
		agg     = flag.String("agg", "sum", "sum | count | max | min (query)")
		queryID = flag.String("id", "q", "query identifier (query)")
		telAddr = flag.String("telemetry-addr", "", "serve /metrics, /healthz and /debug/pprof on this address (worker, query)")
		jsonOut = flag.Bool("json", false, "emit a core.Report JSON (stitched trace + metrics + critical path) instead of rows (query)")
	)
	flag.Parse()

	var err error
	switch *mode {
	case "worker":
		err = runWorker(*site, *listen, *up, *seed, *telAddr)
	case "load":
		err = runLoad(splitCSV(*workers), *site, *dataset, splitCSV(*schema), *file)
	case "query":
		err = runQuery(splitCSV(*workers), *dataset, splitCSV(*dims), *agg, *queryID, *telAddr, *jsonOut)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bohrd: %v\n", err)
		os.Exit(1)
	}
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func runWorker(site int, listen string, up float64, seed int64, telAddr string) error {
	w, err := netio.NewWorker(site, listen, up, seed)
	if err != nil {
		return err
	}
	if telAddr != "" {
		srv := export.New(w.Obs())
		srv.GaugeFunc("netio.live_conns", func() float64 { return float64(w.LiveConns()) })
		addr, err := srv.Start(telAddr)
		if err != nil {
			w.Close()
			return err
		}
		defer srv.Close()
		fmt.Printf("bohrd: site %d telemetry on http://%s/metrics\n", site, addr)
	}
	fmt.Printf("bohrd: site %d listening on %s (uplink %s)\n",
		site, w.Addr(), shapeDesc(up))
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	return w.Close()
}

func shapeDesc(up float64) string {
	if up <= 0 {
		return "unshaped"
	}
	return fmt.Sprintf("%.1f MB/s", up)
}

func runLoad(addrs []string, site int, dataset string, schema []string, file string) error {
	if dataset == "" || len(schema) == 0 {
		return fmt.Errorf("load mode needs -dataset and -schema")
	}
	in := os.Stdin
	if file != "" && file != "-" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	var records []engine.KV
	sc := bufio.NewScanner(in)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != len(schema)+1 {
			return fmt.Errorf("line %d: got %d fields, want %d coords + value", line, len(parts), len(schema))
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(parts[len(parts)-1]), 64)
		if err != nil {
			return fmt.Errorf("line %d: bad value: %w", line, err)
		}
		coords := parts[:len(parts)-1]
		for i := range coords {
			coords[i] = strings.TrimSpace(coords[i])
		}
		records = append(records, engine.KV{Key: strings.Join(coords, "\x1f"), Val: val})
	}
	if err := sc.Err(); err != nil {
		return err
	}
	ctl, err := netio.Dial(addrs)
	if err != nil {
		return err
	}
	defer ctl.Close()
	if err := ctl.Put(site, dataset, schema, records); err != nil {
		return err
	}
	fmt.Printf("bohrd: loaded %d records into %q at site %d\n", len(records), dataset, site)
	return nil
}

func runQuery(addrs []string, dataset string, dims []string, agg, id, telAddr string, jsonOut bool) error {
	if dataset == "" {
		return fmt.Errorf("query mode needs -dataset")
	}
	var op engine.CombineOp
	switch strings.ToLower(agg) {
	case "sum":
		op = engine.OpSum
	case "count":
		op = engine.OpCount
	case "max":
		op = engine.OpMax
	case "min":
		op = engine.OpMin
	default:
		return fmt.Errorf("unknown aggregate %q", agg)
	}
	ctl, err := netio.Dial(addrs)
	if err != nil {
		return err
	}
	defer ctl.Close()
	// Live runs have no simulator clock: collect wall-clock spans, and
	// carry the trace context so workers ship their subtrees back.
	col := obs.NewCollector(obs.WithWallClock())
	ctl.SetObs(col)
	if telAddr != "" {
		srv := export.New(col)
		srv.GaugeFunc("netio.inflight_queries", func() float64 { return float64(ctl.InflightQueries()) })
		addr, err := srv.Start(telAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bohrd: telemetry on http://%s/metrics\n", addr)
	}
	res, err := ctl.RunQuery(netio.QueryDTO{
		ID: id, Dataset: dataset, Dims: dims, Combine: op,
	}, nil)
	if err != nil {
		return err
	}
	if jsonOut {
		r := &core.Report{
			SchemaVersion: core.ReportSchemaVersion,
			Experiment:    "bohrd",
			Trace:         col.Trace(),
			Metrics:       col.MetricsSnapshot(),
		}
		r.CritPaths = critpath.Analyze(r.Trace, r.Metrics)
		b, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding report: %w", err)
		}
		fmt.Println(string(b))
		return nil
	}
	fmt.Printf("bohrd: query %q finished in %v, %d cross-site records, per-site intermediate %v\n",
		id, res.Elapsed, res.ShuffledRecords, res.IntermediatePerSite)
	limit := len(res.Output)
	if limit > 20 {
		limit = 20
	}
	for _, kv := range res.Output[:limit] {
		fmt.Printf("%-40s %v\n", strings.ReplaceAll(kv.Key, "\x1f", "|"), kv.Val)
	}
	if len(res.Output) > limit {
		fmt.Printf("... (%d more rows)\n", len(res.Output)-limit)
	}
	return nil
}
