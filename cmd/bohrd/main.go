// Command bohrd runs the live pieces of the Bohr reproduction as
// subcommands sharing one flag surface (see internal/cliflags).
//
// Serve mode runs the multi-tenant query daemon: data is generated and
// placed once, then POST /v1/query accepts SQL + a tenant ID, with
// telemetry on the same listener:
//
//	bohrd serve -workload bigdata-scan -scheme bohr -telemetry-addr 127.0.0.1:8080
//	curl -s http://127.0.0.1:8080/v1/query -d \
//	  '{"tenant":"alice","query":"SELECT url, SUM(measure) FROM ds0 GROUP BY url LIMIT 3"}'
//
// Worker mode starts one site daemon:
//
//	bohrd worker -site 0 -listen 127.0.0.1:7000 -up 10
//
// Load mode pushes CSV records ("coord1,coord2,...,value" per line)
// either in bulk to a worker or as a stream to a serve daemon's ingest
// endpoint (at-least-once, with per-source offsets so a restarted
// loader can resume with -offset and replays dedupe server-side):
//
//	bohrd load -workers 127.0.0.1:7000,127.0.0.1:7001 \
//	      -site 0 -dataset logs -schema url,country -file data.csv
//	bohrd load -server http://127.0.0.1:8080 -source web-tier \
//	      -site 0 -dataset ds0 -schema url,country -file data.csv
//
// Query mode runs a distributed projection/aggregate across workers:
//
//	bohrd query -workers 127.0.0.1:7000,127.0.0.1:7001 \
//	      -dataset logs -dims url -agg sum
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"bohr/internal/cliflags"
	"bohr/internal/core"
	"bohr/internal/durable"
	"bohr/internal/engine"
	"bohr/internal/experiments"
	"bohr/internal/ingest"
	"bohr/internal/netio"
	"bohr/internal/obs"
	"bohr/internal/obs/critpath"
	"bohr/internal/obs/export"
	"bohr/internal/obs/window"
	"bohr/internal/serve"
)

func main() {
	if len(os.Args) < 2 || strings.HasPrefix(os.Args[1], "-") {
		fmt.Fprintln(os.Stderr, "bohrd: usage: bohrd <serve|worker|load|query> [flags]")
		os.Exit(2)
	}
	sub, args := os.Args[1], os.Args[2:]
	var err error
	switch sub {
	case "serve":
		err = runServe(args)
	case "worker":
		err = runWorker(args)
	case "load":
		err = runLoad(args)
	case "query":
		err = runQuery(args)
	default:
		err = fmt.Errorf("unknown subcommand %q (want serve, worker, load or query)", sub)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bohrd: %v\n", err)
		os.Exit(1)
	}
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("bohrd serve", flag.ExitOnError)
	var common cliflags.Common
	common.Register(fs)
	var ing cliflags.Ingest
	ing.Register(fs)
	var (
		kindName   = fs.String("workload", "bigdata-scan", "workload to generate and serve")
		schemeName = fs.String("scheme", "bohr", "placement scheme")
		datasets   = fs.Int("datasets", 0, "datasets per workload (0 = default)")
		rows       = fs.Int("rows", 0, "rows per site per dataset (0 = default)")
		seed       = fs.Int64("seed", 0, "random seed (0 = default)")
		quick      = fs.Bool("quick", true, "use the small quick setup")
		maxConc    = fs.Int("max-concurrent", 8, "queries executing at once across tenants")
		quota      = fs.Int("tenant-quota", 2, "concurrently executing queries per tenant")
		maxQueue   = fs.Int("max-queue", 64, "waiting requests before admission control rejects")
		weights    = fs.String("weights", "", `tenant scheduling weights, e.g. "alice=3,bob=1"`)
		slowQuery  = fs.Duration("slow-query", 250*time.Millisecond,
			"latency threshold for slow-query trace retention (negative disables)")
		flightRing = fs.Int("flight-ring", 512, "flight recorder ring size (recent query records)")
		dataDir    = fs.String("data-dir", "",
			"durability directory (WAL + snapshots); acked ingest survives kill -9 and the daemon recovers on restart (empty disables)")
		fsync     = fs.Bool("fsync", true, "fsync the WAL before acking a push (group commit); needs -data-dir")
		snapEvery = fs.Int("snapshot-every", 16,
			"cut a state snapshot every N applied ingest batches, 0 = only at shutdown; needs -data-dir")
	)
	fs.Parse(args)
	common.Apply()
	logger, err := common.Logger(os.Stderr)
	if err != nil {
		return err
	}

	kind, err := cliflags.ParseKind(*kindName)
	if err != nil {
		return err
	}
	scheme, err := cliflags.ParseScheme(*schemeName)
	if err != nil {
		return err
	}
	s := experiments.DefaultSetup()
	if *quick {
		s = experiments.QuickSetup()
	}
	if *datasets > 0 {
		s.Datasets = *datasets
	}
	if *rows > 0 {
		s.RowsPerSite = *rows
	}
	if *seed != 0 {
		s.Seed = *seed
	}
	cluster, w, err := s.Populated(kind, false, 0)
	if err != nil {
		return err
	}
	col := obs.NewCollector(obs.WithWallClock())
	// Tap every metric the daemon records into the rolling-window registry,
	// so /v1/stats (and bohrctl top) report windowed rates and percentiles
	// instead of all-time aggregates.
	win := window.New(nil)
	col.SetSink(win)
	opts := s.PlacementOptions(0)
	opts.Obs = col
	sys, err := core.New(cluster, w, scheme, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bohrd: placing %d datasets under %s...\n", len(w.Datasets), scheme)
	if _, err := sys.Prepare(context.Background()); err != nil {
		return err
	}

	schedCfg := serve.SchedConfig{
		MaxConcurrent: *maxConc, TenantQuota: *quota, MaxQueue: *maxQueue,
		Weights: map[string]float64{},
	}
	for _, pair := range cliflags.SplitCSV(*weights) {
		name, val, ok := strings.Cut(pair, "=")
		if !ok {
			return fmt.Errorf("bad -weights entry %q (want tenant=weight)", pair)
		}
		wgt, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad weight in %q: %w", pair, err)
		}
		schedCfg.Weights[name] = wgt
	}
	cfg := serve.Config{
		Sched:   schedCfg,
		Flight:  &serve.FlightConfig{RingSize: *flightRing, SlowThreshold: *slowQuery},
		Windows: win,
		Logger:  logger,
	}
	if caps, ok := common.Caps(); ok {
		cfg.CacheCaps = caps
	}
	fe := serve.New(serve.NewEngineBackend(sys), cfg, col)
	sys.SetReplanEvery(ing.Replan)
	ingCfg := ing.Config(s.Seed)
	ingCfg.Logger = logger
	var pipe *ingest.Pipeline
	var dman *durable.Manager
	if *dataDir != "" {
		dman, err = durable.Open(durable.Config{Dir: *dataDir, Fsync: *fsync, Logger: logger})
		if err != nil {
			return err
		}
		var sum *durable.RecoverySummary
		pipe, sum, err = fe.EnableDurableIngest(context.Background(), ingCfg, dman, *snapEvery)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr,
			"bohrd: recovered %s: snapshot seq %d, replayed %d frames (%d records, %d deduped), wal seq %d, torn bytes %d\n",
			*dataDir, sum.SnapshotSeq, sum.FramesReplayed, sum.RecordsReplayed,
			sum.RecordsDeduped, sum.WalSeq, sum.TruncatedBytes)
	} else {
		pipe, err = fe.EnableIngest(ingCfg)
		if err != nil {
			return err
		}
	}

	srv := export.New(col)
	srv.Handle("/v1/", fe.Handler())
	srv.GaugeFunc("serve.sched.inflight", func() float64 { return float64(fe.Scheduler().Inflight()) })
	srv.GaugeFunc("serve.sched.queue_depth", func() float64 { return float64(fe.Scheduler().QueueDepth()) })
	// ingest.queue_depth is pushed by the pipeline itself on every admit
	// and settle — no scrape-time callback, one source of truth.
	listen := common.TelemetryAddr
	if listen == "" {
		listen = "127.0.0.1:8080"
	}
	addr, err := srv.Start(listen)
	if err != nil {
		return err
	}
	defer srv.Close()
	var names []string
	for _, ds := range w.Datasets {
		names = append(names, ds.Name)
		if len(names) == 5 {
			names = append(names, "...")
			break
		}
	}
	fmt.Printf("bohrd: serving %d datasets (%s) on http://%s/v1/query (ingest on /v1/ingest, metrics on /metrics)\n",
		len(w.Datasets), strings.Join(names, ","), addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	// Orderly shutdown: drain the pipeline (delivering buffered batches),
	// let any in-flight background snapshot finish, cut a final snapshot
	// so the next start replays nothing, and seal the WAL.
	if err := pipe.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "bohrd: ingest drain: %v\n", err)
	}
	if dman != nil {
		fe.DrainSnapshots()
		if err := fe.SnapshotNow(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "bohrd: shutdown snapshot: %v\n", err)
		}
		if err := dman.Close(); err != nil {
			return err
		}
	}
	return nil
}

func runWorker(args []string) error {
	fs := flag.NewFlagSet("bohrd worker", flag.ExitOnError)
	var common cliflags.Common
	common.Register(fs)
	var (
		site   = fs.Int("site", 0, "site ID")
		listen = fs.String("listen", "127.0.0.1:0", "listen address")
		up     = fs.Float64("up", 0, "uplink shaping in MB/s, 0 = unshaped")
		seed   = fs.Int64("seed", 1, "random seed")
	)
	fs.Parse(args)
	common.Apply()

	w, err := netio.NewWorker(*site, *listen, *up, *seed)
	if err != nil {
		return err
	}
	if common.TelemetryAddr != "" {
		srv := export.New(w.Obs())
		srv.GaugeFunc("netio.live_conns", func() float64 { return float64(w.LiveConns()) })
		addr, err := srv.Start(common.TelemetryAddr)
		if err != nil {
			w.Close()
			return err
		}
		defer srv.Close()
		fmt.Printf("bohrd: site %d telemetry on http://%s/metrics\n", *site, addr)
	}
	fmt.Printf("bohrd: site %d listening on %s (uplink %s)\n",
		*site, w.Addr(), shapeDesc(*up))
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	return w.Close()
}

func shapeDesc(up float64) string {
	if up <= 0 {
		return "unshaped"
	}
	return fmt.Sprintf("%.1f MB/s", up)
}

func runLoad(args []string) error {
	fs := flag.NewFlagSet("bohrd load", flag.ExitOnError)
	var common cliflags.Common
	common.Register(fs)
	var ing cliflags.Ingest
	ing.Register(fs)
	var (
		workers = fs.String("workers", "", "comma-separated worker addresses (netio bulk load)")
		server  = fs.String("server", "", "bohrd serve base URL for streaming ingest (e.g. http://127.0.0.1:8080)")
		source  = fs.String("source", "loader", "ingest source name (offsets are per source)")
		offset  = fs.Uint64("offset", 1, "first ingest offset to assign (resume a restarted source here)")
		site    = fs.Int("site", 0, "destination site ID")
		dataset = fs.String("dataset", "", "dataset name")
		schema  = fs.String("schema", "", "comma-separated dimension names")
		file    = fs.String("file", "", "CSV file of records; - for stdin")
		seed    = fs.Int64("seed", 1, "random seed for retry backoff jitter")
	)
	fs.Parse(args)
	common.Apply()

	schemaDims := cliflags.SplitCSV(*schema)
	if *dataset == "" || len(schemaDims) == 0 {
		return fmt.Errorf("load needs -dataset and -schema")
	}
	if (*workers == "") == (*server == "") {
		return fmt.Errorf("load needs exactly one of -workers (bulk) or -server (streaming)")
	}
	in := os.Stdin
	if *file != "" && *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	// Streaming mode: push batches at POST /v1/ingest through the ingest
	// client, which assigns monotonic per-source offsets and retries 429s
	// with seeded backoff (the server's dedupe makes resends safe).
	if *server != "" {
		cli := ingest.NewClient(strings.TrimRight(*server, "/")+"/v1/ingest", *source, ingest.ClientConfig{
			BatchRecords: ing.Batch,
			Seed:         *seed,
			StartOffset:  *offset,
		})
		ctx := context.Background()
		rows := 0
		err := scanCSV(in, schemaDims, func(coords []string, val float64) error {
			rows++
			return cli.Add(ctx, *dataset, *site, coords, val)
		})
		if err != nil {
			return err
		}
		if err := cli.Flush(ctx); err != nil {
			return err
		}
		st := cli.Stats()
		fmt.Printf("bohrd: streamed %d records into %q at site %d as source %q (accepted %d, deduped %d, retries %d, next offset %d)\n",
			rows, *dataset, *site, *source, st.Accepted, st.Deduped, st.Retries, cli.NextOffset())
		return nil
	}

	var records []engine.KV
	err := scanCSV(in, schemaDims, func(coords []string, val float64) error {
		records = append(records, engine.KV{Key: strings.Join(coords, "\x1f"), Val: val})
		return nil
	})
	if err != nil {
		return err
	}
	ctl, err := netio.Dial(context.Background(), cliflags.SplitCSV(*workers))
	if err != nil {
		return err
	}
	defer ctl.Close()
	if err := ctl.Put(context.Background(), *site, *dataset, schemaDims, records); err != nil {
		return err
	}
	fmt.Printf("bohrd: loaded %d records into %q at site %d\n", len(records), *dataset, *site)
	return nil
}

// scanCSV reads "coord1,...,coordN,value" lines (blank and # lines
// skipped) and hands each parsed record to emit.
func scanCSV(in *os.File, schemaDims []string, emit func(coords []string, val float64) error) error {
	sc := bufio.NewScanner(in)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != len(schemaDims)+1 {
			return fmt.Errorf("line %d: got %d fields, want %d coords + value", line, len(parts), len(schemaDims))
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(parts[len(parts)-1]), 64)
		if err != nil {
			return fmt.Errorf("line %d: bad value: %w", line, err)
		}
		coords := parts[:len(parts)-1]
		for i := range coords {
			coords[i] = strings.TrimSpace(coords[i])
		}
		if err := emit(coords, val); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	return sc.Err()
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("bohrd query", flag.ExitOnError)
	var common cliflags.Common
	common.Register(fs)
	var (
		workers = fs.String("workers", "", "comma-separated worker addresses")
		dataset = fs.String("dataset", "", "dataset name")
		dims    = fs.String("dims", "", "comma-separated projection dimensions")
		agg     = fs.String("agg", "sum", "sum | count | max | min")
		queryID = fs.String("id", "q", "query identifier")
		jsonOut = fs.Bool("json", false, "emit a core.Report JSON (stitched trace + metrics + critical path) instead of rows")
	)
	fs.Parse(args)
	common.Apply()

	if *dataset == "" {
		return fmt.Errorf("query needs -dataset")
	}
	var op engine.CombineOp
	switch strings.ToLower(*agg) {
	case "sum":
		op = engine.OpSum
	case "count":
		op = engine.OpCount
	case "max":
		op = engine.OpMax
	case "min":
		op = engine.OpMin
	default:
		return fmt.Errorf("unknown aggregate %q", *agg)
	}
	ctl, err := netio.Dial(context.Background(), cliflags.SplitCSV(*workers))
	if err != nil {
		return err
	}
	defer ctl.Close()
	// Live runs have no simulator clock: collect wall-clock spans, and
	// carry the trace context so workers ship their subtrees back.
	col := obs.NewCollector(obs.WithWallClock())
	ctl.SetObs(col)
	if common.TelemetryAddr != "" {
		srv := export.New(col)
		srv.GaugeFunc("netio.inflight_queries", func() float64 { return float64(ctl.InflightQueries()) })
		addr, err := srv.Start(common.TelemetryAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "bohrd: telemetry on http://%s/metrics\n", addr)
	}
	res, err := ctl.RunQuery(context.Background(), netio.QueryDTO{
		ID: *queryID, Dataset: *dataset, Dims: cliflags.SplitCSV(*dims), Combine: op,
	}, nil)
	if err != nil {
		return err
	}
	if *jsonOut {
		r := &core.Report{
			SchemaVersion: core.ReportSchemaVersion,
			Experiment:    "bohrd",
			Trace:         col.Trace(),
			Metrics:       col.MetricsSnapshot(),
		}
		r.CritPaths = critpath.Analyze(r.Trace, r.Metrics)
		b, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return fmt.Errorf("encoding report: %w", err)
		}
		fmt.Println(string(b))
		return nil
	}
	fmt.Printf("bohrd: query %q finished in %v, %d cross-site records, per-site intermediate %v\n",
		*queryID, res.Elapsed, res.ShuffledRecords, res.IntermediatePerSite)
	limit := len(res.Output)
	if limit > 20 {
		limit = 20
	}
	for _, kv := range res.Output[:limit] {
		fmt.Printf("%-40s %v\n", strings.ReplaceAll(kv.Key, "\x1f", "|"), kv.Val)
	}
	if len(res.Output) > limit {
		fmt.Printf("... (%d more rows)\n", len(res.Output)-limit)
	}
	return nil
}
