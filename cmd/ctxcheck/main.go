// Command ctxcheck is the repo's context-first API gate. It walks the
// non-test sources of the packages that perform I/O or long-running
// execution (core, engine, netio, serve) and rejects any exported
// function or method whose name announces such work — Run, Dial, Put,
// Query, Acquire, and friends — but whose first parameter is not a
// context.Context. The gate is what keeps the PR 6 redesign from
// regressing: new entry points either take a context up front or are
// explicitly marked "Deprecated:" (the positional bridges kept for old
// callers).
//
// Usage: go run ./cmd/ctxcheck [dir ...]   (defaults to the gated set)
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// gated is the default directory set; every .go file in these trees
// (excluding *_test.go) is checked.
var gated = []string{
	"internal/core",
	"internal/engine",
	"internal/netio",
	"internal/serve",
}

// ioVerbs are name prefixes that signal I/O or long-running execution.
// A match means the function must take a leading context.Context.
var ioVerbs = []string{
	"Run", "Dial", "Put", "Stats", "Score", "Move", "Query",
	"Prepare", "Execute", "Send", "Fetch", "Call", "Acquire",
	"Serve", "Transfer", "Shuffle",
}

// matchesVerb reports whether the name begins with a gated verb at a
// word boundary: "RunQuery" matches "Run", but "Runtime" does not.
func matchesVerb(name string) bool {
	for _, v := range ioVerbs {
		if !strings.HasPrefix(name, v) {
			continue
		}
		rest := name[len(v):]
		if rest == "" || rest[0] >= 'A' && rest[0] <= 'Z' {
			return true
		}
	}
	return false
}

// firstParamIsContext reports whether the function's first parameter is
// context.Context (matched syntactically; the gated packages import the
// standard library under its canonical name).
func firstParamIsContext(ft *ast.FuncType) bool {
	if ft.Params == nil || len(ft.Params.List) == 0 {
		return false
	}
	sel, ok := ft.Params.List[0].Type.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	return ok && pkg.Name == "context" && sel.Sel.Name == "Context"
}

func isDeprecated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.Contains(c.Text, "Deprecated:") {
			return true
		}
	}
	return false
}

func checkFile(fset *token.FileSet, path string) ([]string, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var bad []string
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || !fn.Name.IsExported() || !matchesVerb(fn.Name.Name) {
			continue
		}
		if isDeprecated(fn.Doc) || firstParamIsContext(fn.Type) {
			continue
		}
		pos := fset.Position(fn.Pos())
		recv := ""
		if fn.Recv != nil && len(fn.Recv.List) > 0 {
			recv = "(" + types(fn.Recv.List[0].Type) + ")."
		}
		bad = append(bad, fmt.Sprintf("%s:%d: %s%s must take context.Context as its first parameter (or carry a Deprecated: marker)",
			pos.Filename, pos.Line, recv, fn.Name.Name))
	}
	return bad, nil
}

// types renders a receiver type expression compactly.
func types(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + types(t.X)
	case *ast.IndexExpr:
		return types(t.X)
	case *ast.IndexListExpr:
		return types(t.X)
	default:
		return "?"
	}
}

func main() {
	dirs := gated
	if len(os.Args) > 1 {
		dirs = os.Args[1:]
	}
	fset := token.NewFileSet()
	var violations []string
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			bad, err := checkFile(fset, path)
			if err != nil {
				return err
			}
			violations = append(violations, bad...)
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "ctxcheck: %v\n", err)
			os.Exit(2)
		}
	}
	if len(violations) > 0 {
		sort.Strings(violations)
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "ctxcheck: %d exported I/O function(s) missing a leading context.Context\n", len(violations))
		os.Exit(1)
	}
	fmt.Printf("ctxcheck: ok (%d dirs clean)\n", len(dirs))
}
