// Dynamic: the §8.6 highly-dynamic-dataset experiment as a runnable
// scenario — 25% of each dataset is present at the first query, the rest
// streams in 5% batches between recurring queries, and Bohr re-runs
// similarity checking and placement every five arrivals.
//
//	go run ./examples/dynamic
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"bohr/internal/core"
	"bohr/internal/experiments"
	"bohr/internal/placement"
	"bohr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s := experiments.DefaultSetup()
	s.Datasets = 3
	s.Runs = 1

	fmt.Println("Highly dynamic datasets (§8.6): batches arrive between recurring queries")
	fmt.Println()

	for _, kind := range []workload.Kind{workload.TPCDS, workload.Facebook} {
		cluster, w, err := s.Populated(kind, false, 0)
		if err != nil {
			return err
		}

		// Static reference: all data present up front.
		staticDoc, err := core.Run(context.Background(), cluster.Clone(), w, placement.Bohr, core.WithPlacement(s.PlacementOptions(0)))
		if err != nil {
			return err
		}
		staticRep := staticDoc.Run

		// Dynamic: empty cluster, batches delivered by the runner.
		empty, err := s.BuildCluster()
		if err != nil {
			return err
		}
		dyn := core.DefaultDynamicConfig()
		dyn.Queries = 16 // 0.25 + 15 × 0.05 delivers the full corpus
		rep, err := core.RunDynamic(context.Background(), empty, w, placement.Bohr, dyn, core.WithPlacement(s.PlacementOptions(0)))
		if err != nil {
			return err
		}

		fmt.Printf("%s: static QCT %.2fs | dynamic arrivals (replan every %d):\n",
			kind, staticRep.MeanQCT, dyn.ReplanEvery)
		var bars []string
		for _, q := range rep.QCTs {
			bars = append(bars, fmt.Sprintf("%.1f", q))
		}
		fmt.Printf("  QCT per arrival: %s\n", strings.Join(bars, " "))
		tail := rep.QCTs[len(rep.QCTs)-dyn.ReplanEvery:]
		var tailMean float64
		for _, q := range tail {
			tailMean += q
		}
		tailMean /= float64(len(tail))
		fmt.Printf("  full-data tail mean %.2fs vs static %.2fs (%d replans, %d batches)\n\n",
			tailMean, staticRep.MeanQCT, rep.Replans, rep.BatchesDelivered)
	}
	return nil
}
