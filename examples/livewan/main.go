// Livewan: the whole pipeline over real TCP sockets — ten worker "sites"
// with token-bucket-shaped uplinks run in this process, a controller
// exchanges probes, directs similarity-aware movement out of the
// bottleneck, and executes a genuinely distributed map/combine/shuffle/
// reduce, comparing wall-clock shuffle volume with and without similarity.
//
//	go run ./examples/livewan
package main

import (
	"context"
	"fmt"
	"log"

	"bohr/internal/engine"
	"bohr/internal/netio"
	"bohr/internal/stats"
	"bohr/internal/wan"
)

const dataset = "weblogs"

var schema = []string{"url", "country"}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// startSites boots one shaped worker per EC2 region and loads skewed data:
// the slow regions hold more records, half drawn from a shared pool.
func startSites() (*netio.Controller, []*netio.Worker, error) {
	top := wan.EC2TenRegions(4) // 4 / 10 / 20 MB/s tiers
	var workers []*netio.Worker
	var addrs []string
	for i, site := range top.Sites {
		w, err := netio.NewWorker(i, "127.0.0.1:0", site.UpMBps, int64(i+1))
		if err != nil {
			return nil, nil, err
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	ctl, err := netio.Dial(context.Background(), addrs)
	if err != nil {
		return nil, workers, err
	}
	rng := stats.NewRand(7)
	for i, site := range top.Sites {
		n := 1500
		if site.UpMBps <= 4 { // slow tier: the bottleneck sites hold more
			n = 4000
		}
		recs := make([]engine.KV, n)
		for r := range recs {
			var url string
			if rng.Float64() < 0.5 {
				url = fmt.Sprintf("shared-u%03d", rng.Intn(150))
			} else {
				url = fmt.Sprintf("%s-u%03d", site.Name, rng.Intn(150))
			}
			recs[r] = engine.KV{
				Key: url + "\x1f" + []string{"US", "JP", "DE"}[rng.Intn(3)],
				Val: rng.Float64() * 10,
			}
		}
		if err := ctl.Put(context.Background(), i, dataset, schema, recs); err != nil {
			return nil, workers, err
		}
	}
	return ctl, workers, nil
}

func run() error {
	fmt.Println("Live WAN demo: ten shaped TCP sites on localhost")

	runOnce := func(similar bool, queryID string) (shuffled int, err error) {
		ctl, workers, err := startSites()
		defer func() {
			if ctl != nil {
				ctl.Close()
			}
			for _, w := range workers {
				_ = w.Close()
			}
		}()
		if err != nil {
			return 0, err
		}

		// Probe exchange: the bottleneck (Seoul, site 6 in the EC2 layout)
		// sends its top cells; the controller scores them everywhere and
		// moves records toward the most similar fast site.
		const bottleneck = 6
		probeStats, err := ctl.Stats(context.Background(), bottleneck, dataset, []string{"url"}, 30)
		if err != nil {
			return 0, err
		}
		bestSite, bestScore := -1, -1.0
		for site := 0; site < ctl.N(); site++ {
			if site == bottleneck || site > 2 { // fast tier is sites 0-2
				continue
			}
			score, err := ctl.Score(context.Background(), site, dataset, []string{"url"}, probeStats.Top)
			if err != nil {
				return 0, err
			}
			fmt.Printf("  probe score %s → site %d: %.2f\n", map[bool]string{true: "similar", false: "random "}[similar], site, score)
			if score > bestScore {
				bestSite, bestScore = site, score
			}
		}
		dstStats, err := ctl.Stats(context.Background(), bestSite, dataset, nil, 500)
		if err != nil {
			return 0, err
		}
		moved, err := ctl.Move(context.Background(), bottleneck, bestSite, dataset, 2000, similar, dstStats.Top)
		if err != nil {
			return 0, err
		}
		fmt.Printf("  moved %d records from the bottleneck to site %d (similarity-aware: %v)\n",
			moved, bestSite, similar)

		res, err := ctl.RunQuery(context.Background(), netio.QueryDTO{
			ID: queryID, Dataset: dataset, Dims: []string{"url"}, Combine: engine.OpSum,
		}, nil)
		if err != nil {
			return 0, err
		}
		fmt.Printf("  query done in %v, %d records crossed the WAN, %d result rows\n\n",
			res.Elapsed.Round(1_000_000), res.ShuffledRecords, len(res.Output))
		return res.ShuffledRecords, nil
	}

	fmt.Println("\nSimilarity-agnostic movement (Iridium-style):")
	random, err := runOnce(false, "q-random")
	if err != nil {
		return err
	}
	fmt.Println("Similarity-aware movement (Bohr):")
	similar, err := runOnce(true, "q-similar")
	if err != nil {
		return err
	}

	fmt.Printf("Cross-WAN shuffle: %d records (random) vs %d (similar)", random, similar)
	if similar < random {
		fmt.Printf(" — %.0f%% less intermediate data over real sockets.\n",
			100*(1-float64(similar)/float64(random)))
	} else {
		fmt.Println()
	}
	return nil
}
