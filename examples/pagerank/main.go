// PageRank: the AMPLab UDF workload (a simplified iterative PageRank)
// across the paper's ten EC2 regions, compared under all six schemes —
// the Figure 6/10 experiment at example scale.
//
//	go run ./examples/pagerank
package main

import (
	"context"
	"fmt"
	"log"

	"bohr/internal/core"
	"bohr/internal/experiments"
	"bohr/internal/placement"
	"bohr/internal/stats"
	"bohr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s := experiments.DefaultSetup()
	s.Datasets = 4
	s.Runs = 1

	cluster, w, err := s.Populated(workload.BigDataUDF, false, 0)
	if err != nil {
		return err
	}
	vanilla, err := core.VanillaBaseline(context.Background(), cluster.Clone(), w)
	if err != nil {
		return err
	}

	fmt.Println("Iterative PageRank (AMPLab UDF) over ten EC2 regions")
	fmt.Printf("%d datasets × %d rows/site, %d sites\n\n", s.Datasets, s.RowsPerSite, s.Sites)
	fmt.Printf("%-12s %10s %14s %12s\n", "Scheme", "QCT", "Intermediate", "Reduction")

	for _, id := range placement.AllSchemes() {
		rep, err := core.Run(context.Background(), cluster.Clone(), w, id, core.WithPlacement(s.PlacementOptions(0)))
		if err != nil {
			return err
		}
		red := core.DataReduction(vanilla, rep.Run.IntermediateMBPerSite)
		fmt.Printf("%-12s %9.2fs %12.1fMB %11.1f%%\n",
			id, rep.Run.MeanQCT, stats.Sum(rep.Run.IntermediateMBPerSite), stats.Mean(red))
	}

	// Show the actual top-ranked pages from a full Bohr run.
	c := cluster.Clone()
	sys, err := core.New(c, w, placement.Bohr, s.PlacementOptions(0))
	if err != nil {
		return err
	}
	if _, err := sys.Prepare(context.Background()); err != nil {
		return err
	}
	res, err := sys.RunQuery(context.Background(), w.Datasets[0].DominantQuery().Query)
	if err != nil {
		return err
	}
	fmt.Printf("\nTop pages of %s after %d rank rounds:\n", w.Datasets[0].Name, len(res.Rounds))
	top := res.Output
	// Output is key-sorted; select the 5 highest scores.
	for rank := 0; rank < 5; rank++ {
		best := -1
		for i, kv := range top {
			if best < 0 || kv.Val > top[best].Val {
				best = i
			}
		}
		if best < 0 {
			break
		}
		fmt.Printf("  %d. %-50s %.2f\n", rank+1, top[best].Key, top[best].Val)
		top = append(top[:best], top[best+1:]...)
	}
	return nil
}
