// Quickstart: the smallest complete Bohr pipeline — three sites, one
// dataset of web logs, one recurring query — showing pre-processing into
// OLAP cubes, probe-based similarity checking, joint data/task placement,
// similarity-aware movement, and the query speedup it buys.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"bohr/internal/core"
	"bohr/internal/engine"
	"bohr/internal/placement"
	"bohr/internal/stats"
	"bohr/internal/wan"
	"bohr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Three sites: Tokyo is the bottleneck (slow uplink, most data) —
	// the setting of the paper's Figure 1.
	top, err := wan.NewTopology(
		[]string{"Tokyo", "Oregon", "Ireland"},
		[]float64{4, 20, 20},
		[]float64{4, 20, 20},
	)
	if err != nil {
		return err
	}

	// Generate one web-log dataset whose records overlap across sites.
	cfg := workload.DefaultConfig(workload.BigDataScan)
	cfg.Sites = 3
	cfg.Datasets = 1
	cfg.RowsPerSite = 3000
	cfg.Overlap = 0.6
	w, err := workload.Generate(workload.BigDataScan, cfg)
	if err != nil {
		return err
	}

	runScheme := func(id placement.SchemeID) (qct float64, interMB float64, err error) {
		cluster, err := engine.NewCluster(top, 1, 4, 10_000)
		if err != nil {
			return 0, 0, err
		}
		if err := w.Populate(cluster); err != nil {
			return 0, 0, err
		}
		// One-shot pipeline: Prepare (probes, placement, movement in the
		// lag) + the full workload run, as one machine-readable report.
		rep, err := core.Run(context.Background(), cluster, w, id,
			core.WithLag(30), core.WithProbeK(30), core.WithSeed(1))
		if err != nil {
			return 0, 0, err
		}
		fmt.Printf("%-10s moved %.1f MB across the WAN in the %0.fs query lag\n",
			id, rep.Prepare.MovedMB, 30.0)
		return rep.Run.MeanQCT, stats.Sum(rep.Run.IntermediateMBPerSite), nil
	}

	fmt.Println("Bohr quickstart: one page-score dataset across Tokyo / Oregon / Ireland")
	fmt.Println()
	iridiumQCT, iridiumInter, err := runScheme(placement.IridiumC)
	if err != nil {
		return err
	}
	bohrQCT, bohrInter, err := runScheme(placement.Bohr)
	if err != nil {
		return err
	}

	fmt.Println()
	fmt.Printf("%-10s QCT %.2fs, intermediate data %.1f MB\n", "Iridium-C", iridiumQCT, iridiumInter)
	fmt.Printf("%-10s QCT %.2fs, intermediate data %.1f MB\n", "Bohr", bohrQCT, bohrInter)
	if bohrQCT < iridiumQCT {
		fmt.Printf("\nBohr is %.0f%% faster by moving records that combine at their destination.\n",
			100*(1-bohrQCT/iridiumQCT))
	}
	return nil
}
