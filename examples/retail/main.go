// Retail: TPC-DS-flavoured business intelligence through the SQL front
// end — OLAP cube exploration (slice / roll-up / dimension cubes) on the
// store_sales schema, then SQL aggregations executed under full Bohr.
//
//	go run ./examples/retail
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"bohr/internal/core"
	"bohr/internal/experiments"
	"bohr/internal/placement"
	"bohr/internal/sql"
	"bohr/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s := experiments.DefaultSetup()
	s.Datasets = 2
	s.Runs = 1
	cluster, w, err := s.Populated(workload.TPCDS, true, 0)
	if err != nil {
		return err
	}
	ds := w.Datasets[0]

	// 1. OLAP cube exploration: build the site-0 cube and drill around.
	sets, err := ds.CubeSets()
	if err != nil {
		return err
	}
	base := sets[0].Base()
	fmt.Printf("Retail analytics on %s (schema %v)\n", ds.Name, ds.Schema.Dims())
	fmt.Printf("Site 0 cube: %d rows in %d cells\n\n", base.NumRows(), base.NumCells())

	byRegion, err := base.DimensionCube("region")
	if err != nil {
		return err
	}
	fmt.Println("Roll-up to the region dimension cube:")
	for _, cell := range byRegion.TopCells(4) {
		fmt.Printf("  %-8s %8.0f sales over %d transactions\n", cell.Coords[0], cell.Sum, cell.Count)
	}

	amer, err := base.Slice("region", "AMER")
	if err != nil {
		return err
	}
	fmt.Printf("\nSlice region=AMER: %d cells, %.0f total sales\n\n", amer.NumCells(), amer.TotalMeasure())

	// 2. SQL under full Bohr across the ten regions.
	sys, err := core.New(cluster, w, placement.Bohr, s.PlacementOptions(0))
	if err != nil {
		return err
	}
	prep, err := sys.Prepare(context.Background())
	if err != nil {
		return err
	}
	fmt.Printf("Bohr prepared: %.1f MB moved, probes checked in %.2fs\n\n", prep.MovedMB, prep.CheckTime)

	queries := []string{
		fmt.Sprintf("SELECT region, SUM(measure) FROM %s GROUP BY region ORDER BY value DESC", ds.Name),
		fmt.Sprintf("SELECT store, SUM(measure) FROM %s WHERE region = 'APAC' GROUP BY store ORDER BY value DESC LIMIT 4", ds.Name),
		fmt.Sprintf("SELECT COUNT(*) FROM %s WHERE region != 'AMER'", ds.Name),
	}
	for _, text := range queries {
		plan, err := sql.CompileString(text, ds.Schema)
		if err != nil {
			return err
		}
		res, err := sys.RunQuery(context.Background(), plan.Query)
		if err != nil {
			return err
		}
		rows := plan.PostProcess(res.Output)
		fmt.Printf("%s\n  QCT %.2fs, %d rows\n", text, res.QCT, len(rows))
		limit := len(rows)
		if limit > 4 {
			limit = 4
		}
		for _, kv := range rows[:limit] {
			fmt.Printf("  %-30s %.1f\n", strings.ReplaceAll(kv.Key, "\x1f", " | "), kv.Val)
		}
		fmt.Println()
	}
	return nil
}
