package bohr_test

import (
	"testing"

	"bohr/internal/experiments"
	"bohr/internal/stats"
)

// TestPaperHeadlines asserts the paper's headline shapes end to end on the
// reduced setup: who wins, by roughly what factor. Absolute numbers are
// not expected to match the authors' EC2 testbed; the orderings are.
func TestPaperHeadlines(t *testing.T) {
	if testing.Short() {
		t.Skip("headline experiment is seconds-long")
	}
	s := benchSetup()

	// Figure 6 shape: Bohr ≤ Iridium-C ≤ Iridium per workload (with a
	// tie band at this scale), and a strict, sizeable win on average.
	rows, err := experiments.Figure6(s)
	if err != nil {
		t.Fatal(err)
	}
	var bohr, iridiumC, iridium float64
	for _, r := range rows {
		bohr += r.QCT["Bohr"]
		iridiumC += r.QCT["Iridium-C"]
		iridium += r.QCT["Iridium"]
		if r.QCT["Bohr"] > 1.15*r.QCT["Iridium-C"] {
			t.Errorf("%s: Bohr %.2fs vs Iridium-C %.2fs", r.Workload, r.QCT["Bohr"], r.QCT["Iridium-C"])
		}
	}
	if !(bohr < iridiumC && iridiumC <= iridium) {
		t.Fatalf("mean QCT ordering broken: Bohr %.2f, Iridium-C %.2f, Iridium %.2f",
			bohr/5, iridiumC/5, iridium/5)
	}
	speedup := 1 - bohr/iridiumC
	if speedup < 0.05 {
		t.Fatalf("Bohr only %.1f%% faster than Iridium-C; the paper reports 26-52%%", 100*speedup)
	}
	t.Logf("Bohr mean QCT %.2fs vs Iridium-C %.2fs (%.0f%% faster; paper: 26-52%%)",
		bohr/5, iridiumC/5, 100*speedup)

	// Figure 8 shape: Bohr's mean data reduction is a multiple of
	// Iridium-C's (the paper reports 2.6-5.3x).
	red, err := experiments.Figure8(s)
	if err != nil {
		t.Fatal(err)
	}
	var bohrRed, ircRed []float64
	for _, r := range red {
		bohrRed = append(bohrRed, r.Reduction["Bohr"])
		ircRed = append(ircRed, r.Reduction["Iridium-C"])
	}
	mb, mi := stats.Mean(bohrRed), stats.Mean(ircRed)
	if mb <= mi {
		t.Fatalf("Bohr mean reduction %.1f%% should exceed Iridium-C %.1f%%", mb, mi)
	}
	if mi > 0 && mb/mi < 1.5 {
		t.Fatalf("Bohr/Iridium-C reduction ratio %.1fx below the paper's multiple-x band", mb/mi)
	}
	t.Logf("mean data reduction: Bohr %.1f%% vs Iridium-C %.1f%%", mb, mi)
}
