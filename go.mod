module bohr

go 1.22
