// Package cache is the shared bounded memo store under the
// reproduction's three recurring-round caches (olap.CubeSet's derived
// cubes, similarity.SignatureCache, placement.CubeCache). Each wrapper
// keeps its own content-hash/generation validation and hit/miss
// accounting; this package owns what they had in common to NOT own:
// capacity.
//
// A Store evicts least-recently-used entries over a *logical clock*,
// never wall time. The clock only moves when a driver calls Advance (or
// AdvanceTo) at a deterministic point — a placement round, a base-cube
// generation — so every access inside one round carries the same stamp
// regardless of goroutine scheduling, and eviction order is a pure
// function of (stamp, key). That is what keeps `make determinism`
// byte-identical at pool width 1 and 8 with eviction enabled: which
// entries die never depends on which worker touched them first.
//
// Capacity is enforced in both entry count and estimated resident
// bytes, at Advance time. Between advances a round may transiently
// overshoot; a settled store (every driver advances once more before
// reporting) is always within caps. Eviction, live-entry and
// resident-byte levels are published on an obs.Collector as *additive
// counter deltas* — many stores sharing one metric name (one CubeSet
// per site, say) aggregate correctly and deterministically, which a
// last-writer-wins gauge would not.
package cache

import (
	"cmp"
	"os"
	"sort"
	"strconv"
	"sync"

	"bohr/internal/obs"
)

// Environment variables consulted once at init to seed the process-wide
// default capacities. A value of 0 means unlimited.
const (
	EnvEntries = "BOHR_CACHE_ENTRIES"
	EnvBytes   = "BOHR_CACHE_BYTES"
)

// Built-in default capacities: generous enough that single-shot runs
// never feel them, finite so a long dynamic run cannot grow without
// bound (the ROADMAP eviction item).
const (
	DefaultEntries = 4096
	DefaultBytes   = 256 << 20 // 256 MiB of estimated resident bytes
)

// Caps bounds a store. A zero (or negative) field means unlimited in
// that dimension; Unlimited() is the all-zero value.
type Caps struct {
	// Entries caps live entry count.
	Entries int
	// Bytes caps the summed size estimates of live entries.
	Bytes int64
}

// Unlimited returns caps that never evict.
func Unlimited() Caps { return Caps{} }

var (
	defaultMu   sync.Mutex
	defaultCaps = capsFromEnv()
)

func capsFromEnv() Caps {
	c := Caps{Entries: DefaultEntries, Bytes: DefaultBytes}
	if s := os.Getenv(EnvEntries); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			c.Entries = n
		}
	}
	if s := os.Getenv(EnvBytes); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil {
			c.Bytes = n
		}
	}
	return c
}

// DefaultCaps returns the process-wide default capacities new stores
// are built with: the built-in defaults, overridden by the environment,
// overridden by SetDefaultCaps (the -cache-entries/-cache-bytes flags).
func DefaultCaps() Caps {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	return defaultCaps
}

// SetDefaultCaps replaces the process-wide default capacities and
// returns the previous value. It only affects stores created afterwards.
func SetDefaultCaps(c Caps) Caps {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	prev := defaultCaps
	defaultCaps = c
	return prev
}

// entry is one live memo: the value, its size estimate, and the logical
// clock stamp of its last touch.
type entry[V any] struct {
	val   V
	bytes int64
	used  uint64
}

// Store is a bounded memo store with deterministic LRU eviction. All
// methods are mutex-guarded and safe for concurrent use; a nil *Store
// is a valid no-op that never holds anything.
type Store[K cmp.Ordered, V any] struct {
	mu        sync.Mutex
	name      string
	caps      Caps
	sizeOf    func(K, V) int64
	entries   map[K]*entry[V]
	bytes     int64
	clock     uint64
	evictions uint64
	col       *obs.Collector
}

// New creates a store. name prefixes the metric names registered on the
// collector ("<name>.evictions", "<name>.entries", "<name>.bytes", all
// registered at zero immediately so they appear in snapshots before the
// first access). sizeOf estimates one entry's resident bytes; nil
// disables byte accounting (entry-count cap only). col may be nil.
func New[K cmp.Ordered, V any](name string, caps Caps, col *obs.Collector, sizeOf func(K, V) int64) *Store[K, V] {
	s := &Store[K, V]{
		name:    name,
		caps:    caps,
		sizeOf:  sizeOf,
		entries: make(map[K]*entry[V]),
		col:     col,
	}
	col.Count(name+".evictions", 0)
	col.Count(name+".entries", 0)
	col.Count(name+".bytes", 0)
	return s
}

// Caps returns the store's capacity limits.
func (s *Store[K, V]) Caps() Caps {
	if s == nil {
		return Unlimited()
	}
	return s.caps
}

// SetCollector re-routes the store's level counters to a new collector
// (nil detaches). The current entry/byte levels transfer: they are
// subtracted from the old collector and added to the new one, so each
// collector's counters keep reflecting the live level of every store
// attached to it. The evictions counter is an event count and does not
// transfer.
func (s *Store[K, V]) SetCollector(col *obs.Collector) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.col == col {
		return
	}
	if s.col != nil {
		s.col.Count(s.name+".entries", -float64(len(s.entries)))
		s.col.Count(s.name+".bytes", -float64(s.bytes))
	}
	s.col = col
	col.Count(s.name+".evictions", 0)
	col.Count(s.name+".entries", float64(len(s.entries)))
	col.Count(s.name+".bytes", float64(s.bytes))
}

// Get returns the value under k and stamps it as used this round.
func (s *Store[K, V]) Get(k K) (V, bool) {
	var zero V
	if s == nil {
		return zero, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		return zero, false
	}
	e.used = s.clock
	return e.val, true
}

// Peek returns the value under k without touching its recency — the
// accessor form for introspection (pending-row counts, storage sums)
// that must not perturb LRU order.
func (s *Store[K, V]) Peek(k K) (V, bool) {
	var zero V
	if s == nil {
		return zero, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		return zero, false
	}
	return e.val, true
}

// Put inserts or replaces the value under k, re-estimating its size and
// stamping it as used this round. Capacity is NOT enforced here — only
// Advance evicts — so concurrent puts inside one round cannot race the
// choice of victim.
func (s *Store[K, V]) Put(k K, v V) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var size int64
	if s.sizeOf != nil {
		size = s.sizeOf(k, v)
	}
	e, ok := s.entries[k]
	if !ok {
		e = &entry[V]{}
		s.entries[k] = e
		s.col.Count(s.name+".entries", 1)
	}
	s.col.Count(s.name+".bytes", float64(size-e.bytes))
	s.bytes += size - e.bytes
	e.val, e.bytes, e.used = v, size, s.clock
}

// Delete removes the entry under k, if present. This is the immediate
// drop for entries known stale (a content-hash mismatch), as opposed to
// aging out via Advance.
func (s *Store[K, V]) Delete(k K) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropLocked(k)
}

// dropLocked removes k and maintains byte and level accounting.
// Callers hold s.mu.
func (s *Store[K, V]) dropLocked(k K) {
	e, ok := s.entries[k]
	if !ok {
		return
	}
	delete(s.entries, k)
	s.bytes -= e.bytes
	s.col.Count(s.name+".entries", -1)
	s.col.Count(s.name+".bytes", -float64(e.bytes))
}

// Advance moves the logical clock one round forward and enforces the
// capacity limits. Call it from sequential driver code at round
// boundaries (a replan, a query arrival) — never from inside a pooled
// kernel — so eviction decisions stay scheduling-independent.
func (s *Store[K, V]) Advance() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock++
	s.enforceLocked()
}

// AdvanceTo moves the logical clock forward to t (never backward) and
// enforces the capacity limits — the form for callers whose round
// counter lives elsewhere, like a base cube's generation.
func (s *Store[K, V]) AdvanceTo(t uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t > s.clock {
		s.clock = t
	}
	s.enforceLocked()
}

// overLocked reports whether either cap is exceeded. Callers hold s.mu.
func (s *Store[K, V]) overLocked() bool {
	if s.caps.Entries > 0 && len(s.entries) > s.caps.Entries {
		return true
	}
	if s.caps.Bytes > 0 && s.bytes > s.caps.Bytes {
		return true
	}
	return false
}

// enforceLocked evicts least-recently-used entries until both caps
// hold. Victims are ordered by (stamp ascending, key ascending) — a
// total, deterministic order, so the same access history always evicts
// the same entries whatever the pool width was. Callers hold s.mu.
func (s *Store[K, V]) enforceLocked() {
	if !s.overLocked() {
		return
	}
	type victim struct {
		key  K
		used uint64
	}
	order := make([]victim, 0, len(s.entries))
	for k, e := range s.entries {
		order = append(order, victim{key: k, used: e.used})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].used != order[j].used {
			return order[i].used < order[j].used
		}
		return order[i].key < order[j].key
	})
	for _, v := range order {
		if !s.overLocked() {
			return
		}
		s.dropLocked(v.key)
		s.evictions++
		s.col.Count(s.name+".evictions", 1)
	}
}

// Len reports the number of live entries.
func (s *Store[K, V]) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes reports the summed size estimates of live entries.
func (s *Store[K, V]) Bytes() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Evictions reports how many entries have been evicted over capacity
// (deliberate Deletes not included).
func (s *Store[K, V]) Evictions() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// Keys returns the live keys in ascending order (tests, debugging).
func (s *Store[K, V]) Keys() []K {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]K, 0, len(s.entries))
	for k := range s.entries {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Range calls fn for every live entry without touching recency, in
// unspecified order; fn returning false stops the walk. The store's
// lock is held across the walk — fn must not call back into the store.
func (s *Store[K, V]) Range(fn func(k K, v V) bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, e := range s.entries {
		if !fn(k, e.val) {
			return
		}
	}
}
