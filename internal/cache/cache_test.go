package cache

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"bohr/internal/obs"
)

func sized(caps Caps) *Store[string, int] {
	return New[string, int]("test.store", caps, nil, func(k string, v int) int64 { return int64(v) })
}

// TestLRUEvictionOrder pins the eviction contract: least-recent stamp
// first, key order breaking ties, enforcement only at Advance.
func TestLRUEvictionOrder(t *testing.T) {
	s := sized(Caps{Entries: 2})
	s.Put("a", 1)
	s.Put("b", 1)
	s.Put("c", 1) // over cap, but no eviction until Advance
	if s.Len() != 3 {
		t.Fatalf("Put evicted early: len=%d", s.Len())
	}
	s.Advance() // all three share stamp 0 -> "a" dies on key order
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("keys after advance = %v, want [b c]", got)
	}
	if s.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions())
	}

	// Touch "b" this round, add "d": "c" is now the coldest.
	if _, ok := s.Get("b"); !ok {
		t.Fatal("b missing")
	}
	s.Put("d", 1)
	s.Advance()
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"b", "d"}) {
		t.Fatalf("keys after second advance = %v, want [b d]", got)
	}
}

// TestByteCap checks the byte-dimension limit and the byte accounting
// across Put/replace/Delete.
func TestByteCap(t *testing.T) {
	s := sized(Caps{Bytes: 100})
	s.Put("a", 40)
	s.Put("b", 40)
	if s.Bytes() != 80 {
		t.Fatalf("bytes = %d, want 80", s.Bytes())
	}
	s.Put("a", 50) // replace re-estimates
	if s.Bytes() != 90 {
		t.Fatalf("bytes after replace = %d, want 90", s.Bytes())
	}
	s.Put("c", 40) // 130 total, over the 100 cap
	s.Advance()    // a and b share stamp 0; evicting "a" (50) gets to 80
	if s.Bytes() > 100 {
		t.Fatalf("bytes %d still over cap", s.Bytes())
	}
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("keys = %v, want [b c]", got)
	}
	s.Delete("b")
	if s.Bytes() != 40 || s.Len() != 1 {
		t.Fatalf("after delete: bytes=%d len=%d", s.Bytes(), s.Len())
	}
}

// TestUnlimitedNeverEvicts checks the zero-caps escape hatch.
func TestUnlimitedNeverEvicts(t *testing.T) {
	s := sized(Unlimited())
	for i := 0; i < 500; i++ {
		s.Put(fmt.Sprintf("k%03d", i), 1000)
		s.Advance()
	}
	if s.Len() != 500 || s.Evictions() != 0 {
		t.Fatalf("len=%d evictions=%d, want 500/0", s.Len(), s.Evictions())
	}
}

// TestDeterministicAcrossAccessOrder is the heart of the logical-clock
// design: two stores seeing the same per-round access *sets* in
// different within-round orders evict identically.
func TestDeterministicAcrossAccessOrder(t *testing.T) {
	run := func(perm []string) []string {
		s := sized(Caps{Entries: 3})
		for _, k := range []string{"a", "b", "c", "d", "e"} {
			s.Put(k, 1)
		}
		s.Advance()
		for _, k := range perm { // same set, different order
			s.Get(k)
		}
		s.Put("f", 1)
		s.Advance()
		return s.Keys()
	}
	want := run([]string{"c", "d"})
	if got := run([]string{"d", "c"}); !reflect.DeepEqual(got, want) {
		t.Fatalf("access order changed eviction: %v vs %v", got, want)
	}
}

// TestCollectorLevels checks the additive level counters, including the
// transfer semantics of SetCollector with two stores sharing one name.
func TestCollectorLevels(t *testing.T) {
	col := obs.NewCollector()
	s := New[string, int]("lvl", Caps{Entries: 1}, col, func(_ string, v int) int64 { return int64(v) })
	s.Put("a", 10)
	s.Put("b", 20)
	s.Advance()
	snap := col.MetricsSnapshot()
	if snap.Counters["lvl.entries"] != 1 || snap.Counters["lvl.bytes"] != 20 || snap.Counters["lvl.evictions"] != 1 {
		t.Fatalf("levels = %v/%v/%v, want 1/20/1",
			snap.Counters["lvl.entries"], snap.Counters["lvl.bytes"], snap.Counters["lvl.evictions"])
	}

	// A second store under the same name aggregates additively.
	s2 := New[string, int]("lvl", Unlimited(), col, func(_ string, v int) int64 { return int64(v) })
	s2.Put("x", 5)
	snap = col.MetricsSnapshot()
	if snap.Counters["lvl.entries"] != 2 || snap.Counters["lvl.bytes"] != 25 {
		t.Fatalf("shared-name levels = %v/%v, want 2/25",
			snap.Counters["lvl.entries"], snap.Counters["lvl.bytes"])
	}

	// Moving s2 to a fresh collector transfers its live levels.
	col2 := obs.NewCollector()
	s2.SetCollector(col2)
	snap = col.MetricsSnapshot()
	if snap.Counters["lvl.entries"] != 1 || snap.Counters["lvl.bytes"] != 20 {
		t.Fatalf("post-detach levels = %v/%v, want 1/20",
			snap.Counters["lvl.entries"], snap.Counters["lvl.bytes"])
	}
	snap2 := col2.MetricsSnapshot()
	if snap2.Counters["lvl.entries"] != 1 || snap2.Counters["lvl.bytes"] != 5 {
		t.Fatalf("transferred levels = %v/%v, want 1/5",
			snap2.Counters["lvl.entries"], snap2.Counters["lvl.bytes"])
	}
}

// TestNilStore checks every method on the nil no-op store.
func TestNilStore(t *testing.T) {
	var s *Store[string, int]
	s.Put("a", 1)
	s.Delete("a")
	s.Advance()
	s.AdvanceTo(9)
	s.SetCollector(obs.NewCollector())
	s.Range(func(string, int) bool { t.Fatal("nil range visited"); return false })
	if _, ok := s.Get("a"); ok {
		t.Fatal("nil store hit")
	}
	if _, ok := s.Peek("a"); ok {
		t.Fatal("nil store peek hit")
	}
	if s.Len() != 0 || s.Bytes() != 0 || s.Evictions() != 0 || s.Keys() != nil {
		t.Fatal("nil store not empty")
	}
	if s.Caps() != Unlimited() {
		t.Fatal("nil store caps not unlimited")
	}
}

// TestPeekDoesNotTouch checks Peek leaves recency alone: a peeked-only
// entry still dies first.
func TestPeekDoesNotTouch(t *testing.T) {
	s := sized(Caps{Entries: 2})
	s.Put("a", 1)
	s.Put("b", 1)
	s.Advance()
	s.Peek("a") // no stamp
	s.Get("b")  // stamp
	s.Put("c", 1)
	s.Advance()
	if got := s.Keys(); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("keys = %v, want [b c]", got)
	}
}

// TestConcurrentStress hammers one store from many goroutines with a
// sequential Advance between rounds, the exact shape the planner drives;
// run with -race. Final contents must match a sequential replay in size.
func TestConcurrentStress(t *testing.T) {
	s := sized(Caps{Entries: 16, Bytes: 1 << 20})
	for round := 0; round < 20; round++ {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					k := fmt.Sprintf("k%02d", (g*7+i)%40)
					if _, ok := s.Get(k); !ok {
						s.Put(k, 8)
					}
					s.Peek(k)
				}
			}(g)
		}
		wg.Wait()
		s.Advance() // sequential round boundary
		if s.Len() > 16 {
			t.Fatalf("round %d: len %d over cap after advance", round, s.Len())
		}
	}
	if s.Evictions() == 0 {
		t.Fatal("stress never evicted")
	}
}

// TestDefaultCapsOverride checks the SetDefaultCaps round trip used by
// the -cache-entries/-cache-bytes flags.
func TestDefaultCapsOverride(t *testing.T) {
	orig := DefaultCaps()
	defer SetDefaultCaps(orig)
	prev := SetDefaultCaps(Caps{Entries: 7, Bytes: 1234})
	if prev != orig {
		t.Fatalf("SetDefaultCaps returned %+v, want %+v", prev, orig)
	}
	if got := DefaultCaps(); got.Entries != 7 || got.Bytes != 1234 {
		t.Fatalf("DefaultCaps = %+v", got)
	}
}
