// Package cliflags is the one place the cmd tools define their shared
// flag surface: worker-pool width, memo-cache capacity, and the
// telemetry address register identically on every FlagSet that embeds
// Common, so bohrctl, bohrbench, and every bohrd subcommand accept the
// same knobs with the same semantics instead of hand-rolling drift.
package cliflags

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"time"

	"bohr/internal/cache"
	"bohr/internal/ingest"
	"bohr/internal/parallel"
	"bohr/internal/placement"
	"bohr/internal/workload"
)

// Common is the flag set every cmd tool shares.
type Common struct {
	// Width is the worker pool width for parallel kernels (0 =
	// GOMAXPROCS or $BOHR_PARALLEL_WIDTH, 1 = sequential).
	Width int
	// CacheEntries caps memo cache entries per cache (0 = unlimited,
	// -1 = default or $BOHR_CACHE_ENTRIES).
	CacheEntries int
	// CacheBytes caps memo cache resident bytes per cache (0 =
	// unlimited, -1 = default or $BOHR_CACHE_BYTES).
	CacheBytes int64
	// TelemetryAddr serves /metrics, /healthz and /debug/pprof when
	// non-empty (e.g. 127.0.0.1:9100).
	TelemetryAddr string
	// LogLevel is the structured-logging threshold: debug, info, warn,
	// error, or off.
	LogLevel string
	// LogFormat selects the structured-logging encoding: text or json.
	LogFormat string
}

// Register installs the shared flags on a FlagSet (use flag.CommandLine
// for single-command tools).
func (c *Common) Register(fs *flag.FlagSet) {
	fs.IntVar(&c.Width, "width", 0,
		"worker pool width for parallel kernels (0 = GOMAXPROCS or $BOHR_PARALLEL_WIDTH, 1 = sequential)")
	fs.IntVar(&c.CacheEntries, "cache-entries", -1,
		"memo cache entry cap per cache (0 = unlimited, -1 = default or $BOHR_CACHE_ENTRIES)")
	fs.Int64Var(&c.CacheBytes, "cache-bytes", -1,
		"memo cache resident-byte cap per cache (0 = unlimited, -1 = default or $BOHR_CACHE_BYTES)")
	fs.StringVar(&c.TelemetryAddr, "telemetry-addr", "",
		"serve /metrics, /healthz and /debug/pprof on this address (e.g. 127.0.0.1:9100)")
	fs.StringVar(&c.LogLevel, "log-level", "info",
		"structured log threshold: debug, info, warn, error, or off")
	fs.StringVar(&c.LogFormat, "log-format", "text",
		"structured log encoding: text or json")
}

// Logger resolves the -log-level / -log-format flags into a slog.Logger
// writing to w (typically os.Stderr). Level "off" returns nil — callers
// throughout the codebase treat a nil logger as logging disabled.
func (c *Common) Logger(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(c.LogLevel) {
	case "debug":
		level = slog.LevelDebug
	case "", "info":
		level = slog.LevelInfo
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	case "off", "none":
		return nil, nil
	default:
		return nil, fmt.Errorf("unknown -log-level %q (want debug, info, warn, error, or off)", c.LogLevel)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(c.LogFormat) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown -log-format %q (want text or json)", c.LogFormat)
}

// Apply pushes the parsed values into the process-wide defaults (pool
// width, memo-cache caps). Call once, after FlagSet.Parse.
func (c *Common) Apply() {
	parallel.SetDefaultWidth(c.Width)
	if caps, ok := c.Caps(); ok {
		cache.SetDefaultCaps(caps)
	}
}

// Caps resolves the flag values into explicit cache capacities; ok is
// false when both flags are at their "keep the default" sentinel.
func (c *Common) Caps() (caps cache.Caps, ok bool) {
	if c.CacheEntries < 0 && c.CacheBytes < 0 {
		return cache.Caps{}, false
	}
	caps = cache.DefaultCaps()
	if c.CacheEntries >= 0 {
		caps.Entries = c.CacheEntries
	}
	if c.CacheBytes >= 0 {
		caps.Bytes = c.CacheBytes
	}
	return caps, true
}

// Ingest is the shared flag surface for the streaming-ingestion
// pipeline: every tool that runs or drives an ingest endpoint (bohrd
// serve, bohrd load) registers the same -ingest-* knobs with the same
// semantics.
type Ingest struct {
	// Batch is the size flush trigger in records.
	Batch int
	// Interval is the time flush trigger (negative disables the timer).
	Interval time.Duration
	// Queue caps one source's buffered records before 429.
	Queue int
	// Rate throttles one source's admission in records/second (0 =
	// unlimited).
	Rate float64
	// Replan re-runs placement every N applied batches (0 disables).
	Replan int
}

// Register installs the shared ingest flags on a FlagSet.
func (g *Ingest) Register(fs *flag.FlagSet) {
	fs.IntVar(&g.Batch, "ingest-batch", 256,
		"ingest batch size: records buffered per source before a size-triggered flush")
	fs.DurationVar(&g.Interval, "ingest-interval", 200*time.Millisecond,
		"ingest flush interval for partial batches (negative disables the timer)")
	fs.IntVar(&g.Queue, "ingest-queue", 4096,
		"max buffered records per source before admission control returns 429")
	fs.Float64Var(&g.Rate, "ingest-rate", 0,
		"per-source ingest admission rate in records/second (0 = unlimited)")
	fs.IntVar(&g.Replan, "ingest-replan", 0,
		"replan placement every N applied ingest batches (0 disables live replans)")
}

// Config resolves the flags into a pipeline configuration.
func (g Ingest) Config(seed int64) ingest.Config {
	return ingest.Config{
		MaxBatchRecords: g.Batch,
		FlushInterval:   g.Interval,
		MaxPending:      g.Queue,
		SourceRate:      g.Rate,
		Seed:            seed,
	}
}

// SplitCSV splits a comma-separated flag value, trimming whitespace;
// empty input yields nil.
func SplitCSV(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// ParseKind resolves a workload name flag value.
func ParseKind(name string) (workload.Kind, error) {
	switch strings.ToLower(name) {
	case "bigdata-scan":
		return workload.BigDataScan, nil
	case "bigdata-udf":
		return workload.BigDataUDF, nil
	case "bigdata-aggr":
		return workload.BigDataAggr, nil
	case "tpcds":
		return workload.TPCDS, nil
	case "facebook":
		return workload.Facebook, nil
	}
	return 0, fmt.Errorf("unknown workload %q", name)
}

// ParseScheme resolves a placement scheme name flag value.
func ParseScheme(name string) (placement.SchemeID, error) {
	for _, id := range placement.AllSchemes() {
		if strings.EqualFold(id.String(), name) {
			return id, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q", name)
}
