package core

import (
	"context"
	"math"
	"testing"

	"bohr/internal/engine"
	"bohr/internal/placement"
	"bohr/internal/stats"
	"bohr/internal/wan"
	"bohr/internal/workload"
)

func setup(t *testing.T, kind workload.Kind) (*engine.Cluster, *workload.Workload) {
	t.Helper()
	cfg := workload.DefaultConfig(kind)
	cfg.Sites = 4
	cfg.Datasets = 3
	cfg.RowsPerSite = 600
	cfg.KeysPerPool = 100
	w, err := workload.Generate(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	top, err := wan.NewTopology(
		[]string{"s0", "s1", "s2", "s3"},
		[]float64{4, 10, 20, 20}, []float64{4, 10, 20, 20})
	if err != nil {
		t.Fatal(err)
	}
	c, err := engine.NewCluster(top, 1, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Populate(c); err != nil {
		t.Fatal(err)
	}
	return c, w
}

func TestNewValidation(t *testing.T) {
	c, w := setup(t, workload.BigDataScan)
	if _, err := New(nil, w, placement.Bohr, placement.Options{}); err == nil {
		t.Fatal("nil cluster should error")
	}
	if _, err := New(c, nil, placement.Bohr, placement.Options{}); err == nil {
		t.Fatal("nil workload should error")
	}
	// Empty cluster (not populated) should error.
	empty, _ := engine.NewCluster(c.Top, 1, 2, 100)
	if _, err := New(empty, w, placement.Bohr, placement.Options{}); err == nil {
		t.Fatal("unpopulated cluster should error")
	}
}

func TestPrepareAndRunAll(t *testing.T) {
	c, w := setup(t, workload.BigDataScan)
	sys, err := New(c, w, placement.Bohr, placement.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunQuery(context.Background(), w.Datasets[0].Queries[0].Query); err == nil {
		t.Fatal("queries before Prepare should error")
	}
	prep, err := sys.Prepare(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if prep.MovedMB <= 0 || prep.Moves == 0 {
		t.Fatalf("expected data movement: %+v", prep)
	}
	// The planner budgets movement with the per-link aggregate model; the
	// max-min fluid simulation can be slightly slower, so allow 15% slack.
	if prep.MoveDuration > 30*1.15 {
		t.Fatalf("movement %vs exceeded the 30s lag", prep.MoveDuration)
	}
	if prep.CheckTime <= 0 {
		t.Fatal("Bohr must spend probe-checking time")
	}
	// Prepare is idempotent: a second call returns the cached report.
	again, err := sys.Prepare(context.Background())
	if err != nil {
		t.Fatalf("second Prepare should be a no-op, got %v", err)
	}
	if again != prep {
		t.Fatal("second Prepare should return the cached report")
	}
	rep, err := sys.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Queries) != len(w.Datasets) {
		t.Fatalf("queries run = %d", len(rep.Queries))
	}
	if rep.MeanQCT <= 0 {
		t.Fatalf("mean QCT = %v", rep.MeanQCT)
	}
	if stats.Sum(rep.IntermediateMBPerSite) <= 0 {
		t.Fatal("no intermediate data recorded")
	}
	if sys.Plan() == nil {
		t.Fatal("plan should be exposed after Prepare")
	}
}

func TestVanillaBaselineAndDataReduction(t *testing.T) {
	c, w := setup(t, workload.BigDataScan)
	vanilla, err := VanillaBaseline(context.Background(), c.Clone(), w)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sum(vanilla) <= 0 {
		t.Fatal("vanilla baseline produced nothing")
	}

	sys, err := New(c, w, placement.Bohr, placement.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Prepare(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	red := DataReduction(vanilla, rep.IntermediateMBPerSite)
	if len(red) != c.N() {
		t.Fatalf("reduction sites = %d", len(red))
	}
	var mean float64
	for _, r := range red {
		if r > 100 {
			t.Fatalf("reduction ratio above 100%%: %v", r)
		}
		mean += r
	}
	mean /= float64(len(red))
	if mean <= 0 {
		t.Fatalf("Bohr should reduce intermediate data on average, got %v%%", mean)
	}
}

func TestDataReductionEdgeCases(t *testing.T) {
	// Zero vanilla with scheme data is an undefined ratio — flagged, not
	// silently reported as 0 (the old behavior hid the regression).
	red := DataReduction([]float64{0, 10}, []float64{5, 5})
	if red[0] != ReductionUndefined {
		t.Fatalf("zero vanilla with scheme data should flag ReductionUndefined, got %v", red[0])
	}
	if red[1] != 50 {
		t.Fatalf("expected 50%%, got %v", red[1])
	}
	// Zero vanilla AND zero scheme is a true no-op: 0.
	red = DataReduction([]float64{0}, []float64{0})
	if red[0] != 0 {
		t.Fatalf("zero/zero should give 0, got %v", red[0])
	}
	// Negative reduction (scheme worse than vanilla) is representable.
	red = DataReduction([]float64{10}, []float64{12})
	if math.Abs(red[0]+20) > 1e-9 {
		t.Fatalf("expected -20%%, got %v", red[0])
	}
}

func TestDynamicConfigValidate(t *testing.T) {
	bad := []DynamicConfig{
		{InitialFraction: 0, BatchFraction: 0.1, ReplanEvery: 5, Queries: 3},
		{InitialFraction: 1.5, BatchFraction: 0.1, ReplanEvery: 5, Queries: 3},
		{InitialFraction: 0.5, BatchFraction: -1, ReplanEvery: 5, Queries: 3},
		{InitialFraction: 0.5, BatchFraction: 0.1, ReplanEvery: 0, Queries: 3},
		{InitialFraction: 0.5, BatchFraction: 0.1, ReplanEvery: 5, Queries: 0},
	}
	c, w := setup(t, workload.TPCDS)
	empty, _ := engine.NewCluster(c.Top, 1, 2, 100)
	for i, cfg := range bad {
		if _, err := RunDynamic(context.Background(), empty, w, placement.Bohr, cfg, WithPlacement(placement.Options{})); err == nil {
			t.Fatalf("case %d should error", i)
		}
	}
}

func TestRunDynamicNeedsEmptyCluster(t *testing.T) {
	c, w := setup(t, workload.TPCDS) // populated
	if _, err := RunDynamic(context.Background(), c, w, placement.Bohr, DefaultDynamicConfig(), WithPlacement(placement.Options{})); err == nil {
		t.Fatal("populated cluster should error")
	}
}

func TestRunDynamic(t *testing.T) {
	c, w := setup(t, workload.TPCDS)
	empty, _ := engine.NewCluster(c.Top, 1, 4, 100)
	dyn := DynamicConfig{InitialFraction: 0.25, BatchFraction: 0.05, ReplanEvery: 5, Queries: 12}
	rep, err := RunDynamic(context.Background(), empty, w, placement.Bohr, dyn, WithPlacement(placement.Options{Seed: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.QCTs) != 12 {
		t.Fatalf("QCTs = %d", len(rep.QCTs))
	}
	if rep.MeanQCT <= 0 {
		t.Fatalf("mean QCT = %v", rep.MeanQCT)
	}
	// Replans at q5 and q10 plus the initial plan.
	if rep.Replans != 3 {
		t.Fatalf("replans = %d, want 3", rep.Replans)
	}
	if rep.BatchesDelivered == 0 {
		t.Fatal("no batches delivered")
	}
	// Data grows over time, so later queries see more data than the first.
	if rep.QCTs[len(rep.QCTs)-1] <= 0 {
		t.Fatal("last QCT missing")
	}
}

// §8.6's finding: dynamic QCT is close to the normal (all data up front)
// setting because batch pre-processing happens in the lag. We check the
// weaker, shape-level property that the dynamic mean QCT with all data
// delivered stays within 2x of the static mean QCT.
func TestDynamicCloseToStatic(t *testing.T) {
	c, w := setup(t, workload.TPCDS)

	// Static: everything up front.
	static, err := New(c.Clone(), w, placement.Bohr, placement.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := static.Prepare(context.Background()); err != nil {
		t.Fatal(err)
	}
	staticRep, err := static.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	empty, _ := engine.NewCluster(c.Top, 1, 4, 100)
	// Deliver everything by the end: 0.25 + 15×0.05 = 1.0.
	dyn := DynamicConfig{InitialFraction: 0.25, BatchFraction: 0.05, ReplanEvery: 5, Queries: 16}
	dynRep, err := RunDynamic(context.Background(), empty, w, placement.Bohr, dyn, WithPlacement(placement.Options{Seed: 4}))
	if err != nil {
		t.Fatal(err)
	}
	// Dynamic queries run on partial data for most arrivals, so the mean
	// must not blow past the static QCT; the last arrivals (full data)
	// should be in the same ballpark.
	last := dynRep.QCTs[len(dynRep.QCTs)-1]
	if last > 2*staticRep.MeanQCT {
		t.Fatalf("dynamic full-data QCT %v too far above static %v", last, staticRep.MeanQCT)
	}
}
