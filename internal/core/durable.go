package core

import (
	"fmt"
	"sort"

	"bohr/internal/olap"
)

// SiteCubeState is one site's base-cube dump for one dataset: the cells
// in insertion order plus the raw row count — what a durability
// snapshot persists and recovery feeds back through RestoreCubeStates.
type SiteCubeState struct {
	Cells []olap.Cell
	Rows  int
}

// ExportCubeStates dumps the per-site base cubes of every dataset with
// live ingest state. Datasets never ingested into have no entry: their
// cube state is derivable from the seed workload, so a snapshot need
// not carry it. The caller must hold the system quiescent (the serving
// layer exports under its exclusive state lock and a pipeline barrier).
func (s *System) ExportCubeStates() map[string][]SiteCubeState {
	out := make(map[string][]SiteCubeState, len(s.preps))
	for name, p := range s.preps {
		sites := make([]SiteCubeState, len(p.Sites))
		for i, cs := range p.Sites {
			base := cs.Base()
			sites[i] = SiteCubeState{Cells: base.ExportCells(), Rows: base.NumRows()}
		}
		out[name] = sites
	}
	return out
}

// RestoreCubeStates replaces the named datasets' per-site cube state
// with a snapshot dump: the preprocessor is materialized if the system
// has not ingested into the dataset yet this run, then every site's
// base cube is swapped and its derived cubes invalidated (they rebuild
// from the restored base on next use). Call on a prepared system before
// serving starts.
func (s *System) RestoreCubeStates(states map[string][]SiteCubeState) error {
	names := make([]string, 0, len(states))
	for name := range states {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p, err := s.preprocessor(name)
		if err != nil {
			return fmt.Errorf("core: restore cube states: %w", err)
		}
		sites := states[name]
		if len(sites) != len(p.Sites) {
			return fmt.Errorf("core: restore cube states: %q snapshot has %d sites, system has %d",
				name, len(sites), len(p.Sites))
		}
		for i, st := range sites {
			if err := p.Sites[i].RestoreBase(st.Cells, st.Rows); err != nil {
				return fmt.Errorf("core: restore cube states: %q site %d: %w", name, i, err)
			}
		}
	}
	return nil
}

// RestoreIngestProgress sets the applied-batch counter a snapshot
// recorded, so the replan cadence resumes where the crashed process
// left off instead of restarting from zero.
func (s *System) RestoreIngestProgress(batches int) {
	s.ingestBatches = batches
}
