package core

import (
	"context"
	"fmt"

	"bohr/internal/engine"
	"bohr/internal/placement"
	"bohr/internal/similarity"
	"bohr/internal/stats"
	"bohr/internal/workload"
)

// DynamicConfig parameterizes the §8.6 highly-dynamic-dataset experiment:
// only part of each dataset is present initially, and the rest streams in
// between recurring queries in fixed-size batches.
type DynamicConfig struct {
	// InitialFraction of each dataset's rows present before the first
	// query (paper: 10 GB of 40 GB = 0.25).
	InitialFraction float64
	// BatchFraction arriving between consecutive queries (paper: 2 GB of
	// 40 GB = 0.05).
	BatchFraction float64
	// ReplanEvery re-runs similarity checking and placement after this
	// many queries (paper: every 5 queries).
	ReplanEvery int
	// Queries is the number of recurring query arrivals to simulate.
	Queries int
}

// DefaultDynamicConfig mirrors §8.6.
func DefaultDynamicConfig() DynamicConfig {
	return DynamicConfig{InitialFraction: 0.25, BatchFraction: 0.05, ReplanEvery: 5, Queries: 15}
}

func (c DynamicConfig) validate() error {
	if c.InitialFraction <= 0 || c.InitialFraction > 1 {
		return fmt.Errorf("core: initial fraction %v out of (0,1]", c.InitialFraction)
	}
	if c.BatchFraction < 0 || c.BatchFraction > 1 {
		return fmt.Errorf("core: batch fraction %v out of [0,1]", c.BatchFraction)
	}
	if c.ReplanEvery <= 0 {
		return fmt.Errorf("core: replan interval must be positive, got %d", c.ReplanEvery)
	}
	if c.Queries <= 0 {
		return fmt.Errorf("core: dynamic run needs at least one query, got %d", c.Queries)
	}
	return nil
}

// DynamicReport summarizes a dynamic run. It marshals stably (fixed
// field order) and carries no cache or timing state, so two runs that
// differ only in cache capacity produce byte-identical reports — the
// eviction-neutrality contract the determinism gate checks.
type DynamicReport struct {
	Scheme placement.SchemeID `json:"scheme"`
	// QCTs per query arrival, averaged over datasets.
	QCTs []float64 `json:"qcts"`
	// MeanQCT across all arrivals.
	MeanQCT float64 `json:"mean_qct_s"`
	// Replans counts placement recomputations.
	Replans int `json:"replans"`
	// BatchesDelivered counts batch insertions across datasets.
	BatchesDelivered int `json:"batches_delivered"`
}

// RunDynamic executes the §8.6 protocol on a fresh cluster: (1) the
// initial fraction of every dataset completes initial placement; (2) each
// arriving batch is pre-processed and transferred according to the current
// placement decision before the next query; (3) each query processes all
// currently available data; (4) every ReplanEvery queries the similarity
// checking and placement re-run with up-to-date information.
//
// The cluster passed in must be EMPTY of the workload's datasets: the
// runner controls data arrival. The context is honored at arrival
// boundaries (before each replan, each query round, each batch delivery)
// and at the engine's chunk boundaries below them.
func RunDynamic(ctx context.Context, c *engine.Cluster, w *workload.Workload, scheme placement.SchemeID,
	dyn DynamicConfig, options ...Option) (*DynamicReport, error) {
	rc := resolve(options)
	defer rc.apply()()
	opts := rc.placement
	if err := dyn.validate(); err != nil {
		return nil, err
	}
	for _, ds := range w.Datasets {
		for i := 0; i < c.N(); i++ {
			if len(c.Data[i].Records(ds.Name)) > 0 {
				return nil, fmt.Errorf("core: dynamic run needs an empty cluster, dataset %q present at site %d", ds.Name, i)
			}
		}
	}

	// Per-dataset, per-site batch cursors over the workload's rows.
	type cursor struct {
		rows []engine.KV
		pos  int
	}
	cursors := make(map[string][]*cursor, len(w.Datasets))
	for _, ds := range w.Datasets {
		cs := make([]*cursor, c.N())
		for i := 0; i < c.N() && i < len(ds.Rows); i++ {
			recs := make([]engine.KV, len(ds.Rows[i]))
			for r, row := range ds.Rows[i] {
				recs[r] = engine.KV{Key: workload.JoinKey(row.Coords), Val: row.Measure}
			}
			cs[i] = &cursor{rows: recs}
		}
		cursors[ds.Name] = cs
	}
	deliver := func(name string, frac float64) int {
		delivered := 0
		for i, cur := range cursors[name] {
			if cur == nil {
				continue
			}
			n := int(float64(len(cur.rows)) * frac)
			if cur.pos+n > len(cur.rows) {
				n = len(cur.rows) - cur.pos
			}
			if n <= 0 {
				continue
			}
			c.Data[i].Add(name, cur.rows[cur.pos:cur.pos+n]...)
			cur.pos += n
			delivered++
		}
		return delivered
	}

	// Dynamic mode replans over largely unchanged sites, so it memoizes
	// the planner's per-site dimension cubes and the RDD assigner's
	// signatures across rounds unless the caller brought its own caches.
	// Both are bounded: each query arrival below ticks their logical
	// clocks, so entries unused for enough arrivals age out LRU.
	if opts.CubeCache == nil {
		opts.CubeCache = placement.NewCubeCache(opts.Obs)
	}
	if opts.SigCache == nil {
		opts.SigCache = similarity.NewSignatureCache(opts.Obs)
	}

	// (1) Initial data and initial placement.
	for _, ds := range w.Datasets {
		deliver(ds.Name, dyn.InitialFraction)
	}
	plan, err := placement.PlanScheme(scheme, c, w, opts)
	if err != nil {
		return nil, fmt.Errorf("core: initial dynamic plan: %w", err)
	}
	if _, err := plan.Execute(c, stats.Split(opts.Seed, 2001)); err != nil {
		return nil, err
	}

	rep := &DynamicReport{Scheme: scheme, Replans: 1}
	// moveShare[dataset][src] is the fraction of src's data the current
	// plan moved out, and its destination split — new batches follow the
	// same decision (§8.6 step 2).
	shares := planShares(plan, c.N())

	for qi := 0; qi < dyn.Queries; qi++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: dynamic arrival %d: %w", qi, err)
		}
		// Each query arrival is one logical-clock round for the memo
		// caches: a sequential point where over-capacity entries age out
		// deterministically (eviction never changes results, so reports
		// stay byte-identical across capacity settings).
		opts.CubeCache.Advance()
		opts.SigCache.Advance()

		// (4) Periodic re-plan with up-to-date information.
		if qi > 0 && qi%dyn.ReplanEvery == 0 {
			plan, err = placement.PlanScheme(scheme, c, w, opts)
			if err != nil {
				return nil, fmt.Errorf("core: dynamic replan %d: %w", rep.Replans, err)
			}
			if _, err := plan.Execute(c, stats.Split(opts.Seed, int64(3000+qi))); err != nil {
				return nil, err
			}
			shares = planShares(plan, c.N())
			rep.Replans++
		}

		// (3) The queries run concurrently on all currently available data.
		cfgs := make([]engine.JobConfig, len(w.Datasets))
		for i, ds := range w.Datasets {
			cfgs[i] = plan.JobConfigFor(ds.DominantQuery().Query)
		}
		results, err := c.RunConcurrent(ctx, cfgs)
		if err != nil {
			return nil, fmt.Errorf("core: dynamic query arrival %d: %w", qi, err)
		}
		var qctSum float64
		for _, res := range results {
			qctSum += res.QCT
		}
		rep.QCTs = append(rep.QCTs, qctSum/float64(len(results)))

		// (2) The next batch arrives and is transferred per the current
		// placement decision before the next query.
		if dyn.BatchFraction > 0 {
			for _, ds := range w.Datasets {
				before := snapshotSizes(c, ds.Name)
				if deliver(ds.Name, dyn.BatchFraction) > 0 {
					rep.BatchesDelivered++
					if err := moveBatchByShares(c, plan, ds.Name, before, shares[ds.Name]); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	// Settle the caches: one final round so the reported entry counts
	// and resident bytes are within the configured caps.
	opts.CubeCache.Advance()
	opts.SigCache.Advance()
	rep.MeanQCT = stats.Mean(rep.QCTs)
	return rep, nil
}

// RunDynamicWithOptions is the pre-context positional form of RunDynamic.
//
// Deprecated: use RunDynamic with a context and functional options; this
// bridge exists only so stragglers migrate deliberately, and it will be
// removed.
func RunDynamicWithOptions(c *engine.Cluster, w *workload.Workload, scheme placement.SchemeID,
	opts placement.Options, dyn DynamicConfig) (*DynamicReport, error) {
	return RunDynamic(context.Background(), c, w, scheme, dyn, WithPlacement(opts))
}

// planShares computes, per dataset and source site, the fraction of the
// site's pre-move data the plan shipped to each destination.
func planShares(plan *placement.Plan, n int) map[string][][]float64 {
	// Total pre-move input per dataset/site from the plan's stats.
	inputs := map[string][]float64{}
	for _, st := range plan.Stats {
		inputs[st.Name] = st.InputMB
	}
	out := map[string][][]float64{}
	for _, sp := range plan.Moves {
		m, ok := out[sp.Dataset]
		if !ok {
			m = make([][]float64, n)
			for i := range m {
				m[i] = make([]float64, n)
			}
			out[sp.Dataset] = m
		}
		in := inputs[sp.Dataset]
		if in == nil || in[sp.Src] <= 0 {
			continue
		}
		frac := sp.MB / in[sp.Src]
		if frac > 1 {
			frac = 1
		}
		m[sp.Src][sp.Dst] += frac
	}
	return out
}

func snapshotSizes(c *engine.Cluster, dataset string) []int {
	out := make([]int, c.N())
	for i := range out {
		out[i] = len(c.Data[i].Records(dataset))
	}
	return out
}

// moveBatchByShares forwards each site's newly-arrived batch records along
// the plan's movement fractions, using the dataset's mover so
// similarity-aware schemes still pick combinable records out of the batch.
func moveBatchByShares(c *engine.Cluster, plan *placement.Plan, dataset string, before []int, shares [][]float64) error {
	if shares == nil {
		return nil
	}
	var specs []engine.MoveSpec
	for src := 0; src < c.N(); src++ {
		arrived := len(c.Data[src].Records(dataset)) - before[src]
		if arrived <= 0 {
			continue
		}
		for dst := 0; dst < c.N(); dst++ {
			if frac := shares[src][dst]; frac > 0 {
				mb := c.MB(int(float64(arrived) * frac))
				if mb > 0 {
					specs = append(specs, engine.MoveSpec{Dataset: dataset, Src: src, Dst: dst, MB: mb})
				}
			}
		}
	}
	if len(specs) == 0 {
		return nil
	}
	_, err := c.ApplyMoves(specs, plan.MoverFor(dataset), stats.NewRand(int64(len(specs))))
	return err
}
