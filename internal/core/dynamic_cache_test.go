package core

import (
	"context"
	"encoding/json"
	"testing"

	"bohr/internal/cache"
	"bohr/internal/engine"
	"bohr/internal/parallel"
	"bohr/internal/placement"
	"bohr/internal/similarity"
	"bohr/internal/workload"
)

// dynCacheRun executes one dynamic run on a fresh empty cluster with
// explicitly-sized memo caches and returns the report's JSON plus the
// caches for inspection.
func dynCacheRun(t *testing.T, w *workload.Workload, c *engine.Cluster, caps cache.Caps, scheme placement.SchemeID) ([]byte, *placement.CubeCache, *similarity.SignatureCache) {
	t.Helper()
	empty, err := engine.NewCluster(c.Top, 1, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	cc := placement.NewCubeCacheSized(nil, caps)
	sc := similarity.NewSignatureCacheSized(nil, caps)
	opts := placement.Options{Seed: 3, CubeCache: cc, SigCache: sc}
	dyn := DynamicConfig{InitialFraction: 0.25, BatchFraction: 0.05, ReplanEvery: 3, Queries: 9}
	rep, err := RunDynamic(context.Background(), empty, w, scheme, dyn, WithPlacement(opts))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b, cc, sc
}

// TestDynamicReportEvictionNeutral is the acceptance gate of the
// bounded memo layer: eviction changes WHAT is cached, never what is
// computed, so a dynamic run's report is byte-identical whether the
// caches are unlimited, default-capped, or squeezed to a handful of
// entries — while the squeezed run demonstrably evicted and stayed
// within its caps.
func TestDynamicReportEvictionNeutral(t *testing.T) {
	c, w := setup(t, workload.TPCDS)

	unlimited, _, _ := dynCacheRun(t, w, c, cache.Unlimited(), placement.Bohr)
	deflt, dcc, dsc := dynCacheRun(t, w, c, cache.Caps{Entries: cache.DefaultEntries, Bytes: cache.DefaultBytes}, placement.Bohr)
	tiny, tcc, tsc := dynCacheRun(t, w, c, cache.Caps{Entries: 4}, placement.Bohr)

	if string(unlimited) != string(deflt) {
		t.Fatalf("default caps changed the report:\n%s\nvs\n%s", deflt, unlimited)
	}
	if string(unlimited) != string(tiny) {
		t.Fatalf("tiny caps changed the report:\n%s\nvs\n%s", tiny, unlimited)
	}
	// Default caps are far above this run's working set: no eviction.
	if dcc.Evictions() != 0 || dsc.Evictions() != 0 {
		t.Fatalf("default caps evicted: cubecache=%d sigcache=%d", dcc.Evictions(), dsc.Evictions())
	}
	// The squeezed run really was squeezed, and settled within caps.
	if tcc.Evictions() == 0 {
		t.Fatal("tiny caps never evicted the cube cache")
	}
	if tcc.Len() > 4 {
		t.Fatalf("cube cache settled at %d entries over the 4-entry cap", tcc.Len())
	}
	if tsc.Len() > 4 {
		t.Fatalf("signature cache settled at %d entries over the 4-entry cap", tsc.Len())
	}
}

// TestDynamicReportWidthIndependentUnderEviction extends the pool-width
// determinism gate to the evicting configuration: LRU decisions ride a
// logical clock advanced at sequential points, so width 1 and width 8
// evict identically and the reports match byte for byte.
func TestDynamicReportWidthIndependentUnderEviction(t *testing.T) {
	c, w := setup(t, workload.TPCDS)

	prev := parallel.SetDefaultWidth(1)
	defer parallel.SetDefaultWidth(prev)
	w1, w1cc, _ := dynCacheRun(t, w, c, cache.Caps{Entries: 4}, placement.Bohr)

	parallel.SetDefaultWidth(8)
	w8, w8cc, _ := dynCacheRun(t, w, c, cache.Caps{Entries: 4}, placement.Bohr)

	if string(w1) != string(w8) {
		t.Fatalf("width changed the evicting report:\n%s\nvs\n%s", w1, w8)
	}
	if w1cc.Evictions() != w8cc.Evictions() {
		t.Fatalf("eviction counts diverge across widths: %d vs %d", w1cc.Evictions(), w8cc.Evictions())
	}
	if w1cc.Evictions() == 0 {
		t.Fatal("configuration did not exercise eviction")
	}
}

// TestDynamicCacheBounded is the make-check bounded-growth gate: a
// longer dynamic run with default capacities keeps every cache's entry
// count at or below its configured cap once settled.
func TestDynamicCacheBounded(t *testing.T) {
	c, w := setup(t, workload.TPCDS)
	empty, err := engine.NewCluster(c.Top, 1, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	caps := cache.DefaultCaps()
	cc := placement.NewCubeCacheSized(nil, caps)
	sc := similarity.NewSignatureCacheSized(nil, caps)
	opts := placement.Options{Seed: 5, CubeCache: cc, SigCache: sc}
	// The stream exhausts after the third batch, so the later replans
	// (q8, q12) see unchanged sites — the recurring fast path the cube
	// cache exists for.
	dyn := DynamicConfig{InitialFraction: 0.25, BatchFraction: 0.25, ReplanEvery: 4, Queries: 16}
	if _, err := RunDynamic(context.Background(), empty, w, placement.Bohr, dyn, WithPlacement(opts)); err != nil {
		t.Fatal(err)
	}
	if caps.Entries > 0 && cc.Len() > caps.Entries {
		t.Fatalf("cube cache %d entries over cap %d", cc.Len(), caps.Entries)
	}
	if caps.Entries > 0 && sc.Len() > caps.Entries {
		t.Fatalf("signature cache %d entries over cap %d", sc.Len(), caps.Entries)
	}
	if caps.Bytes > 0 && cc.Bytes() > caps.Bytes {
		t.Fatalf("cube cache %d bytes over cap %d", cc.Bytes(), caps.Bytes)
	}
	if caps.Bytes > 0 && sc.Bytes() > caps.Bytes {
		t.Fatalf("signature cache %d bytes over cap %d", sc.Bytes(), caps.Bytes)
	}
	// The memo layer is doing its job: recurring rounds hit.
	if hits, _ := cc.Stats(); hits == 0 {
		t.Fatal("cube cache never hit across 16 arrivals")
	}
}
