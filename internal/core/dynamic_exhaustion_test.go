package core

import (
	"context"
	"encoding/json"
	"testing"

	"bohr/internal/engine"
	"bohr/internal/placement"
	"bohr/internal/workload"
)

// TestRunDynamicBatchCursorExhaustion pins RunDynamic's end-of-data
// behavior: once a dataset's batch cursors are exhausted, deliver()
// reports zero rows and BatchesDelivered must NOT advance — an empty
// delivery is not a batch. With InitialFraction 0.5 and BatchFraction
// 0.25, every dataset exhausts after exactly two post-query deliveries;
// the remaining arrivals (including post-exhaustion replans) run over
// static data.
func TestRunDynamicBatchCursorExhaustion(t *testing.T) {
	c, w := setup(t, workload.TPCDS)
	empty, _ := engine.NewCluster(c.Top, 1, 4, 100)
	dyn := DynamicConfig{InitialFraction: 0.5, BatchFraction: 0.25, ReplanEvery: 3, Queries: 8}
	rep, err := RunDynamic(context.Background(), empty, w, placement.Bohr, dyn, WithPlacement(placement.Options{Seed: 7}))
	if err != nil {
		t.Fatal(err)
	}
	// 8 arrivals attempt a delivery each, but cursors exhaust after
	// roughly two batches (plus a truncation crumb): mirror the cursor
	// arithmetic to compute how many deliveries actually find rows.
	want := 0
	for _, ds := range w.Datasets {
		pos := make([]int, len(ds.Rows))
		for i, site := range ds.Rows {
			pos[i] = int(float64(len(site)) * dyn.InitialFraction)
		}
		for q := 0; q < dyn.Queries; q++ {
			delivered := false
			for i, site := range ds.Rows {
				n := int(float64(len(site)) * dyn.BatchFraction)
				if pos[i]+n > len(site) {
					n = len(site) - pos[i]
				}
				if n <= 0 {
					continue
				}
				pos[i] += n
				delivered = true
			}
			if delivered {
				want++
			}
		}
	}
	// The scenario must actually exhaust: empty rounds exist.
	if want >= dyn.Queries*len(w.Datasets) {
		t.Fatalf("scenario never exhausts (want = %d)", want)
	}
	if rep.BatchesDelivered != want {
		t.Fatalf("BatchesDelivered = %d, want %d (exhausted cursors must not count)", rep.BatchesDelivered, want)
	}
	// Replans at q3 and q6 (the q6 one after full exhaustion) + initial.
	if rep.Replans != 3 {
		t.Fatalf("Replans = %d, want 3", rep.Replans)
	}
	if len(rep.QCTs) != dyn.Queries {
		t.Fatalf("QCTs = %d, want %d (exhaustion must not stop query arrivals)", len(rep.QCTs), dyn.Queries)
	}
	// Every cursor drained completely: the cluster holds the full workload.
	for _, ds := range w.Datasets {
		total := 0
		for i := 0; i < empty.N(); i++ {
			total += len(empty.Data[i].Records(ds.Name))
		}
		wantRows := 0
		for _, site := range ds.Rows {
			wantRows += len(site)
		}
		if total != wantRows {
			t.Fatalf("dataset %q: cluster holds %d rows, workload has %d", ds.Name, total, wantRows)
		}
	}
}

// TestRunDynamicExhaustionDeterministic replays the exhaustion scenario
// and requires byte-identical reports: replans over a fully-delivered,
// static dataset must not pick up nondeterminism from the exhausted
// delivery path.
func TestRunDynamicExhaustionDeterministic(t *testing.T) {
	run := func() []byte {
		t.Helper()
		c, w := setup(t, workload.TPCDS)
		empty, _ := engine.NewCluster(c.Top, 1, 4, 100)
		dyn := DynamicConfig{InitialFraction: 0.5, BatchFraction: 0.25, ReplanEvery: 3, Queries: 8}
		rep, err := RunDynamic(context.Background(), empty, w, placement.Bohr, dyn, WithPlacement(placement.Options{Seed: 7}))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("reports differ across identical runs:\n%s\n%s", a, b)
	}
}
