package core

import (
	"context"

	"bytes"
	"encoding/json"
	"testing"

	"bohr/internal/faults"
	"bohr/internal/obs"
	"bohr/internal/placement"
	"bohr/internal/workload"
)

func faultyReport(t *testing.T) *Report {
	t.Helper()
	c, w := setup(t, workload.BigDataScan)
	sched := &faults.Schedule{Seed: 9, Events: []faults.Event{
		{Kind: faults.KindLinkDegrade, Site: 0, Start: 20, End: 120, Factor: 0.3},
		{Kind: faults.KindSiteCrash, Site: 3, Start: 10, End: 200},
		{Kind: faults.KindStraggler, Site: 1, Start: 30, End: 300, Factor: 2},
	}}
	opts := placement.Options{Seed: 42, Obs: obs.NewCollector(), Faults: sched}
	rep, err := Run(context.Background(), c, w, placement.Bohr, WithPlacement(opts))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestFaultyReportResilienceSection(t *testing.T) {
	rep := faultyReport(t)
	if rep.SchemaVersion != ReportSchemaVersion {
		t.Fatalf("schema version %d, want %d", rep.SchemaVersion, ReportSchemaVersion)
	}
	res := rep.Resilience
	if res == nil {
		t.Fatal("fault-injected run produced no resilience section")
	}
	if len(res.FaultEvents) != 3 {
		t.Fatalf("resilience carries %d fault events, want 3", len(res.FaultEvents))
	}
	if res.FaultEvents[0].Kind != "degrade" || res.FaultEvents[0].T != 20 {
		t.Errorf("first event = %+v, want degrade at t=20", res.FaultEvents[0])
	}
	if res.FaultEvents[1].Site != 3 || res.FaultEvents[1].Kind != "crash" {
		t.Errorf("second event = %+v, want crash at site 3", res.FaultEvents[1])
	}
	// Modeled substrate: no live retries, but the counters must be
	// present (zero) so consumers can rely on the fields.
	if res.Retries != 0 || res.Timeouts != 0 {
		t.Errorf("modeled run counted retries=%d timeouts=%d, want 0", res.Retries, res.Timeouts)
	}
	// Fault-free runs must NOT carry the section.
	c, w := setup(t, workload.BigDataScan)
	clean, err := Run(context.Background(), c, w, placement.Bohr, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Resilience != nil {
		t.Error("fault-free run carries a resilience section")
	}
}

func TestFaultyReportBytesDeterministic(t *testing.T) {
	a, err := json.Marshal(faultyReport(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(faultyReport(t))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed + schedule produced different report bytes:\n%s\n%s", a, b)
	}
	if !bytes.Contains(a, []byte(`"resilience"`)) || !bytes.Contains(a, []byte(`"fault_events"`)) {
		t.Fatal("report JSON missing resilience/fault_events keys")
	}
}

func TestFaultyRunSlowerThanClean(t *testing.T) {
	c, w := setup(t, workload.BigDataScan)
	cleanRep, err := Run(context.Background(), c.Clone(), w, placement.Bohr, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	sched := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.KindLinkBlackout, Site: 2, Start: 0, End: 300},
		{Kind: faults.KindStraggler, Site: 1, Start: 0, End: 300, Factor: 3},
	}}
	faultyRep, err := Run(context.Background(), c.Clone(), w, placement.Bohr, WithSeed(42), WithFaults(sched))
	if err != nil {
		t.Fatal(err)
	}
	if faultyRep.Run.MeanQCT <= cleanRep.Run.MeanQCT {
		t.Fatalf("faulty mean QCT %v not slower than clean %v",
			faultyRep.Run.MeanQCT, cleanRep.Run.MeanQCT)
	}
}
