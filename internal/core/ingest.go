package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"bohr/internal/engine"
	"bohr/internal/olap"
	"bohr/internal/placement"
	"bohr/internal/stats"
	"bohr/internal/workload"
)

// ErrBadArrival marks an ingest batch the system can never apply — an
// unknown dataset, an out-of-range site, a row that does not match the
// dataset's schema. The serving layer maps it to a permanent rejection
// so the pipeline drops the batch instead of retrying it forever.
var ErrBadArrival = errors.New("core: bad ingest arrival")

// Arrival is one group of newly arrived rows landing at one site for one
// dataset — the unit the streaming pipeline delivers after grouping a
// source's batch.
type Arrival struct {
	Dataset string
	Site    int
	Rows    []olap.Row
}

// SetReplanEvery configures the live replan cadence: after every n
// applied ingest batches the similarity checking and placement re-run
// with up-to-date information, exactly like RunDynamic's periodic replan
// (0, the default, disables live replanning). Call before serving
// starts.
func (s *System) SetReplanEvery(n int) { s.replanEvery = n }

// IngestReplans reports how many live replans ingestion has triggered.
func (s *System) IngestReplans() int { return s.ingestReplans }

// IngestBatches reports how many ingest batches have been applied.
func (s *System) IngestBatches() int { return s.ingestBatches }

// IngestBatch applies one delivered batch of arrivals to a prepared
// system: every arrival is validated up front (all-or-nothing, returning
// ErrBadArrival-wrapped errors for unappliable batches), then each
// arrival's rows update the per-site OLAP cubes incrementally
// (Preprocessor.Ingest), land in the cluster's data at the arrival site,
// and are forwarded along the current plan's movement shares — the same
// §8.6 step-2 discipline RunDynamic applies to scripted batches. Every
// SetReplanEvery batches the system replans, refreshing the plan the
// serving layer executes queries under.
//
// IngestBatch is not safe for concurrent use with queries; the serving
// layer serializes it against reads (see serve.EngineBackend).
func (s *System) IngestBatch(ctx context.Context, arrivals []Arrival) (replanned bool, err error) {
	if s.plan == nil {
		return false, fmt.Errorf("core: Prepare must run before ingest")
	}
	if err := ctx.Err(); err != nil {
		return false, fmt.Errorf("core: ingest: %w", err)
	}
	// Validation pass: nothing mutates until the whole batch is known
	// appliable, so a rejected batch leaves no half-applied state.
	for _, a := range arrivals {
		ds := s.datasetNamed(a.Dataset)
		if ds == nil {
			return false, fmt.Errorf("%w: unknown dataset %q", ErrBadArrival, a.Dataset)
		}
		if a.Site < 0 || a.Site >= s.Cluster.N() {
			return false, fmt.Errorf("%w: site %d out of range [0,%d)", ErrBadArrival, a.Site, s.Cluster.N())
		}
		if len(a.Rows) == 0 {
			return false, fmt.Errorf("%w: empty arrival for %q", ErrBadArrival, a.Dataset)
		}
		for i, r := range a.Rows {
			if len(r.Coords) != ds.Schema.NumDims() {
				return false, fmt.Errorf("%w: %q row %d has %d coords, schema has %d dims",
					ErrBadArrival, a.Dataset, i, len(r.Coords), ds.Schema.NumDims())
			}
			for j, c := range r.Coords {
				if strings.ContainsRune(c, '\x1f') {
					return false, fmt.Errorf("%w: %q row %d coord %d contains reserved separator",
						ErrBadArrival, a.Dataset, i, j)
				}
			}
		}
	}
	span := s.Obs.StartSpan("ingest.apply")
	defer span.End()
	for _, a := range arrivals {
		prep, err := s.preprocessor(a.Dataset)
		if err != nil {
			return false, err
		}
		before := snapshotSizes(s.Cluster, a.Dataset)
		// Cubes first: Preprocessor.Ingest is all-or-nothing, so any
		// residual failure surfaces before cluster data mutates.
		if err := prep.Ingest(a.Site, a.Rows...); err != nil {
			return false, fmt.Errorf("%w: %v", ErrBadArrival, err)
		}
		kvs := make([]engine.KV, len(a.Rows))
		for i, r := range a.Rows {
			kvs[i] = engine.KV{Key: workload.JoinKey(r.Coords), Val: r.Measure}
		}
		s.Cluster.Data[a.Site].Add(a.Dataset, kvs...)
		// New rows follow the current placement decision (§8.6 step 2).
		if err := moveBatchByShares(s.Cluster, s.plan, a.Dataset, before, s.shares[a.Dataset]); err != nil {
			return false, fmt.Errorf("core: ingest move %q: %w", a.Dataset, err)
		}
		s.Obs.Count("core.ingest.rows", float64(len(a.Rows)))
	}
	s.ingestBatches++
	s.Obs.Count("core.ingest.batches", 1)
	if s.replanEvery > 0 && s.ingestBatches%s.replanEvery == 0 {
		if err := s.replanForIngest(ctx); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// preprocessor lazily builds (and memoizes) the per-dataset cube-state
// maintainer. It is seeded from the workload's initial rows, so live
// arrivals extend the same per-site cube sets the §4.1 pre-processing
// step would have built.
func (s *System) preprocessor(dataset string) (*Preprocessor, error) {
	if p, ok := s.preps[dataset]; ok {
		return p, nil
	}
	ds := s.datasetNamed(dataset)
	if ds == nil {
		return nil, fmt.Errorf("%w: unknown dataset %q", ErrBadArrival, dataset)
	}
	p, err := NewPreprocessor(ds)
	if err != nil {
		return nil, fmt.Errorf("core: ingest preprocessor %q: %w", dataset, err)
	}
	p.AttachObs(s.Obs)
	if s.preps == nil {
		s.preps = map[string]*Preprocessor{}
	}
	s.preps[dataset] = p
	return p, nil
}

func (s *System) datasetNamed(name string) *workload.Dataset {
	for _, ds := range s.Workload.Datasets {
		if ds.Name == name {
			return ds
		}
	}
	return nil
}

// replanForIngest re-runs similarity checking and placement with
// up-to-date information, then re-executes the movement plan — the live
// counterpart of RunDynamic's periodic replan. Pending cube updates are
// flushed first so the planner sees current per-site cubes.
func (s *System) replanForIngest(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: ingest replan: %w", err)
	}
	names := make([]string, 0, len(s.preps))
	for name := range s.preps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s.preps[name].FlushBackground()
	}
	opts := s.Opts
	opts.Obs = s.Obs
	span := s.Obs.StartSpan("ingest.replan")
	defer span.End()
	plan, err := placement.PlanScheme(s.Scheme, s.Cluster, s.Workload, opts)
	if err != nil {
		return fmt.Errorf("core: ingest replan: %w", err)
	}
	if _, err := plan.Execute(s.Cluster, stats.Split(s.Opts.Seed, int64(9000+s.ingestBatches))); err != nil {
		return fmt.Errorf("core: ingest replan move: %w", err)
	}
	s.plan = plan
	s.shares = planShares(plan, s.Cluster.N())
	s.ingestReplans++
	s.Obs.Count("core.ingest.replans", 1)
	span.Add(plan.CheckTime + plan.LPTime)
	return nil
}
