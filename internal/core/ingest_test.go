package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"bohr/internal/olap"
	"bohr/internal/placement"
	"bohr/internal/workload"
)

func preparedSystem(t *testing.T) (*System, *workload.Dataset) {
	t.Helper()
	c, w := setup(t, workload.TPCDS)
	sys, err := New(c, w, placement.Bohr, placement.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Prepare(context.Background()); err != nil {
		t.Fatal(err)
	}
	return sys, w.Datasets[0]
}

func liveRows(ds *workload.Dataset, n int) []olap.Row {
	rows := make([]olap.Row, n)
	for i := range rows {
		coords := make([]string, ds.Schema.NumDims())
		for j := range coords {
			coords[j] = fmt.Sprintf("live%d-%d", i%3, j)
		}
		rows[i] = olap.Row{Coords: coords, Measure: float64(i + 1)}
	}
	return rows
}

func totalRecords(s *System, dataset string) int {
	n := 0
	for i := 0; i < s.Cluster.N(); i++ {
		n += len(s.Cluster.Data[i].Records(dataset))
	}
	return n
}

func TestIngestBatchAppliesRows(t *testing.T) {
	sys, ds := preparedSystem(t)
	before := totalRecords(sys, ds.Name)
	rows := liveRows(ds, 10)
	replanned, err := sys.IngestBatch(context.Background(), []Arrival{
		{Dataset: ds.Name, Site: 0, Rows: rows[:6]},
		{Dataset: ds.Name, Site: 1, Rows: rows[6:]},
	})
	if err != nil {
		t.Fatalf("IngestBatch: %v", err)
	}
	if replanned {
		t.Fatal("replanned with replanEvery unset")
	}
	// Movement may relocate the new rows between sites, but the total is
	// conserved: nothing lost, nothing duplicated.
	if got := totalRecords(sys, ds.Name); got != before+10 {
		t.Fatalf("cluster holds %d records, want %d", got, before+10)
	}
	if sys.IngestBatches() != 1 {
		t.Fatalf("IngestBatches = %d, want 1", sys.IngestBatches())
	}
}

func TestIngestBatchValidatesAllOrNothing(t *testing.T) {
	sys, ds := preparedSystem(t)
	before := totalRecords(sys, ds.Name)
	good := Arrival{Dataset: ds.Name, Site: 0, Rows: liveRows(ds, 2)}
	for name, bad := range map[string]Arrival{
		"unknown dataset": {Dataset: "nope", Site: 0, Rows: liveRows(ds, 1)},
		"site too high":   {Dataset: ds.Name, Site: sys.Cluster.N(), Rows: liveRows(ds, 1)},
		"negative site":   {Dataset: ds.Name, Site: -1, Rows: liveRows(ds, 1)},
		"empty rows":      {Dataset: ds.Name, Site: 0},
		"wrong dims": {Dataset: ds.Name, Site: 0,
			Rows: []olap.Row{{Coords: []string{"only-one"}, Measure: 1}}},
		"reserved separator": {Dataset: ds.Name, Site: 0,
			Rows: []olap.Row{{Coords: append([]string{"a\x1fb"},
				liveRows(ds, 1)[0].Coords[1:]...), Measure: 1}}},
	} {
		_, err := sys.IngestBatch(context.Background(), []Arrival{good, bad})
		if !errors.Is(err, ErrBadArrival) {
			t.Fatalf("%s: err = %v, want ErrBadArrival", name, err)
		}
		if !strings.Contains(err.Error(), "core:") && err == nil {
			t.Fatalf("%s: unhelpful error %v", name, err)
		}
	}
	// All-or-nothing: the good arrival sharing a batch with a bad one must
	// not have been applied.
	if got := totalRecords(sys, ds.Name); got != before {
		t.Fatalf("rejected batches leaked %d records", got-before)
	}
	if sys.IngestBatches() != 0 {
		t.Fatalf("IngestBatches = %d after only rejected batches", sys.IngestBatches())
	}
}

func TestIngestBatchReplanCadence(t *testing.T) {
	sys, ds := preparedSystem(t)
	sys.SetReplanEvery(2)
	for i := 0; i < 5; i++ {
		replanned, err := sys.IngestBatch(context.Background(), []Arrival{
			{Dataset: ds.Name, Site: i % sys.Cluster.N(), Rows: liveRows(ds, 3)},
		})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if want := (i+1)%2 == 0; replanned != want {
			t.Fatalf("batch %d: replanned = %v, want %v", i, replanned, want)
		}
	}
	if sys.IngestReplans() != 2 {
		t.Fatalf("IngestReplans = %d, want 2 (after batches 2 and 4)", sys.IngestReplans())
	}
	if sys.Plan() == nil {
		t.Fatal("replanning lost the plan")
	}
	// Queries still run under the refreshed plan.
	if _, err := sys.RunAll(context.Background()); err != nil {
		t.Fatalf("RunAll after live replans: %v", err)
	}
}

func TestIngestBatchRequiresPrepare(t *testing.T) {
	c, w := setup(t, workload.TPCDS)
	sys, err := New(c, w, placement.Bohr, placement.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.IngestBatch(context.Background(), []Arrival{
		{Dataset: w.Datasets[0].Name, Site: 0, Rows: liveRows(w.Datasets[0], 1)},
	}); err == nil {
		t.Fatal("ingest before Prepare succeeded")
	}
}
