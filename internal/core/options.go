package core

import (
	"bohr/internal/cache"
	"bohr/internal/faults"
	"bohr/internal/obs"
	"bohr/internal/parallel"
	"bohr/internal/placement"
	"bohr/internal/similarity"
)

// Option is a functional configuration knob for the one-shot pipelines
// (Run, RunDynamic). It subsumes the placement.Options struct the
// positional forms took — WithPlacement adopts a whole struct, the other
// options tune individual fields — and adds run-scoped knobs the struct
// never carried: the worker-pool width and the memo-cache capacity.
type Option func(*runConfig)

// runConfig is the resolved option set one Run call executes under.
type runConfig struct {
	placement placement.Options
	// width, when positive, pins the parallel kernel pool width for the
	// duration of the run (0 keeps the process default).
	width int
	// caps, when set, bounds the run's memo caches (planner cubes,
	// minhash signatures) instead of the process default capacities.
	caps *cache.Caps
}

// resolve folds the options into a config and materializes derived state
// (sized caches when a capacity override was requested).
func resolve(opts []Option) runConfig {
	var rc runConfig
	for _, fn := range opts {
		fn(&rc)
	}
	if rc.caps != nil {
		if rc.placement.CubeCache == nil {
			rc.placement.CubeCache = placement.NewCubeCacheSized(rc.placement.Obs, *rc.caps)
		}
		if rc.placement.SigCache == nil {
			rc.placement.SigCache = similarity.NewSignatureCacheSized(rc.placement.Obs, *rc.caps)
		}
	}
	return rc
}

// apply pins run-scoped process state (pool width) and returns the
// restore function; Run defers it so nested or subsequent runs see the
// prior defaults again.
func (rc runConfig) apply() (restore func()) {
	if rc.width <= 0 {
		return func() {}
	}
	prev := parallel.SetDefaultWidth(rc.width)
	return func() { parallel.SetDefaultWidth(prev) }
}

// WithPlacement adopts a full placement.Options struct — the bridge from
// the deprecated positional forms. Options applied after it override its
// fields.
func WithPlacement(o placement.Options) Option {
	return func(rc *runConfig) { rc.placement = o }
}

// WithPlacementOptions applies functional placement options on top of the
// current placement configuration.
func WithPlacementOptions(opts ...placement.Option) Option {
	return func(rc *runConfig) { rc.placement = rc.placement.With(opts...) }
}

// WithObs attaches an observability collector gathering phase spans and
// metrics for the whole pipeline.
func WithObs(col *obs.Collector) Option {
	return func(rc *runConfig) { rc.placement.Obs = col }
}

// WithFaults attaches a fault schedule: planning consumes its degraded
// bandwidth view and the modeled run applies its events in modeled time.
func WithFaults(s *faults.Schedule) Option {
	return func(rc *runConfig) { rc.placement.Faults = s }
}

// WithSeed sets the seed driving random record selection.
func WithSeed(seed int64) Option {
	return func(rc *runConfig) { rc.placement.Seed = seed }
}

// WithLag sets T, the time between recurring query arrivals (seconds).
func WithLag(t float64) Option {
	return func(rc *runConfig) { rc.placement.Lag = t }
}

// WithProbeK sets the total probe record budget per dataset.
func WithProbeK(k int) Option {
	return func(rc *runConfig) { rc.placement.ProbeK = k }
}

// WithWidth pins the parallel worker-pool width for the duration of the
// run (1 = sequential). It adjusts the process-wide default and restores
// the previous value when the run returns, so it must not race another
// concurrently-starting run that also sets a width.
func WithWidth(n int) Option {
	return func(rc *runConfig) { rc.width = n }
}

// WithCacheCaps bounds the run's memo caches (planner dimension cubes,
// minhash signatures) with explicit capacities instead of the process
// defaults. Caches already attached via WithPlacement keep their own caps.
func WithCacheCaps(caps cache.Caps) Option {
	return func(rc *runConfig) { c := caps; rc.caps = &c }
}
