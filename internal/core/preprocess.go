package core

import (
	"context"
	"fmt"

	"bohr/internal/obs"
	"bohr/internal/olap"
	"bohr/internal/similarity"
	"bohr/internal/workload"
)

// Preprocessor maintains the per-site OLAP cube state of §4.1 for one
// dataset: the base cube plus one materialized dimension cube per query
// type, with the eager/background update discipline the paper describes —
// new rows are buffered, the cube the incoming query needs is caught up
// first, and the rest are folded in by a background flush between queries.
type Preprocessor struct {
	Dataset string
	Schema  *olap.Schema
	// Sites[i] is site i's cube set.
	Sites []*olap.CubeSet
	// types maps a query-type ID to its attribute set.
	types map[olap.QueryTypeID][]string
	// weights holds the per-type probe weights (§4.2).
	weights []similarity.QueryTypeWeight
}

// NewPreprocessor formats a dataset's initial rows into per-site cube sets
// and registers every recurring query type.
func NewPreprocessor(ds *workload.Dataset) (*Preprocessor, error) {
	p := &Preprocessor{
		Dataset: ds.Name,
		Schema:  ds.Schema,
		types:   map[olap.QueryTypeID][]string{},
	}
	total := ds.TotalQueries()
	for _, q := range ds.Queries {
		id := olap.QueryTypeFor(q.Dims)
		p.types[id] = append([]string(nil), q.Dims...)
		w := 0.0
		if total > 0 {
			w = float64(q.Count) / float64(total)
		}
		p.weights = append(p.weights, similarity.QueryTypeWeight{
			QueryType: id, Dims: q.Dims, Weight: w,
		})
	}
	for site, rows := range ds.Rows {
		cs := olap.NewCubeSet(ds.Schema)
		if err := cs.Insert(rows...); err != nil {
			return nil, fmt.Errorf("core: preprocess %q site %d: %w", ds.Name, site, err)
		}
		for id, dims := range p.types {
			if _, err := cs.RegisterQueryType(dims); err != nil {
				return nil, fmt.Errorf("core: preprocess %q site %d type %q: %w", ds.Name, site, id, err)
			}
		}
		p.Sites = append(p.Sites, cs)
	}
	return p, nil
}

// AttachObs wires every site's cube set to a metrics collector so
// dimension-cube cache hits and misses surface in run reports.
func (p *Preprocessor) AttachObs(col *obs.Collector) {
	for _, cs := range p.Sites {
		cs.AttachObs(col)
	}
}

// Ingest buffers newly generated rows at a site: the base cube updates
// immediately (as one pre-aggregated batch fold), dimension cubes stay
// pending until PrepareFor or FlushBackground — exactly the §4.1
// buffering discipline. A bad row rejects the whole batch without
// touching the cube set, so the streaming pipeline can drop it cleanly.
func (p *Preprocessor) Ingest(site int, rows ...olap.Row) error {
	if site < 0 || site >= len(p.Sites) {
		return fmt.Errorf("core: ingest: site %d out of range [0,%d)", site, len(p.Sites))
	}
	return p.Sites[site].InsertBatch(rows)
}

// PrepareFor eagerly catches up the dimension cube an incoming query needs
// at every site and returns the per-site cubes. The context is honored at
// each site boundary, so a cancelled caller stops folding mid-fan-out.
func (p *Preprocessor) PrepareFor(ctx context.Context, dims []string) ([]*olap.Cube, error) {
	id := olap.QueryTypeFor(dims)
	if _, ok := p.types[id]; !ok {
		return nil, fmt.Errorf("core: query type %q not registered for %q", id, p.Dataset)
	}
	out := make([]*olap.Cube, len(p.Sites))
	for site, cs := range p.Sites {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: prepare %q site %d: %w", p.Dataset, site, err)
		}
		cube, err := cs.Prepare(id)
		if err != nil {
			return nil, fmt.Errorf("core: prepare %q site %d: %w", p.Dataset, site, err)
		}
		out[site] = cube
	}
	return out, nil
}

// FlushBackground folds all pending rows into every dimension cube at
// every site (the between-queries background update) and reports how many
// cubes had pending work.
func (p *Preprocessor) FlushBackground() int {
	n := 0
	for _, cs := range p.Sites {
		n += cs.FlushBackground()
	}
	return n
}

// Probes builds the §4.2 probe set for one site: the k-record budget split
// across query types by their weights.
func (p *Preprocessor) Probes(site, k int) ([]similarity.Probe, error) {
	if site < 0 || site >= len(p.Sites) {
		return nil, fmt.Errorf("core: probes: site %d out of range [0,%d)", site, len(p.Sites))
	}
	return similarity.BuildProbes(p.Dataset, p.Sites[site], p.weights, k)
}

// CrossSim scores one site's probe of one query type against every other
// site's dimension cube, returning the similarity row S_{site,j}.
func (p *Preprocessor) CrossSim(ctx context.Context, site int, dims []string, k int) ([]float64, error) {
	id := olap.QueryTypeFor(dims)
	cubes, err := p.PrepareFor(ctx, dims)
	if err != nil {
		return nil, err
	}
	probe, err := similarity.BuildProbe(p.Dataset, id, cubes[site], k)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(p.Sites))
	for j := range p.Sites {
		if j == site {
			out[j] = similarity.SelfSimilarity(cubes[j])
			continue
		}
		s, err := similarity.Score(probe, cubes[j])
		if err != nil {
			return nil, err
		}
		out[j] = s
	}
	return out, nil
}

// StorageBytes sums the cube footprint across sites (Table 6 accounting).
func (p *Preprocessor) StorageBytes() int64 {
	var b int64
	for _, cs := range p.Sites {
		b += cs.StorageBytes()
	}
	return b
}
