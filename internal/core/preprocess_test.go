package core

import (
	"context"
	"testing"

	"bohr/internal/olap"
	"bohr/internal/workload"
)

func mkDataset(t *testing.T) *workload.Dataset {
	t.Helper()
	cfg := workload.DefaultConfig(workload.BigDataScan)
	cfg.Sites = 3
	cfg.Datasets = 1
	cfg.RowsPerSite = 400
	cfg.KeysPerPool = 80
	w, err := workload.Generate(workload.BigDataScan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w.Datasets[0]
}

func TestNewPreprocessor(t *testing.T) {
	ds := mkDataset(t)
	p, err := NewPreprocessor(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Sites) != 3 {
		t.Fatalf("sites = %d", len(p.Sites))
	}
	for site, cs := range p.Sites {
		if cs.Base().NumRows() != len(ds.Rows[site]) {
			t.Fatalf("site %d rows = %d, want %d", site, cs.Base().NumRows(), len(ds.Rows[site]))
		}
		if got := len(cs.QueryTypes()); got != len(ds.Queries) {
			t.Fatalf("site %d types = %d", site, got)
		}
	}
	if p.StorageBytes() <= 0 {
		t.Fatal("storage accounting missing")
	}
}

func TestPreprocessorIngestBuffering(t *testing.T) {
	ds := mkDataset(t)
	p, err := NewPreprocessor(ds)
	if err != nil {
		t.Fatal(err)
	}
	dims := ds.Queries[0].Dims
	id := olap.QueryTypeFor(dims)
	before := p.Sites[0].Base().NumRows()

	row := olap.Row{Coords: ds.Rows[0][0].Coords, Measure: 1}
	if err := p.Ingest(0, row); err != nil {
		t.Fatal(err)
	}
	// Base is current; the dimension cube is behind until prepared.
	if p.Sites[0].Base().NumRows() != before+1 {
		t.Fatal("base cube must update eagerly")
	}
	if p.Sites[0].PendingRows(id) != 1 {
		t.Fatalf("pending = %d", p.Sites[0].PendingRows(id))
	}
	cubes, err := p.PrepareFor(context.Background(), dims)
	if err != nil {
		t.Fatal(err)
	}
	if p.Sites[0].PendingRows(id) != 0 {
		t.Fatal("PrepareFor should fold pending rows")
	}
	if cubes[0].NumRows() != before+1 {
		t.Fatalf("prepared cube rows = %d", cubes[0].NumRows())
	}
	// Other query types stay pending until the background flush.
	otherID := olap.QueryTypeFor(ds.Queries[1].Dims)
	if p.Sites[0].PendingRows(otherID) != 1 {
		t.Fatal("other cubes should stay buffered")
	}
	if n := p.FlushBackground(); n == 0 {
		t.Fatal("flush should touch the stale cube")
	}
	if p.Sites[0].PendingRows(otherID) != 0 {
		t.Fatal("flush should clear pending rows")
	}

	if err := p.Ingest(9, row); err == nil {
		t.Fatal("out-of-range site should error")
	}
}

func TestPreprocessorPrepareForUnknownType(t *testing.T) {
	p, err := NewPreprocessor(mkDataset(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.PrepareFor(context.Background(), []string{"nope"}); err == nil {
		t.Fatal("unknown query type should error")
	}
}

func TestPreprocessorProbesAndCrossSim(t *testing.T) {
	ds := mkDataset(t)
	p, err := NewPreprocessor(ds)
	if err != nil {
		t.Fatal(err)
	}
	probes, err := p.Probes(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(probes) != len(ds.Queries) {
		t.Fatalf("probes = %d", len(probes))
	}
	if _, err := p.Probes(99, 30); err == nil {
		t.Fatal("out-of-range site should error")
	}

	row, err := p.CrossSim(context.Background(), 0, ds.Queries[0].Dims, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 3 {
		t.Fatalf("cross-sim row = %v", row)
	}
	for j, s := range row {
		if s < 0 || s > 1 {
			t.Fatalf("S(0,%d) = %v", j, s)
		}
	}
	// The generated sites share the common key pool, so some cross-site
	// similarity must be visible.
	if row[1] == 0 && row[2] == 0 {
		t.Fatal("expected visible cross-site similarity")
	}
	if _, err := p.CrossSim(context.Background(), 0, []string{"nope"}, 30); err == nil {
		t.Fatal("unknown dims should error")
	}
}
