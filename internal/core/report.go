package core

import (
	"context"

	"bohr/internal/engine"
	"bohr/internal/obs"
	"bohr/internal/obs/critpath"
	"bohr/internal/placement"
	"bohr/internal/workload"
)

// ReportSchemaVersion is bumped whenever the Report JSON schema changes
// incompatibly, so downstream consumers can detect what they are parsing.
// v2 added the resilience section (fault-event list + retry/timeout
// counters) emitted by fault-injected runs. v3 added per-site children
// under the trace's map/reduce stage spans and the crit_paths section
// (per-query critical-path decomposition). v4 added the similarity-cache
// hit/miss counters (olap.cubeset.*, similarity.sigcache.*,
// placement.cubecache.*) to the metrics snapshot. v5 added the bounded
// memo layer's level counters (<cache>.entries/.bytes/.evictions for
// each of the three caches) to the metrics snapshot and the optional
// dynamic section (§8.6 run summary).
const ReportSchemaVersion = 5

// ResilienceReport captures a run's failure handling: the fault events
// that fired on the modeled timeline and the resilience machinery's
// counters. Present (non-nil, possibly all-zero) exactly when a fault
// schedule was attached to the run.
type ResilienceReport struct {
	// Retries counts controller-side request retries (live substrate).
	Retries int `json:"retries"`
	// Timeouts counts requests that exhausted their deadline.
	Timeouts int `json:"timeouts"`
	// FaultEvents is the run's event timeline in deterministic order:
	// the injected schedule, plus any live-path occurrences.
	FaultEvents []obs.Event `json:"fault_events"`
}

// Report is the one machine-readable result document of the reproduction:
// a stable-schema JSON tree subsuming the prepare-phase summary, the
// run-phase summary, the phase-span trace and the metrics registry.
// bohrbench -json and bohrctl -json emit it; experiments nest one child
// per (workload, scheme, repetition) under a per-experiment parent.
//
// All numeric content is modeled (deterministic) unless the collector was
// built with obs.WithWallClock, so serializing the same seeded run twice
// produces byte-identical output.
type Report struct {
	// SchemaVersion identifies the JSON layout (ReportSchemaVersion).
	SchemaVersion int `json:"schema_version"`
	// Experiment names the figure/table this report belongs to, when the
	// report was produced by the experiments driver ("fig6", "table5", …).
	Experiment string `json:"experiment,omitempty"`
	// Scheme is the placement scheme's display name ("Bohr", "Iridium", …).
	Scheme string `json:"scheme,omitempty"`
	// Workload is the workload kind's display name.
	Workload string `json:"workload,omitempty"`
	// Rep is the repetition index (1-based) for multi-run experiments.
	Rep int `json:"rep,omitempty"`
	// Seed is the run's master seed.
	Seed int64 `json:"seed,omitempty"`
	// Prepare summarizes the offline phase (nil when Prepare never ran).
	Prepare *PrepareReport `json:"prepare,omitempty"`
	// Run summarizes workload execution (nil when RunAll never ran).
	Run *RunReport `json:"run,omitempty"`
	// DataReductionPct is the per-site data reduction vs the vanilla
	// baseline (entries ≤ ReductionUndefined flag an undefined ratio).
	DataReductionPct []float64 `json:"data_reduction_pct,omitempty"`
	// Resilience reports fault events and retry/timeout counters; nil
	// unless the run carried a fault schedule.
	Resilience *ResilienceReport `json:"resilience,omitempty"`
	// Dynamic summarizes a §8.6 dynamic run (per-arrival QCTs, replan
	// and batch counts); nil for single-shot runs.
	Dynamic *DynamicReport `json:"dynamic,omitempty"`
	// Trace is the phase-span tree (prepare → probes/lp/move, run →
	// per-query map/shuffle/reduce); nil without a collector.
	Trace *obs.Span `json:"trace,omitempty"`
	// Metrics is the metrics-registry snapshot; nil without a collector.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
	// CritPaths decomposes each query's QCT into its dominant chain
	// (slowest map site → bottleneck link → slowest reducer), derived
	// from Trace + Metrics; nil without a collector.
	CritPaths []critpath.QueryPath `json:"crit_paths,omitempty"`
	// Children nest sub-reports (per-experiment → per-scheme-run).
	Children []*Report `json:"children,omitempty"`
}

// Report assembles the system's machine-readable result document from
// whatever has run so far: the cached Prepare and RunAll summaries plus,
// when a collector is attached, the span trace and metrics snapshot.
func (s *System) Report() *Report {
	r := &Report{
		SchemaVersion: ReportSchemaVersion,
		Scheme:        s.Scheme.String(),
		Seed:          s.Opts.Seed,
		Prepare:       s.prepRep,
		Run:           s.lastRun,
	}
	if s.Workload != nil {
		r.Workload = s.Workload.Kind.String()
	}
	r.Trace = s.Obs.Trace()
	r.Metrics = s.Obs.MetricsSnapshot()
	r.CritPaths = critpath.Analyze(r.Trace, r.Metrics)
	if s.Opts.Faults != nil {
		res := &ResilienceReport{FaultEvents: s.Obs.EventLog()}
		if res.FaultEvents == nil {
			res.FaultEvents = []obs.Event{}
		}
		if r.Metrics != nil {
			res.Retries = int(r.Metrics.Counters["netio.retries"])
			res.Timeouts = int(r.Metrics.Counters["netio.timeouts"])
		}
		r.Resilience = res
	}
	return r
}

// Run is the one-shot pipeline: assemble a System, Prepare it (probes,
// placement planning, data movement in the lag) and execute the full
// workload, returning the machine-readable Report. It replaces the
// hand-rolled New/Prepare/RunAll dance for callers that only want the
// result document; keep the System form when you need to issue further
// queries against the prepared cluster.
//
// The context is the run's lifetime: it is honored at phase boundaries
// (planning, movement) and at the engine's chunk boundaries, so a
// deadline or cancellation stops the pipeline within one stage. Options
// configure placement (WithPlacement adopts a whole placement.Options
// struct), the pool width, and the memo-cache capacity.
func Run(ctx context.Context, c *engine.Cluster, w *workload.Workload, scheme placement.SchemeID, opts ...Option) (*Report, error) {
	rc := resolve(opts)
	defer rc.apply()()
	sys, err := New(c, w, scheme, rc.placement)
	if err != nil {
		return nil, err
	}
	if _, err := sys.Prepare(ctx); err != nil {
		return nil, err
	}
	if _, err := sys.RunAll(ctx); err != nil {
		return nil, err
	}
	return sys.Report(), nil
}

// RunWithOptions is the pre-context positional form of Run.
//
// Deprecated: use Run with a context and functional options; this bridge
// exists only so stragglers migrate deliberately, and it will be removed.
func RunWithOptions(c *engine.Cluster, w *workload.Workload, scheme placement.SchemeID, opts placement.Options) (*Report, error) {
	return Run(context.Background(), c, w, scheme, WithPlacement(opts))
}
