package core

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"bohr/internal/obs"
	"bohr/internal/obs/critpath"
	"bohr/internal/placement"
	"bohr/internal/workload"
)

func TestReportJSONRoundTrip(t *testing.T) {
	r := &Report{
		SchemaVersion: ReportSchemaVersion,
		Experiment:    "fig6",
		Scheme:        placement.Bohr.String(),
		Workload:      workload.TPCDS.String(),
		Rep:           2,
		Seed:          42,
		Prepare:       &PrepareReport{MovedMB: 12.5, MoveDuration: 3.25, CheckTime: 1.5, LPTime: 0.75, Moves: 4},
		Run: &RunReport{
			Scheme:                placement.Bohr,
			Queries:               []QueryReport{{Dataset: "d0", Query: "q0", QCT: 5.5, IntermediateMBPerSite: []float64{1, 2}, ShuffleMB: 3}},
			MeanQCT:               5.5,
			IntermediateMBPerSite: []float64{1, 2},
			TotalShuffleMB:        3,
		},
		DataReductionPct: []float64{10, -5},
		Resilience: &ResilienceReport{
			Retries:  3,
			Timeouts: 1,
			FaultEvents: []obs.Event{
				{T: 10, Kind: "crash", Site: 2, Detail: "end=20s"},
				{T: 40.5, Kind: "retry", Site: 1, Detail: "attempt=2"},
			},
		},
		Trace: &obs.Span{Name: "bohr", Children: []*obs.Span{
			{Name: "prepare", Modeled: 5.5, Children: []*obs.Span{{Name: "probes", Modeled: 1.5}}},
		}},
		Metrics: &obs.Snapshot{
			Counters:   map[string]float64{"lp.pivots": 12},
			Histograms: map[string]obs.HistogramStats{"h": {Count: 1, Sum: 2, Min: 2, Max: 2, P50: 2, P90: 2, P99: 2}},
		},
		CritPaths: []critpath.QueryPath{{
			Query: "q00:scan", QCT: 5.5, CoveragePct: 100,
			Components: []critpath.Component{
				{Stage: "map", Name: "map@site-1", Seconds: 2.5, PctQCT: 45.5},
				{Stage: "shuffle", Name: "shuffle site-1->site-0", Seconds: 3, PctQCT: 54.5},
			},
		}},
		Children: []*Report{{SchemaVersion: ReportSchemaVersion, Scheme: "Iridium"}},
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, r) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", r, &got)
	}
	// The scheme id inside RunReport must serialize by display name.
	var raw map[string]any
	if err := json.Unmarshal(b, &raw); err != nil {
		t.Fatal(err)
	}
	run := raw["run"].(map[string]any)
	if run["scheme"] != "Bohr" {
		t.Fatalf("scheme serialized as %v, want \"Bohr\"", run["scheme"])
	}
}

func TestSchemeIDJSON(t *testing.T) {
	for _, id := range placement.AllSchemes() {
		b, err := json.Marshal(id)
		if err != nil {
			t.Fatal(err)
		}
		var got placement.SchemeID
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != id {
			t.Fatalf("%v round-tripped to %v", id, got)
		}
	}
	var bad placement.SchemeID
	if err := json.Unmarshal([]byte(`"NotAScheme"`), &bad); err == nil {
		t.Fatal("unknown scheme name should fail to decode")
	}
}

// TestRunOneShot exercises the core.Run convenience against the two-step
// System dance: same modeled outcome, plus a populated report document.
func TestRunOneShot(t *testing.T) {
	c, w := setup(t, workload.BigDataScan)
	col := obs.NewCollector()
	opts := placement.NewOptions(
		placement.WithLag(30), placement.WithProbeK(30),
		placement.WithSeed(7), placement.WithObs(col),
	)
	rep, err := Run(context.Background(), c.Clone(), w, placement.Bohr, WithPlacement(opts))
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != ReportSchemaVersion || rep.Scheme != "Bohr" {
		t.Fatalf("report header = %+v", rep)
	}
	if rep.Prepare == nil || rep.Run == nil {
		t.Fatal("one-shot report must carry both phase summaries")
	}
	if rep.Trace == nil || rep.Metrics == nil {
		t.Fatal("report with a collector must carry trace and metrics")
	}
	// The trace must expose the acceptance-criteria phases.
	for _, path := range [][]string{
		{"prepare", "probes"}, {"prepare", "lp"}, {"prepare", "move"}, {"run"},
	} {
		if rep.Trace.Find(path...) == nil {
			t.Fatalf("trace missing span %v", path)
		}
	}
	runSpan := rep.Trace.Find("run")
	if len(runSpan.Children) != len(w.Datasets) {
		t.Fatalf("run span has %d query children, want %d", len(runSpan.Children), len(w.Datasets))
	}
	for _, q := range runSpan.Children {
		for _, stage := range []string{"map", "shuffle", "reduce"} {
			if q.Find(stage) == nil {
				t.Fatalf("query span %q missing %s child", q.Name, stage)
			}
		}
	}
	if rep.Metrics.Counters["engine.records.moved"] <= 0 {
		t.Fatalf("metrics = %+v", rep.Metrics.Counters)
	}
	if rep.Metrics.Counters["lp.pivots"] <= 0 {
		t.Fatal("lp.pivots counter missing")
	}

	// Two-step form on the same snapshot, no collector: identical numbers.
	sys, err := New(c.Clone(), w, placement.Bohr, placement.Options{Lag: 30, ProbeK: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Prepare(context.Background()); err != nil {
		t.Fatal(err)
	}
	run2, err := sys.RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if run2.MeanQCT != rep.Run.MeanQCT {
		t.Fatalf("collector changed the modeled outcome: %v vs %v", run2.MeanQCT, rep.Run.MeanQCT)
	}
}
