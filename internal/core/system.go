// Package core ties the Bohr reproduction together: a System couples a
// geo-distributed cluster with a workload and a placement scheme, and
// drives the paper's pipeline — pre-processing into OLAP cubes, probe
// exchange, (joint) data/task placement, offline data movement in the
// query lag, and query execution with runtime RDD similarity. It also
// implements the §8.6 highly-dynamic-dataset mode where data arrives in
// batches between recurring queries.
package core

import (
	"context"
	"fmt"

	"bohr/internal/engine"
	"bohr/internal/obs"
	"bohr/internal/placement"
	"bohr/internal/stats"
	"bohr/internal/workload"
)

// System is one deployed configuration: cluster + workload + scheme.
type System struct {
	Cluster  *engine.Cluster
	Workload *workload.Workload
	Scheme   placement.SchemeID
	Opts     placement.Options
	// Obs collects phase spans and metrics for every pipeline stage the
	// system drives. New seeds it from Opts.Obs; set it before Prepare to
	// attach a collector. Nil (the default) disables collection at no cost.
	Obs *obs.Collector

	plan    *placement.Plan
	moved   *engine.MoveResult
	prepRep *PrepareReport
	lastRun *RunReport

	// Live-ingest state (see ingest.go): per-dataset cube maintainers,
	// the current plan's movement shares for forwarding new batches, and
	// the replan cadence counters.
	preps         map[string]*Preprocessor
	shares        map[string][][]float64
	replanEvery   int
	ingestBatches int
	ingestReplans int
}

// New validates and assembles a system. The cluster must already hold the
// workload's data (use workload.Populate) — New does not load data so that
// callers can share one populated snapshot across schemes via Clone.
func New(c *engine.Cluster, w *workload.Workload, scheme placement.SchemeID, opts placement.Options) (*System, error) {
	if c == nil || w == nil {
		return nil, fmt.Errorf("core: system needs a cluster and a workload")
	}
	for _, ds := range w.Datasets {
		found := false
		for i := 0; i < c.N() && !found; i++ {
			found = len(c.Data[i].Records(ds.Name)) > 0
		}
		if !found {
			return nil, fmt.Errorf("core: dataset %q has no data in the cluster; call workload.Populate first", ds.Name)
		}
	}
	return &System{Cluster: c, Workload: w, Scheme: scheme, Opts: opts, Obs: opts.Obs}, nil
}

// PrepareReport summarizes the offline phase.
type PrepareReport struct {
	// MovedMB is the total volume moved across the WAN in the lag.
	MovedMB float64 `json:"moved_mb"`
	// MoveDuration is the WAN time the movement took; it must fit in Lag.
	MoveDuration float64 `json:"move_duration_s"`
	// CheckTime is the modeled probe/similarity-checking time (offline).
	CheckTime float64 `json:"check_time_s"`
	// LPTime is the modeled optimizer time (included in QCT later).
	LPTime float64 `json:"lp_time_s"`
	// Moves is the number of movement specs executed.
	Moves int `json:"moves"`
}

// Prepare runs the offline pipeline: similarity checking via probes,
// placement planning, and data movement. It mutates the cluster's data
// placement. Prepare is idempotent: a second call is a no-op returning the
// cached report of the first. The context is honored at phase boundaries
// (before planning, before movement); a cancelled Prepare leaves the
// cluster's placement untouched.
func (s *System) Prepare(ctx context.Context) (*PrepareReport, error) {
	if s.plan != nil {
		return s.prepRep, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: prepare: %w", err)
	}
	opts := s.Opts
	opts.Obs = s.Obs
	// Log the fault schedule onto the run's event timeline up front, in
	// schedule order, so reports carry the injected faults even when no
	// live-path machinery fires.
	if f := opts.Faults; f != nil {
		for _, e := range f.Events {
			detail := fmt.Sprintf("end=%gs", e.End)
			if e.Factor != 0 {
				detail += fmt.Sprintf(" factor=%g", e.Factor)
			}
			if e.Prob != 0 {
				detail += fmt.Sprintf(" prob=%g", e.Prob)
			}
			if e.DelayMs != 0 {
				detail += fmt.Sprintf(" delay_ms=%g", e.DelayMs)
			}
			s.Obs.RecordEvent(obs.Event{T: e.Start, Kind: e.Kind.String(), Site: e.Site, Detail: detail})
		}
	}
	// Note: the pool width is deliberately NOT recorded in the metrics
	// snapshot — reports must stay byte-identical across widths, which
	// is the determinism gate `make check` enforces.
	prep := s.Obs.StartSpan("prepare")
	defer prep.End()
	plan, err := placement.PlanScheme(s.Scheme, s.Cluster, s.Workload, opts)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: prepare move: %w", err)
	}
	moved, err := plan.Execute(s.Cluster, stats.Split(s.Opts.Seed, 1001))
	if err != nil {
		return nil, err
	}
	s.plan = plan
	s.moved = moved
	// Newly ingested batches follow the plan's movement decision until
	// the next replan (§8.6 step 2), so remember its per-site shares.
	s.shares = planShares(plan, s.Cluster.N())
	rep := &PrepareReport{
		MoveDuration: moved.Duration,
		CheckTime:    plan.CheckTime,
		LPTime:       plan.LPTime,
		Moves:        len(plan.Moves),
	}
	for _, tr := range moved.Transfers {
		rep.MovedMB += tr.MB
	}
	prep.Add(rep.CheckTime + rep.LPTime + rep.MoveDuration)
	s.prepRep = rep
	return rep, nil
}

// Plan exposes the computed plan (nil before Prepare).
func (s *System) Plan() *placement.Plan { return s.plan }

// RunQuery executes one query under the prepared plan. The context is
// honored at the engine's chunk boundaries, so a cancelled query stops
// within one stage without perturbing later queries' results.
func (s *System) RunQuery(ctx context.Context, q engine.Query) (*engine.RunResult, error) {
	return s.RunQueryObs(ctx, q, s.Obs)
}

// RunQueryObs is RunQuery recording spans and metrics into the given
// collector instead of the system's own. The serving layer hands each
// query a fresh collector so its trace can be retained per query (the
// flight recorder's slow-query capture) instead of accreting forever
// under the daemon's long-lived root span; a nil collector runs the
// query unobserved.
func (s *System) RunQueryObs(ctx context.Context, q engine.Query, col *obs.Collector) (*engine.RunResult, error) {
	if s.plan == nil {
		return nil, fmt.Errorf("core: Prepare must run before queries")
	}
	cfg := s.plan.JobConfigFor(q)
	cfg.Obs = col
	return s.Cluster.Run(ctx, cfg)
}

// QueryReport is the outcome of one query execution.
type QueryReport struct {
	Dataset string  `json:"dataset"`
	Query   string  `json:"query"`
	QCT     float64 `json:"qct_s"`
	// IntermediateMBPerSite is the post-combiner volume per site.
	IntermediateMBPerSite []float64 `json:"intermediate_mb_per_site"`
	ShuffleMB             float64   `json:"shuffle_mb"`
}

// RunReport aggregates a full workload execution.
type RunReport struct {
	Scheme  placement.SchemeID `json:"scheme"`
	Queries []QueryReport      `json:"queries"`
	// MeanQCT is the average query completion time (the paper's headline
	// metric).
	MeanQCT float64 `json:"mean_qct_s"`
	// IntermediateMBPerSite sums per-site intermediate volumes across
	// queries.
	IntermediateMBPerSite []float64 `json:"intermediate_mb_per_site"`
	TotalShuffleMB        float64   `json:"total_shuffle_mb"`
}

// RunAll executes every dataset's dominant recurring query — concurrently,
// the way recurring queries over many datasets actually arrive and the way
// §5's objective models them (every dataset's shuffle shares the WAN) —
// and aggregates the metrics the paper reports.
func (s *System) RunAll(ctx context.Context) (*RunReport, error) {
	if s.plan == nil {
		return nil, fmt.Errorf("core: Prepare must run before queries")
	}
	rep := &RunReport{
		Scheme:                s.Scheme,
		IntermediateMBPerSite: make([]float64, s.Cluster.N()),
	}
	// Recurring queries start at the lag boundary on the fault timeline
	// (moves occupied [0, Lag)); keep the placement default in sync.
	lag := s.Opts.Lag
	if lag <= 0 {
		lag = 30
	}
	cfgs := make([]engine.JobConfig, len(s.Workload.Datasets))
	for i, ds := range s.Workload.Datasets {
		cfgs[i] = s.plan.JobConfigFor(ds.DominantQuery().Query)
		cfgs[i].Obs = s.Obs
		cfgs[i].FaultClock = lag
	}
	run := s.Obs.StartSpan("run")
	results, err := s.Cluster.RunConcurrent(ctx, cfgs)
	run.End()
	if err != nil {
		return nil, fmt.Errorf("core: concurrent run: %w", err)
	}
	var qctSum float64
	for i, res := range results {
		ds := s.Workload.Datasets[i]
		rep.Queries = append(rep.Queries, QueryReport{
			Dataset:               ds.Name,
			Query:                 cfgs[i].Query.Name,
			QCT:                   res.QCT,
			IntermediateMBPerSite: res.IntermediateMBPerSite,
			ShuffleMB:             res.TotalShuffleMB,
		})
		qctSum += res.QCT
		for j, mb := range res.IntermediateMBPerSite {
			rep.IntermediateMBPerSite[j] += mb
		}
		rep.TotalShuffleMB += res.TotalShuffleMB
	}
	if len(rep.Queries) > 0 {
		rep.MeanQCT = qctSum / float64(len(rep.Queries))
	}
	// The run stage's modeled span time is the concurrent makespan: the
	// slowest query's completion time.
	if s.Obs != nil {
		var makespan float64
		for _, res := range results {
			if res.QCT > makespan {
				makespan = res.QCT
			}
		}
		run.Add(makespan)
	}
	s.lastRun = rep
	return rep, nil
}

// VanillaBaseline runs the workload in-place on plain Spark semantics —
// no movement, no cubes, bandwidth-proportional task placement, random
// partition assignment — and returns the per-site intermediate volumes.
// The paper's "data reduction ratio" measures savings against this
// baseline.
func VanillaBaseline(ctx context.Context, c *engine.Cluster, w *workload.Workload) ([]float64, error) {
	inter := make([]float64, c.N())
	cfgs := make([]engine.JobConfig, len(w.Datasets))
	for i, ds := range w.Datasets {
		cfgs[i] = engine.JobConfig{Query: ds.DominantQuery().Query}
	}
	results, err := c.RunConcurrent(ctx, cfgs)
	if err != nil {
		return nil, fmt.Errorf("core: vanilla baseline: %w", err)
	}
	for _, res := range results {
		for i, mb := range res.IntermediateMBPerSite {
			inter[i] += mb
		}
	}
	return inter, nil
}

// ReductionUndefined flags a data-reduction entry whose vanilla baseline
// volume is zero while the scheme DID produce intermediate data there: the
// ratio is -∞ in the limit, and reporting 0 (as earlier versions did)
// silently hid that the scheme regressed the site. Consumers should treat
// entries ≤ ReductionUndefined as "worse than an empty baseline", not as
// a percentage.
const ReductionUndefined = -1e9

// DataReduction converts scheme vs vanilla intermediate volumes into the
// paper's per-site data reduction ratio (%): positive means the scheme
// produced less intermediate data than in-place processing; negative (as
// Iridium shows at some sites in Figure 8) means more. A site where the
// vanilla baseline is zero yields 0 when the scheme also produced nothing
// and ReductionUndefined when it produced data out of nowhere.
func DataReduction(vanilla, scheme []float64) []float64 {
	out := make([]float64, len(vanilla))
	for i := range vanilla {
		if vanilla[i] <= 0 {
			if scheme[i] > 0 {
				out[i] = ReductionUndefined
			} else {
				out[i] = 0
			}
			continue
		}
		out[i] = 100 * (1 - scheme[i]/vanilla[i])
	}
	return out
}
