package crashtest

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"bohr/internal/durable"
)

// bohrdBin is the bohrd binary TestMain builds once for every trial.
var bohrdBin string

func TestMain(m *testing.M) {
	os.Exit(runMain(m))
}

func runMain(m *testing.M) int {
	dir, err := os.MkdirTemp("", "crashtest-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "bohrd")
	if out, err := exec.Command("go", "build", "-o", bin, "bohr/cmd/bohrd").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building bohrd: %v\n%s", err, out)
		return 1
	}
	bohrdBin = bin
	return m.Run()
}

// TestCrashRecovery runs seeded kill-restart trials against a child
// bohrd. Trial modes rotate by seed:
//
//   - quiesce: stream everything, wait until applied, pin the query,
//     SIGKILL, restart, and require the pinned query to answer
//     byte-identically — the recovered process is indistinguishable
//     from one that never crashed.
//   - midstream: SIGKILL right after a seeded ack boundary, while acked
//     batches are still buffered ahead of the applier — the window only
//     the WAL covers. Restart, resend the unacked tail, and require
//     exact per-url counts.
//   - racy: SIGKILL at a seeded wall-clock moment while the client is
//     streaming, so the kill lands mid-request and the client cannot
//     know the last batch's fate. At-least-once resend from the last
//     ack must still yield exact counts.
//
// A seeded subset of trials also appends a torn tail (zeros, random
// garbage, or a truncated valid frame) to the newest WAL segment before
// restarting. Every trial asserts the recovered watermark covers every
// acked offset: zero acked loss.
func TestCrashRecovery(t *testing.T) {
	trials := 20
	if testing.Short() {
		trials = 6
	}
	for i := 0; i < trials; i++ {
		seed := int64(i + 1)
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			runTrial(t, seed)
		})
	}
}

func runTrial(t *testing.T, seed int64) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed))
	modes := []string{"quiesce", "midstream", "racy"}
	mode := modes[int(seed)%len(modes)]
	torn := rng.Intn(2) == 0
	snapEvery := []int{0, 2, 4, 8}[rng.Intn(4)]

	dataDir := t.TempDir()
	var stderr1, stderr2 bytes.Buffer
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("first daemon stderr:\n%s", stderr1.String())
			t.Logf("second daemon stderr:\n%s", stderr2.String())
		}
	})

	d1, err := StartDaemon(ctx, DaemonConfig{
		Bin: bohrdBin, DataDir: dataDir, SnapshotEvery: snapEvery, Stderr: &stderr1,
	})
	if err != nil {
		t.Fatalf("starting daemon: %v\nstderr:\n%s", err, stderr1.String())
	}
	defer d1.Kill()

	st := &Stream{Base: d1.Base, Source: fmt.Sprintf("crash%02d", seed), BatchSize: 6}
	totalBatches := 6 + rng.Intn(6)
	total := uint64(totalBatches * st.BatchSize)
	t.Logf("mode=%s torn=%v snapshot-every=%d batches=%d total=%d",
		mode, torn, snapEvery, totalBatches, total)

	// Phase 1: stream until the trial's kill point, then SIGKILL.
	var acked uint64
	var before []byte // pinned rows bytes, quiesce mode only
	switch mode {
	case "quiesce":
		acked, err = st.SendRange(ctx, 1, total)
		if err != nil || acked != total {
			t.Fatalf("streaming: acked %d/%d: %v", acked, total, err)
		}
		if err := WaitApplied(ctx, d1.Base, st.Source, total, 30*time.Second); err != nil {
			t.Fatalf("quiescing: %v", err)
		}
		before, _, err = PinnedQuery(ctx, d1.Base)
		if err != nil {
			t.Fatalf("pinned query before kill: %v", err)
		}
		d1.Kill()
	case "midstream":
		killBatch := 1 + rng.Intn(totalBatches-1)
		ackTarget := uint64(killBatch * st.BatchSize)
		acked, err = st.SendRange(ctx, 1, ackTarget)
		if err != nil || acked != ackTarget {
			t.Fatalf("streaming: acked %d/%d: %v", acked, ackTarget, err)
		}
		// Acked but likely still buffered ahead of the applier: the
		// kill lands in the window only the WAL covers.
		d1.Kill()
	case "racy":
		// Pace the stream so the seeded kill lands mid-flight, not
		// after the final ack.
		st.Pace = 2 * time.Millisecond
		delay := time.Duration(rng.Int63n(int64(20 * time.Millisecond)))
		killed := make(chan struct{})
		go func() {
			defer close(killed)
			time.Sleep(delay)
			d1.Kill()
		}()
		// The send error (if any) is the expected kill landing
		// mid-request; only the acked high-water mark matters.
		acked, _ = st.SendRange(ctx, 1, total)
		<-killed
		t.Logf("racy kill after %s: acked through %d/%d", delay, acked, total)
	}

	if torn {
		garbage := makeGarbage(rng)
		seg, err := InjectTornTail(dataDir, garbage)
		if err != nil {
			t.Fatalf("injecting torn tail: %v", err)
		}
		t.Logf("appended %d garbage bytes to %s", len(garbage), filepath.Base(seg))
	}

	// Phase 2: restart on the same directory and check recovery.
	d2, err := StartDaemon(ctx, DaemonConfig{
		Bin: bohrdBin, DataDir: dataDir, SnapshotEvery: snapEvery, Stderr: &stderr2,
	})
	if err != nil {
		t.Fatalf("restarting daemon: %v\nstderr:\n%s", err, stderr2.String())
	}
	defer d2.Kill()

	wm, err := SourceWatermark(ctx, d2.Base, st.Source)
	if err != nil {
		t.Fatalf("reading recovered watermark: %v", err)
	}
	if wm < acked {
		t.Fatalf("acked through offset %d but recovered watermark is %d: acked records lost", acked, wm)
	}

	if mode == "quiesce" {
		after, _, err := PinnedQuery(ctx, d2.Base)
		if err != nil {
			t.Fatalf("pinned query after recovery: %v", err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("pinned query diverged after recovery:\nbefore: %s\nafter:  %s", before, after)
		}
	} else if acked < total {
		// At-least-once resend of everything past the last ack; the
		// server may have journaled some of it already, so dedupe
		// absorbs the overlap.
		st2 := &Stream{Base: d2.Base, Source: st.Source, BatchSize: st.BatchSize}
		a2, err := st2.SendRange(ctx, acked+1, total)
		if err != nil || a2 != total {
			t.Fatalf("resuming stream: acked %d/%d: %v", a2, total, err)
		}
	}
	if err := WaitApplied(ctx, d2.Base, st.Source, total, 30*time.Second); err != nil {
		t.Fatalf("quiescing after recovery: %v", err)
	}

	// Exact per-url counts: any lost record undercounts, any
	// double-applied record overcounts.
	_, rows, err := PinnedQuery(ctx, d2.Base)
	if err != nil {
		t.Fatalf("final pinned query: %v", err)
	}
	got := map[string]int{}
	for _, r := range rows {
		if strings.HasPrefix(r.Key, "live-u") {
			got[r.Key] = int(r.Val)
		}
	}
	want := ExpectedURLCounts(total)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("per-url counts after recovery:\n got %v\nwant %v", got, want)
	}
}

// makeGarbage builds a seeded torn tail: zeros (a preallocated-but-
// unwritten block), random bytes (a scrambled partial write), or a
// truncated valid frame (the classic torn append).
func makeGarbage(rng *rand.Rand) []byte {
	switch rng.Intn(3) {
	case 0:
		return make([]byte, 1+rng.Intn(64))
	case 1:
		b := make([]byte, 1+rng.Intn(64))
		rng.Read(b)
		return b
	default:
		payload := make([]byte, 1+rng.Intn(32))
		rng.Read(payload)
		frame := durable.EncodeFrame(nil, payload)
		return frame[:1+rng.Intn(len(frame)-1)]
	}
}
