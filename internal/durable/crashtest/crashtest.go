// Package crashtest is a crash-consistency harness for the durable
// ingest path. It drives a real bohrd serve process over a durability
// directory, SIGKILLs it at seeded points (optionally appending a torn
// tail to the newest WAL segment first), restarts it on the same
// directory, and checks the recovery invariants: no acked record is
// lost, no record is applied twice, and a pinned query answers
// byte-identically after recovery.
//
// The harness is deliberately end-to-end: records travel through the
// real HTTP ingest endpoint, the real WAL and snapshot files, and a
// real process boundary, so fsync ordering bugs that in-process tests
// cannot see (acks racing the journal, partial tail writes) surface
// here.
package crashtest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bohr/internal/ingest"
)

// Dataset is the single dataset a quick bigdata-scan setup with
// -datasets 1 serves.
const Dataset = "amplab-000"

// Sites is the quick-setup cluster size.
const Sites = 4

// startTimeout bounds how long a child bohrd may take to print its
// serving line (placement runs before the listener comes up).
const startTimeout = 60 * time.Second

// DaemonConfig configures one child bohrd serve process.
type DaemonConfig struct {
	// Bin is the path to a built bohrd binary.
	Bin string
	// DataDir is the durability directory (-data-dir).
	DataDir string
	// SnapshotEvery is the cadence snapshot interval in applied batches
	// (0 disables cadence snapshots, leaving pure WAL replay).
	SnapshotEvery int
	// Stderr collects the child's stderr — recovery summaries land
	// there, so keep it for failure diagnostics.
	Stderr io.Writer
}

// Daemon is one running child bohrd.
type Daemon struct {
	// Base is the serving base URL, e.g. "http://127.0.0.1:41234".
	Base string

	cmd      *exec.Cmd
	done     chan error
	killOnce sync.Once
}

// StartDaemon launches bohrd serve on the config's data directory and
// waits for its serving line. The workload flags are pinned (quick
// setup, one dataset, fixed seed, no live replans) so every start of
// the same directory reconstructs the same seed state and recovery
// divergence is attributable to durability bugs alone.
func StartDaemon(ctx context.Context, cfg DaemonConfig) (*Daemon, error) {
	args := []string{
		"serve",
		"-quick", "-datasets", "1", "-rows", "24", "-seed", "7",
		"-scheme", "bohr",
		"-telemetry-addr", "127.0.0.1:0",
		"-data-dir", cfg.DataDir,
		"-fsync=true",
		"-snapshot-every", strconv.Itoa(cfg.SnapshotEvery),
		"-ingest-batch", "8",
		"-ingest-interval", "20ms",
		"-ingest-replan", "0",
	}
	cmd := exec.CommandContext(ctx, cfg.Bin, args...)
	cmd.Stderr = cfg.Stderr
	cmd.WaitDelay = 5 * time.Second
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("starting bohrd: %w", err)
	}
	d := &Daemon{cmd: cmd, done: make(chan error, 1)}
	baseCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			i := strings.Index(line, "on http://")
			j := strings.Index(line, "/v1/query")
			if i >= 0 && j > i {
				select {
				case baseCh <- line[i+len("on ") : j]:
				default:
				}
			}
		}
	}()
	go func() { d.done <- cmd.Wait() }()
	select {
	case base := <-baseCh:
		d.Base = base
		return d, nil
	case err := <-d.done:
		return nil, fmt.Errorf("bohrd exited before serving: %v", err)
	case <-time.After(startTimeout):
		d.Kill()
		return nil, fmt.Errorf("bohrd did not serve within %s", startTimeout)
	case <-ctx.Done():
		d.Kill()
		return nil, ctx.Err()
	}
}

// Kill SIGKILLs the child and reaps it. Idempotent, so tests can defer
// it as cleanup after already killing mid-trial.
func (d *Daemon) Kill() {
	d.killOnce.Do(func() {
		d.cmd.Process.Kill()
		<-d.done
	})
}

// Stream sends deterministic records for one source at a daemon's
// ingest endpoint in fixed-size batches.
type Stream struct {
	Base      string
	Source    string
	BatchSize int
	// Pace inserts a delay between batches, stretching the stream so a
	// concurrent kill can land mid-request instead of after the last
	// ack (localhost pushes complete in microseconds otherwise).
	Pace time.Duration

	hc http.Client
}

// Rec builds the record at one 1-based offset. The mapping is pure, so
// a client restarted after a crash regenerates byte-identical resends,
// and expected query results are computable without tracking state.
func Rec(source string, off uint64) ingest.Record {
	return ingest.Record{
		Source:  source,
		Offset:  off,
		Dataset: Dataset,
		Site:    int((off - 1) % Sites),
		Measure: 1,
		Coords: []string{
			fmt.Sprintf("live-u%d", off%5),
			fmt.Sprintf("live-c%d", off%3),
			fmt.Sprintf("%02d", off%24),
		},
	}
}

// ExpectedURLCounts is the url -> COUNT(*) contribution of offsets
// 1..total under Rec's mapping: the oracle for the zero-loss /
// zero-double-apply check.
func ExpectedURLCounts(total uint64) map[string]int {
	m := map[string]int{}
	for off := uint64(1); off <= total; off++ {
		m[fmt.Sprintf("live-u%d", off%5)]++
	}
	return m
}

// SendRange pushes offsets [from, to] batch by batch and returns the
// highest offset through which every batch was acked. A send error
// (daemon killed mid-request) returns the acked high-water mark with
// the error — the caller resumes from acked+1 after restart.
func (s *Stream) SendRange(ctx context.Context, from, to uint64) (uint64, error) {
	acked := from - 1
	for lo := from; lo <= to; {
		hi := min(lo+uint64(s.BatchSize)-1, to)
		recs := make([]ingest.Record, 0, hi-lo+1)
		for off := lo; off <= hi; off++ {
			recs = append(recs, Rec(s.Source, off))
		}
		if err := s.push(ctx, recs); err != nil {
			return acked, err
		}
		acked = hi
		lo = hi + 1
		if s.Pace > 0 && lo <= to {
			time.Sleep(s.Pace)
		}
	}
	return acked, nil
}

// push sends one batch. The batch counts as acked only on a clean 200
// with every record accounted for; 429 backs off and resends the whole
// batch (offset dedupe makes that safe).
func (s *Stream) push(ctx context.Context, recs []ingest.Record) error {
	body := ingest.EncodeBatch(recs)
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			s.Base+"/v1/ingest", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "text/plain")
		resp, err := s.hc.Do(req)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		var pr ingest.PushResponse
		if err := json.Unmarshal(data, &pr); err != nil {
			return fmt.Errorf("push: status %d: undecodable body %q", resp.StatusCode, data)
		}
		if resp.StatusCode == http.StatusOK && pr.Error == "" &&
			pr.Accepted+pr.Deduped == len(recs) {
			return nil
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < 100 {
			select {
			case <-time.After(10 * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		return fmt.Errorf("push: status %d: %s", resp.StatusCode, data)
	}
}

// statsDoc is the slice of /v1/stats the harness reads.
type statsDoc struct {
	IngestPending int `json:"ingest_pending"`
	IngestSources []struct {
		Source    string `json:"source"`
		Watermark uint64 `json:"watermark"`
		Pending   int    `json:"pending"`
	} `json:"ingest_sources"`
}

func fetchStats(ctx context.Context, base string) (*statsDoc, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var doc statsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// SourceWatermark reads one source's contiguous accepted-offset
// watermark from /v1/stats. Right after a restart this is the recovered
// position — the direct witness that acked offsets survived the crash.
func SourceWatermark(ctx context.Context, base, source string) (uint64, error) {
	doc, err := fetchStats(ctx, base)
	if err != nil {
		return 0, err
	}
	for _, src := range doc.IngestSources {
		if src.Source == source {
			return src.Watermark, nil
		}
	}
	return 0, nil
}

// WaitApplied polls /v1/stats until the source's watermark reaches
// target and the pipeline has drained its buffers — i.e. every sent
// record is applied, not merely admitted.
func WaitApplied(ctx context.Context, base, source string, target uint64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	last := "no stats yet"
	for {
		doc, err := fetchStats(ctx, base)
		if err == nil {
			var wm uint64
			pending := doc.IngestPending
			for _, src := range doc.IngestSources {
				if src.Source == source {
					wm = src.Watermark
					pending += src.Pending
				}
			}
			if wm >= target && pending == 0 {
				return nil
			}
			last = fmt.Sprintf("watermark %d/%d, pending %d", wm, target, pending)
		} else {
			last = err.Error()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("not applied within %s: %s", timeout, last)
		}
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// Row is one pinned-query result row.
type Row struct {
	Key string  `json:"key"`
	Val float64 `json:"val"`
}

// PinnedQuery runs the recovery-pinned statement — COUNT(*) per url
// over the served dataset — and returns the raw bytes of the response's
// rows field (for byte-identity checks; the envelope's cached/elapsed
// fields are legitimately nondeterministic) plus the decoded rows.
func PinnedQuery(ctx context.Context, base string) ([]byte, []Row, error) {
	payload, err := json.Marshal(map[string]any{
		"tenant": "crash",
		"query":  fmt.Sprintf("SELECT url, COUNT(*) FROM %s GROUP BY url", Dataset),
	})
	if err != nil {
		return nil, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/v1/query", bytes.NewReader(payload))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("query: status %d: %s", resp.StatusCode, data)
	}
	var doc struct {
		Rows json.RawMessage `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, nil, err
	}
	var rows []Row
	if err := json.Unmarshal(doc.Rows, &rows); err != nil {
		return nil, nil, err
	}
	return doc.Rows, rows, nil
}

// InjectTornTail appends garbage bytes to the newest WAL segment,
// simulating a write that the crash cut short. It must append, never
// truncate: truncating would destroy fsynced frames backing acked
// records, which is a disk failure, not a crash. Returns the segment
// path it tore.
func InjectTornTail(dir string, garbage []byte) (string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return "", err
	}
	if len(names) == 0 {
		return "", fmt.Errorf("no wal segments in %s", dir)
	}
	sort.Strings(names)
	last := names[len(names)-1]
	f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(garbage); err != nil {
		f.Close()
		return "", err
	}
	return last, f.Close()
}
