// Package durable gives one bohrd site crash-safe state: a per-site
// write-ahead log of acknowledged ingest records plus periodic snapshots
// of the applied state, with a recovery path that loads the newest valid
// snapshot and replays the WAL tail through the at-least-once offset
// dedupe — so replay is exactly-once, and nothing a client has seen
// acknowledged is lost by a kill -9.
//
// The WAL reuses the ingest wire codec for payloads (one frame = the
// EncodeBatch rendering of one acknowledged push), framed with a length
// and a CRC32C so a torn tail — the half-written frame a crash mid-write
// leaves behind — is detected and truncated, never mis-replayed.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// frameHeaderLen is the fixed frame prefix: uint32 payload length +
// uint32 CRC32C of the payload, both little-endian.
const frameHeaderLen = 8

// MaxFramePayload bounds one frame's payload. The largest legitimate
// payload is one pushed batch (the HTTP endpoint caps request bodies at
// 8 MiB), so anything above this is a corrupt length field, not data —
// the cap is what keeps a garbage length from provoking a huge
// allocation during recovery.
const MaxFramePayload = 16 << 20

// ErrTornFrame reports a frame that cannot be whole: a truncated header
// or payload, an impossible length, or a checksum mismatch. Recovery
// treats it as the torn tail of the log and truncates there.
var ErrTornFrame = errors.New("durable: torn or corrupt frame")

// castagnoli is the CRC32C table (the polynomial storage systems use;
// hardware-accelerated by hash/crc32 where available).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodeFrame appends one framed payload to dst and returns the extended
// slice: [uint32 len][uint32 crc32c(payload)][payload].
func EncodeFrame(dst, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrame reads one frame from the head of data, returning the
// payload (aliasing data — copy it to retain) and the bytes after the
// frame. Any impossibility — short header, length over MaxFramePayload,
// truncated payload, checksum mismatch — is ErrTornFrame; DecodeFrame
// never panics on arbitrary input.
func DecodeFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < frameHeaderLen {
		return nil, nil, fmt.Errorf("%w: %d header bytes of %d", ErrTornFrame, len(data), frameHeaderLen)
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n > MaxFramePayload {
		return nil, nil, fmt.Errorf("%w: length %d over cap %d", ErrTornFrame, n, MaxFramePayload)
	}
	if uint64(len(data)-frameHeaderLen) < uint64(n) {
		return nil, nil, fmt.Errorf("%w: %d payload bytes of %d", ErrTornFrame, len(data)-frameHeaderLen, n)
	}
	payload = data[frameHeaderLen : frameHeaderLen+int(n)]
	want := binary.LittleEndian.Uint32(data[4:8])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrTornFrame, got, want)
	}
	return payload, data[frameHeaderLen+int(n):], nil
}
