package durable

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALFrame throws arbitrary bytes at the frame codec and the WAL
// tail scanner. Three properties must hold for every input:
//
//  1. DecodeFrame never panics, and any frame it accepts re-encodes to
//     exactly the bytes it consumed.
//  2. Any payload encodes to a frame that decodes back byte-identically
//     with nothing left over.
//  3. A WAL holding known-good frames with the input appended as a torn
//     tail recovers every intact frame and never invents or reorders
//     records — garbage is truncated, not mis-replayed.
func FuzzWALFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("hello"))
	f.Add(EncodeFrame(nil, []byte("payload bytes")))
	f.Add(EncodeFrame(nil, []byte("ab"))[:5])
	flipped := EncodeFrame(nil, []byte("xyz"))
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	f.Add(make([]byte, 64))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Property 1: decode total, accepted prefixes re-encode exactly.
		payload, rest, err := DecodeFrame(data)
		if err == nil {
			consumed := len(data) - len(rest)
			re := EncodeFrame(nil, payload)
			if !bytes.Equal(re, data[:consumed]) {
				t.Fatalf("accepted frame does not re-encode to its input: %x vs %x",
					re, data[:consumed])
			}
		}

		// Property 2: encode/decode round-trip.
		if n := len(data); n > 0 && n <= MaxFramePayload {
			frame := EncodeFrame(nil, data)
			got, tail, err := DecodeFrame(frame)
			if err != nil {
				t.Fatalf("round-trip decode failed: %v", err)
			}
			if len(tail) != 0 || !bytes.Equal(got, data) {
				t.Fatalf("round-trip mismatch: %d tail bytes, payload equal=%v",
					len(tail), bytes.Equal(got, data))
			}
		}

		// Property 3: torn tails truncate, intact frames survive.
		dir := t.TempDir()
		w, _, err := OpenWAL(dir, WALConfig{})
		if err != nil {
			t.Fatalf("opening wal: %v", err)
		}
		want := [][]byte{[]byte("frame-1"), []byte("frame-2"), []byte("frame-3")}
		for _, p := range want {
			if _, err := w.Append(context.Background(), p); err != nil {
				t.Fatalf("appending: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("closing wal: %v", err)
		}
		seg := filepath.Join(dir, fmt.Sprintf("wal-%016d.seg", 1))
		fh, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatalf("opening segment: %v", err)
		}
		if _, err := fh.Write(data); err != nil {
			t.Fatalf("appending garbage: %v", err)
		}
		fh.Close()
		w2, scan, err := OpenWAL(dir, WALConfig{})
		if err != nil {
			t.Fatalf("reopening torn wal: %v", err)
		}
		defer w2.Close()
		if scan.Frames < len(want) {
			t.Fatalf("scan lost intact frames: %d < %d", scan.Frames, len(want))
		}
		var got [][]byte
		if err := w2.Replay(0, func(seq uint64, p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("replaying recovered wal: %v", err)
		}
		if len(got) < len(want) {
			t.Fatalf("replay lost frames: %d < %d", len(got), len(want))
		}
		for i, p := range want {
			if !bytes.Equal(got[i], p) {
				t.Fatalf("frame %d mis-replayed: %q vs %q", i+1, got[i], p)
			}
		}
	})
}
