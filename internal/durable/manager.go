package durable

import (
	"context"
	"fmt"
	"log/slog"
	"sort"

	"bohr/internal/ingest"
)

// Config configures one site's durability directory.
type Config struct {
	// Dir holds the WAL segments and snapshots (created if missing).
	Dir string
	// Fsync gates group-commit fsync on the WAL (see WALConfig.Fsync).
	Fsync bool
	// SegmentBytes overrides the WAL rotation threshold (0 = default).
	SegmentBytes int64
	// Logger receives recovery and snapshot events; nil disables.
	Logger *slog.Logger
}

// Manager owns a site's durable state: the WAL journaling acknowledged
// ingest records and the snapshots bounding replay. One Manager per
// data directory; its Journal plugs into the ingest pipeline, and the
// serve layer drives Recover at startup and WriteSnapshot on cadence.
type Manager struct {
	cfg  Config
	wal  *WAL
	scan WALScan
}

// RecoverySummary reports what Recover did.
type RecoverySummary struct {
	// SnapshotSeq is the WAL seq the restored snapshot covered (0 = no
	// snapshot, full-log replay).
	SnapshotSeq uint64
	// SkippedSnapshots names snapshot files skipped as corrupt.
	SkippedSnapshots []string
	// FramesReplayed / RecordsReplayed count WAL tail content applied.
	FramesReplayed  int
	RecordsReplayed int
	// RecordsDeduped counts replayed records the offset trackers already
	// covered — journaled twice across a crash, applied once.
	RecordsDeduped int
	// TruncatedBytes is the torn tail cut from the WAL, and
	// DroppedSegments any post-corruption segments discarded.
	TruncatedBytes  int64
	DroppedSegments int
	// WalSeq is the log's position after recovery.
	WalSeq uint64
	// Sources is the post-replay offset tracker state, name-sorted —
	// exactly what the restarted pipeline should restore, so resumed
	// client replays dedupe against everything recovered.
	Sources []ingest.SourceOffsets
}

// Open opens (or initializes) the durability directory: the WAL is
// scanned, any torn tail truncated, and the log readied for append.
// State is not touched — call Recover to rebuild it.
func Open(cfg Config) (*Manager, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("durable: empty data dir")
	}
	wal, scan, err := OpenWAL(cfg.Dir, WALConfig{Fsync: cfg.Fsync, SegmentBytes: cfg.SegmentBytes})
	if err != nil {
		return nil, err
	}
	return &Manager{cfg: cfg, wal: wal, scan: *scan}, nil
}

// Scan reports what opening the WAL found.
func (m *Manager) Scan() WALScan { return m.scan }

// Seq is the WAL's last assigned frame sequence number.
func (m *Manager) Seq() uint64 { return m.wal.Seq() }

// journal adapts the WAL to the pipeline's Journal interface: one
// acknowledged push = one frame, payload in the ingest wire codec.
type journal struct{ m *Manager }

func (j journal) Append(ctx context.Context, recs []ingest.Record) error {
	if len(recs) == 0 {
		return nil
	}
	_, err := j.m.wal.Append(ctx, ingest.EncodeBatch(recs))
	return err
}

// Journal returns the pipeline-facing appender. Its Append returns only
// after the records are framed in the WAL (and fsynced, in Fsync mode)
// — the pipeline calls it before acknowledging a push, which is what
// makes an ack a durability promise.
func (m *Manager) Journal() ingest.Journal { return journal{m} }

// Recover rebuilds state: it loads the newest valid snapshot, hands it
// to restore (skipped when no snapshot exists — the system starts from
// its seed state), then replays every WAL frame past the snapshot
// through the per-source offset trackers, handing only not-yet-covered
// records to apply. Replay is therefore exactly-once even though the
// journal is at-least-once: a batch journaled and acked just before a
// crash, then re-sent by the client and journaled again after restart,
// dedupes on its offsets.
func (m *Manager) Recover(ctx context.Context, restore func(*State) error, apply func(ctx context.Context, recs []ingest.Record) error) (*RecoverySummary, error) {
	sum := &RecoverySummary{
		TruncatedBytes:  m.scan.TruncatedBytes,
		DroppedSegments: m.scan.DroppedSegments,
	}
	st, skipped, err := loadLatestSnapshot(m.cfg.Dir)
	if err != nil {
		return nil, err
	}
	sum.SkippedSnapshots = skipped
	for _, name := range skipped {
		m.logWarn("durable: skipping corrupt snapshot", slog.String("file", name))
	}

	trackers := map[string]*ingest.Offsets{}
	if st != nil {
		sum.SnapshotSeq = st.WalSeq
		for _, so := range st.Sources {
			tr := &ingest.Offsets{}
			if err := tr.Restore(so.Watermark, so.Above); err != nil {
				return nil, fmt.Errorf("durable: recover source %q: %w", so.Source, err)
			}
			trackers[so.Source] = tr
		}
		if err := restore(st); err != nil {
			return nil, fmt.Errorf("durable: restore snapshot: %w", err)
		}
	}

	err = m.wal.Replay(sum.SnapshotSeq, func(seq uint64, payload []byte) error {
		recs, err := ingest.DecodeBatch(payload)
		if err != nil {
			// OpenWAL validated the frame's checksum, so this is a
			// logic-level impossibility, not disk corruption.
			return fmt.Errorf("durable: replay frame %d: %w", seq, err)
		}
		fresh := recs[:0]
		for _, rec := range recs {
			tr := trackers[rec.Source]
			if tr == nil {
				tr = &ingest.Offsets{}
				trackers[rec.Source] = tr
			}
			if !tr.Admit(rec.Offset) {
				sum.RecordsDeduped++
				continue
			}
			fresh = append(fresh, rec)
		}
		sum.FramesReplayed++
		sum.RecordsReplayed += len(fresh)
		if len(fresh) == 0 {
			return nil
		}
		return apply(ctx, fresh)
	})
	if err != nil {
		return nil, err
	}

	sum.WalSeq = m.wal.Seq()
	names := make([]string, 0, len(trackers))
	for name := range trackers {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		wm, above := trackers[name].Export()
		sum.Sources = append(sum.Sources, ingest.SourceOffsets{Source: name, Watermark: wm, Above: above})
	}
	m.logInfo("durable: recovered",
		slog.Uint64("snapshot_seq", sum.SnapshotSeq),
		slog.Uint64("wal_seq", sum.WalSeq),
		slog.Int("frames_replayed", sum.FramesReplayed),
		slog.Int("records_replayed", sum.RecordsReplayed),
		slog.Int("records_deduped", sum.RecordsDeduped),
		slog.Int64("truncated_bytes", sum.TruncatedBytes))
	return sum, nil
}

// WriteSnapshot persists st (whose WalSeq the caller captured under a
// pipeline barrier, so the state and the log position agree), then
// prunes older snapshots and every WAL segment the new snapshot fully
// covers.
func (m *Manager) WriteSnapshot(st *State) error {
	if err := writeSnapshotFile(m.cfg.Dir, st); err != nil {
		return err
	}
	if err := pruneSnapshots(m.cfg.Dir, st.WalSeq); err != nil {
		return err
	}
	if err := m.wal.Prune(st.WalSeq); err != nil {
		return err
	}
	m.logInfo("durable: snapshot written", slog.Uint64("wal_seq", st.WalSeq))
	return nil
}

// Close seals the WAL. Call after the pipeline has stopped journaling.
func (m *Manager) Close() error { return m.wal.Close() }

func (m *Manager) logInfo(msg string, attrs ...slog.Attr) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.LogAttrs(context.Background(), slog.LevelInfo, msg, attrs...)
	}
}

func (m *Manager) logWarn(msg string, attrs ...slog.Attr) {
	if m.cfg.Logger != nil {
		m.cfg.Logger.LogAttrs(context.Background(), slog.LevelWarn, msg, attrs...)
	}
}
