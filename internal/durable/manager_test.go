package durable

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bohr/internal/ingest"
)

func mkRecs(source string, offs ...uint64) []ingest.Record {
	recs := make([]ingest.Record, 0, len(offs))
	for _, off := range offs {
		recs = append(recs, ingest.Record{
			Source:  source,
			Offset:  off,
			Dataset: "sales",
			Site:    int(off % 3),
			Coords:  []string{"a", "b"},
			Measure: 1,
		})
	}
	return recs
}

func TestSnapshotWriteLoadPrune(t *testing.T) {
	dir := t.TempDir()
	older := &State{WalSeq: 5, IngestBatches: 2,
		Sources: []ingest.SourceOffsets{{Source: "web", Watermark: 5}}}
	newer := &State{WalSeq: 10, IngestBatches: 4,
		Sources: []ingest.SourceOffsets{{Source: "web", Watermark: 10, Above: []uint64{12}}}}
	if err := writeSnapshotFile(dir, older); err != nil {
		t.Fatal(err)
	}
	if err := writeSnapshotFile(dir, newer); err != nil {
		t.Fatal(err)
	}
	st, skipped, err := loadLatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped %v on clean files", skipped)
	}
	if !reflect.DeepEqual(st, newer) {
		t.Fatalf("loaded %+v, want %+v", st, newer)
	}

	// Corrupt the newest: the loader falls back to the older one.
	newest := filepath.Join(dir, snapName(10))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, skipped, err = loadLatestSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != snapName(10) {
		t.Fatalf("skipped = %v, want the corrupt newest", skipped)
	}
	if !reflect.DeepEqual(st, older) {
		t.Fatalf("fallback loaded %+v, want %+v", st, older)
	}

	// Prune below seq 10 removes the seq-5 file.
	if err := pruneSnapshots(dir, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(5))); !os.IsNotExist(err) {
		t.Fatalf("seq-5 snapshot survived prune: %v", err)
	}
	if _, err := os.Stat(newest); err != nil {
		t.Fatalf("keep-seq snapshot removed: %v", err)
	}
}

// TestManagerRecoverFullLog journals batches with overlapping offsets
// (an at-least-once resend) and recovers with no snapshot: every acked
// record applies exactly once.
func TestManagerRecoverFullLog(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	j := m.Journal()
	for _, batch := range [][]ingest.Record{
		mkRecs("web", 1, 2, 3),
		mkRecs("web", 3, 4), // offset 3 resent after a client retry
		mkRecs("app", 1, 2),
		mkRecs("web", 5),
	} {
		if err := j.Append(ctx, batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Config{Dir: dir, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	applied := map[string][]uint64{}
	sum, err := m2.Recover(ctx,
		func(*State) error { t.Fatal("restore called with no snapshot"); return nil },
		func(_ context.Context, recs []ingest.Record) error {
			for _, r := range recs {
				applied[r.Source] = append(applied[r.Source], r.Offset)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if sum.SnapshotSeq != 0 || sum.FramesReplayed != 4 {
		t.Fatalf("summary = %+v", sum)
	}
	if sum.RecordsDeduped != 1 {
		t.Fatalf("deduped = %d, want 1 (the resent offset)", sum.RecordsDeduped)
	}
	if want := []uint64{1, 2, 3, 4, 5}; !reflect.DeepEqual(applied["web"], want) {
		t.Fatalf("web applied %v, want %v", applied["web"], want)
	}
	if want := []uint64{1, 2}; !reflect.DeepEqual(applied["app"], want) {
		t.Fatalf("app applied %v, want %v", applied["app"], want)
	}
	wantSrc := []ingest.SourceOffsets{
		{Source: "app", Watermark: 2},
		{Source: "web", Watermark: 5},
	}
	if !reflect.DeepEqual(sum.Sources, wantSrc) {
		t.Fatalf("sources = %+v, want %+v", sum.Sources, wantSrc)
	}
}

// TestManagerRecoverSnapshotPlusTail writes a snapshot covering a log
// prefix, then recovers: the snapshot state restores, only the tail
// replays, and tail records the snapshot's trackers already cover
// dedupe away.
func TestManagerRecoverSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	j := m.Journal()
	if err := j.Append(ctx, mkRecs("web", 1, 2, 3)); err != nil { // frame 1
		t.Fatal(err)
	}
	if err := j.Append(ctx, mkRecs("web", 4)); err != nil { // frame 2
		t.Fatal(err)
	}
	// Snapshot covers frames 1-2 (offsets 1-4 applied).
	snap := &State{
		WalSeq:        m.Seq(),
		IngestBatches: 2,
		Sources:       []ingest.SourceOffsets{{Source: "web", Watermark: 4}},
		Datasets: []DatasetState{{Name: "sales", Sites: []SiteState{{
			Site:      "site-0",
			Records:   []KVState{{Key: "a|b", Val: 3}},
			CubeCells: []CellState{{Coords: []string{"a", "b"}, Sum: 3, Count: 3}},
			CubeRows:  3,
		}}}},
	}
	if err := m.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	// Tail: frame 3 resends 4 (covered by snapshot trackers) plus fresh 5,6.
	if err := j.Append(ctx, mkRecs("web", 4, 5, 6)); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(Config{Dir: dir, Fsync: false})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	var restored *State
	var applied []uint64
	sum, err := m2.Recover(ctx,
		func(st *State) error { restored = st; return nil },
		func(_ context.Context, recs []ingest.Record) error {
			for _, r := range recs {
				applied = append(applied, r.Offset)
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if restored == nil || !reflect.DeepEqual(restored, snap) {
		t.Fatalf("restored snapshot = %+v, want %+v", restored, snap)
	}
	if sum.SnapshotSeq != 2 || sum.FramesReplayed != 1 || sum.RecordsDeduped != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if want := []uint64{5, 6}; !reflect.DeepEqual(applied, want) {
		t.Fatalf("tail applied %v, want %v", applied, want)
	}
	if len(sum.Sources) != 1 || sum.Sources[0].Watermark != 6 {
		t.Fatalf("post-replay sources = %+v", sum.Sources)
	}
}

// TestManagerSnapshotPrunesWAL checks WriteSnapshot drops WAL segments
// the snapshot fully covers.
func TestManagerSnapshotPrunesWAL(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(Config{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	j := m.Journal()
	for off := uint64(1); off <= 40; off++ {
		if err := j.Append(ctx, mkRecs("web", off)); err != nil {
			t.Fatal(err)
		}
	}
	before, _, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) < 2 {
		t.Fatalf("need ≥2 segments, got %d", len(before))
	}
	snap := &State{WalSeq: m.Seq(),
		Sources: []ingest.SourceOffsets{{Source: "web", Watermark: 40}}}
	if err := m.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	after, _, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Fatalf("snapshot pruned nothing: %d -> %d segments", len(before), len(after))
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Recovery after the prune replays only what the snapshot missed.
	m2, err := Open(Config{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	sum, err := m2.Recover(ctx,
		func(*State) error { return nil },
		func(context.Context, []ingest.Record) error {
			t.Fatal("apply called though snapshot covers the whole log")
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if sum.SnapshotSeq != 40 || sum.RecordsReplayed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}
