package durable

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot files are snap-<wal seq, 16 digits>.snap: a magic line
// followed by one CRC frame whose payload is the JSON State. The CRC
// makes a half-written or bit-rotted snapshot detectable, in which case
// the loader falls back to the next-newest valid one — a snapshot is an
// optimization over full-log replay, never the only copy of anything
// the WAL still holds.
const (
	snapMagic  = "BOHRSNAP1\n"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func snapName(seq uint64) string {
	return fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix)
}

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(snapPrefix):len(name)-len(snapSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// writeSnapshotFile persists st atomically: write to a temp file, fsync
// it, rename into place, fsync the directory. A crash at any point
// leaves either the old set of snapshots or the old set plus a complete
// new one — never a visible partial file.
func writeSnapshotFile(dir string, st *State) error {
	payload, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("durable: snapshot encode: %w", err)
	}
	if len(payload) > MaxFramePayload {
		return fmt.Errorf("durable: snapshot %d bytes over frame cap %d", len(payload), MaxFramePayload)
	}
	buf := make([]byte, 0, len(snapMagic)+frameHeaderLen+len(payload))
	buf = append(buf, snapMagic...)
	buf = EncodeFrame(buf, payload)

	final := filepath.Join(dir, snapName(st.WalSeq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: snapshot create: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: snapshot rename: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// readSnapshotFile loads and validates one snapshot file.
func readSnapshotFile(path string) (*State, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !bytes.HasPrefix(data, []byte(snapMagic)) {
		return nil, fmt.Errorf("durable: snapshot %s: bad magic", filepath.Base(path))
	}
	payload, rest, err := DecodeFrame(data[len(snapMagic):])
	if err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: %w", filepath.Base(path), err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("durable: snapshot %s: %d trailing bytes", filepath.Base(path), len(rest))
	}
	st := &State{}
	if err := json.Unmarshal(payload, st); err != nil {
		return nil, fmt.Errorf("durable: snapshot %s: decode: %w", filepath.Base(path), err)
	}
	return st, nil
}

// loadLatestSnapshot returns the newest valid snapshot in dir, or nil
// if none exists. Corrupt snapshots are skipped (with their names
// reported) rather than failing recovery — the WAL can always fill in.
func loadLatestSnapshot(dir string) (st *State, skipped []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: snapshot scan: %w", err)
	}
	type cand struct {
		name string
		seq  uint64
	}
	var cands []cand
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSnapName(e.Name()); ok {
			cands = append(cands, cand{e.Name(), seq})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq > cands[j].seq })
	for _, c := range cands {
		st, err := readSnapshotFile(filepath.Join(dir, c.name))
		if err != nil {
			skipped = append(skipped, c.name)
			continue
		}
		return st, skipped, nil
	}
	return nil, skipped, nil
}

// pruneSnapshots removes snapshots older than keepSeq (the newest one
// always stays, as do any newer — there should be none).
func pruneSnapshots(dir string, keepSeq uint64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("durable: snapshot prune: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSnapName(e.Name()); ok && seq < keepSeq {
			if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
				return fmt.Errorf("durable: snapshot prune: %w", err)
			}
		}
	}
	return nil
}
