package durable

import "bohr/internal/ingest"

// State is everything a snapshot captures: the WAL position it covers,
// the per-source offset trackers, and the applied site state (raw rows
// plus cube cells) for every served dataset. It is pure data — the
// serve layer adapts it to and from live engine state, keeping this
// package free of engine dependencies.
//
// The invariant a snapshot asserts: applying WAL frames 1..WalSeq to an
// empty system yields exactly this state, so recovery may restore it
// and replay only frames > WalSeq.
type State struct {
	// WalSeq is the last WAL frame the snapshot covers.
	WalSeq uint64 `json:"wal_seq"`
	// IngestBatches is the system's applied-batch counter (it paces
	// replan cadence, so recovery restores it for determinism).
	IngestBatches int `json:"ingest_batches"`
	// Sources holds each source's offset tracker, name-sorted.
	Sources []ingest.SourceOffsets `json:"sources,omitempty"`
	// Datasets holds per-dataset site state, in serving order.
	Datasets []DatasetState `json:"datasets,omitempty"`
}

// DatasetState is one dataset's per-site applied state. HasCubes
// distinguishes "no live cube state existed" (the dataset was never
// ingested into — its cubes are derivable from the seed workload) from
// "cube state existed but some sites were empty"; only the former may
// skip cube restoration.
type DatasetState struct {
	Name     string      `json:"name"`
	HasCubes bool        `json:"has_cubes,omitempty"`
	Sites    []SiteState `json:"sites,omitempty"`
}

// SiteState is one site's slice of one dataset: the raw rows it holds
// and its cube (cells in insertion order, which the cube preserves).
type SiteState struct {
	Site      string      `json:"site"`
	Records   []KVState   `json:"records,omitempty"`
	CubeCells []CellState `json:"cube_cells,omitempty"`
	CubeRows  int         `json:"cube_rows,omitempty"`
}

// KVState is one raw row.
type KVState struct {
	Key string  `json:"k"`
	Val float64 `json:"v"`
}

// CellState is one cube cell: its coordinate tuple and aggregates.
type CellState struct {
	Coords []string `json:"c"`
	Sum    float64  `json:"s"`
	Count  int      `json:"n"`
}
