package durable

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// segPrefix/segSuffix name WAL segment files: wal-<first frame seq,
// 16 digits>.seg. Frames are numbered 1.. contiguously across segments,
// so a segment's name plus its frame count determines every seq in it.
const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

// DefaultSegmentBytes is the rotation threshold when WALConfig leaves
// SegmentBytes zero: large enough that steady ingest rarely rotates,
// small enough that snapshot pruning reclaims space promptly.
const DefaultSegmentBytes = 4 << 20

// WALConfig tunes the log.
type WALConfig struct {
	// Fsync makes Append wait for the group-commit fsync before
	// returning — the durability acknowledgement. Off, Append returns
	// after the buffered OS write (fast, loses the tail on power/OS
	// failure but not on process death).
	Fsync bool
	// SegmentBytes rotates to a new segment file once the live one
	// exceeds this size (default DefaultSegmentBytes).
	SegmentBytes int64
}

// WALScan summarizes what opening the log found on disk.
type WALScan struct {
	// Segments is how many segment files the log has after the scan.
	Segments int
	// Frames is the total number of valid frames.
	Frames int
	// LastSeq is the last valid frame's sequence number (0 = empty log).
	LastSeq uint64
	// TruncatedBytes is how many torn-tail bytes were cut from the live
	// segment (0 = clean shutdown).
	TruncatedBytes int64
	// DroppedSegments counts segments discarded because they sat after a
	// corrupt frame — unreachable without trusted sequencing. Non-zero
	// means real corruption, not just a torn tail.
	DroppedSegments int
}

// WAL is the append-only, CRC-framed, segment-rotated write-ahead log.
// Append is safe for concurrent use; concurrent appenders share fsyncs
// through leader-based group commit (the first waiter syncs for
// everyone at or below the captured position).
type WAL struct {
	dir string
	cfg WALConfig

	mu       sync.Mutex // guards the fields below
	f        *os.File   // live segment
	size     int64      // live segment's byte size
	seq      uint64     // last assigned frame seq
	firstSeq uint64     // live segment's first frame seq
	err      error      // sticky write/rotation failure
	closed   bool

	// Group-commit state. Lock ordering: w.mu may be taken while holding
	// nothing; syncMu may be taken while holding w.mu (rotation advances
	// syncedSeq); never the reverse — the sync leader releases syncMu
	// before capturing (f, seq) under w.mu.
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncedSeq uint64
	syncing   bool
	syncErr   error
}

func segName(firstSeq uint64) string {
	return fmt.Sprintf("%s%016d%s", segPrefix, firstSeq, segSuffix)
}

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	if err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

// segmentFiles lists the directory's WAL segments sorted by first seq.
func segmentFiles(dir string) ([]string, []uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var names []string
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegName(e.Name()); ok {
			names = append(names, e.Name())
			seqs = append(seqs, first)
		}
	}
	sort.Slice(names, func(i, j int) bool { return seqs[i] < seqs[j] })
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return names, seqs, nil
}

// OpenWAL opens (or creates) the log in dir, scanning every segment:
// frames are validated in order, the first torn or corrupt frame
// truncates the log there (the bytes are physically cut from the file,
// and any later segments — unreachable without trusted sequencing — are
// dropped), and appending resumes after the last valid frame.
func OpenWAL(dir string, cfg WALConfig) (*WAL, *WALScan, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("durable: wal dir: %w", err)
	}
	names, seqs, err := segmentFiles(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("durable: wal scan: %w", err)
	}
	scan := &WALScan{}
	// The log need not start at seq 1: snapshot pruning removes fully
	// covered segments, so the oldest surviving segment anchors the
	// sequencing check.
	next := uint64(1) // seq the next frame should carry
	if len(seqs) > 0 {
		next = seqs[0]
	}
	lastGood := -1 // index of the last segment kept
	for i, name := range names {
		if seqs[i] != next {
			return nil, nil, fmt.Errorf("durable: wal segment %s breaks sequencing (expected first seq %d)", name, next)
		}
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: wal read: %w", err)
		}
		good := 0 // valid prefix length in bytes
		rest := data
		for len(rest) > 0 {
			payload, after, err := DecodeFrame(rest)
			if err != nil || len(payload) == 0 {
				// A zero-length payload decodes (CRC of "" is 0), but the
				// WAL never writes one — an all-zero torn block reads as
				// exactly that, so treat it as torn too.
				break
			}
			next++
			scan.Frames++
			good = len(data) - len(after)
			rest = after
		}
		if good < len(data) {
			// Torn tail: cut it. Anything in later segments is
			// unreachable (their names would break sequencing) — drop
			// them rather than replay frames with untrusted seqs.
			scan.TruncatedBytes += int64(len(data) - good)
			if err := os.Truncate(path, int64(good)); err != nil {
				return nil, nil, fmt.Errorf("durable: wal truncate: %w", err)
			}
			for _, later := range names[i+1:] {
				scan.DroppedSegments++
				if err := os.Remove(filepath.Join(dir, later)); err != nil {
					return nil, nil, fmt.Errorf("durable: wal drop segment: %w", err)
				}
			}
			lastGood = i
			break
		}
		lastGood = i
	}
	scan.LastSeq = next - 1

	w := &WAL{dir: dir, cfg: cfg, seq: scan.LastSeq}
	w.syncCond = sync.NewCond(&w.syncMu)
	w.syncedSeq = scan.LastSeq // everything scanned is on disk already
	if lastGood >= 0 {
		path := filepath.Join(dir, names[lastGood])
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("durable: wal open segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("durable: wal stat: %w", err)
		}
		w.f, w.size, w.firstSeq = f, st.Size(), seqs[lastGood]
		scan.Segments = lastGood + 1
	} else {
		if err := w.newSegmentLocked(1); err != nil {
			return nil, nil, err
		}
		scan.Segments = 1
	}
	return w, scan, nil
}

// newSegmentLocked creates and switches to the segment whose first frame
// will be firstSeq. Caller holds w.mu (or owns w exclusively).
func (w *WAL) newSegmentLocked(firstSeq uint64) error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(firstSeq)),
		os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("durable: wal new segment: %w", err)
	}
	w.f, w.size, w.firstSeq = f, 0, firstSeq
	return nil
}

// rotateLocked seals the live segment — fsyncing it so every frame in it
// is durable before the file is abandoned, and advancing the synced
// position accordingly — then opens the next one. Caller holds w.mu.
func (w *WAL) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: wal rotate sync: %w", err)
	}
	w.syncMu.Lock()
	if w.seq > w.syncedSeq {
		w.syncedSeq = w.seq
	}
	w.syncCond.Broadcast()
	w.syncMu.Unlock()
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("durable: wal rotate close: %w", err)
	}
	return w.newSegmentLocked(w.seq + 1)
}

// Append writes one payload as the next frame and returns its sequence
// number. With Fsync on, Append returns only once the frame is on disk;
// concurrent appenders share fsyncs (group commit). Errors are sticky:
// a WAL that failed to write refuses further appends.
func (w *WAL) Append(ctx context.Context, payload []byte) (uint64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if len(payload) == 0 {
		return 0, fmt.Errorf("durable: wal append: empty payload")
	}
	if len(payload) > MaxFramePayload {
		return 0, fmt.Errorf("durable: wal append: payload %d over cap %d", len(payload), MaxFramePayload)
	}
	frame := EncodeFrame(make([]byte, 0, frameHeaderLen+len(payload)), payload)

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, fmt.Errorf("durable: wal closed")
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return 0, err
	}
	if w.size >= w.cfg.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			w.err = err
			w.mu.Unlock()
			return 0, err
		}
	}
	if _, err := w.f.Write(frame); err != nil {
		w.err = fmt.Errorf("durable: wal write: %w", err)
		err = w.err
		w.mu.Unlock()
		return 0, err
	}
	w.size += int64(len(frame))
	w.seq++
	seq := w.seq
	w.mu.Unlock()

	if !w.cfg.Fsync {
		return seq, nil
	}
	return seq, w.waitSynced(seq)
}

// waitSynced blocks until frame seq is fsynced, electing the first
// waiter as the leader that syncs for the whole group: it captures the
// live file and the latest assigned seq together under w.mu (so a
// rotation between capture points cannot mark unsynced frames synced —
// rotation itself syncs the file it abandons), fsyncs once, publishes
// the new synced position, and wakes everyone.
func (w *WAL) waitSynced(seq uint64) error {
	w.syncMu.Lock()
	for {
		if w.syncErr != nil {
			err := w.syncErr
			w.syncMu.Unlock()
			return err
		}
		if w.syncedSeq >= seq {
			w.syncMu.Unlock()
			return nil
		}
		if w.syncing {
			w.syncCond.Wait()
			continue
		}
		w.syncing = true
		w.syncMu.Unlock()

		w.mu.Lock()
		f, upto := w.f, w.seq
		w.mu.Unlock()
		err := f.Sync()

		w.syncMu.Lock()
		w.syncing = false
		if err != nil {
			w.syncErr = fmt.Errorf("durable: wal fsync: %w", err)
		} else if upto > w.syncedSeq {
			w.syncedSeq = upto
		}
		w.syncCond.Broadcast()
	}
}

// Seq returns the last assigned frame sequence number.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// SyncedSeq returns the last frame known durable (equals Seq after any
// successful Fsync-mode Append; advisory when Fsync is off).
func (w *WAL) SyncedSeq() uint64 {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	return w.syncedSeq
}

// Replay re-reads the log from disk and hands every frame with seq >
// from to fn, in order. The log must have been opened by OpenWAL (which
// truncated any torn tail), so corruption here means the files changed
// underneath us — it returns ErrTornFrame-wrapped rather than guessing.
func (w *WAL) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	names, seqs, err := segmentFiles(w.dir)
	if err != nil {
		return fmt.Errorf("durable: wal replay: %w", err)
	}
	next := uint64(0)
	for i, name := range names {
		if next == 0 {
			next = seqs[i]
		} else if seqs[i] != next {
			return fmt.Errorf("durable: wal replay: segment %s breaks sequencing (expected %d)", name, next)
		}
		data, err := os.ReadFile(filepath.Join(w.dir, name))
		if err != nil {
			return fmt.Errorf("durable: wal replay: %w", err)
		}
		rest := data
		for len(rest) > 0 {
			payload, after, err := DecodeFrame(rest)
			if err != nil || len(payload) == 0 {
				return fmt.Errorf("durable: wal replay: segment %s seq %d: %w", name, next, ErrTornFrame)
			}
			if next > from {
				if err := fn(next, payload); err != nil {
					return err
				}
			}
			next++
			rest = after
		}
	}
	return nil
}

// Prune removes segments every frame of which is at or below upTo —
// they are fully covered by a snapshot and will never be replayed. The
// live segment always survives.
func (w *WAL) Prune(upTo uint64) error {
	w.mu.Lock()
	live := w.firstSeq
	w.mu.Unlock()
	names, seqs, err := segmentFiles(w.dir)
	if err != nil {
		return fmt.Errorf("durable: wal prune: %w", err)
	}
	for i, name := range names {
		if seqs[i] >= live {
			break // the live segment and anything after it stay
		}
		// Segment i's last frame is seqs[i+1]-1 (segments are contiguous
		// and a non-live segment always has a successor).
		if i+1 < len(seqs) && seqs[i+1]-1 <= upTo {
			if err := os.Remove(filepath.Join(w.dir, name)); err != nil {
				return fmt.Errorf("durable: wal prune: %w", err)
			}
		}
	}
	return nil
}

// Close fsyncs (in Fsync mode) and closes the live segment. Further
// appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.cfg.Fsync {
		if err := w.f.Sync(); err != nil {
			w.f.Close()
			return fmt.Errorf("durable: wal close sync: %w", err)
		}
		w.syncMu.Lock()
		if w.seq > w.syncedSeq {
			w.syncedSeq = w.seq
		}
		w.syncCond.Broadcast()
		w.syncMu.Unlock()
	}
	return w.f.Close()
}
