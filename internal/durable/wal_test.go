package durable

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// collectReplay drains a full replay into parallel slices.
func collectReplay(t *testing.T, w *WAL, from uint64) ([]uint64, [][]byte) {
	t.Helper()
	var seqs []uint64
	var payloads [][]byte
	err := w.Replay(from, func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, payloads
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, scan, err := OpenWAL(dir, WALConfig{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if scan.Frames != 0 || scan.LastSeq != 0 {
		t.Fatalf("fresh dir scan = %+v", scan)
	}
	ctx := context.Background()
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("payload-%03d", i))
		want = append(want, p)
		seq, err := w.Append(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	if w.SyncedSeq() != 20 {
		t.Fatalf("synced = %d after fsync appends", w.SyncedSeq())
	}
	seqs, payloads := collectReplay(t, w, 0)
	if len(seqs) != 20 || seqs[0] != 1 || seqs[19] != 20 {
		t.Fatalf("replay seqs = %v", seqs)
	}
	for i := range want {
		if string(payloads[i]) != string(want[i]) {
			t.Fatalf("payload %d = %q, want %q", i, payloads[i], want[i])
		}
	}
	// Replay from a mid position skips the covered prefix.
	seqs, _ = collectReplay(t, w, 15)
	if len(seqs) != 5 || seqs[0] != 16 {
		t.Fatalf("tail replay seqs = %v", seqs)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: scan sees everything, appending continues the numbering.
	w2, scan2, err := OpenWAL(dir, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if scan2.Frames != 20 || scan2.LastSeq != 20 || scan2.TruncatedBytes != 0 {
		t.Fatalf("reopen scan = %+v", scan2)
	}
	seq, err := w2.Append(ctx, []byte("after-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 21 {
		t.Fatalf("seq after reopen = %d, want 21", seq)
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	// ~40-byte frames against a 128-byte threshold force rotations.
	w, _, err := OpenWAL(dir, WALConfig{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		if _, err := w.Append(ctx, []byte(fmt.Sprintf("rotating-payload-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, seqs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("expected ≥3 segments, got %v", names)
	}
	if seqs[0] != 1 {
		t.Fatalf("first segment starts at %d", seqs[0])
	}
	w2, scan, err := OpenWAL(dir, WALConfig{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if scan.Frames != 30 || scan.LastSeq != 30 || scan.Segments != len(names) {
		t.Fatalf("scan = %+v over %d segments", scan, len(names))
	}
	replayed, _ := collectReplay(t, w2, 0)
	if len(replayed) != 30 {
		t.Fatalf("replayed %d frames, want 30", len(replayed))
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	flipped := EncodeFrame(nil, []byte("xyz"))
	flipped[len(flipped)-1] ^= 0xff // checksum no longer matches
	for name, garbage := range map[string][]byte{
		"partial-header":    {0x07},
		"huge-length":       {0xff, 0xff, 0xff, 0xff, 0x01, 0x02, 0x03, 0x04},
		"truncated-payload": EncodeFrame(nil, []byte("xy"))[:9],
		"bad-checksum":      flipped,
		"zero-block":        make([]byte, 64), // decodes as empty frames
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			w, _, err := OpenWAL(dir, WALConfig{})
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			for i := 0; i < 5; i++ {
				if _, err := w.Append(ctx, []byte(fmt.Sprintf("good-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			names, _, err := segmentFiles(dir)
			if err != nil {
				t.Fatal(err)
			}
			last := filepath.Join(dir, names[len(names)-1])
			f, err := os.OpenFile(last, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(garbage); err != nil {
				t.Fatal(err)
			}
			f.Close()

			w2, scan, err := OpenWAL(dir, WALConfig{})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			if scan.Frames != 5 || scan.LastSeq != 5 {
				t.Fatalf("scan = %+v, want 5 intact frames", scan)
			}
			if scan.TruncatedBytes != int64(len(garbage)) {
				t.Fatalf("truncated %d bytes, want %d", scan.TruncatedBytes, len(garbage))
			}
			// The torn bytes are physically gone and appends continue clean.
			if seq, err := w2.Append(context.Background(), []byte("resumed")); err != nil || seq != 6 {
				t.Fatalf("append after truncate: seq %d, err %v", seq, err)
			}
			seqs, _ := collectReplay(t, w2, 0)
			if len(seqs) != 6 {
				t.Fatalf("replay after truncate saw %d frames", len(seqs))
			}
		})
	}
}

func TestWALCorruptionMidLogDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALConfig{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		if _, err := w.Append(ctx, []byte(fmt.Sprintf("rotating-payload-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	names, _, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(names))
	}
	// Flip a byte in the FIRST segment's first frame payload.
	first := filepath.Join(dir, names[0])
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderLen] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, scan, err := OpenWAL(dir, WALConfig{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if scan.Frames != 0 || scan.LastSeq != 0 {
		t.Fatalf("scan = %+v, want empty log after first-frame corruption", scan)
	}
	if scan.DroppedSegments != len(names)-1 {
		t.Fatalf("dropped %d segments, want %d", scan.DroppedSegments, len(names)-1)
	}
	if scan.TruncatedBytes == 0 {
		t.Fatal("no truncation reported")
	}
	// Log is usable again from seq 1.
	if seq, err := w2.Append(ctx, []byte("fresh")); err != nil || seq != 1 {
		t.Fatalf("append after corruption: seq %d, err %v", seq, err)
	}
}

func TestWALGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALConfig{Fsync: true, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := w.Append(ctx, []byte(fmt.Sprintf("writer-%d-%d", g, i))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if w.Seq() != writers*perWriter {
		t.Fatalf("seq = %d, want %d", w.Seq(), writers*perWriter)
	}
	if w.SyncedSeq() != w.Seq() {
		t.Fatalf("synced = %d, seq = %d: fsync-mode append returned before durability", w.SyncedSeq(), w.Seq())
	}
	seqs, _ := collectReplay(t, w, 0)
	if len(seqs) != writers*perWriter {
		t.Fatalf("replayed %d frames, want %d", len(seqs), writers*perWriter)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALPrune(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(dir, WALConfig{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		if _, err := w.Append(ctx, []byte(fmt.Sprintf("rotating-payload-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	before, seqs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(before))
	}
	// Prune to the midpoint: segments wholly ≤ cut go, the rest stay.
	cut := seqs[len(seqs)/2] - 1
	if err := w.Prune(cut); err != nil {
		t.Fatal(err)
	}
	after, afterSeqs, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) >= len(before) {
		t.Fatalf("prune removed nothing: %d -> %d segments", len(before), len(after))
	}
	if afterSeqs[0] != cut+1 {
		t.Fatalf("first surviving segment starts at %d, want %d", afterSeqs[0], cut+1)
	}
	// Everything past the cut still replays.
	var got []uint64
	if err := w.Replay(cut, func(seq uint64, _ []byte) error {
		got = append(got, seq)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 30-int(cut) || got[0] != cut+1 || got[len(got)-1] != 30 {
		t.Fatalf("post-prune replay seqs = %v", got)
	}
	// Pruning at the live head never deletes the live segment.
	if err := w.Prune(99); err != nil {
		t.Fatal(err)
	}
	names, _, err := segmentFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) == 0 {
		t.Fatal("prune deleted the live segment")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
