package engine

import (
	"fmt"
	"sort"

	"bohr/internal/wan"
)

// Executors describes the compute at one site: machines × executors per
// machine, the granularity §6's RDD similarity operates at.
type Executors struct {
	Machines   int
	PerMachine int
}

// Total returns the number of executors at the site.
func (e Executors) Total() int { return e.Machines * e.PerMachine }

// SiteData holds the records of every dataset stored at one site.
type SiteData struct {
	Datasets map[string][]KV
}

// NewSiteData creates an empty site store.
func NewSiteData() *SiteData {
	return &SiteData{Datasets: make(map[string][]KV)}
}

// Add appends records to a dataset at this site.
func (s *SiteData) Add(dataset string, records ...KV) {
	s.Datasets[dataset] = append(s.Datasets[dataset], records...)
}

// Records returns the records of one dataset (nil if absent).
func (s *SiteData) Records(dataset string) []KV { return s.Datasets[dataset] }

// Cluster is the geo-distributed deployment: the WAN topology, per-site
// executors, per-site data, and the record-size constant that converts
// record counts to MB.
type Cluster struct {
	Top *wan.Topology
	// Exec[i] is the compute at site i.
	Exec []Executors
	// Data[i] is the data stored at site i.
	Data []*SiteData
	// BytesPerRecord converts record counts to wire bytes.
	BytesPerRecord float64
}

// NewCluster builds a cluster over a topology with uniform executors.
func NewCluster(top *wan.Topology, machines, executorsPerMachine int, bytesPerRecord float64) (*Cluster, error) {
	if top == nil || top.N() == 0 {
		return nil, fmt.Errorf("engine: cluster needs a non-empty topology")
	}
	if machines <= 0 || executorsPerMachine <= 0 {
		return nil, fmt.Errorf("engine: cluster needs positive executors, got %d×%d", machines, executorsPerMachine)
	}
	if bytesPerRecord <= 0 {
		return nil, fmt.Errorf("engine: bytes per record must be positive, got %v", bytesPerRecord)
	}
	c := &Cluster{
		Top:            top,
		Exec:           make([]Executors, top.N()),
		Data:           make([]*SiteData, top.N()),
		BytesPerRecord: bytesPerRecord,
	}
	for i := range c.Exec {
		c.Exec[i] = Executors{Machines: machines, PerMachine: executorsPerMachine}
		c.Data[i] = NewSiteData()
	}
	return c, nil
}

// N returns the number of sites.
func (c *Cluster) N() int { return c.Top.N() }

// MB converts a record count to megabytes under the cluster's record size.
func (c *Cluster) MB(records int) float64 {
	return float64(records) * c.BytesPerRecord / 1e6
}

// RecordsFor converts a megabyte amount to a record count (rounded down).
func (c *Cluster) RecordsFor(mb float64) int {
	if mb <= 0 {
		return 0
	}
	return int(mb * 1e6 / c.BytesPerRecord)
}

// InputMB returns the per-site input size of a dataset in MB.
func (c *Cluster) InputMB(dataset string) []float64 {
	out := make([]float64, c.N())
	for i, sd := range c.Data {
		out[i] = c.MB(len(sd.Records(dataset)))
	}
	return out
}

// DatasetNames returns the union of dataset names across sites, sorted.
func (c *Cluster) DatasetNames() []string {
	seen := map[string]bool{}
	for _, sd := range c.Data {
		for name := range sd.Datasets {
			seen[name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the cluster's data (topology and executors are shared,
// records are copied) so a scheme can mutate placement without affecting
// other schemes run on the same inputs.
func (c *Cluster) Clone() *Cluster {
	out := &Cluster{
		Top:            c.Top,
		Exec:           append([]Executors(nil), c.Exec...),
		Data:           make([]*SiteData, len(c.Data)),
		BytesPerRecord: c.BytesPerRecord,
	}
	for i, sd := range c.Data {
		nd := NewSiteData()
		for name, recs := range sd.Datasets {
			nd.Datasets[name] = append([]KV(nil), recs...)
		}
		out.Data[i] = nd
	}
	return out
}
