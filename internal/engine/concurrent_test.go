package engine

import (
	"context"
	"fmt"
	"math"
	"testing"
)

func TestCombinePartialsSumsCounts(t *testing.T) {
	// Two partial counts (3 and 2) must merge to 5, not be re-counted as 2.
	partials := []KV{{"k", 3}, {"k", 2}}
	out := CombinePartials(partials, OpCount)
	if len(out) != 1 || out[0].Val != 5 {
		t.Fatalf("partial counts = %+v, want k=5", out)
	}
	// Non-count ops behave exactly like Combine.
	if got := CombinePartials([]KV{{"k", 3}, {"k", 9}}, OpMax); got[0].Val != 9 {
		t.Fatalf("partial max = %v", got[0].Val)
	}
}

func TestTwoStageCountCorrectness(t *testing.T) {
	// End to end: counting records spread across sites and executors must
	// equal the raw record count per key.
	c := testCluster(t)
	for site := 0; site < 3; site++ {
		for i := 0; i < 40+site*10; i++ {
			c.Data[site].Add("jobs", KV{Key: fmt.Sprintf("class-%d", i%3), Val: 999})
		}
	}
	q := Query{
		Name: "count", Dataset: "jobs", Combine: OpCount,
		MapCost: DefaultMapCost, ReduceCost: DefaultReduceCost,
	}
	res, err := c.Run(context.Background(), JobConfig{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, kv := range res.Output {
		total += kv.Val
	}
	want := float64(40 + 50 + 60)
	if total != want {
		t.Fatalf("counted %v records, want %v", total, want)
	}
}

func TestRunConcurrentSharesShuffle(t *testing.T) {
	c := testCluster(t)
	for i := 0; i < 2000; i++ {
		c.Data[0].Add("a", KV{Key: fmt.Sprintf("a%d", i), Val: 1})
		c.Data[0].Add("b", KV{Key: fmt.Sprintf("b%d", i), Val: 1})
	}
	solo, err := c.Run(context.Background(), JobConfig{Query: ScanQuery("qa", "a")})
	if err != nil {
		t.Fatal(err)
	}
	both, err := c.RunConcurrent(context.Background(), []JobConfig{
		{Query: ScanQuery("qa", "a")},
		{Query: ScanQuery("qb", "b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent jobs share links: each job's shuffle time must be at
	// least its solo time, and both jobs see the same (shared) stage time.
	if both[0].Rounds[0].ShuffleTime < solo.Rounds[0].ShuffleTime-1e-9 {
		t.Fatalf("shared shuffle %v below solo %v", both[0].Rounds[0].ShuffleTime, solo.Rounds[0].ShuffleTime)
	}
	if math.Abs(both[0].Rounds[0].ShuffleTime-both[1].Rounds[0].ShuffleTime) > 1e-9 {
		t.Fatalf("concurrent jobs must share one shuffle stage: %v vs %v",
			both[0].Rounds[0].ShuffleTime, both[1].Rounds[0].ShuffleTime)
	}
	// Outputs stay per-job.
	if len(both[0].Output) == 0 || len(both[1].Output) == 0 {
		t.Fatal("missing outputs")
	}
	if both[0].Output[0].Key[0] != 'a' || both[1].Output[0].Key[0] != 'b' {
		t.Fatal("job outputs mixed up")
	}
}

func TestRunConcurrentMixedRounds(t *testing.T) {
	c := testCluster(t)
	c.Data[0].Add("a", KV{"x", 1}, KV{"y", 1})
	c.Data[1].Add("b", KV{"p", 1})
	res, err := c.RunConcurrent(context.Background(), []JobConfig{
		{Query: ScanQuery("scan", "a")}, // 1 round
		{Query: UDFQuery("pr", "b", 3)}, // 3 rounds
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0].Rounds) != 1 {
		t.Fatalf("scan rounds = %d", len(res[0].Rounds))
	}
	if len(res[1].Rounds) != 3 {
		t.Fatalf("udf rounds = %d", len(res[1].Rounds))
	}
}

func TestRunConcurrentValidatesEachJob(t *testing.T) {
	c := testCluster(t)
	c.Data[0].Add("a", KV{"x", 1})
	_, err := c.RunConcurrent(context.Background(), []JobConfig{
		{Query: ScanQuery("ok", "a")},
		{Query: Query{}}, // invalid
	})
	if err == nil {
		t.Fatal("invalid job should fail the batch")
	}
}

func TestCubeInputReducesMapTime(t *testing.T) {
	c := testCluster(t)
	// Heavily duplicated data: distinct cells ≪ records.
	for i := 0; i < 4000; i++ {
		c.Data[0].Add("d", KV{Key: fmt.Sprintf("k%d", i%50), Val: 1})
	}
	raw, err := c.Run(context.Background(), JobConfig{Query: ScanQuery("s", "d")})
	if err != nil {
		t.Fatal(err)
	}
	cube, err := c.Run(context.Background(), JobConfig{Query: ScanQuery("s", "d"), CubeInput: true})
	if err != nil {
		t.Fatal(err)
	}
	if cube.Rounds[0].MapTime >= raw.Rounds[0].MapTime/2 {
		t.Fatalf("cube map %v should be well below raw %v on duplicate-heavy data",
			cube.Rounds[0].MapTime, raw.Rounds[0].MapTime)
	}
	// Data semantics unchanged: identical outputs.
	if len(raw.Output) != len(cube.Output) {
		t.Fatal("cube input changed query results")
	}
	for i := range raw.Output {
		if raw.Output[i] != cube.Output[i] {
			t.Fatal("cube input changed query results")
		}
	}
}

func TestCubeInputNeutralOnDistinctData(t *testing.T) {
	c := testCluster(t)
	for i := 0; i < 500; i++ {
		c.Data[0].Add("d", KV{Key: fmt.Sprintf("k%d", i), Val: 1})
	}
	raw, _ := c.Run(context.Background(), JobConfig{Query: ScanQuery("s", "d")})
	cube, _ := c.Run(context.Background(), JobConfig{Query: ScanQuery("s", "d"), CubeInput: true})
	if math.Abs(raw.Rounds[0].MapTime-cube.Rounds[0].MapTime) > 1e-12 {
		t.Fatalf("all-distinct data should cost the same: %v vs %v",
			raw.Rounds[0].MapTime, cube.Rounds[0].MapTime)
	}
}

func TestProfileIntermediateMatchesRun(t *testing.T) {
	c := testCluster(t)
	for i := 0; i < 1000; i++ {
		c.Data[0].Add("d", KV{Key: fmt.Sprintf("k%d", i%100), Val: 1})
	}
	q := ScanQuery("s", "d")
	profiled, err := c.ProfileIntermediate(c.Data[0].Records("d"), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(context.Background(), JobConfig{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.MB(profiled); math.Abs(got-res.IntermediateMBPerSite[0]) > 1e-9 {
		t.Fatalf("profiled %v MB != realized %v MB", got, res.IntermediateMBPerSite[0])
	}
}

func TestMapCostScaleStillWorks(t *testing.T) {
	c := testCluster(t)
	for i := 0; i < 1000; i++ {
		c.Data[0].Add("d", KV{Key: fmt.Sprintf("k%d", i), Val: 1})
	}
	base, _ := c.Run(context.Background(), JobConfig{Query: ScanQuery("s", "d")})
	scaled, _ := c.Run(context.Background(), JobConfig{Query: ScanQuery("s", "d"), MapCostScale: 0.5})
	if math.Abs(scaled.Rounds[0].MapTime-base.Rounds[0].MapTime/2) > 1e-12 {
		t.Fatalf("map scale 0.5: %v vs base %v", scaled.Rounds[0].MapTime, base.Rounds[0].MapTime)
	}
}
