package engine

import (
	"context"
	"testing"

	"bohr/internal/faults"
)

func TestRunWithFaultsSlowsAndStaysDeterministic(t *testing.T) {
	mk := func() *Cluster {
		c := testCluster(t)
		loadSkewed(c, "logs", 5)
		return c
	}
	clean, err := mk().Run(context.Background(), JobConfig{Query: ScanQuery("q", "logs")})
	if err != nil {
		t.Fatal(err)
	}
	// A straggler on the fast site plus a heavy degrade on the slow
	// site's links, covering the whole execution window.
	sched := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.KindStraggler, Site: 2, Start: 0, End: 1e4, Factor: 4},
		{Kind: faults.KindLinkDegrade, Site: 0, Start: 0, End: 1e4, Factor: 0.2},
	}}
	run := func() *RunResult {
		res, err := mk().Run(context.Background(), JobConfig{Query: ScanQuery("q", "logs"), Faults: sched})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	faulty := run()
	if faulty.QCT <= clean.QCT {
		t.Fatalf("faulty QCT %v not slower than clean %v", faulty.QCT, clean.QCT)
	}
	if faulty.Output == nil || len(faulty.Output) != len(clean.Output) {
		t.Fatalf("faults changed query OUTPUT: %d vs %d records", len(faulty.Output), len(clean.Output))
	}
	if again := run(); again.QCT != faulty.QCT {
		t.Fatalf("same schedule produced different QCT: %v vs %v", again.QCT, faulty.QCT)
	}
	// A schedule whose windows all precede FaultClock leaves the run at
	// the clean QCT: events are applied in modeled time, not blindly.
	past := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.KindLinkBlackout, Site: 0, Start: 0, End: 30},
	}}
	res, err := mk().Run(context.Background(), JobConfig{Query: ScanQuery("q", "logs"), Faults: past, FaultClock: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.QCT != clean.QCT {
		t.Fatalf("expired schedule changed QCT: %v vs clean %v", res.QCT, clean.QCT)
	}
}

func TestRunConcurrentBlackoutStallsSharedShuffle(t *testing.T) {
	c := testCluster(t)
	loadSkewed(c, "logs", 5)
	clean, err := c.Clone().Run(context.Background(), JobConfig{Query: ScanQuery("q", "logs")})
	if err != nil {
		t.Fatal(err)
	}
	// Site 0's links black out for 50 s starting right when the query
	// does: every cross-site flow touching site 0 stalls until t=50, so
	// QCT grows by at least the part of the blackout the shuffle sits
	// through.
	sched := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.KindLinkBlackout, Site: 0, Start: 0, End: 50},
	}}
	faulty, err := c.Clone().Run(context.Background(), JobConfig{Query: ScanQuery("q", "logs"), Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	if faulty.QCT <= clean.QCT+10 {
		t.Fatalf("blackout barely moved QCT: clean %v, faulty %v", clean.QCT, faulty.QCT)
	}
}
