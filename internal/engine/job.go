package engine

import (
	"context"
	"fmt"
	"math"

	"bohr/internal/faults"
	"bohr/internal/obs"
	"bohr/internal/parallel"
	"bohr/internal/wan"
)

// JobConfig configures one query execution on a cluster.
type JobConfig struct {
	Query Query
	// Obs optionally collects per-query phase spans (map, assign, shuffle,
	// reduce) and shuffle metrics. The query span attaches under the
	// collector's current span. Nil disables collection at no cost.
	Obs *obs.Collector
	// TaskFrac is r_i, the fraction of reduce tasks at each site; it must
	// sum to ~1. nil assigns fractions proportional to uplink bandwidth.
	TaskFrac []float64
	// Assigner places partitions on executors per machine; nil uses
	// round-robin (the Spark default Bohr's RDD similarity replaces).
	Assigner Assigner
	// PartitionsPerExecutor controls partition granularity (default 4).
	PartitionsPerExecutor int
	// ExtraQCT is added to the final QCT: the paper includes LP solving
	// and RDD-similarity checking time in measured QCT (§8.5).
	ExtraQCT float64
	// MapCostScale scales the query's per-record map cost (generic knob;
	// zero means 1).
	MapCostScale float64
	// CubeInput models OLAP-cube storage: the cube holds pre-aggregated
	// cells, so scanning costs one map operation per *distinct* key
	// rather than per raw record (the Iridium-C vs Iridium gain of §8.2).
	// Data volume semantics are unchanged — only scan cost drops, and it
	// drops more for duplicate-heavy (similar) data.
	CubeInput bool
	// Faults is an optional fault schedule applied in modeled time:
	// straggler windows scale per-site map and reduce times, and
	// degraded/blacked-out links slow the shared shuffle via the fluid
	// fault model. Concurrent jobs share the schedule of the first config
	// that sets one (they share the WAN, so they must share its faults).
	Faults *faults.Schedule
	// FaultClock is the modeled time at which this execution starts on
	// the schedule's timeline (queries launched after the lag window
	// start at t = Lag).
	FaultClock float64
}

// RoundMetrics reports one map-shuffle-reduce round.
type RoundMetrics struct {
	MapTime        float64
	AssignOverhead float64
	ShuffleTime    float64
	ReduceTime     float64
	// IntermediateMB[i] is the post-combiner shuffle volume produced at
	// site i this round.
	IntermediateMB []float64
	// ShuffleMB is the volume that actually crossed the WAN this round.
	ShuffleMB float64
}

// RunResult is the outcome of executing a query.
type RunResult struct {
	// QCT is the query completion time in modeled seconds.
	QCT    float64
	Rounds []RoundMetrics
	// IntermediateMBPerSite sums per-site post-combiner volumes over all
	// rounds — the quantity Figures 8/9/11 compare.
	IntermediateMBPerSite []float64
	// TotalShuffleMB sums cross-WAN shuffle volume over all rounds.
	TotalShuffleMB float64
	// Output is the final reduce output across all sites, merged and
	// sorted by key.
	Output []KV
}

// Run executes the query on the cluster and returns timing and volume
// metrics. The cluster's data is not modified; rounds after the first
// operate on reduce outputs held per site.
//
// The context is honored at chunk boundaries — between stages and between
// per-site map fan-out items, never inside a kernel — so a run that is not
// cancelled produces byte-identical results regardless of when (or
// whether) a deadline was attached.
func (c *Cluster) Run(ctx context.Context, cfg JobConfig) (*RunResult, error) {
	res, err := c.RunConcurrent(ctx, []JobConfig{cfg})
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// RunConcurrent executes several queries together, the way recurring
// queries over many datasets actually arrive: each query's map, combine
// and reduce run in its own right, but every round's shuffle shares the
// WAN — the stage ends when the slowest site drains the union of all
// jobs' flows. This is exactly the link sharing objective (2) of §5
// optimizes for, and it is where joint placement pays off. Iterative
// queries keep shuffling in later rounds after shorter jobs finish.
//
// Cancellation is checked at chunk boundaries (round starts, stage
// transitions, per-site fan-out items): in-flight kernels finish their
// current chunk, then the whole batch returns ctx.Err() without touching
// further state.
func (c *Cluster) RunConcurrent(ctx context.Context, cfgs []JobConfig) ([]*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("engine: run: %w", err)
	}
	n := c.N()
	type jobState struct {
		cfg      JobConfig
		q        Query
		taskFrac []float64
		assigner Assigner
		ppe      int
		cube     bool
		input    [][]KV
		res      *RunResult
		// sp is the query's trace span; stage children accumulate via
		// Child().Add() because concurrent jobs interleave rounds.
		sp *obs.Span
	}
	jobs := make([]*jobState, len(cfgs))
	maxRounds := 0
	for ji, cfg := range cfgs {
		if err := cfg.Query.Validate(); err != nil {
			return nil, err
		}
		q := cfg.Query
		if cfg.MapCostScale > 0 {
			q.MapCost *= cfg.MapCostScale
		}
		taskFrac := cfg.TaskFrac
		if taskFrac == nil {
			taskFrac = UplinkProportional(c.Top)
		}
		if len(taskFrac) != n {
			return nil, fmt.Errorf("engine: job %d task fractions sized %d, want %d", ji, len(taskFrac), n)
		}
		var fracSum float64
		for i, f := range taskFrac {
			if f < -1e-9 {
				return nil, fmt.Errorf("engine: job %d negative task fraction %v at site %d", ji, f, i)
			}
			fracSum += f
		}
		if math.Abs(fracSum-1) > 1e-3 {
			return nil, fmt.Errorf("engine: job %d task fractions sum to %v, want 1", ji, fracSum)
		}
		assigner := cfg.Assigner
		if assigner == nil {
			assigner = RoundRobinAssigner{}
		}
		ppe := cfg.PartitionsPerExecutor
		if ppe <= 0 {
			ppe = 4
		}
		input := make([][]KV, n)
		for i, sd := range c.Data {
			input[i] = sd.Records(q.Dataset)
		}
		jobs[ji] = &jobState{
			cfg: cfg, q: q, taskFrac: taskFrac, assigner: assigner, ppe: ppe,
			cube:  cfg.CubeInput,
			input: input,
			res:   &RunResult{IntermediateMBPerSite: make([]float64, n)},
			sp:    cfg.Obs.Current().Child(fmt.Sprintf("q%02d:%s", ji, q.Name)),
		}
		if r := q.rounds(); r > maxRounds {
			maxRounds = r
		}
	}

	// Concurrent jobs share the WAN, so they share one fault schedule
	// and one modeled clock: the first config that sets a schedule
	// governs the batch. The clock advances stage by stage so fault
	// windows hit the stages that are actually running when they fire.
	var fs *faults.Schedule
	var clock float64
	for _, cfg := range cfgs {
		if cfg.Faults != nil {
			fs = cfg.Faults
			clock = cfg.FaultClock
			break
		}
	}

	for round := 0; round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("engine: run round %d: %w", round, err)
		}
		var flows []wan.Transfer
		type roundState struct {
			rm       RoundMetrics
			arriving [][]KV
			// mapSite / reduceSite hold per-site stage times for the
			// trace's per-site child spans (critical-path attribution).
			mapSite    []float64
			reduceSite []float64
		}
		states := make([]*roundState, len(jobs))

		// Map + combine per job, and collect every job's shuffle flows.
		for ji, job := range jobs {
			if round >= job.q.rounds() {
				continue
			}
			st := &roundState{
				rm:         RoundMetrics{IntermediateMB: make([]float64, n)},
				arriving:   make([][]KV, n),
				mapSite:    make([]float64, n),
				reduceSite: make([]float64, n),
			}
			states[ji] = st
			jobFlowStart := len(flows)
			// Per-site map+combine stages are independent (they read the
			// site's own input and the shared read-only query/assigner), so
			// they fan out over the worker pool; everything that touches
			// shared state — metric observation, shuffle routing, flow
			// accumulation — folds the pooled results sequentially in site
			// order below, preserving the sequential path byte for byte.
			type siteMapOut struct {
				inter         []KV
				raw           int
				mapT, assignT float64
			}
			outs, err := parallel.MapOrdered(0, n, func(i int) (siteMapOut, error) {
				// One site's map+combine is the cancellation chunk: a
				// cancelled batch stops launching new sites but never
				// truncates a site already mapping.
				if cerr := ctx.Err(); cerr != nil {
					return siteMapOut{}, fmt.Errorf("engine: job %d site %d round %d: %w", ji, i, round, cerr)
				}
				inter, raw, mapT, assignT, merr := c.mapAndCombineOpts(job.input[i], job.q, i, job.assigner, job.ppe, job.cube)
				if merr != nil {
					return siteMapOut{}, fmt.Errorf("engine: job %d site %d round %d: %w", ji, i, round, merr)
				}
				return siteMapOut{inter: inter, raw: raw, mapT: mapT, assignT: assignT}, nil
			})
			if err != nil {
				return nil, err
			}
			for i := 0; i < n; i++ {
				inter, raw, mapT, assignT := outs[i].inter, outs[i].raw, outs[i].mapT, outs[i].assignT
				if raw > 0 && job.cfg.Obs != nil {
					job.cfg.Obs.Observe("combine.reduction.ratio", 1-float64(len(inter))/float64(raw))
				}
				mapT *= fs.ComputeFactor(i, clock)
				st.mapSite[i] = mapT
				if mapT > st.rm.MapTime {
					st.rm.MapTime = mapT
				}
				if assignT > st.rm.AssignOverhead {
					st.rm.AssignOverhead = assignT
				}
				st.rm.IntermediateMB[i] = c.MB(len(inter))
				job.res.IntermediateMBPerSite[i] += st.rm.IntermediateMB[i]

				crossMB := make([]float64, n)
				for _, rec := range inter {
					owner := KeyOwner(rec.Key, job.taskFrac)
					st.arriving[owner] = append(st.arriving[owner], rec)
					if owner != i {
						crossMB[owner] += c.BytesPerRecord / 1e6
					}
				}
				for j := 0; j < n; j++ {
					if crossMB[j] > 0 {
						flows = append(flows, wan.Transfer{Src: wan.SiteID(i), Dst: wan.SiteID(j), MB: crossMB[j]})
						st.rm.ShuffleMB += crossMB[j]
					}
				}
			}
			wan.RecordFlows(job.cfg.Obs, c.Top, "shuffle", flows[jobFlowStart:])
			job.cfg.Obs.Count("engine.shuffle.mb", st.rm.ShuffleMB)
		}

		// The shuffle starts when the slowest job's map+assign finishes.
		mapEnd := clock
		for _, st := range states {
			if st == nil {
				continue
			}
			if end := clock + st.rm.MapTime + st.rm.AssignOverhead; end > mapEnd {
				mapEnd = end
			}
		}

		// One shared shuffle: with many parallel flows the access links
		// saturate, so the stage time is the paper's per-link aggregate
		// model (Eqs. 3-4) over the union of all jobs' flows — drained
		// through fault-scaled link capacities when a schedule is set.
		var shuffleTime float64
		if fs == nil {
			shuffleTime = c.Top.Estimate(flows)
		} else {
			shuffleTime = c.Top.EstimateFaults(flows, fs, mapEnd)
		}
		reduceStart := mapEnd + shuffleTime

		// Stage boundary: a cancellation arriving during the modeled
		// shuffle stops the batch before any reducer runs.
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("engine: run round %d reduce: %w", round, err)
		}

		// Reduce per job.
		var maxReduce float64
		for ji, job := range jobs {
			st := states[ji]
			if st == nil {
				continue
			}
			st.rm.ShuffleTime = shuffleTime
			job.res.TotalShuffleMB += st.rm.ShuffleMB
			output := make([][]KV, n)
			for j := 0; j < n; j++ {
				output[j] = CombinePartials(st.arriving[j], job.q.Combine)
				execs := c.Exec[j].Total()
				t := float64(len(st.arriving[j])) * job.q.ReduceCost / float64(execs)
				t *= fs.ComputeFactor(j, reduceStart)
				st.reduceSite[j] = t
				if t > st.rm.ReduceTime {
					st.rm.ReduceTime = t
				}
			}
			if st.rm.ReduceTime > maxReduce {
				maxReduce = st.rm.ReduceTime
			}
			job.res.Rounds = append(job.res.Rounds, st.rm)
			job.res.QCT += st.rm.MapTime + st.rm.AssignOverhead + st.rm.ShuffleTime + st.rm.ReduceTime
			ms := job.sp.Child("map")
			ms.Add(st.rm.MapTime)
			for i, mt := range st.mapSite {
				if mt > 0 {
					ms.Child(c.Top.Sites[i].Name).Add(mt)
				}
			}
			job.sp.Child("assign").Add(st.rm.AssignOverhead)
			job.sp.Child("shuffle").Add(st.rm.ShuffleTime)
			rs := job.sp.Child("reduce")
			rs.Add(st.rm.ReduceTime)
			for j, rt := range st.reduceSite {
				if rt > 0 {
					rs.Child(c.Top.Sites[j].Name).Add(rt)
				}
			}
			job.input = output
		}
		clock = reduceStart + maxReduce
	}

	out := make([]*RunResult, len(jobs))
	for ji, job := range jobs {
		job.res.QCT += job.cfg.ExtraQCT
		job.sp.Add(job.res.QCT)
		var all []KV
		for _, recs := range job.input {
			all = append(all, recs...)
		}
		job.res.Output = CombinePartials(all, job.q.Combine)
		out[ji] = job.res
	}
	return out, nil
}

// mapAndCombine runs the map stage of one site: partition the input,
// assign partitions to executors machine by machine, map and combine per
// executor, and concatenate executor outputs (records are NOT combined
// across executors — exactly the inefficiency §6's RDD similarity
// clustering reduces).
func (c *Cluster) mapAndCombine(records []KV, q Query, site int, assigner Assigner, ppe int) (inter []KV, mapTime, assignOverhead float64, err error) {
	inter, _, mapTime, assignOverhead, err = c.mapAndCombineOpts(records, q, site, assigner, ppe, false)
	return inter, mapTime, assignOverhead, err
}

// mapAndCombineOpts is mapAndCombine with cube-input cost accounting (when
// cubeInput is set, an executor's map cost is charged per distinct key —
// pre-aggregated cube cell — instead of per raw record) and a raw count:
// the pre-combiner mapped record total, the denominator of the combiner
// reduction ratio.
func (c *Cluster) mapAndCombineOpts(records []KV, q Query, site int, assigner Assigner, ppe int, cubeInput bool) (inter []KV, raw int, mapTime, assignOverhead float64, err error) {
	ex := c.Exec[site]
	if len(records) == 0 {
		return nil, 0, 0, 0, nil
	}
	perMachine := (len(records) + ex.Machines - 1) / ex.Machines
	for m := 0; m < ex.Machines; m++ {
		lo := m * perMachine
		if lo >= len(records) {
			break
		}
		hi := lo + perMachine
		if hi > len(records) {
			hi = len(records)
		}
		machineRecs := records[lo:hi]
		parts, perr := PartitionRecords(machineRecs, ex.PerMachine*ppe)
		if perr != nil {
			return nil, 0, 0, 0, perr
		}
		assignment, overhead, aerr := assigner.Assign(parts, ex.PerMachine)
		if aerr != nil {
			return nil, 0, 0, 0, aerr
		}
		if len(assignment) != len(parts) {
			return nil, 0, 0, 0, fmt.Errorf("assigner returned %d assignments for %d partitions", len(assignment), len(parts))
		}
		if overhead > assignOverhead {
			assignOverhead = overhead
		}
		// Per-executor map + combine.
		perExec := make([][]KV, ex.PerMachine)
		for pi, e := range assignment {
			if e < 0 || e >= ex.PerMachine {
				return nil, 0, 0, 0, fmt.Errorf("assigner placed partition %d on executor %d of %d", pi, e, ex.PerMachine)
			}
			perExec[e] = append(perExec[e], parts[pi].Records...)
		}
		for _, recs := range perExec {
			if len(recs) == 0 {
				continue
			}
			costBasis := len(recs)
			if cubeInput {
				costBasis = DistinctKeys(recs)
			}
			t := float64(costBasis) * q.MapCost
			if t > mapTime {
				mapTime = t // machines and executors run in parallel
			}
			mapped := q.applyMap(recs)
			raw += len(mapped)
			inter = append(inter, Combine(mapped, q.Combine)...)
		}
	}
	return inter, raw, mapTime, assignOverhead, nil
}

// ProfileIntermediate replays the map+combine stage of one site on the
// given records and returns the post-combiner intermediate record count —
// the quantity a recurring query's previous run reveals. The paper's
// prototype estimates data reduction exactly this way (§7: "the input and
// actual intermediate data size of the previous query"), and the planner
// uses it to derive realized (executor-split-aware) similarity.
func (c *Cluster) ProfileIntermediate(records []KV, q Query, site int) (int, error) {
	inter, _, _, err := c.mapAndCombine(records, q, site, RoundRobinAssigner{}, 4)
	if err != nil {
		return 0, err
	}
	return len(inter), nil
}

// KeyOwner picks the reduce site of a key with probability proportional to
// the task fractions, deterministically, via weighted rendezvous hashing.
// The live netio workers use the same function so simulated and real
// shuffles partition identically.
func KeyOwner(key string, taskFrac []float64) int {
	h := fnv1a(key)
	best := 0
	bestScore := math.Inf(1)
	for j, w := range taskFrac {
		if w <= 0 {
			continue
		}
		// Uniform (0,1) draw from the (key, site) pair; the smallest
		// exponential race time wins with probability proportional to w.
		u := float64(mix(h^(uint64(j)*0x9E3779B97F4A7C15))%(1<<53)+1) / float64(1<<53+1)
		score := -math.Log(u) / w
		if score < bestScore {
			bestScore = score
			best = j
		}
	}
	return best
}

func mix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// UplinkProportional returns task fractions proportional to each site's
// uplink bandwidth — the baseline task placement heuristic.
func UplinkProportional(top *wan.Topology) []float64 {
	ups := top.Uplinks()
	var total float64
	for _, u := range ups {
		total += u
	}
	out := make([]float64, len(ups))
	for i, u := range ups {
		out[i] = u / total
	}
	return out
}
