package engine

import (
	"context"
	"fmt"
	"math"
	"testing"

	"bohr/internal/stats"
	"bohr/internal/wan"
)

// testCluster builds a 3-site cluster with asymmetric bandwidth.
func testCluster(t *testing.T) *Cluster {
	t.Helper()
	top, err := wan.NewTopology(
		[]string{"slow", "mid", "fast"},
		[]float64{5, 20, 50}, []float64{5, 20, 50})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(top, 1, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// loadSkewed puts duplicate-heavy data at site 0 and lighter data
// elsewhere.
func loadSkewed(c *Cluster, dataset string, seed int64) {
	rng := stats.NewRand(seed)
	for i := 0; i < c.N(); i++ {
		n := 3000
		if i == 0 {
			n = 9000
		}
		for r := 0; r < n; r++ {
			key := fmt.Sprintf("s%d-k%d", i, rng.Intn(500))
			c.Data[i].Add(dataset, KV{Key: key, Val: 1})
		}
	}
}

func TestNewClusterValidation(t *testing.T) {
	top := wan.EC2TenRegions(20)
	if _, err := NewCluster(nil, 1, 1, 100); err == nil {
		t.Fatal("nil topology should error")
	}
	if _, err := NewCluster(top, 0, 1, 100); err == nil {
		t.Fatal("zero machines should error")
	}
	if _, err := NewCluster(top, 1, 0, 100); err == nil {
		t.Fatal("zero executors should error")
	}
	if _, err := NewCluster(top, 1, 1, 0); err == nil {
		t.Fatal("zero record size should error")
	}
}

func TestClusterConversions(t *testing.T) {
	c := testCluster(t)
	if got := c.MB(10000); got != 1 {
		t.Fatalf("MB(10000) = %v, want 1 (100B records)", got)
	}
	if got := c.RecordsFor(1); got != 10000 {
		t.Fatalf("RecordsFor(1MB) = %d", got)
	}
	if got := c.RecordsFor(-1); got != 0 {
		t.Fatalf("RecordsFor(-1) = %d", got)
	}
}

func TestClusterDatasetNamesAndInputMB(t *testing.T) {
	c := testCluster(t)
	c.Data[0].Add("b", KV{"k", 1})
	c.Data[2].Add("a", KV{"k", 1}, KV{"k2", 1})
	names := c.DatasetNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	mb := c.InputMB("a")
	if mb[0] != 0 || mb[2] != c.MB(2) {
		t.Fatalf("InputMB = %v", mb)
	}
}

func TestClusterClone(t *testing.T) {
	c := testCluster(t)
	c.Data[0].Add("ds", KV{"k", 1})
	cp := c.Clone()
	cp.Data[0].Add("ds", KV{"k2", 1})
	if len(c.Data[0].Records("ds")) != 1 {
		t.Fatal("clone should not share record slices")
	}
	if len(cp.Data[0].Records("ds")) != 2 {
		t.Fatal("clone lost records")
	}
}

func TestRunValidation(t *testing.T) {
	c := testCluster(t)
	if _, err := c.Run(context.Background(), JobConfig{Query: Query{}}); err == nil {
		t.Fatal("invalid query should error")
	}
	q := ScanQuery("q", "ds")
	if _, err := c.Run(context.Background(), JobConfig{Query: q, TaskFrac: []float64{1}}); err == nil {
		t.Fatal("short task fractions should error")
	}
	if _, err := c.Run(context.Background(), JobConfig{Query: q, TaskFrac: []float64{0.5, 0.2, 0.1}}); err == nil {
		t.Fatal("non-normalized task fractions should error")
	}
	if _, err := c.Run(context.Background(), JobConfig{Query: q, TaskFrac: []float64{1.5, -0.3, -0.2}}); err == nil {
		t.Fatal("negative task fraction should error")
	}
}

func TestRunScanCorrectness(t *testing.T) {
	c := testCluster(t)
	// Known data: key k appears at two sites; scan sums values.
	c.Data[0].Add("ds", KV{"k", 1}, KV{"k", 2}, KV{"x", 5})
	c.Data[1].Add("ds", KV{"k", 4})
	res, err := c.Run(context.Background(), JobConfig{Query: ScanQuery("scan", "ds")})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, kv := range res.Output {
		got[kv.Key] = kv.Val
	}
	if got["k"] != 7 || got["x"] != 5 {
		t.Fatalf("output = %v", got)
	}
	if res.QCT <= 0 {
		t.Fatalf("QCT = %v", res.QCT)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
}

func TestRunAggregationGroups(t *testing.T) {
	c := testCluster(t)
	c.Data[0].Add("ds", KV{"us:a", 1}, KV{"us:b", 2}, KV{"eu:c", 4})
	q := AggregationQuery("agg", "ds", func(k string) string { return k[:2] })
	res, err := c.Run(context.Background(), JobConfig{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, kv := range res.Output {
		got[kv.Key] = kv.Val
	}
	if got["us"] != 3 || got["eu"] != 4 {
		t.Fatalf("grouped output = %v", got)
	}
}

func TestRunUDFIterates(t *testing.T) {
	c := testCluster(t)
	c.Data[0].Add("ds", KV{"pageA", 1}, KV{"pageB", 1})
	q := UDFQuery("pr", "ds", 3)
	res, err := c.Run(context.Background(), JobConfig{Query: q})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("rounds = %d, want 3", len(res.Rounds))
	}
	if len(res.Output) == 0 {
		t.Fatal("pagerank produced no output")
	}
}

func TestRunCombinerReducesShuffle(t *testing.T) {
	c := testCluster(t)
	// 1000 copies of ONE key at site 0: combiner should collapse them, so
	// intermediate at site 0 is 1 record per executor at most.
	for i := 0; i < 1000; i++ {
		c.Data[0].Add("ds", KV{"hot", 1})
	}
	res, err := c.Run(context.Background(), JobConfig{Query: ScanQuery("scan", "ds")})
	if err != nil {
		t.Fatal(err)
	}
	maxInter := c.MB(c.Exec[0].Total()) // ≤ one record per executor
	if res.IntermediateMBPerSite[0] > maxInter+1e-9 {
		t.Fatalf("intermediate %v MB > combiner bound %v MB",
			res.IntermediateMBPerSite[0], maxInter)
	}
}

func TestRunDistinctKeysNoCombining(t *testing.T) {
	c := testCluster(t)
	n := 500
	for i := 0; i < n; i++ {
		c.Data[0].Add("ds", KV{fmt.Sprintf("k%d", i), 1})
	}
	res, err := c.Run(context.Background(), JobConfig{Query: ScanQuery("scan", "ds")})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.IntermediateMBPerSite[0]-c.MB(n)) > 1e-9 {
		t.Fatalf("distinct keys should not combine: %v MB, want %v",
			res.IntermediateMBPerSite[0], c.MB(n))
	}
}

func TestRunTaskFracZeroSiteReceivesNothing(t *testing.T) {
	c := testCluster(t)
	loadSkewed(c, "ds", 1)
	res, err := c.Run(context.Background(), JobConfig{
		Query:    ScanQuery("scan", "ds"),
		TaskFrac: []float64{0, 0.5, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// No reduce tasks at site 0 → its shuffle download is zero, and all its
	// intermediate data crossed the WAN.
	site0Inter := res.IntermediateMBPerSite[0]
	if site0Inter <= 0 {
		t.Fatal("site 0 should produce intermediate data")
	}
	// Every intermediate record at site 0 must have been uploaded.
	if res.TotalShuffleMB < site0Inter-1e-9 {
		t.Fatalf("shuffle %v < site-0 intermediate %v", res.TotalShuffleMB, site0Inter)
	}
}

func TestRunExtraQCTIncluded(t *testing.T) {
	c := testCluster(t)
	c.Data[0].Add("ds", KV{"k", 1})
	base, err := c.Run(context.Background(), JobConfig{Query: ScanQuery("s", "ds")})
	if err != nil {
		t.Fatal(err)
	}
	withExtra, err := c.Run(context.Background(), JobConfig{Query: ScanQuery("s", "ds"), ExtraQCT: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withExtra.QCT-base.QCT-2.5) > 1e-9 {
		t.Fatalf("ExtraQCT not included: %v vs %v", withExtra.QCT, base.QCT)
	}
}

func TestRunDeterministic(t *testing.T) {
	c := testCluster(t)
	loadSkewed(c, "ds", 7)
	r1, err := c.Run(context.Background(), JobConfig{Query: ScanQuery("s", "ds")})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Run(context.Background(), JobConfig{Query: ScanQuery("s", "ds")})
	if err != nil {
		t.Fatal(err)
	}
	if r1.QCT != r2.QCT || r1.TotalShuffleMB != r2.TotalShuffleMB {
		t.Fatal("identical runs must produce identical metrics")
	}
	if len(r1.Output) != len(r2.Output) {
		t.Fatal("outputs differ")
	}
}

func TestRunDoesNotMutateData(t *testing.T) {
	c := testCluster(t)
	c.Data[0].Add("ds", KV{"k", 1}, KV{"k2", 2})
	before := len(c.Data[0].Records("ds"))
	if _, err := c.Run(context.Background(), JobConfig{Query: ScanQuery("s", "ds")}); err != nil {
		t.Fatal(err)
	}
	if len(c.Data[0].Records("ds")) != before {
		t.Fatal("Run must not mutate stored data")
	}
}

func TestKeyOwnerDistribution(t *testing.T) {
	frac := []float64{0.5, 0.3, 0.2}
	counts := make([]int, 3)
	n := 20000
	for i := 0; i < n; i++ {
		counts[KeyOwner(fmt.Sprintf("key-%d", i), frac)]++
	}
	for j, f := range frac {
		got := float64(counts[j]) / float64(n)
		if math.Abs(got-f) > 0.02 {
			t.Fatalf("site %d owns %.3f of keys, want ~%.2f", j, got, f)
		}
	}
	// Deterministic.
	if KeyOwner("abc", frac) != KeyOwner("abc", frac) {
		t.Fatal("keyOwner must be deterministic")
	}
}

func TestUplinkProportional(t *testing.T) {
	top, _ := wan.NewTopology([]string{"a", "b"}, []float64{10, 30}, []float64{1, 1})
	frac := UplinkProportional(top)
	if math.Abs(frac[0]-0.25) > 1e-9 || math.Abs(frac[1]-0.75) > 1e-9 {
		t.Fatalf("frac = %v", frac)
	}
}

func TestExecutorsTotal(t *testing.T) {
	if (Executors{Machines: 3, PerMachine: 4}).Total() != 12 {
		t.Fatal("Total wrong")
	}
}

func TestQueryValidate(t *testing.T) {
	cases := []Query{
		{},
		{Name: "q"},
		{Name: "q", Dataset: "d", MapCost: -1},
		{Name: "q", Dataset: "d", Iterations: -1},
	}
	for i, q := range cases {
		if err := q.Validate(); err == nil {
			t.Fatalf("case %d should error", i)
		}
	}
	good := ScanQuery("q", "d")
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}
