// Package engine implements the mini geo-distributed analytics engine the
// Bohr reproduction runs on: RDD-style partitions, per-machine executors,
// map tasks with combiners, an all-to-all WAN shuffle, and reduce tasks.
// It substitutes for Apache Spark in the paper's prototype (§7): the QCT
// phenomena Bohr targets depend only on map/combine/shuffle/reduce
// semantics, which are implemented faithfully here, with compute time
// modeled per record and WAN time taken from the wan package's fluid model.
package engine

import (
	"fmt"
	"sort"
)

// KV is one record: a combine key and a numeric value. Workloads project
// raw rows down to the key attributes a query needs before handing them to
// the engine, mirroring how Bohr feeds a query its dimension cube.
type KV struct {
	Key string
	Val float64
}

// CombineOp is an associative, commutative merge of two values for the
// same key — the operation both the combiner and the reducer apply.
type CombineOp int

// Supported combine operations.
const (
	OpSum CombineOp = iota
	OpCount
	OpMax
	OpMin
)

func (op CombineOp) String() string {
	switch op {
	case OpSum:
		return "sum"
	case OpCount:
		return "count"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	}
	return "?"
}

// apply merges two values under the operation. For OpCount the values are
// partial counts, so merging is addition.
func (op CombineOp) apply(a, b float64) float64 {
	switch op {
	case OpSum, OpCount:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	}
	panic(fmt.Sprintf("engine: unknown combine op %d", op))
}

// initial converts a record's value into the op's accumulator seed.
func (op CombineOp) initial(v float64) float64 {
	if op == OpCount {
		return 1
	}
	return v
}

// Combine merges records by key under the operation, returning output
// sorted by key for deterministic downstream behaviour. This is exactly
// what a combiner (and a reducer) does.
func Combine(records []KV, op CombineOp) []KV {
	acc := make(map[string]float64, len(records))
	for _, r := range records {
		v, ok := acc[r.Key]
		if !ok {
			acc[r.Key] = op.initial(r.Val)
			continue
		}
		acc[r.Key] = op.apply(v, op.initial(r.Val))
	}
	out := make([]KV, 0, len(acc))
	for k, v := range acc {
		out = append(out, KV{Key: k, Val: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// CombinePartials merges already-combined partial aggregates by key. It
// is Combine for every operation except COUNT, whose partial values are
// partial counts and must be summed rather than re-counted — the standard
// combiner/reducer asymmetry of two-stage counting.
func CombinePartials(records []KV, op CombineOp) []KV {
	if op == OpCount {
		op = OpSum
	}
	return Combine(records, op)
}

// KeyCounts tallies how many records exist per key — the multiset view
// similarity scoring and similarity-aware movement consume.
func KeyCounts(records []KV) map[string]int {
	m := make(map[string]int, len(records))
	for _, r := range records {
		m[r.Key]++
	}
	return m
}

// DistinctKeys returns the number of distinct keys in records.
func DistinctKeys(records []KV) int {
	seen := make(map[string]struct{}, len(records))
	for _, r := range records {
		seen[r.Key] = struct{}{}
	}
	return len(seen)
}

// SelfSimilarity is the in-data combiner-reduction fraction: with n
// records over d distinct keys the combiner removes (n−d)/n of them.
func SelfSimilarity(records []KV) float64 {
	if len(records) == 0 {
		return 0
	}
	return 1 - float64(DistinctKeys(records))/float64(len(records))
}

// fnv1a hashes a key for shuffle partitioning.
func fnv1a(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
