package engine

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"bohr/internal/stats"
)

func TestCombineSum(t *testing.T) {
	out := Combine([]KV{{"a", 1}, {"b", 2}, {"a", 3}}, OpSum)
	if len(out) != 2 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].Key != "a" || out[0].Val != 4 {
		t.Fatalf("out[0] = %+v", out[0])
	}
	if out[1].Key != "b" || out[1].Val != 2 {
		t.Fatalf("out[1] = %+v", out[1])
	}
}

func TestCombineCount(t *testing.T) {
	out := Combine([]KV{{"a", 99}, {"a", 1}, {"a", 7}}, OpCount)
	if len(out) != 1 || out[0].Val != 3 {
		t.Fatalf("count = %+v", out)
	}
}

func TestCombineMaxMin(t *testing.T) {
	in := []KV{{"a", 5}, {"a", -2}, {"a", 3}}
	if out := Combine(in, OpMax); out[0].Val != 5 {
		t.Fatalf("max = %v", out[0].Val)
	}
	if out := Combine(in, OpMin); out[0].Val != -2 {
		t.Fatalf("min = %v", out[0].Val)
	}
}

func TestCombineEmpty(t *testing.T) {
	if out := Combine(nil, OpSum); len(out) != 0 {
		t.Fatalf("empty combine = %v", out)
	}
}

func TestCombineSortedOutput(t *testing.T) {
	out := Combine([]KV{{"z", 1}, {"a", 1}, {"m", 1}}, OpSum)
	for i := 1; i < len(out); i++ {
		if out[i-1].Key >= out[i].Key {
			t.Fatalf("output not sorted: %v", out)
		}
	}
}

func TestCombineOpStrings(t *testing.T) {
	if OpSum.String() != "sum" || OpCount.String() != "count" ||
		OpMax.String() != "max" || OpMin.String() != "min" || CombineOp(9).String() != "?" {
		t.Fatal("op strings wrong")
	}
}

func TestKeyCountsAndDistinct(t *testing.T) {
	recs := []KV{{"a", 1}, {"a", 2}, {"b", 3}}
	kc := KeyCounts(recs)
	if kc["a"] != 2 || kc["b"] != 1 {
		t.Fatalf("KeyCounts = %v", kc)
	}
	if DistinctKeys(recs) != 2 {
		t.Fatalf("DistinctKeys = %d", DistinctKeys(recs))
	}
}

func TestSelfSimilarity(t *testing.T) {
	recs := []KV{{"a", 1}, {"a", 1}, {"a", 1}, {"b", 1}} // 4 records, 2 keys
	if got := SelfSimilarity(recs); got != 0.5 {
		t.Fatalf("SelfSimilarity = %v", got)
	}
	if SelfSimilarity(nil) != 0 {
		t.Fatal("empty similarity should be 0")
	}
}

// Property: Combine is idempotent (combining combined output changes
// nothing) and conserves sums under OpSum.
func TestCombineProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := stats.NewRand(seed)
		n := int(nRaw)%100 + 1
		recs := make([]KV, n)
		var total float64
		for i := range recs {
			v := math.Floor(rng.Float64()*100) / 4
			recs[i] = KV{Key: fmt.Sprintf("k%d", rng.Intn(10)), Val: v}
			total += v
		}
		once := Combine(recs, OpSum)
		twice := Combine(once, OpSum)
		if len(once) != len(twice) {
			return false
		}
		var sum float64
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
			sum += once[i].Val
		}
		return math.Abs(sum-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionRecords(t *testing.T) {
	recs := make([]KV, 10)
	for i := range recs {
		recs[i] = KV{Key: fmt.Sprintf("k%d", i)}
	}
	parts, err := PartitionRecords(recs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("parts = %d", len(parts))
	}
	// Sizes 4, 3, 3; contiguous and complete.
	total := 0
	for i, p := range parts {
		if p.Index != i {
			t.Fatalf("index %d != %d", p.Index, i)
		}
		total += len(p.Records)
	}
	if total != 10 {
		t.Fatalf("records covered = %d", total)
	}
	if len(parts[0].Records) != 4 || parts[0].Records[0].Key != "k0" {
		t.Fatalf("first partition = %+v", parts[0])
	}
}

func TestPartitionRecordsEdgeCases(t *testing.T) {
	if _, err := PartitionRecords(nil, 0); err == nil {
		t.Fatal("n=0 should error")
	}
	parts, err := PartitionRecords(nil, 4)
	if err != nil || parts != nil {
		t.Fatalf("empty input: %v %v", parts, err)
	}
	// More partitions than records: one record each.
	parts, _ = PartitionRecords([]KV{{"a", 1}, {"b", 2}}, 10)
	if len(parts) != 2 {
		t.Fatalf("capped partitions = %d", len(parts))
	}
}

func TestRoundRobinAssigner(t *testing.T) {
	parts := make([]Partition, 5)
	a, overhead, err := RoundRobinAssigner{}.Assign(parts, 2)
	if err != nil || overhead != 0 {
		t.Fatalf("assign: %v %v", overhead, err)
	}
	want := []int{0, 1, 0, 1, 0}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("assignment = %v", a)
		}
	}
	if _, _, err := (RoundRobinAssigner{}).Assign(parts, 0); err == nil {
		t.Fatal("zero executors should error")
	}
}
