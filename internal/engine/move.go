package engine

import (
	"fmt"
	"math/rand"
	"sort"

	"bohr/internal/wan"
)

// MoveSpec is one planned movement: MB megabytes of a dataset from Src to
// Dst, executed in the lag before the query arrives.
type MoveSpec struct {
	Dataset  string
	Src, Dst int
	MB       float64
}

// Mover chooses which records leave a site when a MoveSpec is executed.
// The choice is the heart of Bohr: similarity-agnostic systems pick
// randomly, Bohr picks records that combine at the destination.
type Mover interface {
	// Select returns the indices (into src) of n records to move toward a
	// destination whose key counts are dstCounts.
	Select(src []KV, dstCounts map[string]int, n int, rng *rand.Rand) []int
}

// RandomMover models Iridium-style similarity-agnostic placement: a
// uniform random sample of records leaves the site.
type RandomMover struct{}

// Select implements Mover.
func (RandomMover) Select(src []KV, _ map[string]int, n int, rng *rand.Rand) []int {
	if n >= len(src) {
		return allIndices(len(src))
	}
	perm := rng.Perm(len(src))
	return perm[:n]
}

// SimilarMover implements Bohr's similarity-aware selection: records whose
// keys the destination already holds leave first (they combine away into
// existing destination cells), smaller source clusters foremost (a whole
// cluster leaving removes one post-combiner cell from the bottleneck
// regardless of size). This mirrors §4.1: the dimension cube has already
// clustered and sorted records by similarity, so the site peels off the
// most combinable records.
type SimilarMover struct {
	// Project maps a stored key into the attribute space the dominant
	// query type combines on (the dimension-cube view of §4.1). nil keeps
	// full keys.
	Project func(string) string
	// DstTopK bounds what the mover knows about the destination: only the
	// destination's DstTopK largest (projected) cells — what its probe
	// carried (§4.2). Zero means full knowledge.
	DstTopK int
}

// Select implements Mover.
func (m SimilarMover) Select(src []KV, dstCounts map[string]int, n int, _ *rand.Rand) []int {
	if n >= len(src) {
		return allIndices(len(src))
	}
	proj := m.Project
	if proj == nil {
		proj = func(k string) string { return k }
	}
	srcCounts := make(map[string]int, len(src))
	projected := make([]string, len(src))
	for i, r := range src {
		projected[i] = proj(r.Key)
		srcCounts[projected[i]]++
	}
	projDst := make(map[string]int, len(dstCounts))
	for k, c := range dstCounts {
		projDst[proj(k)] += c
	}
	dstCounts = projDst
	if m.DstTopK > 0 && len(dstCounts) > m.DstTopK {
		// The probe carried only the destination's top cells; forget the
		// rest.
		type kc struct {
			k string
			c int
		}
		cells := make([]kc, 0, len(dstCounts))
		for k, c := range dstCounts {
			cells = append(cells, kc{k, c})
		}
		sort.Slice(cells, func(a, b int) bool {
			if cells[a].c != cells[b].c {
				return cells[a].c > cells[b].c
			}
			return cells[a].k < cells[b].k
		})
		dstCounts = make(map[string]int, m.DstTopK)
		for _, cell := range cells[:m.DstTopK] {
			dstCounts[cell.k] = cell.c
		}
	}
	// Order keys for maximum combining benefit per moved megabyte.
	// Destination-shared keys move first: their records vanish into
	// existing destination cells, and within that class smaller source
	// clusters go first — a whole cluster leaving removes one cell from
	// the source's post-combiner output regardless of its size, so small
	// clusters relieve the bottleneck fastest. Keys the destination does
	// not hold follow, smallest clusters first for the same reason.
	keys := make([]string, 0, len(srcCounts))
	for k := range srcCounts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		da, db := dstCounts[ka], dstCounts[kb]
		if (da > 0) != (db > 0) {
			return da > 0
		}
		if srcCounts[ka] != srcCounts[kb] {
			return srcCounts[ka] < srcCounts[kb]
		}
		if da != db {
			return da > db
		}
		return ka < kb
	})
	rank := make(map[string]int, len(keys))
	for i, k := range keys {
		rank[k] = i
	}
	idx := allIndices(len(src))
	sort.SliceStable(idx, func(a, b int) bool {
		return rank[projected[idx[a]]] < rank[projected[idx[b]]]
	})
	return idx[:n]
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// MoveResult reports what a movement execution did.
type MoveResult struct {
	// MovedMB is the total volume moved per (src, dst) pair.
	Transfers []wan.Transfer
	// Duration is the WAN time the movement took (fluid model); planners
	// must keep this within the query lag T.
	Duration float64
	// Records is the total number of records moved.
	Records int
}

// ApplyMoves executes movement specs against the cluster's data in place:
// the mover selects records at each source, which are removed there and
// appended at the destination. Moves are applied in deterministic order
// (by dataset, then src, then dst). The rng drives random selection only.
func (c *Cluster) ApplyMoves(specs []MoveSpec, mover Mover, rng *rand.Rand) (*MoveResult, error) {
	if mover == nil {
		return nil, fmt.Errorf("engine: ApplyMoves needs a mover")
	}
	ordered := append([]MoveSpec(nil), specs...)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.Dataset != b.Dataset {
			return a.Dataset < b.Dataset
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Dst < b.Dst
	})

	res := &MoveResult{}
	for _, sp := range ordered {
		if sp.MB <= 0 {
			continue
		}
		if sp.Src == sp.Dst {
			continue
		}
		if sp.Src < 0 || sp.Src >= c.N() || sp.Dst < 0 || sp.Dst >= c.N() {
			return nil, fmt.Errorf("engine: move %q %d→%d out of range", sp.Dataset, sp.Src, sp.Dst)
		}
		src := c.Data[sp.Src].Records(sp.Dataset)
		if len(src) == 0 {
			continue
		}
		n := c.RecordsFor(sp.MB)
		if n == 0 {
			continue
		}
		if n > len(src) {
			n = len(src)
		}
		dstCounts := KeyCounts(c.Data[sp.Dst].Records(sp.Dataset))
		idx := mover.Select(src, dstCounts, n, rng)
		if len(idx) > n {
			idx = idx[:n]
		}
		moving := make(map[int]bool, len(idx))
		for _, i := range idx {
			if i < 0 || i >= len(src) {
				return nil, fmt.Errorf("engine: mover returned out-of-range index %d", i)
			}
			moving[i] = true
		}
		var kept, moved []KV
		for i, r := range src {
			if moving[i] {
				moved = append(moved, r)
			} else {
				kept = append(kept, r)
			}
		}
		c.Data[sp.Src].Datasets[sp.Dataset] = kept
		c.Data[sp.Dst].Add(sp.Dataset, moved...)
		res.Records += len(moved)
		res.Transfers = append(res.Transfers, wan.Transfer{
			Src: wan.SiteID(sp.Src), Dst: wan.SiteID(sp.Dst), MB: c.MB(len(moved)),
		})
	}
	res.Duration = c.Top.Simulate(res.Transfers).Makespan
	return res, nil
}
