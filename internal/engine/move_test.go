package engine

import (
	"context"
	"fmt"
	"testing"

	"bohr/internal/stats"
)

func TestRandomMoverSelectsN(t *testing.T) {
	rng := stats.NewRand(1)
	src := make([]KV, 100)
	for i := range src {
		src[i] = KV{Key: fmt.Sprintf("k%d", i)}
	}
	idx := RandomMover{}.Select(src, nil, 30, rng)
	if len(idx) != 30 {
		t.Fatalf("selected %d", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatalf("bad index %d", i)
		}
		seen[i] = true
	}
	// Over-ask returns everything.
	if got := (RandomMover{}).Select(src, nil, 1000, rng); len(got) != 100 {
		t.Fatalf("over-ask = %d", len(got))
	}
}

func TestSimilarMoverPrefersSharedKeys(t *testing.T) {
	src := []KV{
		{"shared-big", 1}, {"shared-big", 1},
		{"local-only", 1}, {"local-only", 1}, {"local-only", 1},
		{"shared-small", 1},
	}
	dst := map[string]int{"shared-big": 50, "shared-small": 2}
	idx := SimilarMover{}.Select(src, dst, 3, nil)
	if len(idx) != 3 {
		t.Fatalf("selected %d", len(idx))
	}
	for _, i := range idx {
		k := src[i].Key
		if k != "shared-big" && k != "shared-small" {
			t.Fatalf("selected non-shared key %q before shared ones", k)
		}
	}
	// Among shared keys, the smaller source cluster leaves first:
	// shared-small (1 record) precedes shared-big (2 records).
	if src[idx[0]].Key != "shared-small" {
		t.Fatalf("smallest shared cluster should move first, got %q", src[idx[0]].Key)
	}
}

func TestSimilarMoverDstTopKBoundsKnowledge(t *testing.T) {
	// With DstTopK=1 the mover only knows the destination's biggest cell;
	// records of other shared keys rank as unknown.
	src := []KV{{"big", 1}, {"small", 1}, {"tail", 1}}
	dst := map[string]int{"big": 50, "small": 2}
	idx := SimilarMover{DstTopK: 1}.Select(src, dst, 1, nil)
	if src[idx[0]].Key != "big" {
		t.Fatalf("only the known top cell should rank first, got %q", src[idx[0]].Key)
	}
}

func TestSimilarMoverSharedSmallClustersFirst(t *testing.T) {
	// Among destination-shared keys, whole small clusters leave first:
	// each departed cluster removes one post-combiner cell from the
	// source, so singletons relieve the bottleneck fastest per record.
	src := []KV{
		{"dup", 1}, {"dup", 1}, {"dup", 1},
		{"solo1", 1}, {"solo2", 1},
	}
	dst := map[string]int{"dup": 4, "solo1": 1, "solo2": 1}
	idx := SimilarMover{}.Select(src, dst, 2, nil)
	for _, i := range idx {
		if src[i].Key == "dup" {
			t.Fatalf("shared singletons should move before the shared duplicated key, got %q", src[i].Key)
		}
	}
}

func TestSimilarMoverOverAsk(t *testing.T) {
	src := []KV{{"a", 1}, {"b", 2}}
	if got := (SimilarMover{}).Select(src, nil, 10, nil); len(got) != 2 {
		t.Fatalf("over-ask = %d", len(got))
	}
}

func TestApplyMovesMovesRecords(t *testing.T) {
	c := testCluster(t)
	for i := 0; i < 100; i++ {
		c.Data[0].Add("ds", KV{Key: fmt.Sprintf("k%d", i%10), Val: 1})
	}
	rng := stats.NewRand(2)
	// 100 records at 100 B = 0.01 MB total; move 0.004 MB = 40 records.
	res, err := c.ApplyMoves([]MoveSpec{{Dataset: "ds", Src: 0, Dst: 2, MB: 0.004}}, SimilarMover{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 40 {
		t.Fatalf("moved %d records, want 40", res.Records)
	}
	if len(c.Data[0].Records("ds")) != 60 || len(c.Data[2].Records("ds")) != 40 {
		t.Fatalf("post-move sizes: %d / %d",
			len(c.Data[0].Records("ds")), len(c.Data[2].Records("ds")))
	}
	if res.Duration <= 0 {
		t.Fatalf("move duration = %v", res.Duration)
	}
	if len(res.Transfers) != 1 || res.Transfers[0].MB != c.MB(40) {
		t.Fatalf("transfers = %+v", res.Transfers)
	}
}

func TestApplyMovesValidation(t *testing.T) {
	c := testCluster(t)
	rng := stats.NewRand(1)
	if _, err := c.ApplyMoves(nil, nil, rng); err == nil {
		t.Fatal("nil mover should error")
	}
	if _, err := c.ApplyMoves([]MoveSpec{{Dataset: "ds", Src: 0, Dst: 99, MB: 1}}, RandomMover{}, rng); err == nil {
		t.Fatal("out-of-range site should error")
	}
}

func TestApplyMovesSkipsDegenerate(t *testing.T) {
	c := testCluster(t)
	c.Data[0].Add("ds", KV{"k", 1})
	rng := stats.NewRand(1)
	res, err := c.ApplyMoves([]MoveSpec{
		{Dataset: "ds", Src: 0, Dst: 0, MB: 5},   // self move
		{Dataset: "ds", Src: 1, Dst: 2, MB: 5},   // empty source
		{Dataset: "ds", Src: 0, Dst: 1, MB: 0},   // zero volume
		{Dataset: "ds", Src: 0, Dst: 1, MB: -3},  // negative volume
		{Dataset: "none", Src: 0, Dst: 1, MB: 5}, // unknown dataset
	}, RandomMover{}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 0 || len(res.Transfers) != 0 {
		t.Fatalf("degenerate moves should be no-ops: %+v", res)
	}
	if len(c.Data[0].Records("ds")) != 1 {
		t.Fatal("data should be untouched")
	}
}

func TestApplyMovesConservation(t *testing.T) {
	c := testCluster(t)
	rng := stats.NewRand(3)
	total := 0
	for i := 0; i < c.N(); i++ {
		n := 200 * (i + 1)
		total += n
		for r := 0; r < n; r++ {
			c.Data[i].Add("ds", KV{Key: fmt.Sprintf("s%d-%d", i, r%20), Val: 1})
		}
	}
	specs := []MoveSpec{
		{Dataset: "ds", Src: 0, Dst: 1, MB: 0.005},
		{Dataset: "ds", Src: 1, Dst: 2, MB: 0.01},
		{Dataset: "ds", Src: 2, Dst: 0, MB: 0.002},
	}
	if _, err := c.ApplyMoves(specs, SimilarMover{}, rng); err != nil {
		t.Fatal(err)
	}
	after := 0
	for i := 0; i < c.N(); i++ {
		after += len(c.Data[i].Records("ds"))
	}
	if after != total {
		t.Fatalf("records not conserved: %d → %d", total, after)
	}
}

func TestSimilarMoveImprovesCombining(t *testing.T) {
	// The motivating example of Figure 1: moving similar data must yield
	// less intermediate data than moving random data.
	mkCluster := func() *Cluster {
		c := testCluster(t)
		rng := stats.NewRand(42)
		// Site 0 (bottleneck): mixed keys, half shared with site 2.
		for i := 0; i < 4000; i++ {
			var k string
			if i%2 == 0 {
				k = fmt.Sprintf("shared-%d", rng.Intn(200)) // also at site 2
			} else {
				k = fmt.Sprintf("site0-%d", rng.Intn(200))
			}
			c.Data[0].Add("ds", KV{Key: k, Val: 1})
		}
		for i := 0; i < 2000; i++ {
			c.Data[2].Add("ds", KV{Key: fmt.Sprintf("shared-%d", rng.Intn(200)), Val: 1})
		}
		return c
	}
	moveMB := 0.2 // 2000 records
	run := func(m Mover) float64 {
		c := mkCluster()
		rng := stats.NewRand(9)
		if _, err := c.ApplyMoves([]MoveSpec{{Dataset: "ds", Src: 0, Dst: 2, MB: moveMB}}, m, rng); err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(context.Background(), JobConfig{Query: ScanQuery("s", "ds")})
		if err != nil {
			t.Fatal(err)
		}
		return stats.Sum(res.IntermediateMBPerSite)
	}
	similar := run(SimilarMover{})
	random := run(RandomMover{})
	if similar >= random {
		t.Fatalf("similarity-aware movement should reduce intermediate data: similar=%v random=%v", similar, random)
	}
}
