package engine

import "fmt"

// Partition is one RDD-style partition: a contiguous slice of a site's
// records. Partitions preserve generation order, so data that arrived
// together stays together — the locality the RDD-similarity assigner
// exploits.
type Partition struct {
	Index   int
	Records []KV
}

// PartitionRecords splits records into n contiguous partitions of
// near-equal size. Fewer partitions are returned when there are fewer
// records than n; zero records yield zero partitions.
func PartitionRecords(records []KV, n int) ([]Partition, error) {
	if n <= 0 {
		return nil, fmt.Errorf("engine: partition count must be positive, got %d", n)
	}
	if len(records) == 0 {
		return nil, nil
	}
	if n > len(records) {
		n = len(records)
	}
	out := make([]Partition, 0, n)
	size := len(records) / n
	extra := len(records) % n
	start := 0
	for i := 0; i < n; i++ {
		end := start + size
		if i < extra {
			end++
		}
		out = append(out, Partition{Index: i, Records: records[start:end]})
		start = end
	}
	return out, nil
}

// Assigner maps partitions to executors on one machine. Implementations:
// RoundRobinAssigner (Spark's default random/round-robin behaviour) and
// the rdd package's similarity-aware assigner (§6).
type Assigner interface {
	// Assign returns, for each partition, the executor index in
	// [0, executors), plus the modeled overhead in seconds the assignment
	// itself cost (e.g. DIMSUM similarity checking time).
	Assign(parts []Partition, executors int) (assignment []int, overhead float64, err error)
}

// RoundRobinAssigner assigns partitions to executors cyclically — the
// baseline behaviour where co-location of similar partitions is luck.
type RoundRobinAssigner struct{}

// Assign implements Assigner.
func (RoundRobinAssigner) Assign(parts []Partition, executors int) ([]int, float64, error) {
	if executors <= 0 {
		return nil, 0, fmt.Errorf("engine: assigner needs positive executors, got %d", executors)
	}
	out := make([]int, len(parts))
	for i := range parts {
		out[i] = i % executors
	}
	return out, 0, nil
}
