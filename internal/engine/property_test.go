package engine

import (
	"context"
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"bohr/internal/stats"
	"bohr/internal/wan"
)

// Property: a scan (identity map, OpSum) conserves the total value mass —
// the sum over the final output equals the sum over all input records,
// regardless of placement, task fractions, or executor counts.
func TestRunConservesMassProperty(t *testing.T) {
	f := func(seed int64, sitesRaw, execRaw uint8) bool {
		rng := stats.NewRand(seed)
		c := testClusterQ(int(sitesRaw%3)+2, int(execRaw%4)+1)
		var total float64
		for i := 0; i < c.N(); i++ {
			n := rng.Intn(300)
			for r := 0; r < n; r++ {
				v := float64(rng.Intn(100))
				total += v
				c.Data[i].Add("d", KV{Key: fmt.Sprintf("k%d", rng.Intn(40)), Val: v})
			}
		}
		res, err := c.Run(context.Background(), JobConfig{Query: ScanQuery("s", "d")})
		if err != nil {
			return false
		}
		var got float64
		for _, kv := range res.Output {
			got += kv.Val
		}
		return math.Abs(got-total) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: movers return exactly min(n, len(src)) distinct in-range
// indices, for both policies, any projection, and any destination counts.
func TestMoverSelectionProperty(t *testing.T) {
	f := func(seed int64, nRaw, askRaw uint8, similar bool) bool {
		rng := stats.NewRand(seed)
		n := int(nRaw%200) + 1
		src := make([]KV, n)
		for i := range src {
			src[i] = KV{Key: fmt.Sprintf("k%d", rng.Intn(30)), Val: 1}
		}
		dst := map[string]int{}
		for i := 0; i < rng.Intn(20); i++ {
			dst[fmt.Sprintf("k%d", rng.Intn(30))] = rng.Intn(50) + 1
		}
		ask := int(askRaw % 220)
		var mover Mover = RandomMover{}
		if similar {
			mover = SimilarMover{DstTopK: rng.Intn(10)}
		}
		idx := mover.Select(src, dst, ask, rng)
		want := ask
		if want > n {
			want = n
		}
		if ask <= 0 {
			want = 0
		}
		if len(idx) < want {
			return false
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: ApplyMoves conserves records globally for any plan the
// planner could emit.
func TestApplyMovesConservationProperty(t *testing.T) {
	f := func(seed int64, moveRaw uint8) bool {
		rng := stats.NewRand(seed)
		c := testClusterQ(3, 2)
		total := 0
		for i := 0; i < c.N(); i++ {
			n := 100 + rng.Intn(200)
			total += n
			for r := 0; r < n; r++ {
				c.Data[i].Add("d", KV{Key: fmt.Sprintf("k%d", rng.Intn(25)), Val: 1})
			}
		}
		var specs []MoveSpec
		for m := 0; m < int(moveRaw%6); m++ {
			specs = append(specs, MoveSpec{
				Dataset: "d",
				Src:     rng.Intn(3),
				Dst:     rng.Intn(3),
				MB:      rng.Float64() * c.MB(100),
			})
		}
		if _, err := c.ApplyMoves(specs, SimilarMover{}, rng); err != nil {
			return false
		}
		after := 0
		for i := 0; i < c.N(); i++ {
			after += len(c.Data[i].Records("d"))
		}
		return after == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: KeyOwner always returns a site with positive task fraction.
func TestKeyOwnerRespectsZeroFractionsProperty(t *testing.T) {
	f := func(seed int64, key string) bool {
		rng := stats.NewRand(seed)
		n := 2 + rng.Intn(6)
		frac := make([]float64, n)
		alive := map[int]bool{}
		var sum float64
		for i := range frac {
			if rng.Float64() < 0.4 {
				continue // leave at zero
			}
			frac[i] = rng.Float64()
			sum += frac[i]
		}
		if sum == 0 {
			frac[0] = 1
			sum = 1
		}
		for i := range frac {
			frac[i] /= sum
			if frac[i] > 0 {
				alive[i] = true
			}
		}
		return alive[KeyOwner(key, frac)]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// testClusterQ builds a uniform cluster for property tests.
func testClusterQ(sites, execs int) *Cluster {
	names := make([]string, sites)
	up := make([]float64, sites)
	for i := range names {
		names[i] = fmt.Sprintf("s%d", i)
		up[i] = float64(5 * (i + 1))
	}
	top, err := newTopologyQ(names, up)
	if err != nil {
		panic(err)
	}
	c, err := NewCluster(top, 1, execs, 100)
	if err != nil {
		panic(err)
	}
	return c
}

// newTopologyQ builds a symmetric topology for property tests.
func newTopologyQ(names []string, up []float64) (*wan.Topology, error) {
	return wan.NewTopology(names, up, up)
}
