package engine

import "fmt"

// MapFn transforms one input record into zero or more intermediate
// records. A nil MapFn is the identity.
type MapFn func(KV) []KV

// Query describes one recurring analytics query over a dataset. The
// engine executes it as map → combine → shuffle → reduce, iterated
// Iterations times for DAGs like PageRank where reduce output feeds the
// next round's map.
type Query struct {
	Name string
	// Dataset names the dataset the query reads.
	Dataset string
	// QueryType identifies the attribute set the query accesses; queries
	// with equal QueryType share a dimension cube and probe budget.
	QueryType string
	// Map is applied to every input record. nil = identity.
	Map MapFn
	// Combine is the associative merge for the combiner and reducer.
	Combine CombineOp
	// Iterations > 1 chains rounds (e.g. PageRank); reduce output becomes
	// the next round's input, re-scattered across sites by reduce task
	// placement. 0 is treated as 1.
	Iterations int
	// MapCost and ReduceCost are modeled seconds of compute per record.
	MapCost, ReduceCost float64
}

// Validate checks the query is runnable.
func (q *Query) Validate() error {
	if q.Name == "" {
		return fmt.Errorf("engine: query needs a name")
	}
	if q.Dataset == "" {
		return fmt.Errorf("engine: query %q needs a dataset", q.Name)
	}
	if q.MapCost < 0 || q.ReduceCost < 0 {
		return fmt.Errorf("engine: query %q has negative cost", q.Name)
	}
	if q.Iterations < 0 {
		return fmt.Errorf("engine: query %q has negative iterations", q.Name)
	}
	return nil
}

// rounds returns the effective iteration count.
func (q *Query) rounds() int {
	if q.Iterations <= 0 {
		return 1
	}
	return q.Iterations
}

// applyMap runs the map function over a record slice.
func (q *Query) applyMap(in []KV) []KV {
	if q.Map == nil {
		return in
	}
	var out []KV
	for _, r := range in {
		out = append(out, q.Map(r)...)
	}
	return out
}

// DefaultCosts are per-record compute costs calibrated so that the
// simulated QCTs land in the seconds range the paper reports for 40
// GB-per-site workloads scaled down to in-memory record counts.
const (
	DefaultMapCost    = 2.5e-3 // seconds per record mapped (parsing raw rows)
	DefaultReduceCost = 2e-4   // seconds per record reduced
)

// ScanQuery builds a simple projection/scan query: identity map, sum
// combine — the AMPLab "scan" class.
func ScanQuery(name, dataset string) Query {
	return Query{
		Name: name, Dataset: dataset, QueryType: "scan",
		Combine: OpSum, MapCost: DefaultMapCost, ReduceCost: DefaultReduceCost,
	}
}

// AggregationQuery builds a group-by-aggregate query: map projects the
// record's key through groupKey (nil keeps the key), values are summed —
// the AMPLab "aggregation" class.
func AggregationQuery(name, dataset string, groupKey func(string) string) Query {
	var m MapFn
	if groupKey != nil {
		m = func(r KV) []KV { return []KV{{Key: groupKey(r.Key), Val: r.Val}} }
	}
	return Query{
		Name: name, Dataset: dataset, QueryType: "aggregation",
		Map: m, Combine: OpSum,
		MapCost: DefaultMapCost * 1.5, ReduceCost: DefaultReduceCost,
	}
}

// UDFQuery builds the AMPLab-style UDF: a simplified PageRank where each
// round each page's score is scattered to its neighborhood and re-summed.
// iterations is the number of rank rounds.
func UDFQuery(name, dataset string, iterations int) Query {
	return Query{
		Name: name, Dataset: dataset, QueryType: "udf",
		Map: func(r KV) []KV {
			// Damped contribution kept on the page plus a share emitted to
			// a deterministic "linked" page (same key space).
			return []KV{
				{Key: r.Key, Val: 0.15 + 0.85*r.Val*0.5},
				{Key: linkOf(r.Key), Val: 0.85 * r.Val * 0.5},
			}
		},
		Combine:    OpSum,
		Iterations: iterations,
		MapCost:    DefaultMapCost * 2, ReduceCost: DefaultReduceCost * 2,
	}
}

// linkOf deterministically maps a page key to one page it links to,
// keeping the key space closed so PageRank rounds stay well-defined.
func linkOf(key string) string {
	h := fnv1a(key)
	// Rotate within a ring of 1<<16 synthetic link targets derived from
	// the key hash: pages sharing a hash bucket link to the same target,
	// giving the skewed in-degree distribution real webgraphs have.
	return fmt.Sprintf("%s#%d", key[:min(len(key), 2)], h%(1<<16))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
