package experiments

import (
	"context"
	"fmt"
	"strings"

	"bohr/internal/core"
	"bohr/internal/engine"
	"bohr/internal/placement"
	"bohr/internal/stats"
	"bohr/internal/workload"
)

// AblationRow reports one design-choice variant of full Bohr.
type AblationRow struct {
	Variant       string
	MeanQCT       float64
	MeanReduction float64
}

// AblationPlacement isolates the design choices DESIGN.md calls out, each
// as a variant of full Bohr on the big data workload:
//
//   - full:            everything on (the reference point)
//   - paper-eq1:       incoming data combines at the destination's own
//     rate, the literal Eq. (1), instead of the pairwise probe rate
//   - no-calibration:  the joint LP trusts its first solve instead of
//     re-solving against profiled volumes
//   - random-mover:    Bohr's plan executed with random record selection
//     (isolates WHICH records move)
func AblationPlacement(s Setup) ([]AblationRow, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	type variant struct {
		name   string
		mutate func(*placement.Options)
		random bool
	}
	variants := []variant{
		{name: "full", mutate: func(*placement.Options) {}},
		{name: "paper-eq1", mutate: func(o *placement.Options) { o.PaperObjective = true }},
		{name: "no-calibration", mutate: func(o *placement.Options) { o.DisableCalibration = true }},
		{name: "random-mover", mutate: func(*placement.Options) {}, random: true},
	}

	sums := map[string]*AblationRow{}
	for _, v := range variants {
		sums[v.name] = &AblationRow{Variant: v.name}
	}
	for run := 0; run < s.Runs; run++ {
		snap, err := s.snapshot(workload.BigDataScan, false, run)
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			opts := s.PlacementOptions(run)
			v.mutate(&opts)
			c := snap.cluster.Clone()
			plan, err := placement.PlanScheme(placement.Bohr, c, snap.workload, opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation %s: %w", v.name, err)
			}
			if v.random {
				plan.UseRandomMovers()
			}
			if _, err := plan.Execute(c, s.Seed+int64(run)); err != nil {
				return nil, err
			}
			sys := resultOf(c, snap, plan)
			res, err := sys()
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation %s: %w", v.name, err)
			}
			sums[v.name].MeanQCT += res.qct
			sums[v.name].MeanReduction += res.reduction
		}
	}
	out := make([]AblationRow, 0, len(variants))
	for _, v := range variants {
		row := sums[v.name]
		row.MeanQCT /= float64(s.Runs)
		row.MeanReduction /= float64(s.Runs)
		out = append(out, *row)
	}
	return out, nil
}

type ablationResult struct {
	qct       float64
	reduction float64
}

// resultOf runs every dataset's dominant query on an already-moved cluster
// under the plan and aggregates QCT and mean data reduction.
func resultOf(c *engine.Cluster, snap *coreSnapshot, plan *placement.Plan) func() (ablationResult, error) {
	return func() (ablationResult, error) {
		cfgs := make([]engine.JobConfig, len(snap.workload.Datasets))
		for i, ds := range snap.workload.Datasets {
			cfgs[i] = plan.JobConfigFor(ds.DominantQuery().Query)
		}
		results, err := c.RunConcurrent(context.Background(), cfgs)
		if err != nil {
			return ablationResult{}, err
		}
		var qct float64
		inter := make([]float64, c.N())
		for _, res := range results {
			qct += res.QCT
			for i, mb := range res.IntermediateMBPerSite {
				inter[i] += mb
			}
		}
		red := core.DataReduction(snap.vanilla, inter)
		return ablationResult{
			qct:       qct / float64(len(results)),
			reduction: stats.Mean(red),
		}, nil
	}
}

// FormatAblation renders the ablation rows.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Ablation: full Bohr vs single-choice variants (big data workload)\n")
	fmt.Fprintf(&b, "%-16s%10s%14s\n", "Variant", "QCT", "Reduction")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s%9.2fs%13.1f%%\n", r.Variant, r.MeanQCT, r.MeanReduction)
	}
	return b.String()
}
