package experiments

import (
	"strings"
	"testing"

	"bohr/internal/workload"
)

// miniSetup is sized so a figure regenerates in a few seconds of test time
// while keeping ten sites (the per-site figures need the EC2 topology).
func miniSetup() Setup {
	s := DefaultSetup()
	s.Datasets = 4
	s.RowsPerSite = 1500
	s.KeysPerPool = 250
	s.Runs = 1
	return s
}

func TestSetupValidate(t *testing.T) {
	bad := Setup{}
	if _, err := Figure6(bad); err == nil {
		t.Fatal("invalid setup should error")
	}
	s := miniSetup()
	s.Runs = 0
	if _, err := Figure6(s); err == nil {
		t.Fatal("zero runs should error")
	}
}

func TestTopologyShapes(t *testing.T) {
	s := miniSetup()
	top := s.Topology()
	if top.N() != 10 {
		t.Fatalf("topology sites = %d", top.N())
	}
	if _, ok := top.ByName("Tokyo"); !ok {
		t.Fatal("ten-site setup should use EC2 region names")
	}
	s.Sites = 6
	top = s.Topology()
	if top.N() != 6 {
		t.Fatalf("custom topology sites = %d", top.N())
	}
	// Tiered 1x/2.5x/5x structure preserved.
	if top.Site(1).UpMBps/top.Site(0).UpMBps != 2.5 {
		t.Fatalf("tier ratio = %v", top.Site(1).UpMBps/top.Site(0).UpMBps)
	}
}

func TestFigure6Shape(t *testing.T) {
	rows, err := Figure6(miniSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("figure 6 needs 5 workloads, got %d", len(rows))
	}
	for _, r := range rows {
		for _, scheme := range []string{"Iridium", "Iridium-C", "Bohr"} {
			if r.QCT[scheme] <= 0 {
				t.Fatalf("%s: %s QCT = %v", r.Workload, scheme, r.QCT[scheme])
			}
		}
		// The paper's headline: Bohr ≤ Iridium-C ≤ Iridium. At mini test
		// scale allow a 5% tie band per workload; the aggregate check
		// below demands a real win on average.
		if r.QCT["Bohr"] > r.QCT["Iridium-C"]*1.05 {
			t.Errorf("%s: Bohr %v should beat Iridium-C %v",
				r.Workload, r.QCT["Bohr"], r.QCT["Iridium-C"])
		}
		if r.QCT["Iridium-C"] > r.QCT["Iridium"]*1.02 {
			t.Errorf("%s: Iridium-C %v should not lose to Iridium %v",
				r.Workload, r.QCT["Iridium-C"], r.QCT["Iridium"])
		}
	}
	var bohrTotal, ircTotal float64
	for _, r := range rows {
		bohrTotal += r.QCT["Bohr"]
		ircTotal += r.QCT["Iridium-C"]
	}
	if bohrTotal >= ircTotal {
		t.Errorf("Bohr mean QCT %v should beat Iridium-C %v across workloads",
			bohrTotal/5, ircTotal/5)
	}
	// Rendering works.
	out := FormatQCT("Figure 6", rows, []string{"Iridium", "Iridium-C", "Bohr"})
	if !strings.Contains(out, "Big data (scan)") || !strings.Contains(out, "TPC-DS") {
		t.Fatalf("format missing workloads:\n%s", out)
	}
}

func TestFigure8Shape(t *testing.T) {
	s := miniSetup()
	rows, err := Figure8(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != s.Sites {
		t.Fatalf("figure 8 rows = %d, want %d", len(rows), s.Sites)
	}
	var bohrSum, iridiumSum float64
	for _, r := range rows {
		bohrSum += r.Reduction["Bohr"]
		iridiumSum += r.Reduction["Iridium"]
	}
	// Bohr's mean per-site reduction must clearly exceed Iridium's.
	if bohrSum <= iridiumSum {
		t.Fatalf("Bohr mean reduction %v should exceed Iridium %v",
			bohrSum/float64(len(rows)), iridiumSum/float64(len(rows)))
	}
	out := FormatReduction("Figure 8", rows, []string{"Iridium", "Iridium-C", "Bohr"})
	if !strings.Contains(out, "Tokyo") {
		t.Fatalf("format missing sites:\n%s", out)
	}
}

func TestFigure10Shape(t *testing.T) {
	rows, err := Figure10(miniSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	wins := 0
	for _, r := range rows {
		// Components should generally improve on Iridium-C (§8.3); allow
		// an occasional tie at mini scale but require a clear majority.
		for _, scheme := range []string{"Bohr-Sim", "Bohr-Joint", "Bohr-RDD"} {
			if r.QCT[scheme] < r.QCT["Iridium-C"] {
				wins++
			}
		}
	}
	if wins < 10 { // of 15 comparisons
		t.Fatalf("component schemes beat Iridium-C only %d/15 times", wins)
	}
}

func TestFigure12And13Shape(t *testing.T) {
	s := miniSetup()
	red, err := Figure12(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(red) != len(ProbeKValues) {
		t.Fatalf("k points = %d", len(red))
	}
	// Data reduction at k=100 must be at least as good as at k=10 for each
	// workload (more probe records → more accurate similarity).
	first, last := red[0], red[len(red)-1]
	for name, v10 := range first.Value {
		// Coarse-keyed workloads (Facebook's 120 job classes) saturate at
		// tiny k, so their series is flat plus noise; allow that band.
		if last.Value[name] < v10-8 {
			t.Errorf("%s: reduction at k=100 (%v) below k=10 (%v)", name, last.Value[name], v10)
		}
	}
	qct, err := Figure13(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(qct) != len(ProbeKValues) {
		t.Fatalf("k points = %d", len(qct))
	}
	out := FormatKSweep("Figure 12", "%", red)
	if !strings.Contains(out, "k") {
		t.Fatal("format broken")
	}
}

func TestTable2Shape(t *testing.T) {
	rows, err := Table2(miniSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("table 2 rows = %d", len(rows))
	}
	totalProbe := 0
	for _, r := range rows {
		totalProbe += r.ProbeRecords
		if r.CheckTimeSecs <= 0 {
			t.Fatalf("dataset %d check time = %v", r.DatasetID, r.CheckTimeSecs)
		}
	}
	// Probe allocation tracks size: the largest dataset (id 3, 4.32 GB)
	// gets the most records; the budget roughly sums to ProbeK.
	if rows[1].ProbeRecords <= rows[0].ProbeRecords || rows[1].ProbeRecords <= rows[3].ProbeRecords {
		t.Fatalf("probe allocation not size-proportional: %+v", rows)
	}
	if totalProbe < 25 || totalProbe > 35 {
		t.Fatalf("total probe records = %d, want ≈30", totalProbe)
	}
	if !strings.Contains(FormatTable2(rows), "42") {
		t.Fatal("format missing the 42-dim dataset")
	}
}

func TestTable3Monotone(t *testing.T) {
	rows, err := Table3(miniSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(ProbeKValues) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].CheckTimeSecs < rows[i-1].CheckTimeSecs {
			t.Fatalf("checking time must grow with k: %+v", rows)
		}
	}
	if FormatTable3(rows) == "" {
		t.Fatal("format empty")
	}
}

func TestTable4Shape(t *testing.T) {
	s := miniSetup()
	rows, err := Table4(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Table4Executors) {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].RDDCheckSecs < rows[i-1].RDDCheckSecs {
			t.Fatalf("RDD checking overhead must grow with executors: %+v", rows)
		}
	}
	for _, r := range rows {
		if r.QCTSecs <= 0 {
			t.Fatalf("QCT missing for %d executors", r.Executors)
		}
	}
	if FormatTable4(rows) == "" {
		t.Fatal("format empty")
	}
}

func TestTable5Shape(t *testing.T) {
	rows, err := Table5(miniSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.LPSecs <= 0 || r.WallSecs <= 0 {
			t.Fatalf("%s: LP times missing: %+v", r.Workload, r)
		}
	}
	if FormatTable5(rows) == "" {
		t.Fatal("format empty")
	}
}

func TestTable6Shape(t *testing.T) {
	rows, err := Table6(miniSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byScheme := map[string]Table6Row{}
	for _, r := range rows {
		byScheme[r.Scheme] = r
	}
	ir, irc, bohr := byScheme["Iridium"], byScheme["Iridium-C"], byScheme["Bohr"]
	// The paper's ordering: Iridium < Iridium-C < Bohr total storage, but
	// cube schemes need LESS storage to actually serve queries.
	if !(ir.StoragePerNode < irc.StoragePerNode && irc.StoragePerNode < bohr.StoragePerNode) {
		t.Fatalf("storage ordering wrong: %+v", rows)
	}
	if irc.NeededByQueries >= ir.NeededByQueries {
		t.Fatalf("cube queries should need less storage than raw: %+v", rows)
	}
	if bohr.SimilarityMeta <= 0 || bohr.SimilarityMeta > irc.OLAPCubes {
		t.Fatalf("similarity metadata should be small but positive: %+v", bohr)
	}
	if FormatTable6(rows) == "" {
		t.Fatal("format empty")
	}
}

func TestTable7Shape(t *testing.T) {
	s := miniSetup()
	rows, err := Table7(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NormalQCT <= 0 || r.DynamicQCT <= 0 {
			t.Fatalf("%s: QCTs missing: %+v", r.Workload, r)
		}
		// §8.6: dynamic ≈ normal. At mini scale allow a generous band.
		ratio := r.DynamicQCT / r.NormalQCT
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s: dynamic/normal = %v, want ≈1", r.Workload, ratio)
		}
	}
	if FormatTable7(rows) == "" {
		t.Fatal("format empty")
	}
}

func TestWorkloadConfigSeedsDiffer(t *testing.T) {
	s := miniSetup()
	c1 := s.workloadConfig(workload.TPCDS, false, 0)
	c2 := s.workloadConfig(workload.TPCDS, false, 1)
	if c1.Seed == c2.Seed {
		t.Fatal("different runs must use different seeds")
	}
	c3 := s.workloadConfig(workload.Facebook, false, 0)
	if c1.Seed == c3.Seed {
		t.Fatal("different kinds must use different seeds")
	}
}

func TestOverheadCubeGeneration(t *testing.T) {
	rows, err := OverheadCubeGeneration(miniSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	logs, images := rows[0], rows[1]
	if logs.DataType != "text logs" || images.DataType != "images" {
		t.Fatalf("row order: %+v", rows)
	}
	// §8.5 shape: images cost more than logs (feature extraction), both in
	// the several-second band at 40GB scale; increments are ~5% of full.
	if images.FullBuildSecs <= logs.FullBuildSecs {
		t.Fatalf("images %v should cost more than logs %v", images.FullBuildSecs, logs.FullBuildSecs)
	}
	if logs.FullBuildSecs < 4 || logs.FullBuildSecs > 14 {
		t.Fatalf("log build %vs outside the paper's band (8.41s)", logs.FullBuildSecs)
	}
	if images.FullBuildSecs < 8 || images.FullBuildSecs > 25 {
		t.Fatalf("image build %vs outside the paper's band (15.05s)", images.FullBuildSecs)
	}
	ratio := logs.IncrementalSecs / logs.FullBuildSecs
	if ratio < 0.04 || ratio > 0.06 {
		t.Fatalf("incremental ratio %v, want ≈0.05", ratio)
	}
	if FormatOverhead(rows) == "" {
		t.Fatal("format empty")
	}
}

func TestAblationPlacement(t *testing.T) {
	rows, err := AblationPlacement(miniSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		if r.MeanQCT <= 0 {
			t.Fatalf("%s: missing QCT", r.Variant)
		}
		byName[r.Variant] = r
	}
	full := byName["full"]
	// Random record selection must lose data reduction versus the full
	// system — the core similarity claim isolated to the mover.
	if byName["random-mover"].MeanReduction >= full.MeanReduction {
		t.Errorf("random mover reduction %.1f%% should trail full %.1f%%",
			byName["random-mover"].MeanReduction, full.MeanReduction)
	}
	if FormatAblation(rows) == "" {
		t.Fatal("format empty")
	}
}
