package experiments

import (
	"fmt"
	"strings"

	"bohr/internal/faults"
	"bohr/internal/placement"
	"bohr/internal/stats"
	"bohr/internal/workload"
)

// FaultIntensities is the x-axis of the fault sweep: the fraction of
// sites hit by seeded degrade/crash/straggler events (0 = clean run).
var FaultIntensities = []float64{0, 0.15, 0.3, 0.45, 0.6}

// FaultSweepRow is one x-axis point of the fault sweep: mean QCT per
// scheme at one fault intensity, plus the number of injected events.
type FaultSweepRow struct {
	Intensity float64
	Events    int
	QCT       map[string]float64
}

// FaultSweep measures QCT versus fault intensity on the big data scan
// workload: at each intensity a seeded random fault schedule (link
// degrades, site crashes, stragglers) spans the movement window and the
// query run, and Iridium, Iridium-C and Bohr re-plan against the degraded
// view before executing under it. The schedule at each intensity is a
// deterministic function of the setup seed, so the sweep is byte-stable
// across invocations.
func FaultSweep(s Setup) ([]FaultSweepRow, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	schemes := []placement.SchemeID{placement.Iridium, placement.IridiumC, placement.Bohr}
	// Horizon covers the movement lag plus the query window the modeled
	// runs actually occupy at this scale.
	horizon := s.Lag + 60
	var rows []FaultSweepRow
	for i, intensity := range FaultIntensities {
		sched := faults.Random(stats.Split(s.Seed, int64(7700+i)), s.Sites, intensity, horizon)
		sf := s
		if !sched.Empty() {
			sf.Faults = sched
		}
		row := FaultSweepRow{Intensity: intensity, Events: len(sched.Events), QCT: map[string]float64{}}
		sums := make(map[string]float64, len(schemes))
		for run := 0; run < s.Runs; run++ {
			snap, err := sf.snapshot(workload.BigDataScan, false, run)
			if err != nil {
				return nil, err
			}
			for _, id := range schemes {
				res, err := sf.runScheme(id, snap, run)
				if err != nil {
					return nil, err
				}
				sums[id.String()] += res.MeanQCT
			}
		}
		for name, sum := range sums {
			row.QCT[name] = sum / float64(s.Runs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFaultSweep renders fault sweep rows as an aligned text table.
func FormatFaultSweep(rows []FaultSweepRow, schemes []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault sweep: QCT vs fault intensity (big data scan)\n")
	fmt.Fprintf(&b, "%-10s %7s", "Intensity", "Events")
	for _, s := range schemes {
		fmt.Fprintf(&b, "%12s", s)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10.2f %7d", r.Intensity, r.Events)
		for _, s := range schemes {
			fmt.Fprintf(&b, "%11.2fs", r.QCT[s])
		}
		b.WriteString("\n")
	}
	return b.String()
}
