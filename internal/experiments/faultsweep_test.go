package experiments

import (
	"strings"
	"testing"
)

func TestFaultSweepShape(t *testing.T) {
	s := QuickSetup()
	rows, err := FaultSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(FaultIntensities) {
		t.Fatalf("%d rows, want %d", len(rows), len(FaultIntensities))
	}
	for i, r := range rows {
		if r.Intensity != FaultIntensities[i] {
			t.Fatalf("row %d intensity %v, want %v", i, r.Intensity, FaultIntensities[i])
		}
		for _, scheme := range []string{"Iridium", "Iridium-C", "Bohr"} {
			if r.QCT[scheme] <= 0 {
				t.Fatalf("row %d missing %s QCT: %+v", i, scheme, r.QCT)
			}
		}
	}
	if rows[0].Events != 0 {
		t.Fatalf("zero intensity injected %d events", rows[0].Events)
	}
	if last := rows[len(rows)-1]; last.Events == 0 {
		t.Fatalf("max intensity injected no events")
	}
	// Faults cannot make Bohr faster than its own clean run.
	if rows[len(rows)-1].QCT["Bohr"] < rows[0].QCT["Bohr"] {
		t.Fatalf("QCT fell under max faults: clean %v, faulted %v",
			rows[0].QCT["Bohr"], rows[len(rows)-1].QCT["Bohr"])
	}
	out := FormatFaultSweep(rows, []string{"Iridium", "Iridium-C", "Bohr"})
	if !strings.Contains(out, "Fault sweep") || !strings.Contains(out, "Bohr") {
		t.Fatalf("formatter output:\n%s", out)
	}
}

func TestFaultSweepDeterministic(t *testing.T) {
	s := QuickSetup()
	a, err := FaultSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FaultSweep(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for scheme, qct := range a[i].QCT {
			if b[i].QCT[scheme] != qct {
				t.Fatalf("row %d %s: %v vs %v across identical sweeps", i, scheme, qct, b[i].QCT[scheme])
			}
		}
	}
}
