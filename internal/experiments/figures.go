package experiments

import (
	"context"
	"fmt"

	"bohr/internal/core"
	"bohr/internal/engine"
	"bohr/internal/obs"
	"bohr/internal/placement"
	"bohr/internal/stats"
	"bohr/internal/wan"
	"bohr/internal/workload"
)

// SchemeResult is one scheme's aggregate outcome on one workload run.
type SchemeResult struct {
	MeanQCT float64
	// ReductionPerSite is the per-site data reduction ratio (%) versus
	// vanilla in-place processing.
	ReductionPerSite []float64
	// IntermediateMB per site (summed across queries).
	IntermediateMB []float64
}

// runScheme prepares and runs one scheme against a cloned snapshot and
// returns its metrics, including data reduction against the vanilla
// baseline computed on the same snapshot.
func (s Setup) runScheme(id placement.SchemeID, snapshot *coreSnapshot, run int) (*SchemeResult, error) {
	c := snapshot.cluster.Clone()
	opts := s.PlacementOptions(run)
	if s.sink != nil {
		opts.Obs = obs.NewCollector()
	}
	sys, err := core.New(c, snapshot.workload, id, opts)
	if err != nil {
		return nil, err
	}
	if _, err := sys.Prepare(context.Background()); err != nil {
		return nil, fmt.Errorf("experiments: %v prepare: %w", id, err)
	}
	rep, err := sys.RunAll(context.Background())
	if err != nil {
		return nil, fmt.Errorf("experiments: %v run: %w", id, err)
	}
	reduction := core.DataReduction(snapshot.vanilla, rep.IntermediateMBPerSite)
	if s.sink != nil {
		r := sys.Report()
		r.Rep = run + 1
		r.DataReductionPct = reduction
		s.sink.reports = append(s.sink.reports, r)
	}
	return &SchemeResult{
		MeanQCT:          rep.MeanQCT,
		ReductionPerSite: reduction,
		IntermediateMB:   rep.IntermediateMBPerSite,
	}, nil
}

// coreSnapshot is one generated workload instance with its vanilla
// baseline, shared across schemes so every scheme sees identical data.
type coreSnapshot struct {
	cluster  *engine.Cluster
	workload *workload.Workload
	vanilla  []float64
}

// snapshot builds the shared instance for one (kind, locality, run).
func (s Setup) snapshot(kind workload.Kind, locality bool, run int) (*coreSnapshot, error) {
	c, w, err := s.Populated(kind, locality, run)
	if err != nil {
		return nil, err
	}
	vanilla, err := core.VanillaBaseline(context.Background(), c.Clone(), w)
	if err != nil {
		return nil, err
	}
	return &coreSnapshot{cluster: c, workload: w, vanilla: vanilla}, nil
}

// QCTRow is one bar group of Figures 6, 7 and 10: a workload's mean QCT
// under each scheme.
type QCTRow struct {
	Workload string
	QCT      map[string]float64
}

// qctFigure runs the given schemes over all five workloads, averaging
// over Setup.Runs repetitions.
func (s Setup) qctFigure(schemes []placement.SchemeID, locality bool) ([]QCTRow, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	var rows []QCTRow
	for _, kind := range workload.Kinds() {
		row := QCTRow{Workload: kind.String(), QCT: map[string]float64{}}
		sums := make(map[string]float64, len(schemes))
		for run := 0; run < s.Runs; run++ {
			snap, err := s.snapshot(kind, locality, run)
			if err != nil {
				return nil, err
			}
			for _, id := range schemes {
				res, err := s.runScheme(id, snap, run)
				if err != nil {
					return nil, err
				}
				sums[id.String()] += res.MeanQCT
			}
		}
		for name, sum := range sums {
			row.QCT[name] = sum / float64(s.Runs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure6 reproduces the QCT comparison with random initial placement:
// Iridium vs Iridium-C vs Bohr over the five workloads.
func Figure6(s Setup) ([]QCTRow, error) {
	return s.qctFigure([]placement.SchemeID{placement.Iridium, placement.IridiumC, placement.Bohr}, false)
}

// Figure7 is Figure 6 with locality-aware initial placement.
func Figure7(s Setup) ([]QCTRow, error) {
	return s.qctFigure([]placement.SchemeID{placement.Iridium, placement.IridiumC, placement.Bohr}, true)
}

// ReductionRow is one site's bar group of Figures 8, 9 and 11.
type ReductionRow struct {
	Site      string
	Reduction map[string]float64
}

// reductionFigure runs the given schemes on the big data workload and
// reports per-site data reduction ratios.
func (s Setup) reductionFigure(schemes []placement.SchemeID, locality bool) ([]ReductionRow, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	sums := map[string][]float64{}
	top := s.Topology()
	for run := 0; run < s.Runs; run++ {
		snap, err := s.snapshot(workload.BigDataScan, locality, run)
		if err != nil {
			return nil, err
		}
		for _, id := range schemes {
			res, err := s.runScheme(id, snap, run)
			if err != nil {
				return nil, err
			}
			if sums[id.String()] == nil {
				sums[id.String()] = make([]float64, s.Sites)
			}
			for i, r := range res.ReductionPerSite {
				sums[id.String()][i] += r
			}
		}
	}
	rows := make([]ReductionRow, s.Sites)
	for i := 0; i < s.Sites; i++ {
		rows[i] = ReductionRow{Site: top.Site(wan.SiteID(i)).Name, Reduction: map[string]float64{}}
		for _, id := range schemes {
			rows[i].Reduction[id.String()] = sums[id.String()][i] / float64(s.Runs)
		}
	}
	return rows, nil
}

// Figure8 reproduces per-site intermediate data reduction (random
// placement): Iridium vs Iridium-C vs Bohr on the big data workload.
func Figure8(s Setup) ([]ReductionRow, error) {
	return s.reductionFigure([]placement.SchemeID{placement.Iridium, placement.IridiumC, placement.Bohr}, false)
}

// Figure9 is Figure 8 with locality-aware initial placement.
func Figure9(s Setup) ([]ReductionRow, error) {
	return s.reductionFigure([]placement.SchemeID{placement.Iridium, placement.IridiumC, placement.Bohr}, true)
}

// microSchemes are the component micro-benchmark schemes of Figures 10/11.
func microSchemes() []placement.SchemeID {
	return []placement.SchemeID{placement.IridiumC, placement.BohrSim, placement.BohrJoint, placement.BohrRDD}
}

// Figure10 reproduces the component QCT microbenchmark: Iridium-C vs
// Bohr-Sim vs Bohr-Joint vs Bohr-RDD over the five workloads.
func Figure10(s Setup) ([]QCTRow, error) {
	return s.qctFigure(microSchemes(), false)
}

// Figure11 reproduces the component data-reduction microbenchmark on the
// big data workload.
func Figure11(s Setup) ([]ReductionRow, error) {
	return s.reductionFigure(microSchemes(), false)
}

// KSweepRow is one x-axis point of Figures 12/13: the probe size k and the
// metric per workload.
type KSweepRow struct {
	K     int
	Value map[string]float64
}

// ProbeKValues are the x-axis of Figures 12 and 13.
var ProbeKValues = []int{10, 15, 20, 25, 30, 100}

// kSweepKinds are the three workloads Figures 12/13 plot.
func kSweepKinds() []workload.Kind {
	return []workload.Kind{workload.BigDataUDF, workload.TPCDS, workload.Facebook}
}

// kSweep runs full Bohr at each probe budget and reports, per workload,
// either the mean data reduction (%) or the mean QCT. The sweep isolates
// similarity-estimation accuracy, which is the binding factor at moderate
// dataset counts; with many datasets the movement lag budget binds instead
// and every k produces the same budget-limited plan, flattening the curve.
// The sweep therefore caps the dataset count at four.
func (s Setup) kSweep(metricQCT bool) ([]KSweepRow, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if s.Datasets > 4 {
		s.Datasets = 4
	}
	var rows []KSweepRow
	for _, k := range ProbeKValues {
		row := KSweepRow{K: k, Value: map[string]float64{}}
		sk := s
		sk.ProbeK = k
		for _, kind := range kSweepKinds() {
			var sum float64
			for run := 0; run < s.Runs; run++ {
				snap, err := s.snapshot(kind, false, run)
				if err != nil {
					return nil, err
				}
				res, err := sk.runScheme(placement.Bohr, snap, run)
				if err != nil {
					return nil, err
				}
				if metricQCT {
					sum += res.MeanQCT
				} else {
					sum += stats.Mean(res.ReductionPerSite)
				}
			}
			row.Value[kind.String()] = sum / float64(s.Runs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure12 reproduces data reduction versus probe size k.
func Figure12(s Setup) ([]KSweepRow, error) { return s.kSweep(false) }

// Figure13 reproduces QCT versus probe size k.
func Figure13(s Setup) ([]KSweepRow, error) { return s.kSweep(true) }
