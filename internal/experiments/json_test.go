package experiments

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"bohr/internal/core"
	"bohr/internal/placement"
	"bohr/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// oneReport runs a single scheme on a quick snapshot in report-collecting
// mode and returns its machine-readable report.
func oneReport(t *testing.T) *core.Report {
	t.Helper()
	s := QuickSetup()
	s.EnableReports()
	snap, err := s.snapshot(workload.BigDataScan, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.runScheme(placement.Bohr, snap, 0); err != nil {
		t.Fatal(err)
	}
	reps := s.DrainReports()
	if len(reps) != 1 {
		t.Fatalf("drained %d reports, want 1", len(reps))
	}
	return reps[0]
}

// normalize zeroes every number in a decoded JSON tree, leaving keys and
// structure — the schema — intact. The golden file then pins the schema
// without being brittle to modeled-time calibration changes.
func normalize(v any) any {
	switch x := v.(type) {
	case map[string]any:
		for k, val := range x {
			x[k] = normalize(val)
		}
		return x
	case []any:
		for i, val := range x {
			x[i] = normalize(val)
		}
		return x
	case float64:
		return 0.0
	default:
		return v
	}
}

// TestReportSchemaGolden pins the bohrbench -json document schema: the
// exact key set of a per-scheme report (prepare/run summaries, phase-span
// trace, metric names) wrapped the way bohrbench wraps it. Regenerate with
// go test ./internal/experiments -run Golden -update
func TestReportSchemaGolden(t *testing.T) {
	doc := &core.Report{
		SchemaVersion: core.ReportSchemaVersion,
		Experiment:    "golden",
		Children:      []*core.Report{oneReport(t)},
	}
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var tree any
	if err := json.Unmarshal(raw, &tree); err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(normalize(tree), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "report_schema.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report schema drifted from golden file.\nIf the change is intentional, bump core.ReportSchemaVersion as needed and regenerate with -update.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestReportBytesDeterministic is the acceptance criterion that the JSON
// report is byte-identical across two runs with the same seed: spans carry
// modeled time only and map keys marshal sorted.
func TestReportBytesDeterministic(t *testing.T) {
	a, err := json.Marshal(oneReport(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(oneReport(t))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different report bytes:\n%s\n%s", a, b)
	}
}

// TestReportsOffByDefault checks the sink stays nil-cost: without
// EnableReports, runScheme attaches no collector and drains nothing.
func TestReportsOffByDefault(t *testing.T) {
	s := QuickSetup()
	snap, err := s.snapshot(workload.BigDataScan, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.runScheme(placement.Bohr, snap, 0); err != nil {
		t.Fatal(err)
	}
	if reps := s.DrainReports(); reps != nil {
		t.Fatalf("expected nil reports without EnableReports, got %d", len(reps))
	}
}
