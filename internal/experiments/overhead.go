package experiments

import (
	"fmt"

	"bohr/internal/olap"
	"bohr/internal/similarity"
	"bohr/internal/workload"
)

// OverheadRow reports the §8.5 OLAP-cube generation costs for one data
// type: building the cube for a full 40 GB node from scratch, and the
// incremental cost of folding in a 2 GB batch during a 30-second query
// interval.
type OverheadRow struct {
	DataType        string
	FullBuildSecs   float64
	IncrementalSecs float64
}

// Modeled per-record formatting costs. Text logs insert straight into the
// cube; images are first signed with LSH over their feature vectors, which
// is the ~1.8x factor the paper measures (15.05 s vs 8.41 s per 40 GB).
const (
	logInsertCost  = 3.4e-4 // seconds per (40GB-scaled) log row
	imageSignCost  = 2.6e-4 // seconds per image LSH signing
	imageBatchSize = 0.05   // 2 GB of 40 GB
)

// OverheadCubeGeneration reproduces §8.5's cube-generation measurements:
// it actually formats the scaled corpus into cubes (logs via olap inserts,
// images via VSM-style vectors + LSH bucketing) and reports modeled
// seconds at the paper's 40 GB scale.
func OverheadCubeGeneration(s Setup) ([]OverheadRow, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	// Text logs: one site's worth of rows into a cube.
	w, err := workload.Generate(workload.BigDataScan, s.workloadConfig(workload.BigDataScan, false, 0))
	if err != nil {
		return nil, err
	}
	ds := w.Datasets[0]
	cube := olap.NewCube(ds.Schema)
	logRows := 0
	for _, rows := range ds.Rows {
		if err := cube.InsertAll(rows); err != nil {
			return nil, err
		}
		logRows += len(rows)
	}
	// Modeled full-build time charges each 40GB-equivalent row the
	// calibrated per-row cost.
	logFull := float64(logRows) * logInsertCost * scaleToPaper(s, logRows)
	logInc := logFull * imageBatchSize

	// Images: synthesize vectors, sign with LSH, bucket into a cube.
	icfg := workload.DefaultImageConfig()
	icfg.Sites = 1
	icfg.VectorsPerSit = logRows // same corpus scale
	icfg.Dim = 64
	img, err := workload.GenerateImages("images", icfg)
	if err != nil {
		return nil, err
	}
	lsh, err := similarity.NewLSH(icfg.Dim, 64, s.Seed)
	if err != nil {
		return nil, err
	}
	if _, err := img.FeatureCube(0, lsh); err != nil {
		return nil, err
	}
	imgFull := float64(logRows) * (logInsertCost + imageSignCost) * scaleToPaper(s, logRows)
	imgInc := imgFull * imageBatchSize

	return []OverheadRow{
		{DataType: "text logs", FullBuildSecs: logFull, IncrementalSecs: logInc},
		{DataType: "images", FullBuildSecs: imgFull, IncrementalSecs: imgInc},
	}, nil
}

// scaleToPaper converts the scaled corpus's row count to the paper's
// 40 GB-per-node equivalent so modeled times are comparable across Setup
// sizes: the calibrated costs assume the default corpus.
func scaleToPaper(s Setup, rows int) float64 {
	def := DefaultSetup()
	defRows := def.RowsPerSite * def.Sites
	if rows == 0 {
		return 1
	}
	return float64(defRows) / float64(rows)
}

// FormatOverhead renders the §8.5 cube-generation rows.
func FormatOverhead(rows []OverheadRow) string {
	out := "Cube generation overhead (§8.5, 40GB-node equivalents)\n"
	for _, r := range rows {
		out += fmt.Sprintf("%-10s full build %6.2fs   2GB increment %5.2fs\n",
			r.DataType, r.FullBuildSecs, r.IncrementalSecs)
	}
	return out
}
