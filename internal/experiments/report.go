package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// FormatQCT renders QCT rows (Figures 6, 7, 10) as an aligned text table
// with schemes in the given column order.
func FormatQCT(title string, rows []QCTRow, schemes []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-18s", "Workload")
	for _, s := range schemes {
		fmt.Fprintf(&b, "%12s", s)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s", r.Workload)
		for _, s := range schemes {
			fmt.Fprintf(&b, "%11.2fs", r.QCT[s])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatReduction renders per-site reduction rows (Figures 8, 9, 11).
func FormatReduction(title string, rows []ReductionRow, schemes []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s", "Site")
	for _, s := range schemes {
		fmt.Fprintf(&b, "%12s", s)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s", r.Site)
		for _, s := range schemes {
			fmt.Fprintf(&b, "%11.2f%%", r.Reduction[s])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatKSweep renders probe-size sweep rows (Figures 12, 13).
func FormatKSweep(title, unit string, rows []KSweepRow) string {
	var series []string
	if len(rows) > 0 {
		for name := range rows[0].Value {
			series = append(series, name)
		}
		sort.Strings(series)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s", "k")
	for _, s := range series {
		fmt.Fprintf(&b, "%18s", s)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d", r.K)
		for _, s := range series {
			fmt.Fprintf(&b, "%17.2f%s", r.Value[s], unit)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatTable2 renders Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: dataset attributes and probe allocation\n")
	fmt.Fprintf(&b, "%-12s%-8s%-10s%-18s%-12s\n", "Dataset id", "# dims", "Size", "# probe records", "Check time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12d%-8d%-10.2f%-18d%-12.2fs\n", r.DatasetID, r.NumDims, r.SizeGB, r.ProbeRecords, r.CheckTimeSecs)
	}
	return b.String()
}

// FormatTable3 renders Table 3.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table 3: similarity checking time in pre-processing\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "k=%-5d %.2fs\n", r.K, r.CheckTimeSecs)
	}
	return b.String()
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table 4: RDD similarity checking overhead\n")
	fmt.Fprintf(&b, "%-22s", "# executors")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d", r.Executors)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-22s", "RDD similarity check")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9.3fs", r.RDDCheckSecs)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-22s", "QCT")
	for _, r := range rows {
		fmt.Fprintf(&b, "%9.2fs", r.QCTSecs)
	}
	b.WriteString("\n")
	return b.String()
}

// FormatTable5 renders Table 5.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5: LP solving time\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s modeled %.2fs  wall %.2fs\n", r.Workload, r.LPSecs, r.WallSecs)
	}
	return b.String()
}

// FormatTable6 renders Table 6.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	b.WriteString("Table 6: per-node storage overhead (GB, 40GB-input units)\n")
	fmt.Fprintf(&b, "%-12s%14s%14s%12s%12s\n", "Scheme", "Storage/node", "For queries", "OLAP cubes", "Sim meta")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s%14.2f%14.2f%12.2f%12.2f\n",
			r.Scheme, r.StoragePerNode, r.NeededByQueries, r.OLAPCubes, r.SimilarityMeta)
	}
	return b.String()
}

// FormatTable7 renders Table 7.
func FormatTable7(rows []Table7Row) string {
	var b strings.Builder
	b.WriteString("Table 7: highly dynamic datasets (full-data QCT)\n")
	fmt.Fprintf(&b, "%-18s%10s%10s\n", "Workload", "Normal", "Dynamic")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s%9.2fs%9.2fs\n", r.Workload, r.NormalQCT, r.DynamicQCT)
	}
	return b.String()
}
