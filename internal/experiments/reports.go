package experiments

import "bohr/internal/core"

// reportSink accumulates the machine-readable per-scheme-run reports an
// experiment produces. It hangs off Setup by pointer so the value copies
// the experiment functions pass around all feed the same sink.
type reportSink struct {
	reports []*core.Report
}

// EnableReports switches the setup into report-collecting mode: every
// runScheme invocation attaches a fresh observability collector and files
// a core.Report (scheme, workload, repetition, prepare/run summaries,
// phase-span trace, metrics) into the sink. Off by default — without it
// experiments run collector-free and pay nothing.
func (s *Setup) EnableReports() {
	if s.sink == nil {
		s.sink = &reportSink{}
	}
}

// DrainReports returns the reports accumulated since the last drain and
// clears the sink. Nil when EnableReports was never called.
func (s *Setup) DrainReports() []*core.Report {
	if s.sink == nil {
		return nil
	}
	out := s.sink.reports
	s.sink.reports = nil
	return out
}
