// Package experiments reproduces every table and figure of the paper's
// evaluation (§8): one function per exhibit, each returning the same rows
// or series the paper reports. The cmd/bohrbench binary and the root-level
// benchmarks are thin wrappers over these functions.
//
// Scale: the paper runs 400 GB per workload over ten EC2 regions with 300
// datasets. The reproduction scales record counts down (and the WAN
// bandwidth with them) so a full figure regenerates in seconds while every
// ratio the paper reports — who wins, by what factor, where curves
// saturate — is preserved. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"

	"bohr/internal/engine"
	"bohr/internal/faults"
	"bohr/internal/placement"
	"bohr/internal/stats"
	"bohr/internal/wan"
	"bohr/internal/workload"
)

// Setup fixes the scaled-down deployment every experiment runs on.
type Setup struct {
	// Sites is the number of DCs (the paper's ten EC2 regions).
	Sites int
	// Datasets per workload (paper: 300; scaled down).
	Datasets int
	// RowsPerSite per dataset (the paper's 40 GB/site, scaled).
	RowsPerSite int
	// KeysPerPool controls key-space size per similarity pool.
	KeysPerPool int
	// Overlap is the cross-site shared-key fraction.
	Overlap float64
	// BytesPerRecord converts records to wire bytes (wide log rows).
	BytesPerRecord float64
	// BaseMBps is the slowest bandwidth tier (others are 2.5x / 5x, §8.1).
	BaseMBps float64
	// Machines and ExecutorsPerMachine model each site's compute
	// (m4.4xlarge-class nodes).
	Machines, ExecutorsPerMachine int
	// ProbeK is the probe record budget (paper default: 30).
	ProbeK int
	// Lag is T, the recurring query interval in seconds.
	Lag float64
	// Runs averages each experiment over this many seeded repetitions
	// (paper: 5).
	Runs int
	// Seed drives everything.
	Seed int64
	// Faults optionally injects a deterministic fault schedule into every
	// run: degraded planning plus faulty modeled execution (nil = clean).
	Faults *faults.Schedule

	// sink collects machine-readable reports when EnableReports was
	// called; nil keeps experiments collector-free.
	sink *reportSink
}

// DefaultSetup is calibrated so QCTs land in the paper's 1–16 s range and
// a full figure regenerates in seconds.
func DefaultSetup() Setup {
	return Setup{
		Sites:               10,
		Datasets:            8,
		RowsPerSite:         2500,
		KeysPerPool:         400,
		Overlap:             0.5,
		BytesPerRecord:      10_000, // 10 KB wide rows
		BaseMBps:            3,
		Machines:            1,
		ExecutorsPerMachine: 4,
		ProbeK:              30,
		Lag:                 30,
		Runs:                3,
		Seed:                42,
	}
}

// QuickSetup is a smaller variant for unit tests.
func QuickSetup() Setup {
	s := DefaultSetup()
	s.Sites = 4
	s.Datasets = 3
	s.RowsPerSite = 500
	s.KeysPerPool = 100
	s.Runs = 1
	return s
}

func (s Setup) validate() error {
	if s.Sites <= 0 || s.Datasets <= 0 || s.RowsPerSite <= 0 {
		return fmt.Errorf("experiments: sites/datasets/rows must be positive")
	}
	if s.Runs <= 0 {
		return fmt.Errorf("experiments: runs must be positive")
	}
	return nil
}

// Topology builds the experiment WAN: the ten-region EC2 structure when
// Sites == 10, otherwise a tiered topology with the same 1x/2.5x/5x shape.
func (s Setup) Topology() *wan.Topology {
	if s.Sites == 10 {
		return wan.EC2TenRegions(s.BaseMBps)
	}
	names := make([]string, s.Sites)
	up := make([]float64, s.Sites)
	down := make([]float64, s.Sites)
	for i := range names {
		names[i] = fmt.Sprintf("site-%d", i)
		tier := []float64{1, 2.5, 5}[i%3]
		up[i] = s.BaseMBps * tier
		down[i] = s.BaseMBps * tier
	}
	t, err := wan.NewTopology(names, up, down)
	if err != nil {
		panic("experiments: topology: " + err.Error())
	}
	return t
}

// workloadConfig converts the setup into a generator config for one kind.
func (s Setup) workloadConfig(kind workload.Kind, locality bool, run int) workload.Config {
	cfg := workload.DefaultConfig(kind)
	cfg.Sites = s.Sites
	cfg.Datasets = s.Datasets
	cfg.RowsPerSite = s.RowsPerSite
	cfg.KeysPerPool = s.KeysPerPool
	cfg.Overlap = s.Overlap
	cfg.LocalityAware = locality
	cfg.Seed = stats.Split(s.Seed, int64(kind)*100+int64(run))
	return cfg
}

// BuildCluster creates an empty cluster over the experiment topology.
func (s Setup) BuildCluster() (*engine.Cluster, error) {
	return engine.NewCluster(s.Topology(), s.Machines, s.ExecutorsPerMachine, s.BytesPerRecord)
}

// PlacementOptions builds the placement options for one run.
func (s Setup) PlacementOptions(run int) placement.Options {
	return placement.Options{
		Lag:    s.Lag,
		ProbeK: s.ProbeK,
		Seed:   stats.Split(s.Seed, int64(9000+run)),
		Faults: s.Faults,
	}
}

// Populated generates a workload and a populated cluster for one run.
func (s Setup) Populated(kind workload.Kind, locality bool, run int) (*engine.Cluster, *workload.Workload, error) {
	w, err := workload.Generate(kind, s.workloadConfig(kind, locality, run))
	if err != nil {
		return nil, nil, err
	}
	c, err := s.BuildCluster()
	if err != nil {
		return nil, nil, err
	}
	if err := w.Populate(c); err != nil {
		return nil, nil, err
	}
	return c, w, nil
}
