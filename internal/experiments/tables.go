package experiments

import (
	"context"
	"fmt"
	"time"

	"bohr/internal/core"
	"bohr/internal/engine"
	"bohr/internal/olap"
	"bohr/internal/placement"
	"bohr/internal/rdd"
	"bohr/internal/stats"
	"bohr/internal/workload"
)

// Table2Row is one sample dataset of Table 2: its dimensionality, size,
// probe allocation and similarity checking time.
type Table2Row struct {
	DatasetID     int
	NumDims       int
	SizeGB        float64
	ProbeRecords  int
	CheckTimeSecs float64
}

// table2Profiles mirrors the paper's four sample datasets: ids 1/3/7/10
// with 15/42/13/8 dimensions and 0.87/4.32/3.21/0.57 GB. Sizes scale to
// row counts; the probe budget splits across the datasets "mainly based
// on the dataset size" with a total of ProbeK records.
var table2Profiles = []struct {
	id   int
	dims int
	gb   float64
}{
	{1, 15, 0.87},
	{3, 42, 4.32},
	{7, 13, 3.21},
	{10, 8, 0.57},
}

// Table2 reproduces the dataset-attributes table: it generates four
// synthetic datasets with the paper's dimensionalities and size ratios,
// allocates the probe budget by size, and reports modeled checking times.
func Table2(s Setup) ([]Table2Row, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	var totalGB float64
	for _, p := range table2Profiles {
		totalGB += p.gb
	}
	rng := stats.NewRand(stats.Split(s.Seed, 2))
	var rows []Table2Row
	for _, p := range table2Profiles {
		// Rows proportional to size.
		n := int(float64(s.RowsPerSite*s.Sites) * p.gb / totalGB)
		if n < 10 {
			n = 10
		}
		// Wide schema with the paper's dimensionality.
		dims := make([]string, p.dims)
		for d := range dims {
			dims[d] = fmt.Sprintf("d%02d", d)
		}
		cube := olap.NewCube(olap.MustSchema(dims...))
		for r := 0; r < n; r++ {
			coords := make([]string, p.dims)
			for d := range coords {
				coords[d] = fmt.Sprintf("v%d", rng.Intn(50))
			}
			if err := cube.Insert(olap.Row{Coords: coords, Measure: 1}); err != nil {
				return nil, err
			}
		}
		// Probe allocation by size (total = ProbeK across the datasets).
		probeRecords := int(float64(s.ProbeK)*p.gb/totalGB + 0.5)
		if probeRecords < 1 {
			probeRecords = 1
		}
		// Modeled checking time: the same cell-sort + probe-score model
		// the planner uses, scaled by the full dimensionality.
		check := float64(cube.NumCells())*float64(p.dims)*1.0e-6 +
			float64(probeRecords*(s.Sites-1))*float64(p.dims)*1.1e-3
		rows = append(rows, Table2Row{
			DatasetID:     p.id,
			NumDims:       p.dims,
			SizeGB:        p.gb,
			ProbeRecords:  probeRecords,
			CheckTimeSecs: check,
		})
	}
	return rows, nil
}

// Table3Row is one probe-size point of Table 3.
type Table3Row struct {
	K             int
	CheckTimeSecs float64
}

// Table3 reproduces similarity checking time in pre-processing as the
// probe size k varies, on the big data workload.
func Table3(s Setup) ([]Table3Row, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	c, w, err := s.Populated(workload.BigDataScan, false, 0)
	if err != nil {
		return nil, err
	}
	var rows []Table3Row
	for _, k := range ProbeKValues {
		sts, err := placement.ComputeAllStats(c, w, k)
		if err != nil {
			return nil, err
		}
		var total float64
		for _, st := range sts {
			total += st.CheckTime
		}
		rows = append(rows, Table3Row{K: k, CheckTimeSecs: total})
	}
	return rows, nil
}

// Table4Row is one executor count of Table 4.
type Table4Row struct {
	Executors    int
	RDDCheckSecs float64
	QCTSecs      float64
}

// Table4Executors is the x-axis of Table 4.
var Table4Executors = []int{2, 4, 6, 8}

// Table4 reproduces the RDD-similarity overhead analysis: checking time
// and QCT versus executors per node, on the TPC-DS workload with the
// default probe budget.
func Table4(s Setup) ([]Table4Row, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	var rows []Table4Row
	for _, execs := range Table4Executors {
		se := s
		se.ExecutorsPerMachine = execs
		snap, err := se.snapshot(workload.TPCDS, false, 0)
		if err != nil {
			return nil, err
		}
		c := snap.cluster.Clone()
		sys, err := core.New(c, snap.workload, placement.Bohr, se.PlacementOptions(0))
		if err != nil {
			return nil, err
		}
		if _, err := sys.Prepare(context.Background()); err != nil {
			return nil, err
		}
		rep, err := sys.RunAll(context.Background())
		if err != nil {
			return nil, err
		}
		// RDD checking overhead: re-run the assigner on the realized
		// partitions of the busiest site to report the per-query cost.
		overhead := rddOverhead(c, snap.workload, execs, se.Seed)
		rows = append(rows, Table4Row{
			Executors:    execs,
			RDDCheckSecs: overhead,
			QCTSecs:      rep.MeanQCT,
		})
	}
	return rows, nil
}

// rddOverhead measures the modeled DIMSUM checking time on the largest
// site's partitions for the first dataset.
func rddOverhead(c *engine.Cluster, w *workload.Workload, execs int, seed int64) float64 {
	name := w.Datasets[0].Name
	largest := 0
	for i := 1; i < c.N(); i++ {
		if len(c.Data[i].Records(name)) > len(c.Data[largest].Records(name)) {
			largest = i
		}
	}
	parts, err := engine.PartitionRecords(c.Data[largest].Records(name), execs*4)
	if err != nil || len(parts) == 0 {
		return 0
	}
	cfg := rdd.DefaultDimsum()
	cfg.Seed = seed
	mat, err := rdd.PairwiseSimilarity(parts, cfg)
	if err != nil {
		return 0
	}
	return mat.Overhead
}

// Table5Row is one workload of Table 5.
type Table5Row struct {
	Workload string
	// LPSecs is the modeled solve time (pivot-count based, included in
	// QCT); WallSecs is the actual wall-clock solve time on this machine.
	LPSecs   float64
	WallSecs float64
}

// Table5 reproduces LP solving time for the joint data/task placement on
// each workload.
func Table5(s Setup) ([]Table5Row, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	var rows []Table5Row
	for _, kind := range workload.Kinds() {
		c, w, err := s.Populated(kind, false, 0)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		plan, err := placement.PlanScheme(placement.BohrJoint, c, w, s.PlacementOptions(0))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			Workload: kind.String(),
			LPSecs:   plan.LPTime,
			WallSecs: time.Since(start).Seconds(),
		})
	}
	return rows, nil
}

// Table6Row is one scheme of Table 6 (per-node storage, GB-scaled to the
// paper's 40 GB-per-node corpus).
type Table6Row struct {
	Scheme          string
	StoragePerNode  float64
	NeededByQueries float64
	OLAPCubes       float64
	SimilarityMeta  float64
}

// Table6 reproduces the per-node storage overhead comparison. Byte counts
// are measured on the scaled corpus and re-expressed in the paper's
// 40 GB-per-node units so the overhead *ratios* are directly comparable.
func Table6(s Setup) ([]Table6Row, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	_, w, err := s.Populated(workload.BigDataScan, false, 0)
	if err != nil {
		return nil, err
	}
	// Raw input bytes per node (scaled corpus), and the conversion that
	// re-expresses measured bytes in the paper's 40 GB-per-node units.
	rawPerNode := float64(s.Datasets*s.RowsPerSite) * s.BytesPerRecord
	toGB := func(bytes float64) float64 { return bytes * 40.0 / rawPerNode }

	// Cube + similarity metadata bytes per node, measured on real cubes.
	var cubeBytes, metaBytes float64
	for _, ds := range w.Datasets {
		sets, err := ds.CubeSets()
		if err != nil {
			return nil, err
		}
		var per float64
		for _, cs := range sets {
			per += float64(cs.StorageBytes())
		}
		cubeBytes += per / float64(s.Sites)
		// Similarity metadata: probes + per-site minhash signatures.
		metaBytes += float64(s.ProbeK*64) + float64(s.Sites*64*8)
	}
	// HDFS-style bookkeeping overhead on raw data (the paper's Iridium
	// stores 42.32 GB for 40 GB of input).
	const rawOverhead = 1.058
	// Working set during query execution: shuffle buffers for raw
	// schemes; OLAP-operation scratch for cube schemes.
	const queryScratch = 1.038
	const cubeScratch = 1.065

	iridiumRaw := toGB(rawPerNode * rawOverhead)
	cubesGB := toGB(cubeBytes)
	metaGB := toGB(metaBytes)
	return []Table6Row{
		{
			Scheme:          "Iridium",
			StoragePerNode:  iridiumRaw,
			NeededByQueries: toGB(rawPerNode * rawOverhead * queryScratch),
		},
		{
			Scheme:          "Iridium-C",
			StoragePerNode:  iridiumRaw + cubesGB,
			NeededByQueries: cubesGB * cubeScratch,
			OLAPCubes:       cubesGB,
		},
		{
			Scheme:          "Bohr",
			StoragePerNode:  iridiumRaw + cubesGB + metaGB,
			NeededByQueries: cubesGB*cubeScratch + metaGB,
			OLAPCubes:       cubesGB,
			SimilarityMeta:  metaGB,
		},
	}, nil
}

// Table7Row is one workload of Table 7: static vs dynamic QCT.
type Table7Row struct {
	Workload   string
	NormalQCT  float64
	DynamicQCT float64
}

// table7Kinds are the workloads Table 7 reports.
func table7Kinds() []workload.Kind {
	return []workload.Kind{workload.TPCDS, workload.Facebook, workload.BigDataScan}
}

// Table7 reproduces the highly-dynamic-dataset evaluation (§8.6): the mean
// QCT when all data is present up front versus when data arrives in 5%
// batches between queries with periodic re-planning.
func Table7(s Setup) ([]Table7Row, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	var rows []Table7Row
	for _, kind := range table7Kinds() {
		snap, err := s.snapshot(kind, false, 0)
		if err != nil {
			return nil, err
		}
		// Normal: everything up front.
		res, err := s.runScheme(placement.Bohr, snap, 0)
		if err != nil {
			return nil, err
		}

		// Dynamic: 25% initial + 5% batches, replan every 5 queries. The
		// final queries see the full corpus; their mean is the comparable
		// number (earlier arrivals run on less data by design).
		emptyC, err := s.BuildCluster()
		if err != nil {
			return nil, err
		}
		dyn := core.DefaultDynamicConfig()
		dyn.Queries = 16 // 0.25 + 15×0.05 = full corpus by the last query
		drep, err := core.RunDynamic(context.Background(), emptyC, snap.workload, placement.Bohr, dyn,
			core.WithPlacement(s.PlacementOptions(0)))
		if err != nil {
			return nil, err
		}
		// Compare on the full-data tail (last ReplanEvery arrivals).
		tail := drep.QCTs[len(drep.QCTs)-dyn.ReplanEvery:]
		rows = append(rows, Table7Row{
			Workload:   kind.String(),
			NormalQCT:  res.MeanQCT,
			DynamicQCT: stats.Mean(tail),
		})
	}
	return rows, nil
}
