// Package faults is the deterministic fault-injection subsystem of the
// Bohr reproduction. One seed-driven Schedule of typed events — link
// degradation and blackout windows, site crash/restart, straggler
// slow-down factors, per-message drop and delay — is consumed by both
// substrates: the fluid internal/wan model applies events in modeled
// time (so results stay byte-deterministic for a fixed seed), and the
// live internal/netio path applies them through an Injector that wraps
// net.Conn and kills in-flight messages.
//
// The timeline convention shared with the engine: t = 0 is the start of
// the run (Prepare), data moves occupy [0, lag), and recurring queries
// start at the lag boundary. All event times are modeled seconds on
// that axis.
package faults

import (
	"encoding/json"
	"fmt"
	"math"
	"time"
)

// Kind enumerates the typed fault events a Schedule can carry.
type Kind int

const (
	// KindLinkDegrade scales a site's up/down link capacity by Factor
	// (0 < Factor ≤ 1) for the window's duration.
	KindLinkDegrade Kind = iota
	// KindLinkBlackout zeroes a site's WAN links for the window: the
	// site is unreachable but keeps computing.
	KindLinkBlackout
	// KindSiteCrash takes the whole site down for the window — no links,
	// no compute — and restarts it at End.
	KindSiteCrash
	// KindStraggler multiplies the site's compute time by Factor
	// (Factor ≥ 1) for the window.
	KindStraggler
	// KindMsgDrop drops each live-path message at the site with
	// probability Prob while the window is active (live substrate only).
	KindMsgDrop
	// KindMsgDelay delays each live-path message at the site by DelayMs
	// while the window is active (live substrate only).
	KindMsgDelay
)

var kindNames = [...]string{"degrade", "blackout", "crash", "straggler", "drop", "delay"}

// String returns the spec-language name of the kind ("degrade",
// "blackout", "crash", "straggler", "drop", "delay").
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// KindFromString parses a spec-language kind name.
func KindFromString(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("faults: unknown kind %q", s)
}

// MarshalJSON encodes the kind by its spec-language name.
func (k Kind) MarshalJSON() ([]byte, error) { return json.Marshal(k.String()) }

// UnmarshalJSON decodes a spec-language kind name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	kk, err := KindFromString(s)
	if err != nil {
		return err
	}
	*k = kk
	return nil
}

// Event is one fault window on the modeled timeline, active on
// [Start, End) at one site.
type Event struct {
	Kind  Kind    `json:"kind"`
	Site  int     `json:"site"`
	Start float64 `json:"start_s"`
	End   float64 `json:"end_s"`
	// Factor is the link-capacity multiplier for degrade events
	// (0 < Factor ≤ 1) or the compute-time multiplier for stragglers
	// (Factor ≥ 1).
	Factor float64 `json:"factor,omitempty"`
	// Prob is the per-message drop probability for drop events.
	Prob float64 `json:"prob,omitempty"`
	// DelayMs is the per-message added latency for delay events.
	DelayMs float64 `json:"delay_ms,omitempty"`
}

// active reports whether the event window covers modeled time t.
func (e Event) active(t float64) bool { return t >= e.Start && t < e.End }

// Schedule is one run's full fault plan: a seed (for any randomized
// live-path behavior such as message drops) plus the event list. The
// zero value and the nil pointer are both valid empty schedules — every
// query method is nil-safe and reports "no fault".
type Schedule struct {
	Seed   int64   `json:"seed"`
	Events []Event `json:"events"`
}

// Validate checks event well-formedness: non-negative site, a finite
// window with Start < End, degrade factors in (0, 1], straggler factors
// ≥ 1, drop probabilities in [0, 1].
func (s *Schedule) Validate() error {
	if s == nil {
		return nil
	}
	for i, e := range s.Events {
		if e.Site < 0 {
			return fmt.Errorf("faults: event %d: negative site %d", i, e.Site)
		}
		if math.IsNaN(e.Start) || math.IsInf(e.Start, 0) || math.IsNaN(e.End) || math.IsInf(e.End, 0) {
			return fmt.Errorf("faults: event %d: non-finite window [%v, %v)", i, e.Start, e.End)
		}
		if e.Start < 0 || e.Start >= e.End {
			return fmt.Errorf("faults: event %d: bad window [%v, %v)", i, e.Start, e.End)
		}
		switch e.Kind {
		case KindLinkDegrade:
			if !(e.Factor > 0 && e.Factor <= 1) {
				return fmt.Errorf("faults: event %d: degrade factor %v outside (0, 1]", i, e.Factor)
			}
		case KindStraggler:
			if e.Factor < 1 {
				return fmt.Errorf("faults: event %d: straggler factor %v < 1", i, e.Factor)
			}
		case KindMsgDrop:
			if e.Prob < 0 || e.Prob > 1 {
				return fmt.Errorf("faults: event %d: drop prob %v outside [0, 1]", i, e.Prob)
			}
		case KindMsgDelay:
			if e.DelayMs < 0 {
				return fmt.Errorf("faults: event %d: negative delay %vms", i, e.DelayMs)
			}
		case KindLinkBlackout, KindSiteCrash:
			// window-only events
		default:
			return fmt.Errorf("faults: event %d: unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Empty reports whether the schedule carries no events.
func (s *Schedule) Empty() bool { return s == nil || len(s.Events) == 0 }

// UpFactor returns the multiplier on site's uplink capacity at modeled
// time t: the product of active degrade factors, or 0 while a blackout
// or crash window is active.
func (s *Schedule) UpFactor(site int, t float64) float64 { return s.linkFactor(site, t) }

// DownFactor returns the multiplier on site's downlink capacity at
// modeled time t. Links degrade symmetrically in this model.
func (s *Schedule) DownFactor(site int, t float64) float64 { return s.linkFactor(site, t) }

func (s *Schedule) linkFactor(site int, t float64) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, e := range s.Events {
		if e.Site != site || !e.active(t) {
			continue
		}
		switch e.Kind {
		case KindLinkDegrade:
			f *= e.Factor
		case KindLinkBlackout, KindSiteCrash:
			return 0
		}
	}
	return f
}

// ComputeFactor returns the multiplier on site's compute time at
// modeled time t: the product of active straggler factors (≥ 1).
// Crash windows do not scale compute — SiteDown covers them.
func (s *Schedule) ComputeFactor(site int, t float64) float64 {
	if s == nil {
		return 1
	}
	f := 1.0
	for _, e := range s.Events {
		if e.Kind == KindStraggler && e.Site == site && e.active(t) {
			f *= e.Factor
		}
	}
	return f
}

// SiteDown reports whether a crash window covers site at modeled time t.
func (s *Schedule) SiteDown(site int, t float64) bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Kind == KindSiteCrash && e.Site == site && e.active(t) {
			return true
		}
	}
	return false
}

// MsgDelay returns the added per-message latency at site at modeled
// time t (live substrate).
func (s *Schedule) MsgDelay(site int, t float64) time.Duration {
	if s == nil {
		return 0
	}
	var ms float64
	for _, e := range s.Events {
		if e.Kind == KindMsgDelay && e.Site == site && e.active(t) {
			ms += e.DelayMs
		}
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// DropProb returns the per-message drop probability at site at modeled
// time t (live substrate). Overlapping drop windows combine as
// independent coins: 1 − Π(1 − p).
func (s *Schedule) DropProb(site int, t float64) float64 {
	if s == nil {
		return 0
	}
	keep := 1.0
	for _, e := range s.Events {
		if e.Kind == KindMsgDrop && e.Site == site && e.active(t) {
			keep *= 1 - e.Prob
		}
	}
	return 1 - keep
}

// NextBoundary returns the earliest event Start or End strictly after
// modeled time `after`, and whether one exists. The fluid simulator
// steps its piecewise-constant capacity model on these boundaries.
func (s *Schedule) NextBoundary(after float64) (float64, bool) {
	if s == nil {
		return 0, false
	}
	best, ok := 0.0, false
	consider := func(t float64) {
		if t > after && (!ok || t < best) {
			best, ok = t, true
		}
	}
	for _, e := range s.Events {
		consider(e.Start)
		consider(e.End)
	}
	return best, ok
}
