package faults

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "blackout:site=1,start=10,end=20;crash:site=2,start=40,end=70;degrade:site=0,start=30,end=90,factor=0.25;delay:site=0,start=0,end=5,delay_ms=20;drop:site=3,start=0,end=60,prob=0.5;straggler:site=4,start=5,end=95,factor=2.5"
	s, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 6 {
		t.Fatalf("parsed %d events, want 6", len(s.Events))
	}
	if got := s.String(); got != spec {
		t.Errorf("round trip drifted:\n got %s\nwant %s", got, spec)
	}
	// Whitespace tolerance and empty segments.
	s2, err := Parse(" crash: site=1 , start=1 , end=2 ; ;")
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Events) != 1 || s2.Events[0].Kind != KindSiteCrash {
		t.Fatalf("whitespace parse: %+v", s2.Events)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"meltdown:site=0,start=0,end=1",             // unknown kind
		"crash site=0",                              // missing colon
		"crash:site",                                // missing '='
		"crash:site=0,start=5,end=5",                // empty window
		"crash:site=0,start=-1,end=5",               // negative start
		"crash:site=-1,start=0,end=5",               // negative site
		"degrade:site=0,start=0,end=1,factor=0",     // zero degrade factor
		"degrade:site=0,start=0,end=1,factor=2",     // factor > 1
		"straggler:site=0,start=0,end=1,factor=0.5", // speedup straggler
		"drop:site=0,start=0,end=1,prob=1.5",        // prob > 1
		"crash:site=0,start=0,end=1,frob=2",         // unknown field
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestKindJSONRoundTrip(t *testing.T) {
	for k := KindLinkDegrade; k <= KindMsgDelay; k++ {
		raw, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatal(err)
		}
		if back != k {
			t.Errorf("kind %v round-tripped to %v", k, back)
		}
	}
	var bad Kind
	if err := json.Unmarshal([]byte(`"meltdown"`), &bad); err == nil {
		t.Error("unknown kind name unmarshalled without error")
	}
}

func TestScheduleFactors(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindLinkDegrade, Site: 0, Start: 10, End: 20, Factor: 0.5},
		{Kind: KindLinkDegrade, Site: 0, Start: 15, End: 30, Factor: 0.4},
		{Kind: KindLinkBlackout, Site: 1, Start: 5, End: 8},
		{Kind: KindSiteCrash, Site: 2, Start: 50, End: 60},
		{Kind: KindStraggler, Site: 3, Start: 0, End: 100, Factor: 3},
		{Kind: KindMsgDrop, Site: 4, Start: 0, End: 10, Prob: 0.5},
		{Kind: KindMsgDrop, Site: 4, Start: 5, End: 10, Prob: 0.5},
		{Kind: KindMsgDelay, Site: 5, Start: 0, End: 10, DelayMs: 25},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Overlapping degrades multiply; windows are half-open [Start, End).
	if got := s.UpFactor(0, 17); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("UpFactor(0,17) = %v, want 0.2", got)
	}
	if got := s.UpFactor(0, 10); got != 0.5 {
		t.Errorf("UpFactor(0,10) = %v, want 0.5 (start inclusive)", got)
	}
	if got := s.UpFactor(0, 20); got != 0.4 {
		t.Errorf("UpFactor(0,20) = %v, want 0.4 (end exclusive)", got)
	}
	if got := s.DownFactor(1, 6); got != 0 {
		t.Errorf("blackout DownFactor = %v, want 0", got)
	}
	if s.SiteDown(1, 6) {
		t.Error("blackout reported as SiteDown; only crashes take the site down")
	}
	if !s.SiteDown(2, 55) || s.SiteDown(2, 60) {
		t.Error("crash window membership wrong")
	}
	if got := s.UpFactor(2, 55); got != 0 {
		t.Errorf("crashed site UpFactor = %v, want 0", got)
	}
	if got := s.ComputeFactor(3, 50); got != 3 {
		t.Errorf("ComputeFactor = %v, want 3", got)
	}
	if got := s.ComputeFactor(2, 55); got != 1 {
		t.Errorf("crash must not scale compute, got %v", got)
	}
	// Two independent 0.5 coins → 0.75 combined drop probability.
	if got := s.DropProb(4, 7); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("DropProb = %v, want 0.75", got)
	}
	if got := s.MsgDelay(5, 3); got != 25*time.Millisecond {
		t.Errorf("MsgDelay = %v, want 25ms", got)
	}
	// Nil schedule is a no-op.
	var nils *Schedule
	if nils.UpFactor(0, 0) != 1 || nils.SiteDown(0, 0) || nils.DropProb(0, 0) != 0 {
		t.Error("nil schedule not a clean no-op")
	}
}

func TestNextBoundary(t *testing.T) {
	s := &Schedule{Events: []Event{
		{Kind: KindSiteCrash, Site: 0, Start: 10, End: 20},
		{Kind: KindLinkDegrade, Site: 1, Start: 15, End: 40, Factor: 0.5},
	}}
	want := []float64{10, 15, 20, 40}
	at := -1.0
	for _, w := range want {
		b, ok := s.NextBoundary(at)
		if !ok || b != w {
			t.Fatalf("NextBoundary(%v) = %v,%v, want %v", at, b, ok, w)
		}
		at = b
	}
	if _, ok := s.NextBoundary(40); ok {
		t.Error("boundary past the last event")
	}
	if _, ok := (*Schedule)(nil).NextBoundary(0); ok {
		t.Error("nil schedule has boundaries")
	}
}

func TestRandomDeterministicAndScaled(t *testing.T) {
	a := Random(7, 10, 0.5, 100)
	b := Random(7, 10, 0.5, 100)
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("same seed produced different schedules")
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Empty() {
		t.Fatal("intensity 0.5 over 10 sites produced no events")
	}
	for i, e := range a.Events {
		if e.Start < 0 || e.End > 100 {
			t.Errorf("event %d window [%v,%v) escapes horizon", i, e.Start, e.End)
		}
		if e.Site < 0 || e.Site >= 10 {
			t.Errorf("event %d site %d out of range", i, e.Site)
		}
	}
	if !Random(7, 10, 0, 100).Empty() {
		t.Error("intensity 0 should be empty")
	}
	if len(Random(7, 10, 1, 100).Events) <= len(a.Events) {
		t.Error("intensity 1 should carry more events than 0.5")
	}
	if c := Random(8, 10, 0.5, 100); c.String() == a.String() {
		t.Error("different seeds produced identical schedules")
	}
}
