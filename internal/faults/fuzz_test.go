package faults

import "testing"

// FuzzParse checks the fault-spec parser's total behavior on arbitrary
// input: it either returns an error or a validated schedule whose String
// rendering round-trips — Parse(s.String()).String() == s.String() — and
// it never panics.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"crash:site=2,start=40,end=70",
		"degrade:site=0,start=0,end=120,factor=0.3",
		"crash:site=2,start=40,end=70;degrade:site=0,start=30,end=90,factor=0.25",
		"partition:site=1,start=10,end=20;flaky:site=3,start=0,end=5,prob=0.1",
		"slow:site=0,start=1,end=2,delay_ms=250",
		"crash:",
		"crash",
		"bogus:site=1,start=0,end=1",
		"crash:site=x,start=0,end=1",
		"crash:site=1,start=5,end=1",
		"crash:site=1,start=0,end=1,wat=3",
		";;;",
		"crash:site=2.9,start=0,end=1",
		"degrade:site=0,start=0,end=1,factor=NaN",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := Parse(spec)
		if err != nil {
			return
		}
		if s == nil {
			t.Fatalf("Parse(%q) returned nil schedule and nil error", spec)
		}
		canon := s.String()
		rt, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(%q) succeeded but canonical form %q does not re-parse: %v", spec, canon, err)
		}
		if got := rt.String(); got != canon {
			t.Fatalf("round-trip drifted for %q: %q -> %q", spec, canon, got)
		}
	})
}
