package faults

import (
	"fmt"
	"net"
	"sync"
	"time"

	"bohr/internal/stats"
)

// Injector applies a Schedule to one live netio site. Fault windows are
// evaluated against wall time elapsed since the anchor, so the same
// schedule drives modeled and live runs on the same axis. Drop coins
// come from a seeded per-site stream (Split(schedule seed, site)), so
// the coin sequence — though not wall-clock interleaving — is
// reproducible. Safe for concurrent use.
type Injector struct {
	s      *Schedule
	site   int
	anchor time.Time

	mu  sync.Mutex
	rng interface{ Float64() float64 }
}

// Injector builds the live-path injector for one site, with fault time
// zero at anchor. A nil schedule yields a nil injector, which is a
// valid no-op everywhere.
func (s *Schedule) Injector(site int, anchor time.Time) *Injector {
	if s == nil {
		return nil
	}
	return &Injector{
		s: s, site: site, anchor: anchor,
		rng: stats.NewRand(stats.Split(s.Seed, int64(site))),
	}
}

// now returns seconds of fault time.
func (in *Injector) now() float64 { return time.Since(in.anchor).Seconds() }

// SiteDown reports whether the injector's site is inside a crash window
// right now. Nil-safe.
func (in *Injector) SiteDown() bool {
	if in == nil {
		return false
	}
	return in.s.SiteDown(in.site, in.now())
}

// WrapConn wraps a live connection with the site's fault behavior:
// writes fail while the site is crashed or when a drop coin fires
// (closing the conn, as a real network fault would), and are delayed by
// active delay windows. Nil-safe: a nil injector returns c unchanged.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	if in == nil {
		return c
	}
	return &faultConn{Conn: c, in: in}
}

type faultConn struct {
	net.Conn
	in *Injector
}

func (fc *faultConn) Write(p []byte) (int, error) {
	in := fc.in
	t := in.now()
	if in.s.SiteDown(in.site, t) {
		fc.Conn.Close()
		return 0, fmt.Errorf("faults: site %d crashed (t=%.1fs): %w", in.site, t, net.ErrClosed)
	}
	if p := in.s.DropProb(in.site, t); p > 0 {
		in.mu.Lock()
		coin := in.rng.Float64()
		in.mu.Unlock()
		if coin < p {
			fc.Conn.Close()
			return 0, fmt.Errorf("faults: site %d dropped message (t=%.1fs): %w", in.site, t, net.ErrClosed)
		}
	}
	if d := in.s.MsgDelay(in.site, t); d > 0 {
		time.Sleep(d)
	}
	return fc.Conn.Write(p)
}
