package faults

import (
	"net"
	"testing"
	"time"

	"bohr/internal/wan"
)

func TestInjectorWrapConn(t *testing.T) {
	s := &Schedule{Seed: 1, Events: []Event{
		{Kind: KindSiteCrash, Site: 0, Start: 0, End: 3600},
		{Kind: KindMsgDrop, Site: 1, Start: 0, End: 3600, Prob: 1},
	}}
	pipe := func() (net.Conn, net.Conn) { return net.Pipe() }

	// Crashed site: writes fail and the conn is closed.
	a, b := pipe()
	defer b.Close()
	fc := s.Injector(0, time.Now()).WrapConn(a)
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("write on crashed site succeeded")
	}

	// Certain drop: writes fail too.
	a2, b2 := pipe()
	defer b2.Close()
	fc2 := s.Injector(1, time.Now()).WrapConn(a2)
	if _, err := fc2.Write([]byte("x")); err == nil {
		t.Fatal("write with drop prob 1 succeeded")
	}

	// Healthy site: write passes through untouched.
	a3, b3 := pipe()
	defer b3.Close()
	go func() {
		buf := make([]byte, 1)
		b3.Read(buf)
	}()
	fc3 := s.Injector(2, time.Now()).WrapConn(a3)
	if _, err := fc3.Write([]byte("x")); err != nil {
		t.Fatalf("healthy write failed: %v", err)
	}
	fc3.Close()

	// Nil injector and nil schedule are pass-throughs.
	var nilS *Schedule
	if nilS.Injector(0, time.Now()) != nil {
		t.Error("nil schedule should build nil injector")
	}
	a4, b4 := pipe()
	if got := (*Injector)(nil).WrapConn(a4); got != a4 {
		t.Error("nil injector must return conn unchanged")
	}
	a4.Close()
	b4.Close()
}

func TestPlannerViewDemotesDeadSite(t *testing.T) {
	truth, err := wan.NewTopology(
		[]string{"a", "b", "c"},
		[]float64{100, 100, 100},
		[]float64{100, 100, 100},
	)
	if err != nil {
		t.Fatal(err)
	}
	s := &Schedule{Events: []Event{
		{Kind: KindSiteCrash, Site: 1, Start: 0, End: 3600},
		{Kind: KindLinkDegrade, Site: 2, Start: 0, End: 3600, Factor: 0.5},
	}}
	view := PlannerView(truth, s, 30, 6)
	if view.Sites[0].UpMBps != 100 {
		t.Errorf("healthy site capacity changed: %v", view.Sites[0].UpMBps)
	}
	if view.Sites[1].UpMBps > 1 {
		t.Errorf("dead site kept capacity %v, want epsilon", view.Sites[1].UpMBps)
	}
	if view.Sites[1].UpMBps <= 0 {
		t.Errorf("dead site capacity must stay positive for the LP, got %v", view.Sites[1].UpMBps)
	}
	got := view.Sites[2].UpMBps
	if got < 40 || got > 60 {
		t.Errorf("degraded site estimate %v, want ≈50", got)
	}
	// A schedule whose faults have all ended by planning time restores
	// the full view through smoothing.
	past := &Schedule{Events: []Event{{Kind: KindSiteCrash, Site: 1, Start: 0, End: 5}}}
	view2 := PlannerView(truth, past, 30, 6)
	if view2.Sites[1].UpMBps < 99 {
		t.Errorf("recovered site still demoted: %v", view2.Sites[1].UpMBps)
	}
	// Empty schedule: truth passes through.
	if PlannerView(truth, nil, 30, 6) != truth {
		t.Error("nil schedule should return truth unchanged")
	}
}
