package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Parse decodes the compact fault-spec language used by
// bohrctl -faults. Events are semicolon-separated; each is a kind name
// followed by a colon and comma-separated key=value pairs:
//
//	crash:site=2,start=40,end=70;degrade:site=0,start=30,end=90,factor=0.25
//
// Keys: site, start, end (seconds), factor, prob, delay_ms. Whitespace
// around separators is ignored. The result is validated.
func Parse(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		head, rest, found := strings.Cut(part, ":")
		if !found {
			return nil, fmt.Errorf("faults: event %q missing ':' after kind", part)
		}
		kind, err := KindFromString(strings.TrimSpace(head))
		if err != nil {
			return nil, err
		}
		e := Event{Kind: kind}
		for _, kv := range strings.Split(rest, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, found := strings.Cut(kv, "=")
			if !found {
				return nil, fmt.Errorf("faults: field %q in %q missing '='", kv, part)
			}
			key = strings.TrimSpace(key)
			x, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil {
				return nil, fmt.Errorf("faults: field %q in %q: %v", kv, part, err)
			}
			switch key {
			case "site":
				e.Site = int(x)
			case "start":
				e.Start = x
			case "end":
				e.End = x
			case "factor":
				e.Factor = x
			case "prob":
				e.Prob = x
			case "delay_ms":
				e.DelayMs = x
			default:
				return nil, fmt.Errorf("faults: unknown field %q in %q", key, part)
			}
		}
		s.Events = append(s.Events, e)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// String renders the schedule back into the spec language Parse
// accepts, with events in a stable order. Round-trips through Parse.
func (s *Schedule) String() string {
	if s.Empty() {
		return ""
	}
	parts := make([]string, 0, len(s.Events))
	for _, e := range s.Events {
		var b strings.Builder
		fmt.Fprintf(&b, "%s:site=%d,start=%s,end=%s", e.Kind, e.Site, ftoa(e.Start), ftoa(e.End))
		if e.Factor != 0 {
			fmt.Fprintf(&b, ",factor=%s", ftoa(e.Factor))
		}
		if e.Prob != 0 {
			fmt.Fprintf(&b, ",prob=%s", ftoa(e.Prob))
		}
		if e.DelayMs != 0 {
			fmt.Fprintf(&b, ",delay_ms=%s", ftoa(e.DelayMs))
		}
		parts = append(parts, b.String())
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

func ftoa(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
