package faults

import (
	"bohr/internal/wan"
)

// deadSiteScale is the capacity multiplier applied to sites the planner
// decides are unreachable. The LP handles arbitrary positive
// capacities, so an epsilon link (rather than a removed site) keeps the
// formulation square while pushing essentially all data and tasks off
// the dead site.
const deadSiteScale = 1e-3

// PlannerView builds the topology a fault-aware planner should hand to
// the LP at modeled planning time planT: it replays `rounds` bandwidth
// probing rounds (1 s apart, ending at planT) against the schedule —
// sites inside a crash or blackout window simply produce no sample,
// degraded links are observed at their scaled capacity — smooths them
// through a wan.BandwidthEstimator, and then demotes sites that look
// dead (down at planT, or never heard from during probing) to epsilon
// capacity so the LP re-solves around them. Deterministic: no noise
// beyond the schedule itself.
func PlannerView(truth *wan.Topology, s *Schedule, planT float64, rounds int) *wan.Topology {
	if s.Empty() {
		return truth
	}
	if rounds < 1 {
		rounds = 1
	}
	est, err := wan.NewBandwidthEstimator(truth.N(), 0.3)
	if err != nil {
		return truth // unreachable for a valid topology
	}
	for r := 0; r < rounds; r++ {
		tm := planT - float64(rounds-1-r)
		if tm < 0 {
			tm = 0
		}
		est.BeginRound()
		for i, site := range truth.Sites {
			upF, downF := s.UpFactor(i, tm), s.DownFactor(i, tm)
			if s.SiteDown(i, tm) || upF <= 0 || downF <= 0 {
				continue // dropout: a dead site/link yields no sample
			}
			_ = est.Observe(site.ID, site.UpMBps*upF, site.DownMBps*downF)
		}
	}
	out := est.Snapshot(truth)
	stale := make(map[wan.SiteID]bool)
	for _, id := range est.StaleSites(rounds) { // only never-observed sites exceed this age
		stale[id] = true
	}
	for i := range out.Sites {
		if s.SiteDown(i, planT) || s.linkFactor(i, planT) <= 0 || stale[wan.SiteID(i)] {
			out.Sites[i].UpMBps *= deadSiteScale
			out.Sites[i].DownMBps *= deadSiteScale
		}
	}
	return out
}
