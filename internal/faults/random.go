package faults

import (
	"bohr/internal/stats"
)

// Random generates a reproducible schedule over `sites` sites and a
// modeled horizon of `horizon` seconds, with severity and event count
// scaled by intensity in [0, 1]. intensity 0 yields an empty schedule;
// intensity 1 degrades most links heavily, crashes roughly a third of
// the sites for up to a quarter of the horizon each, and makes half the
// sites stragglers. The same (seed, sites, intensity, horizon) always
// yields the same schedule — this is what the fault-sweep experiment
// sweeps.
func Random(seed int64, sites int, intensity, horizon float64) *Schedule {
	s := &Schedule{Seed: seed}
	if intensity <= 0 || sites <= 0 || horizon <= 0 {
		return s
	}
	if intensity > 1 {
		intensity = 1
	}
	rng := stats.NewRand(stats.Split(seed, 1))

	// window draws a fault window of at most maxLen seconds, fully
	// inside [0, horizon).
	window := func(maxLen float64) (start, end float64) {
		length := maxLen * (0.25 + 0.75*rng.Float64())
		if length > horizon {
			length = horizon
		}
		start = rng.Float64() * (horizon - length)
		return start, start + length
	}

	nDegrade := int(intensity*float64(sites) + 0.5)
	for i := 0; i < nDegrade; i++ {
		start, end := window(horizon / 2)
		// Heavier intensity pushes the floor of the factor toward 0.1.
		factor := 1 - intensity*(0.3+0.6*rng.Float64())
		if factor < 0.1 {
			factor = 0.1
		}
		s.Events = append(s.Events, Event{
			Kind: KindLinkDegrade, Site: rng.Intn(sites),
			Start: start, End: end, Factor: factor,
		})
	}

	nCrash := int(intensity*float64(sites)/3 + 0.5)
	for i := 0; i < nCrash; i++ {
		start, end := window(horizon / 4)
		s.Events = append(s.Events, Event{
			Kind: KindSiteCrash, Site: rng.Intn(sites),
			Start: start, End: end,
		})
	}

	nStraggle := int(intensity*float64(sites)/2 + 0.5)
	for i := 0; i < nStraggle; i++ {
		start, end := window(horizon)
		s.Events = append(s.Events, Event{
			Kind: KindStraggler, Site: rng.Intn(sites),
			Start: start, End: end, Factor: 1 + 3*intensity*rng.Float64(),
		})
	}
	return s
}
