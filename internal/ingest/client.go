package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"bohr/internal/stats"
)

// PushResponse is the POST /v1/ingest response body (shared between the
// serve endpoint and the client).
type PushResponse struct {
	Accepted int    `json:"accepted"`
	Deduped  int    `json:"deduped"`
	Error    string `json:"error,omitempty"`
}

// ClientConfig tunes the streaming client. The zero value adopts the
// defaults noted on each field.
type ClientConfig struct {
	// BatchRecords is how many records accumulate before an automatic
	// send (default 256).
	BatchRecords int
	// RetryAttempts bounds resends of one batch on 429/5xx/transport
	// errors (default 8 — ingestion favors persistence).
	RetryAttempts int
	// RetryBase is the backoff base, doubled per retry with seeded
	// jitter (default 20ms).
	RetryBase time.Duration
	// Seed feeds the backoff jitter generator.
	Seed int64
	// StartOffset is the first offset to assign (default 1). A client
	// resuming a source mid-stream sets it; a restarted client left at
	// the default replays from the beginning and is deduplicated
	// server-side.
	StartOffset uint64
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.BatchRecords <= 0 {
		c.BatchRecords = 256
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 8
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 20 * time.Millisecond
	}
	if c.StartOffset == 0 {
		c.StartOffset = 1
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	return c
}

// ClientStats counts a client's activity.
type ClientStats struct {
	// Sent is records handed to Add.
	Sent uint64
	// Accepted is records the server admitted.
	Accepted uint64
	// Deduped is records the server recognized as replays.
	Deduped uint64
	// Retries is batch resends after 429s or transport faults.
	Retries uint64
}

// Client streams records of one source to an ingest endpoint, assigning
// monotonic offsets, batching sends, and retrying with seeded backoff on
// backpressure (429) and transport faults. Because every record carries
// its offset, a retry may resend records the server already accepted —
// the server's dedupe tracker drops them, which is what makes the retry
// loop safe. Client is not safe for concurrent use; one goroutine owns
// one source's stream, mirroring the per-source ordering the pipeline
// guarantees.
type Client struct {
	url    string
	source string
	cfg    ClientConfig
	rng    *rand.Rand
	next   uint64
	buf    []Record
	stats  ClientStats
}

// NewClient builds a streaming client for one source against an ingest
// URL (e.g. http://127.0.0.1:8080/v1/ingest).
func NewClient(url, source string, cfg ClientConfig) *Client {
	cfg = cfg.withDefaults()
	return &Client{
		url:    url,
		source: source,
		cfg:    cfg,
		rng:    stats.NewRand(stats.Split(cfg.Seed, 7002)),
		next:   cfg.StartOffset,
	}
}

// NextOffset is the offset the next Add will assign.
func (c *Client) NextOffset() uint64 { return c.next }

// Stats snapshots the client's counters.
func (c *Client) Stats() ClientStats { return c.stats }

// Add assigns the next offset to one row and buffers it, sending the
// batch when full.
func (c *Client) Add(ctx context.Context, dataset string, site int, coords []string, measure float64) error {
	c.buf = append(c.buf, Record{
		Source: c.source, Offset: c.next, Dataset: dataset, Site: site,
		Coords: coords, Measure: measure,
	})
	c.next++
	c.stats.Sent++
	if len(c.buf) >= c.cfg.BatchRecords {
		return c.Flush(ctx)
	}
	return nil
}

// Flush sends any buffered records now.
func (c *Client) Flush(ctx context.Context) error {
	if len(c.buf) == 0 {
		return nil
	}
	if err := c.send(ctx, c.buf); err != nil {
		return err
	}
	c.buf = c.buf[:0]
	return nil
}

// send posts one batch, retrying whole on backpressure and faults.
func (c *Client) send(ctx context.Context, recs []Record) error {
	body := EncodeBatch(recs)
	var lastErr error
	for attempt := 0; attempt <= c.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			c.stats.Retries++
			d := time.Duration(float64(c.cfg.RetryBase<<uint(attempt-1)) * (1 + c.rng.Float64()))
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "text/plain; charset=utf-8")
		resp, err := c.cfg.HTTPClient.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		var pr PushResponse
		_ = json.Unmarshal(data, &pr)
		switch {
		case resp.StatusCode == http.StatusOK:
			c.stats.Accepted += uint64(pr.Accepted)
			c.stats.Deduped += uint64(pr.Deduped)
			return nil
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
			// Backpressure or a transient server fault: partial
			// acceptance is possible, but resending the whole batch is
			// safe — the server dedupes on (source, offset).
			c.stats.Accepted += uint64(pr.Accepted)
			c.stats.Deduped += uint64(pr.Deduped)
			lastErr = fmt.Errorf("ingest: server %d: %s", resp.StatusCode, pr.Error)
			continue
		default:
			return fmt.Errorf("ingest: server rejected batch (%d): %s", resp.StatusCode, pr.Error)
		}
	}
	return fmt.Errorf("ingest: batch undelivered after %d retries: %w", c.cfg.RetryAttempts, lastErr)
}
