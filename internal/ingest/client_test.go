package ingest

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fakeEndpoint is a minimal /v1/ingest: it dedupes on (source, offset)
// like the real pipeline and can inject 429s and connection drops.
type fakeEndpoint struct {
	mu       sync.Mutex
	offsets  map[string]*Offsets
	recs     []Record
	rejectN  int // respond 429 to the next N requests
	dropN    int // kill the connection for the next N requests
	requests int
}

func (f *fakeEndpoint) handler(t *testing.T) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		defer f.mu.Unlock()
		f.requests++
		if f.dropN > 0 {
			f.dropN--
			panic(http.ErrAbortHandler)
		}
		if f.rejectN > 0 {
			f.rejectN--
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(PushResponse{Error: ErrOverloaded.Error()})
			return
		}
		body, _ := io.ReadAll(r.Body)
		recs, err := DecodeBatch(body)
		if err != nil {
			t.Errorf("server got undecodable batch: %v", err)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		var resp PushResponse
		if f.offsets == nil {
			f.offsets = map[string]*Offsets{}
		}
		for _, rec := range recs {
			tr := f.offsets[rec.Source]
			if tr == nil {
				tr = &Offsets{}
				f.offsets[rec.Source] = tr
			}
			if tr.Admit(rec.Offset) {
				f.recs = append(f.recs, rec)
				resp.Accepted++
			} else {
				resp.Deduped++
			}
		}
		json.NewEncoder(w).Encode(resp)
	}
}

func (f *fakeEndpoint) stored() []Record {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Record(nil), f.recs...)
}

func TestClientBatchesAndAssignsOffsets(t *testing.T) {
	ep := &fakeEndpoint{}
	srv := httptest.NewServer(ep.handler(t))
	defer srv.Close()
	cli := NewClient(srv.URL, "src", ClientConfig{BatchRecords: 3})
	ctx := context.Background()
	for i := 0; i < 7; i++ {
		if err := cli.Add(ctx, "ds", 0, []string{"x"}, float64(i)); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := cli.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	got := ep.stored()
	if len(got) != 7 {
		t.Fatalf("server stored %d records, want 7", len(got))
	}
	for i, r := range got {
		if r.Offset != uint64(i+1) || r.Source != "src" {
			t.Fatalf("record %d = %+v, want monotonic offsets from 1", i, r)
		}
	}
	if cli.NextOffset() != 8 {
		t.Fatalf("NextOffset = %d, want 8", cli.NextOffset())
	}
	if st := cli.Stats(); st.Sent != 7 || st.Accepted != 7 || st.Retries != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestClientRetriesBackpressureAndDrops(t *testing.T) {
	ep := &fakeEndpoint{rejectN: 2, dropN: 1}
	srv := httptest.NewServer(ep.handler(t))
	defer srv.Close()
	cli := NewClient(srv.URL, "src", ClientConfig{
		BatchRecords: 100, RetryBase: time.Millisecond,
	})
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := cli.Add(ctx, "ds", 1, []string{"k"}, 1); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := cli.Flush(ctx); err != nil {
		t.Fatalf("Flush through faults: %v", err)
	}
	if got := len(ep.stored()); got != 5 {
		t.Fatalf("server stored %d records, want 5", got)
	}
	if st := cli.Stats(); st.Retries < 3 {
		t.Fatalf("stats %+v: want >= 3 retries (drop + two 429s)", st)
	}
}

func TestClientRestartReplayDedupes(t *testing.T) {
	ep := &fakeEndpoint{}
	srv := httptest.NewServer(ep.handler(t))
	defer srv.Close()
	ctx := context.Background()
	send := func(cli *Client, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if err := cli.Add(ctx, "ds", 0, []string{"x"}, 1); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
		if err := cli.Flush(ctx); err != nil {
			t.Fatalf("Flush: %v", err)
		}
	}
	// First incarnation delivers offsets 1-6.
	send(NewClient(srv.URL, "src", ClientConfig{BatchRecords: 4}), 6)
	// The restarted source lost its cursor and replays from offset 1,
	// overlapping 1-6 before producing fresh 7-9. Nothing double-applies.
	cli2 := NewClient(srv.URL, "src", ClientConfig{BatchRecords: 4})
	send(cli2, 9)
	if got := len(ep.stored()); got != 9 {
		t.Fatalf("server stored %d records, want 9 distinct offsets", got)
	}
	if st := cli2.Stats(); st.Deduped != 6 || st.Accepted != 3 {
		t.Fatalf("replay stats %+v: want 6 deduped, 3 accepted", st)
	}
}
