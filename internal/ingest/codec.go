// Package ingest implements the streaming-ingestion subsystem: a
// partitioned pipeline that accepts records continuously, accumulates
// them in per-source bounded batches with size/interval flush triggers,
// applies admission control and throttling for hot sources, retries
// delivery with seeded backoff, and tracks per-source monotonic offsets
// so a restarted source replays at-least-once without double-applying
// (dedupe on (source, offset)). The wire format is line-oriented and
// self-contained, so the same codec backs the HTTP endpoint, the
// streaming client, and the fuzz harness.
package ingest

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Record is one ingested row on the wire: its origin (source + 1-based
// monotonic offset, the replay/dedupe identity), its destination
// (dataset + arrival site), and the row itself (coordinates + measure).
type Record struct {
	// Source identifies the producing stream; offsets are monotonic per
	// source.
	Source string
	// Offset is the record's 1-based position in its source's stream.
	// Zero is invalid: the dedupe watermark starts at 0 ("nothing
	// accepted yet").
	Offset uint64
	// Dataset names the destination dataset.
	Dataset string
	// Site is the arrival site index.
	Site int
	// Coords are the row's dimension coordinates.
	Coords []string
	// Measure is the row's numeric measure. Non-finite values are
	// rejected by the codec.
	Measure float64
}

// Batch is one delivery unit handed to an Applier: records of a single
// source, in acceptance order.
type Batch struct {
	Source  string
	Records []Record
}

// The wire format is one record per line, fields separated by '|':
//
//	source|offset|dataset|site|measure|coord1|coord2|...
//
// String fields percent-escape '%', '|', '\n' and '\r' so arbitrary
// coordinate values round-trip; numeric fields use their canonical Go
// renderings. A record may have zero coordinates (five fields).

const fieldSep = '|'

// fieldEscaper escapes the characters that would break field or line
// framing.
var fieldEscaper = strings.NewReplacer(
	"%", "%25", "|", "%7C", "\n", "%0A", "\r", "%0D",
)

func escapeField(s string) string { return fieldEscaper.Replace(s) }

func unescapeField(s string) (string, error) {
	if !strings.ContainsRune(s, '%') {
		return s, nil
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		if i+2 >= len(s) {
			return "", fmt.Errorf("ingest: truncated %% escape at byte %d", i)
		}
		hi, err1 := hexNibble(s[i+1])
		lo, err2 := hexNibble(s[i+2])
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("ingest: bad %% escape %q at byte %d", s[i:i+3], i)
		}
		b.WriteByte(hi<<4 | lo)
		i += 2
	}
	return b.String(), nil
}

func hexNibble(c byte) (byte, error) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', nil
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, nil
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, nil
	}
	return 0, fmt.Errorf("not hex: %q", c)
}

// EncodeRecord renders one record as a wire line (no trailing newline).
// The rendering is canonical: decoding it and re-encoding reproduces the
// same bytes.
func EncodeRecord(r Record) string {
	var b strings.Builder
	b.WriteString(escapeField(r.Source))
	b.WriteByte(fieldSep)
	b.WriteString(strconv.FormatUint(r.Offset, 10))
	b.WriteByte(fieldSep)
	b.WriteString(escapeField(r.Dataset))
	b.WriteByte(fieldSep)
	b.WriteString(strconv.Itoa(r.Site))
	b.WriteByte(fieldSep)
	b.WriteString(strconv.FormatFloat(r.Measure, 'g', -1, 64))
	for _, c := range r.Coords {
		b.WriteByte(fieldSep)
		b.WriteString(escapeField(c))
	}
	return b.String()
}

// DecodeRecord parses one wire line. It never panics: malformed input —
// missing fields, a zero or non-numeric offset, a negative site, a
// non-finite measure, a broken escape — yields an error.
func DecodeRecord(line string) (Record, error) {
	parts := strings.Split(line, string(fieldSep))
	if len(parts) < 5 {
		return Record{}, fmt.Errorf("ingest: record has %d fields, want at least 5", len(parts))
	}
	source, err := unescapeField(parts[0])
	if err != nil {
		return Record{}, fmt.Errorf("ingest: source: %w", err)
	}
	if source == "" {
		return Record{}, fmt.Errorf("ingest: record needs a non-empty source")
	}
	offset, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("ingest: offset %q: %w", parts[1], err)
	}
	if offset == 0 {
		return Record{}, fmt.Errorf("ingest: offsets are 1-based, got 0")
	}
	dataset, err := unescapeField(parts[2])
	if err != nil {
		return Record{}, fmt.Errorf("ingest: dataset: %w", err)
	}
	if dataset == "" {
		return Record{}, fmt.Errorf("ingest: record needs a non-empty dataset")
	}
	site, err := strconv.Atoi(parts[3])
	if err != nil {
		return Record{}, fmt.Errorf("ingest: site %q: %w", parts[3], err)
	}
	if site < 0 {
		return Record{}, fmt.Errorf("ingest: site %d negative", site)
	}
	measure, err := strconv.ParseFloat(parts[4], 64)
	if err != nil {
		return Record{}, fmt.Errorf("ingest: measure %q: %w", parts[4], err)
	}
	if math.IsNaN(measure) || math.IsInf(measure, 0) {
		return Record{}, fmt.Errorf("ingest: measure %v not finite", measure)
	}
	r := Record{Source: source, Offset: offset, Dataset: dataset, Site: site, Measure: measure}
	for i, p := range parts[5:] {
		c, err := unescapeField(p)
		if err != nil {
			return Record{}, fmt.Errorf("ingest: coord %d: %w", i, err)
		}
		r.Coords = append(r.Coords, c)
	}
	return r, nil
}

// EncodeBatch renders records one per line with a trailing newline —
// the POST /v1/ingest request body.
func EncodeBatch(recs []Record) []byte {
	var b strings.Builder
	for _, r := range recs {
		b.WriteString(EncodeRecord(r))
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// DecodeBatch parses a request body: one record per line, blank lines
// ignored. Errors carry the 1-based line number.
func DecodeBatch(data []byte) ([]Record, error) {
	var out []Record
	for i, line := range strings.Split(string(data), "\n") {
		if strings.TrimRight(line, "\r") == "" {
			continue
		}
		r, err := DecodeRecord(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", i+1, err)
		}
		out = append(out, r)
	}
	return out, nil
}
