package ingest

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Source: "s", Offset: 1, Dataset: "ds0", Site: 0, Measure: 1.5},
		{Source: "web-tier", Offset: 42, Dataset: "logs", Site: 3,
			Coords: []string{"url=/a", "US"}, Measure: -0.25},
		{Source: "a|b%c", Offset: 7, Dataset: "with\nnewline", Site: 1,
			Coords: []string{"", "pipe|pipe", "pct%25", "\r\n"}, Measure: 1e300},
		{Source: "s", Offset: math.MaxUint64, Dataset: "d", Site: 0,
			Coords: []string{"\x1f"}, Measure: 0},
	}
	for _, r := range recs {
		line := EncodeRecord(r)
		if strings.ContainsAny(line, "\n\r") {
			t.Fatalf("encoded line %q contains framing bytes", line)
		}
		got, err := DecodeRecord(line)
		if err != nil {
			t.Fatalf("DecodeRecord(%q): %v", line, err)
		}
		if got.Coords == nil {
			got.Coords = r.Coords // both empty
		}
		if !reflect.DeepEqual(got, r) {
			t.Fatalf("round trip: got %+v want %+v", got, r)
		}
		// Canonical: re-encoding the decoded record reproduces the bytes.
		if again := EncodeRecord(got); again != line {
			t.Fatalf("re-encode %q != %q", again, line)
		}
	}
}

func TestDecodeRecordRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"",
		"s|1|ds|0",                      // 4 fields
		"|1|ds|0|1",                     // empty source
		"s|0|ds|0|1",                    // zero offset
		"s|x|ds|0|1",                    // non-numeric offset
		"s|1||0|1",                      // empty dataset
		"s|1|ds|-1|1",                   // negative site
		"s|1|ds|x|1",                    // non-numeric site
		"s|1|ds|0|NaN",                  // non-finite measure
		"s|1|ds|0|+Inf",                 // non-finite measure
		"s|1|ds|0|nope",                 // non-numeric measure
		"s%|1|ds|0|1",                   // truncated escape
		"s%zz|1|ds|0|1",                 // bad escape digits
		"s|1|ds|0|1|ok|bad%9",           // truncated escape in coord
		"s|18446744073709551616|ds|0|1", // offset overflows uint64
	} {
		if _, err := DecodeRecord(line); err == nil {
			t.Errorf("DecodeRecord(%q) accepted malformed input", line)
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	recs := []Record{
		{Source: "a", Offset: 1, Dataset: "ds", Site: 0, Coords: []string{"x"}, Measure: 1},
		{Source: "b", Offset: 2, Dataset: "ds", Site: 1, Coords: []string{"y", "z"}, Measure: 2},
	}
	body := EncodeBatch(recs)
	got, err := DecodeBatch(body)
	if err != nil {
		t.Fatalf("DecodeBatch: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("batch round trip: got %+v want %+v", got, recs)
	}
	// Blank and CRLF-only lines are skipped.
	got, err = DecodeBatch([]byte("\n\r\n" + string(body) + "\n\n"))
	if err != nil || len(got) != 2 {
		t.Fatalf("batch with blanks: %v, %d records", err, len(got))
	}
	// Errors carry the 1-based line number.
	_, err = DecodeBatch([]byte("a|1|ds|0|1\nbroken\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 error, got %v", err)
	}
}

func TestEncodeBatchEmpty(t *testing.T) {
	if body := EncodeBatch(nil); len(body) != 0 {
		t.Fatalf("EncodeBatch(nil) = %q", body)
	}
	recs, err := DecodeBatch(nil)
	if err != nil || len(recs) != 0 {
		t.Fatalf("DecodeBatch(nil) = %v, %v", recs, err)
	}
}
