package ingest

import (
	"strings"
	"testing"
)

// FuzzRecordCodec drives the wire codec with arbitrary bytes: DecodeRecord
// must never panic, and every line it accepts must re-encode canonically —
// encode(decode(line)) decodes back to the same record, and a second
// decode/encode round is a fixed point.
func FuzzRecordCodec(f *testing.F) {
	f.Add("s|1|ds0|0|1.5")
	f.Add("web-tier|42|logs|3|-0.25|url=/a|US")
	f.Add("a%7Cb|7|d%0As|1|1e300||p%7Cq|%25")
	f.Add("s|18446744073709551615|d|0|0|%1f")
	f.Add("s|0|ds|0|1")
	f.Add("|||||")
	f.Add("s|1|ds|0|NaN")
	f.Add("s%|1|ds|0|1")
	f.Fuzz(func(t *testing.T, line string) {
		r, err := DecodeRecord(line)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		canon := EncodeRecord(r)
		r2, err := DecodeRecord(canon)
		if err != nil {
			t.Fatalf("canonical line %q rejected: %v", canon, err)
		}
		if again := EncodeRecord(r2); again != canon {
			t.Fatalf("encode not a fixed point: %q -> %q", canon, again)
		}
		if r2.Source != r.Source || r2.Offset != r.Offset || r2.Dataset != r.Dataset ||
			r2.Site != r.Site || len(r2.Coords) != len(r.Coords) {
			t.Fatalf("round trip changed record: %+v -> %+v", r, r2)
		}
		for i := range r.Coords {
			if r2.Coords[i] != r.Coords[i] {
				t.Fatalf("coord %d changed: %q -> %q", i, r.Coords[i], r2.Coords[i])
			}
		}
		if strings.ContainsAny(canon, "\n\r") {
			t.Fatalf("canonical line %q breaks framing", canon)
		}
	})
}
