package ingest

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// journalStub records appended batches and can be told to fail.
type journalStub struct {
	mu      sync.Mutex
	appends [][]Record
	fail    error
}

func (j *journalStub) Append(ctx context.Context, recs []Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.fail != nil {
		return j.fail
	}
	j.appends = append(j.appends, append([]Record(nil), recs...))
	return nil
}

func (j *journalStub) records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Record
	for _, a := range j.appends {
		out = append(out, a...)
	}
	return out
}

// TestPushJournalsAtAckBoundary: every newly accepted record is in the
// journal by the time Push returns — before any delivery — and resends
// the tracker dedupes are not journaled twice.
func TestPushJournalsAtAckBoundary(t *testing.T) {
	app := &recApplier{}
	j := &journalStub{}
	p := New(Config{MaxBatchRecords: 100, FlushInterval: -1, Journal: j}, app, nil)
	defer p.Close()
	ctx := context.Background()

	res, err := p.Push(ctx, rec("s", 1), rec("s", 2), rec("s", 3))
	if err != nil || res.Accepted != 3 {
		t.Fatalf("push: %+v, %v", res, err)
	}
	if app.records() != 0 {
		t.Fatal("records delivered before any flush; the journal window is empty")
	}
	got := j.records()
	if len(got) != 3 {
		t.Fatalf("journal holds %d records, want 3 (acked-but-unapplied must be covered)", len(got))
	}
	for i, r := range got {
		if r.Offset != uint64(i+1) {
			t.Fatalf("journal out of admission order: %+v", got)
		}
	}

	// A replayed resend acks via the tracker but journals nothing new.
	res, err = p.Push(ctx, rec("s", 2), rec("s", 3))
	if err != nil || res.Deduped != 2 || res.Accepted != 0 {
		t.Fatalf("resend: %+v, %v", res, err)
	}
	if n := len(j.records()); n != 3 {
		t.Fatalf("journal grew to %d records on a deduped resend", n)
	}
}

// TestJournalFailureWedgesPipeline: a failed append returns ErrJournal
// and the failure is sticky — later pushes fail even after the journal
// "recovers", because records acked meanwhile would be unjournaled.
func TestJournalFailureWedgesPipeline(t *testing.T) {
	app := &recApplier{}
	j := &journalStub{fail: errors.New("disk gone")}
	p := New(Config{MaxBatchRecords: 100, FlushInterval: -1, Journal: j}, app, nil)
	defer p.Close()
	ctx := context.Background()

	if _, err := p.Push(ctx, rec("s", 1)); !errors.Is(err, ErrJournal) {
		t.Fatalf("push with broken journal: %v, want ErrJournal", err)
	}
	j.mu.Lock()
	j.fail = nil
	j.mu.Unlock()
	if _, err := p.Push(ctx, rec("s", 2)); !errors.Is(err, ErrJournal) {
		t.Fatalf("push after journal recovery: %v, want sticky ErrJournal", err)
	}
}

// TestBarrierQuiescesDeliveries: inside the barrier fn every pushed
// record has been applied and the trackers agree — the invariant
// snapshot capture relies on.
func TestBarrierQuiescesDeliveries(t *testing.T) {
	app := &recApplier{}
	p := New(Config{MaxBatchRecords: 100, FlushInterval: -1}, app, nil)
	defer p.Close()
	ctx := context.Background()

	for off := uint64(1); off <= 5; off++ {
		if _, err := p.Push(ctx, rec("s", off)); err != nil {
			t.Fatal(err)
		}
	}
	ran := false
	err := p.Barrier(ctx, func() error {
		ran = true
		if app.records() != 5 {
			t.Fatalf("barrier fn sees %d applied records, want 5", app.records())
		}
		offs := p.OffsetsSnapshot()
		if len(offs) != 1 || offs[0].Watermark != 5 {
			t.Fatalf("barrier fn sees trackers %+v, want watermark 5", offs)
		}
		return nil
	})
	if err != nil || !ran {
		t.Fatalf("barrier: ran=%v err=%v", ran, err)
	}
	// Admission resumes after the barrier releases.
	if _, err := p.Push(ctx, rec("s", 6)); err != nil {
		t.Fatalf("push after barrier: %v", err)
	}
}

// TestKillAbandonsBufferedRecords: Kill stops the worker without the
// drain Close performs — buffered records stay undelivered (the journal
// is what recovers them), further pushes fail, and Close is a no-op.
func TestKillAbandonsBufferedRecords(t *testing.T) {
	app := &recApplier{}
	p := New(Config{MaxBatchRecords: 100, FlushInterval: -1}, app, nil)
	ctx := context.Background()

	for off := uint64(1); off <= 4; off++ {
		if _, err := p.Push(ctx, rec("s", off)); err != nil {
			t.Fatal(err)
		}
	}
	p.Kill()
	if app.records() != 0 {
		t.Fatalf("kill delivered %d buffered records, want 0", app.records())
	}
	if _, err := p.Push(ctx, rec("s", 5)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after kill: %v, want ErrClosed", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close after kill: %v", err)
	}
}

// TestRestoreOffsetsSeedsDedupe: a pipeline built with recovered
// trackers dedupes a client replay exactly like the pre-crash one.
func TestRestoreOffsetsSeedsDedupe(t *testing.T) {
	app := &recApplier{}
	p := New(Config{
		MaxBatchRecords: 100, FlushInterval: -1,
		RestoreOffsets: []SourceOffsets{{Source: "s", Watermark: 3}},
	}, app, nil)
	defer p.Close()
	ctx := context.Background()

	if w := p.Watermark("s"); w != 3 {
		t.Fatalf("restored watermark %d, want 3", w)
	}
	var recs []Record
	for off := uint64(1); off <= 5; off++ {
		recs = append(recs, rec("s", off))
	}
	res, err := p.Push(ctx, recs...)
	if err != nil || res.Accepted != 2 || res.Deduped != 3 {
		t.Fatalf("replay against restored trackers: %+v, %v", res, err)
	}
	if w := p.Watermark("s"); w != 5 {
		t.Fatalf("watermark %d after replay, want 5", w)
	}
}
