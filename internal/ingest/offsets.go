package ingest

import (
	"fmt"
	"sort"
)

// Offsets remembers which offsets of one source have been accepted, so a
// restarted source replaying its stream is deduplicated instead of
// double-applied. It keeps a contiguous watermark (every offset ≤
// watermark accepted) plus a sparse set of accepted offsets above it; an
// in-order stream compacts the set to empty, so memory stays O(gap) —
// bounded in practice by the pipeline's per-source admission cap, since a
// source cannot open a wider gap than it has records in flight.
//
// The zero value is ready to use (nothing accepted yet). Offsets is not
// self-synchronized; the pipeline guards it with its own mutex.
type Offsets struct {
	watermark uint64
	above     map[uint64]struct{}
}

// Admit records the offset as accepted and reports whether it was new.
// Duplicates — at or below the watermark, or already in the sparse set —
// return false and change nothing.
func (t *Offsets) Admit(off uint64) bool {
	if off <= t.watermark {
		return false
	}
	if _, dup := t.above[off]; dup {
		return false
	}
	if t.above == nil {
		t.above = make(map[uint64]struct{})
	}
	t.above[off] = struct{}{}
	for {
		if _, ok := t.above[t.watermark+1]; !ok {
			break
		}
		delete(t.above, t.watermark+1)
		t.watermark++
	}
	return true
}

// Seen reports whether the offset has been accepted.
func (t *Offsets) Seen(off uint64) bool {
	if off <= t.watermark {
		return true
	}
	_, ok := t.above[off]
	return ok
}

// Watermark is the highest offset below which every offset has been
// accepted.
func (t *Offsets) Watermark() uint64 { return t.watermark }

// Above is the sparse set's size: accepted offsets above the watermark,
// i.e. the tracker's out-of-order replay-gap memory.
func (t *Offsets) Above() int { return len(t.above) }

// Export returns the tracker's full accepted-set in canonical form: the
// watermark plus the sparse above-watermark offsets sorted ascending. The
// sorted order makes the export deterministic — the same accepted set
// always serializes to the same bytes, which is what lets snapshots of
// tracker state be compared and replayed byte-stably.
func (t *Offsets) Export() (watermark uint64, above []uint64) {
	if len(t.above) == 0 {
		return t.watermark, nil
	}
	above = make([]uint64, 0, len(t.above))
	for off := range t.above {
		above = append(above, off)
	}
	sort.Slice(above, func(i, j int) bool { return above[i] < above[j] })
	return t.watermark, above
}

// Restore resets the tracker to a previously exported state. Offsets at
// or below the watermark in the sparse list are rejected (they would be
// silently redundant, which means the snapshot is malformed), as are
// duplicates. Restore accepts the sparse set in any order and re-compacts
// it, so a hand-edited or merged snapshot still loads into canonical
// form.
func (t *Offsets) Restore(watermark uint64, above []uint64) error {
	nt := Offsets{watermark: watermark}
	for _, off := range above {
		if off <= watermark {
			return fmt.Errorf("ingest: restore offsets: sparse offset %d at or below watermark %d", off, watermark)
		}
		if !nt.Admit(off) {
			return fmt.Errorf("ingest: restore offsets: duplicate sparse offset %d", off)
		}
	}
	*t = nt
	return nil
}

// SourceOffsets is one source's exported tracker state — the snapshot
// form durability persists and recovery replays. Above is sorted
// ascending (see Offsets.Export).
type SourceOffsets struct {
	Source    string   `json:"source"`
	Watermark uint64   `json:"watermark"`
	Above     []uint64 `json:"above,omitempty"`
}
