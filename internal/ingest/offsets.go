package ingest

// offsetTracker remembers which offsets of one source have been accepted,
// so a restarted source replaying its stream is deduplicated instead of
// double-applied. It keeps a contiguous watermark (every offset ≤
// watermark accepted) plus a sparse set of accepted offsets above it; an
// in-order stream compacts the set to empty, so memory stays O(gap) —
// bounded in practice by the pipeline's per-source admission cap, since a
// source cannot open a wider gap than it has records in flight.
type offsetTracker struct {
	watermark uint64
	above     map[uint64]struct{}
}

// admit records the offset as accepted and reports whether it was new.
// Duplicates — at or below the watermark, or already in the sparse set —
// return false and change nothing.
func (t *offsetTracker) admit(off uint64) bool {
	if off <= t.watermark {
		return false
	}
	if _, dup := t.above[off]; dup {
		return false
	}
	if t.above == nil {
		t.above = make(map[uint64]struct{})
	}
	t.above[off] = struct{}{}
	for {
		if _, ok := t.above[t.watermark+1]; !ok {
			break
		}
		delete(t.above, t.watermark+1)
		t.watermark++
	}
	return true
}

// seen reports whether the offset has been accepted.
func (t *offsetTracker) seen(off uint64) bool {
	if off <= t.watermark {
		return true
	}
	_, ok := t.above[off]
	return ok
}

// Watermark is the highest offset below which every offset has been
// accepted.
func (t *offsetTracker) Watermark() uint64 { return t.watermark }

// Above is the sparse set's size: accepted offsets above the watermark,
// i.e. the tracker's out-of-order replay-gap memory.
func (t *offsetTracker) Above() int { return len(t.above) }
