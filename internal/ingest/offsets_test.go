package ingest

import "testing"

func TestOffsetTrackerInOrder(t *testing.T) {
	var tr offsetTracker
	for off := uint64(1); off <= 100; off++ {
		if !tr.admit(off) {
			t.Fatalf("fresh offset %d not admitted", off)
		}
	}
	if tr.Watermark() != 100 {
		t.Fatalf("watermark = %d, want 100", tr.Watermark())
	}
	if len(tr.above) != 0 {
		t.Fatalf("in-order stream left %d sparse entries", len(tr.above))
	}
	for off := uint64(1); off <= 100; off++ {
		if tr.admit(off) {
			t.Fatalf("replayed offset %d admitted twice", off)
		}
		if !tr.seen(off) {
			t.Fatalf("accepted offset %d not seen", off)
		}
	}
	if tr.seen(101) {
		t.Fatal("unseen offset reported seen")
	}
}

func TestOffsetTrackerOutOfOrderCompacts(t *testing.T) {
	var tr offsetTracker
	// Arrive 2,3,5 first: watermark stays 0, all sparse.
	for _, off := range []uint64{2, 3, 5} {
		if !tr.admit(off) {
			t.Fatalf("offset %d not admitted", off)
		}
	}
	if tr.Watermark() != 0 {
		t.Fatalf("watermark = %d before gap fill", tr.Watermark())
	}
	// Filling 1 compacts through the contiguous run 1-3.
	if !tr.admit(1) {
		t.Fatal("gap offset 1 not admitted")
	}
	if tr.Watermark() != 3 {
		t.Fatalf("watermark = %d after filling 1, want 3", tr.Watermark())
	}
	// Filling 4 compacts through 5.
	if !tr.admit(4) {
		t.Fatal("gap offset 4 not admitted")
	}
	if tr.Watermark() != 5 || len(tr.above) != 0 {
		t.Fatalf("watermark = %d, sparse = %d; want 5, 0", tr.Watermark(), len(tr.above))
	}
	// Everything admitted so far is a dup now.
	for off := uint64(1); off <= 5; off++ {
		if tr.admit(off) {
			t.Fatalf("offset %d re-admitted", off)
		}
	}
}
