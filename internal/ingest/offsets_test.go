package ingest

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

func TestOffsetTrackerInOrder(t *testing.T) {
	var tr Offsets
	for off := uint64(1); off <= 100; off++ {
		if !tr.Admit(off) {
			t.Fatalf("fresh offset %d not admitted", off)
		}
	}
	if tr.Watermark() != 100 {
		t.Fatalf("watermark = %d, want 100", tr.Watermark())
	}
	if len(tr.above) != 0 {
		t.Fatalf("in-order stream left %d sparse entries", len(tr.above))
	}
	for off := uint64(1); off <= 100; off++ {
		if tr.Admit(off) {
			t.Fatalf("replayed offset %d admitted twice", off)
		}
		if !tr.Seen(off) {
			t.Fatalf("accepted offset %d not seen", off)
		}
	}
	if tr.Seen(101) {
		t.Fatal("unseen offset reported seen")
	}
}

func TestOffsetTrackerOutOfOrderCompacts(t *testing.T) {
	var tr Offsets
	// Arrive 2,3,5 first: watermark stays 0, all sparse.
	for _, off := range []uint64{2, 3, 5} {
		if !tr.Admit(off) {
			t.Fatalf("offset %d not admitted", off)
		}
	}
	if tr.Watermark() != 0 {
		t.Fatalf("watermark = %d before gap fill", tr.Watermark())
	}
	// Filling 1 compacts through the contiguous run 1-3.
	if !tr.Admit(1) {
		t.Fatal("gap offset 1 not admitted")
	}
	if tr.Watermark() != 3 {
		t.Fatalf("watermark = %d after filling 1, want 3", tr.Watermark())
	}
	// Filling 4 compacts through 5.
	if !tr.Admit(4) {
		t.Fatal("gap offset 4 not admitted")
	}
	if tr.Watermark() != 5 || len(tr.above) != 0 {
		t.Fatalf("watermark = %d, sparse = %d; want 5, 0", tr.Watermark(), len(tr.above))
	}
	// Everything admitted so far is a dup now.
	for off := uint64(1); off <= 5; off++ {
		if tr.Admit(off) {
			t.Fatalf("offset %d re-admitted", off)
		}
	}
}

// TestOffsetsExportPinnedEncoding pins the serialized form snapshots
// depend on: the sparse set exports sorted ascending regardless of
// admission order, and the SourceOffsets JSON encoding is stable. A
// change here is a snapshot-format change and must be treated as one.
func TestOffsetsExportPinnedEncoding(t *testing.T) {
	var tr Offsets
	// Admit out of order so a map-order export would be caught.
	for _, off := range []uint64{9, 3, 12, 1, 2, 7} {
		tr.Admit(off)
	}
	// 1,2,3 compact into the watermark; 7,9,12 stay sparse.
	wm, above := tr.Export()
	if wm != 3 {
		t.Fatalf("watermark = %d, want 3", wm)
	}
	if want := []uint64{7, 9, 12}; !reflect.DeepEqual(above, want) {
		t.Fatalf("above = %v, want %v", above, want)
	}
	b, err := json.Marshal(SourceOffsets{Source: "web", Watermark: wm, Above: above})
	if err != nil {
		t.Fatal(err)
	}
	const pinned = `{"source":"web","watermark":3,"above":[7,9,12]}`
	if string(b) != pinned {
		t.Fatalf("SourceOffsets encoding drifted:\n got %s\nwant %s", b, pinned)
	}
	// An empty sparse set omits the field entirely.
	b, err = json.Marshal(SourceOffsets{Source: "web", Watermark: 42})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"source":"web","watermark":42}` {
		t.Fatalf("empty-sparse encoding drifted: %s", b)
	}
}

// TestOffsetsExportRestoreRoundTrip drives random admission patterns
// through export → restore (including a shuffled sparse list) and checks
// the restored tracker is behaviorally identical.
func TestOffsetsExportRestoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		var tr Offsets
		hi := uint64(1 + rng.Intn(60))
		for i := 0; i < 40; i++ {
			tr.Admit(uint64(1 + rng.Intn(int(hi))))
		}
		wm, above := tr.Export()
		// Restore from a shuffled copy: canonical form must not matter.
		shuffled := append([]uint64(nil), above...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		var back Offsets
		if err := back.Restore(wm, shuffled); err != nil {
			t.Fatalf("trial %d: restore: %v", trial, err)
		}
		for off := uint64(1); off <= hi+2; off++ {
			if back.Seen(off) != tr.Seen(off) {
				t.Fatalf("trial %d: offset %d seen mismatch", trial, off)
			}
		}
		wm2, above2 := back.Export()
		if wm2 != wm || !reflect.DeepEqual(above2, above) {
			t.Fatalf("trial %d: round trip changed state: (%d,%v) -> (%d,%v)", trial, wm, above, wm2, above2)
		}
	}
	// Malformed snapshots are rejected, not silently absorbed.
	var bad Offsets
	if err := bad.Restore(5, []uint64{4}); err == nil {
		t.Fatal("sparse offset below watermark accepted")
	}
	if err := bad.Restore(5, []uint64{7, 7}); err == nil {
		t.Fatal("duplicate sparse offset accepted")
	}
}
