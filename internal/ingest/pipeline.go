package ingest

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sort"
	"sync"
	"time"

	"bohr/internal/obs"
	"bohr/internal/stats"
)

// ErrOverloaded is returned by Push when admission control rejects a
// record — the source's buffer is at capacity or the source is over its
// admission rate. The HTTP endpoint maps it to 429; clients back off and
// resend (the dedupe tracker makes resending the whole batch safe).
var ErrOverloaded = errors.New("ingest: source overloaded, retry later")

// ErrThrottled is the rate-limit flavor of ErrOverloaded: the source
// exceeded its admission rate. errors.Is(ErrThrottled, ErrOverloaded)
// holds, so one check covers both backpressure causes.
var ErrThrottled = fmt.Errorf("%w (admission rate exceeded)", ErrOverloaded)

// ErrClosed is returned by Push after Close.
var ErrClosed = errors.New("ingest: pipeline closed")

// ErrJournal is returned by Push when the durability journal cannot
// persist admitted records. The failure is sticky: a pipeline whose
// journal broke refuses all further pushes, because acking a replayed
// record that was never journaled (the in-memory tracker would dedupe
// the resend) could silently lose it across a crash. The HTTP endpoint
// maps it to 503 — the daemon needs operator attention, not a retry.
var ErrJournal = errors.New("ingest: journal append failed")

// errRejected marks a permanent delivery failure: the applier judged the
// batch malformed (unknown dataset, bad coordinates), so retrying cannot
// help and the records are dropped instead of wedging the pipeline.
var errRejected = errors.New("ingest: batch rejected")

// Reject wraps an applier error as permanent: the pipeline drops the
// batch (counting ingest.rejected) instead of retrying it forever.
func Reject(err error) error { return fmt.Errorf("%w: %w", errRejected, err) }

// IsRejected reports whether an applier error was marked permanent.
func IsRejected(err error) bool { return errors.Is(err, errRejected) }

// Applier consumes delivered batches. Apply must be atomic-ish from the
// pipeline's view: on a nil return the batch counts as applied; on a
// Reject-wrapped return it is dropped; on any other error it is retried
// with seeded backoff and, once attempts are exhausted, requeued for the
// next flush trigger — at-least-once delivery.
type Applier interface {
	Apply(ctx context.Context, b Batch) error
}

// ApplierFunc adapts a function to the Applier interface.
type ApplierFunc func(ctx context.Context, b Batch) error

// Apply calls f.
func (f ApplierFunc) Apply(ctx context.Context, b Batch) error { return f(ctx, b) }

// Journal is the durability hook at the ack boundary: Push hands every
// newly admitted record to Append and only acknowledges the push once
// Append returns, so everything a client has seen acknowledged is
// persisted — even records still buffered, undelivered, at a crash
// (clients replay only from their last acked offset, so acked-but-
// unapplied records must survive). An Append error fails the push with
// ErrJournal and wedges the pipeline (see ErrJournal).
type Journal interface {
	Append(ctx context.Context, recs []Record) error
}

// Config tunes the pipeline. The zero value adopts the defaults noted on
// each field.
type Config struct {
	// MaxBatchRecords is the size flush trigger: a source's buffer is
	// delivered as soon as it holds this many records (default 256).
	MaxBatchRecords int
	// FlushInterval is the time flush trigger: every interval, all
	// buffers — full or not — are delivered (default 200ms; negative
	// disables the timer, leaving size triggers and explicit Flush).
	FlushInterval time.Duration
	// MaxPending caps one source's buffered-plus-inflight records;
	// beyond it Push returns ErrOverloaded (default 4096).
	MaxPending int
	// SourceRate is the per-source admission rate in records/second with
	// a one-second burst; beyond it Push returns ErrThrottled (0 =
	// unlimited).
	SourceRate float64
	// RetryAttempts is how many times a failed delivery retries before
	// the batch is requeued for the next trigger (default 4).
	RetryAttempts int
	// RetryBase is the backoff base: retry n sleeps base·2ⁿ scaled by a
	// seeded jitter in [1,2) (default 10ms).
	RetryBase time.Duration
	// Seed feeds the backoff jitter generator.
	Seed int64
	// Now overrides the clock for the rate limiter (tests); nil means
	// time.Now.
	Now func() time.Time
	// Logger receives structured delivery-path logs (retries, requeues,
	// and permanent rejections at Warn, with the source attached); nil
	// disables logging.
	Logger *slog.Logger
	// Journal, when non-nil, persists admitted records before Push
	// acknowledges them (see the Journal interface).
	Journal Journal
	// RestoreOffsets seeds per-source dedupe trackers from recovered
	// state, so a restarted daemon deduplicates client replays exactly
	// like the pre-crash one.
	RestoreOffsets []SourceOffsets
}

func (c Config) withDefaults() Config {
	if c.MaxBatchRecords <= 0 {
		c.MaxBatchRecords = 256
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 200 * time.Millisecond
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 4096
	}
	if c.RetryAttempts < 0 {
		c.RetryAttempts = 0
	} else if c.RetryAttempts == 0 {
		c.RetryAttempts = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats is a snapshot of the pipeline's counters (all monotonic).
type Stats struct {
	// Accepted records admitted into a buffer.
	Accepted uint64
	// Deduped records dropped as replays of an already-accepted
	// (source, offset).
	Deduped uint64
	// Throttled records rejected by the per-source admission rate.
	Throttled uint64
	// Overloaded records rejected by the per-source buffer cap.
	Overloaded uint64
	// BatchesFlushed batches delivered successfully.
	BatchesFlushed uint64
	// RecordsDelivered records delivered successfully.
	RecordsDelivered uint64
	// Retries delivery attempts beyond each batch's first.
	Retries uint64
	// DeliveryFailures batches requeued after exhausting retries.
	DeliveryFailures uint64
	// Rejected records dropped on a permanent (Reject-wrapped) applier
	// error.
	Rejected uint64
}

// sourceState is one partition of the pipeline.
type sourceState struct {
	buf      []Record
	inflight int
	offsets  Offsets
	tokens   float64
	lastFill time.Time
	hasRate  bool

	// metric is the source's sanitized metric label: gauges publish as
	// ingest.source.<metric>.*, so hostile source names cannot smuggle
	// structure into the registry.
	metric string
	// admitAt parallels buf (and then the in-flight batch): each record's
	// admission time, so a delivered batch's end-to-end latency — admit to
	// applied, queueing and retries included — is measurable.
	admitAt  []time.Time
	accepted uint64
	deduped  uint64
	lastE2E  float64
}

// SourceStats is one source's observability snapshot for /v1/stats.
type SourceStats struct {
	Source string `json:"source"`
	// Watermark is the contiguous accepted-offset high-water mark; Sparse
	// is how many accepted offsets sit above it (replay-gap memory).
	Watermark uint64 `json:"watermark"`
	Sparse    int    `json:"sparse"`
	// Pending is the source's buffered-plus-inflight records.
	Pending  int    `json:"pending"`
	Accepted uint64 `json:"accepted"`
	Deduped  uint64 `json:"deduped"`
	// DedupeRate is deduped/(accepted+deduped) — the replay fraction.
	DedupeRate float64 `json:"dedupe_rate"`
	// LastBatchE2ES is the last delivered batch's end-to-end latency
	// (oldest record's admission to successful apply), in seconds.
	LastBatchE2ES float64 `json:"last_batch_e2e_s"`
}

func (st *sourceState) snapshot(name string) SourceStats {
	s := SourceStats{
		Source:        name,
		Watermark:     st.offsets.Watermark(),
		Sparse:        st.offsets.Above(),
		Pending:       len(st.buf) + st.inflight,
		Accepted:      st.accepted,
		Deduped:       st.deduped,
		LastBatchE2ES: st.lastE2E,
	}
	if total := st.accepted + st.deduped; total > 0 {
		s.DedupeRate = float64(st.deduped) / float64(total)
	}
	return s
}

// publishLocked refreshes the source's ingest.source.<metric>.* gauges on
// the collector; the caller holds p.mu.
func (p *Pipeline) publishLocked(st *sourceState, name string) {
	snap := st.snapshot(name)
	prefix := "ingest.source." + st.metric + "."
	p.col.Gauge(prefix+"watermark", float64(snap.Watermark))
	p.col.Gauge(prefix+"sparse", float64(snap.Sparse))
	p.col.Gauge(prefix+"pending", float64(snap.Pending))
	p.col.Gauge(prefix+"dedupe_rate", snap.DedupeRate)
	p.col.Gauge(prefix+"batch_e2e_s", snap.LastBatchE2ES)
}

// SourcesSnapshot returns every source's observability snapshot, name
// order, for /v1/stats.
func (p *Pipeline) SourcesSnapshot() []SourceStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.sources))
	for name := range p.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]SourceStats, 0, len(names))
	for _, name := range names {
		out = append(out, p.sources[name].snapshot(name))
	}
	return out
}

// PushResult reports what Push did with the records it was given.
type PushResult struct {
	Accepted int `json:"accepted"`
	Deduped  int `json:"deduped"`
}

// Pipeline is the partitioned streaming-ingestion pipeline. One
// background worker owns delivery, so batches of one source apply in
// acceptance order; Push never blocks on the applier.
type Pipeline struct {
	cfg     Config
	applier Applier
	col     *obs.Collector

	// admitMu fences admission against Barrier: Push holds it shared for
	// its whole span (admission and the journal wait included), Barrier
	// holds it exclusively, so a barrier observes no record half-admitted
	// and no journal append racing the captured WAL position.
	admitMu sync.RWMutex

	mu      sync.Mutex
	sources map[string]*sourceState
	pending int
	stats   Stats
	closed  bool
	// journalErr is the sticky journal failure; once set every Push
	// fails with it (see ErrJournal).
	journalErr error

	// deliverMu serializes deliveries (worker ticks, size kicks, and
	// explicit Flush calls), keeping per-source batch order intact.
	deliverMu sync.Mutex
	rng       *rand.Rand // backoff jitter; guarded by deliverMu

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// New builds a pipeline over an applier and starts its flush worker; col
// may be nil. Close releases the worker.
func New(cfg Config, applier Applier, col *obs.Collector) *Pipeline {
	p := &Pipeline{
		cfg:     cfg.withDefaults(),
		applier: applier,
		col:     col,
		sources: make(map[string]*sourceState),
		rng:     stats.NewRand(stats.Split(cfg.Seed, 7001)),
		kick:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, so := range p.cfg.RestoreOffsets {
		if so.Source == "" {
			continue
		}
		st := p.sourceLocked(so.Source)
		// Restore only fails on a malformed snapshot; fall back to an
		// empty tracker (at-least-once replays re-dedupe the hard way).
		if err := st.offsets.Restore(so.Watermark, so.Above); err != nil && p.cfg.Logger != nil {
			p.cfg.Logger.Warn("ingest: dropping malformed restored offsets",
				slog.String("source", so.Source), slog.String("error", err.Error()))
		}
	}
	// Zero-register the headline counters so they appear in metric
	// snapshots before the first record lands.
	p.col.Count("ingest.accepted", 0)
	p.col.Count("ingest.replay.deduped", 0)
	p.col.Count("ingest.throttled", 0)
	p.col.Count("ingest.overloaded", 0)
	p.col.Count("ingest.batches.flushed", 0)
	p.col.Gauge("ingest.queue_depth", 0)
	go p.worker()
	return p
}

// Push admits records into their sources' buffers. Replayed offsets are
// dropped (counted in PushResult.Deduped); a record over the source's
// rate or buffer cap stops the push and returns ErrThrottled or
// ErrOverloaded alongside the partial result — everything already
// accepted stays accepted, and the caller may simply resend the whole
// batch after backing off. Push never blocks on delivery.
//
// With a Journal configured, Push persists the newly accepted records
// and waits for the journal's durability acknowledgement before
// returning — the at-the-ack-boundary write-ahead discipline: nothing a
// client sees acknowledged can be lost by a crash. A journal failure
// returns ErrJournal (sticky; see its doc).
func (p *Pipeline) Push(ctx context.Context, recs ...Record) (PushResult, error) {
	var res PushResult
	if err := ctx.Err(); err != nil {
		return res, err
	}
	p.admitMu.RLock()
	defer p.admitMu.RUnlock()
	kick := false
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return res, ErrClosed
	}
	if p.journalErr != nil {
		err := p.journalErr
		p.mu.Unlock()
		return res, fmt.Errorf("%w: %w", ErrJournal, err)
	}
	var pushErr error
	var accepted []Record // records to journal, in admission order
	touched := map[string]*sourceState{}
	for _, r := range recs {
		if r.Source == "" || r.Offset == 0 {
			pushErr = fmt.Errorf("ingest: record needs a source and a 1-based offset")
			break
		}
		st := p.sourceLocked(r.Source)
		touched[r.Source] = st
		if st.offsets.Seen(r.Offset) {
			res.Deduped++
			st.deduped++
			p.stats.Deduped++
			p.col.Count("ingest.replay.deduped", 1)
			continue
		}
		if p.cfg.SourceRate > 0 && !p.takeTokenLocked(st) {
			p.stats.Throttled++
			p.col.Count("ingest.throttled", 1)
			pushErr = ErrThrottled
			break
		}
		if len(st.buf)+st.inflight >= p.cfg.MaxPending {
			p.stats.Overloaded++
			p.col.Count("ingest.overloaded", 1)
			pushErr = ErrOverloaded
			break
		}
		st.offsets.Admit(r.Offset)
		st.buf = append(st.buf, r)
		st.admitAt = append(st.admitAt, p.cfg.Now())
		p.pending++
		res.Accepted++
		st.accepted++
		p.stats.Accepted++
		p.col.Count("ingest.accepted", 1)
		if p.cfg.Journal != nil {
			accepted = append(accepted, r)
		}
		if len(st.buf) >= p.cfg.MaxBatchRecords {
			kick = true
		}
	}
	p.col.Gauge("ingest.queue_depth", float64(p.pending))
	for name, st := range touched {
		p.publishLocked(st, name)
	}
	p.mu.Unlock()
	if kick {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
	// Journal outside p.mu (the append may fsync — concurrent pushes must
	// group-commit, not serialize) but inside the admitMu read lock, so a
	// Barrier cannot capture a WAL position with this append in flight.
	// The admitted records stay admitted either way: on failure they were
	// never acked, so the client resends after the operator repairs the
	// journal — or, across a crash, replays from its last acked offset.
	if len(accepted) > 0 {
		if err := p.cfg.Journal.Append(ctx, accepted); err != nil {
			p.mu.Lock()
			if p.journalErr == nil {
				p.journalErr = err
			}
			p.mu.Unlock()
			if p.cfg.Logger != nil {
				p.cfg.Logger.Error("ingest: journal append failed; pipeline wedged",
					slog.Int("records", len(accepted)), slog.String("error", err.Error()))
			}
			return res, fmt.Errorf("%w: %w", ErrJournal, err)
		}
	}
	return res, pushErr
}

// takeTokenLocked runs the per-source token bucket: capacity one second
// of SourceRate (at least one record), refilled continuously.
func (p *Pipeline) takeTokenLocked(st *sourceState) bool {
	burst := p.cfg.SourceRate
	if burst < 1 {
		burst = 1
	}
	now := p.cfg.Now()
	if !st.hasRate {
		st.hasRate = true
		st.tokens = burst
		st.lastFill = now
	}
	st.tokens += now.Sub(st.lastFill).Seconds() * p.cfg.SourceRate
	st.lastFill = now
	if st.tokens > burst {
		st.tokens = burst
	}
	if st.tokens < 1 {
		return false
	}
	st.tokens--
	return true
}

func (p *Pipeline) sourceLocked(name string) *sourceState {
	st, ok := p.sources[name]
	if !ok {
		st = &sourceState{metric: obs.SanitizeLabel(name)}
		p.sources[name] = st
	}
	return st
}

// worker owns timed and size-triggered flushes until Close.
func (p *Pipeline) worker() {
	defer close(p.done)
	var tickC <-chan time.Time
	if p.cfg.FlushInterval > 0 {
		t := time.NewTicker(p.cfg.FlushInterval)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-p.stop:
			return
		case <-p.kick:
			p.flush(context.Background(), false)
		case <-tickC:
			p.flush(context.Background(), true)
		}
	}
}

// Flush synchronously delivers every buffered record, partial batches
// included, and returns the first delivery error (requeued batches
// still count as errors here; they stay buffered for the next trigger).
func (p *Pipeline) Flush(ctx context.Context) error {
	return p.flush(ctx, true)
}

// flush repeatedly cuts the next due batch — sources in name order, so
// flushing is deterministic given the same buffered state — and delivers
// it. With all=false only full buffers (size trigger) are cut.
func (p *Pipeline) flush(ctx context.Context, all bool) error {
	p.deliverMu.Lock()
	defer p.deliverMu.Unlock()
	var firstErr error
	// A source whose delivery failed (requeued) must not be retried in
	// the same pass, or a dead applier turns Flush into a hot loop.
	tried := make(map[string]bool)
	for {
		p.mu.Lock()
		names := make([]string, 0, len(p.sources))
		for name := range p.sources {
			names = append(names, name)
		}
		sort.Strings(names)
		var src string
		var batch []Record
		var admitAt []time.Time
		for _, name := range names {
			st := p.sources[name]
			if tried[name] || len(st.buf) == 0 {
				continue
			}
			if !all && len(st.buf) < p.cfg.MaxBatchRecords {
				continue
			}
			n := len(st.buf)
			if n > p.cfg.MaxBatchRecords {
				n = p.cfg.MaxBatchRecords
			}
			batch = append([]Record(nil), st.buf[:n]...)
			st.buf = append([]Record(nil), st.buf[n:]...)
			admitAt = append([]time.Time(nil), st.admitAt[:n]...)
			st.admitAt = append([]time.Time(nil), st.admitAt[n:]...)
			st.inflight += n
			src = name
			break
		}
		p.mu.Unlock()
		if batch == nil {
			return firstErr
		}
		if err := p.deliver(ctx, src, batch, admitAt); err != nil {
			tried[src] = true
			if firstErr == nil {
				firstErr = err
			}
		}
	}
}

// deliver applies one batch with seeded-backoff retries. Success and
// permanent rejection settle the records; transient failure beyond the
// retry budget puts them back at the head of the source's buffer for the
// next trigger (at-least-once).
func (p *Pipeline) deliver(ctx context.Context, src string, batch []Record, admitAt []time.Time) error {
	n := len(batch)
	for attempt := 0; ; attempt++ {
		err := p.applier.Apply(ctx, Batch{Source: src, Records: batch})
		if err == nil {
			// Batch end-to-end latency: the oldest record's admission to
			// the successful apply, retries and queueing included.
			var e2e float64
			if len(admitAt) > 0 {
				e2e = p.cfg.Now().Sub(admitAt[0]).Seconds()
			}
			p.settle(src, n, func() {
				p.stats.BatchesFlushed++
				p.stats.RecordsDelivered += uint64(n)
				p.col.Count("ingest.batches.flushed", 1)
				p.col.Count("ingest.records.delivered", float64(n))
				p.col.Observe("ingest.batch_e2e_s", e2e)
				p.sourceLocked(src).lastE2E = e2e
			})
			return nil
		}
		if IsRejected(err) {
			if p.cfg.Logger != nil {
				p.cfg.Logger.Warn("ingest: batch rejected",
					slog.String("source", src), slog.Int("records", n),
					slog.String("error", err.Error()))
			}
			p.settle(src, n, func() {
				p.stats.Rejected += uint64(n)
				p.col.Count("ingest.rejected", float64(n))
			})
			return err
		}
		if attempt >= p.cfg.RetryAttempts || ctx.Err() != nil {
			if p.cfg.Logger != nil {
				p.cfg.Logger.Warn("ingest: delivery failed, batch requeued",
					slog.String("source", src), slog.Int("records", n),
					slog.Int("attempts", attempt+1), slog.String("error", err.Error()))
			}
			p.mu.Lock()
			st := p.sourceLocked(src)
			st.buf = append(append([]Record(nil), batch...), st.buf...)
			st.admitAt = append(append([]time.Time(nil), admitAt...), st.admitAt...)
			st.inflight -= n
			p.stats.DeliveryFailures++
			p.col.Count("ingest.delivery.failures", 1)
			p.publishLocked(st, src)
			p.mu.Unlock()
			return err
		}
		if p.cfg.Logger != nil {
			p.cfg.Logger.Warn("ingest: delivery retry",
				slog.String("source", src), slog.Int("records", n),
				slog.Int("attempt", attempt+1), slog.String("error", err.Error()))
		}
		p.mu.Lock()
		p.stats.Retries++
		p.mu.Unlock()
		p.col.Count("ingest.retries", 1)
		// Seeded exponential backoff with jitter in [1,2), abortable by
		// shutdown or caller cancellation.
		d := time.Duration(float64(p.cfg.RetryBase<<uint(attempt)) * (1 + p.rng.Float64()))
		select {
		case <-time.After(d):
		case <-p.stop:
		case <-ctx.Done():
		}
	}
}

// settle finalizes n inflight records of a source and applies the
// outcome's counter updates under the pipeline lock.
func (p *Pipeline) settle(src string, n int, counters func()) {
	p.mu.Lock()
	st := p.sourceLocked(src)
	st.inflight -= n
	p.pending -= n
	counters()
	p.col.Gauge("ingest.queue_depth", float64(p.pending))
	p.publishLocked(st, src)
	p.mu.Unlock()
}

// Close stops the flush worker, drains every buffer with one final
// synchronous flush, and leaves the pipeline rejecting further pushes.
// It is idempotent.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	<-p.done
	return p.Flush(context.Background())
}

// Stats snapshots the pipeline counters.
func (p *Pipeline) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Pending reports records buffered or in delivery.
func (p *Pipeline) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pending
}

// Watermark reports a source's contiguous accepted-offset watermark
// (0 for an unknown source).
func (p *Pipeline) Watermark(source string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.sources[source]
	if !ok {
		return 0
	}
	return st.offsets.Watermark()
}

// OffsetsSnapshot exports every source's dedupe tracker in source-name
// order — the per-source offset state a durability snapshot persists.
func (p *Pipeline) OffsetsSnapshot() []SourceOffsets {
	p.mu.Lock()
	defer p.mu.Unlock()
	names := make([]string, 0, len(p.sources))
	for name := range p.sources {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]SourceOffsets, 0, len(names))
	for _, name := range names {
		wm, above := p.sources[name].offsets.Export()
		out = append(out, SourceOffsets{Source: name, Watermark: wm, Above: above})
	}
	return out
}

// Barrier quiesces the pipeline and runs fn over the quiesced state:
// admission is blocked (Push waits), every buffered record is flushed
// through the applier, and only then does fn run — so at fn time the
// applied state, the dedupe trackers, and the journal all describe
// exactly the same set of records. This is the consistency point
// snapshots are cut at. A flush failure (a requeued batch) aborts the
// barrier without running fn.
//
// fn must not call Push, Flush, or Close (deadlock); reading snapshots
// (OffsetsSnapshot, Stats) and the backend's state is the intended use.
func (p *Pipeline) Barrier(ctx context.Context, fn func() error) error {
	p.admitMu.Lock()
	defer p.admitMu.Unlock()
	if err := p.flush(ctx, true); err != nil {
		return fmt.Errorf("ingest: barrier flush: %w", err)
	}
	return fn()
}

// Kill stops the flush worker WITHOUT the final drain Close performs,
// leaving buffered records undelivered — the crash-simulation hook the
// durability tests use to model a process that died mid-stream. A killed
// pipeline rejects further pushes; calling Close afterwards is a no-op.
func (p *Pipeline) Kill() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		<-p.done
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.stop)
	<-p.done
}
