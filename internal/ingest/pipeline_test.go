package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"bohr/internal/obs"
)

// recApplier records delivered batches and can be told to fail the next N
// applies (transiently or permanently).
type recApplier struct {
	mu        sync.Mutex
	batches   []Batch
	failNext  int
	permanent bool
	applies   int
}

func (a *recApplier) Apply(ctx context.Context, b Batch) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.applies++
	if a.failNext > 0 {
		a.failNext--
		if a.permanent {
			return Reject(errors.New("bad batch"))
		}
		return errors.New("transient fault")
	}
	cp := b
	cp.Records = append([]Record(nil), b.Records...)
	a.batches = append(a.batches, cp)
	return nil
}

func (a *recApplier) delivered() []Batch {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Batch(nil), a.batches...)
}

func (a *recApplier) records() int {
	n := 0
	for _, b := range a.delivered() {
		n += len(b.Records)
	}
	return n
}

func rec(source string, off uint64) Record {
	return Record{Source: source, Offset: off, Dataset: "ds", Site: 0,
		Coords: []string{fmt.Sprint(off)}, Measure: 1}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestPipelineSizeTriggeredFlush(t *testing.T) {
	app := &recApplier{}
	p := New(Config{MaxBatchRecords: 4, FlushInterval: -1}, app, nil)
	defer p.Close()
	for off := uint64(1); off <= 4; off++ {
		if _, err := p.Push(context.Background(), rec("s", off)); err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	// No timer: the only trigger is the full buffer.
	waitFor(t, "size-triggered delivery", func() bool { return app.records() == 4 })
	got := app.delivered()
	if len(got) != 1 || got[0].Source != "s" {
		t.Fatalf("delivered %+v, want one 4-record batch from s", got)
	}
	for i, r := range got[0].Records {
		if r.Offset != uint64(i+1) {
			t.Fatalf("batch out of order: %+v", got[0].Records)
		}
	}
	if st := p.Stats(); st.BatchesFlushed != 1 || st.RecordsDelivered != 4 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPipelineIntervalFlushDeliversPartialBatch(t *testing.T) {
	app := &recApplier{}
	p := New(Config{MaxBatchRecords: 1000, FlushInterval: 5 * time.Millisecond}, app, nil)
	defer p.Close()
	if _, err := p.Push(context.Background(), rec("s", 1), rec("s", 2)); err != nil {
		t.Fatalf("Push: %v", err)
	}
	waitFor(t, "interval-triggered delivery", func() bool { return app.records() == 2 })
	if p.Pending() != 0 {
		t.Fatalf("pending = %d after flush", p.Pending())
	}
}

func TestPipelineOverloadBackpressure(t *testing.T) {
	app := &recApplier{}
	p := New(Config{MaxBatchRecords: 1000, FlushInterval: -1, MaxPending: 3}, app, nil)
	defer p.Close()
	res, err := p.Push(context.Background(),
		rec("hot", 1), rec("hot", 2), rec("hot", 3), rec("hot", 4), rec("hot", 5))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if res.Accepted != 3 {
		t.Fatalf("accepted %d of 5 with cap 3", res.Accepted)
	}
	// Another source is unaffected: partitioned admission control.
	if _, err := p.Push(context.Background(), rec("cold", 1)); err != nil {
		t.Fatalf("cold source rejected: %v", err)
	}
	if st := p.Stats(); st.Overloaded == 0 {
		t.Fatalf("stats %+v: overload not counted", st)
	}
	// Draining the buffer reopens admission.
	if err := p.Flush(context.Background()); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if _, err := p.Push(context.Background(), rec("hot", 4)); err != nil {
		t.Fatalf("post-drain push rejected: %v", err)
	}
}

func TestPipelineThrottlesHotSource(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	app := &recApplier{}
	p := New(Config{FlushInterval: -1, SourceRate: 2, Now: clock}, app, nil)
	defer p.Close()
	// Burst = SourceRate tokens (2, but min 1): two records pass, third
	// throttles.
	res, err := p.Push(context.Background(), rec("s", 1), rec("s", 2), rec("s", 3))
	if !errors.Is(err, ErrThrottled) || !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrThrottled (an ErrOverloaded)", err)
	}
	if res.Accepted != 2 {
		t.Fatalf("accepted %d, want 2", res.Accepted)
	}
	// Time refills tokens at SourceRate per second.
	now = now.Add(time.Second)
	if _, err := p.Push(context.Background(), rec("s", 3), rec("s", 4)); err != nil {
		t.Fatalf("post-refill push: %v", err)
	}
	if st := p.Stats(); st.Throttled != 1 {
		t.Fatalf("stats %+v: want 1 throttled", st)
	}
}

func TestPipelineRetriesTransientFaults(t *testing.T) {
	app := &recApplier{failNext: 2}
	p := New(Config{FlushInterval: -1, RetryAttempts: 4, RetryBase: time.Millisecond}, app, nil)
	defer p.Close()
	if _, err := p.Push(context.Background(), rec("s", 1)); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if err := p.Flush(context.Background()); err != nil {
		t.Fatalf("Flush after retries: %v", err)
	}
	if app.records() != 1 {
		t.Fatalf("delivered %d records", app.records())
	}
	if st := p.Stats(); st.Retries != 2 || st.DeliveryFailures != 0 {
		t.Fatalf("stats %+v: want 2 retries, 0 failures", st)
	}
}

func TestPipelineRequeuesAfterRetryBudget(t *testing.T) {
	app := &recApplier{failNext: 100}
	p := New(Config{FlushInterval: -1, RetryAttempts: 1, RetryBase: time.Millisecond}, app, nil)
	defer p.Close()
	if _, err := p.Push(context.Background(), rec("s", 1), rec("s", 2)); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if err := p.Flush(context.Background()); err == nil {
		t.Fatal("Flush succeeded against a dead applier")
	}
	if p.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 requeued records", p.Pending())
	}
	// The applier heals; the requeued batch delivers in original order —
	// at-least-once, nothing lost.
	app.mu.Lock()
	app.failNext = 0
	app.mu.Unlock()
	if err := p.Flush(context.Background()); err != nil {
		t.Fatalf("Flush after heal: %v", err)
	}
	got := app.delivered()
	if len(got) != 1 || len(got[0].Records) != 2 ||
		got[0].Records[0].Offset != 1 || got[0].Records[1].Offset != 2 {
		t.Fatalf("delivered %+v, want offsets 1,2 in order", got)
	}
	if st := p.Stats(); st.DeliveryFailures == 0 {
		t.Fatalf("stats %+v: failure not counted", st)
	}
}

func TestPipelineDropsRejectedBatch(t *testing.T) {
	app := &recApplier{failNext: 1, permanent: true}
	p := New(Config{FlushInterval: -1}, app, nil)
	defer p.Close()
	if _, err := p.Push(context.Background(), rec("s", 1)); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if err := p.Flush(context.Background()); !IsRejected(err) {
		t.Fatalf("Flush = %v, want rejection", err)
	}
	// The poison batch is dropped, not retried: pending drains and the
	// next push flows normally.
	if p.Pending() != 0 {
		t.Fatalf("pending = %d after rejection", p.Pending())
	}
	if st := p.Stats(); st.Rejected != 1 || st.Retries != 0 {
		t.Fatalf("stats %+v: want 1 rejected, 0 retries", st)
	}
	if _, err := p.Push(context.Background(), rec("s", 2)); err != nil {
		t.Fatalf("push after rejection: %v", err)
	}
	if err := p.Flush(context.Background()); err != nil {
		t.Fatalf("flush after rejection: %v", err)
	}
	if app.records() != 1 {
		t.Fatalf("delivered %d records", app.records())
	}
}

func TestPipelineDedupesReplayedOffsets(t *testing.T) {
	app := &recApplier{}
	p := New(Config{FlushInterval: -1}, app, nil)
	defer p.Close()
	ctx := context.Background()
	if _, err := p.Push(ctx, rec("s", 1), rec("s", 2), rec("s", 3)); err != nil {
		t.Fatalf("Push: %v", err)
	}
	// Replay while still buffered: deduped against accepted offsets.
	res, err := p.Push(ctx, rec("s", 2), rec("s", 3), rec("s", 4))
	if err != nil || res.Accepted != 1 || res.Deduped != 2 {
		t.Fatalf("buffered replay: res %+v err %v", res, err)
	}
	if err := p.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	// Replay after delivery: still deduped (the tracker outlives buffers).
	res, err = p.Push(ctx, rec("s", 1), rec("s", 4))
	if err != nil || res.Accepted != 0 || res.Deduped != 2 {
		t.Fatalf("post-delivery replay: res %+v err %v", res, err)
	}
	if w := p.Watermark("s"); w != 4 {
		t.Fatalf("watermark = %d, want 4", w)
	}
	if app.records() != 4 {
		t.Fatalf("delivered %d records, want 4 (no double-apply)", app.records())
	}
	if st := p.Stats(); st.Deduped != 4 {
		t.Fatalf("stats %+v: want 4 deduped", st)
	}
}

func TestPipelineCloseDrainsAndStops(t *testing.T) {
	app := &recApplier{}
	p := New(Config{FlushInterval: -1}, app, nil)
	if _, err := p.Push(context.Background(), rec("s", 1), rec("s", 2)); err != nil {
		t.Fatalf("Push: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if app.records() != 2 {
		t.Fatalf("Close drained %d of 2 records", app.records())
	}
	if _, err := p.Push(context.Background(), rec("s", 3)); !errors.Is(err, ErrClosed) {
		t.Fatalf("push after close: %v, want ErrClosed", err)
	}
	// Idempotent.
	if err := p.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestPipelineCloseLeaksNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		p := New(Config{FlushInterval: time.Millisecond}, &recApplier{}, nil)
		if _, err := p.Push(context.Background(), rec("s", uint64(i+1))); err != nil {
			t.Fatalf("Push: %v", err)
		}
		if err := p.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	waitFor(t, "goroutines to settle", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+2
	})
}

func TestPipelineConcurrentSourcesDeliverEverything(t *testing.T) {
	app := &recApplier{}
	p := New(Config{MaxBatchRecords: 16, FlushInterval: time.Millisecond}, app, nil)
	const sources, perSource = 8, 200
	var wg sync.WaitGroup
	for s := 0; s < sources; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			name := fmt.Sprintf("src%d", s)
			for off := uint64(1); off <= perSource; off++ {
				for {
					if _, err := p.Push(context.Background(), rec(name, off)); !errors.Is(err, ErrOverloaded) {
						if err != nil {
							t.Errorf("Push: %v", err)
						}
						break
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(s)
	}
	wg.Wait()
	if err := p.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := app.records(); got != sources*perSource {
		t.Fatalf("delivered %d records, want %d", got, sources*perSource)
	}
	// Per-source batches preserve offset order end to end.
	next := map[string]uint64{}
	for _, b := range app.delivered() {
		for _, r := range b.Records {
			if r.Offset != next[b.Source]+1 {
				t.Fatalf("source %s: offset %d after %d", b.Source, r.Offset, next[b.Source])
			}
			next[b.Source] = r.Offset
		}
	}
}

// TestPerSourceObservability covers the per-source telemetry surface:
// SourcesSnapshot watermark/sparse/dedupe accounting, sanitized per-source
// gauges on the collector, and batch end-to-end latency measurement.
func TestPerSourceObservability(t *testing.T) {
	col := obs.NewCollector(obs.WithWallClock())
	app := &recApplier{}
	p := New(Config{MaxBatchRecords: 4, FlushInterval: -1}, app, col)
	defer p.Close()

	ctx := context.Background()
	// Source "web tier" (hostile space in the name): offsets 1,2 then a
	// gap at 5 (sparse set of one) plus a replay of 1 (deduped).
	for _, off := range []uint64{1, 2, 5, 1} {
		p.Push(ctx, rec("web tier", off))
	}
	// Second source stays fully contiguous.
	p.Push(ctx, rec("mobile", 1), rec("mobile", 2))

	snaps := p.SourcesSnapshot()
	if len(snaps) != 2 {
		t.Fatalf("got %d sources, want 2", len(snaps))
	}
	if snaps[0].Source != "mobile" || snaps[1].Source != "web tier" {
		t.Fatalf("sources = %s,%s want name order", snaps[0].Source, snaps[1].Source)
	}
	web := snaps[1]
	if web.Watermark != 2 || web.Sparse != 1 || web.Accepted != 3 || web.Deduped != 1 || web.Pending != 3 {
		t.Fatalf("web tier snapshot = %+v, want watermark 2 sparse 1 accepted 3 deduped 1 pending 3", web)
	}
	if want := 1.0 / 4.0; web.DedupeRate != want {
		t.Fatalf("dedupe rate = %v, want %v", web.DedupeRate, want)
	}

	// Gauges publish under the sanitized label only.
	snap := col.MetricsSnapshot()
	san := obs.SanitizeLabel("web tier")
	if san == "web tier" {
		t.Fatal("label with a space survived sanitization")
	}
	if got := snap.Gauges["ingest.source."+san+".watermark"]; got != 2 {
		t.Fatalf("watermark gauge = %v, want 2 (gauges: %v)", got, snap.Gauges)
	}
	if got := snap.Gauges["ingest.source."+san+".sparse"]; got != 1 {
		t.Fatalf("sparse gauge = %v, want 1", got)
	}
	for name := range snap.Gauges {
		if strings.Contains(name, "web tier") {
			t.Fatalf("raw source name leaked into gauge %q", name)
		}
	}

	// Delivery settles pending and measures batch end-to-end latency.
	if err := p.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	snaps = p.SourcesSnapshot()
	web = snaps[1]
	if web.Pending != 0 {
		t.Fatalf("pending = %d after flush, want 0", web.Pending)
	}
	if web.LastBatchE2ES <= 0 {
		t.Fatalf("batch e2e latency = %v, want > 0", web.LastBatchE2ES)
	}
	snap = col.MetricsSnapshot()
	if got := snap.Histograms["ingest.batch_e2e_s"]; got.Count != 2 {
		t.Fatalf("ingest.batch_e2e_s = %+v, want 2 observations (one batch per source)", got)
	}
	if got := snap.Gauges["ingest.source."+san+".pending"]; got != 0 {
		t.Fatalf("pending gauge = %v after flush, want 0", got)
	}
}

// TestIngestLoggerSeesRetries wires a logger into the pipeline and checks
// the retry and requeue paths emit structured lines with the source name.
func TestIngestLoggerSeesRetries(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(syncWriter{&mu, &buf}, nil))
	app := &recApplier{failNext: 10}
	p := New(Config{
		MaxBatchRecords: 2, FlushInterval: -1, RetryAttempts: 1,
		RetryBase: time.Millisecond, Logger: logger,
	}, app, nil)
	defer p.Close()
	p.Push(context.Background(), rec("s1", 1), rec("s1", 2))
	p.Flush(context.Background()) // 1 retry, then requeue
	mu.Lock()
	text := buf.String()
	mu.Unlock()
	if !strings.Contains(text, "delivery retry") || !strings.Contains(text, "requeued") {
		t.Fatalf("log missing retry/requeue lines:\n%s", text)
	}
	if !strings.Contains(text, `"source":"s1"`) {
		t.Fatalf("log lines lack the source attr:\n%s", text)
	}
}

type syncWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (s syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
