package lp

import (
	"fmt"
	"time"

	"bohr/internal/obs"
)

// PlacementInput carries everything the §5 formulation needs. Amounts are
// MB, bandwidths MB/s, times seconds. Indices follow Table 1 of the paper:
// a ranges over datasets, i/j/k over sites.
type PlacementInput struct {
	Sites    int
	Datasets int
	// Input[a][i] is I_i^a, the original input data of dataset a at site i.
	Input [][]float64
	// Reduction[a] is R^a, the map-stage data reduction ratio of dataset a
	// (intermediate = input × R).
	Reduction []float64
	// SelfSim[a][i] is S_i^a, the combiner-reduction fraction of site i's
	// own data.
	SelfSim [][]float64
	// CrossSim[a][i][j] is S_{i,j}^a, how well data moved from i combines
	// at j (probe-estimated).
	CrossSim [][][]float64
	// Up[i]/Down[i] are U_i and D_i.
	Up, Down []float64
	// Lag is T, the time between recurring query arrivals within which data
	// movement must complete.
	Lag float64
	// MaxInputMB optionally caps the total post-movement input data each
	// site may hold across all datasets (compute/storage constraints per
	// site — the extension §5 names as future work, after Tetrium [22]).
	// nil or a non-positive entry means unconstrained.
	MaxInputMB []float64
	// IncomingInflation conservatively scales the un-combined fraction of
	// moved data (1 − S) when predicting receiver volume: realized
	// combining is worse than probe-ideal because moved records land in
	// fresh partitions and split across executors. 0 means 1 (no
	// inflation); the planner uses ~1.4.
	IncomingInflation float64
	// PaperObjective switches f_i to the paper's literal Eq. (1), where
	// incoming data combines at the destination's own rate (1 − S_i). The
	// default (false) uses the pairwise rate (1 − S_{k,i}) for incoming
	// data, which is linear too and is what makes similarity matter per
	// source site.
	PaperObjective bool
	// MaxPivots caps simplex pivots per phase in every sub-problem solve
	// (0 = the solver's default safety cap). A sub-problem that exhausts
	// the cap surfaces as an error wrapping ErrStalled so planners can
	// fall back to a known-safe plan instead of deploying an unproven one.
	MaxPivots int
	// Obs optionally collects solver metrics (simplex pivots, alternating
	// rounds). Nil disables collection at no cost.
	Obs *obs.Collector `json:"-"`
}

// Validate checks dimensions and value sanity.
func (in *PlacementInput) Validate() error {
	n, m := in.Sites, in.Datasets
	if n <= 0 || m <= 0 {
		return fmt.Errorf("lp: placement needs sites>0 and datasets>0, got %d/%d", n, m)
	}
	if len(in.Input) != m || len(in.Reduction) != m || len(in.SelfSim) != m || len(in.CrossSim) != m {
		return fmt.Errorf("lp: placement dataset arrays sized %d/%d/%d/%d, want %d",
			len(in.Input), len(in.Reduction), len(in.SelfSim), len(in.CrossSim), m)
	}
	if len(in.Up) != n || len(in.Down) != n {
		return fmt.Errorf("lp: placement bandwidth arrays sized %d/%d, want %d", len(in.Up), len(in.Down), n)
	}
	for i := 0; i < n; i++ {
		if in.Up[i] <= 0 || in.Down[i] <= 0 {
			return fmt.Errorf("lp: site %d has non-positive bandwidth", i)
		}
	}
	for a := 0; a < m; a++ {
		if len(in.Input[a]) != n || len(in.SelfSim[a]) != n || len(in.CrossSim[a]) != n {
			return fmt.Errorf("lp: dataset %d site arrays mis-sized", a)
		}
		if in.Reduction[a] < 0 {
			return fmt.Errorf("lp: dataset %d has negative reduction ratio", a)
		}
		for i := 0; i < n; i++ {
			if len(in.CrossSim[a][i]) != n {
				return fmt.Errorf("lp: dataset %d cross-sim row %d mis-sized", a, i)
			}
			if in.Input[a][i] < 0 {
				return fmt.Errorf("lp: dataset %d has negative input at site %d", a, i)
			}
			if s := in.SelfSim[a][i]; s < 0 || s > 1 {
				return fmt.Errorf("lp: dataset %d self-sim at site %d = %v out of [0,1]", a, i, s)
			}
			for j := 0; j < n; j++ {
				if s := in.CrossSim[a][i][j]; s < 0 || s > 1 {
					return fmt.Errorf("lp: dataset %d cross-sim (%d,%d) = %v out of [0,1]", a, i, j, s)
				}
			}
		}
	}
	if in.Lag < 0 {
		return fmt.Errorf("lp: negative lag %v", in.Lag)
	}
	return nil
}

// PlacementPlan is the joint decision: how much of each dataset to move
// between each site pair, and the reduce-task fraction per site.
type PlacementPlan struct {
	// Move[a][i][j] is x_{i,j}^a in MB. The diagonal is zero.
	Move [][][]float64
	// TaskFrac[i] is r_i, summing to 1.
	TaskFrac []float64
	// ShuffleTime is the optimized t of objective (2).
	ShuffleTime float64
	// Rounds is the number of alternating x/r rounds performed.
	Rounds int
	// PivotCount sums simplex iterations across all sub-solves.
	PivotCount int
	// SolveTime is wall-clock time spent in the optimizer.
	SolveTime time.Duration
}

// incomingSim returns the combine rate applied to data moved k→i.
func (in *PlacementInput) incomingSim(a, k, i int) float64 {
	if in.PaperObjective {
		return in.SelfSim[a][i]
	}
	return in.CrossSim[a][k][i]
}

// incomingFraction is the shuffle volume per MB of data moved k→i (before
// multiplying by R): the un-combined fraction, conservatively inflated.
func (in *PlacementInput) incomingFraction(a, k, i int) float64 {
	infl := in.IncomingInflation
	if infl <= 0 {
		infl = 1
	}
	f := infl * (1 - in.incomingSim(a, k, i))
	if f > 1 {
		f = 1
	}
	return f
}

// ShuffleVolumes evaluates f_i^a(x) of Eq. (1) for every dataset and site
// under a movement plan (nil means no movement).
func (in *PlacementInput) ShuffleVolumes(move [][][]float64) [][]float64 {
	n, m := in.Sites, in.Datasets
	f := make([][]float64, m)
	for a := 0; a < m; a++ {
		f[a] = make([]float64, n)
		for i := 0; i < n; i++ {
			kept := in.Input[a][i]
			if move != nil {
				for j := 0; j < n; j++ {
					if j != i {
						kept -= move[a][i][j]
					}
				}
			}
			if kept < 0 {
				kept = 0
			}
			vol := kept * in.Reduction[a] * (1 - in.SelfSim[a][i])
			if move != nil {
				for k := 0; k < n; k++ {
					if k == i {
						continue
					}
					vol += move[a][k][i] * in.Reduction[a] * in.incomingFraction(a, k, i)
				}
			}
			f[a][i] = vol
		}
	}
	return f
}

// ShuffleTimeFor evaluates the objective t for a concrete (move, taskFrac)
// pair: the maximum over sites of the upload time (3) and download time (4).
func (in *PlacementInput) ShuffleTimeFor(move [][][]float64, taskFrac []float64) float64 {
	f := in.ShuffleVolumes(move)
	n, m := in.Sites, in.Datasets
	var t float64
	for i := 0; i < n; i++ {
		var upMB, downMB float64
		for a := 0; a < m; a++ {
			upMB += (1 - taskFrac[i]) * f[a][i]
			var others float64
			for j := 0; j < n; j++ {
				if j != i {
					others += f[a][j]
				}
			}
			downMB += taskFrac[i] * others
		}
		if v := upMB / in.Up[i]; v > t {
			t = v
		}
		if v := downMB / in.Down[i]; v > t {
			t = v
		}
	}
	return t
}

// movePenalty is the tiny per-MB cost added to the x-objective so that,
// among plans achieving the same shuffle time, the LP prefers moving less
// data.
const movePenalty = 1e-4

// xIndex maps (a, i, j) with j≠i to the x-variable index; t is variable 0.
func xIndex(n, a, i, j int) int {
	col := j
	if j > i {
		col--
	}
	return 1 + a*n*(n-1) + i*(n-1) + col
}

// buildXProblem assembles the movement-plan LP for a fixed task
// placement r — shared by solveX and the sparse-vs-dense equivalence
// tests, which need the raw Problem to hand to both solvers.
func buildXProblem(in *PlacementInput, r []float64) *Problem {
	n, m := in.Sites, in.Datasets
	nVars := 1 + m*n*(n-1)
	prob := Problem{C: make([]float64, nVars), MaxPivots: in.MaxPivots}
	prob.C[0] = 1
	for v := 1; v < nVars; v++ {
		prob.C[v] = movePenalty
	}
	// The paper moves data "from the bottleneck DC to other sites with
	// more WAN bandwidth": forbid moves toward strictly slower uplinks by
	// pricing those variables out.
	for a := 0; a < m; a++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j != i && in.Up[j] <= in.Up[i] {
					prob.C[xIndex(n, a, i, j)] = 1e6
				}
			}
		}
	}

	// (3) upload of shuffle data at each site i:
	// Σ_a (1−r_i)·f_i^a(x) ≤ t·U_i
	for i := 0; i < n; i++ {
		row := make([]float64, nVars)
		row[0] = -in.Up[i]
		rhs := 0.0
		w := 1 - r[i]
		for a := 0; a < m; a++ {
			R := in.Reduction[a]
			rhs -= w * in.Input[a][i] * R * (1 - in.SelfSim[a][i])
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				row[xIndex(n, a, i, j)] -= w * R * (1 - in.SelfSim[a][i]) // data leaving i
				row[xIndex(n, a, j, i)] += w * R * in.incomingFraction(a, j, i)
			}
		}
		prob.Constraints = append(prob.Constraints, Constraint{A: row, Op: LE, B: rhs})
	}

	// (4) download of shuffle data at each site i:
	// r_i · Σ_a Σ_{j≠i} f_j^a(x) ≤ t·D_i
	for i := 0; i < n; i++ {
		row := make([]float64, nVars)
		row[0] = -in.Down[i]
		rhs := 0.0
		w := r[i]
		for a := 0; a < m; a++ {
			R := in.Reduction[a]
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				// f_j depends on x through j's outgoing and incoming flows.
				rhs -= w * in.Input[a][j] * R * (1 - in.SelfSim[a][j])
				for k := 0; k < n; k++ {
					if k == j {
						continue
					}
					row[xIndex(n, a, j, k)] -= w * R * (1 - in.SelfSim[a][j])
					row[xIndex(n, a, k, j)] += w * R * in.incomingFraction(a, k, j)
				}
			}
		}
		prob.Constraints = append(prob.Constraints, Constraint{A: row, Op: LE, B: rhs})
	}

	// (5) pre-shuffle movement upload budget: Σ_a Σ_j x_{i,j} ≤ T·U_i.
	for i := 0; i < n; i++ {
		row := make([]float64, nVars)
		for a := 0; a < m; a++ {
			for j := 0; j < n; j++ {
				if j != i {
					row[xIndex(n, a, i, j)] = 1
				}
			}
		}
		prob.Constraints = append(prob.Constraints, Constraint{A: row, Op: LE, B: in.Lag * in.Up[i]})
	}
	// (6) pre-shuffle movement download budget: Σ_a Σ_k x_{k,i} ≤ T·D_i.
	for i := 0; i < n; i++ {
		row := make([]float64, nVars)
		for a := 0; a < m; a++ {
			for k := 0; k < n; k++ {
				if k != i {
					row[xIndex(n, a, k, i)] = 1
				}
			}
		}
		prob.Constraints = append(prob.Constraints, Constraint{A: row, Op: LE, B: in.Lag * in.Down[i]})
	}
	// Conservation: a site cannot move out more than it holds.
	for a := 0; a < m; a++ {
		for i := 0; i < n; i++ {
			row := make([]float64, nVars)
			for j := 0; j < n; j++ {
				if j != i {
					row[xIndex(n, a, i, j)] = 1
				}
			}
			prob.Constraints = append(prob.Constraints, Constraint{A: row, Op: LE, B: in.Input[a][i]})
		}
	}
	// Optional per-site input caps (compute/storage constraints, the
	// Tetrium-flavoured extension): Σ_a (I_i − out + in) ≤ C_i, i.e.
	// Σ_a (Σ_k x_{k,i} − Σ_j x_{i,j}) ≤ C_i − Σ_a I_i.
	if in.MaxInputMB != nil {
		for i := 0; i < n; i++ {
			cap := in.MaxInputMB[i]
			if cap <= 0 {
				continue
			}
			row := make([]float64, nVars)
			rhs := cap
			for a := 0; a < m; a++ {
				rhs -= in.Input[a][i]
				for j := 0; j < n; j++ {
					if j == i {
						continue
					}
					row[xIndex(n, a, j, i)] += 1
					row[xIndex(n, a, i, j)] -= 1
				}
			}
			prob.Constraints = append(prob.Constraints, Constraint{A: row, Op: LE, B: rhs})
		}
	}
	return &prob
}

// solveX optimizes the movement plan x for a fixed task placement r.
// Always feasible: x = 0 satisfies every constraint with large enough t.
func solveX(in *PlacementInput, r []float64) (move [][][]float64, t float64, pivots int, err error) {
	n, m := in.Sites, in.Datasets
	prob := buildXProblem(in, r)
	sol, err := prob.Solve()
	if err != nil {
		return nil, 0, 0, err
	}
	if sol.Status == Stalled {
		return nil, 0, sol.Iterations, fmt.Errorf("lp: x-subproblem: %w", ErrStalled)
	}
	if sol.Status != Optimal {
		return nil, 0, sol.Iterations, fmt.Errorf("lp: x-subproblem %s", sol.Status)
	}
	move = make([][][]float64, m)
	for a := 0; a < m; a++ {
		move[a] = make([][]float64, n)
		for i := 0; i < n; i++ {
			move[a][i] = make([]float64, n)
			for j := 0; j < n; j++ {
				if j != i {
					if v := sol.X[xIndex(n, a, i, j)]; v > 1e-7 {
						move[a][i][j] = v
					}
				}
			}
		}
	}
	return move, sol.X[0], sol.Iterations, nil
}

// solveR optimizes the task placement r for a fixed movement plan.
// Variables: t (0), r_0..r_{n-1}.
func solveR(in *PlacementInput, move [][][]float64) (r []float64, t float64, pivots int, err error) {
	return solveTaskPlacementVolumes(in.ShuffleVolumes(move), in.Up, in.Down, in.MaxPivots)
}

// buildRProblem assembles the task-placement LP for given per-dataset
// per-site shuffle volumes — shared by the solvers and the sparse-vs-
// dense equivalence tests.
func buildRProblem(f [][]float64, up, down []float64) (*Problem, error) {
	n := len(up)
	if n == 0 || len(down) != n {
		return nil, fmt.Errorf("lp: task placement needs matching bandwidth arrays, got %d/%d", len(up), len(down))
	}
	// Per-site totals: own shuffle volume and the volume at all others.
	own := make([]float64, n)
	others := make([]float64, n)
	for a := range f {
		if len(f[a]) != n {
			return nil, fmt.Errorf("lp: task placement volume row %d sized %d, want %d", a, len(f[a]), n)
		}
		for i := 0; i < n; i++ {
			own[i] += f[a][i]
			for j := 0; j < n; j++ {
				if j != i {
					others[i] += f[a][j]
				}
			}
		}
	}
	nVars := 1 + n
	prob := Problem{C: make([]float64, nVars)}
	prob.C[0] = 1
	for i := 0; i < n; i++ {
		// (3): own_i − r_i·own_i ≤ t·U_i
		row := make([]float64, nVars)
		row[0] = -up[i]
		row[1+i] = -own[i]
		prob.Constraints = append(prob.Constraints, Constraint{A: row, Op: LE, B: -own[i]})
		// (4): r_i·others_i ≤ t·D_i
		row = make([]float64, nVars)
		row[0] = -down[i]
		row[1+i] = others[i]
		prob.Constraints = append(prob.Constraints, Constraint{A: row, Op: LE, B: 0})
	}
	// (7): Σ r_i = 1.
	row := make([]float64, nVars)
	for i := 0; i < n; i++ {
		row[1+i] = 1
	}
	prob.Constraints = append(prob.Constraints, Constraint{A: row, Op: EQ, B: 1})
	return &prob, nil
}

// SolveTaskPlacementVolumes optimizes the reduce-task fractions for given
// per-dataset per-site shuffle volumes f[a][i] (MB) — used inside the
// alternating solver and by planners that profile realized volumes from a
// previous run of the recurring query. Variables: t (0), r_0..r_{n-1}.
func SolveTaskPlacementVolumes(f [][]float64, up, down []float64) (r []float64, t float64, pivots int, err error) {
	return solveTaskPlacementVolumes(f, up, down, 0)
}

// SolveTaskPlacementVolumesCapped is SolveTaskPlacementVolumes with an
// explicit per-phase pivot cap (0 = solver default). A capped solve that
// stalls returns an error wrapping ErrStalled, so planners can degrade
// to a heuristic fraction split instead of failing the round.
func SolveTaskPlacementVolumesCapped(f [][]float64, up, down []float64, maxPivots int) (r []float64, t float64, pivots int, err error) {
	return solveTaskPlacementVolumes(f, up, down, maxPivots)
}

func solveTaskPlacementVolumes(f [][]float64, up, down []float64, maxPivots int) (r []float64, t float64, pivots int, err error) {
	n := len(up)
	prob, err := buildRProblem(f, up, down)
	if err != nil {
		return nil, 0, 0, err
	}
	prob.MaxPivots = maxPivots
	sol, err := prob.Solve()
	if err != nil {
		return nil, 0, 0, err
	}
	if sol.Status == Stalled {
		return nil, 0, sol.Iterations, fmt.Errorf("lp: r-subproblem: %w", ErrStalled)
	}
	if sol.Status != Optimal {
		return nil, 0, sol.Iterations, fmt.Errorf("lp: r-subproblem %s", sol.Status)
	}
	r = make([]float64, n)
	copy(r, sol.X[1:1+n])
	return r, sol.X[0], sol.Iterations, nil
}

// SolveTaskPlacement optimizes only the reduce-task fractions r for a
// fixed (possibly nil) movement plan — the separate task placement step
// baseline systems perform after their heuristic data placement.
func SolveTaskPlacement(in *PlacementInput, move [][][]float64) (taskFrac []float64, shuffleTime float64, pivots int, err error) {
	if err := in.Validate(); err != nil {
		return nil, 0, 0, err
	}
	return solveR(in, move)
}

// SolvePlacement runs the joint optimization of §5. Constraint (3) couples
// r_i with f_i(x), so the exact formulation is bilinear; we solve it the
// standard way by alternating two exact LPs — x for fixed r, then r for
// fixed x — which monotonically decreases the objective and converges in a
// handful of rounds.
func SolvePlacement(in *PlacementInput) (*PlacementPlan, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	n := in.Sites

	// Initial r: proportional to uplink bandwidth (more bandwidth → serve
	// more reduce output), the heuristic prior work starts from.
	r := make([]float64, n)
	var totalUp float64
	for i := 0; i < n; i++ {
		totalUp += in.Up[i]
	}
	for i := 0; i < n; i++ {
		r[i] = in.Up[i] / totalUp
	}

	plan := &PlacementPlan{}
	var bestMove [][][]float64
	bestT := in.ShuffleTimeFor(nil, r)
	const maxRounds = 8
	for round := 0; round < maxRounds; round++ {
		move, _, p1, err := solveX(in, r)
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", round, err)
		}
		plan.PivotCount += p1
		newR, t2, p2, err := solveR(in, move)
		if err != nil {
			return nil, fmt.Errorf("round %d: %w", round, err)
		}
		plan.PivotCount += p2
		plan.Rounds = round + 1
		r = newR
		bestMove = move
		if bestT-t2 < 1e-6*(1+bestT) {
			bestT = t2
			break
		}
		bestT = t2
	}
	if bestMove == nil {
		bestMove = emptyMove(in.Datasets, n)
	}
	plan.Move = bestMove
	plan.TaskFrac = r
	plan.ShuffleTime = in.ShuffleTimeFor(bestMove, r)
	plan.SolveTime = time.Since(start)
	in.Obs.Count("lp.pivots", float64(plan.PivotCount))
	in.Obs.Observe("lp.solve.rounds", float64(plan.Rounds))
	return plan, nil
}

func emptyMove(m, n int) [][][]float64 {
	move := make([][][]float64, m)
	for a := 0; a < m; a++ {
		move[a] = make([][]float64, n)
		for i := 0; i < n; i++ {
			move[a][i] = make([]float64, n)
		}
	}
	return move
}
