package lp

import (
	"math"
	"testing"

	"bohr/internal/stats"
)

// twoSiteInput builds a minimal asymmetric instance: site 0 is a slow
// bottleneck with lots of data, site 1 is fast.
func twoSiteInput() *PlacementInput {
	return &PlacementInput{
		Sites:     2,
		Datasets:  1,
		Input:     [][]float64{{400, 100}},
		Reduction: []float64{0.5},
		SelfSim:   [][]float64{{0.2, 0.2}},
		CrossSim: [][][]float64{{
			{0.2, 0.8},
			{0.8, 0.2},
		}},
		Up:   []float64{10, 100},
		Down: []float64{10, 100},
		Lag:  30,
	}
}

func TestPlacementValidate(t *testing.T) {
	in := twoSiteInput()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *in
	bad.Sites = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero sites should error")
	}
	bad = *in
	bad.Up = []float64{10}
	if err := bad.Validate(); err == nil {
		t.Fatal("short bandwidth array should error")
	}
	bad = *in
	bad.Up = []float64{0, 100}
	if err := bad.Validate(); err == nil {
		t.Fatal("zero bandwidth should error")
	}
	bad = *in
	bad.SelfSim = [][]float64{{1.5, 0}}
	if err := bad.Validate(); err == nil {
		t.Fatal("similarity > 1 should error")
	}
	bad = *in
	bad.Lag = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative lag should error")
	}
	bad = *in
	bad.Reduction = []float64{-0.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative reduction should error")
	}
	bad = *in
	bad.Input = [][]float64{{-1, 0}}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative input should error")
	}
}

func TestShuffleVolumesNoMove(t *testing.T) {
	in := twoSiteInput()
	f := in.ShuffleVolumes(nil)
	// f_0 = 400 * 0.5 * (1−0.2) = 160; f_1 = 100 * 0.5 * 0.8 = 40.
	if math.Abs(f[0][0]-160) > 1e-9 || math.Abs(f[0][1]-40) > 1e-9 {
		t.Fatalf("f = %v", f)
	}
}

func TestShuffleVolumesWithMove(t *testing.T) {
	in := twoSiteInput()
	move := [][][]float64{{{0, 200}, {0, 0}}}
	f := in.ShuffleVolumes(move)
	// Site 0 keeps 200: 200·0.5·0.8 = 80.
	if math.Abs(f[0][0]-80) > 1e-9 {
		t.Fatalf("f0 = %v", f[0][0])
	}
	// Site 1: own 100·0.5·0.8 = 40, incoming 200·0.5·(1−0.8) = 20 → 60.
	if math.Abs(f[0][1]-60) > 1e-9 {
		t.Fatalf("f1 = %v", f[0][1])
	}
}

func TestShuffleVolumesPaperObjective(t *testing.T) {
	in := twoSiteInput()
	in.PaperObjective = true
	move := [][][]float64{{{0, 200}, {0, 0}}}
	f := in.ShuffleVolumes(move)
	// Paper mode: incoming combines at destination self-sim 0.2:
	// site 1 = (100+200)·0.5·0.8 = 120.
	if math.Abs(f[0][1]-120) > 1e-9 {
		t.Fatalf("paper-mode f1 = %v", f[0][1])
	}
}

func TestShuffleVolumesClampsOverMove(t *testing.T) {
	in := twoSiteInput()
	// Moving more than the site holds must clamp kept data at zero.
	move := [][][]float64{{{0, 999}, {0, 0}}}
	f := in.ShuffleVolumes(move)
	if f[0][0] != 0 {
		t.Fatalf("kept volume should clamp to 0, got %v", f[0][0])
	}
}

func TestSolvePlacementImprovesOverInPlace(t *testing.T) {
	in := twoSiteInput()
	plan, err := SolvePlacement(in)
	if err != nil {
		t.Fatal(err)
	}
	// In-place with bandwidth-proportional tasks as the reference point.
	r0 := []float64{in.Up[0] / 110, in.Up[1] / 110}
	inPlace := in.ShuffleTimeFor(nil, r0)
	if plan.ShuffleTime > inPlace+1e-6 {
		t.Fatalf("plan %v should not be worse than in-place %v", plan.ShuffleTime, inPlace)
	}
	// The bottleneck site should shed data toward the fast site.
	if plan.Move[0][0][1] <= 0 {
		t.Fatalf("expected movement 0→1, plan: %+v", plan.Move)
	}
	// Task fractions are a distribution.
	var sum float64
	for _, r := range plan.TaskFrac {
		if r < -1e-9 {
			t.Fatalf("negative task fraction %v", r)
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("task fractions sum to %v", sum)
	}
	if plan.Rounds < 1 || plan.SolveTime <= 0 {
		t.Fatalf("plan metadata: rounds=%d solveTime=%v", plan.Rounds, plan.SolveTime)
	}
}

func TestSolvePlacementRespectsLag(t *testing.T) {
	in := twoSiteInput()
	in.Lag = 1 // only 10 MB can leave site 0 (10 MBps × 1 s)
	plan, err := SolvePlacement(in)
	if err != nil {
		t.Fatal(err)
	}
	var moved float64
	for j := 0; j < in.Sites; j++ {
		moved += plan.Move[0][0][j]
	}
	if moved > in.Lag*in.Up[0]+1e-6 {
		t.Fatalf("moved %v MB exceeds lag budget %v", moved, in.Lag*in.Up[0])
	}
}

func TestSolvePlacementConservation(t *testing.T) {
	in := twoSiteInput()
	plan, err := SolvePlacement(in)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < in.Datasets; a++ {
		for i := 0; i < in.Sites; i++ {
			var out float64
			for j := 0; j < in.Sites; j++ {
				out += plan.Move[a][i][j]
			}
			if out > in.Input[a][i]+1e-6 {
				t.Fatalf("site %d moves out %v > holdings %v", i, out, in.Input[a][i])
			}
		}
	}
}

func TestSolvePlacementZeroLagMeansNoMovement(t *testing.T) {
	in := twoSiteInput()
	in.Lag = 0
	plan, err := SolvePlacement(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < in.Sites; i++ {
		for j := 0; j < in.Sites; j++ {
			if plan.Move[0][i][j] > 1e-6 {
				t.Fatalf("zero lag must forbid movement, found %v at (%d,%d)", plan.Move[0][i][j], i, j)
			}
		}
	}
}

func TestSolvePlacementSimilarityDirectsFlow(t *testing.T) {
	// Three sites: 0 is the bottleneck; 1 and 2 have identical bandwidth
	// but site 2's data is far more similar to site 0's. The refined LP
	// should prefer moving 0's data to 2.
	in := &PlacementInput{
		Sites:     3,
		Datasets:  1,
		Input:     [][]float64{{300, 50, 50}},
		Reduction: []float64{1},
		SelfSim:   [][]float64{{0.1, 0.1, 0.1}},
		CrossSim: [][][]float64{{
			{0.1, 0.05, 0.95},
			{0.05, 0.1, 0.1},
			{0.95, 0.1, 0.1},
		}},
		Up:   []float64{5, 50, 50},
		Down: []float64{5, 50, 50},
		Lag:  20,
	}
	plan, err := SolvePlacement(in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Move[0][0][2] <= plan.Move[0][0][1] {
		t.Fatalf("similar destination should receive more: to1=%v to2=%v",
			plan.Move[0][0][1], plan.Move[0][0][2])
	}
}

func TestSolvePlacementMultiDataset(t *testing.T) {
	rng := stats.NewRand(17)
	n, m := 4, 3
	in := &PlacementInput{
		Sites: n, Datasets: m,
		Up:   []float64{5, 20, 40, 40},
		Down: []float64{5, 20, 40, 40},
		Lag:  30,
	}
	for a := 0; a < m; a++ {
		in.Input = append(in.Input, make([]float64, n))
		in.SelfSim = append(in.SelfSim, make([]float64, n))
		cs := make([][]float64, n)
		for i := 0; i < n; i++ {
			in.Input[a][i] = 50 + rng.Float64()*200
			in.SelfSim[a][i] = rng.Float64() * 0.5
			cs[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				cs[i][j] = rng.Float64() * 0.9
			}
		}
		in.CrossSim = append(in.CrossSim, cs)
		in.Reduction = append(in.Reduction, 0.3+rng.Float64()*0.7)
	}
	plan, err := SolvePlacement(in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ShuffleTime <= 0 {
		t.Fatalf("shuffle time = %v", plan.ShuffleTime)
	}
	// Joint plan must beat or match in-place with uniform tasks.
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1.0 / float64(n)
	}
	if inPlace := in.ShuffleTimeFor(nil, uniform); plan.ShuffleTime > inPlace+1e-6 {
		t.Fatalf("joint %v worse than uniform in-place %v", plan.ShuffleTime, inPlace)
	}
}

func TestShuffleTimeForConsistency(t *testing.T) {
	// ShuffleTimeFor must equal a hand computation on a tiny instance.
	in := twoSiteInput()
	r := []float64{0.5, 0.5}
	f := in.ShuffleVolumes(nil) // [160, 40]
	want := math.Max(
		math.Max((1-r[0])*f[0][0]/in.Up[0], r[0]*f[0][1]/in.Down[0]),
		math.Max((1-r[1])*f[0][1]/in.Up[1], r[1]*f[0][0]/in.Down[1]),
	)
	if got := in.ShuffleTimeFor(nil, r); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ShuffleTimeFor = %v, want %v", got, want)
	}
}

func BenchmarkSolvePlacement10Sites20Datasets(b *testing.B) {
	rng := stats.NewRand(3)
	n, m := 10, 20
	in := &PlacementInput{Sites: n, Datasets: m, Lag: 30}
	for i := 0; i < n; i++ {
		in.Up = append(in.Up, 10+rng.Float64()*90)
		in.Down = append(in.Down, 10+rng.Float64()*90)
	}
	for a := 0; a < m; a++ {
		in.Input = append(in.Input, make([]float64, n))
		in.SelfSim = append(in.SelfSim, make([]float64, n))
		cs := make([][]float64, n)
		for i := 0; i < n; i++ {
			in.Input[a][i] = rng.Float64() * 100
			in.SelfSim[a][i] = rng.Float64() * 0.5
			cs[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				cs[i][j] = rng.Float64() * 0.9
			}
		}
		in.CrossSim = append(in.CrossSim, cs)
		in.Reduction = append(in.Reduction, 0.5)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolvePlacement(in); err != nil {
			b.Fatal(err)
		}
	}
}
