package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomInput builds a random but valid placement problem: 3–6 sites with
// uplink/downlink in [5,50] MB/s, 1–3 datasets with inputs in [0,100] MB
// and similarities in [0,1].
func randomInput(rng *rand.Rand) *PlacementInput {
	n := 3 + rng.Intn(4)
	m := 1 + rng.Intn(3)
	in := &PlacementInput{
		Sites:    n,
		Datasets: m,
		Up:       make([]float64, n),
		Down:     make([]float64, n),
		Lag:      5 + rng.Float64()*30,
	}
	for i := 0; i < n; i++ {
		in.Up[i] = 5 + rng.Float64()*45
		in.Down[i] = 5 + rng.Float64()*45
	}
	for a := 0; a < m; a++ {
		input := make([]float64, n)
		self := make([]float64, n)
		cross := make([][]float64, n)
		for i := 0; i < n; i++ {
			input[i] = rng.Float64() * 100
			self[i] = rng.Float64()
			cross[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				cross[i][j] = rng.Float64()
			}
			cross[i][i] = self[i]
		}
		in.Input = append(in.Input, input)
		in.SelfSim = append(in.SelfSim, self)
		in.CrossSim = append(in.CrossSim, cross)
		in.Reduction = append(in.Reduction, rng.Float64()*2)
	}
	return in
}

// uplinkProportional is the prior-work task-fraction heuristic the
// alternating solver starts from: r_i ∝ U_i.
func uplinkProportional(in *PlacementInput) []float64 {
	r := make([]float64, in.Sites)
	var total float64
	for _, u := range in.Up {
		total += u
	}
	for i := range r {
		r[i] = in.Up[i] / total
	}
	return r
}

// TestSolvePlacementNeverWorseThanNoMoveBaseline is a property test over
// random topologies: the joint LP starts from (no moves, uplink-
// proportional task fractions) and monotonically descends, so its
// objective must never exceed that baseline. Fixed seeds keep the test
// deterministic.
func TestSolvePlacementNeverWorseThanNoMoveBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 25; trial++ {
		in := randomInput(rng)
		baseline := in.ShuffleTimeFor(nil, uplinkProportional(in))
		plan, err := SolvePlacement(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if plan.ShuffleTime > baseline*(1+1e-6)+1e-9 {
			t.Errorf("trial %d (%d sites, %d datasets): objective %.6f worse than no-move baseline %.6f",
				trial, in.Sites, in.Datasets, plan.ShuffleTime, baseline)
		}
		// Structural sanity of the plan itself.
		var rSum float64
		for i, r := range plan.TaskFrac {
			if r < -1e-9 {
				t.Errorf("trial %d: negative task fraction %v at site %d", trial, r, i)
			}
			rSum += r
		}
		if math.Abs(rSum-1) > 1e-6 {
			t.Errorf("trial %d: task fractions sum to %v, want 1", trial, rSum)
		}
		for a := 0; a < in.Datasets; a++ {
			for i := 0; i < in.Sites; i++ {
				var moved float64
				for j := 0; j < in.Sites; j++ {
					if x := plan.Move[a][i][j]; x < -1e-9 {
						t.Errorf("trial %d: negative move x[%d][%d][%d]=%v", trial, a, i, j, x)
					} else if j != i {
						moved += x
					}
				}
				if moved > in.Input[a][i]*(1+1e-6)+1e-6 {
					t.Errorf("trial %d: dataset %d site %d moves %v MB of %v MB present", trial, a, i, moved, in.Input[a][i])
				}
			}
		}
	}
}

// TestSolvePlacementNeverWorseThanCentralized compares against the
// centralized strawman: leave data in place and run every reduce task at
// the single best site. The alternating LP optimizes r exactly for its
// final move plan, so it must beat (or tie) the best one-hot assignment
// as well as the proportional heuristic.
func TestSolvePlacementNeverWorseThanCentralized(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 25; trial++ {
		in := randomInput(rng)
		central := math.Inf(1)
		for j := 0; j < in.Sites; j++ {
			r := make([]float64, in.Sites)
			r[j] = 1
			if v := in.ShuffleTimeFor(nil, r); v < central {
				central = v
			}
		}
		plan, err := SolvePlacement(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if plan.ShuffleTime > central*(1+1e-6)+1e-9 {
			t.Errorf("trial %d (%d sites, %d datasets): objective %.6f worse than centralized baseline %.6f",
				trial, in.Sites, in.Datasets, plan.ShuffleTime, central)
		}
	}
}
