package lp

import "math"

// This file implements the sparse revised simplex — the production
// solver behind Problem.Solve. The placement LPs are overwhelmingly
// sparse (the §5 x-subproblem at n sites and m datasets has ~m·n²
// variables but only a handful of nonzeros per column), so instead of
// renormalizing a dense (rows × cols) tableau on every pivot like
// simplex.go does, the revised method keeps:
//
//   - the constraint matrix A in compressed sparse column form, built
//     ONCE with exactly the same normalization (RHS ≥ 0, slack for ≤,
//     surplus+artificial for ≥, artificial for =) as the dense tableau,
//     so both solvers explore the same geometry;
//   - a dense m×m basis inverse B⁻¹, updated with the O(m²) product-form
//     rule per pivot and rebuilt from scratch by Gauss-Jordan with
//     partial pivoting every refactorEvery pivots to shed accumulated
//     rounding error.
//
// Pricing is BTRAN (y = c_B·B⁻¹, one dense m² pass) plus one sparse dot
// per column — O(m² + nnz) per pivot instead of the dense tableau's
// O(rows·cols) renormalization, which is what lets placement scale past
// tens of sites. Pivot selection mirrors simplex.go exactly: Dantzig's
// rule until blandAfter pivots, then Bland's rule; ratio-test ties break
// toward the lowest basis index.
type sparseForm struct {
	m        int // constraint rows
	n        int // total columns: structural + slack + artificial
	nStruct  int
	artBegin int // first artificial column
	nArt     int
	colIdx   [][]int32   // row indices of nonzeros, per column
	colVal   [][]float64 // values of nonzeros, per column
	b        []float64   // normalized RHS, all ≥ 0
	basis    []int       // initial basic column per row (slack or artificial)
}

// newSparseForm mirrors newTableau's normalization column-for-column;
// see the dense builder for the layout contract.
func newSparseForm(p *Problem) *sparseForm {
	n := len(p.C)
	m := len(p.Constraints)
	nSlack, nArt := 0, 0
	for _, c := range p.Constraints {
		op := c.Op
		if c.B < 0 {
			op = flip(op)
		}
		switch op {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	cols := n + nSlack + nArt
	f := &sparseForm{
		m:        m,
		n:        cols,
		nStruct:  n,
		artBegin: n + nSlack,
		nArt:     nArt,
		colIdx:   make([][]int32, cols),
		colVal:   make([][]float64, cols),
		b:        make([]float64, m),
		basis:    make([]int, m),
	}
	slackCol := n
	artCol := f.artBegin
	for i, c := range p.Constraints {
		sign := 1.0
		op := c.Op
		b := c.B
		if b < 0 {
			sign = -1
			b = -b
			op = flip(op)
		}
		for j, v := range c.A {
			if v != 0 {
				f.colIdx[j] = append(f.colIdx[j], int32(i))
				f.colVal[j] = append(f.colVal[j], sign*v)
			}
		}
		f.b[i] = b
		switch op {
		case LE:
			f.colIdx[slackCol] = []int32{int32(i)}
			f.colVal[slackCol] = []float64{1}
			f.basis[i] = slackCol
			slackCol++
		case GE:
			f.colIdx[slackCol] = []int32{int32(i)}
			f.colVal[slackCol] = []float64{-1} // surplus
			slackCol++
			f.colIdx[artCol] = []int32{int32(i)}
			f.colVal[artCol] = []float64{1}
			f.basis[i] = artCol
			artCol++
		case EQ:
			f.colIdx[artCol] = []int32{int32(i)}
			f.colVal[artCol] = []float64{1}
			f.basis[i] = artCol
			artCol++
		}
	}
	return f
}

// refactorEvery is how many product-form updates the solver accepts
// before rebuilding B⁻¹ from the basis columns. Each update multiplies
// rounding error into the inverse; a periodic O(m³) rebuild resets it.
const refactorEvery = 128

type revised struct {
	f *sparseForm
	// binvT is B⁻¹ stored TRANSPOSED in one flat slab: binvT[k*m+i] =
	// B⁻¹[i][k]. Both hot kernels then stream contiguously: FTRAN
	// accumulates scaled columns of B⁻¹ (= rows of binvT), and BTRAN
	// dots c_B against them.
	binvT   []float64
	xB      []float64 // current basic solution B⁻¹·b
	basis   []int     // basic column per row
	inBasis []bool    // per column
	y       []float64 // BTRAN buffer: dual prices
	d       []float64 // FTRAN buffer: entering column in basis coordinates
	updates int       // product-form updates since last refactorization
}

func newRevised(f *sparseForm) *revised {
	m := f.m
	r := &revised{
		f:       f,
		binvT:   make([]float64, m*m),
		xB:      append([]float64(nil), f.b...),
		basis:   append([]int(nil), f.basis...),
		inBasis: make([]bool, f.n),
		y:       make([]float64, m),
		d:       make([]float64, m),
	}
	for i := 0; i < m; i++ {
		r.binvT[i*m+i] = 1 // initial basis is I (slacks/artificials)
	}
	for _, j := range r.basis {
		r.inBasis[j] = true
	}
	return r
}

// ftran computes d = B⁻¹·A_j for sparse column j: one contiguous
// scaled-add per nonzero of the column.
func (r *revised) ftran(j int) {
	m := r.f.m
	d := r.d
	for i := range d {
		d[i] = 0
	}
	idx, val := r.f.colIdx[j], r.f.colVal[j]
	for e, k := range idx {
		v := val[e]
		col := r.binvT[int(k)*m : int(k)*m+m]
		for i, c := range col {
			d[i] += v * c
		}
	}
}

// btran computes the dual prices y = c_B·B⁻¹ (y[k] = Σ_i cb[i]·B⁻¹[i][k])
// for the current basis under the given cost vector.
func (r *revised) btran(cost []float64) {
	m := r.f.m
	cb := make([]float64, m)
	anyNZ := false
	for i, bj := range r.basis {
		c := cost[bj]
		cb[i] = c
		if c != 0 {
			anyNZ = true
		}
	}
	if !anyNZ {
		for k := range r.y {
			r.y[k] = 0
		}
		return
	}
	for k := 0; k < m; k++ {
		row := r.binvT[k*m : k*m+m]
		var s float64
		for i, c := range cb {
			if c != 0 {
				s += c * row[i]
			}
		}
		r.y[k] = s
	}
}

// reducedCost prices one column against the current duals: c_j - y·A_j.
func (r *revised) reducedCost(cost []float64, j int) float64 {
	rc := cost[j]
	idx, val := r.f.colIdx[j], r.f.colVal[j]
	for e, k := range idx {
		rc -= r.y[k] * val[e]
	}
	return rc
}

// pivotUpdate applies the product-form update for column `enter` leaving
// row `leave`, with r.d already holding B⁻¹·A_enter. O(m²), contiguous.
func (r *revised) pivotUpdate(leave, enter int) {
	m := r.f.m
	d := r.d
	pv := d[leave]
	theta := r.xB[leave] / pv
	for i := range r.xB {
		r.xB[i] -= theta * d[i]
	}
	r.xB[leave] = theta
	for k := 0; k < m; k++ {
		row := r.binvT[k*m : k*m+m]
		br := row[leave] / pv
		if br == 0 {
			continue
		}
		for i := range row {
			row[i] -= d[i] * br
		}
		row[leave] = br
	}
	r.inBasis[r.basis[leave]] = false
	r.inBasis[enter] = true
	r.basis[leave] = enter
	r.updates++
	if r.updates >= refactorEvery {
		r.refactor()
	}
}

// refactor rebuilds B⁻¹ from the current basis columns by Gauss-Jordan
// elimination with partial pivoting, then recomputes xB from the fresh
// inverse — discarding the rounding error refactorEvery product-form
// updates multiplied in. If the basis matrix reads as numerically
// singular (which a valid simplex basis shouldn't), the accumulated
// inverse is kept rather than replaced with garbage.
func (r *revised) refactor() {
	m := r.f.m
	bm := make([][]float64, m)
	for i := range bm {
		bm[i] = make([]float64, m)
	}
	for k, j := range r.basis {
		idx, val := r.f.colIdx[j], r.f.colVal[j]
		for e, row := range idx {
			bm[row][k] = val[e]
		}
	}
	inv := make([][]float64, m)
	for i := range inv {
		inv[i] = make([]float64, m)
		inv[i][i] = 1
	}
	for col := 0; col < m; col++ {
		piv := col
		for i := col + 1; i < m; i++ {
			if math.Abs(bm[i][col]) > math.Abs(bm[piv][col]) {
				piv = i
			}
		}
		if math.Abs(bm[piv][col]) <= eps {
			return // numerically singular: keep the product-form inverse
		}
		bm[col], bm[piv] = bm[piv], bm[col]
		inv[col], inv[piv] = inv[piv], inv[col]
		pv := bm[col][col]
		for j := 0; j < m; j++ {
			bm[col][j] /= pv
			inv[col][j] /= pv
		}
		for i := 0; i < m; i++ {
			if i == col {
				continue
			}
			f := bm[i][col]
			if f == 0 {
				continue
			}
			for j := 0; j < m; j++ {
				bm[i][j] -= f * bm[col][j]
				inv[i][j] -= f * inv[col][j]
			}
		}
	}
	for i := 0; i < m; i++ {
		for k := 0; k < m; k++ {
			r.binvT[k*m+i] = inv[i][k]
		}
	}
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < m; j++ {
			s += inv[i][j] * r.f.b[j]
		}
		if s < 0 && s > -feasTol {
			s = 0 // same accumulated-error tolerance phase 1 accepts
		}
		r.xB[i] = s
	}
	r.updates = 0
}

// iterate runs revised-simplex pivots for the given cost vector until
// optimal, unbounded, or the pivot cap. Columns at index bannedFrom and
// beyond (artificials in phase 2) never enter.
func (r *revised) iterate(cost []float64, bannedFrom int, cap int) (iters int, out iterOutcome) {
	for iters = 0; iters < cap; iters++ {
		r.btran(cost)
		enter := -1
		if iters < blandAfter {
			most := -eps
			for j := 0; j < bannedFrom; j++ {
				if r.inBasis[j] {
					continue
				}
				if rc := r.reducedCost(cost, j); rc < most {
					most = rc
					enter = j
				}
			}
		} else {
			for j := 0; j < bannedFrom; j++ {
				if r.inBasis[j] {
					continue
				}
				if r.reducedCost(cost, j) < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return iters, iterConverged
		}
		r.ftran(enter)
		// Ratio test, ties broken by lowest basis index (Bland) — the
		// same rule, with the same tolerances, as the dense tableau.
		leave := -1
		best := math.Inf(1)
		for i := 0; i < r.f.m; i++ {
			if r.d[i] > eps {
				ratio := r.xB[i] / r.d[i]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || r.basis[i] < r.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return iters, iterUnbounded
		}
		r.pivotUpdate(leave, enter)
	}
	return iters, iterStalled
}

// phase1 minimizes the sum of artificial variables to find a basic
// feasible solution.
func (r *revised) phase1(cap int) (iters int, out iterOutcome, feasible bool) {
	if r.f.nArt == 0 {
		return 0, iterConverged, true
	}
	cost1 := make([]float64, r.f.n)
	for j := r.f.artBegin; j < r.f.n; j++ {
		cost1[j] = 1
	}
	iters, out = r.iterate(cost1, r.f.n, cap)
	if out == iterStalled {
		return iters, out, false
	}
	var artSum float64
	for i, j := range r.basis {
		if j >= r.f.artBegin {
			artSum += r.xB[i]
		}
	}
	if artSum > feasTol {
		return iters, out, false
	}
	r.driveOutArtificials()
	return iters, out, true
}

// driveOutArtificials pivots any artificial still in the basis (at value
// ~0 after a feasible phase 1) out, replacing it with a non-artificial
// column whose transformed coefficient on that row is nonzero. The pivot
// is degenerate — xB barely moves — but phase 2 then never needs to
// guard artificial rows.
func (r *revised) driveOutArtificials() {
	m := r.f.m
	for i := 0; i < m; i++ {
		if r.basis[i] < r.f.artBegin {
			continue
		}
		for j := 0; j < r.f.artBegin; j++ {
			if r.inBasis[j] {
				continue
			}
			// Row i of B⁻¹·A_j: one sparse dot against B⁻¹'s row i.
			var v float64
			idx, val := r.f.colIdx[j], r.f.colVal[j]
			for e, k := range idx {
				v += r.binvT[int(k)*m+i] * val[e]
			}
			if math.Abs(v) > eps {
				r.ftran(j)
				r.pivotUpdate(i, j)
				break
			}
		}
	}
}

// phase2 minimizes the real objective from the feasible basis,
// artificial columns banned.
func (r *revised) phase2(cost []float64, cap int) (iters int, out iterOutcome) {
	return r.iterate(cost, r.f.artBegin, cap)
}

// Solve runs the two-phase sparse revised simplex.
func (p *Problem) Solve() (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	f := newSparseForm(p)
	r := newRevised(f)
	cap := p.pivotCap()
	iters1, out1, feasible := r.phase1(cap)
	if out1 == iterStalled {
		return Solution{Status: Stalled, Iterations: iters1}, nil
	}
	if !feasible {
		return Solution{Status: Infeasible, Iterations: iters1}, nil
	}
	cost2 := make([]float64, f.n)
	copy(cost2, p.C)
	iters2, out2 := r.phase2(cost2, cap)
	sol := Solution{Iterations: iters1 + iters2}
	switch out2 {
	case iterStalled:
		sol.Status = Stalled
		return sol, nil
	case iterUnbounded:
		sol.Status = Unbounded
		return sol, nil
	}
	sol.Status = Optimal
	x := make([]float64, len(p.C))
	for i, j := range r.basis {
		if j < f.nStruct {
			v := r.xB[i]
			if v < 0 && v > -feasTol {
				v = 0
			}
			x[j] = v
		}
	}
	sol.X = x
	var obj float64
	for i, c := range p.C {
		obj += c * x[i]
	}
	sol.Objective = obj
	return sol, nil
}
