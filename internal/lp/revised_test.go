package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// pivotCapped is a tiny LP that needs at least two phase-2 pivots: both
// structural variables must enter the basis to reach the optimum of
// minimize -x1-x2 s.t. x1≤1, x2≤1, x1+x2≤1.5. With MaxPivots=1 every
// solver must stall.
func pivotCapped() *Problem {
	return &Problem{
		C: []float64{-1, -1},
		Constraints: []Constraint{
			{A: []float64{1, 0}, Op: LE, B: 1},
			{A: []float64{0, 1}, Op: LE, B: 1},
			{A: []float64{1, 1}, Op: LE, B: 1.5},
		},
		MaxPivots: 1,
	}
}

// TestStalledAtPivotCap pins the regression this PR fixes: a solve that
// exhausts its pivot cap used to return converged (and the caller read an
// unproven basis as Optimal). Both solvers must now report Stalled with
// no X and no Objective.
func TestStalledAtPivotCap(t *testing.T) {
	for _, tc := range []struct {
		name  string
		solve func(p *Problem) (Solution, error)
	}{
		{"sparse", func(p *Problem) (Solution, error) { return p.Solve() }},
		{"dense", func(p *Problem) (Solution, error) { return p.SolveDense() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sol, err := tc.solve(pivotCapped())
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			if sol.Status != Stalled {
				t.Fatalf("status = %v, want %v", sol.Status, Stalled)
			}
			if sol.X != nil {
				t.Errorf("stalled solve leaked X = %v", sol.X)
			}
			if sol.Objective != 0 {
				t.Errorf("stalled solve leaked Objective = %v", sol.Objective)
			}
			// Sanity: the same problem without the cap solves to -1.5.
			p := pivotCapped()
			p.MaxPivots = 0
			full, err := tc.solve(p)
			if err != nil {
				t.Fatalf("uncapped solve: %v", err)
			}
			if full.Status != Optimal || math.Abs(full.Objective+1.5) > 1e-9 {
				t.Fatalf("uncapped solve = %v obj %v, want optimal -1.5", full.Status, full.Objective)
			}
		})
	}
}

// TestStalledSurfacesThroughPlacementWrappers checks the placement
// sub-problem entry points translate Stalled into ErrStalled rather than
// returning a half-solved plan.
func TestStalledSurfacesThroughPlacementWrappers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := randomInput(rng)
	in.MaxPivots = 1
	if _, err := SolvePlacement(in); !errors.Is(err, ErrStalled) {
		t.Errorf("SolvePlacement with pivot cap 1: err = %v, want ErrStalled", err)
	}
	f := in.ShuffleVolumes(nil)
	if _, _, _, err := SolveTaskPlacementVolumesCapped(f, in.Up, in.Down, 1); !errors.Is(err, ErrStalled) {
		t.Errorf("SolveTaskPlacementVolumesCapped with cap 1: err = %v, want ErrStalled", err)
	}
}

// TestNearDegenerateTolerances exercises the unified eps/feasTol pair on
// a problem whose feasible region is a sliver 1e-8 wide — well inside
// feasTol, so phase 1 must accept it, and the extracted solution must
// come back clamped to x ≥ 0 instead of carrying ~-1e-8 noise.
func TestNearDegenerateTolerances(t *testing.T) {
	prob := func() *Problem {
		return &Problem{
			C: []float64{1, 1},
			Constraints: []Constraint{
				{A: []float64{1, 1}, Op: GE, B: 1},
				{A: []float64{1, 1}, Op: LE, B: 1 + 1e-8},
				{A: []float64{1, -1}, Op: EQ, B: 1 - 1e-8},
			},
		}
	}
	for _, tc := range []struct {
		name  string
		solve func(p *Problem) (Solution, error)
	}{
		{"sparse", func(p *Problem) (Solution, error) { return p.Solve() }},
		{"dense", func(p *Problem) (Solution, error) { return p.SolveDense() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sol, err := tc.solve(prob())
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			if sol.Status != Optimal {
				t.Fatalf("status = %v, want optimal", sol.Status)
			}
			for i, v := range sol.X {
				if v < 0 {
					t.Errorf("x[%d] = %v, want clamped to >= 0", i, v)
				}
			}
			if math.Abs(sol.Objective-1) > feasTol {
				t.Errorf("objective = %v, want 1 within feasTol", sol.Objective)
			}
		})
	}
}

// TestSparseMatchesDenseOnPlacementCorpus property-tests the revised
// simplex against the dense tableau oracle over the same random placement
// corpus the LP property tests use: both the x-subproblem and the
// r-subproblem must agree on status and (when optimal) objective.
func TestSparseMatchesDenseOnPlacementCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		in := randomInput(rng)
		r := uplinkProportional(in)

		px := buildXProblem(in, r)
		checkSparseDense(t, trial, "x-subproblem", px)

		pr, err := buildRProblem(in.ShuffleVolumes(nil), in.Up, in.Down)
		if err != nil {
			t.Fatalf("trial %d: buildRProblem: %v", trial, err)
		}
		checkSparseDense(t, trial, "r-subproblem", pr)
	}
}

func checkSparseDense(t *testing.T, trial int, label string, p *Problem) {
	t.Helper()
	sparse, err := p.Solve()
	if err != nil {
		t.Fatalf("trial %d %s: sparse: %v", trial, label, err)
	}
	dense, err := p.SolveDense()
	if err != nil {
		t.Fatalf("trial %d %s: dense: %v", trial, label, err)
	}
	if sparse.Status != dense.Status {
		t.Fatalf("trial %d %s: sparse status %v, dense %v", trial, label, sparse.Status, dense.Status)
	}
	if sparse.Status != Optimal {
		return
	}
	scale := math.Max(1, math.Abs(dense.Objective))
	if math.Abs(sparse.Objective-dense.Objective) > 1e-6*scale {
		t.Errorf("trial %d %s: sparse objective %v, dense %v", trial, label, sparse.Objective, dense.Objective)
	}
	// Both optima must satisfy the original constraints.
	for ci, c := range p.Constraints {
		var ax float64
		for j, a := range c.A {
			ax += a * sparse.X[j]
		}
		tol := 1e-6 * math.Max(1, math.Abs(c.B))
		switch c.Op {
		case LE:
			if ax > c.B+tol {
				t.Errorf("trial %d %s: constraint %d violated: %v <= %v", trial, label, ci, ax, c.B)
			}
		case GE:
			if ax < c.B-tol {
				t.Errorf("trial %d %s: constraint %d violated: %v >= %v", trial, label, ci, ax, c.B)
			}
		case EQ:
			if math.Abs(ax-c.B) > tol {
				t.Errorf("trial %d %s: constraint %d violated: %v = %v", trial, label, ci, ax, c.B)
			}
		}
	}
}
