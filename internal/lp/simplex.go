// Package lp provides a self-contained linear-programming facility: a
// two-phase simplex solver and the Bohr joint data/task placement model
// built on top of it (§5 of the paper).
//
// The solver handles problems of the form
//
//	minimize    c·x
//	subject to  A_i·x (≤ | = | ≥) b_i   for each constraint i
//	            x ≥ 0
//
// using the standard two-phase method with Bland's anti-cycling rule.
// Solve runs the sparse revised simplex (revised.go), which prices
// against a maintained basis inverse instead of renormalizing a dense
// tableau each pivot — placement problems are >99% zeros, so this is
// what lets the §5 LP scale past tens of sites. SolveDense keeps the
// original dense tableau as the reference implementation the
// equivalence tests compare against.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // ≤
	GE           // ≥
	EQ           // =
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Constraint is one linear constraint A·x Op B.
type Constraint struct {
	A  []float64
	Op Op
	B  float64
}

// Problem is a minimization LP over non-negative variables.
type Problem struct {
	C           []float64 // objective coefficients (minimize)
	Constraints []Constraint
	// MaxPivots caps simplex pivots PER PHASE; 0 means the
	// defaultMaxPivots safety cap. A solve that exhausts the cap reports
	// Stalled — never Optimal with an unproven objective.
	MaxPivots int
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
	// Stalled means a phase hit its pivot cap before proving optimality
	// (or, in phase 1, feasibility). The basis it stopped on is NOT
	// returned: a stalled solve carries no X and no Objective, so a
	// caller can never mistake it for a solved problem. Callers fall back
	// to a known-safe plan (placement uses the no-move plan).
	Stalled
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Stalled:
		return "stalled"
	}
	return "unknown"
}

// ErrStalled marks a placement sub-problem whose solve hit the pivot
// cap: the basis it stopped on is not proven optimal, so the plan built
// from it cannot be trusted. errors.Is(err, ErrStalled) identifies it
// through the placement wrappers.
var ErrStalled = errors.New("lp: solve stalled at pivot cap")

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// The solver's numeric thresholds derive from one base tolerance:
//
//	eps     (1e-9): anything smaller is numerical noise at the scale of
//	        a single pivot — reduced costs within eps of zero do not
//	        enter the basis, pivot elements within eps of zero cannot
//	        leave, and ratio-test ties are declared within eps.
//	feasTol (1e-6 = 1e3·eps): feasibility decisions tolerate the error a
//	        long solve accumulates — on the order of a thousand pivots,
//	        each contributing O(eps) rounding. The phase-1 artificial
//	        residual test and the negative-component clamp on extracted
//	        solutions BOTH use it, so a solve can no longer declare a
//	        basis feasible under one threshold and then emit components
//	        more negative than another would allow (the old 1e-6 vs
//	        -1e-7 split).
const (
	eps     = 1e-9
	feasTol = 1e3 * eps
)

// defaultMaxPivots is the per-phase pivot safety cap when the problem
// does not set MaxPivots.
const defaultMaxPivots = 200000

// pivotCap resolves the effective per-phase pivot cap.
func (p *Problem) pivotCap() int {
	if p.MaxPivots > 0 {
		return p.MaxPivots
	}
	return defaultMaxPivots
}

// iterOutcome is how a simplex phase ended.
type iterOutcome int

const (
	iterConverged iterOutcome = iota // no entering column: optimal for this cost
	iterUnbounded                    // entering column with no blocking row
	iterStalled                      // pivot cap exhausted before convergence
)

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return fmt.Errorf("lp: problem has no variables")
	}
	for i, c := range p.Constraints {
		if len(c.A) != n {
			return fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.A), n)
		}
	}
	return nil
}

// SolveDense runs the two-phase simplex method on the dense tableau —
// the original reference implementation. Solve (the sparse revised
// simplex) is what production paths use; this stays for small problems
// and as the oracle the sparse solver is property-tested against.
func (p *Problem) SolveDense() (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	t := newTableau(p)
	cap := p.pivotCap()
	iters1, out1, feasible := t.phase1(cap)
	if out1 == iterStalled {
		return Solution{Status: Stalled, Iterations: iters1}, nil
	}
	if !feasible {
		return Solution{Status: Infeasible, Iterations: iters1}, nil
	}
	iters2, out2 := t.phase2(cap)
	sol := Solution{Iterations: iters1 + iters2}
	switch out2 {
	case iterStalled:
		sol.Status = Stalled
		return sol, nil
	case iterUnbounded:
		sol.Status = Unbounded
		return sol, nil
	}
	sol.Status = Optimal
	sol.X = t.extract(len(p.C))
	var obj float64
	for i, c := range p.C {
		obj += c * sol.X[i]
	}
	sol.Objective = obj
	return sol, nil
}

// tableau is the dense simplex tableau. Columns: the n structural
// variables, then slack/surplus variables, then artificial variables, then
// the RHS column. Rows: one per constraint, plus the objective row(s)
// managed separately.
type tableau struct {
	rows     int
	cols     int // structural + slack + artificial (excludes RHS)
	nStruct  int
	nArt     int
	a        [][]float64 // rows x (cols+1); last column is RHS
	basis    []int       // basic variable per row
	cost     []float64   // phase-2 objective coefficients per column
	artBegin int         // first artificial column index
}

func newTableau(p *Problem) *tableau {
	n := len(p.C)
	m := len(p.Constraints)
	// Count slack and artificial columns.
	nSlack := 0
	nArt := 0
	for _, c := range p.Constraints {
		b := c.B
		op := c.Op
		if b < 0 { // normalize RHS ≥ 0 by negating the row
			op = flip(op)
		}
		switch op {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	cols := n + nSlack + nArt
	t := &tableau{
		rows:     m,
		cols:     cols,
		nStruct:  n,
		nArt:     nArt,
		a:        make([][]float64, m),
		basis:    make([]int, m),
		cost:     make([]float64, cols),
		artBegin: n + nSlack,
	}
	copy(t.cost, p.C)

	slackCol := n
	artCol := t.artBegin
	for i, c := range p.Constraints {
		row := make([]float64, cols+1)
		sign := 1.0
		op := c.Op
		b := c.B
		if b < 0 {
			sign = -1
			b = -b
			op = flip(op)
		}
		for j, v := range c.A {
			row[j] = sign * v
		}
		row[cols] = b
		switch op {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1 // surplus
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.a[i] = row
	}
	return t
}

func flip(o Op) Op {
	switch o {
	case LE:
		return GE
	case GE:
		return LE
	}
	return EQ
}

// reducedCosts computes the objective row z_j - c_j for the given cost
// vector over the current basis.
func (t *tableau) reducedCosts(cost []float64) []float64 {
	// y = c_B (dual multipliers implicit via tableau form): since the
	// tableau is kept in canonical form (basis columns are identity), the
	// reduced cost of column j is cost[j] - Σ_i cost[basis[i]] * a[i][j].
	rc := make([]float64, t.cols+1)
	for j := 0; j <= t.cols; j++ {
		var z float64
		for i := 0; i < t.rows; i++ {
			cb := 0.0
			if t.basis[i] < len(cost) {
				cb = cost[t.basis[i]]
			}
			z += cb * t.a[i][j]
		}
		cj := 0.0
		if j < len(cost) {
			cj = cost[j]
		}
		rc[j] = cj - z
	}
	return rc
}

// pivot performs a pivot on (row, col), renormalizing the tableau.
func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	for i := 0; i < t.rows; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
	}
	t.basis[row] = col
}

// blandAfter is the pivot count at which both solvers abandon Dantzig's
// rule (most negative reduced cost, converges fast) for Bland's rule
// (lowest eligible index, cannot cycle).
const blandAfter = 5000

// iterate runs simplex pivots for the given cost vector until optimal,
// unbounded, or the pivot cap. banned columns (artificials in phase 2)
// are never entered.
func (t *tableau) iterate(cost []float64, banned func(int) bool, cap int) (iters int, out iterOutcome) {
	for iters = 0; iters < cap; iters++ {
		rc := t.reducedCosts(cost)
		enter := -1
		if iters < blandAfter {
			most := -eps
			for j := 0; j < t.cols; j++ {
				if banned != nil && banned(j) {
					continue
				}
				if rc[j] < most {
					most = rc[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < t.cols; j++ {
				if banned != nil && banned(j) {
					continue
				}
				if rc[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return iters, iterConverged
		}
		// Ratio test, ties broken by lowest basis index (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.rows; i++ {
			if t.a[i][enter] > eps {
				ratio := t.a[i][t.cols] / t.a[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return iters, iterUnbounded
		}
		t.pivot(leave, enter)
	}
	// The cap is a stall, not convergence: reporting the basis we stopped
	// on as optimal handed callers a bogus objective (the pre-Stalled
	// bug). The caller surfaces Stalled and falls back.
	return iters, iterStalled
}

// phase1 minimizes the sum of artificial variables to find a basic
// feasible solution.
func (t *tableau) phase1(cap int) (iters int, out iterOutcome, feasible bool) {
	if t.nArt == 0 {
		return 0, iterConverged, true
	}
	cost1 := make([]float64, t.cols)
	for j := t.artBegin; j < t.cols; j++ {
		cost1[j] = 1
	}
	iters, out = t.iterate(cost1, nil, cap)
	if out == iterStalled {
		// Feasibility was not decided either way; the caller reports
		// Stalled, not Infeasible.
		return iters, out, false
	}
	// Objective value of phase 1 = sum of artificial values.
	var artSum float64
	for i := 0; i < t.rows; i++ {
		if t.basis[i] >= t.artBegin {
			artSum += t.a[i][t.cols]
		}
	}
	if artSum > feasTol {
		return iters, out, false
	}
	// Drive any lingering artificial basics out of the basis if possible.
	for i := 0; i < t.rows; i++ {
		if t.basis[i] < t.artBegin {
			continue
		}
		for j := 0; j < t.artBegin; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
	return iters, out, true
}

// phase2 minimizes the real objective from the feasible basis.
func (t *tableau) phase2(cap int) (iters int, out iterOutcome) {
	banned := func(j int) bool { return j >= t.artBegin }
	return t.iterate(t.cost, banned, cap)
}

// extract reads the first n variable values out of the basis. Components
// negative within feasTol — the same tolerance phase 1 accepted the
// basis under — clamp to exact zero.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			v := t.a[i][t.cols]
			if v < 0 && v > -feasTol {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}
