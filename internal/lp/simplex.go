// Package lp provides a self-contained linear-programming facility: a
// two-phase dense simplex solver and the Bohr joint data/task placement
// model built on top of it (§5 of the paper).
//
// The solver handles problems of the form
//
//	minimize    c·x
//	subject to  A_i·x (≤ | = | ≥) b_i   for each constraint i
//	            x ≥ 0
//
// using the standard two-phase method with Bland's anti-cycling rule.
package lp

import (
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // ≤
	GE           // ≥
	EQ           // =
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Constraint is one linear constraint A·x Op B.
type Constraint struct {
	A  []float64
	Op Op
	B  float64
}

// Problem is a minimization LP over non-negative variables.
type Problem struct {
	C           []float64 // objective coefficients (minimize)
	Constraints []Constraint
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

const eps = 1e-9

// Validate checks structural consistency of the problem.
func (p *Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return fmt.Errorf("lp: problem has no variables")
	}
	for i, c := range p.Constraints {
		if len(c.A) != n {
			return fmt.Errorf("lp: constraint %d has %d coefficients, want %d", i, len(c.A), n)
		}
	}
	return nil
}

// Solve runs the two-phase simplex method.
func (p *Problem) Solve() (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	t := newTableau(p)
	iters1, feasible := t.phase1()
	if !feasible {
		return Solution{Status: Infeasible, Iterations: iters1}, nil
	}
	iters2, bounded := t.phase2()
	sol := Solution{Iterations: iters1 + iters2}
	if !bounded {
		sol.Status = Unbounded
		return sol, nil
	}
	sol.Status = Optimal
	sol.X = t.extract(len(p.C))
	var obj float64
	for i, c := range p.C {
		obj += c * sol.X[i]
	}
	sol.Objective = obj
	return sol, nil
}

// tableau is the dense simplex tableau. Columns: the n structural
// variables, then slack/surplus variables, then artificial variables, then
// the RHS column. Rows: one per constraint, plus the objective row(s)
// managed separately.
type tableau struct {
	rows     int
	cols     int // structural + slack + artificial (excludes RHS)
	nStruct  int
	nArt     int
	a        [][]float64 // rows x (cols+1); last column is RHS
	basis    []int       // basic variable per row
	cost     []float64   // phase-2 objective coefficients per column
	artBegin int         // first artificial column index
}

func newTableau(p *Problem) *tableau {
	n := len(p.C)
	m := len(p.Constraints)
	// Count slack and artificial columns.
	nSlack := 0
	nArt := 0
	for _, c := range p.Constraints {
		b := c.B
		op := c.Op
		if b < 0 { // normalize RHS ≥ 0 by negating the row
			op = flip(op)
		}
		switch op {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	cols := n + nSlack + nArt
	t := &tableau{
		rows:     m,
		cols:     cols,
		nStruct:  n,
		nArt:     nArt,
		a:        make([][]float64, m),
		basis:    make([]int, m),
		cost:     make([]float64, cols),
		artBegin: n + nSlack,
	}
	copy(t.cost, p.C)

	slackCol := n
	artCol := t.artBegin
	for i, c := range p.Constraints {
		row := make([]float64, cols+1)
		sign := 1.0
		op := c.Op
		b := c.B
		if b < 0 {
			sign = -1
			b = -b
			op = flip(op)
		}
		for j, v := range c.A {
			row[j] = sign * v
		}
		row[cols] = b
		switch op {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1 // surplus
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.a[i] = row
	}
	return t
}

func flip(o Op) Op {
	switch o {
	case LE:
		return GE
	case GE:
		return LE
	}
	return EQ
}

// reducedCosts computes the objective row z_j - c_j for the given cost
// vector over the current basis.
func (t *tableau) reducedCosts(cost []float64) []float64 {
	// y = c_B (dual multipliers implicit via tableau form): since the
	// tableau is kept in canonical form (basis columns are identity), the
	// reduced cost of column j is cost[j] - Σ_i cost[basis[i]] * a[i][j].
	rc := make([]float64, t.cols+1)
	for j := 0; j <= t.cols; j++ {
		var z float64
		for i := 0; i < t.rows; i++ {
			cb := 0.0
			if t.basis[i] < len(cost) {
				cb = cost[t.basis[i]]
			}
			z += cb * t.a[i][j]
		}
		cj := 0.0
		if j < len(cost) {
			cj = cost[j]
		}
		rc[j] = cj - z
	}
	return rc
}

// pivot performs a pivot on (row, col), renormalizing the tableau.
func (t *tableau) pivot(row, col int) {
	pr := t.a[row]
	pv := pr[col]
	for j := range pr {
		pr[j] /= pv
	}
	for i := 0; i < t.rows; i++ {
		if i == row {
			continue
		}
		f := t.a[i][col]
		if f == 0 {
			continue
		}
		ri := t.a[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
	}
	t.basis[row] = col
}

// iterate runs simplex pivots for the given cost vector until optimal or
// unbounded. banned columns (artificials in phase 2) are never entered.
func (t *tableau) iterate(cost []float64, banned func(int) bool) (iters int, bounded bool) {
	const maxIters = 200000
	// Dantzig's rule (most negative reduced cost) converges fast; after
	// blandAfter pivots we switch to Bland's rule, which cannot cycle.
	const blandAfter = 5000
	for iters = 0; iters < maxIters; iters++ {
		rc := t.reducedCosts(cost)
		enter := -1
		if iters < blandAfter {
			most := -eps
			for j := 0; j < t.cols; j++ {
				if banned != nil && banned(j) {
					continue
				}
				if rc[j] < most {
					most = rc[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < t.cols; j++ {
				if banned != nil && banned(j) {
					continue
				}
				if rc[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return iters, true
		}
		// Ratio test, ties broken by lowest basis index (Bland).
		leave := -1
		best := math.Inf(1)
		for i := 0; i < t.rows; i++ {
			if t.a[i][enter] > eps {
				ratio := t.a[i][t.cols] / t.a[i][enter]
				if ratio < best-eps || (ratio < best+eps && (leave < 0 || t.basis[i] < t.basis[leave])) {
					best = ratio
					leave = i
				}
			}
		}
		if leave < 0 {
			return iters, false // unbounded
		}
		t.pivot(leave, enter)
	}
	return iters, true // treat as converged at tolerance after many pivots
}

// phase1 minimizes the sum of artificial variables to find a basic
// feasible solution.
func (t *tableau) phase1() (iters int, feasible bool) {
	if t.nArt == 0 {
		return 0, true
	}
	cost1 := make([]float64, t.cols)
	for j := t.artBegin; j < t.cols; j++ {
		cost1[j] = 1
	}
	iters, _ = t.iterate(cost1, nil)
	// Objective value of phase 1 = sum of artificial values.
	var artSum float64
	for i := 0; i < t.rows; i++ {
		if t.basis[i] >= t.artBegin {
			artSum += t.a[i][t.cols]
		}
	}
	if artSum > 1e-6 {
		return iters, false
	}
	// Drive any lingering artificial basics out of the basis if possible.
	for i := 0; i < t.rows; i++ {
		if t.basis[i] < t.artBegin {
			continue
		}
		for j := 0; j < t.artBegin; j++ {
			if math.Abs(t.a[i][j]) > eps {
				t.pivot(i, j)
				break
			}
		}
	}
	return iters, true
}

// phase2 minimizes the real objective from the feasible basis.
func (t *tableau) phase2() (iters int, bounded bool) {
	banned := func(j int) bool { return j >= t.artBegin }
	return t.iterate(t.cost, banned)
}

// extract reads the first n variable values out of the basis.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			v := t.a[i][t.cols]
			if v < 0 && v > -1e-7 {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}
