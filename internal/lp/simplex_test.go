package lp

import (
	"math"
	"testing"
	"testing/quick"

	"bohr/internal/stats"
)

func solveOK(t *testing.T, p Problem) Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestValidate(t *testing.T) {
	p := Problem{}
	if err := p.Validate(); err == nil {
		t.Fatal("no variables should error")
	}
	p = Problem{C: []float64{1}, Constraints: []Constraint{{A: []float64{1, 2}, Op: LE, B: 1}}}
	if err := p.Validate(); err == nil {
		t.Fatal("ragged constraint should error")
	}
	if _, err := p.Solve(); err == nil {
		t.Fatal("Solve should surface validation errors")
	}
}

func TestSimpleLE(t *testing.T) {
	// max x1 + x2 s.t. x1 ≤ 2, x2 ≤ 3 → min −x1 −x2; optimum (2,3).
	p := Problem{
		C: []float64{-1, -1},
		Constraints: []Constraint{
			{A: []float64{1, 0}, Op: LE, B: 2},
			{A: []float64{0, 1}, Op: LE, B: 3},
		},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-2) > 1e-6 || math.Abs(sol.X[1]-3) > 1e-6 {
		t.Fatalf("X = %v", sol.X)
	}
	if math.Abs(sol.Objective+5) > 1e-6 {
		t.Fatalf("obj = %v", sol.Objective)
	}
}

func TestClassicProblem(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2, 6), obj 36.
	p := Problem{
		C: []float64{-3, -5},
		Constraints: []Constraint{
			{A: []float64{1, 0}, Op: LE, B: 4},
			{A: []float64{0, 2}, Op: LE, B: 12},
			{A: []float64{3, 2}, Op: LE, B: 18},
		},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-2) > 1e-6 || math.Abs(sol.X[1]-6) > 1e-6 {
		t.Fatalf("X = %v", sol.X)
	}
	if math.Abs(sol.Objective+36) > 1e-6 {
		t.Fatalf("obj = %v", sol.Objective)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y = 10, x ≤ 4 → (4, 6), obj 16.
	p := Problem{
		C: []float64{1, 2},
		Constraints: []Constraint{
			{A: []float64{1, 1}, Op: EQ, B: 10},
			{A: []float64{1, 0}, Op: LE, B: 4},
		},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-4) > 1e-6 || math.Abs(sol.X[1]-6) > 1e-6 {
		t.Fatalf("X = %v", sol.X)
	}
}

func TestGEConstraint(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 → (4, 0), obj 8.
	p := Problem{
		C: []float64{2, 3},
		Constraints: []Constraint{
			{A: []float64{1, 1}, Op: GE, B: 4},
			{A: []float64{1, 0}, Op: GE, B: 1},
		},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-8) > 1e-6 {
		t.Fatalf("obj = %v, X = %v", sol.Objective, sol.X)
	}
}

func TestNegativeRHSNormalized(t *testing.T) {
	// −x ≤ −3 means x ≥ 3; min x → 3.
	p := Problem{
		C:           []float64{1},
		Constraints: []Constraint{{A: []float64{-1}, Op: LE, B: -3}},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-3) > 1e-6 {
		t.Fatalf("X = %v", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 2.
	p := Problem{
		C: []float64{1},
		Constraints: []Constraint{
			{A: []float64{1}, Op: LE, B: 1},
			{A: []float64{1}, Op: GE, B: 2},
		},
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// min −x with only x ≥ 0: unbounded below.
	p := Problem{
		C:           []float64{-1},
		Constraints: []Constraint{{A: []float64{1}, Op: GE, B: 0}},
	}
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestDegenerateProblem(t *testing.T) {
	// Degenerate vertex (multiple constraints meet); must still solve.
	p := Problem{
		C: []float64{-1, -1},
		Constraints: []Constraint{
			{A: []float64{1, 0}, Op: LE, B: 1},
			{A: []float64{1, 0}, Op: LE, B: 1},
			{A: []float64{1, 1}, Op: LE, B: 2},
			{A: []float64{0, 1}, Op: LE, B: 1},
		},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective+2) > 1e-6 {
		t.Fatalf("obj = %v", sol.Objective)
	}
}

func TestEqualityOnlyFeasiblePoint(t *testing.T) {
	// x = 5 exactly.
	p := Problem{
		C:           []float64{1},
		Constraints: []Constraint{{A: []float64{1}, Op: EQ, B: 5}},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.X[0]-5) > 1e-6 {
		t.Fatalf("X = %v", sol.X)
	}
}

func TestOpString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Fatal("Op strings wrong")
	}
	if Op(99).String() != "?" {
		t.Fatal("unknown op should be ?")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || Status(9).String() != "unknown" {
		t.Fatal("Status strings wrong")
	}
}

// Property: for random feasible bounded LPs of the transportation flavor,
// the solution respects every constraint.
func TestSolutionFeasibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRand(seed)
		nv := 2 + rng.Intn(4)
		nc := 1 + rng.Intn(4)
		p := Problem{C: make([]float64, nv)}
		for i := range p.C {
			p.C[i] = rng.Float64()*4 - 1 // mostly positive → bounded min
		}
		for c := 0; c < nc; c++ {
			a := make([]float64, nv)
			for i := range a {
				a[i] = rng.Float64()
			}
			p.Constraints = append(p.Constraints, Constraint{A: a, Op: LE, B: 1 + rng.Float64()*10})
		}
		// Add a lower bound so min of negative coefficients stays bounded:
		// Σx ≤ big.
		all := make([]float64, nv)
		for i := range all {
			all[i] = 1
		}
		p.Constraints = append(p.Constraints, Constraint{A: all, Op: LE, B: 100})
		sol, err := p.Solve()
		if err != nil || sol.Status != Optimal {
			return false
		}
		for _, c := range p.Constraints {
			var lhs float64
			for i, a := range c.A {
				lhs += a * sol.X[i]
			}
			if lhs > c.B+1e-6 {
				return false
			}
		}
		for _, x := range sol.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: relaxing a binding ≤ constraint can only improve (not worsen)
// the minimum.
func TestRelaxationMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRand(seed)
		p := Problem{
			C: []float64{-(1 + rng.Float64()), -(1 + rng.Float64())},
			Constraints: []Constraint{
				{A: []float64{1, 1}, Op: LE, B: 1 + rng.Float64()*5},
				{A: []float64{1, 0}, Op: LE, B: 1 + rng.Float64()*5},
			},
		}
		s1, err := p.Solve()
		if err != nil || s1.Status != Optimal {
			return false
		}
		p.Constraints[0].B *= 2
		s2, err := p.Solve()
		if err != nil || s2.Status != Optimal {
			return false
		}
		return s2.Objective <= s1.Objective+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
