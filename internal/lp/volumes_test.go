package lp

import (
	"math"
	"testing"
)

func TestSolveTaskPlacementVolumesValidation(t *testing.T) {
	if _, _, _, err := SolveTaskPlacementVolumes(nil, nil, nil); err == nil {
		t.Fatal("empty bandwidth arrays should error")
	}
	if _, _, _, err := SolveTaskPlacementVolumes(nil, []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("mismatched bandwidth arrays should error")
	}
	if _, _, _, err := SolveTaskPlacementVolumes([][]float64{{1}}, []float64{1, 1}, []float64{1, 1}); err == nil {
		t.Fatal("short volume row should error")
	}
}

func TestSolveTaskPlacementVolumesBalances(t *testing.T) {
	// One dataset, all its shuffle volume at site 0; site 1 has a fat
	// downlink. The optimum sends most reduce tasks to site 0 itself
	// (avoiding uploads) but is bounded by its downlink for others' data.
	f := [][]float64{{100, 0}}
	up := []float64{10, 10}
	down := []float64{10, 100}
	r, tOpt, pivots, err := SolveTaskPlacementVolumes(f, up, down)
	if err != nil {
		t.Fatal(err)
	}
	if pivots <= 0 {
		t.Fatal("expected simplex work")
	}
	var sum float64
	for _, v := range r {
		if v < -1e-9 {
			t.Fatalf("negative fraction: %v", r)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("fractions sum to %v", sum)
	}
	// Verify the reported optimum against a brute-force scan over r_0.
	best := math.Inf(1)
	for i := 0; i <= 1000; i++ {
		r0 := float64(i) / 1000
		tt := math.Max((1-r0)*100/up[0], (1-r0)*100/down[1])
		if tt < best {
			best = tt
		}
	}
	if tOpt > best+1e-6 {
		t.Fatalf("LP optimum %v worse than brute force %v", tOpt, best)
	}
}

func TestSolveTaskPlacementVolumesZeroVolumes(t *testing.T) {
	f := [][]float64{{0, 0, 0}}
	up := []float64{1, 1, 1}
	down := []float64{1, 1, 1}
	r, tOpt, _, err := SolveTaskPlacementVolumes(f, up, down)
	if err != nil {
		t.Fatal(err)
	}
	if tOpt > 1e-9 {
		t.Fatalf("no data should mean zero time, got %v", tOpt)
	}
	var sum float64
	for _, v := range r {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("fractions must still form a distribution: %v", r)
	}
}

func TestIncomingInflationIncreasesPredictedVolume(t *testing.T) {
	in := &PlacementInput{
		Sites: 2, Datasets: 1,
		Input:     [][]float64{{100, 0}},
		Reduction: []float64{1},
		SelfSim:   [][]float64{{0, 0}},
		CrossSim:  [][][]float64{{{0, 0.5}, {0.5, 0}}},
		Up:        []float64{10, 10},
		Down:      []float64{10, 10},
		Lag:       30,
	}
	move := [][][]float64{{{0, 40}, {0, 0}}}
	plain := in.ShuffleVolumes(move)[0][1] // 40 × (1−0.5) = 20

	in.IncomingInflation = 1.5
	inflated := in.ShuffleVolumes(move)[0][1] // 40 × 0.75 = 30
	if math.Abs(plain-20) > 1e-9 || math.Abs(inflated-30) > 1e-9 {
		t.Fatalf("plain %v inflated %v, want 20/30", plain, inflated)
	}

	// Inflation caps at the full volume.
	in.IncomingInflation = 10
	if got := in.ShuffleVolumes(move)[0][1]; math.Abs(got-40) > 1e-9 {
		t.Fatalf("capped inflation = %v, want 40", got)
	}
}

func TestSolveXForbidsDownhillMoves(t *testing.T) {
	// Site 0 is slow, site 1 fast: the optimizer must never move data from
	// the fast site toward the slower one, even when that would be
	// "balanced" volume-wise.
	in := &PlacementInput{
		Sites: 2, Datasets: 1,
		Input:     [][]float64{{50, 400}},
		Reduction: []float64{1},
		SelfSim:   [][]float64{{0.2, 0.2}},
		CrossSim:  [][][]float64{{{0.2, 0.9}, {0.9, 0.2}}},
		Up:        []float64{5, 50},
		Down:      []float64{5, 50},
		Lag:       60,
	}
	plan, err := SolvePlacement(in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Move[0][1][0] > 1e-6 {
		t.Fatalf("moved %v MB toward the slower uplink", plan.Move[0][1][0])
	}
}
