package netio

import (
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"bohr/internal/engine"
	"bohr/internal/faults"
	"bohr/internal/obs"
)

// TestDialHonorsContextDeadline points the controller at a listener that
// accepts but never answers the hello; the context deadline must cut the
// handshake short of the configured DialTimeout.
func TestDialHonorsContextDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold it open, say nothing
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = DialConfig(ctx, []string{ln.Addr().String()}, Config{
		DialTimeout: 10 * time.Second, RequestTimeout: 10 * time.Second,
	})
	if err == nil {
		t.Fatal("dial against a mute listener succeeded")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("dial took %v to honor a 150ms context deadline", d)
	}
}

// TestQueryCancellationReleasesResources cancels a query stuck in its
// retry loop (every push from site 0 is dropped by the injector): RunQuery
// must return the context error promptly — aborting the backoff sleep
// rather than finishing it — decrement the inflight gauge, and leave no
// goroutines behind.
func TestQueryCancellationReleasesResources(t *testing.T) {
	var workers []*Worker
	var addrs []string
	for i := 0; i < 2; i++ {
		w, err := NewWorker(i, "127.0.0.1:0", 0, int64(200+i))
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	col := obs.NewCollector()
	cfg := fastConfig()
	cfg.Retries = 1000 // effectively unbounded: only the ctx stops the loop
	cfg.RetryBase = 200 * time.Millisecond
	cfg.RetryCap = 400 * time.Millisecond
	ctl, err := DialConfig(context.Background(), addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl.SetObs(col)
	t.Cleanup(func() {
		ctl.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	var recs []engine.KV
	for i := 0; i < 30; i++ {
		recs = append(recs, engine.KV{Key: fmt.Sprintf("k%d", i%5), Val: 1})
	}
	if err := ctl.Put(context.Background(), 0, "d", []string{"k"}, recs); err != nil {
		t.Fatal(err)
	}
	// Drop every framed write site 0 makes from now on: scatter pushes can
	// never succeed, so the query lives in the retry/backoff loop until the
	// context ends it.
	sched := &faults.Schedule{Seed: 3, Events: []faults.Event{
		{Kind: faults.KindMsgDrop, Site: 0, Start: 0, End: 3600, Prob: 1},
	}}
	workers[0].SetInjector(sched.Injector(0, time.Now()))

	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := ctl.RunQuery(ctx, QueryDTO{ID: "doomed", Dataset: "d", Combine: engine.OpSum}, []float64{0, 1})
		errc <- err
	}()
	time.Sleep(250 * time.Millisecond) // let the scatter start failing
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("cancelled query reported success")
		}
		if !errors.Is(err, context.Canceled) {
			// The in-flight attempt may surface as an I/O error instead of
			// the ctx error; either way the loop must have stopped, which
			// the prompt return below proves. But a retryable error with a
			// live ctx would keep looping, so require ctx to be reflected.
			t.Fatalf("cancelled query returned %v, want context.Canceled in the chain", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("RunQuery did not return after cancellation")
	}
	if n := ctl.InflightQueries(); n != 0 {
		t.Fatalf("inflight gauge = %d after cancellation, want 0", n)
	}
	waitGoroutines(t, baseline)
}
