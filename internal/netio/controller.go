package netio

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"bohr/internal/engine"
	"bohr/internal/obs"
)

// Controller is the logically centralized coordinator (§2.1): it connects
// to every site worker, loads data, exchanges probes, directs similarity-
// aware movement, and drives distributed query execution over real TCP.
type Controller struct {
	addrs []string
	conns []*siteConn
	obs   *obs.Collector
}

// SetObs attaches an observability collector: RunQuery records per-query
// spans and shuffle counters into it. The live path has no simulator
// clock, so netio span times are measured wall seconds (inherently
// nondeterministic, unlike the engine's modeled spans). Nil detaches.
func (c *Controller) SetObs(col *obs.Collector) { c.obs = col }

// siteConn pairs a connection with its own lock so requests to different
// sites proceed in parallel while each connection stays request/response.
type siteConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to the workers at the given addresses (index = site ID).
func Dial(addrs []string) (*Controller, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("netio: controller needs at least one worker")
	}
	c := &Controller{addrs: append([]string(nil), addrs...)}
	for site, addr := range addrs {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("netio: dial worker %d at %s: %w", site, addr, err)
		}
		resp, err := call(conn, &Envelope{Type: MsgHello})
		if err != nil {
			conn.Close()
			c.Close()
			return nil, fmt.Errorf("netio: hello to worker %d: %w", site, err)
		}
		if resp.Site != site {
			conn.Close()
			c.Close()
			return nil, fmt.Errorf("netio: worker at %s identifies as site %d, want %d", addr, resp.Site, site)
		}
		c.conns = append(c.conns, &siteConn{conn: conn})
	}
	return c, nil
}

// Close tears down all connections.
func (c *Controller) Close() {
	for _, sc := range c.conns {
		if sc != nil && sc.conn != nil {
			sc.conn.Close()
		}
	}
}

// N returns the number of sites.
func (c *Controller) N() int { return len(c.addrs) }

// rpc issues one request to a site, serialized per controller.
func (c *Controller) rpc(site int, req *Envelope) (*Envelope, error) {
	if site < 0 || site >= len(c.conns) {
		return nil, fmt.Errorf("netio: site %d out of range", site)
	}
	sc := c.conns[site]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return call(sc.conn, req)
}

// Put stores records for a dataset at a site, registering its schema.
func (c *Controller) Put(site int, dataset string, schema []string, records []engine.KV) error {
	_, err := c.rpc(site, &Envelope{
		Type: MsgPut, Dataset: dataset, Schema: schema, Records: records,
	})
	return err
}

// SiteStats is one site's view of a dataset under a projection.
type SiteStats struct {
	Records int
	Top     []ProbeCellDTO
}

// Stats fetches record counts and the top-k projected cells from a site.
func (c *Controller) Stats(site int, dataset string, dims []string, topK int) (*SiteStats, error) {
	resp, err := c.rpc(site, &Envelope{Type: MsgStats, Dataset: dataset, Dims: dims, TopK: topK})
	if err != nil {
		return nil, err
	}
	return &SiteStats{Records: resp.Count, Top: resp.Cells}, nil
}

// Score sends a probe (cells from the bottleneck site) to a site and
// returns its similarity score (§4.2 over real sockets).
func (c *Controller) Score(site int, dataset string, dims []string, probe []ProbeCellDTO) (float64, error) {
	resp, err := c.rpc(site, &Envelope{Type: MsgScore, Dataset: dataset, Dims: dims, Cells: probe})
	if err != nil {
		return 0, err
	}
	return resp.Score, nil
}

// Move instructs src to select count records (similarity-aware against the
// provided destination cells when similar is true) and push them to dst
// through its shaped uplink. It returns the number of records moved.
func (c *Controller) Move(src, dst int, dataset string, count int, similar bool, dstCells []ProbeCellDTO) (int, error) {
	if dst < 0 || dst >= len(c.addrs) {
		return 0, fmt.Errorf("netio: destination %d out of range", dst)
	}
	resp, err := c.rpc(src, &Envelope{
		Type: MsgMove, Dataset: dataset, Count: count,
		Dst: c.addrs[dst], Similar: similar, Cells: dstCells,
	})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// QueryResult is the outcome of a distributed query run.
type QueryResult struct {
	Output []engine.KV
	// IntermediatePerSite is each site's post-combiner record count.
	IntermediatePerSite []int
	// ShuffledRecords counts intermediate records that crossed the WAN.
	ShuffledRecords int
	// Elapsed is the wall-clock query time (map+shuffle+reduce).
	Elapsed time.Duration
}

// RunQuery executes one projection/combine query across all sites: every
// worker maps and combines its local records and scatters intermediate
// records to their reduce owners (weighted by taskFrac); then each site
// reduces what it received and the controller merges the outputs.
func (c *Controller) RunQuery(q QueryDTO, taskFrac []float64) (*QueryResult, error) {
	n := c.N()
	if q.ID == "" {
		return nil, fmt.Errorf("netio: query needs an ID")
	}
	if taskFrac == nil {
		taskFrac = make([]float64, n)
		for i := range taskFrac {
			taskFrac[i] = 1 / float64(n)
		}
	}
	if len(taskFrac) != n {
		return nil, fmt.Errorf("netio: task fractions sized %d, want %d", len(taskFrac), n)
	}
	start := time.Now()
	sp := c.obs.StartSpan("netio:" + q.ID)
	defer sp.End()

	// Map phase: all sites in parallel.
	type mapOut struct {
		site    int
		perSite []int
		inter   int
		err     error
	}
	outs := make(chan mapOut, n)
	for site := 0; site < n; site++ {
		go func(site int) {
			resp, err := c.rpc(site, &Envelope{
				Type: MsgRunMap, Query: q, TaskFrac: taskFrac, Peers: c.addrs,
			})
			if err != nil {
				outs <- mapOut{site: site, err: err}
				return
			}
			outs <- mapOut{site: site, perSite: resp.PerSite, inter: resp.Count}
		}(site)
	}
	expected := make([]int, n)
	interPerSite := make([]int, n)
	shuffled := 0
	for i := 0; i < n; i++ {
		o := <-outs
		if o.err != nil {
			return nil, fmt.Errorf("netio: map at site %d: %w", o.site, o.err)
		}
		interPerSite[o.site] = o.inter
		for dst, cnt := range o.perSite {
			expected[dst] += cnt
			if dst != o.site {
				shuffled += cnt
			}
		}
	}
	sp.Child("map").Add(time.Since(start).Seconds())
	reduceStart := time.Now()

	// Reduce phase: all sites in parallel, each waiting for its expected
	// intermediate records.
	type redOut struct {
		site    int
		records []engine.KV
		err     error
	}
	reds := make(chan redOut, n)
	for site := 0; site < n; site++ {
		go func(site int) {
			resp, err := c.rpc(site, &Envelope{
				Type: MsgReduce, Query: q, Expected: expected[site],
			})
			if err != nil {
				reds <- redOut{site: site, err: err}
				return
			}
			reds <- redOut{site: site, records: resp.Records}
		}(site)
	}
	var all []engine.KV
	for i := 0; i < n; i++ {
		o := <-reds
		if o.err != nil {
			return nil, fmt.Errorf("netio: reduce at site %d: %w", o.site, o.err)
		}
		all = append(all, o.records...)
	}
	// Reduce outputs own disjoint key sets; merging is concatenation, but
	// sort for deterministic output.
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	sp.Child("reduce").Add(time.Since(reduceStart).Seconds())
	sp.Add(time.Since(start).Seconds())
	c.obs.Count("netio.queries", 1)
	c.obs.Count("netio.shuffle.records", float64(shuffled))
	c.obs.Observe("netio.query.elapsed_s", time.Since(start).Seconds())
	return &QueryResult{
		Output:              all,
		IntermediatePerSite: interPerSite,
		ShuffledRecords:     shuffled,
		Elapsed:             time.Since(start),
	}, nil
}
