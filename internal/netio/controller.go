package netio

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bohr/internal/engine"
	"bohr/internal/obs"
	"bohr/internal/stats"
)

// Config tunes the controller's resilience machinery. The zero value
// takes every default, so Dial(addrs) behaves sensibly out of the box.
type Config struct {
	// DialTimeout bounds one TCP connect (default 5s).
	DialTimeout time.Duration
	// RequestTimeout is the per-request I/O deadline covering the whole
	// round trip on the site connection (default 30s).
	RequestTimeout time.Duration
	// ReduceTimeout is the extra server-side wait a reducer is granted
	// for intermediate records, carried to the worker in Envelope.TimeoutS
	// (default 10s).
	ReduceTimeout time.Duration
	// Retries is the per-request retry budget for idempotent requests;
	// 0 means the default of 3, negative disables retries.
	Retries int
	// QueryRetries bounds whole-query re-executions inside RunQuery;
	// 0 means the default of 1, negative disables.
	QueryRetries int
	// RetryBase is the first backoff step (default 50ms); successive
	// retries double it up to RetryCap (default 2s), each scaled by a
	// seeded jitter factor in [0.5, 1).
	RetryBase time.Duration
	RetryCap  time.Duration
	// Seed drives the jitter stream, keeping the backoff schedule
	// reproducible for a fixed configuration.
	Seed int64
	// Logger receives structured fault-path logs (request timeouts and
	// retries at Warn, with the site and request type attached); nil
	// disables logging.
	Logger *slog.Logger
}

func (cfg Config) withDefaults() Config {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.ReduceTimeout <= 0 {
		cfg.ReduceTimeout = 10 * time.Second
	}
	switch {
	case cfg.Retries == 0:
		cfg.Retries = 3
	case cfg.Retries < 0:
		cfg.Retries = 0
	}
	switch {
	case cfg.QueryRetries == 0:
		cfg.QueryRetries = 1
	case cfg.QueryRetries < 0:
		cfg.QueryRetries = 0
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 50 * time.Millisecond
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = 2 * time.Second
	}
	return cfg
}

// Controller is the logically centralized coordinator (§2.1): it connects
// to every site worker, loads data, exchanges probes, directs similarity-
// aware movement, and drives distributed query execution over real TCP.
// Failed connections are redialed transparently and idempotent requests
// are retried with exponential backoff.
type Controller struct {
	addrs []string
	cfg   Config
	conns []*siteConn
	obs   *obs.Collector

	start    time.Time // dial time; event timestamps are seconds since it
	inflight int64     // queries currently inside RunQuery (atomic)

	rngMu sync.Mutex
	rng   *rand.Rand
}

// SetObs attaches an observability collector: RunQuery records per-query
// spans and shuffle counters into it, and the retry machinery counts
// netio.retries / netio.timeouts. The live path has no simulator clock,
// so netio span times are measured wall seconds (inherently
// nondeterministic, unlike the engine's modeled spans). Nil detaches.
func (c *Controller) SetObs(col *obs.Collector) { c.obs = col }

// siteConn pairs a connection with its own lock so requests to different
// sites proceed in parallel while each connection stays request/response.
// conn is nil after a failure until the next attempt redials.
type siteConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to the workers at the given addresses (index = site ID)
// with the default Config. The context bounds the initial connection
// handshakes; it does not outlive the call.
func Dial(ctx context.Context, addrs []string) (*Controller, error) {
	return DialConfig(ctx, addrs, Config{})
}

// DialConfig is Dial with explicit resilience tuning.
func DialConfig(ctx context.Context, addrs []string, cfg Config) (*Controller, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("netio: controller needs at least one worker")
	}
	cfg = cfg.withDefaults()
	c := &Controller{
		addrs: append([]string(nil), addrs...),
		cfg:   cfg,
		start: time.Now(),
		rng:   stats.NewRand(stats.Split(cfg.Seed, 0x5e71)),
	}
	for site := range addrs {
		conn, err := c.dialSite(ctx, site)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.conns = append(c.conns, &siteConn{conn: conn})
	}
	return c, nil
}

// dialSite opens one worker connection and verifies its identity. The
// context can cut the connect and handshake short of DialTimeout.
func (c *Controller) dialSite(ctx context.Context, site int) (net.Conn, error) {
	addr := c.addrs[site]
	d := net.Dialer{Timeout: c.cfg.DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netio: dial worker %d at %s: %w", site, addr, err)
	}
	conn.SetDeadline(deadlineFor(ctx, c.cfg.RequestTimeout))
	resp, err := call(conn, &Envelope{Type: MsgHello})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("netio: hello to worker %d: %w", site, err)
	}
	if resp.Site != site {
		conn.Close()
		return nil, fmt.Errorf("netio: worker at %s identifies as site %d, want %d", addr, resp.Site, site)
	}
	conn.SetDeadline(time.Time{})
	return conn, nil
}

// Close tears down all connections.
func (c *Controller) Close() {
	for _, sc := range c.conns {
		if sc == nil {
			continue
		}
		sc.mu.Lock()
		if sc.conn != nil {
			sc.conn.Close()
			sc.conn = nil
		}
		sc.mu.Unlock()
	}
}

// N returns the number of sites.
func (c *Controller) N() int { return len(c.addrs) }

// InflightQueries reports how many queries are currently inside RunQuery,
// for the live-telemetry gauges.
func (c *Controller) InflightQueries() int { return int(atomic.LoadInt64(&c.inflight)) }

// event records a discrete controller-side occurrence (retry, timeout) on
// the collector's event log, timestamped in wall seconds since dial.
func (c *Controller) event(kind string, site int, detail string) {
	if c.obs == nil {
		return
	}
	c.obs.RecordEvent(obs.Event{
		T: time.Since(c.start).Seconds(), Kind: kind, Site: site, Detail: detail,
	})
}

// traceCtx stamps the distributed-trace context onto an outgoing request
// when a collector is attached, so the worker ships its span subtree and
// metric snapshot back with the response.
func (c *Controller) traceCtx(req *Envelope, traceID, parent string) {
	if c.obs == nil {
		return
	}
	req.TraceID = traceID
	req.ParentSpan = parent
	req.TraceWall = c.obs.WallClock()
}

// idempotent reports whether a request type can be re-sent safely after a
// failure. Put, Move, and Transfer mutate worker state per delivery, so a
// retry could double-apply them (documented at-least-once hazard); RunMap
// re-scatter is safe because reducers replace per-source batches.
func idempotent(t MsgType) bool {
	switch t {
	case MsgHello, MsgStats, MsgScore, MsgRunMap, MsgReduce:
		return true
	}
	return false
}

// deadlineFor caps a relative I/O timeout by the context's deadline, so
// a caller-supplied deadline tighter than the configured one wins.
func deadlineFor(ctx context.Context, d time.Duration) time.Time {
	t := time.Now().Add(d)
	if cd, ok := ctx.Deadline(); ok && cd.Before(t) {
		return cd
	}
	return t
}

// sleepCtx waits d or until the context is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// backoff is exponential from RetryBase, capped at RetryCap, scaled by a
// seeded jitter factor in [0.5, 1): deterministic for a fixed Config.Seed.
func (c *Controller) backoff(attempt int) time.Duration {
	d := c.cfg.RetryBase << uint(attempt)
	if d <= 0 || d > c.cfg.RetryCap {
		d = c.cfg.RetryCap
	}
	c.rngMu.Lock()
	f := 0.5 + 0.5*c.rng.Float64()
	c.rngMu.Unlock()
	return time.Duration(float64(d) * f)
}

// rpc issues one request to a site, retrying idempotent request types on
// transient failures with exponential backoff. The context is checked
// before each attempt, bounds each attempt's connection deadline, and
// aborts backoff sleeps, so a cancelled caller stops retrying promptly.
func (c *Controller) rpc(ctx context.Context, site int, req *Envelope) (*Envelope, error) {
	if site < 0 || site >= len(c.conns) {
		return nil, fmt.Errorf("netio: site %d out of range", site)
	}
	budget := 0
	if idempotent(req.Type) {
		budget = c.cfg.Retries
	}
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("netio: rpc to site %d: %w", site, err)
		}
		resp, err := c.attempt(ctx, site, req)
		if err == nil {
			return resp, nil
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			c.obs.Count("netio.timeouts", 1)
			c.event("timeout", site, fmt.Sprintf("req=%d: %v", req.Type, err))
			if c.cfg.Logger != nil {
				c.cfg.Logger.Warn("netio: request timeout",
					slog.Int("site", site), slog.Int("req_type", int(req.Type)),
					slog.String("trace_id", req.TraceID), slog.String("error", err.Error()))
			}
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("netio: rpc to site %d: %w (after: %v)", site, cerr, err)
		}
		if attempt >= budget || !IsRetryable(err) {
			return nil, err
		}
		c.obs.Count("netio.retries", 1)
		c.event("retry", site, fmt.Sprintf("req=%d attempt=%d: %v", req.Type, attempt+1, err))
		if c.cfg.Logger != nil {
			c.cfg.Logger.Warn("netio: retrying request",
				slog.Int("site", site), slog.Int("req_type", int(req.Type)),
				slog.Int("attempt", attempt+1), slog.String("trace_id", req.TraceID),
				slog.String("error", err.Error()))
		}
		if err := sleepCtx(ctx, c.backoff(attempt)); err != nil {
			return nil, fmt.Errorf("netio: rpc to site %d: %w", site, err)
		}
	}
}

// attempt issues one request over the site's connection, redialing first
// if an earlier failure tore the connection down. The connection deadline
// bounds the whole round trip; reduce requests get extra room for the
// server-side intermediate wait and carry that wait in TimeoutS so worker
// and controller agree on it.
func (c *Controller) attempt(ctx context.Context, site int, req *Envelope) (*Envelope, error) {
	sc := c.conns[site]
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.conn == nil {
		conn, err := c.dialSite(ctx, site)
		if err != nil {
			return nil, err
		}
		sc.conn = conn
	}
	deadline := c.cfg.RequestTimeout
	if req.Type == MsgReduce {
		deadline += c.cfg.ReduceTimeout
		if req.TimeoutS == 0 {
			req.TimeoutS = c.cfg.ReduceTimeout.Seconds()
		}
	}
	sc.conn.SetDeadline(deadlineFor(ctx, deadline))
	// A cancellation watchdog yanks the deadline so in-flight reads and
	// writes abort within milliseconds instead of riding out the timeout.
	conn := sc.conn
	watchdogDone := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(watchdogDone)
		select {
		case <-ctx.Done():
			conn.SetDeadline(time.Unix(1, 0))
		case <-stop:
		}
	}()
	resp, err := call(sc.conn, req)
	close(stop)
	<-watchdogDone
	if err != nil {
		// A typed MsgErr leaves the stream aligned; anything else may
		// have left a partial frame, so drop the connection and let the
		// next attempt start clean.
		var re *RemoteError
		if errors.As(err, &re) {
			sc.conn.SetDeadline(time.Time{})
		} else {
			sc.conn.Close()
			sc.conn = nil
		}
		return nil, err
	}
	sc.conn.SetDeadline(time.Time{})
	return resp, nil
}

// Put stores records for a dataset at a site, registering its schema.
func (c *Controller) Put(ctx context.Context, site int, dataset string, schema []string, records []engine.KV) error {
	_, err := c.rpc(ctx, site, &Envelope{
		Type: MsgPut, Dataset: dataset, Schema: schema, Records: records,
	})
	return err
}

// SiteStats is one site's view of a dataset under a projection.
type SiteStats struct {
	Records int
	Top     []ProbeCellDTO
}

// Stats fetches record counts and the top-k projected cells from a site.
func (c *Controller) Stats(ctx context.Context, site int, dataset string, dims []string, topK int) (*SiteStats, error) {
	resp, err := c.rpc(ctx, site, &Envelope{Type: MsgStats, Dataset: dataset, Dims: dims, TopK: topK})
	if err != nil {
		return nil, err
	}
	return &SiteStats{Records: resp.Count, Top: resp.Cells}, nil
}

// Score sends a probe (cells from the bottleneck site) to a site and
// returns its similarity score (§4.2 over real sockets).
func (c *Controller) Score(ctx context.Context, site int, dataset string, dims []string, probe []ProbeCellDTO) (float64, error) {
	resp, err := c.rpc(ctx, site, &Envelope{Type: MsgScore, Dataset: dataset, Dims: dims, Cells: probe})
	if err != nil {
		return 0, err
	}
	return resp.Score, nil
}

// Move instructs src to select count records (similarity-aware against the
// provided destination cells when similar is true) and push them to dst
// through its shaped uplink. It returns the number of records moved.
func (c *Controller) Move(ctx context.Context, src, dst int, dataset string, count int, similar bool, dstCells []ProbeCellDTO) (int, error) {
	if dst < 0 || dst >= len(c.addrs) {
		return 0, fmt.Errorf("netio: destination %d out of range", dst)
	}
	req := &Envelope{
		Type: MsgMove, Dataset: dataset, Count: count,
		Dst: c.addrs[dst], Similar: similar, Cells: dstCells,
	}
	name := fmt.Sprintf("netio:move:%d->%d", src, dst)
	c.traceCtx(req, name, name)
	sp := c.obs.StartSpan(name)
	resp, err := c.rpc(ctx, src, req)
	sp.End()
	if err != nil {
		return 0, err
	}
	sp.Attach(resp.Trace)
	c.obs.MergeSnapshot(resp.Metrics)
	return resp.Count, nil
}

// QueryResult is the outcome of a distributed query run.
type QueryResult struct {
	Output []engine.KV
	// IntermediatePerSite is each site's post-combiner record count.
	IntermediatePerSite []int
	// ShuffledRecords counts intermediate records that crossed the WAN.
	ShuffledRecords int
	// Elapsed is the wall-clock query time (map+shuffle+reduce).
	Elapsed time.Duration
}

// RunQuery executes one projection/combine query across all sites: every
// worker maps and combines its local records and scatters intermediate
// records to their reduce owners (weighted by taskFrac); then each site
// reduces what it received and the controller merges the outputs. On a
// retryable failure the whole query is re-executed up to QueryRetries
// times — safe because reducers key intermediate batches by source site,
// so a re-scatter replaces rather than double-counts. The context cancels
// the whole scatter/gather: every per-site RPC inherits it, so a client
// disconnect or deadline unwinds the in-flight fan-out instead of leaking
// goroutines past their I/O deadlines.
func (c *Controller) RunQuery(ctx context.Context, q QueryDTO, taskFrac []float64) (*QueryResult, error) {
	n := c.N()
	if q.ID == "" {
		return nil, fmt.Errorf("netio: query needs an ID")
	}
	if taskFrac == nil {
		taskFrac = make([]float64, n)
		for i := range taskFrac {
			taskFrac[i] = 1 / float64(n)
		}
	}
	if len(taskFrac) != n {
		return nil, fmt.Errorf("netio: task fractions sized %d, want %d", len(taskFrac), n)
	}
	c.obs.Gauge("netio.inflight_queries", float64(atomic.AddInt64(&c.inflight, 1)))
	defer func() {
		c.obs.Gauge("netio.inflight_queries", float64(atomic.AddInt64(&c.inflight, -1)))
	}()
	for attempt := 0; ; attempt++ {
		res, err := c.runQueryOnce(ctx, q, taskFrac)
		if err == nil {
			return res, nil
		}
		if attempt >= c.cfg.QueryRetries || !IsRetryable(err) || ctx.Err() != nil {
			return nil, err
		}
		c.obs.Count("netio.retries", 1)
		if c.cfg.Logger != nil {
			c.cfg.Logger.Warn("netio: re-executing query",
				slog.String("trace_id", q.ID), slog.Int("attempt", attempt+1),
				slog.String("error", err.Error()))
		}
		if err := sleepCtx(ctx, c.backoff(attempt)); err != nil {
			return nil, fmt.Errorf("netio: query %s: %w", q.ID, err)
		}
	}
}

func (c *Controller) runQueryOnce(ctx context.Context, q QueryDTO, taskFrac []float64) (*QueryResult, error) {
	n := c.N()
	start := time.Now()
	sp := c.obs.StartSpan("netio:" + q.ID)
	defer sp.End()

	// Map phase: all sites in parallel. Worker span subtrees and metric
	// snapshots ride back on the responses; they are grafted under the
	// query span in site order after the phase so stitched traces have a
	// stable shape regardless of completion order.
	type mapOut struct {
		site    int
		perSite []int
		inter   int
		trace   *obs.Span
		metrics *obs.Snapshot
		err     error
	}
	outs := make(chan mapOut, n)
	for site := 0; site < n; site++ {
		go func(site int) {
			req := &Envelope{
				Type: MsgRunMap, Query: q, TaskFrac: taskFrac, Peers: c.addrs,
			}
			c.traceCtx(req, q.ID, "netio:"+q.ID)
			resp, err := c.rpc(ctx, site, req)
			if err != nil {
				outs <- mapOut{site: site, err: err}
				return
			}
			outs <- mapOut{
				site: site, perSite: resp.PerSite, inter: resp.Count,
				trace: resp.Trace, metrics: resp.Metrics,
			}
		}(site)
	}
	expected := make([]int, n)
	interPerSite := make([]int, n)
	mapTraces := make([]*obs.Span, n)
	mapMetrics := make([]*obs.Snapshot, n)
	shuffled := 0
	var mapErr error
	for i := 0; i < n; i++ {
		o := <-outs
		if o.err != nil {
			if mapErr == nil {
				mapErr = fmt.Errorf("netio: map at site %d: %w", o.site, o.err)
			}
			continue
		}
		interPerSite[o.site] = o.inter
		mapTraces[o.site] = o.trace
		mapMetrics[o.site] = o.metrics
		for dst, cnt := range o.perSite {
			expected[dst] += cnt
			if dst != o.site {
				shuffled += cnt
			}
		}
	}
	if mapErr != nil {
		return nil, mapErr
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("netio: query %s before reduce: %w", q.ID, err)
	}
	for site := 0; site < n; site++ {
		sp.Attach(mapTraces[site])
		c.obs.MergeSnapshot(mapMetrics[site])
	}
	sp.Child("map").Add(time.Since(start).Seconds())
	reduceStart := time.Now()

	// Reduce phase: all sites in parallel, each waiting for its expected
	// intermediate records.
	type redOut struct {
		site    int
		records []engine.KV
		trace   *obs.Span
		metrics *obs.Snapshot
		err     error
	}
	reds := make(chan redOut, n)
	for site := 0; site < n; site++ {
		go func(site int) {
			req := &Envelope{
				Type: MsgReduce, Query: q, Expected: expected[site],
			}
			c.traceCtx(req, q.ID, "netio:"+q.ID)
			resp, err := c.rpc(ctx, site, req)
			if err != nil {
				reds <- redOut{site: site, err: err}
				return
			}
			reds <- redOut{site: site, records: resp.Records, trace: resp.Trace, metrics: resp.Metrics}
		}(site)
	}
	var all []engine.KV
	redTraces := make([]*obs.Span, n)
	redMetrics := make([]*obs.Snapshot, n)
	var redErr error
	for i := 0; i < n; i++ {
		o := <-reds
		if o.err != nil {
			if redErr == nil {
				redErr = fmt.Errorf("netio: reduce at site %d: %w", o.site, o.err)
			}
			continue
		}
		redTraces[o.site] = o.trace
		redMetrics[o.site] = o.metrics
		all = append(all, o.records...)
	}
	if redErr != nil {
		return nil, redErr
	}
	for site := 0; site < n; site++ {
		sp.Attach(redTraces[site])
		c.obs.MergeSnapshot(redMetrics[site])
	}
	// Reduce outputs own disjoint key sets; merging is concatenation, but
	// sort for deterministic output.
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	sp.Child("reduce").Add(time.Since(reduceStart).Seconds())
	sp.Add(time.Since(start).Seconds())
	c.obs.Count("netio.queries", 1)
	c.obs.Count("netio.shuffle.records", float64(shuffled))
	c.obs.Observe("netio.query.elapsed_s", time.Since(start).Seconds())
	return &QueryResult{
		Output:              all,
		IntermediatePerSite: interPerSite,
		ShuffledRecords:     shuffled,
		Elapsed:             time.Since(start),
	}, nil
}
