package netio

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"bohr/internal/engine"
	"bohr/internal/obs"
)

func TestBucketValidation(t *testing.T) {
	if _, err := NewBucket(0, 1); err == nil {
		t.Fatal("zero rate should error")
	}
	b, err := NewBucket(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rate() != 1000 {
		t.Fatalf("rate = %v", b.Rate())
	}
}

func TestBucketPacing(t *testing.T) {
	// 1 MB/s with a 10 KB burst: sending 100 KB with the contractual sleep
	// after each take must spread over ≈90 ms (burst covers the first 10 KB).
	b, _ := NewBucket(1e6, 1e4)
	start := time.Now()
	for i := 0; i < 10; i++ {
		if d := b.Take(10_000); d > 0 {
			time.Sleep(d)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 70*time.Millisecond || elapsed > 200*time.Millisecond {
		t.Fatalf("paced send took %v, want ≈90ms", elapsed)
	}
	if b.Take(0) != 0 {
		t.Fatal("zero-byte take should not wait")
	}
}

func TestBucketRefills(t *testing.T) {
	b, _ := NewBucket(1e6, 1e6)
	b.Take(1_000_000) // drain the burst
	time.Sleep(50 * time.Millisecond)
	// ~50 KB refilled; a 10 KB take should not wait.
	if d := b.Take(10_000); d > 0 {
		t.Fatalf("after refill take should be free, waited %v", d)
	}
}

func TestMsgRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	env := &Envelope{
		Type:    MsgPut,
		Dataset: "ds",
		Schema:  []string{"a", "b"},
		Records: []engine.KV{{Key: "x\x1fy", Val: 3.5}},
		Cells:   []ProbeCellDTO{{Key: "k", Count: 7}},
	}
	if err := WriteMsg(&buf, env); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgPut || got.Dataset != "ds" || len(got.Records) != 1 ||
		got.Records[0].Val != 3.5 || got.Cells[0].Count != 7 {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestReadMsgRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMsg(&buf); err == nil {
		t.Fatal("oversize header should error")
	}
}

// liveCluster starts n workers and a controller on localhost.
func liveCluster(t *testing.T, n int, upMBps float64) (*Controller, []*Worker) {
	t.Helper()
	var workers []*Worker
	var addrs []string
	for i := 0; i < n; i++ {
		w, err := NewWorker(i, "127.0.0.1:0", upMBps, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	ctl, err := Dial(context.Background(), addrs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctl.Close()
		for _, w := range workers {
			_ = w.Close()
		}
	})
	return ctl, workers
}

func key(coords ...string) string { return strings.Join(coords, "\x1f") }

func TestDialValidation(t *testing.T) {
	if _, err := Dial(context.Background(), nil); err == nil {
		t.Fatal("no workers should error")
	}
	if _, err := Dial(context.Background(), []string{"127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable worker should error")
	}
}

func TestPutStatsScore(t *testing.T) {
	ctl, _ := liveCluster(t, 2, 0)
	schema := []string{"url", "country"}
	if err := ctl.Put(context.Background(), 0, "logs", schema, []engine.KV{
		{Key: key("u1", "US"), Val: 1},
		{Key: key("u1", "JP"), Val: 1},
		{Key: key("u2", "US"), Val: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := ctl.Put(context.Background(), 1, "logs", schema, []engine.KV{
		{Key: key("u1", "DE"), Val: 1},
	}); err != nil {
		t.Fatal(err)
	}
	st, err := ctl.Stats(context.Background(), 0, "logs", []string{"url"}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 3 || len(st.Top) != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Top[0].Key != "u1" || st.Top[0].Count != 2 {
		t.Fatalf("top cell = %+v", st.Top[0])
	}
	// Probe from site 0 against site 1: u1 matches (2 of 3 mass).
	score, err := ctl.Score(context.Background(), 1, "logs", []string{"url"}, st.Top)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(score-2.0/3) > 1e-9 {
		t.Fatalf("score = %v, want 2/3", score)
	}
}

func TestStatsUnknownDimension(t *testing.T) {
	ctl, _ := liveCluster(t, 1, 0)
	_ = ctl.Put(context.Background(), 0, "d", []string{"a"}, []engine.KV{{Key: "x", Val: 1}})
	if _, err := ctl.Stats(context.Background(), 0, "d", []string{"zzz"}, 5); err == nil {
		t.Fatal("unknown dimension should error")
	}
}

func TestMoveTransfersRecords(t *testing.T) {
	ctl, _ := liveCluster(t, 2, 0)
	schema := []string{"k"}
	var recs []engine.KV
	for i := 0; i < 100; i++ {
		recs = append(recs, engine.KV{Key: fmt.Sprintf("k%d", i%10), Val: 1})
	}
	if err := ctl.Put(context.Background(), 0, "d", schema, recs); err != nil {
		t.Fatal(err)
	}
	dstStats, _ := ctl.Stats(context.Background(), 1, "d", nil, 100)
	moved, err := ctl.Move(context.Background(), 0, 1, "d", 40, true, dstStats.Top)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 40 {
		t.Fatalf("moved = %d", moved)
	}
	s0, _ := ctl.Stats(context.Background(), 0, "d", nil, 0)
	s1, _ := ctl.Stats(context.Background(), 1, "d", nil, 0)
	if s0.Records != 60 || s1.Records != 40 {
		t.Fatalf("post-move counts = %d / %d", s0.Records, s1.Records)
	}
}

func TestDistributedQueryMatchesLocal(t *testing.T) {
	ctl, _ := liveCluster(t, 3, 0)
	schema := []string{"url", "country"}
	var all []engine.KV
	for site := 0; site < 3; site++ {
		var recs []engine.KV
		for i := 0; i < 50; i++ {
			kv := engine.KV{
				Key: key(fmt.Sprintf("u%d", i%7), fmt.Sprintf("c%d", (i+site)%3)),
				Val: float64(i%5) + 1,
			}
			recs = append(recs, kv)
			all = append(all, kv)
		}
		if err := ctl.Put(context.Background(), site, "logs", schema, recs); err != nil {
			t.Fatal(err)
		}
	}
	res, err := ctl.RunQuery(context.Background(), QueryDTO{
		ID: "q1", Dataset: "logs", Dims: []string{"url"}, Combine: engine.OpSum,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: project + sum locally.
	want := map[string]float64{}
	for _, kv := range all {
		url := strings.Split(kv.Key, "\x1f")[0]
		want[url] += kv.Val
	}
	if len(res.Output) != len(want) {
		t.Fatalf("output keys = %d, want %d", len(res.Output), len(want))
	}
	for _, kv := range res.Output {
		if math.Abs(want[kv.Key]-kv.Val) > 1e-9 {
			t.Fatalf("key %q = %v, want %v", kv.Key, kv.Val, want[kv.Key])
		}
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed missing")
	}
	if res.ShuffledRecords <= 0 {
		t.Fatal("expected cross-site shuffle records")
	}
}

func TestDistributedCountQuery(t *testing.T) {
	ctl, _ := liveCluster(t, 2, 0)
	schema := []string{"class"}
	_ = ctl.Put(context.Background(), 0, "jobs", schema, []engine.KV{{Key: "a", Val: 9}, {Key: "a", Val: 9}, {Key: "b", Val: 9}})
	_ = ctl.Put(context.Background(), 1, "jobs", schema, []engine.KV{{Key: "a", Val: 9}})
	res, err := ctl.RunQuery(context.Background(), QueryDTO{
		ID: "count1", Dataset: "jobs", Dims: []string{"class"}, Combine: engine.OpCount,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, kv := range res.Output {
		got[kv.Key] = kv.Val
	}
	if got["a"] != 3 || got["b"] != 1 {
		t.Fatalf("counts = %v (partial counts must sum across sites)", got)
	}
}

func TestTaskFracRoutesReduceWork(t *testing.T) {
	ctl, _ := liveCluster(t, 2, 0)
	_ = ctl.Put(context.Background(), 0, "d", []string{"k"}, []engine.KV{{Key: "x", Val: 1}, {Key: "y", Val: 1}})
	// All reduce tasks at site 1: everything shuffles there.
	res, err := ctl.RunQuery(context.Background(), QueryDTO{ID: "q", Dataset: "d", Combine: engine.OpSum}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShuffledRecords != 2 {
		t.Fatalf("shuffled = %d, want 2", res.ShuffledRecords)
	}
}

// TestStitchedDistributedTrace is the tentpole acceptance check: one live
// two-worker query must leave a single stitched trace on the controller's
// collector, with worker-side map/reduce span subtrees grafted under the
// per-query controller span, wall durations stamped (WithWallClock), and
// worker byte/record counter deltas folded into the controller registry.
func TestStitchedDistributedTrace(t *testing.T) {
	ctl, workers := liveCluster(t, 2, 0)
	col := obs.NewCollector(obs.WithWallClock())
	ctl.SetObs(col)
	for site := 0; site < 2; site++ {
		var recs []engine.KV
		for i := 0; i < 50; i++ {
			recs = append(recs, engine.KV{Key: fmt.Sprintf("k%02d", i%10), Val: 1})
		}
		if err := ctl.Put(context.Background(), site, "d", []string{"k"}, recs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ctl.RunQuery(context.Background(), QueryDTO{ID: "q1", Dataset: "d", Combine: engine.OpSum}, nil); err != nil {
		t.Fatal(err)
	}
	q := col.Trace().Find("netio:q1")
	if q == nil {
		t.Fatal("no per-query controller span in trace")
	}
	for _, path := range [][]string{
		{"map@site0", "deserialize"},
		{"map@site0", "map"}, {"map@site0", "combine"}, {"map@site0", "scatter"},
		{"map@site1", "map"},
		{"reduce@site0", "gather"}, {"reduce@site0", "reduce"},
		{"reduce@site1", "reduce"},
	} {
		if q.Find(path...) == nil {
			t.Errorf("stitched trace missing %v", path)
		}
	}
	// WithWallClock must stamp wall durations on worker-side spans.
	if s := q.Find("map@site0", "map"); s != nil && s.Wall <= 0 {
		t.Errorf("map@site0/map wall = %v, want > 0", s.Wall)
	}
	if s := q.Find("reduce@site1", "reduce"); s != nil && s.Wall <= 0 {
		t.Errorf("reduce@site1/reduce wall = %v, want > 0", s.Wall)
	}
	// Three-hop stitch: a mapper's scatter push grafts the receiving
	// peer's recv@ subtree under the per-peer span.
	hop3 := false
	for src := 0; src < 2; src++ {
		dst := 1 - src
		if q.Find(fmt.Sprintf("map@site%d", src), "scatter",
			fmt.Sprintf("->site%d", dst), fmt.Sprintf("recv@site%d", dst)) != nil {
			hop3 = true
		}
	}
	if !hop3 {
		t.Error("no scatter push carried the receiver's recv@ subtree")
	}
	// Worker metric deltas fold into the controller registry; workers also
	// keep their own cumulative registries for live export.
	snap := col.MetricsSnapshot()
	if got := snap.Counters["netio.map.records"]; got != 100 {
		t.Errorf("netio.map.records = %v, want 100", got)
	}
	if got := snap.Counters["netio.scatter.bytes"]; got <= 0 {
		t.Errorf("netio.scatter.bytes = %v, want > 0", got)
	}
	if got := workers[0].Obs().MetricsSnapshot().Counters["netio.map.records"]; got != 50 {
		t.Errorf("worker 0 cumulative map.records = %v, want 50", got)
	}
}

func TestRunQueryValidation(t *testing.T) {
	ctl, _ := liveCluster(t, 2, 0)
	if _, err := ctl.RunQuery(context.Background(), QueryDTO{Dataset: "d"}, nil); err == nil {
		t.Fatal("missing query ID should error")
	}
	if _, err := ctl.RunQuery(context.Background(), QueryDTO{ID: "q", Dataset: "d"}, []float64{1}); err == nil {
		t.Fatal("short task fractions should error")
	}
}

func TestShapedUplinkSlowsMovement(t *testing.T) {
	// 1 MB of records through a 2 MB/s uplink must take ≈0.5 s; through an
	// unshaped one it should be near-instant.
	mkRecs := func() []engine.KV {
		// ~100 B per record once gob-encoded; 10k records ≈ 1 MB.
		recs := make([]engine.KV, 10_000)
		for i := range recs {
			recs[i] = engine.KV{Key: fmt.Sprintf("key-%04d-%060d", i, i), Val: float64(i)}
		}
		return recs
	}
	timeMove := func(upMBps float64) time.Duration {
		ctl, _ := liveCluster(t, 2, upMBps)
		if err := ctl.Put(context.Background(), 0, "d", []string{"k"}, mkRecs()); err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := ctl.Move(context.Background(), 0, 1, "d", 10_000, false, nil); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	fast := timeMove(0) // unshaped
	slow := timeMove(2) // 2 MB/s with a 0.5 MB burst credit
	// ≈1 MB minus the 0.5 MB burst at 2 MB/s ≥ 150 ms of pacing.
	if slow < 120*time.Millisecond {
		t.Fatalf("shaped move took %v, expected ≥120ms", slow)
	}
	if slow < fast+100*time.Millisecond {
		t.Fatalf("shaping had no effect: fast=%v slow=%v", fast, slow)
	}
}

func TestWorkerCloseIdempotent(t *testing.T) {
	w, err := NewWorker(0, "127.0.0.1:0", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
