package netio

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"bohr/internal/engine"
	"bohr/internal/obs"
)

// MsgType discriminates wire messages.
type MsgType uint8

// The protocol's message types. Requests flow controller→worker or
// worker→worker (transfers); every request gets exactly one response.
const (
	MsgHello MsgType = iota + 1
	MsgHelloOK
	MsgPut // store records for a dataset
	MsgPutOK
	MsgStats // dataset statistics + probe cells
	MsgStatsOK
	MsgScore // score a probe against local data
	MsgScoreOK
	MsgMove // select records and push them to a peer
	MsgMoveOK
	MsgTransfer // records arriving from a peer (movement)
	MsgTransferOK
	MsgRunMap // run map+combine and scatter intermediate to peers
	MsgRunMapOK
	MsgIntermediate // intermediate records arriving for a query
	MsgIntermediateOK
	MsgReduce // combine received intermediate, return output
	MsgReduceOK
	MsgErr
)

// ErrCode classifies a worker-reported error so callers can tell transient
// failures (worth retrying) from requests that can never succeed.
type ErrCode uint8

const (
	// CodeUnknown is the zero value: an unclassified error.
	CodeUnknown ErrCode = iota
	// CodeBadRequest marks a malformed request (unknown message type,
	// inconsistent fields). Resending the same bytes cannot help.
	CodeBadRequest
	// CodeNotFound marks a request naming a dataset, schema, or dimension
	// the worker does not hold. Fatal for this request.
	CodeNotFound
	// CodeUnavailable marks a transient dependency failure: a peer push
	// failed, intermediates have not arrived, the worker is shutting
	// down. Retrying later may succeed.
	CodeUnavailable
)

func (c ErrCode) String() string {
	switch c {
	case CodeBadRequest:
		return "bad-request"
	case CodeNotFound:
		return "not-found"
	case CodeUnavailable:
		return "unavailable"
	default:
		return "unknown"
	}
}

// RemoteError is a typed error from a worker: which site failed, which
// request it was serving, and whether a retry can help.
type RemoteError struct {
	Site int
	Req  MsgType
	Code ErrCode
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("netio: site %d (req=%d, %s): %s", e.Site, e.Req, e.Code, e.Msg)
}

// Retryable reports whether the same request could succeed later.
func (e *RemoteError) Retryable() bool { return e.Code == CodeUnavailable }

// IsRetryable reports whether err is worth retrying: an unavailable
// RemoteError, or any transport-level failure (timeouts, refused or reset
// connections, mid-stream EOF — the peer may come back).
func IsRetryable(err error) bool {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Retryable()
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// QueryDTO is the wire form of a query: functions cannot travel over gob,
// so live queries are restricted to projection + combine (the scan /
// aggregation classes), which is what the SQL front end produces anyway.
type QueryDTO struct {
	ID      string
	Dataset string
	// Dims are the schema attributes to project the key onto (empty keeps
	// the full key).
	Dims    []string
	Combine engine.CombineOp
}

// ProbeCellDTO is one probe record on the wire.
type ProbeCellDTO struct {
	Key   string
	Count int
}

// Envelope is the single wire message shape. Only the fields relevant to
// Type are populated.
type Envelope struct {
	Type    MsgType
	Site    int
	Dataset string
	Schema  []string
	Records []engine.KV
	Query   QueryDTO
	// TaskFrac drives intermediate scattering during RunMap.
	TaskFrac []float64
	// Peers maps site index → dial address.
	Peers []string
	// Cells carries probe cells (MsgStats response, MsgScore request).
	Cells []ProbeCellDTO
	// Dims selects the projection for stats/probes.
	Dims []string
	// TopK bounds the probe cells returned by MsgStats.
	TopK int
	// Count carries record counts (move size, expected intermediates...).
	Count int
	// Dst is the destination address for MsgMove.
	Dst string
	// Similar selects similarity-aware record selection for MsgMove.
	Similar bool
	// Score is the similarity score (MsgScoreOK).
	Score float64
	// Expected is the number of intermediate records the reducer must
	// have received before reducing (MsgReduce).
	Expected int
	// PerSite carries per-site record counts (MsgRunMapOK: how many
	// intermediate records were routed to each site).
	PerSite []int
	// Err carries the error text for MsgErr.
	Err string
	// Code classifies MsgErr responses (see ErrCode).
	Code ErrCode
	// TimeoutS bounds the server-side wait for MsgReduce, in seconds.
	// Zero keeps the worker's default.
	TimeoutS float64

	// TraceID propagates the distributed trace context (requests): a
	// non-empty TraceID asks the worker to record a span subtree and a
	// per-request metric snapshot for this request and ship both back in
	// its response. Workers forward the context on the peer pushes a
	// request triggers (scatter, move transfer), so a response subtree
	// can itself contain grafted peer subtrees.
	TraceID string
	// ParentSpan names the requester-side span the response subtree will
	// be grafted under (diagnostic context carried with the trace).
	ParentSpan string
	// TraceWall asks the worker to stamp wall-clock durations on its
	// spans; set when the requesting collector was built with
	// obs.WithWallClock. Without it the shipped subtree carries structure
	// and byte/record metrics only, keeping traced runs deterministic.
	TraceWall bool
	// Trace is the worker's finished span subtree for this request
	// (responses to traced requests).
	Trace *obs.Span
	// Metrics is the worker's per-request metric snapshot — bytes moved
	// per peer, record counts — merged into the requester's collector
	// (responses to traced requests).
	Metrics *obs.Snapshot
}

// maxMsgBytes bounds a single message to keep a misbehaving peer from
// exhausting memory.
const maxMsgBytes = 64 << 20

// WriteMsg writes one length-prefixed gob-encoded envelope.
func WriteMsg(w io.Writer, env *Envelope) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return fmt.Errorf("netio: encode: %w", err)
	}
	if buf.Len() > maxMsgBytes {
		return fmt.Errorf("netio: message of %d bytes exceeds limit", buf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("netio: write header: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("netio: write body: %w", err)
	}
	return nil
}

// ReadMsg reads one length-prefixed envelope.
func ReadMsg(r io.Reader) (*Envelope, error) {
	env, _, err := readMsgTimed(r)
	return env, err
}

// readMsgTimed is ReadMsg plus the gob-decode duration, measured apart
// from the socket read so workers can attribute a "deserialize" span to
// traced requests without charging it the idle wait for the frame.
func readMsgTimed(r io.Reader) (*Envelope, time.Duration, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, 0, err // io.EOF propagates cleanly for connection close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxMsgBytes {
		return nil, 0, fmt.Errorf("netio: message of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 0, fmt.Errorf("netio: read body: %w", err)
	}
	env := &Envelope{}
	start := time.Now()
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(env); err != nil {
		return nil, 0, fmt.Errorf("netio: decode: %w", err)
	}
	return env, time.Since(start), nil
}

// call sends a request and reads the single response, translating MsgErr.
func call(rw io.ReadWriter, req *Envelope) (*Envelope, error) {
	if err := WriteMsg(rw, req); err != nil {
		return nil, err
	}
	resp, err := ReadMsg(rw)
	if err != nil {
		return nil, err
	}
	if resp.Type == MsgErr {
		return nil, &RemoteError{Site: resp.Site, Req: req.Type, Code: resp.Code, Msg: resp.Err}
	}
	return resp, nil
}
