package netio

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"bohr/internal/engine"
)

// MsgType discriminates wire messages.
type MsgType uint8

// The protocol's message types. Requests flow controller→worker or
// worker→worker (transfers); every request gets exactly one response.
const (
	MsgHello MsgType = iota + 1
	MsgHelloOK
	MsgPut // store records for a dataset
	MsgPutOK
	MsgStats // dataset statistics + probe cells
	MsgStatsOK
	MsgScore // score a probe against local data
	MsgScoreOK
	MsgMove // select records and push them to a peer
	MsgMoveOK
	MsgTransfer // records arriving from a peer (movement)
	MsgTransferOK
	MsgRunMap // run map+combine and scatter intermediate to peers
	MsgRunMapOK
	MsgIntermediate // intermediate records arriving for a query
	MsgIntermediateOK
	MsgReduce // combine received intermediate, return output
	MsgReduceOK
	MsgErr
)

// QueryDTO is the wire form of a query: functions cannot travel over gob,
// so live queries are restricted to projection + combine (the scan /
// aggregation classes), which is what the SQL front end produces anyway.
type QueryDTO struct {
	ID      string
	Dataset string
	// Dims are the schema attributes to project the key onto (empty keeps
	// the full key).
	Dims    []string
	Combine engine.CombineOp
}

// ProbeCellDTO is one probe record on the wire.
type ProbeCellDTO struct {
	Key   string
	Count int
}

// Envelope is the single wire message shape. Only the fields relevant to
// Type are populated.
type Envelope struct {
	Type    MsgType
	Site    int
	Dataset string
	Schema  []string
	Records []engine.KV
	Query   QueryDTO
	// TaskFrac drives intermediate scattering during RunMap.
	TaskFrac []float64
	// Peers maps site index → dial address.
	Peers []string
	// Cells carries probe cells (MsgStats response, MsgScore request).
	Cells []ProbeCellDTO
	// Dims selects the projection for stats/probes.
	Dims []string
	// TopK bounds the probe cells returned by MsgStats.
	TopK int
	// Count carries record counts (move size, expected intermediates...).
	Count int
	// Dst is the destination address for MsgMove.
	Dst string
	// Similar selects similarity-aware record selection for MsgMove.
	Similar bool
	// Score is the similarity score (MsgScoreOK).
	Score float64
	// Expected is the number of intermediate records the reducer must
	// have received before reducing (MsgReduce).
	Expected int
	// PerSite carries per-site record counts (MsgRunMapOK: how many
	// intermediate records were routed to each site).
	PerSite []int
	// Err carries the error text for MsgErr.
	Err string
}

// maxMsgBytes bounds a single message to keep a misbehaving peer from
// exhausting memory.
const maxMsgBytes = 64 << 20

// WriteMsg writes one length-prefixed gob-encoded envelope.
func WriteMsg(w io.Writer, env *Envelope) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		return fmt.Errorf("netio: encode: %w", err)
	}
	if buf.Len() > maxMsgBytes {
		return fmt.Errorf("netio: message of %d bytes exceeds limit", buf.Len())
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("netio: write header: %w", err)
	}
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("netio: write body: %w", err)
	}
	return nil
}

// ReadMsg reads one length-prefixed envelope.
func ReadMsg(r io.Reader) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF propagates cleanly for connection close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxMsgBytes {
		return nil, fmt.Errorf("netio: message of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("netio: read body: %w", err)
	}
	env := &Envelope{}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(env); err != nil {
		return nil, fmt.Errorf("netio: decode: %w", err)
	}
	return env, nil
}

// call sends a request and reads the single response, translating MsgErr.
func call(rw io.ReadWriter, req *Envelope) (*Envelope, error) {
	if err := WriteMsg(rw, req); err != nil {
		return nil, err
	}
	resp, err := ReadMsg(rw)
	if err != nil {
		return nil, err
	}
	if resp.Type == MsgErr {
		return nil, fmt.Errorf("netio: remote error: %s", resp.Err)
	}
	return resp, nil
}
