package netio

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"runtime"
	"testing"
	"time"

	"bohr/internal/engine"
	"bohr/internal/faults"
	"bohr/internal/obs"
)

// fastConfig keeps retry/timeout machinery on a test-friendly clock.
func fastConfig() Config {
	return Config{
		DialTimeout:    time.Second,
		RequestTimeout: 2 * time.Second,
		ReduceTimeout:  time.Second,
		Retries:        8,
		QueryRetries:   2,
		RetryBase:      60 * time.Millisecond,
		RetryCap:       400 * time.Millisecond,
		Seed:           7,
	}
}

func TestRemoteErrorTypes(t *testing.T) {
	ctl, ws := liveCluster(t, 1, 0)

	// Unknown message type straight at the worker: bad request, fatal.
	conn, err := net.Dial("tcp", ws[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_, err = call(conn, &Envelope{Type: 200})
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("unknown message type returned %T (%v), want *RemoteError", err, err)
	}
	if re.Code != CodeBadRequest || re.Site != 0 || re.Req != 200 {
		t.Fatalf("remote error = %+v, want bad-request at site 0 for req 200", re)
	}
	if re.Retryable() || IsRetryable(re) {
		t.Fatal("bad request must not be retryable")
	}

	// Missing schema / dimension: not-found, fatal.
	if _, err := ctl.Stats(context.Background(), 0, "nope", []string{"x"}, 5); !errors.As(err, &re) || re.Code != CodeNotFound {
		t.Fatalf("missing schema error = %v, want not-found RemoteError", err)
	}
	if err := ctl.Put(context.Background(), 0, "d", []string{"a"}, []engine.KV{{Key: "x", Val: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Stats(context.Background(), 0, "d", []string{"zzz"}, 5); !errors.As(err, &re) || re.Code != CodeNotFound {
		t.Fatalf("missing dimension error = %v, want not-found RemoteError", err)
	}
	if IsRetryable(re) {
		t.Fatal("not-found must not be retryable")
	}

	// Unavailable errors and transport failures are retryable.
	if !IsRetryable(&RemoteError{Code: CodeUnavailable}) {
		t.Fatal("unavailable must be retryable")
	}
	if !IsRetryable(net.ErrClosed) {
		t.Fatal("closed connections must be retryable")
	}
	for _, c := range []ErrCode{CodeUnknown, CodeBadRequest, CodeNotFound, CodeUnavailable} {
		if c.String() == "" {
			t.Fatalf("code %d has no name", c)
		}
	}
}

func TestWorkerCloseForceClosesHungConn(t *testing.T) {
	w, err := NewWorker(0, "127.0.0.1:0", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A partial frame leaves the worker's handler blocked in ReadMsg.
	if _, err := conn.Write([]byte{0, 0}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the worker accept and block
	done := make(chan struct{})
	go func() {
		w.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Close blocked on a hung connection")
	}
	// The worker side must be gone: the next read errors out.
	conn.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("hung connection still open after Close")
	}
}

func TestWorkerIdleTimeoutDropsSilentConn(t *testing.T) {
	w, err := NewWorker(0, "127.0.0.1:0", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	w.SetTimeouts(80*time.Millisecond, time.Second)
	conn, err := net.Dial("tcp", w.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing: the worker must hang up on its own.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("worker kept a silent connection past its idle timeout")
	}
}

// waitGoroutines polls until the goroutine count settles at or below the
// baseline (plus slack for runtime helpers).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d, baseline %d", n, baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func queryOutputs(res *QueryResult) map[string]float64 {
	out := map[string]float64{}
	for _, kv := range res.Output {
		out[kv.Key] = kv.Val
	}
	return out
}

// TestChaosWorkerKillRestart is the live half of the acceptance scenario:
// a worker dies right as a query starts and comes back 300 ms later at
// the same address; the query must complete correctly via redials and
// retries, and nothing may leak after shutdown.
func TestChaosWorkerKillRestart(t *testing.T) {
	baseline := runtime.NumGoroutine()

	var workers []*Worker
	var addrs []string
	for i := 0; i < 3; i++ {
		w, err := NewWorker(i, "127.0.0.1:0", 0, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	col := obs.NewCollector()
	ctl, err := DialConfig(context.Background(), addrs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctl.SetObs(col)
	defer func() {
		ctl.Close()
		for _, w := range workers {
			w.Close()
		}
	}()

	// Data lives at sites 0 and 1 only; site 2 owns most reduce work, so
	// the query cannot complete without it.
	schema := []string{"k"}
	for site := 0; site < 2; site++ {
		var recs []engine.KV
		for i := 0; i < 40; i++ {
			recs = append(recs, engine.KV{Key: fmt.Sprintf("k%d", (i+site)%9), Val: float64(i%4) + 1})
		}
		if err := ctl.Put(context.Background(), site, "d", schema, recs); err != nil {
			t.Fatal(err)
		}
	}
	taskFrac := []float64{0.1, 0.1, 0.8}
	clean, err := ctl.RunQuery(context.Background(), QueryDTO{ID: "pre", Dataset: "d", Combine: engine.OpSum}, taskFrac)
	if err != nil {
		t.Fatal(err)
	}
	want := queryOutputs(clean)

	// Kill site 2, schedule its resurrection at the same address, and run
	// the query against the outage.
	if err := workers[2].Close(); err != nil {
		t.Fatal(err)
	}
	restarted := make(chan *Worker, 1)
	go func() {
		time.Sleep(300 * time.Millisecond)
		w, err := NewWorker(2, addrs[2], 0, 102)
		if err != nil {
			t.Errorf("restart at %s: %v", addrs[2], err)
			restarted <- nil
			return
		}
		restarted <- w
	}()
	res, err := ctl.RunQuery(context.Background(), QueryDTO{ID: "chaos", Dataset: "d", Combine: engine.OpSum}, taskFrac)
	if w := <-restarted; w != nil {
		workers[2] = w
	}
	if err != nil {
		t.Fatalf("query across worker kill+restart failed: %v", err)
	}
	got := queryOutputs(res)
	if len(got) != len(want) {
		t.Fatalf("chaos query returned %d keys, clean run %d", len(got), len(want))
	}
	for k, v := range want {
		if math.Abs(got[k]-v) > 1e-9 {
			t.Fatalf("key %q = %v after chaos, want %v", k, got[k], v)
		}
	}
	snap := col.MetricsSnapshot()
	if snap.Counters["netio.retries"] <= 0 {
		t.Fatalf("no retries recorded across an outage: %+v", snap.Counters)
	}

	// Full teardown leaks nothing.
	ctl.Close()
	for _, w := range workers {
		w.Close()
	}
	waitGoroutines(t, baseline)
}

// TestInjectorDropsForceRetries wires a fault schedule into the live path:
// site 0's scatter pushes flip drop coins, so queries only finish because
// the controller retries.
func TestInjectorDropsForceRetries(t *testing.T) {
	sched := &faults.Schedule{Seed: 11, Events: []faults.Event{
		{Kind: faults.KindMsgDrop, Site: 0, Start: 0, End: 3600, Prob: 0.5},
	}}
	var workers []*Worker
	var addrs []string
	for i := 0; i < 2; i++ {
		w, err := NewWorker(i, "127.0.0.1:0", 0, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		addrs = append(addrs, w.Addr())
	}
	col := obs.NewCollector()
	ctl, err := DialConfig(context.Background(), addrs, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctl.SetObs(col)
	t.Cleanup(func() {
		ctl.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	var recs []engine.KV
	for i := 0; i < 30; i++ {
		recs = append(recs, engine.KV{Key: fmt.Sprintf("k%d", i%5), Val: 1})
	}
	if err := ctl.Put(context.Background(), 0, "d", []string{"k"}, recs); err != nil {
		t.Fatal(err)
	}
	// Attach the injector only after loading: the controller's existing
	// connection stays clean, while every scatter push site 0 dials from
	// now on goes through the drop coins.
	workers[0].SetInjector(sched.Injector(0, time.Now()))
	// Everything reduces at site 1, so site 0 must push through its faulty
	// uplink; an attempt survives only if every framed write beats a p=0.5
	// coin, and the retry budget absorbs the failures.
	res, err := ctl.RunQuery(context.Background(), QueryDTO{ID: "drop", Dataset: "d", Combine: engine.OpSum}, []float64{0, 1})
	if err != nil {
		t.Fatalf("query under drop faults failed: %v", err)
	}
	if got := queryOutputs(res); got["k0"] != 6 {
		t.Fatalf("outputs = %v, want k0=6", got)
	}
}
