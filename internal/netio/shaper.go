// Package netio provides the live-deployment substrate of the Bohr
// reproduction: a real TCP wire protocol (length-prefixed gob), token-
// bucket link shaping that emulates heterogeneous WAN uplinks on
// localhost, site worker daemons, and a controller that drives a genuine
// distributed map/combine/shuffle/reduce across them.
//
// The fluid simulator (package wan) backs the paper-scale experiments;
// netio exists so the system can also be exercised end-to-end over real
// sockets — the examples/livewan binary runs ten shaped "sites" in one
// process.
package netio

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Bucket is a token-bucket rate limiter: Take(n) reports how long the
// caller must wait before sending n bytes so that the long-run rate stays
// at Rate bytes/second with at most Burst bytes of slack.
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // bucket capacity in bytes
	tokens float64
	last   time.Time
}

// NewBucket creates a bucket with the given rate (bytes/s) and burst
// capacity (bytes). Non-positive burst defaults to one second of rate.
func NewBucket(rate, burst float64) (*Bucket, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("netio: bucket rate must be positive, got %v", rate)
	}
	if burst <= 0 {
		burst = rate
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}, nil
}

// Take reserves n bytes and returns how long the caller must sleep before
// sending them. The bucket may go negative (the debt is repaid by later
// waits), which keeps large writes from stalling forever on small bursts.
func (b *Bucket) Take(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	b.tokens -= float64(n)
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// Rate returns the configured rate in bytes/second.
func (b *Bucket) Rate() float64 { return b.rate }

// ShapedConn wraps a net.Conn so writes are paced by an uplink bucket and
// reads by a downlink bucket (either may be nil for unshaped).
type ShapedConn struct {
	net.Conn
	up   *Bucket
	down *Bucket
}

// Shape wraps conn with the given buckets.
func Shape(conn net.Conn, up, down *Bucket) *ShapedConn {
	return &ShapedConn{Conn: conn, up: up, down: down}
}

// Write paces the write through the uplink bucket.
func (c *ShapedConn) Write(p []byte) (int, error) {
	if c.up != nil {
		if d := c.up.Take(len(p)); d > 0 {
			time.Sleep(d)
		}
	}
	return c.Conn.Write(p)
}

// Read paces the read through the downlink bucket (the wait lands after
// the data arrives, which approximates receiver-side throttling well
// enough for emulation).
func (c *ShapedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 && c.down != nil {
		if d := c.down.Take(n); d > 0 {
			time.Sleep(d)
		}
	}
	return n, err
}
