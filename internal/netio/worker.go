package netio

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"bohr/internal/engine"
	"bohr/internal/obs"
	"bohr/internal/stats"
)

// Worker is one live site: it stores dataset records, answers probe and
// stats requests, pushes records to peers through its shaped uplink, and
// executes the map/combine and reduce stages of distributed queries.
type Worker struct {
	Site int
	seed int64
	obs  *obs.Collector

	ln     net.Listener
	up     *Bucket // uplink shaping for worker→worker pushes
	quitMu sync.Mutex
	closed bool

	mu       sync.Mutex
	schemas  map[string][]string    // dataset → dimension names
	datasets map[string][]engine.KV // dataset → records
	inter    map[string][]engine.KV // query id → received intermediate
	interN   map[string]int         // query id → received record count
}

// NewWorker starts a worker listening on addr ("127.0.0.1:0" for an
// ephemeral port). upMBps shapes all outgoing record pushes; <= 0 leaves
// the uplink unshaped.
func NewWorker(site int, addr string, upMBps float64, seed int64) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netio: worker %d listen: %w", site, err)
	}
	w := &Worker{
		Site:     site,
		seed:     seed,
		ln:       ln,
		schemas:  map[string][]string{},
		datasets: map[string][]engine.KV{},
		inter:    map[string][]engine.KV{},
		interN:   map[string]int{},
	}
	if upMBps > 0 {
		b, err := NewBucket(upMBps*1e6, upMBps*1e6/4)
		if err != nil {
			return nil, err
		}
		w.up = b
	}
	go w.serve()
	return w, nil
}

// Addr returns the worker's dial address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// SetObs attaches an observability collector counting the records this
// worker pushes to peers (moves and intermediate scatter). Call it before
// issuing requests; the collector itself is safe for the worker's
// concurrent connection handlers. Nil detaches.
func (w *Worker) SetObs(col *obs.Collector) { w.obs = col }

// Close stops the listener. In-flight connections finish naturally.
func (w *Worker) Close() error {
	w.quitMu.Lock()
	defer w.quitMu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	return w.ln.Close()
}

func (w *Worker) serve() {
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go w.handleConn(conn)
	}
}

func (w *Worker) handleConn(conn net.Conn) {
	defer conn.Close()
	for {
		req, err := ReadMsg(conn)
		if err != nil {
			return
		}
		resp := w.dispatch(req)
		if err := WriteMsg(conn, resp); err != nil {
			return
		}
	}
}

func errEnv(format string, args ...any) *Envelope {
	return &Envelope{Type: MsgErr, Err: fmt.Sprintf(format, args...)}
}

func (w *Worker) dispatch(req *Envelope) *Envelope {
	switch req.Type {
	case MsgHello:
		return &Envelope{Type: MsgHelloOK, Site: w.Site}
	case MsgPut:
		return w.handlePut(req)
	case MsgStats:
		return w.handleStats(req)
	case MsgScore:
		return w.handleScore(req)
	case MsgMove:
		return w.handleMove(req)
	case MsgTransfer:
		return w.handleTransfer(req)
	case MsgRunMap:
		return w.handleRunMap(req)
	case MsgIntermediate:
		return w.handleIntermediate(req)
	case MsgReduce:
		return w.handleReduce(req)
	default:
		return errEnv("worker %d: unknown message type %d", w.Site, req.Type)
	}
}

func (w *Worker) handlePut(req *Envelope) *Envelope {
	if req.Dataset == "" {
		return errEnv("put: missing dataset")
	}
	w.mu.Lock()
	if len(req.Schema) > 0 {
		w.schemas[req.Dataset] = append([]string(nil), req.Schema...)
	}
	w.datasets[req.Dataset] = append(w.datasets[req.Dataset], req.Records...)
	w.mu.Unlock()
	return &Envelope{Type: MsgPutOK, Count: len(req.Records)}
}

// projector builds the key projection for the requested dims against the
// dataset's stored schema. Empty dims keep the full key.
func (w *Worker) projector(dataset string, dims []string) (func(string) string, error) {
	if len(dims) == 0 {
		return func(k string) string { return k }, nil
	}
	w.mu.Lock()
	schema := w.schemas[dataset]
	w.mu.Unlock()
	if schema == nil {
		return nil, fmt.Errorf("dataset %q has no schema", dataset)
	}
	idx := make([]int, len(dims))
	for i, d := range dims {
		idx[i] = -1
		for j, s := range schema {
			if s == d {
				idx[i] = j
				break
			}
		}
		if idx[i] < 0 {
			return nil, fmt.Errorf("dataset %q has no dimension %q", dataset, d)
		}
	}
	return func(key string) string {
		coords := strings.Split(key, "\x1f")
		if len(coords) != len(schema) {
			return key
		}
		parts := make([]string, len(idx))
		for i, j := range idx {
			parts[i] = coords[j]
		}
		return strings.Join(parts, "\x1f")
	}, nil
}

func (w *Worker) handleStats(req *Envelope) *Envelope {
	proj, err := w.projector(req.Dataset, req.Dims)
	if err != nil {
		return errEnv("stats: %v", err)
	}
	w.mu.Lock()
	recs := w.datasets[req.Dataset]
	w.mu.Unlock()
	counts := map[string]int{}
	for _, r := range recs {
		counts[proj(r.Key)]++
	}
	type kc struct {
		k string
		c int
	}
	cells := make([]kc, 0, len(counts))
	for k, c := range counts {
		cells = append(cells, kc{k, c})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].c != cells[j].c {
			return cells[i].c > cells[j].c
		}
		return cells[i].k < cells[j].k
	})
	topK := req.TopK
	if topK <= 0 || topK > len(cells) {
		topK = len(cells)
	}
	out := make([]ProbeCellDTO, topK)
	for i := 0; i < topK; i++ {
		out[i] = ProbeCellDTO{Key: cells[i].k, Count: cells[i].c}
	}
	return &Envelope{Type: MsgStatsOK, Count: len(recs), Cells: out}
}

func (w *Worker) handleScore(req *Envelope) *Envelope {
	proj, err := w.projector(req.Dataset, req.Dims)
	if err != nil {
		return errEnv("score: %v", err)
	}
	w.mu.Lock()
	recs := w.datasets[req.Dataset]
	w.mu.Unlock()
	local := map[string]bool{}
	for _, r := range recs {
		local[proj(r.Key)] = true
	}
	var matched, total float64
	for _, c := range req.Cells {
		total += float64(c.Count)
		if local[c.Key] {
			matched += float64(c.Count)
		}
	}
	score := 0.0
	if total > 0 {
		score = matched / total
	}
	return &Envelope{Type: MsgScoreOK, Score: score}
}

// handleMove selects records (similarity-aware when asked, using the
// destination's probe cells carried in the request) and pushes them to
// the destination worker through the shaped uplink.
func (w *Worker) handleMove(req *Envelope) *Envelope {
	w.mu.Lock()
	src := w.datasets[req.Dataset]
	w.mu.Unlock()
	if req.Count <= 0 || len(src) == 0 {
		return &Envelope{Type: MsgMoveOK, Count: 0}
	}
	n := req.Count
	if n > len(src) {
		n = len(src)
	}
	var mover engine.Mover
	dstCounts := map[string]int{}
	if req.Similar {
		for _, c := range req.Cells {
			dstCounts[c.Key] = c.Count
		}
		mover = engine.SimilarMover{}
	} else {
		mover = engine.RandomMover{}
	}
	rng := stats.NewRand(stats.Split(w.seed, int64(len(src))))
	idx := mover.Select(src, dstCounts, n, rng)
	moving := make(map[int]bool, len(idx))
	for _, i := range idx {
		moving[i] = true
	}
	var kept, moved []engine.KV
	for i, r := range src {
		if moving[i] {
			moved = append(moved, r)
		} else {
			kept = append(kept, r)
		}
	}

	// Push to the destination through the shaped uplink, then commit the
	// removal locally only on success.
	if err := w.push(req.Dst, &Envelope{
		Type: MsgTransfer, Dataset: req.Dataset, Records: moved,
		Schema: w.schemaOf(req.Dataset),
	}); err != nil {
		return errEnv("move: push to %s: %v", req.Dst, err)
	}
	w.mu.Lock()
	w.datasets[req.Dataset] = kept
	w.mu.Unlock()
	w.obs.Count("netio.move.records", float64(len(moved)))
	return &Envelope{Type: MsgMoveOK, Count: len(moved)}
}

func (w *Worker) schemaOf(dataset string) []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.schemas[dataset]
}

// push dials a peer, shapes the connection with the uplink bucket, sends
// one request and waits for its acknowledgement.
func (w *Worker) push(addr string, env *Envelope) error {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	var rw net.Conn = conn
	if w.up != nil {
		rw = Shape(conn, w.up, nil)
	}
	_, err = call(rw, env)
	return err
}

func (w *Worker) handleTransfer(req *Envelope) *Envelope {
	w.mu.Lock()
	if len(req.Schema) > 0 && w.schemas[req.Dataset] == nil {
		w.schemas[req.Dataset] = append([]string(nil), req.Schema...)
	}
	w.datasets[req.Dataset] = append(w.datasets[req.Dataset], req.Records...)
	w.mu.Unlock()
	return &Envelope{Type: MsgTransferOK, Count: len(req.Records)}
}

// handleRunMap executes map (projection) + combine over the local dataset
// and scatters the intermediate records to their reduce owners through the
// shaped uplink, delivering the local share directly. The response carries
// the total intermediate count in Count and the per-destination record
// counts in PerSite, which the controller aggregates into each reducer's
// expected arrival count.
func (w *Worker) handleRunMap(req *Envelope) *Envelope {
	q := req.Query
	proj, err := w.projector(q.Dataset, q.Dims)
	if err != nil {
		return errEnv("runmap: %v", err)
	}
	w.mu.Lock()
	recs := w.datasets[q.Dataset]
	w.mu.Unlock()
	mapped := make([]engine.KV, len(recs))
	for i, r := range recs {
		mapped[i] = engine.KV{Key: proj(r.Key), Val: r.Val}
	}
	inter := engine.Combine(mapped, q.Combine)

	// Scatter by reduce ownership.
	if len(req.TaskFrac) != len(req.Peers) {
		return errEnv("runmap: %d task fractions for %d peers", len(req.TaskFrac), len(req.Peers))
	}
	buckets := make([][]engine.KV, len(req.Peers))
	for _, kv := range inter {
		owner := engine.KeyOwner(kv.Key, req.TaskFrac)
		buckets[owner] = append(buckets[owner], kv)
	}
	perSite := make([]int, len(req.Peers))
	for site, batch := range buckets {
		perSite[site] = len(batch)
		if len(batch) == 0 {
			continue
		}
		if site == w.Site {
			w.acceptIntermediate(q.ID, batch)
			continue
		}
		if err := w.push(req.Peers[site], &Envelope{
			Type: MsgIntermediate, Query: QueryDTO{ID: q.ID}, Records: batch,
		}); err != nil {
			return errEnv("runmap: scatter to site %d: %v", site, err)
		}
		w.obs.Count("netio.scatter.records", float64(len(batch)))
	}
	return &Envelope{Type: MsgRunMapOK, Count: len(inter), PerSite: perSite}
}

func (w *Worker) acceptIntermediate(queryID string, recs []engine.KV) {
	w.mu.Lock()
	w.inter[queryID] = append(w.inter[queryID], recs...)
	w.interN[queryID] += len(recs)
	w.mu.Unlock()
}

func (w *Worker) handleIntermediate(req *Envelope) *Envelope {
	w.acceptIntermediate(req.Query.ID, req.Records)
	return &Envelope{Type: MsgIntermediateOK, Count: len(req.Records)}
}

// handleReduce waits until the expected number of intermediate records has
// arrived, combines them, and returns the reduce output.
func (w *Worker) handleReduce(req *Envelope) *Envelope {
	deadline := time.Now().Add(10 * time.Second)
	for {
		w.mu.Lock()
		n := w.interN[req.Query.ID]
		w.mu.Unlock()
		if n >= req.Expected {
			break
		}
		if time.Now().After(deadline) {
			return errEnv("reduce: received %d of %d intermediate records for %q", n, req.Expected, req.Query.ID)
		}
		time.Sleep(2 * time.Millisecond)
	}
	w.mu.Lock()
	recs := w.inter[req.Query.ID]
	delete(w.inter, req.Query.ID)
	delete(w.interN, req.Query.ID)
	w.mu.Unlock()
	out := engine.CombinePartials(recs, req.Query.Combine)
	return &Envelope{Type: MsgReduceOK, Records: out}
}
