package netio

import (
	"fmt"
	"io"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"bohr/internal/engine"
	"bohr/internal/faults"
	"bohr/internal/obs"
	"bohr/internal/stats"
)

// Worker is one live site: it stores dataset records, answers probe and
// stats requests, pushes records to peers through its shaped uplink, and
// executes the map/combine and reduce stages of distributed queries.
type Worker struct {
	Site int
	seed int64
	obs  *obs.Collector
	inj  *faults.Injector

	ln net.Listener
	up *Bucket // uplink shaping for worker→worker pushes

	// idleTimeout bounds how long a connection may sit between requests;
	// writeTimeout bounds one response write. Guarded by quitMu.
	idleTimeout  time.Duration
	writeTimeout time.Duration

	quitMu sync.Mutex
	closed bool
	conns  map[net.Conn]struct{} // live connections, force-closed on Close
	wg     sync.WaitGroup        // serve loop + per-connection handlers

	mu       sync.Mutex
	schemas  map[string][]string    // dataset → dimension names
	datasets map[string][]engine.KV // dataset → records
	// inter keys received intermediate batches by (query, source site) so
	// a re-scattered batch after a map retry REPLACES the earlier copy
	// instead of double-counting it.
	inter map[string]map[int][]engine.KV
}

// NewWorker starts a worker listening on addr ("127.0.0.1:0" for an
// ephemeral port). upMBps shapes all outgoing record pushes; <= 0 leaves
// the uplink unshaped. The worker runs its own observability collector
// (swap it with SetObs): request handlers count records and bytes into
// it, so a telemetry endpoint (internal/obs/export) can serve live
// worker metrics.
func NewWorker(site int, addr string, upMBps float64, seed int64) (*Worker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netio: worker %d listen: %w", site, err)
	}
	w := &Worker{
		Site:         site,
		seed:         seed,
		obs:          obs.NewCollector(),
		ln:           ln,
		idleTimeout:  2 * time.Minute,
		writeTimeout: 30 * time.Second,
		conns:        map[net.Conn]struct{}{},
		schemas:      map[string][]string{},
		datasets:     map[string][]engine.KV{},
		inter:        map[string]map[int][]engine.KV{},
	}
	if upMBps > 0 {
		b, err := NewBucket(upMBps*1e6, upMBps*1e6/4)
		if err != nil {
			return nil, err
		}
		w.up = b
	}
	w.wg.Add(1)
	go w.serve()
	return w, nil
}

// Addr returns the worker's dial address.
func (w *Worker) Addr() string { return w.ln.Addr().String() }

// SetObs replaces the worker's observability collector (the one NewWorker
// created) with the caller's. Call it before issuing requests; the
// collector itself is safe for the worker's concurrent connection
// handlers. Nil detaches collection entirely.
func (w *Worker) SetObs(col *obs.Collector) { w.obs = col }

// Obs returns the worker's collector, the feed for a live telemetry
// endpoint (internal/obs/export).
func (w *Worker) Obs() *obs.Collector { return w.obs }

// LiveConns reports the number of currently open inbound connections —
// a liveness gauge for the telemetry endpoint.
func (w *Worker) LiveConns() int {
	w.quitMu.Lock()
	defer w.quitMu.Unlock()
	return len(w.conns)
}

// SetInjector attaches a fault injector: connections accepted and peer
// pushes dialed from now on go through its fault-wrapping conn, so crash
// windows and message drops hit the live byte stream. Safe to call while
// the worker is serving; nil detaches.
func (w *Worker) SetInjector(inj *faults.Injector) {
	w.quitMu.Lock()
	w.inj = inj
	w.quitMu.Unlock()
}

func (w *Worker) injector() *faults.Injector {
	w.quitMu.Lock()
	defer w.quitMu.Unlock()
	return w.inj
}

// SetTimeouts overrides the per-connection idle (read) and response write
// deadlines. Non-positive values keep the current setting. Safe to call
// while the worker is serving.
func (w *Worker) SetTimeouts(idle, write time.Duration) {
	w.quitMu.Lock()
	if idle > 0 {
		w.idleTimeout = idle
	}
	if write > 0 {
		w.writeTimeout = write
	}
	w.quitMu.Unlock()
}

func (w *Worker) timeouts() (idle, write time.Duration) {
	w.quitMu.Lock()
	defer w.quitMu.Unlock()
	return w.idleTimeout, w.writeTimeout
}

// Close stops the listener, force-closes every live connection, and waits
// for all connection handlers to exit: no goroutines survive Close.
func (w *Worker) Close() error {
	w.quitMu.Lock()
	if w.closed {
		w.quitMu.Unlock()
		return nil
	}
	w.closed = true
	err := w.ln.Close()
	for c := range w.conns {
		c.Close()
	}
	w.quitMu.Unlock()
	w.wg.Wait()
	return err
}

func (w *Worker) isClosed() bool {
	w.quitMu.Lock()
	defer w.quitMu.Unlock()
	return w.closed
}

func (w *Worker) serve() {
	defer w.wg.Done()
	for {
		conn, err := w.ln.Accept()
		if err != nil {
			return // listener closed
		}
		conn = w.injector().WrapConn(conn)
		w.quitMu.Lock()
		if w.closed {
			w.quitMu.Unlock()
			conn.Close()
			return
		}
		w.conns[conn] = struct{}{}
		w.wg.Add(1)
		w.quitMu.Unlock()
		go w.handleConn(conn)
	}
}

func (w *Worker) handleConn(conn net.Conn) {
	defer func() {
		conn.Close()
		w.quitMu.Lock()
		delete(w.conns, conn)
		w.quitMu.Unlock()
		w.wg.Done()
	}()
	for {
		idle, write := w.timeouts()
		conn.SetReadDeadline(time.Now().Add(idle))
		req, decode, err := readMsgTimed(conn)
		if err != nil {
			return
		}
		resp := w.dispatch(req, decode)
		conn.SetWriteDeadline(time.Now().Add(write))
		if err := WriteMsg(conn, resp); err != nil {
			return
		}
	}
}

// beginTrace opens the per-request trace collector for a traced request
// (nil, a valid no-op collector, otherwise). The gob-decode time of the
// request is attributed to a "deserialize" span when wall timing was
// asked for; without TraceWall the subtree carries structure and metrics
// only, so traced runs stay deterministic.
func (w *Worker) beginTrace(req *Envelope, decode time.Duration) *obs.Collector {
	if req.TraceID == "" {
		return nil
	}
	var col *obs.Collector
	if req.TraceWall {
		col = obs.NewCollector(obs.WithWallClock())
		if decode > 0 {
			col.Current().Attach(&obs.Span{Name: "deserialize", Wall: decode.Seconds()})
		}
	} else {
		col = obs.NewCollector()
		if decode > 0 {
			col.Current().Attach(&obs.Span{Name: "deserialize"})
		}
	}
	return col
}

// finishTrace seals the per-request trace into the response: the span
// subtree (renamed to root, e.g. "map@site2") plus the request's metric
// snapshot. Error responses ship no trace.
func finishTrace(col *obs.Collector, resp *Envelope, root string) *Envelope {
	if col == nil || resp.Type == MsgErr {
		return resp
	}
	tr := col.Trace()
	tr.Name = root
	// The collector root is never explicitly started, so give it the sum
	// of its (sequential) children as the request's handling time.
	if tr.Wall == 0 {
		for _, ch := range tr.Children {
			tr.Wall += ch.Wall
		}
	}
	resp.Trace = tr
	resp.Metrics = col.MetricsSnapshot()
	return resp
}

// count2 records a counter both on the per-request trace collector (the
// delta shipped back to the requester) and on the worker's own collector
// (the cumulative feed of the live telemetry endpoint). Either may be nil.
func (w *Worker) count2(col *obs.Collector, name string, v float64) {
	col.Count(name, v)
	w.obs.Count(name, v)
}

func (w *Worker) errEnv(code ErrCode, format string, args ...any) *Envelope {
	return &Envelope{Type: MsgErr, Site: w.Site, Code: code, Err: fmt.Sprintf(format, args...)}
}

func (w *Worker) dispatch(req *Envelope, decode time.Duration) *Envelope {
	switch req.Type {
	case MsgHello:
		return &Envelope{Type: MsgHelloOK, Site: w.Site}
	case MsgPut:
		return w.handlePut(req)
	case MsgStats:
		return w.handleStats(req)
	case MsgScore:
		return w.handleScore(req)
	case MsgMove:
		return w.handleMove(req, decode)
	case MsgTransfer:
		return w.handleTransfer(req)
	case MsgRunMap:
		return w.handleRunMap(req, decode)
	case MsgIntermediate:
		return w.handleIntermediate(req, decode)
	case MsgReduce:
		return w.handleReduce(req, decode)
	default:
		return w.errEnv(CodeBadRequest, "unknown message type %d", req.Type)
	}
}

func (w *Worker) handlePut(req *Envelope) *Envelope {
	if req.Dataset == "" {
		return w.errEnv(CodeBadRequest, "put: missing dataset")
	}
	w.mu.Lock()
	if len(req.Schema) > 0 {
		w.schemas[req.Dataset] = append([]string(nil), req.Schema...)
	}
	w.datasets[req.Dataset] = append(w.datasets[req.Dataset], req.Records...)
	w.mu.Unlock()
	return &Envelope{Type: MsgPutOK, Count: len(req.Records)}
}

// projector builds the key projection for the requested dims against the
// dataset's stored schema. Empty dims keep the full key.
func (w *Worker) projector(dataset string, dims []string) (func(string) string, error) {
	if len(dims) == 0 {
		return func(k string) string { return k }, nil
	}
	w.mu.Lock()
	schema := w.schemas[dataset]
	w.mu.Unlock()
	if schema == nil {
		return nil, fmt.Errorf("dataset %q has no schema", dataset)
	}
	idx := make([]int, len(dims))
	for i, d := range dims {
		idx[i] = -1
		for j, s := range schema {
			if s == d {
				idx[i] = j
				break
			}
		}
		if idx[i] < 0 {
			return nil, fmt.Errorf("dataset %q has no dimension %q", dataset, d)
		}
	}
	return func(key string) string {
		coords := strings.Split(key, "\x1f")
		if len(coords) != len(schema) {
			return key
		}
		parts := make([]string, len(idx))
		for i, j := range idx {
			parts[i] = coords[j]
		}
		return strings.Join(parts, "\x1f")
	}, nil
}

func (w *Worker) handleStats(req *Envelope) *Envelope {
	proj, err := w.projector(req.Dataset, req.Dims)
	if err != nil {
		return w.errEnv(CodeNotFound, "stats: %v", err)
	}
	w.mu.Lock()
	recs := w.datasets[req.Dataset]
	w.mu.Unlock()
	counts := map[string]int{}
	for _, r := range recs {
		counts[proj(r.Key)]++
	}
	type kc struct {
		k string
		c int
	}
	cells := make([]kc, 0, len(counts))
	for k, c := range counts {
		cells = append(cells, kc{k, c})
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].c != cells[j].c {
			return cells[i].c > cells[j].c
		}
		return cells[i].k < cells[j].k
	})
	topK := req.TopK
	if topK <= 0 || topK > len(cells) {
		topK = len(cells)
	}
	out := make([]ProbeCellDTO, topK)
	for i := 0; i < topK; i++ {
		out[i] = ProbeCellDTO{Key: cells[i].k, Count: cells[i].c}
	}
	return &Envelope{Type: MsgStatsOK, Count: len(recs), Cells: out}
}

func (w *Worker) handleScore(req *Envelope) *Envelope {
	proj, err := w.projector(req.Dataset, req.Dims)
	if err != nil {
		return w.errEnv(CodeNotFound, "score: %v", err)
	}
	w.mu.Lock()
	recs := w.datasets[req.Dataset]
	w.mu.Unlock()
	local := map[string]bool{}
	for _, r := range recs {
		local[proj(r.Key)] = true
	}
	var matched, total float64
	for _, c := range req.Cells {
		total += float64(c.Count)
		if local[c.Key] {
			matched += float64(c.Count)
		}
	}
	score := 0.0
	if total > 0 {
		score = matched / total
	}
	return &Envelope{Type: MsgScoreOK, Score: score}
}

// handleMove selects records (similarity-aware when asked, using the
// destination's probe cells carried in the request) and pushes them to
// the destination worker through the shaped uplink.
func (w *Worker) handleMove(req *Envelope, decode time.Duration) *Envelope {
	tcol := w.beginTrace(req, decode)
	w.mu.Lock()
	src := w.datasets[req.Dataset]
	w.mu.Unlock()
	if req.Count <= 0 || len(src) == 0 {
		return finishTrace(tcol, &Envelope{Type: MsgMoveOK, Count: 0}, fmt.Sprintf("move@site%d", w.Site))
	}
	n := req.Count
	if n > len(src) {
		n = len(src)
	}
	sel := tcol.StartSpan("select")
	var mover engine.Mover
	dstCounts := map[string]int{}
	if req.Similar {
		for _, c := range req.Cells {
			dstCounts[c.Key] = c.Count
		}
		mover = engine.SimilarMover{}
	} else {
		mover = engine.RandomMover{}
	}
	rng := stats.NewRand(stats.Split(w.seed, int64(len(src))))
	idx := mover.Select(src, dstCounts, n, rng)
	moving := make(map[int]bool, len(idx))
	for _, i := range idx {
		moving[i] = true
	}
	var kept, moved []engine.KV
	for i, r := range src {
		if moving[i] {
			moved = append(moved, r)
		} else {
			kept = append(kept, r)
		}
	}
	sel.End()

	// Push to the destination through the shaped uplink, then commit the
	// removal locally only on success.
	ps := tcol.StartSpan("push")
	resp, bytes, err := w.push(req.Dst, &Envelope{
		Type: MsgTransfer, Dataset: req.Dataset, Records: moved,
		Schema:  w.schemaOf(req.Dataset),
		TraceID: req.TraceID, ParentSpan: "push", TraceWall: req.TraceWall,
	})
	if err != nil {
		ps.End()
		return w.errEnv(CodeUnavailable, "move: push to %s: %v", req.Dst, err)
	}
	ps.Attach(resp.Trace)
	tcol.MergeSnapshot(resp.Metrics)
	ps.End()
	w.mu.Lock()
	w.datasets[req.Dataset] = kept
	w.mu.Unlock()
	w.count2(tcol, "netio.move.records", float64(len(moved)))
	w.count2(tcol, "netio.move.bytes", float64(bytes))
	return finishTrace(tcol, &Envelope{Type: MsgMoveOK, Count: len(moved)}, fmt.Sprintf("move@site%d", w.Site))
}

func (w *Worker) schemaOf(dataset string) []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.schemas[dataset]
}

// countWriter counts the bytes written through an io.ReadWriter, so a
// push can report how much really crossed the (emulated) WAN.
type countWriter struct {
	io.ReadWriter
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.ReadWriter.Write(p)
	cw.n += int64(n)
	return n, err
}

// push dials a peer, shapes the connection with the uplink bucket, sends
// one request and waits for its acknowledgement, returning the response
// and the number of bytes written (header + body).
func (w *Worker) push(addr string, env *Envelope) (*Envelope, int64, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, 0, err
	}
	defer conn.Close()
	idle, write := w.timeouts()
	conn.SetDeadline(time.Now().Add(idle + write))
	var rw net.Conn = w.injector().WrapConn(conn)
	if w.up != nil {
		rw = Shape(rw, w.up, nil)
	}
	cw := &countWriter{ReadWriter: rw}
	resp, err := call(cw, env)
	return resp, cw.n, err
}

func (w *Worker) handleTransfer(req *Envelope) *Envelope {
	w.mu.Lock()
	if len(req.Schema) > 0 && w.schemas[req.Dataset] == nil {
		w.schemas[req.Dataset] = append([]string(nil), req.Schema...)
	}
	w.datasets[req.Dataset] = append(w.datasets[req.Dataset], req.Records...)
	w.mu.Unlock()
	return &Envelope{Type: MsgTransferOK, Count: len(req.Records)}
}

// handleRunMap executes map (projection) + combine over the local dataset
// and scatters the intermediate records to their reduce owners through the
// shaped uplink, delivering the local share directly. The response carries
// the total intermediate count in Count and the per-destination record
// counts in PerSite, which the controller aggregates into each reducer's
// expected arrival count. Re-running the same query is safe: reducers key
// batches by source site and replace.
func (w *Worker) handleRunMap(req *Envelope, decode time.Duration) *Envelope {
	tcol := w.beginTrace(req, decode)
	q := req.Query
	proj, err := w.projector(q.Dataset, q.Dims)
	if err != nil {
		return w.errEnv(CodeNotFound, "runmap: %v", err)
	}
	w.mu.Lock()
	recs := w.datasets[q.Dataset]
	w.mu.Unlock()
	ms := tcol.StartSpan("map")
	mapped := make([]engine.KV, len(recs))
	for i, r := range recs {
		mapped[i] = engine.KV{Key: proj(r.Key), Val: r.Val}
	}
	ms.End()
	cs := tcol.StartSpan("combine")
	inter := engine.Combine(mapped, q.Combine)
	cs.End()
	w.count2(tcol, "netio.map.records", float64(len(recs)))
	w.count2(tcol, "netio.intermediate.records", float64(len(inter)))

	// Scatter by reduce ownership.
	if len(req.TaskFrac) != len(req.Peers) {
		return w.errEnv(CodeBadRequest, "runmap: %d task fractions for %d peers", len(req.TaskFrac), len(req.Peers))
	}
	buckets := make([][]engine.KV, len(req.Peers))
	for _, kv := range inter {
		owner := engine.KeyOwner(kv.Key, req.TaskFrac)
		buckets[owner] = append(buckets[owner], kv)
	}
	perSite := make([]int, len(req.Peers))
	sc := tcol.StartSpan("scatter")
	for site, batch := range buckets {
		perSite[site] = len(batch)
		if len(batch) == 0 {
			continue
		}
		if site == w.Site {
			w.acceptIntermediate(q.ID, w.Site, batch)
			continue
		}
		ps := tcol.StartSpan(fmt.Sprintf("->site%d", site))
		resp, bytes, err := w.push(req.Peers[site], &Envelope{
			Type: MsgIntermediate, Site: w.Site, Query: QueryDTO{ID: q.ID}, Records: batch,
			TraceID: req.TraceID, ParentSpan: "scatter", TraceWall: req.TraceWall,
		})
		if err != nil {
			ps.End()
			sc.End()
			return w.errEnv(CodeUnavailable, "runmap: scatter to site %d: %v", site, err)
		}
		ps.Attach(resp.Trace)
		tcol.MergeSnapshot(resp.Metrics)
		ps.End()
		w.count2(tcol, "netio.scatter.records", float64(len(batch)))
		w.count2(tcol, fmt.Sprintf("netio.scatter.site%d->site%d.bytes", w.Site, site), float64(bytes))
		w.count2(tcol, "netio.scatter.bytes", float64(bytes))
	}
	sc.End()
	return finishTrace(tcol,
		&Envelope{Type: MsgRunMapOK, Count: len(inter), PerSite: perSite},
		fmt.Sprintf("map@site%d", w.Site))
}

// acceptIntermediate records one source site's intermediate batch for a
// query, replacing any earlier batch from the same source (idempotent
// re-scatter after retries).
func (w *Worker) acceptIntermediate(queryID string, src int, recs []engine.KV) {
	w.mu.Lock()
	m := w.inter[queryID]
	if m == nil {
		m = map[int][]engine.KV{}
		w.inter[queryID] = m
	}
	m[src] = recs
	w.mu.Unlock()
}

func (w *Worker) interCount(queryID string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, recs := range w.inter[queryID] {
		n += len(recs)
	}
	return n
}

func (w *Worker) handleIntermediate(req *Envelope, decode time.Duration) *Envelope {
	tcol := w.beginTrace(req, decode)
	st := tcol.StartSpan("store")
	w.acceptIntermediate(req.Query.ID, req.Site, req.Records)
	st.End()
	w.count2(tcol, "netio.recv.records", float64(len(req.Records)))
	return finishTrace(tcol,
		&Envelope{Type: MsgIntermediateOK, Count: len(req.Records)},
		fmt.Sprintf("recv@site%d", w.Site))
}

// handleReduce waits until the expected number of intermediate records has
// arrived, combines them, and returns the reduce output. The wait is
// bounded by the request's TimeoutS (falling back to 10 s) and aborts
// promptly when the worker is closing so Close never deadlocks on a
// starved reducer.
func (w *Worker) handleReduce(req *Envelope, decode time.Duration) *Envelope {
	tcol := w.beginTrace(req, decode)
	wait := 10 * time.Second
	if req.TimeoutS > 0 {
		wait = time.Duration(req.TimeoutS * float64(time.Second))
	}
	deadline := time.Now().Add(wait)
	gs := tcol.StartSpan("gather")
	for {
		n := w.interCount(req.Query.ID)
		if n >= req.Expected {
			break
		}
		if w.isClosed() {
			return w.errEnv(CodeUnavailable, "reduce: worker shutting down")
		}
		if time.Now().After(deadline) {
			return w.errEnv(CodeUnavailable, "reduce: received %d of %d intermediate records for %q", n, req.Expected, req.Query.ID)
		}
		time.Sleep(2 * time.Millisecond)
	}
	gs.End()
	rs := tcol.StartSpan("reduce")
	w.mu.Lock()
	srcs := make([]int, 0, len(w.inter[req.Query.ID]))
	for s := range w.inter[req.Query.ID] {
		srcs = append(srcs, s)
	}
	sort.Ints(srcs)
	var recs []engine.KV
	for _, s := range srcs {
		recs = append(recs, w.inter[req.Query.ID][s]...)
	}
	delete(w.inter, req.Query.ID)
	w.mu.Unlock()
	out := engine.CombinePartials(recs, req.Query.Combine)
	rs.End()
	w.count2(tcol, "netio.gather.records", float64(len(recs)))
	w.count2(tcol, "netio.reduce.output.records", float64(len(out)))
	return finishTrace(tcol, &Envelope{Type: MsgReduceOK, Records: out},
		fmt.Sprintf("reduce@site%d", w.Site))
}
