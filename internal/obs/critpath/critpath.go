// Package critpath reduces a run report's span tree and WAN flow metrics
// to the dominant QCT chain per query — which site's map, which WAN link,
// which reducer actually set the completion time. This is the question
// the paper's whole evaluation decomposes (§7: WAN transfer on the
// bottleneck link vs. compute), asked of a finished report instead of a
// spreadsheet.
//
// It understands both trace shapes the collectors produce: the modeled
// engine shape (query spans "qNN:name" with sequential map / assign /
// shuffle / reduce stage children, per-site children under map and
// reduce) and the live netio shape (query spans "netio:<id>" with
// controller stage children plus stitched worker subtrees "map@siteN" /
// "reduce@siteN"). Durations prefer modeled seconds and fall back to
// wall seconds, so the same analysis runs on deterministic and
// wall-clocked reports.
package critpath

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"bohr/internal/obs"
)

// Component is one hop of a query's critical-path chain.
type Component struct {
	// Stage is the canonical stage ("map", "assign", "shuffle", "reduce",
	// "other").
	Stage string `json:"stage"`
	// Name locates the hop: "map@Tokyo", "shuffle site-2->site-0".
	Name string `json:"name"`
	// Seconds is the hop's time on the query's critical path.
	Seconds float64 `json:"seconds"`
	// PctQCT is Seconds as a percentage of the query's QCT.
	PctQCT float64 `json:"pct_qct"`
}

// QueryPath is one query's critical-path decomposition.
type QueryPath struct {
	Query string `json:"query"`
	// QCT is the query completion time in seconds (modeled or wall,
	// whichever the trace carries).
	QCT        float64     `json:"qct_s"`
	Components []Component `json:"components"`
	// CoveragePct is how much of QCT the chain explains (∑ components).
	CoveragePct float64 `json:"coverage_pct"`
}

var modeledQuery = regexp.MustCompile(`^q\d+:`)

func isQuerySpan(name string) bool {
	if modeledQuery.MatchString(name) {
		return true
	}
	return strings.HasPrefix(name, "netio:") && !strings.HasPrefix(name, "netio:move:")
}

// dur is a span's duration: modeled seconds when recorded, else wall.
func dur(s *obs.Span) float64 {
	if s == nil {
		return 0
	}
	if s.Modeled > 0 {
		return s.Modeled
	}
	return s.Wall
}

// Analyze walks the trace and emits one QueryPath per query span, in
// trace order. Deterministic for a deterministic trace and metrics
// snapshot. Either argument may be nil.
func Analyze(trace *obs.Span, metrics *obs.Snapshot) []QueryPath {
	if trace == nil {
		return nil
	}
	var spans []*obs.Span
	collectQueries(trace, &spans)
	var out []QueryPath
	for _, q := range spans {
		out = append(out, analyzeQuery(q, metrics))
	}
	return out
}

func collectQueries(s *obs.Span, out *[]*obs.Span) {
	if isQuerySpan(s.Name) {
		*out = append(*out, s)
		return
	}
	for _, ch := range s.Children {
		collectQueries(ch, out)
	}
}

func analyzeQuery(q *obs.Span, metrics *obs.Snapshot) QueryPath {
	var comps []Component
	if strings.HasPrefix(q.Name, "netio:") {
		comps = liveComponents(q, metrics)
	} else {
		comps = modeledComponents(q, metrics)
	}
	qct := dur(q)
	var sum float64
	for _, c := range comps {
		sum += c.Seconds
	}
	if qct == 0 {
		qct = sum
	}
	// Time the stage chain does not explain (coordination, merge, the
	// modeled ExtraQCT overhead) becomes an explicit residual hop when it
	// is more than noise, so coverage stays honest.
	if rem := qct - sum; qct > 0 && rem > 0.01*qct {
		comps = append(comps, Component{Stage: "other", Name: "other/coordination", Seconds: rem})
		sum += rem
	}
	p := QueryPath{Query: q.Name, QCT: qct, Components: comps}
	if qct > 0 {
		for i := range p.Components {
			p.Components[i].PctQCT = 100 * p.Components[i].Seconds / qct
		}
		p.CoveragePct = 100 * sum / qct
	}
	return p
}

// modeledComponents reads the engine shape: sequential stage children,
// whose per-site children (when present) name the slowest site.
func modeledComponents(q *obs.Span, metrics *obs.Snapshot) []Component {
	var comps []Component
	for _, stage := range []string{"map", "assign", "shuffle", "reduce"} {
		st := q.Find(stage)
		d := dur(st)
		if d <= 0 {
			continue
		}
		name := stage
		switch stage {
		case "map", "reduce":
			if site := dominantChild(st); site != nil {
				name = stage + "@" + site.Name
			}
		case "shuffle":
			if link := dominantLink(metrics, "wan.shuffle.", ".mb"); link != "" {
				name = "shuffle " + link
			}
		}
		comps = append(comps, Component{Stage: stage, Name: name, Seconds: d})
	}
	return comps
}

// liveComponents reads the netio shape. The controller's "map" stage
// child times the whole map+scatter phase; the stitched worker subtrees
// say which site dominated and how much of the phase its scatter (the
// WAN shuffle) took, so the phase splits into a compute hop and a link
// hop without double counting.
func liveComponents(q *obs.Span, metrics *obs.Snapshot) []Component {
	var comps []Component
	mapPhase := dur(q.Find("map"))
	domMap := dominantPrefixed(q, "map@")
	var scatter float64
	if domMap != nil {
		scatter = dur(domMap.Find("scatter"))
	}
	if scatter > mapPhase {
		scatter = mapPhase
	}
	if mapPhase-scatter > 0 {
		name := "map"
		if domMap != nil {
			name = domMap.Name
		}
		comps = append(comps, Component{Stage: "map", Name: name, Seconds: mapPhase - scatter})
	}
	if scatter > 0 {
		name := "shuffle"
		if link := dominantLink(metrics, "netio.scatter.", ".bytes"); link != "" {
			name = "shuffle " + link
		}
		comps = append(comps, Component{Stage: "shuffle", Name: name, Seconds: scatter})
	}
	if redPhase := dur(q.Find("reduce")); redPhase > 0 {
		name := "reduce"
		if dom := dominantPrefixed(q, "reduce@"); dom != nil {
			name = dom.Name
		}
		comps = append(comps, Component{Stage: "reduce", Name: name, Seconds: redPhase})
	}
	return comps
}

// dominantChild returns the longest-running child (ties keep the first),
// nil when the span has none.
func dominantChild(s *obs.Span) *obs.Span {
	if s == nil {
		return nil
	}
	var best *obs.Span
	for _, ch := range s.Children {
		if best == nil || dur(ch) > dur(best) {
			best = ch
		}
	}
	return best
}

// dominantPrefixed returns the longest-running direct child whose name
// carries the prefix (e.g. "map@" over stitched worker subtrees).
func dominantPrefixed(s *obs.Span, prefix string) *obs.Span {
	var best *obs.Span
	for _, ch := range s.Children {
		if !strings.HasPrefix(ch.Name, prefix) {
			continue
		}
		if best == nil || dur(ch) > dur(best) {
			best = ch
		}
	}
	return best
}

// dominantLink scans the metric counters matching prefix+link+suffix
// (e.g. "wan.shuffle.Tokyo->Oregon.mb") and returns the heaviest link,
// "" when none exist. Counters aggregate over the whole run, so with
// concurrent queries the attribution is the run's dominant link, not
// necessarily this query's.
func dominantLink(metrics *obs.Snapshot, prefix, suffix string) string {
	if metrics == nil {
		return ""
	}
	names := make([]string, 0, len(metrics.Counters))
	for name := range metrics.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	best, bestV := "", 0.0
	for _, name := range names {
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
			continue
		}
		link := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
		// Aggregate counters (e.g. "wan.shuffle.mb") share the prefix but
		// name no link; only src->dst series qualify.
		if !strings.Contains(link, "->") {
			continue
		}
		if v := metrics.Counters[name]; v > bestV {
			best = link
			bestV = v
		}
	}
	return best
}

// Format renders the analysis as the human form of `bohrctl -critpath`:
// one header per query, then the chain.
func Format(paths []QueryPath) string {
	if len(paths) == 0 {
		return "critpath: no query spans in trace\n"
	}
	var b strings.Builder
	for _, p := range paths {
		fmt.Fprintf(&b, "%s  qct=%.4fs  coverage=%.1f%%\n", p.Query, p.QCT, p.CoveragePct)
		hops := make([]string, len(p.Components))
		for i, c := range p.Components {
			hops[i] = fmt.Sprintf("%s %.4fs (%.1f%%)", c.Name, c.Seconds, c.PctQCT)
		}
		fmt.Fprintf(&b, "  %s\n", strings.Join(hops, " -> "))
	}
	return b.String()
}
