package critpath

import (
	"strings"
	"testing"

	"bohr/internal/obs"
)

func modeledTrace() *obs.Span {
	return &obs.Span{Name: "bohr", Children: []*obs.Span{
		{Name: "prepare", Modeled: 3},
		{Name: "run", Modeled: 12.5, Children: []*obs.Span{
			{Name: "q00:scan", Modeled: 12.5, Children: []*obs.Span{
				{Name: "map", Modeled: 4, Children: []*obs.Span{
					{Name: "site-0", Modeled: 2.5},
					{Name: "site-1", Modeled: 4},
				}},
				{Name: "assign", Modeled: 0.5},
				{Name: "shuffle", Modeled: 6},
				{Name: "reduce", Modeled: 1.5, Children: []*obs.Span{
					{Name: "site-0", Modeled: 1.5},
					{Name: "site-1", Modeled: 0.2},
				}},
			}},
		}},
	}}
}

func TestAnalyzeModeled(t *testing.T) {
	snap := &obs.Snapshot{Counters: map[string]float64{
		"wan.shuffle.site-1->site-0.mb": 80,
		"wan.shuffle.site-0->site-1.mb": 20,
		"unrelated.counter":             999,
	}}
	paths := Analyze(modeledTrace(), snap)
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	p := paths[0]
	if p.Query != "q00:scan" || p.QCT != 12.5 {
		t.Fatalf("path header = %+v", p)
	}
	wantNames := []string{
		"map@site-1", "assign", "shuffle site-1->site-0", "reduce@site-0", "other/coordination",
	}
	if len(p.Components) != len(wantNames) {
		t.Fatalf("components = %+v", p.Components)
	}
	for i, want := range wantNames {
		if p.Components[i].Name != want {
			t.Errorf("component %d = %q, want %q", i, p.Components[i].Name, want)
		}
	}
	// 4 + 0.5 + 6 + 1.5 = 12 explained, residual 0.5 → full coverage.
	if p.CoveragePct < 90 {
		t.Errorf("coverage = %.1f%%, want ≥ 90%%", p.CoveragePct)
	}
	if got := p.Components[2].PctQCT; got != 48 {
		t.Errorf("shuffle pct = %v, want 48", got)
	}
}

func liveTrace() *obs.Span {
	return &obs.Span{Name: "bohr", Children: []*obs.Span{
		{Name: "netio:q1", Modeled: 0.5, Children: []*obs.Span{
			{Name: "map@site0", Wall: 0.28, Children: []*obs.Span{
				{Name: "map", Wall: 0.08},
				{Name: "combine", Wall: 0.02},
				{Name: "scatter", Wall: 0.18, Children: []*obs.Span{
					{Name: "->site1", Wall: 0.18, Children: []*obs.Span{
						{Name: "recv@site1", Wall: 0.03},
					}},
				}},
			}},
			{Name: "map@site1", Wall: 0.1},
			{Name: "map", Modeled: 0.3},
			{Name: "reduce@site0", Wall: 0.05},
			{Name: "reduce@site1", Wall: 0.15},
			{Name: "reduce", Modeled: 0.18},
		}},
	}}
}

func TestAnalyzeLive(t *testing.T) {
	snap := &obs.Snapshot{Counters: map[string]float64{
		"netio.scatter.site0->site1.bytes": 9000,
		"netio.scatter.site1->site0.bytes": 1000,
	}}
	paths := Analyze(liveTrace(), snap)
	if len(paths) != 1 {
		t.Fatalf("paths = %d, want 1", len(paths))
	}
	p := paths[0]
	wantNames := []string{
		"map@site0", "shuffle site0->site1", "reduce@site1", "other/coordination",
	}
	if len(p.Components) != len(wantNames) {
		t.Fatalf("components = %+v", p.Components)
	}
	for i, want := range wantNames {
		if p.Components[i].Name != want {
			t.Errorf("component %d = %q, want %q", i, p.Components[i].Name, want)
		}
	}
	// Map phase 0.3 splits into compute 0.12 + dominant scatter 0.18, so
	// the chain stays disjoint: 0.12 + 0.18 + 0.18 = 0.48 of 0.5.
	if got := p.Components[0].Seconds; got < 0.119 || got > 0.121 {
		t.Errorf("map seconds = %v, want 0.12", got)
	}
	if got := p.Components[1].Seconds; got != 0.18 {
		t.Errorf("shuffle seconds = %v, want 0.18", got)
	}
	if p.CoveragePct < 90 {
		t.Errorf("coverage = %.1f%%, want ≥ 90%%", p.CoveragePct)
	}
}

func TestAnalyzeSkipsMoveSpans(t *testing.T) {
	tr := &obs.Span{Name: "bohr", Children: []*obs.Span{
		{Name: "netio:move:0->1", Wall: 0.2},
		{Name: "netio:q9", Modeled: 1, Children: []*obs.Span{{Name: "map", Modeled: 1}}},
	}}
	paths := Analyze(tr, nil)
	if len(paths) != 1 || paths[0].Query != "netio:q9" {
		t.Fatalf("paths = %+v", paths)
	}
}

func TestAnalyzeNil(t *testing.T) {
	if Analyze(nil, nil) != nil {
		t.Fatal("nil trace should yield nil")
	}
	if got := Analyze(&obs.Span{Name: "bohr"}, nil); len(got) != 0 {
		t.Fatalf("empty trace = %+v", got)
	}
}

func TestFormat(t *testing.T) {
	out := Format(Analyze(modeledTrace(), nil))
	if !strings.Contains(out, "q00:scan") || !strings.Contains(out, " -> ") {
		t.Fatalf("format output:\n%s", out)
	}
	if !strings.Contains(out, "map@site-1") {
		t.Fatalf("chain missing dominant site:\n%s", out)
	}
	if Format(nil) == "" {
		t.Fatal("empty format should explain itself")
	}
}
