package export

import (
	"encoding/json"
	"strings"

	"bohr/internal/obs"
)

// chromeEvent is one entry in the Chrome trace-event JSON format
// (chrome://tracing, ui.perfetto.dev). Ph "X" is a complete event with
// timestamp and duration in microseconds; "M" is process metadata.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const (
	pidModeled = 0
	pidWall    = 1
)

// ChromeTrace renders a span tree as Chrome trace-event JSON. Spans carry
// only durations, so the layout is synthetic: children are laid out
// sequentially inside their parent, except parallel groups (children of a
// "run" span, or siblings carrying "@site" markers like the stitched
// netio subtrees), which share their parent's start on separate tracks.
// The modeled timeline is emitted as process 0; if any span in the tree
// carries a wall-clock duration, the wall timeline is emitted again as
// process 1. Output is deterministic for a deterministic tree.
func ChromeTrace(root *obs.Span) ([]byte, error) {
	f := &chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if root != nil {
		f.TraceEvents = append(f.TraceEvents,
			chromeEvent{Name: "process_name", Ph: "M", Pid: pidModeled,
				Args: map[string]any{"name": "modeled time"}})
		l := &chromeLayout{pid: pidModeled, dur: func(s *obs.Span) float64 { return s.Modeled * 1e6 }}
		l.place(f, root, 0, l.nextTid())
		if hasWall(root) {
			f.TraceEvents = append(f.TraceEvents,
				chromeEvent{Name: "process_name", Ph: "M", Pid: pidWall,
					Args: map[string]any{"name": "wall time"}})
			l := &chromeLayout{pid: pidWall, dur: func(s *obs.Span) float64 { return s.Wall * 1e6 }}
			l.place(f, root, 0, l.nextTid())
		}
	}
	return json.MarshalIndent(f, "", " ")
}

type chromeLayout struct {
	pid  int
	tids int
	dur  func(*obs.Span) float64
}

func (l *chromeLayout) nextTid() int {
	l.tids++
	return l.tids
}

func hasWall(s *obs.Span) bool {
	if s.Wall > 0 {
		return true
	}
	for _, ch := range s.Children {
		if hasWall(ch) {
			return true
		}
	}
	return false
}

// parallelChildren reports whether a span's children represent concurrent
// work rather than sequential stages.
func parallelChildren(s *obs.Span) bool {
	if s.Name == "run" {
		return true
	}
	for _, ch := range s.Children {
		if strings.Contains(ch.Name, "@site") {
			return true
		}
	}
	return false
}

// extent is the span's total footprint on the timeline: its own recorded
// duration, or its children's layout if they run longer (a parent that
// only aggregates stages may carry no duration of its own).
func (l *chromeLayout) extent(s *obs.Span) float64 {
	var kids float64
	if parallelChildren(s) {
		for _, ch := range s.Children {
			if d := l.extent(ch); d > kids {
				kids = d
			}
		}
	} else {
		for _, ch := range s.Children {
			kids += l.extent(ch)
		}
	}
	if own := l.dur(s); own > kids {
		return own
	}
	return kids
}

func (l *chromeLayout) place(f *chromeFile, s *obs.Span, ts float64, tid int) {
	f.TraceEvents = append(f.TraceEvents, chromeEvent{
		Name: s.Name, Ph: "X", Ts: ts, Dur: l.extent(s), Pid: l.pid, Tid: tid,
	})
	if parallelChildren(s) {
		for _, ch := range s.Children {
			l.place(f, ch, ts, l.nextTid())
		}
		return
	}
	at := ts
	for _, ch := range s.Children {
		l.place(f, ch, at, tid)
		at += l.extent(ch)
	}
}
