// Package export serves a Collector's live state over HTTP using only the
// standard library: Prometheus text-format metrics on /metrics, a
// liveness probe on /healthz, and the runtime profiler on /debug/pprof/.
// Both the controller and the workers can run one (opt-in via the
// -telemetry-addr flag on the cmd tools); scrape-time callback gauges
// cover values that live outside the registry, like open connection
// counts and inflight queries.
package export

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"bohr/internal/obs"
)

// Server exposes one Collector's metrics over HTTP.
type Server struct {
	col   *obs.Collector
	start time.Time

	mu     sync.Mutex
	gauges map[string]func() float64
	extra  map[string]http.Handler
	ln     net.Listener
	srv    *http.Server
}

// New wraps a collector for serving. The collector may be shared with a
// running controller or worker; scrapes snapshot it safely.
func New(col *obs.Collector) *Server {
	return &Server{col: col, start: time.Now(), gauges: map[string]func() float64{}}
}

// GaugeFunc registers a callback gauge evaluated at scrape time, for
// values not pushed into the registry (live conns, inflight queries).
func (s *Server) GaugeFunc(name string, f func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gauges[name] = f
}

// Handle mounts an application handler on the telemetry mux (for example
// a query front end's /v1/ tree), so data-plane and observability
// endpoints share one listener. Register before Start; patterns follow
// net/http ServeMux semantics and must not collide with the built-ins.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.extra == nil {
		s.extra = map[string]http.Handler{}
	}
	s.extra[pattern] = h
}

// Handler returns the telemetry handler tree, for embedding or testing
// without a listener.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.mu.Lock()
	for pattern, h := range s.extra {
		mux.Handle(pattern, h)
	}
	s.mu.Unlock()
	mux.HandleFunc("/metrics", s.serveMetrics)
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start listens on addr (e.g. "127.0.0.1:9100"; port 0 picks a free one)
// and serves in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("export: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler()}
	s.mu.Lock()
	s.ln, s.srv = ln, srv
	s.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Start).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. Safe to call without Start.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"status\":\"ok\",\"uptime_s\":%.3f}\n", time.Since(s.start).Seconds())
}

func (s *Server) serveMetrics(w http.ResponseWriter, _ *http.Request) {
	snap := s.col.MetricsSnapshot()
	if snap == nil {
		snap = &obs.Snapshot{}
	}
	s.mu.Lock()
	live := make(map[string]float64, len(s.gauges))
	for name, f := range s.gauges {
		live[name] = f()
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	writeFamily(&b, "counter", snap.Counters)
	// Merge scrape-time callback gauges over registry gauges (callbacks
	// win): a name registered in both places must expose one sample, not a
	// duplicate family.
	gauges := make(map[string]float64, len(snap.Gauges)+len(live))
	for name, v := range snap.Gauges {
		gauges[name] = v
	}
	for name, v := range live {
		gauges[name] = v
	}
	writeFamily(&b, "gauge", gauges)
	for _, name := range sortedKeys(snap.Histograms) {
		h := snap.Histograms[name]
		m := promName(name)
		fmt.Fprintf(&b, "# TYPE %s summary\n", m)
		for _, q := range []struct {
			label string
			v     float64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			fmt.Fprintf(&b, "%s{quantile=\"%s\"} %s\n", m, q.label, promVal(q.v))
		}
		fmt.Fprintf(&b, "%s_sum %s\n", m, promVal(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", m, h.Count)
	}
	w.Write([]byte(b.String()))
}

func writeFamily(b *strings.Builder, typ string, vals map[string]float64) {
	for _, name := range sortedKeys(vals) {
		m := promName(name)
		fmt.Fprintf(b, "# TYPE %s %s\n", m, typ)
		fmt.Fprintf(b, "%s %s\n", m, promVal(vals[name]))
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName maps a registry name like "wan.move.site-0->site-2.mb" onto the
// Prometheus name charset [a-zA-Z0-9_:], prefixed with the bohr_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("bohr_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promVal(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
