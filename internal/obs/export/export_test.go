package export

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"bohr/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func startServer(t *testing.T, col *obs.Collector) (*Server, string) {
	t.Helper()
	s := New(col)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, addr
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// promLine accepts one Prometheus text-exposition sample line:
// name, optional {labels}, space, float value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? [-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?$`)

func TestMetricsExposition(t *testing.T) {
	col := obs.NewCollector()
	col.Count("netio.retries", 3)
	col.Count("wan.move.site-0->site-2.mb", 1.5)
	col.Gauge("placement.sites", 4)
	for i := 1; i <= 100; i++ {
		col.Observe("netio.query.elapsed_s", float64(i))
	}
	s, addr := startServer(t, col)
	s.GaugeFunc("netio.live_conns", func() float64 { return 7 })

	code, body := get(t, "http://"+addr+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("unexpected comment line %q", line)
			}
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable exposition line %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE bohr_netio_retries counter\nbohr_netio_retries 3\n",
		"bohr_wan_move_site_0__site_2_mb 1.5\n",
		"# TYPE bohr_placement_sites gauge\nbohr_placement_sites 4\n",
		"# TYPE bohr_netio_live_conns gauge\nbohr_netio_live_conns 7\n",
		"# TYPE bohr_netio_query_elapsed_s summary\n",
		"bohr_netio_query_elapsed_s{quantile=\"0.5\"} 50\n",
		"bohr_netio_query_elapsed_s{quantile=\"0.99\"} 99\n",
		"bohr_netio_query_elapsed_s_sum 5050\n",
		"bohr_netio_query_elapsed_s_count 100\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\ngot:\n%s", want, body)
		}
	}
}

func TestHealthzAndPprof(t *testing.T) {
	_, addr := startServer(t, obs.NewCollector())
	code, body := get(t, "http://"+addr+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("GET /healthz = %d %q", code, body)
	}
	code, body = get(t, "http://"+addr+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("GET /debug/pprof/ = %d", code)
	}
}

// TestConcurrentScrapes exercises scrape-during-write under -race: the
// registry keeps filling while clients scrape.
func TestConcurrentScrapes(t *testing.T) {
	col := obs.NewCollector()
	s, addr := startServer(t, col)
	var conns int64
	s.GaugeFunc("live", func() float64 { return float64(conns) })
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				col.Count(fmt.Sprintf("c%d", g), 1)
				col.Observe("h", float64(i))
			}
		}(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := http.Get("http://" + addr + "/metrics")
				if err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("scrape = %d", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
}

func TestServerLifecycle(t *testing.T) {
	s := New(nil)
	if s.Addr() != "" {
		t.Fatal("address before Start")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close before start: %v", err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if s.Addr() != addr {
		t.Fatalf("Addr() = %q, want %q", s.Addr(), addr)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

// chromeFixture is a deterministic stand-in for a stitched trace: modeled
// engine spans plus a wall-only netio subtree.
func chromeFixture() *obs.Span {
	return &obs.Span{Name: "bohr", Children: []*obs.Span{
		{Name: "prepare", Modeled: 2},
		{Name: "run", Modeled: 10, Children: []*obs.Span{
			{Name: "q00:scan", Modeled: 6, Children: []*obs.Span{
				{Name: "map", Modeled: 2},
				{Name: "shuffle", Modeled: 3},
				{Name: "reduce", Modeled: 1},
			}},
			{Name: "q01:agg", Modeled: 4, Children: []*obs.Span{
				{Name: "map", Modeled: 1.5},
				{Name: "reduce", Modeled: 2.5},
			}},
		}},
		{Name: "netio:q1", Wall: 0.25, Children: []*obs.Span{
			{Name: "map@site0", Wall: 0.1, Children: []*obs.Span{
				{Name: "map", Wall: 0.04},
				{Name: "scatter", Wall: 0.06, Children: []*obs.Span{
					{Name: "->site1", Wall: 0.06, Children: []*obs.Span{
						{Name: "recv@site1", Wall: 0.02},
					}},
				}},
			}},
			{Name: "reduce@site1", Wall: 0.12},
		}},
	}}
}

func TestChromeTraceGolden(t *testing.T) {
	got, err := ChromeTrace(chromeFixture())
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "chrome_trace.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("Chrome trace drifted from golden file.\nIf intentional, regenerate with -update.\ngot:\n%s", got)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	out, err := ChromeTrace(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"traceEvents": []`) {
		t.Fatalf("nil trace = %s", out)
	}
}
