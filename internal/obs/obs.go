// Package obs is the observability layer of the Bohr reproduction: a
// deterministic span tracer recording the hierarchy of named phases the
// paper's QCT decomposition talks about (prepare → probes → lp →
// calibrate → move, run → per-query map/shuffle/reduce), and a metrics
// registry of counters, gauges and histograms (records moved, probe
// bytes, simplex pivots, per-link WAN MB, combiner ratios).
//
// Spans carry *modeled* time — the simulator's QCT accounting — so that
// traces are bit-deterministic for a fixed seed; wall-clock durations are
// recorded only when the collector is built with WithWallClock, because
// they break byte-identical report output.
//
// Histogram series are bounded: each series retains at most HistogramCap
// observations via deterministic (seeded-per-series) reservoir sampling,
// so long live runs cannot grow the registry without bound. Count, Sum,
// Min and Max stay exact; percentiles are computed over the reservoir.
//
// A nil *Collector (and the nil *Span it hands out) is a valid no-op:
// every method checks its receiver, so instrumented code paths cost one
// pointer comparison when observability is off. All operations are
// mutex-guarded and safe for concurrent use.
package obs

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one named phase in the trace tree.
type Span struct {
	// Name identifies the phase ("prepare", "probes", "shuffle", …).
	Name string `json:"name"`
	// Modeled is the phase's modeled time in seconds — the simulator's
	// deterministic QCT accounting, not wall-clock.
	Modeled float64 `json:"modeled_s"`
	// Wall is the measured wall-clock duration in seconds; zero unless the
	// collector was built with WithWallClock.
	Wall float64 `json:"wall_s,omitempty"`
	// Children are sub-phases in creation order.
	Children []*Span `json:"children,omitempty"`

	c       *Collector
	parent  *Span
	started time.Time
}

// Event is one discrete occurrence on the run's modeled timeline — a
// fault firing, a retry, a site coming back — recorded in arrival order.
// T is modeled seconds, so event logs stay byte-deterministic.
type Event struct {
	T      float64 `json:"t_s"`
	Kind   string  `json:"kind"`
	Site   int     `json:"site"`
	Detail string  `json:"detail,omitempty"`
}

// Sink mirrors the stream of metric updates entering a Collector. A
// registered sink sees every Count, Gauge and Observe (including the
// counter and gauge folds of MergeSnapshot) after the collector's own
// registry has absorbed it. Sinks must not call back into the collector;
// the windowed-aggregation registry (internal/obs/window) is the
// canonical implementation.
type Sink interface {
	Count(name string, delta float64)
	Gauge(name string, v float64)
	Observe(name string, v float64)
}

// Collector gathers one run's trace and metrics.
type Collector struct {
	mu       sync.Mutex
	root     *Span
	cur      *Span
	wall     bool
	counters map[string]float64
	gauges   map[string]float64
	hists    map[string]*histSeries
	events   []Event
	sink     Sink
}

// SetSink attaches (or, with nil, detaches) a metrics sink. Nil-safe.
func (c *Collector) SetSink(s Sink) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sink = s
}

// Option configures a Collector.
type Option func(*Collector)

// WithWallClock records wall-clock durations on spans in addition to
// modeled time. Wall times are nondeterministic, so reports produced with
// this option are not byte-identical across runs.
func WithWallClock() Option { return func(c *Collector) { c.wall = true } }

// NewCollector creates an empty collector. The trace root span is named
// "bohr".
func NewCollector(opts ...Option) *Collector {
	c := &Collector{
		counters: map[string]float64{},
		gauges:   map[string]float64{},
		hists:    map[string]*histSeries{},
	}
	c.root = &Span{Name: "bohr", c: c}
	c.cur = c.root
	for _, o := range opts {
		o(c)
	}
	return c
}

// StartSpan opens a new child of the current span and makes it current.
// Close it with End. Nil-safe: a nil collector returns a nil span.
func (c *Collector) StartSpan(name string) *Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sp := &Span{Name: name, c: c, parent: c.cur}
	if c.wall {
		sp.started = time.Now()
	}
	c.cur.Children = append(c.cur.Children, sp)
	c.cur = sp
	return sp
}

// Current returns the innermost open span (the trace root when nothing is
// open). Nil-safe.
func (c *Collector) Current() *Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cur
}

// End closes the span: the collector's current span returns to the
// parent. Ending a span that has already been popped (or that is an
// ancestor of the current span) pops everything above it too, so span
// leaks from early returns stay contained; every span popped this way
// gets its wall-clock duration stamped, not just the receiver.
func (s *Span) End() {
	if s == nil || s.c == nil {
		return
	}
	c := s.c
	c.mu.Lock()
	defer c.mu.Unlock()
	onChain := false
	for cur := c.cur; cur != nil; cur = cur.parent {
		if cur == s {
			onChain = true
			break
		}
	}
	if !onChain {
		c.stampWall(s)
		return
	}
	for cur := c.cur; ; cur = cur.parent {
		c.stampWall(cur)
		if cur == s {
			break
		}
	}
	c.cur = s.parent
	if c.cur == nil {
		c.cur = c.root
	}
}

// stampWall records the span's wall duration if the collector measures
// wall time and the span has not been stamped yet. Callers hold c.mu.
func (c *Collector) stampWall(s *Span) {
	if c.wall && !s.started.IsZero() && s.Wall == 0 {
		s.Wall = time.Since(s.started).Seconds()
	}
}

// WallClock reports whether the collector stamps wall-clock durations on
// spans (built with WithWallClock). Nil-safe.
func (c *Collector) WallClock() bool {
	if c == nil {
		return false
	}
	return c.wall
}

// Add accumulates modeled seconds onto the span. Nil-safe.
func (s *Span) Add(dt float64) {
	if s == nil {
		return
	}
	if s.c != nil {
		s.c.mu.Lock()
		defer s.c.mu.Unlock()
	}
	s.Modeled += dt
}

// Child finds or creates a direct child by name WITHOUT making it
// current — the accumulation form used where strict stack discipline does
// not hold (e.g. per-query stage times interleaved across concurrent
// jobs). Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	if s.c != nil {
		s.c.mu.Lock()
		defer s.c.mu.Unlock()
	}
	for _, ch := range s.Children {
		if ch.Name == name {
			return ch
		}
	}
	ch := &Span{Name: name, c: s.c, parent: s}
	s.Children = append(s.Children, ch)
	return ch
}

// Count adds delta to a named counter. Nil-safe.
func (c *Collector) Count(name string, delta float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.counters[name] += delta
	sink := c.sink
	c.mu.Unlock()
	if sink != nil {
		sink.Count(name, delta)
	}
}

// Gauge sets a named gauge to the given value. Nil-safe.
func (c *Collector) Gauge(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.gauges[name] = v
	sink := c.sink
	c.mu.Unlock()
	if sink != nil {
		sink.Gauge(name, v)
	}
}

// HistogramCap bounds the observations retained per histogram series.
// Beyond the cap, reservoir sampling (seeded per series name, so runs
// are reproducible for a fixed observation order) keeps a uniform sample
// for the percentile estimates while Count/Sum/Min/Max stay exact.
const HistogramCap = 4096

// histSeries is one bounded histogram: an observation reservoir plus
// exact running aggregates.
type histSeries struct {
	vals []float64
	seen int
	sum  float64
	min  float64
	max  float64
	rng  *rand.Rand
}

func newHistSeries(name string) *histSeries {
	h := fnv.New64a()
	h.Write([]byte(name))
	return &histSeries{rng: rand.New(rand.NewSource(int64(h.Sum64())))}
}

func (h *histSeries) observe(v float64) {
	if h.seen == 0 || v < h.min {
		h.min = v
	}
	if h.seen == 0 || v > h.max {
		h.max = v
	}
	h.seen++
	h.sum += v
	if len(h.vals) < HistogramCap {
		h.vals = append(h.vals, v)
		return
	}
	if j := h.rng.Intn(h.seen); j < HistogramCap {
		h.vals[j] = v
	}
}

// Observe records one observation into a named histogram. Nil-safe.
func (c *Collector) Observe(name string, v float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	h := c.hists[name]
	if h == nil {
		h = newHistSeries(name)
		c.hists[name] = h
	}
	h.observe(v)
	sink := c.sink
	c.mu.Unlock()
	if sink != nil {
		sink.Observe(name, v)
	}
}

// RecordEvent appends one timeline event. Nil-safe.
func (c *Collector) RecordEvent(ev Event) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
}

// EventLog copies the recorded timeline events in arrival order.
// Nil-safe: a nil collector (or no events) returns nil.
func (c *Collector) EventLog() []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.events) == 0 {
		return nil
	}
	return append([]Event(nil), c.events...)
}

// HistogramStats summarizes a histogram's observations. Percentiles use
// the nearest-rank method on the sorted observations.
type HistogramStats struct {
	Count int     `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of the metrics registry with a stable
// JSON encoding (map keys marshal sorted).
type Snapshot struct {
	Counters   map[string]float64        `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// summarize computes HistogramStats for one observation series using the
// nearest-rank percentile definition: the ⌈q·n⌉-th smallest value.
func summarize(vals []float64) HistogramStats {
	st := HistogramStats{Count: len(vals)}
	if len(vals) == 0 {
		return st
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	st.Min = sorted[0]
	st.Max = sorted[len(sorted)-1]
	for _, v := range sorted {
		st.Sum += v
	}
	rank := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	st.P50 = rank(0.50)
	st.P90 = rank(0.90)
	st.P99 = rank(0.99)
	return st
}

// stats summarizes the series: percentiles come from the reservoir,
// Count/Sum/Min/Max from the exact running aggregates.
func (h *histSeries) stats() HistogramStats {
	st := summarize(h.vals)
	st.Count = h.seen
	if h.seen > 0 {
		st.Sum = h.sum
		st.Min = h.min
		st.Max = h.max
	}
	return st
}

// MetricsSnapshot copies the current metric values. Nil-safe: a nil
// collector returns nil.
func (c *Collector) MetricsSnapshot() *Snapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := &Snapshot{}
	if len(c.counters) > 0 {
		snap.Counters = make(map[string]float64, len(c.counters))
		for k, v := range c.counters {
			snap.Counters[k] = v
		}
	}
	if len(c.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(c.gauges))
		for k, v := range c.gauges {
			snap.Gauges[k] = v
		}
	}
	if len(c.hists) > 0 {
		snap.Histograms = make(map[string]HistogramStats, len(c.hists))
		for k, h := range c.hists {
			snap.Histograms[k] = h.stats()
		}
	}
	return snap
}

// MergeSnapshot folds a remote snapshot into this collector: counters
// accumulate, gauges take the remote value. Histogram summaries cannot be
// merged losslessly, so their Sum/Count fold into "<name>.sum" /
// "<name>.count" counters instead. This is how the controller absorbs
// worker-side metric deltas shipped back in netio responses. Nil-safe on
// both sides.
func (c *Collector) MergeSnapshot(snap *Snapshot) {
	if c == nil || snap == nil {
		return
	}
	c.mu.Lock()
	for k, v := range snap.Counters {
		c.counters[k] += v
	}
	for k, v := range snap.Gauges {
		c.gauges[k] = v
	}
	for k, st := range snap.Histograms {
		c.counters[k+".sum"] += st.Sum
		c.counters[k+".count"] += float64(st.Count)
	}
	sink := c.sink
	c.mu.Unlock()
	if sink == nil {
		return
	}
	for k, v := range snap.Counters {
		sink.Count(k, v)
	}
	for k, v := range snap.Gauges {
		sink.Gauge(k, v)
	}
	for k, st := range snap.Histograms {
		sink.Count(k+".sum", st.Sum)
		sink.Count(k+".count", float64(st.Count))
	}
}

// Trace returns a deep copy of the trace tree, detached from the
// collector so later spans do not mutate it. Nil-safe: returns nil on a
// nil collector.
func (c *Collector) Trace() *Span {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return copySpan(c.root)
}

func copySpan(s *Span) *Span {
	out := &Span{Name: s.Name, Modeled: s.Modeled, Wall: s.Wall}
	for _, ch := range s.Children {
		out.Children = append(out.Children, copySpan(ch))
	}
	return out
}

// Attach grafts a detached span subtree (e.g. one deserialized from a
// remote worker's response) under this span as a new child, deep-copying
// it so the caller's tree stays independent. This is the stitching
// primitive for distributed traces. Nil-safe: a nil receiver or subtree
// is a no-op.
func (s *Span) Attach(sub *Span) {
	if s == nil || sub == nil {
		return
	}
	cp := copySpan(sub)
	if s.c != nil {
		s.c.mu.Lock()
		defer s.c.mu.Unlock()
	}
	cp.parent = s
	cp.c = s.c
	s.Children = append(s.Children, cp)
}

// sanitizeMax bounds a sanitized label's length; longer inputs are
// truncated and suffixed with a hash of the original.
const sanitizeMax = 48

// SanitizeLabel maps an externally supplied string (a tenant ID, an
// ingest source name) onto the safe metric-label charset [a-zA-Z0-9_-]:
// every other rune becomes '_', and inputs that were altered or exceed
// sanitizeMax runes are truncated and suffixed with an 8-hex FNV-1a hash
// of the original, so distinct hostile inputs cannot collide onto one
// series or smuggle structure (dots, newlines, exposition syntax) into
// registry names. Well-behaved names pass through unchanged.
func SanitizeLabel(s string) string {
	if s == "" {
		return "_"
	}
	var b strings.Builder
	changed := false
	n := 0
	for _, r := range s {
		if n >= sanitizeMax {
			changed = true
			break
		}
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
			changed = true
		}
		n++
	}
	if !changed {
		return s
	}
	h := fnv.New32a()
	h.Write([]byte(s))
	return fmt.Sprintf("%s-%08x", b.String(), h.Sum32())
}

// Find returns the descendant span reached by following the named path
// from this span (nil if any step is missing). Convenience for tests and
// report consumers.
func (s *Span) Find(path ...string) *Span {
	cur := s
	for _, name := range path {
		if cur == nil {
			return nil
		}
		var next *Span
		for _, ch := range cur.Children {
			if ch.Name == name {
				next = ch
				break
			}
		}
		cur = next
	}
	return cur
}
