package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	c := NewCollector()
	prep := c.StartSpan("prepare")
	probes := c.StartSpan("probes")
	probes.Add(1.5)
	probes.End()
	lp := c.StartSpan("lp")
	lp.Child("calibrate").Add(0.25)
	lp.Add(2)
	lp.End()
	prep.Add(3.5)
	prep.End()
	run := c.StartSpan("run")
	run.Add(7)
	run.End()

	tr := c.Trace()
	if tr.Name != "bohr" {
		t.Fatalf("root = %q", tr.Name)
	}
	if got := tr.Find("prepare", "probes"); got == nil || got.Modeled != 1.5 {
		t.Fatalf("probes span = %+v", got)
	}
	if got := tr.Find("prepare", "lp", "calibrate"); got == nil || got.Modeled != 0.25 {
		t.Fatalf("calibrate span = %+v", got)
	}
	if got := tr.Find("run"); got == nil || got.Modeled != 7 {
		t.Fatalf("run span = %+v", got)
	}
	if got := tr.Find("prepare", "missing"); got != nil {
		t.Fatalf("Find on missing path = %+v", got)
	}
	// Sibling order is creation order.
	if len(tr.Children) != 2 || tr.Children[0].Name != "prepare" || tr.Children[1].Name != "run" {
		t.Fatalf("root children = %+v", tr.Children)
	}
}

func TestSpanEndPopsLeakedChildren(t *testing.T) {
	c := NewCollector()
	outer := c.StartSpan("outer")
	c.StartSpan("leaked") // never ended
	outer.End()
	if cur := c.Current(); cur.Name != "bohr" {
		t.Fatalf("ending an ancestor should pop leaked children, current = %q", cur.Name)
	}
	// Ending an already-popped span is harmless.
	outer.End()
	if cur := c.Current(); cur.Name != "bohr" {
		t.Fatalf("double End moved current to %q", cur.Name)
	}
}

func TestChildFindOrCreate(t *testing.T) {
	c := NewCollector()
	q := c.Current().Child("q00:scan")
	q.Child("map").Add(1)
	q.Child("map").Add(2)
	q.Child("shuffle").Add(5)
	if got := c.Trace().Find("q00:scan", "map"); got.Modeled != 3 {
		t.Fatalf("map accumulated %v, want 3", got.Modeled)
	}
	if n := len(c.Trace().Find("q00:scan").Children); n != 2 {
		t.Fatalf("children = %d, want 2 (map, shuffle)", n)
	}
	// Child must not change the collector's current span.
	if cur := c.Current(); cur.Name != "bohr" {
		t.Fatalf("Child made %q current", cur.Name)
	}
}

func TestNilCollectorNoOps(t *testing.T) {
	var c *Collector
	sp := c.StartSpan("x")
	if sp != nil {
		t.Fatal("nil collector should hand out nil spans")
	}
	sp.Add(1)
	sp.End()
	if ch := sp.Child("y"); ch != nil {
		t.Fatal("nil span Child should be nil")
	}
	c.Count("a", 1)
	c.Gauge("b", 2)
	c.Observe("c", 3)
	if c.Current() != nil || c.Trace() != nil || c.MetricsSnapshot() != nil {
		t.Fatal("nil collector accessors should return nil")
	}
}

func TestMetrics(t *testing.T) {
	c := NewCollector()
	c.Count("records", 10)
	c.Count("records", 5)
	c.Gauge("sites", 4)
	c.Gauge("sites", 10)
	snap := c.MetricsSnapshot()
	if snap.Counters["records"] != 15 {
		t.Fatalf("counter = %v", snap.Counters["records"])
	}
	if snap.Gauges["sites"] != 10 {
		t.Fatalf("gauge should keep last value, got %v", snap.Gauges["sites"])
	}
	// Snapshot is a copy: later writes must not leak into it.
	c.Count("records", 100)
	if snap.Counters["records"] != 15 {
		t.Fatal("snapshot mutated by later Count")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 100; i++ {
		c.Observe("lat", float64(i))
	}
	st := c.MetricsSnapshot().Histograms["lat"]
	if st.Count != 100 || st.Min != 1 || st.Max != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Sum != 5050 {
		t.Fatalf("sum = %v", st.Sum)
	}
	// Nearest-rank on 1..100: P50 = 50th value, P90 = 90th, P99 = 99th.
	if st.P50 != 50 || st.P90 != 90 || st.P99 != 99 {
		t.Fatalf("percentiles = %v/%v/%v", st.P50, st.P90, st.P99)
	}

	// Single observation: every percentile is that value.
	c.Observe("one", 7)
	one := c.MetricsSnapshot().Histograms["one"]
	if one.P50 != 7 || one.P90 != 7 || one.P99 != 7 {
		t.Fatalf("single-obs percentiles = %+v", one)
	}
}

func TestConcurrentUse(t *testing.T) {
	c := NewCollector()
	root := c.Current()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sp := root.Child("worker")
			for i := 0; i < 100; i++ {
				sp.Add(1)
				c.Count("ops", 1)
				c.Observe("lat", float64(i))
			}
		}(g)
	}
	wg.Wait()
	if got := c.Trace().Find("worker").Modeled; got != 800 {
		t.Fatalf("modeled = %v, want 800", got)
	}
	if got := c.MetricsSnapshot().Counters["ops"]; got != 800 {
		t.Fatalf("ops = %v, want 800", got)
	}
}

func TestSnapshotJSONStable(t *testing.T) {
	mk := func() ([]byte, error) {
		c := NewCollector()
		c.StartSpan("prepare").End()
		c.Count("z.last", 1)
		c.Count("a.first", 2)
		c.Observe("h", 1)
		c.Observe("h", 3)
		doc := struct {
			Trace   *Span     `json:"trace"`
			Metrics *Snapshot `json:"metrics"`
		}{c.Trace(), c.MetricsSnapshot()}
		return json.Marshal(doc)
	}
	a, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("identical collectors marshal differently:\n%s\n%s", a, b)
	}
}
