package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	c := NewCollector()
	prep := c.StartSpan("prepare")
	probes := c.StartSpan("probes")
	probes.Add(1.5)
	probes.End()
	lp := c.StartSpan("lp")
	lp.Child("calibrate").Add(0.25)
	lp.Add(2)
	lp.End()
	prep.Add(3.5)
	prep.End()
	run := c.StartSpan("run")
	run.Add(7)
	run.End()

	tr := c.Trace()
	if tr.Name != "bohr" {
		t.Fatalf("root = %q", tr.Name)
	}
	if got := tr.Find("prepare", "probes"); got == nil || got.Modeled != 1.5 {
		t.Fatalf("probes span = %+v", got)
	}
	if got := tr.Find("prepare", "lp", "calibrate"); got == nil || got.Modeled != 0.25 {
		t.Fatalf("calibrate span = %+v", got)
	}
	if got := tr.Find("run"); got == nil || got.Modeled != 7 {
		t.Fatalf("run span = %+v", got)
	}
	if got := tr.Find("prepare", "missing"); got != nil {
		t.Fatalf("Find on missing path = %+v", got)
	}
	// Sibling order is creation order.
	if len(tr.Children) != 2 || tr.Children[0].Name != "prepare" || tr.Children[1].Name != "run" {
		t.Fatalf("root children = %+v", tr.Children)
	}
}

func TestSpanEndPopsLeakedChildren(t *testing.T) {
	c := NewCollector()
	outer := c.StartSpan("outer")
	c.StartSpan("leaked") // never ended
	outer.End()
	if cur := c.Current(); cur.Name != "bohr" {
		t.Fatalf("ending an ancestor should pop leaked children, current = %q", cur.Name)
	}
	// Ending an already-popped span is harmless.
	outer.End()
	if cur := c.Current(); cur.Name != "bohr" {
		t.Fatalf("double End moved current to %q", cur.Name)
	}
}

func TestChildFindOrCreate(t *testing.T) {
	c := NewCollector()
	q := c.Current().Child("q00:scan")
	q.Child("map").Add(1)
	q.Child("map").Add(2)
	q.Child("shuffle").Add(5)
	if got := c.Trace().Find("q00:scan", "map"); got.Modeled != 3 {
		t.Fatalf("map accumulated %v, want 3", got.Modeled)
	}
	if n := len(c.Trace().Find("q00:scan").Children); n != 2 {
		t.Fatalf("children = %d, want 2 (map, shuffle)", n)
	}
	// Child must not change the collector's current span.
	if cur := c.Current(); cur.Name != "bohr" {
		t.Fatalf("Child made %q current", cur.Name)
	}
}

func TestNilCollectorNoOps(t *testing.T) {
	var c *Collector
	sp := c.StartSpan("x")
	if sp != nil {
		t.Fatal("nil collector should hand out nil spans")
	}
	sp.Add(1)
	sp.End()
	if ch := sp.Child("y"); ch != nil {
		t.Fatal("nil span Child should be nil")
	}
	c.Count("a", 1)
	c.Gauge("b", 2)
	c.Observe("c", 3)
	if c.Current() != nil || c.Trace() != nil || c.MetricsSnapshot() != nil {
		t.Fatal("nil collector accessors should return nil")
	}
}

func TestMetrics(t *testing.T) {
	c := NewCollector()
	c.Count("records", 10)
	c.Count("records", 5)
	c.Gauge("sites", 4)
	c.Gauge("sites", 10)
	snap := c.MetricsSnapshot()
	if snap.Counters["records"] != 15 {
		t.Fatalf("counter = %v", snap.Counters["records"])
	}
	if snap.Gauges["sites"] != 10 {
		t.Fatalf("gauge should keep last value, got %v", snap.Gauges["sites"])
	}
	// Snapshot is a copy: later writes must not leak into it.
	c.Count("records", 100)
	if snap.Counters["records"] != 15 {
		t.Fatal("snapshot mutated by later Count")
	}
}

func TestHistogramPercentiles(t *testing.T) {
	c := NewCollector()
	for i := 1; i <= 100; i++ {
		c.Observe("lat", float64(i))
	}
	st := c.MetricsSnapshot().Histograms["lat"]
	if st.Count != 100 || st.Min != 1 || st.Max != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Sum != 5050 {
		t.Fatalf("sum = %v", st.Sum)
	}
	// Nearest-rank on 1..100: P50 = 50th value, P90 = 90th, P99 = 99th.
	if st.P50 != 50 || st.P90 != 90 || st.P99 != 99 {
		t.Fatalf("percentiles = %v/%v/%v", st.P50, st.P90, st.P99)
	}

	// Single observation: every percentile is that value.
	c.Observe("one", 7)
	one := c.MetricsSnapshot().Histograms["one"]
	if one.P50 != 7 || one.P90 != 7 || one.P99 != 7 {
		t.Fatalf("single-obs percentiles = %+v", one)
	}
}

func TestPercentileBoundaries(t *testing.T) {
	// n=1: every percentile is the single value (ceil(q*1)-1 = 0).
	c := NewCollector()
	c.Observe("one", 42)
	st := c.MetricsSnapshot().Histograms["one"]
	if st.P50 != 42 || st.P90 != 42 || st.P99 != 42 {
		t.Fatalf("n=1 percentiles = %+v", st)
	}

	// Exact multiples: on n=100 of 1..100, q=0.99 must hit the 99th
	// smallest value exactly, not round up to the 100th.
	c2 := NewCollector()
	for i := 1; i <= 100; i++ {
		c2.Observe("lat", float64(i))
	}
	lat := c2.MetricsSnapshot().Histograms["lat"]
	if lat.P50 != 50 || lat.P90 != 90 || lat.P99 != 99 {
		t.Fatalf("exact-multiple percentiles = %v/%v/%v, want 50/90/99", lat.P50, lat.P90, lat.P99)
	}

	// n=2: ceil(0.5*2)=1 → P50 is the smaller value; P99 the larger.
	c3 := NewCollector()
	c3.Observe("two", 10)
	c3.Observe("two", 20)
	two := c3.MetricsSnapshot().Histograms["two"]
	if two.P50 != 10 || two.P99 != 20 {
		t.Fatalf("n=2 percentiles = %+v", two)
	}
}

func TestHistogramReservoirCap(t *testing.T) {
	c := NewCollector()
	n := HistogramCap * 3
	for i := 0; i < n; i++ {
		c.Observe("big", float64(i))
	}
	c.mu.Lock()
	held := len(c.hists["big"].vals)
	c.mu.Unlock()
	if held != HistogramCap {
		t.Fatalf("reservoir holds %d observations, want cap %d", held, HistogramCap)
	}
	st := c.MetricsSnapshot().Histograms["big"]
	if st.Count != n {
		t.Fatalf("Count = %d, want exact %d", st.Count, n)
	}
	if st.Min != 0 || st.Max != float64(n-1) {
		t.Fatalf("min/max = %v/%v, want exact 0/%d", st.Min, st.Max, n-1)
	}
	if want := float64(n) * float64(n-1) / 2; st.Sum != want {
		t.Fatalf("Sum = %v, want exact %v", st.Sum, want)
	}
	// The sampled median of a uniform 0..n-1 stream should land near the
	// true median; a generous band guards against a broken reservoir.
	if st.P50 < float64(n)/4 || st.P50 > 3*float64(n)/4 {
		t.Fatalf("sampled P50 = %v wildly off for uniform 0..%d", st.P50, n-1)
	}

	// Determinism: the same observation sequence yields the same stats.
	c2 := NewCollector()
	for i := 0; i < n; i++ {
		c2.Observe("big", float64(i))
	}
	if got := c2.MetricsSnapshot().Histograms["big"]; got != st {
		t.Fatalf("seeded reservoir not reproducible: %+v vs %+v", got, st)
	}
}

func TestEndStampsWallOnPoppedDescendants(t *testing.T) {
	c := NewCollector(WithWallClock())
	outer := c.StartSpan("outer")
	mid := c.StartSpan("mid")
	inner := c.StartSpan("inner")
	_ = mid
	_ = inner
	time.Sleep(5 * time.Millisecond)
	outer.End() // pops inner and mid implicitly
	tr := c.Trace()
	for _, path := range [][]string{{"outer"}, {"outer", "mid"}, {"outer", "mid", "inner"}} {
		sp := tr.Find(path...)
		if sp == nil {
			t.Fatalf("span %v missing", path)
		}
		if sp.Wall <= 0 {
			t.Fatalf("span %v popped by ancestor End has Wall = %v, want > 0", path, sp.Wall)
		}
	}
}

func TestAttachGraftsDetachedSubtree(t *testing.T) {
	c := NewCollector()
	q := c.StartSpan("query")
	remote := &Span{Name: "map@site1", Wall: 0.25, Children: []*Span{
		{Name: "combine", Wall: 0.1},
	}}
	q.Attach(remote)
	q.End()
	got := c.Trace().Find("query", "map@site1", "combine")
	if got == nil || got.Wall != 0.1 {
		t.Fatalf("grafted subtree = %+v", got)
	}
	// The graft is a copy: mutating the source must not leak in.
	remote.Children[0].Wall = 99
	if got := c.Trace().Find("query", "map@site1", "combine"); got.Wall != 0.1 {
		t.Fatal("Attach did not deep-copy the subtree")
	}
	// Nil-safety.
	var nilSpan *Span
	nilSpan.Attach(remote)
	q.Attach(nil)
}

func TestMergeSnapshot(t *testing.T) {
	c := NewCollector()
	c.Count("shared", 1)
	c.MergeSnapshot(&Snapshot{
		Counters:   map[string]float64{"shared": 2, "remote.only": 5},
		Gauges:     map[string]float64{"conns": 3},
		Histograms: map[string]HistogramStats{"lat": {Count: 4, Sum: 8}},
	})
	snap := c.MetricsSnapshot()
	if snap.Counters["shared"] != 3 || snap.Counters["remote.only"] != 5 {
		t.Fatalf("merged counters = %+v", snap.Counters)
	}
	if snap.Gauges["conns"] != 3 {
		t.Fatalf("merged gauges = %+v", snap.Gauges)
	}
	if snap.Counters["lat.sum"] != 8 || snap.Counters["lat.count"] != 4 {
		t.Fatalf("histogram fold = %+v", snap.Counters)
	}
	c.MergeSnapshot(nil)
	var nilC *Collector
	nilC.MergeSnapshot(snap)
}

func TestEventLogConcurrentWriters(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	const writers, per = 8, 200
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.RecordEvent(Event{T: float64(i), Kind: "retry", Site: g})
				if i%10 == 0 {
					_ = c.EventLog() // concurrent reads must be safe too
				}
			}
		}(g)
	}
	wg.Wait()
	log := c.EventLog()
	if len(log) != writers*per {
		t.Fatalf("event log holds %d events, want %d", len(log), writers*per)
	}
	// The copy is detached from later writes.
	c.RecordEvent(Event{Kind: "late"})
	if len(log) != writers*per {
		t.Fatal("EventLog copy mutated by a later RecordEvent")
	}
}

func TestFindMissingPaths(t *testing.T) {
	c := NewCollector()
	c.StartSpan("a").End()
	tr := c.Trace()
	if got := tr.Find("a", "b"); got != nil {
		t.Fatalf("missing leaf = %+v", got)
	}
	if got := tr.Find("nope"); got != nil {
		t.Fatalf("missing root child = %+v", got)
	}
	if got := tr.Find("a", "b", "c", "d"); got != nil {
		t.Fatalf("deep missing path = %+v", got)
	}
	if got := tr.Find(); got != tr {
		t.Fatal("empty path should return the receiver")
	}
	var nilSpan *Span
	if got := nilSpan.Find("x"); got != nil {
		t.Fatal("Find on nil span should be nil")
	}
}

func TestConcurrentUse(t *testing.T) {
	c := NewCollector()
	root := c.Current()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sp := root.Child("worker")
			for i := 0; i < 100; i++ {
				sp.Add(1)
				c.Count("ops", 1)
				c.Observe("lat", float64(i))
			}
		}(g)
	}
	wg.Wait()
	if got := c.Trace().Find("worker").Modeled; got != 800 {
		t.Fatalf("modeled = %v, want 800", got)
	}
	if got := c.MetricsSnapshot().Counters["ops"]; got != 800 {
		t.Fatalf("ops = %v, want 800", got)
	}
}

func TestSnapshotJSONStable(t *testing.T) {
	mk := func() ([]byte, error) {
		c := NewCollector()
		c.StartSpan("prepare").End()
		c.Count("z.last", 1)
		c.Count("a.first", 2)
		c.Observe("h", 1)
		c.Observe("h", 3)
		doc := struct {
			Trace   *Span     `json:"trace"`
			Metrics *Snapshot `json:"metrics"`
		}{c.Trace(), c.MetricsSnapshot()}
		return json.Marshal(doc)
	}
	a, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("identical collectors marshal differently:\n%s\n%s", a, b)
	}
}

func TestSanitizeLabel(t *testing.T) {
	// Clean short labels pass through untouched — existing metric names
	// must not change shape.
	for _, ok := range []string{"alice", "t42", "web-tier_1"} {
		if got := SanitizeLabel(ok); got != ok {
			t.Fatalf("SanitizeLabel(%q) = %q, want unchanged", ok, got)
		}
	}
	// Hostile characters are replaced and the result is hash-suffixed.
	hostile := "evil\ntenant{job=\"x\"} 42"
	got := SanitizeLabel(hostile)
	for _, r := range got {
		valid := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			r >= '0' && r <= '9' || r == '_' || r == '-'
		if !valid {
			t.Fatalf("SanitizeLabel(%q) = %q contains invalid rune %q", hostile, got, r)
		}
	}
	// Distinct inputs that sanitize to the same charset skeleton must not
	// collide (hash suffix disambiguates).
	if SanitizeLabel("a{b") == SanitizeLabel("a}b") {
		t.Fatal("distinct hostile labels collided after sanitizing")
	}
	// Deterministic.
	if SanitizeLabel(hostile) != got {
		t.Fatal("sanitization is not deterministic")
	}
	// Long labels are truncated but stay bounded and distinct.
	long1 := strings.Repeat("x", 200) + "1"
	long2 := strings.Repeat("x", 200) + "2"
	if len(SanitizeLabel(long1)) > 64 {
		t.Fatalf("long label not bounded: %d runes", len(SanitizeLabel(long1)))
	}
	if SanitizeLabel(long1) == SanitizeLabel(long2) {
		t.Fatal("distinct long labels collided after truncation")
	}
	// Empty input yields a usable placeholder.
	if got := SanitizeLabel(""); got == "" {
		t.Fatal("empty label sanitized to empty string")
	}
}

// TestSinkReceivesAllPaths checks the Collector forwards counters,
// gauges, observations, and merged snapshots to an attached Sink.
func TestSinkReceivesAllPaths(t *testing.T) {
	col := NewCollector()
	sink := &recordingSink{events: map[string]float64{}}
	col.SetSink(sink)
	col.Count("c", 2)
	col.Gauge("g", 7)
	col.Observe("h", 0.5)
	col.MergeSnapshot(&Snapshot{
		Counters: map[string]float64{"remote.c": 3},
		Gauges:   map[string]float64{"remote.g": 4},
	})
	sink.mu.Lock()
	defer sink.mu.Unlock()
	for name, want := range map[string]float64{
		"count:c": 2, "gauge:g": 7, "observe:h": 0.5,
		"count:remote.c": 3, "gauge:remote.g": 4,
	} {
		if got := sink.events[name]; got != want {
			t.Fatalf("sink %s = %v, want %v (events: %v)", name, got, want, sink.events)
		}
	}
	// Detaching stops the flow; a nil collector stays safe.
	col.SetSink(nil)
	col.Count("c", 1)
	var nilCol *Collector
	nilCol.SetSink(sink)
}

type recordingSink struct {
	mu     sync.Mutex
	events map[string]float64
}

func (r *recordingSink) Count(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events["count:"+name] += v
}

func (r *recordingSink) Gauge(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events["gauge:"+name] = v
}

func (r *recordingSink) Observe(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events["observe:"+name] = v
}
