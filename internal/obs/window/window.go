// Package window adds the time axis the base obs registry deliberately
// lacks: rolling-window aggregation for a continuously running daemon.
// The base Collector accumulates since process start — exactly right for
// one deterministic simulated run, useless for judging a live bohrd after
// an hour of traffic, where an "all-time p99" hides the last minute's
// regression. A Registry mirrors the metric stream (via obs.Collector's
// sink tap) into fixed-size bucket rings and answers windowed questions:
// counter rates and histogram p50/p90/p99 over the last 10s, 1m, and 5m.
//
// Buckets rotate on a coarse grid driven by an injectable clock, so a
// test clock makes every rate and percentile deterministic; under the
// real clock all operations are mutex-guarded and race-clean. Per-bucket
// observation reservoirs are bounded (BucketCap) with a seeded
// reservoir-sampling policy, so a hot series costs O(windows · buckets ·
// BucketCap) memory no matter how long the daemon runs.
package window

import (
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Def describes one rolling window as a ring of Count buckets each
// spanning Bucket: the window covers Bucket·Count of history.
type Def struct {
	// Name labels the window in snapshots ("10s", "1m", "5m").
	Name string
	// Bucket is one ring slot's time span.
	Bucket time.Duration
	// Count is the number of ring slots.
	Count int
}

// Span is the window's total coverage.
func (d Def) Span() time.Duration { return d.Bucket * time.Duration(d.Count) }

// DefaultDefs are the daemon resolutions: 10s (1s buckets), 1m (5s
// buckets), 5m (15s buckets).
func DefaultDefs() []Def {
	return []Def{
		{Name: "10s", Bucket: time.Second, Count: 10},
		{Name: "1m", Bucket: 5 * time.Second, Count: 12},
		{Name: "5m", Bucket: 15 * time.Second, Count: 20},
	}
}

// BucketCap bounds the observations retained per histogram bucket.
// Beyond it, seeded reservoir sampling keeps a uniform sample per bucket;
// per-bucket counts and maxima stay exact.
const BucketCap = 256

// Registry holds the windowed series. It implements obs.Sink, so
// attaching it via Collector.SetSink mirrors every counter increment,
// gauge set, and histogram observation into the rings.
type Registry struct {
	mu       sync.Mutex
	defs     []Def
	now      func() time.Time
	counters map[string]*counterSeries
	hists    map[string]*histSeries
	gauges   map[string]float64
}

// New builds a registry. A nil clock uses time.Now; no defs adopts
// DefaultDefs.
func New(now func() time.Time, defs ...Def) *Registry {
	if now == nil {
		now = time.Now
	}
	if len(defs) == 0 {
		defs = DefaultDefs()
	}
	return &Registry{
		defs:     defs,
		now:      now,
		counters: map[string]*counterSeries{},
		hists:    map[string]*histSeries{},
		gauges:   map[string]float64{},
	}
}

// Defs returns the registry's window definitions.
func (r *Registry) Defs() []Def {
	if r == nil {
		return nil
	}
	return append([]Def(nil), r.defs...)
}

// counterSeries is one counter's rings: per window, a slot sum and the
// epoch (absolute bucket number) it belongs to, so stale slots are lazily
// reset on first touch after the ring wraps.
type counterSeries struct {
	sums   [][]float64
	epochs [][]int64
}

// histSeries is one histogram's rings: per window and slot, a bounded
// observation reservoir plus exact count and max. One seeded generator
// per series keeps reservoir decisions reproducible for a fixed
// observation order.
type histSeries struct {
	vals   [][][]float64
	seen   [][]int
	maxs   [][]float64
	epochs [][]int64
	rng    *rand.Rand
}

func (r *Registry) counter(name string) *counterSeries {
	cs, ok := r.counters[name]
	if !ok {
		cs = &counterSeries{
			sums:   make([][]float64, len(r.defs)),
			epochs: make([][]int64, len(r.defs)),
		}
		for i, d := range r.defs {
			cs.sums[i] = make([]float64, d.Count)
			cs.epochs[i] = make([]int64, d.Count)
			for j := range cs.epochs[i] {
				cs.epochs[i][j] = -1
			}
		}
		r.counters[name] = cs
	}
	return cs
}

func (r *Registry) hist(name string) *histSeries {
	hs, ok := r.hists[name]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(name))
		hs = &histSeries{
			vals:   make([][][]float64, len(r.defs)),
			seen:   make([][]int, len(r.defs)),
			maxs:   make([][]float64, len(r.defs)),
			epochs: make([][]int64, len(r.defs)),
			rng:    rand.New(rand.NewSource(int64(h.Sum64()))),
		}
		for i, d := range r.defs {
			hs.vals[i] = make([][]float64, d.Count)
			hs.seen[i] = make([]int, d.Count)
			hs.maxs[i] = make([]float64, d.Count)
			hs.epochs[i] = make([]int64, d.Count)
			for j := range hs.epochs[i] {
				hs.epochs[i][j] = -1
			}
		}
		r.hists[name] = hs
	}
	return hs
}

// epoch is the absolute bucket number of t under d.
func epoch(d Def, t time.Time) int64 { return t.UnixNano() / int64(d.Bucket) }

// Count adds delta to the named counter's current bucket in every window.
// Nil-safe.
func (r *Registry) Count(name string, delta float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	cs := r.counter(name)
	for i, d := range r.defs {
		e := epoch(d, now)
		slot := int(e % int64(d.Count))
		if cs.epochs[i][slot] != e {
			cs.epochs[i][slot] = e
			cs.sums[i][slot] = 0
		}
		cs.sums[i][slot] += delta
	}
}

// Gauge records the gauge's latest value (gauges are instantaneous, so no
// windowing — the snapshot reports the last set value). Nil-safe.
func (r *Registry) Gauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = v
}

// Observe records one observation into the named histogram's current
// bucket in every window. Nil-safe.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	hs := r.hist(name)
	for i, d := range r.defs {
		e := epoch(d, now)
		slot := int(e % int64(d.Count))
		if hs.epochs[i][slot] != e {
			hs.epochs[i][slot] = e
			hs.vals[i][slot] = hs.vals[i][slot][:0]
			hs.seen[i][slot] = 0
			hs.maxs[i][slot] = 0
		}
		if hs.seen[i][slot] == 0 || v > hs.maxs[i][slot] {
			hs.maxs[i][slot] = v
		}
		hs.seen[i][slot]++
		if len(hs.vals[i][slot]) < BucketCap {
			hs.vals[i][slot] = append(hs.vals[i][slot], v)
		} else if j := hs.rng.Intn(hs.seen[i][slot]); j < BucketCap {
			hs.vals[i][slot][j] = v
		}
	}
}

// CounterWindow is one counter over one window.
type CounterWindow struct {
	// Sum is the counter's increase over the window.
	Sum float64 `json:"sum"`
	// Rate is Sum divided by the window span, per second.
	Rate float64 `json:"rate_per_s"`
}

// HistWindow is one histogram over one window. Percentiles use the
// nearest-rank method over the window's (sampled) observations; Count and
// Max are exact.
type HistWindow struct {
	Count int     `json:"count"`
	Rate  float64 `json:"rate_per_s"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Snapshot is a point-in-time windowed view: series name → window name →
// stats. Windows lists the definitions in resolution order so renderers
// need not hard-code them.
type Snapshot struct {
	Windows    []string                            `json:"windows"`
	Counters   map[string]map[string]CounterWindow `json:"counters,omitempty"`
	Gauges     map[string]float64                  `json:"gauges,omitempty"`
	Histograms map[string]map[string]HistWindow    `json:"histograms,omitempty"`
}

// Snapshot computes the windowed stats as of the registry clock's now.
// Buckets whose epoch fell off the ring (older than the window) are
// excluded, so a series that went quiet decays to zero after one span.
// Nil-safe: a nil registry returns nil.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	snap := &Snapshot{}
	for _, d := range r.defs {
		snap.Windows = append(snap.Windows, d.Name)
	}
	if len(r.counters) > 0 {
		snap.Counters = make(map[string]map[string]CounterWindow, len(r.counters))
		for name, cs := range r.counters {
			per := make(map[string]CounterWindow, len(r.defs))
			for i, d := range r.defs {
				e := epoch(d, now)
				var sum float64
				for slot := 0; slot < d.Count; slot++ {
					if be := cs.epochs[i][slot]; be >= 0 && be > e-int64(d.Count) {
						sum += cs.sums[i][slot]
					}
				}
				per[d.Name] = CounterWindow{Sum: sum, Rate: sum / d.Span().Seconds()}
			}
			snap.Counters[name] = per
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gauges))
		for k, v := range r.gauges {
			snap.Gauges[k] = v
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]map[string]HistWindow, len(r.hists))
		for name, hs := range r.hists {
			per := make(map[string]HistWindow, len(r.defs))
			for i, d := range r.defs {
				e := epoch(d, now)
				var vals []float64
				var count int
				var max float64
				for slot := 0; slot < d.Count; slot++ {
					if be := hs.epochs[i][slot]; be >= 0 && be > e-int64(d.Count) {
						vals = append(vals, hs.vals[i][slot]...)
						if hs.seen[i][slot] > 0 && (count == 0 || hs.maxs[i][slot] > max) {
							max = hs.maxs[i][slot]
						}
						count += hs.seen[i][slot]
					}
				}
				hw := HistWindow{Count: count, Rate: float64(count) / d.Span().Seconds(), Max: max}
				if len(vals) > 0 {
					sort.Float64s(vals)
					rank := func(q float64) float64 {
						i := int(math.Ceil(q*float64(len(vals)))) - 1
						if i < 0 {
							i = 0
						}
						if i >= len(vals) {
							i = len(vals) - 1
						}
						return vals[i]
					}
					hw.P50, hw.P90, hw.P99 = rank(0.50), rank(0.90), rank(0.99)
				}
				per[d.Name] = hw
			}
			snap.Histograms[name] = per
		}
	}
	return snap
}
