package window

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bohr/internal/obs"
)

// fakeClock is a settable test clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	// A fixed epoch keeps bucket boundaries stable across runs.
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestCounterWindowedRates(t *testing.T) {
	clk := newFakeClock()
	r := New(clk.Now)

	// 1 count per second for 10 seconds.
	for i := 0; i < 10; i++ {
		r.Count("req", 1)
		clk.Advance(time.Second)
	}
	snap := r.Snapshot()
	cw := snap.Counters["req"]
	// The advance loop ended one second past the last count, so the 10s
	// window holds 9 of the 10 counts (the first fell off).
	if got := cw["10s"].Sum; got != 9 {
		t.Fatalf("10s sum = %v, want 9", got)
	}
	if got := cw["10s"].Rate; got != 0.9 {
		t.Fatalf("10s rate = %v, want 0.9", got)
	}
	if got := cw["1m"].Sum; got != 10 {
		t.Fatalf("1m sum = %v, want 10", got)
	}
	if got := cw["5m"].Sum; got != 10 {
		t.Fatalf("5m sum = %v, want 10", got)
	}

	// After 10 more quiet seconds the 10s window is empty; 1m still full.
	clk.Advance(10 * time.Second)
	cw = r.Snapshot().Counters["req"]
	if got := cw["10s"].Sum; got != 0 {
		t.Fatalf("10s sum after quiet gap = %v, want 0", got)
	}
	if got := cw["1m"].Sum; got != 10 {
		t.Fatalf("1m sum after quiet gap = %v, want 10", got)
	}

	// After the 5m span passes, everything has decayed.
	clk.Advance(5 * time.Minute)
	cw = r.Snapshot().Counters["req"]
	for _, w := range []string{"10s", "1m", "5m"} {
		if got := cw[w].Sum; got != 0 {
			t.Fatalf("%s sum after 5m quiet = %v, want 0", w, got)
		}
	}
}

func TestCounterRingReuseAfterWrap(t *testing.T) {
	clk := newFakeClock()
	r := New(clk.Now)
	// Land counts in the same ring slot two window-spans apart: the stale
	// bucket must be reset, not accumulated.
	r.Count("req", 5)
	clk.Advance(10 * time.Second) // exactly one 10s ring revolution
	r.Count("req", 3)
	if got := r.Snapshot().Counters["req"]["10s"].Sum; got != 3 {
		t.Fatalf("10s sum after wrap = %v, want 3 (stale bucket leaked)", got)
	}
}

func TestHistogramWindowedPercentiles(t *testing.T) {
	clk := newFakeClock()
	r := New(clk.Now)

	// 100 observations 1..100 spread over 5 seconds.
	for i := 1; i <= 100; i++ {
		r.Observe("lat", float64(i))
		if i%20 == 0 {
			clk.Advance(time.Second)
		}
	}
	hw := r.Snapshot().Histograms["lat"]["10s"]
	if hw.Count != 100 {
		t.Fatalf("10s count = %d, want 100", hw.Count)
	}
	if hw.P50 != 50 || hw.P90 != 90 || hw.P99 != 99 {
		t.Fatalf("10s percentiles = %v/%v/%v, want 50/90/99", hw.P50, hw.P90, hw.P99)
	}
	if hw.Max != 100 {
		t.Fatalf("10s max = %v, want 100", hw.Max)
	}
	if hw.Rate != 10 {
		t.Fatalf("10s rate = %v, want 10", hw.Rate)
	}

	// A late burst of slow observations must dominate the 10s p99 while
	// the 5m window still remembers the old distribution's count.
	clk.Advance(20 * time.Second)
	for i := 0; i < 10; i++ {
		r.Observe("lat", 1000)
	}
	snap := r.Snapshot()
	if got := snap.Histograms["lat"]["10s"].P99; got != 1000 {
		t.Fatalf("10s p99 after burst = %v, want 1000", got)
	}
	if got := snap.Histograms["lat"]["5m"].Count; got != 110 {
		t.Fatalf("5m count = %d, want 110", got)
	}
}

func TestHistogramBucketCapExactCount(t *testing.T) {
	clk := newFakeClock()
	r := New(clk.Now)
	for i := 0; i < 3*BucketCap; i++ {
		r.Observe("hot", 1)
	}
	hw := r.Snapshot().Histograms["hot"]["10s"]
	if hw.Count != 3*BucketCap {
		t.Fatalf("count = %d, want %d (must stay exact past the reservoir cap)", hw.Count, 3*BucketCap)
	}
	if hw.P50 != 1 || hw.P99 != 1 {
		t.Fatalf("degenerate percentiles = %v/%v, want 1/1", hw.P50, hw.P99)
	}
}

func TestSnapshotDeterministicUnderTestClock(t *testing.T) {
	run := func() *Snapshot {
		clk := newFakeClock()
		r := New(clk.Now)
		for i := 0; i < 2000; i++ {
			r.Count("c", float64(i%7))
			r.Observe("h", float64(i%97))
			if i%50 == 0 {
				clk.Advance(time.Second)
			}
		}
		return r.Snapshot()
	}
	a, b := run(), run()
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Fatalf("snapshots differ across identical runs:\n%+v\n%+v", a, b)
	}
}

func TestGaugeKeepsLastValue(t *testing.T) {
	r := New(nil)
	r.Gauge("depth", 4)
	r.Gauge("depth", 7)
	if got := r.Snapshot().Gauges["depth"]; got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Count("x", 1)
	r.Gauge("x", 1)
	r.Observe("x", 1)
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	if r.Defs() != nil {
		t.Fatal("nil registry defs should be nil")
	}
}

// TestCollectorSinkMirrorsIntoWindows exercises the obs tap end to end:
// metric traffic entering a Collector must land in the windowed registry.
func TestCollectorSinkMirrorsIntoWindows(t *testing.T) {
	clk := newFakeClock()
	r := New(clk.Now)
	col := obs.NewCollector()
	col.SetSink(r)

	col.Count("serve.requests", 3)
	col.Gauge("serve.inflight", 2)
	col.Observe("serve.latency_s", 0.25)
	// Merged worker deltas must flow through too.
	col.MergeSnapshot(&obs.Snapshot{Counters: map[string]float64{"netio.retries": 2}})

	snap := r.Snapshot()
	if got := snap.Counters["serve.requests"]["1m"].Sum; got != 3 {
		t.Fatalf("mirrored counter = %v, want 3", got)
	}
	if got := snap.Gauges["serve.inflight"]; got != 2 {
		t.Fatalf("mirrored gauge = %v, want 2", got)
	}
	if got := snap.Histograms["serve.latency_s"]["1m"].Count; got != 1 {
		t.Fatalf("mirrored histogram count = %v, want 1", got)
	}
	if got := snap.Counters["netio.retries"]["1m"].Sum; got != 2 {
		t.Fatalf("merged counter = %v, want 2", got)
	}
}

// TestConcurrentRegistry hammers one registry from many goroutines while
// snapshotting; run under -race (make race covers ./internal/obs/...).
func TestConcurrentRegistry(t *testing.T) {
	r := New(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("s%d", g%3)
			for i := 0; i < 2000; i++ {
				r.Count(name, 1)
				r.Observe(name+".lat", float64(i))
				r.Gauge(name+".g", float64(i))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	var total float64
	for _, per := range r.Snapshot().Counters {
		total += per["5m"].Sum
	}
	if total != 8*2000 {
		t.Fatalf("total counted = %v, want %v", total, 8*2000)
	}
}
