package olap

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"bohr/internal/parallel"
)

// Chunk grains are FIXED — derived from the input, never from the pool
// width or any measured timing — so the per-chunk float reduction tree,
// and hence every folded Sum bit pattern, is identical whether the chunks
// run on one goroutine or sixteen. Only the merge order matters after
// that, and the merge always walks chunks in index order. The width
// auto-tuner (parallel.Tuner) chooses how many WORKERS run those fixed
// chunks, which cannot change any output bit.
const (
	// buildGrain is the rows-per-chunk grain of BuildCube. It is large
	// because every chunk pays a merge pass over its distinct cells: a
	// coarse grain amortizes that against the per-row fold savings while
	// still giving a 120k-row build four-way parallelism.
	buildGrain = 32768
	// dimCubeGrain is the cells-per-chunk grain of pooled DimensionCube.
	dimCubeGrain = 2048
)

// Per-kernel width tuners: each learns its kernel's measured per-chunk
// cost and shrinks the worker count when a job is too small to amortize
// pool dispatch — replacing the old fixed dimCubePooledMin cell-count
// threshold.
var (
	buildTuner   = parallel.NewTuner()
	dimCubeTuner = parallel.NewTuner()
)

// cellTable is an open-addressed (linear probing) index from cell-key
// hash to row position. Both the pooled fold and the columnar Cube use it
// in place of a Go map: one PACKED 8-byte entry per slot — the top 32
// bits of the key hash as a tag, the row index plus one in the low 32 —
// so a 2304-cell table probes a few KB that sit in L1/L2, and nearly
// every probe resolves on a single word compare with key verification
// only on tag match. (A false tag match is just a longer probe; the
// verification keeps it correct.) It starts small regardless of row
// count — cube builds are duplicate-heavy, so the table tracks DISTINCT
// cells and growing a few times is far cheaper than probing a row-sized,
// cache-cold table.
type cellTable struct {
	mask    uint64
	entries []uint64 // tag<<32 | idx+1; 0 = empty
	used    int
	hashes  []uint64 // full hash per row index, for grow and merge
}

func newCellTable() *cellTable {
	// 2048 slots = one 16KB, L1-resident allocation: big enough that the
	// common duplicate-heavy chunk (a few hundred to a thousand distinct
	// cells) never grows, cheap to rebuild once or twice when it does.
	return newCellTableSized(2048)
}

// newCellTableSized creates a table with the given power-of-two slot
// count.
func newCellTableSized(size uint64) *cellTable {
	return &cellTable{
		mask:    size - 1,
		entries: make([]uint64, size),
		hashes:  make([]uint64, 0, size/2),
	}
}

func (t *cellTable) clone() *cellTable {
	return &cellTable{
		mask:    t.mask,
		entries: append([]uint64(nil), t.entries...),
		used:    t.used,
		hashes:  append([]uint64(nil), t.hashes...),
	}
}

func slotFor(h uint64, idx int32) uint64 {
	return h&0xffffffff00000000 | uint64(uint32(idx)+1)
}

// grow doubles the table and reinserts every occupied slot, re-deriving
// each slot's home position from the stored full hash.
func (t *cellTable) grow() {
	size := (t.mask + 1) * 2
	t.mask = size - 1
	t.entries = make([]uint64, size)
	for idx, h := range t.hashes {
		j := h & t.mask
		for t.entries[j] != 0 {
			j = (j + 1) & t.mask
		}
		t.entries[j] = slotFor(h, int32(idx))
	}
}

// add records hash h for the next row index (which it returns) and
// inserts it at slot j, growing at load factor 1/2.
func (t *cellTable) add(j, h uint64) int32 {
	idx := int32(len(t.hashes))
	t.hashes = append(t.hashes, h)
	t.entries[j] = slotFor(h, idx)
	t.used++
	if uint64(t.used)*2 > t.mask {
		t.grow()
	}
	return idx
}

// SWAR byte masks for separator detection a word at a time.
const (
	swarLo  uint64 = 0x0101010101010101
	swarHi  uint64 = 0x8080808080808080
	sepWord uint64 = swarLo * uint64(sep)
)

// sepMask01 returns a word with 0x01 in every byte of w that equals the
// reserved separator, using the exact zero-byte mask from Hacker's
// Delight on w ^ sepWord (per-byte, no cross-byte borrow, so adjacent
// byte values can never produce a false byte — the cheaper Mycroft mask
// can). sep is non-zero, so zero padding bytes in a short tail word are
// never flagged. Callers accumulate these masks bytewise and take one
// horizontal sum at the end instead of a popcount per word.
func sepMask01(w uint64) uint64 {
	x := w ^ sepWord // sep bytes of w become zero bytes of x
	y := (x & ^swarHi) + ^swarHi
	return (^(y | x | ^swarHi)) >> 7
}

// hashKey hashes the joined cell key: FNV-style word-at-a-time over the
// contiguous buffer with the tail read as one zero-padded word, finished
// with a strong avalanche (the table masks with the LOW bits, which raw
// FNV mixes poorly). Internal to the fold, never persisted, so it only
// needs to be fast and well-mixed, not stable across releases. (A
// per-coordinate variant that skips the join measured meaningfully
// slower — the single tight loop over contiguous bytes wins.)
//
// The second return is the number of separator bytes in the key, counted
// in the same word loads the hash consumes: a clean nd-coordinate key
// has exactly nd-1, so the fold detects coordinate validation failures
// without running strings.IndexByte per coordinate and only rescans to
// locate the offending coordinate on the error path.
func hashKey(b []byte) (uint64, int) {
	const (
		offset  uint64 = 14695981039346656037
		offset2 uint64 = 0x9e3779b97f4a7c15
		prime   uint64 = 1099511628211
	)
	// Two independent lanes over alternating words break the serial
	// xor-multiply dependency chain in half; they are combined before the
	// final avalanche.
	h1, h2 := offset, offset2
	var sepAcc uint64
	n := len(b)
	j := 0
	for ; j+16 <= n; j += 16 {
		w1 := uint64(b[j]) | uint64(b[j+1])<<8 | uint64(b[j+2])<<16 | uint64(b[j+3])<<24 |
			uint64(b[j+4])<<32 | uint64(b[j+5])<<40 | uint64(b[j+6])<<48 | uint64(b[j+7])<<56
		w2 := uint64(b[j+8]) | uint64(b[j+9])<<8 | uint64(b[j+10])<<16 | uint64(b[j+11])<<24 |
			uint64(b[j+12])<<32 | uint64(b[j+13])<<40 | uint64(b[j+14])<<48 | uint64(b[j+15])<<56
		sepAcc += sepMask01(w1) + sepMask01(w2)
		h1 = (h1 ^ w1) * prime
		h2 = (h2 ^ w2) * prime
	}
	if j+8 <= n {
		w := uint64(b[j]) | uint64(b[j+1])<<8 | uint64(b[j+2])<<16 | uint64(b[j+3])<<24 |
			uint64(b[j+4])<<32 | uint64(b[j+5])<<40 | uint64(b[j+6])<<48 | uint64(b[j+7])<<56
		sepAcc += sepMask01(w)
		h1 = (h1 ^ w) * prime
		j += 8
	}
	if j < n {
		var w uint64
		for k := 0; j+k < n; k++ {
			w |= uint64(b[j+k]) << (8 * uint(k))
		}
		sepAcc += sepMask01(w)
		h2 = (h2 ^ w) * prime
	}
	var seps int
	if n < 256 {
		// Each byte lane of sepAcc accumulated at most n/8 < 32 hits and
		// the horizontal sum is at most n < 256, so the multiply-shift
		// sum is exact.
		seps = int((sepAcc * swarLo) >> 56)
	} else {
		// Huge keys (never produced by realistic schemas) overflow the
		// bytewise accumulator's horizontal sum; count directly.
		seps = bytes.Count(b, sepByte)
	}
	h := h1 ^ (h2 * prime)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h, seps
}

// sepByte is the separator as a one-byte slice for bytes.Count.
var sepByte = []byte{sep}

// tagMask/idxMask split a packed cellTable entry.
const (
	tagMask uint64 = 0xffffffff00000000
	idxMask uint64 = 0x00000000ffffffff
)

// foldPartial is one chunk's fold output: the partial cells (measures
// only, in first-insertion order — no Coords, no strings), the chunk's
// hash table (which retains every cell's full hash), and the joined keys
// packed back-to-back in one byte arena. The merge reuses hashes and key
// spans directly; the columnar cube's interned coordinates are
// materialized exactly once, from the merged survivors only.
type foldPartial struct {
	cells []Cell // Sum/Count per distinct key; Coords always nil here
	rows  int
	table *cellTable
	arena []byte   // joined keys, concatenated in order
	offs  []uint32 // key k spans arena[offs[k]:offs[k+1]]
}

func (fp *foldPartial) key(k int32) []byte { return fp.arena[fp.offs[k]:fp.offs[k+1]] }

// foldChunk folds rows[lo:hi] into a fresh partial. The per-row cost is
// one joined-key copy onto the arena tail (dropped again if the cell
// already exists), one word-wise hash with the separator validation
// fused into the same loads, and one packed-table probe that usually
// resolves on a single word compare with one bytes.Equal to confirm —
// versus Insert's per-coordinate validation scans and map probe. No
// per-row heap object is allocated. Row errors carry the GLOBAL row
// index so the pooled path reports the same "row %d: …" the sequential
// InsertAll does, at the same first offending row.
func foldChunk(schema *Schema, rows []Row, lo, hi int) (*foldPartial, error) {
	nd := schema.NumDims()
	fp := &foldPartial{
		cells: make([]Cell, 0, 2048),
		table: newCellTable(),
		arena: make([]byte, 0, 128<<10),
		offs:  make([]uint32, 1, 2048),
	}
	for i := lo; i < hi; i++ {
		r := rows[i]
		if len(r.Coords) != nd {
			return nil, fmt.Errorf("row %d: olap: insert: row has %d coords, schema has %d dims",
				i, len(r.Coords), nd)
		}
		// Join the row's key onto the arena tail by hand: one capacity
		// check and one copy per coordinate, no per-append bookkeeping.
		start := len(fp.arena)
		need := nd - 1
		for _, v := range r.Coords {
			need += len(v)
		}
		if cap(fp.arena)-start < need {
			grown := make([]byte, start, 2*(start+need))
			copy(grown, fp.arena)
			fp.arena = grown
		}
		// buf addresses the spare capacity past len; the arena length is
		// only committed when the key turns out to be a NEW cell, so the
		// duplicate path (the common one) never touches the length at all.
		buf := fp.arena[start : start+need]
		pos := 0
		for ci, v := range r.Coords {
			if ci > 0 {
				buf[pos] = sep
				pos++
			}
			pos += copy(buf[pos:], v)
		}
		h, seps := hashKey(buf)
		if seps != nd-1 {
			// A joined nd-coordinate key always carries exactly nd-1
			// separators, so a mismatch means some coordinate contains
			// one; rescan slowly to name it in InsertAll's exact error.
			for ci, v := range r.Coords {
				if strings.IndexByte(v, sep) >= 0 {
					return nil, fmt.Errorf("row %d: olap: insert: coord %d contains reserved separator", i, ci)
				}
			}
			return nil, fmt.Errorf("row %d: olap: insert: separator count mismatch", i)
		}
		t := fp.table
		tag := h & tagMask
		var idx int32
		// Local copies let the compiler keep the probe loop free of field
		// reloads, and deriving the mask from len(entries) proves the
		// index in bounds; add() may swap t.entries on grow, but only
		// after the loop has already broken.
		entries := t.entries
		mask := uint64(len(entries) - 1)
		j := h & mask
		for {
			e := entries[j&mask]
			if e == 0 {
				fp.cells = append(fp.cells, Cell{})
				fp.arena = fp.arena[:start+need] // new cell: commit the key copy
				fp.offs = append(fp.offs, uint32(len(fp.arena)))
				idx = t.add(j&mask, h)
				break
			}
			if e&tagMask == tag {
				idx = int32(e&idxMask) - 1
				if bytes.Equal(fp.key(idx), buf) {
					break
				}
			}
			j++
		}
		cell := &fp.cells[idx]
		cell.Sum += r.Measure
		cell.Count++
	}
	fp.rows = hi - lo
	return fp, nil
}

// mergeInto folds p's cells into base, reusing the hashes and key spans
// both folds already computed: every merge step is a packed-table probe
// of base's table, and no joined key is ever rebuilt or converted to a
// string. Cell order is first-occurrence in chunk order, matching the
// sequential reference.
func (base *foldPartial) mergeInto(p *foldPartial) {
	t := base.table
	for k := range p.cells {
		cell := &p.cells[k]
		h := p.table.hashes[k]
		key := p.key(int32(k))
		tag := h & tagMask
		entries := t.entries // reloaded each cell: add() may grow the table
		mask := uint64(len(entries) - 1)
		j := h & mask
		for {
			e := entries[j&mask]
			if e == 0 {
				base.cells = append(base.cells, *cell)
				base.arena = append(base.arena, key...)
				base.offs = append(base.offs, uint32(len(base.arena)))
				t.add(j&mask, h)
				break
			}
			if e&tagMask == tag {
				idx := int32(e&idxMask) - 1
				if bytes.Equal(base.key(idx), key) {
					dst := &base.cells[idx]
					dst.Sum += cell.Sum
					dst.Count += cell.Count
					break
				}
			}
			j++
		}
	}
	base.rows += p.rows
}

// materialize turns a merged fold into the columnar cube: each surviving
// cell's joined key is walked once, interning every coordinate span into
// the cube's per-dimension dictionaries, and the cell lands at the next
// row with its measures copied over. Key strings are materialized only
// for first-seen coordinate VALUES, not per cell.
func (fp *foldPartial) materialize(schema *Schema) *Cube {
	out := NewCube(schema)
	n := len(fp.cells)
	// Presize the row index so the build never pays a mid-materialize
	// rehash: next power of two above twice the (known) cell count.
	if n > 0 {
		size := uint64(256)
		for size < uint64(n)*2 {
			size *= 2
		}
		out.idx = newCellTableSized(size)
		for d := range out.cols {
			out.cols[d] = make([]uint32, 0, n)
		}
		out.sums = make([]float64, 0, n)
		out.counts = make([]int, 0, n)
	}
	nd := schema.NumDims()
	ids := make([]uint32, nd)
	for i := 0; i < n; i++ {
		kb := fp.key(int32(i))
		start, d := 0, 0
		for p := 0; p <= len(kb); p++ {
			if p == len(kb) || kb[p] == sep {
				ids[d] = out.dicts[d].internBytes(kb[start:p])
				d++
				start = p + 1
			}
		}
		row := out.upsertRow(ids, hashIDs(ids)) // keys are distinct: always appends
		out.sums[row] = fp.cells[i].Sum
		out.counts[row] = fp.cells[i].Count
	}
	out.rows = fp.rows
	out.gen = uint64(fp.rows)
	return out
}

// BuildCube constructs a cube over schema from rows. Width <= 1 (after
// resolving 0 to the process default), or any input at or under one
// grain, folds a single chunk — the same per-cell accumulation order as
// the sequential Insert loop, so the width-1 reference semantics the
// determinism gate pins are unchanged. Wider builds fold fixed-grain row
// chunks on the worker pool and merge them in chunk order: Counts and
// cell order match the reference exactly, and because the chunk grain is
// width-independent the float Sums are bit-identical at every width > 1
// too. (Sums can differ from the width-1 fold in the last ulps — float
// addition is not associative — which is why nothing serialized by
// core.Report ever reads a cube Sum.) The tuner only chooses how many
// workers run the fixed chunks, so its timing-driven decisions cannot
// surface in any output byte.
func BuildCube(schema *Schema, rows []Row, width int) (*Cube, error) {
	width = parallel.Resolve(width)
	if width <= 1 || len(rows) <= buildGrain {
		fp, err := foldChunk(schema, rows, 0, len(rows))
		if err != nil {
			return nil, err
		}
		return fp.materialize(schema), nil
	}
	chunks := parallel.Chunks(len(rows), buildGrain)
	workers := buildTuner.Workers(len(chunks), width)
	t0 := time.Now()
	partials, err := parallel.MapOrdered(workers, len(chunks), func(ci int) (*foldPartial, error) {
		lo, hi := chunks[ci][0], chunks[ci][1]
		return foldChunk(schema, rows, lo, hi)
	})
	if err != nil {
		return nil, err
	}
	buildTuner.Observe(len(chunks), workers, time.Since(t0))
	// Merge later chunks into the first, reusing chunk 0's hash table and
	// the hashes and key spans every fold already computed; then
	// materialize the merged survivors into columnar form.
	base := partials[0]
	for _, p := range partials[1:] {
		base.mergeInto(p)
	}
	return base.materialize(schema), nil
}

// dimensionCubeFold folds c's cells into out through the precomputed
// remap tables — pure integer column work. Width 1 is the sequential
// reference: one pass in row order. Width > 1 folds fixed-grain cell
// chunks into partial cubes on the worker pool and merges them in chunk
// order; the chunk grain never depends on the width or the tuner, so the
// result is bit-identical at every width > 1. The tuner picks only the
// worker count for those fixed chunks (1 worker runs them inline), so
// a timing-driven downshift cannot change any output bit.
func (c *Cube) dimensionCubeFold(out *Cube, remap [][]uint32, srcIdx []int) {
	n := len(c.sums)
	if n == 0 {
		return
	}
	nd := len(remap)
	width := parallel.DefaultWidth()
	if width <= 1 {
		ids := make([]uint32, nd)
		for row := 0; row < n; row++ {
			for k, si := range srcIdx {
				ids[k] = remap[k][c.cols[si][row]]
			}
			r := out.upsertRow(ids, hashIDs(ids))
			out.sums[r] += c.sums[row]
			out.counts[r] += c.counts[row]
			out.gen++
		}
		return
	}
	chunks := parallel.Chunks(n, dimCubeGrain)
	workers := dimCubeTuner.Workers(len(chunks), width)
	t0 := time.Now()
	// Partials share out's dictionaries — the remap tables pre-interned
	// every reachable value, so the fold only READS them, which is safe
	// across goroutines.
	partials, _ := parallel.MapOrdered(workers, len(chunks), func(ci int) (*Cube, error) {
		lo, hi := chunks[ci][0], chunks[ci][1]
		p := &Cube{
			schema: out.schema,
			dicts:  out.dicts,
			cols:   make([][]uint32, nd),
			idx:    newCellTableSized(256),
		}
		ids := make([]uint32, nd)
		for row := lo; row < hi; row++ {
			for k, si := range srcIdx {
				ids[k] = remap[k][c.cols[si][row]]
			}
			r := p.upsertRow(ids, hashIDs(ids))
			p.sums[r] += c.sums[row]
			p.counts[r] += c.counts[row]
		}
		return p, nil
	})
	dimCubeTuner.Observe(len(chunks), workers, time.Since(t0))
	base := partials[0]
	for _, p := range partials[1:] {
		base.absorbIDs(p)
	}
	out.cols = base.cols
	out.sums = base.sums
	out.counts = base.counts
	out.idx = base.idx
	out.keyBytes = base.keyBytes
	// Generation accounting matches the pre-columnar pooled fold: the
	// first partial contributes nothing, each later one its distinct-cell
	// count (absorbIDs). Derived-cube generations only need to be
	// deterministic — no memo keys off them — and chunk boundaries are
	// width-independent, so this is.
	out.gen += base.gen
}

// absorbIDs folds every cell of p — which must share c's dictionaries —
// into c, preserving p's row order for first occurrences. Called
// chunk-by-chunk in index order by dimensionCubeFold, so the merge —
// like the chunks — is deterministic.
func (c *Cube) absorbIDs(p *Cube) {
	nd := len(c.cols)
	ids := make([]uint32, nd)
	for row := 0; row < len(p.sums); row++ {
		for d := 0; d < nd; d++ {
			ids[d] = p.cols[d][row]
		}
		r := c.upsertRow(ids, p.idx.hashes[row])
		c.sums[r] += p.sums[row]
		c.counts[r] += p.counts[row]
	}
	c.gen += uint64(len(p.sums))
}
