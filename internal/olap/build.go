package olap

import (
	"bytes"
	"fmt"
	"strings"

	"bohr/internal/parallel"
)

// Chunk grains are FIXED — derived from the input, never from the pool
// width — so the per-chunk float reduction tree, and hence every folded
// Sum bit pattern, is identical whether the chunks run on one goroutine
// or sixteen. Only the merge order matters after that, and the merge
// always walks chunks in index order.
const (
	// buildGrain is the rows-per-chunk grain of BuildCube. It is large
	// because every chunk pays a merge pass over its distinct cells: a
	// coarse grain amortizes that against the per-row fold savings while
	// still giving a 120k-row build four-way parallelism.
	buildGrain = 32768
	// dimCubeGrain is the cells-per-chunk grain of pooled DimensionCube.
	dimCubeGrain = 2048
	// dimCubePooledMin is the cell count below which DimensionCube stays
	// on the plain sequential path (chunk + merge overhead would dominate).
	dimCubePooledMin = 4096
)

// cellTable is an open-addressed (linear probing) index from cell-key
// hash to position in a cube's order slice. The pooled fold uses it in
// place of a Go string map: one PACKED 8-byte entry per slot — the top
// 32 bits of the key hash as a tag, the order index plus one in the low
// 32 — so a 2304-cell chunk probes a 64KB table that sits in L2, and
// nearly every probe resolves on a single word compare with key-byte
// verification only on tag match. (A false tag match is just a longer
// probe; the verification keeps it correct.) It starts small regardless
// of row count — cube builds are duplicate-heavy, so the table tracks
// DISTINCT cells and growing a few times is far cheaper than probing a
// row-sized, cache-cold table. Purely chunk-local and discarded after
// the build.
type cellTable struct {
	mask    uint64
	entries []uint64 // tag<<32 | idx+1; 0 = empty
	used    int
	hashes  []uint64 // full hash per order index, for grow and merge
}

func newCellTable() *cellTable {
	// 2048 slots = one 16KB, L1-resident allocation: big enough that the
	// common duplicate-heavy chunk (a few hundred to a thousand distinct
	// cells) never grows, cheap to rebuild once or twice when it does.
	const size = 2048
	return &cellTable{
		mask:    size - 1,
		entries: make([]uint64, size),
		hashes:  make([]uint64, 0, size/2),
	}
}

func slotFor(h uint64, idx int32) uint64 {
	return h&0xffffffff00000000 | uint64(uint32(idx)+1)
}

// grow doubles the table and reinserts every occupied slot, re-deriving
// each slot's home position from the stored full hash.
func (t *cellTable) grow() {
	size := (t.mask + 1) * 2
	t.mask = size - 1
	t.entries = make([]uint64, size)
	for idx, h := range t.hashes {
		j := h & t.mask
		for t.entries[j] != 0 {
			j = (j + 1) & t.mask
		}
		t.entries[j] = slotFor(h, int32(idx))
	}
}

// add records hash h for the next order index (which it returns) and
// inserts it at slot j, growing at load factor 1/2.
func (t *cellTable) add(j, h uint64) int32 {
	idx := int32(len(t.hashes))
	t.hashes = append(t.hashes, h)
	t.entries[j] = slotFor(h, idx)
	t.used++
	if uint64(t.used)*2 > t.mask {
		t.grow()
	}
	return idx
}

// SWAR byte masks for separator detection a word at a time.
const (
	swarLo  uint64 = 0x0101010101010101
	swarHi  uint64 = 0x8080808080808080
	sepWord uint64 = swarLo * uint64(sep)
)

// sepMask01 returns a word with 0x01 in every byte of w that equals the
// reserved separator, using the exact zero-byte mask from Hacker's
// Delight on w ^ sepWord (per-byte, no cross-byte borrow, so adjacent
// byte values can never produce a false byte — the cheaper Mycroft mask
// can). sep is non-zero, so zero padding bytes in a short tail word are
// never flagged. Callers accumulate these masks bytewise and take one
// horizontal sum at the end instead of a popcount per word.
func sepMask01(w uint64) uint64 {
	x := w ^ sepWord // sep bytes of w become zero bytes of x
	y := (x & ^swarHi) + ^swarHi
	return (^(y | x | ^swarHi)) >> 7
}

// hashKey hashes the joined cell key: FNV-style word-at-a-time over the
// contiguous buffer with the tail read as one zero-padded word, finished
// with a strong avalanche (the table masks with the LOW bits, which raw
// FNV mixes poorly). Internal to the fold, never persisted, so it only
// needs to be fast and well-mixed, not stable across releases. (A
// per-coordinate variant that skips the join measured meaningfully
// slower — the single tight loop over contiguous bytes wins.)
//
// The second return is the number of separator bytes in the key, counted
// in the same word loads the hash consumes: a clean nd-coordinate key
// has exactly nd-1, so the fold detects coordinate validation failures
// without running strings.IndexByte per coordinate and only rescans to
// locate the offending coordinate on the error path.
func hashKey(b []byte) (uint64, int) {
	const (
		offset  uint64 = 14695981039346656037
		offset2 uint64 = 0x9e3779b97f4a7c15
		prime   uint64 = 1099511628211
	)
	// Two independent lanes over alternating words break the serial
	// xor-multiply dependency chain in half; they are combined before the
	// final avalanche.
	h1, h2 := offset, offset2
	var sepAcc uint64
	n := len(b)
	j := 0
	for ; j+16 <= n; j += 16 {
		w1 := uint64(b[j]) | uint64(b[j+1])<<8 | uint64(b[j+2])<<16 | uint64(b[j+3])<<24 |
			uint64(b[j+4])<<32 | uint64(b[j+5])<<40 | uint64(b[j+6])<<48 | uint64(b[j+7])<<56
		w2 := uint64(b[j+8]) | uint64(b[j+9])<<8 | uint64(b[j+10])<<16 | uint64(b[j+11])<<24 |
			uint64(b[j+12])<<32 | uint64(b[j+13])<<40 | uint64(b[j+14])<<48 | uint64(b[j+15])<<56
		sepAcc += sepMask01(w1) + sepMask01(w2)
		h1 = (h1 ^ w1) * prime
		h2 = (h2 ^ w2) * prime
	}
	if j+8 <= n {
		w := uint64(b[j]) | uint64(b[j+1])<<8 | uint64(b[j+2])<<16 | uint64(b[j+3])<<24 |
			uint64(b[j+4])<<32 | uint64(b[j+5])<<40 | uint64(b[j+6])<<48 | uint64(b[j+7])<<56
		sepAcc += sepMask01(w)
		h1 = (h1 ^ w) * prime
		j += 8
	}
	if j < n {
		var w uint64
		for k := 0; j+k < n; k++ {
			w |= uint64(b[j+k]) << (8 * uint(k))
		}
		sepAcc += sepMask01(w)
		h2 = (h2 ^ w) * prime
	}
	var seps int
	if n < 256 {
		// Each byte lane of sepAcc accumulated at most n/8 < 32 hits and
		// the horizontal sum is at most n < 256, so the multiply-shift
		// sum is exact.
		seps = int((sepAcc * swarLo) >> 56)
	} else {
		// Huge keys (never produced by realistic schemas) overflow the
		// bytewise accumulator's horizontal sum; count directly.
		seps = bytes.Count(b, sepByte)
	}
	h := h1 ^ (h2 * prime)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h, seps
}

// sepByte is the separator as a one-byte slice for bytes.Count.
var sepByte = []byte{sep}

// splitKey slices the joined key back into per-dimension coordinates
// that SHARE the key's backing array — one allocation for the header
// slice instead of one per coordinate string.
func splitKey(key string, nd int) []string {
	coords := make([]string, 0, nd)
	start := 0
	for i := 0; i < len(key); i++ {
		if key[i] == sep {
			coords = append(coords, key[start:i])
			start = i + 1
		}
	}
	return append(coords, key[start:])
}

// appendCellKey appends coords joined by sep to buf, returning the grown
// buffer and the index of the first coordinate containing the reserved
// separator (-1 when the key is clean). Single pass, no allocation.
func appendCellKey(buf []byte, coords []string) ([]byte, int) {
	for i, v := range coords {
		if i > 0 {
			buf = append(buf, sep)
		}
		if strings.IndexByte(v, sep) >= 0 {
			return buf, i
		}
		buf = append(buf, v...)
	}
	return buf, -1
}

// cellArenaBlock is the cells-per-allocation granule of foldChunk's
// cell arena.
const cellArenaBlock = 512

// tagMask/idxMask split a packed cellTable entry.
const (
	tagMask uint64 = 0xffffffff00000000
	idxMask uint64 = 0x00000000ffffffff
)

// foldPartial is one chunk's fold output: the partial cube (cells only
// in order — its string map stays empty and its cells carry no Coords
// yet), plus the chunk's hash table (which retains every cell's full
// hash) and the joined keys packed back-to-back in one byte arena. The
// merge reuses hashes and key spans directly; key STRINGS — and the
// cells' Coords substrings of them — are materialized exactly once, for
// the merged survivors only.
type foldPartial struct {
	cube  *Cube
	table *cellTable
	arena []byte   // joined keys, concatenated in order
	offs  []uint32 // key k spans arena[offs[k]:offs[k+1]]
}

func (fp *foldPartial) key(k int32) []byte { return fp.arena[fp.offs[k]:fp.offs[k+1]] }

// foldChunk folds rows[lo:hi] into a fresh partial cube. The per-row
// cost is one joined-key copy onto the arena tail (dropped again if the
// cell already exists), one word-wise hash with the separator validation
// fused into the same loads, and one packed-table probe that usually
// resolves on a single word compare with one bytes.Equal to confirm —
// versus Insert's strings.Join allocation, per-coordinate validation
// scans, and Go-map probe. No per-row or per-cell heap object is
// allocated. Row errors carry the GLOBAL row index so the pooled path
// reports the same "row %d: …" the sequential InsertAll does, at the
// same first offending row.
func foldChunk(schema *Schema, rows []Row, lo, hi int) (*foldPartial, error) {
	nd := schema.NumDims()
	fp := &foldPartial{
		cube:  &Cube{schema: schema, cells: map[string]*Cell{}},
		table: newCellTable(),
		arena: make([]byte, 0, 128<<10),
		offs:  make([]uint32, 1, 2048),
	}
	// Cells are block-allocated: one 512-cell slab replaces 512 separate
	// allocations, and the hot Sum/Count updates land in a handful of
	// contiguous slabs instead of scattered heap objects. Appends below
	// never exceed cap, so &cellArena[i] pointers stay stable.
	cellArena := make([]Cell, 0, cellArenaBlock)
	for i := lo; i < hi; i++ {
		r := rows[i]
		if len(r.Coords) != nd {
			return nil, fmt.Errorf("row %d: olap: insert: row has %d coords, schema has %d dims",
				i, len(r.Coords), nd)
		}
		// Join the row's key onto the arena tail by hand: one capacity
		// check and one copy per coordinate, no per-append bookkeeping.
		start := len(fp.arena)
		need := nd - 1
		for _, v := range r.Coords {
			need += len(v)
		}
		if cap(fp.arena)-start < need {
			grown := make([]byte, start, 2*(start+need))
			copy(grown, fp.arena)
			fp.arena = grown
		}
		// buf addresses the spare capacity past len; the arena length is
		// only committed when the key turns out to be a NEW cell, so the
		// duplicate path (the common one) never touches the length at all.
		buf := fp.arena[start : start+need]
		pos := 0
		for ci, v := range r.Coords {
			if ci > 0 {
				buf[pos] = sep
				pos++
			}
			pos += copy(buf[pos:], v)
		}
		h, seps := hashKey(buf)
		if seps != nd-1 {
			// A joined nd-coordinate key always carries exactly nd-1
			// separators, so a mismatch means some coordinate contains
			// one; rescan slowly to name it in InsertAll's exact error.
			for ci, v := range r.Coords {
				if strings.IndexByte(v, sep) >= 0 {
					return nil, fmt.Errorf("row %d: olap: insert: coord %d contains reserved separator", i, ci)
				}
			}
			return nil, fmt.Errorf("row %d: olap: insert: separator count mismatch", i)
		}
		t := fp.table
		tag := h & tagMask
		var cell *Cell
		// Local copies let the compiler keep the probe loop free of field
		// reloads, and deriving the mask from len(entries) proves the
		// index in bounds; add() may swap t.entries on grow, but only
		// after the loop has already broken.
		entries := t.entries
		mask := uint64(len(entries) - 1)
		j := h & mask
		for {
			e := entries[j&mask]
			if e == 0 {
				if len(cellArena) == cap(cellArena) {
					cellArena = make([]Cell, 0, cellArenaBlock)
				}
				cellArena = append(cellArena, Cell{})
				cell = &cellArena[len(cellArena)-1]
				fp.cube.order = append(fp.cube.order, cell)
				fp.arena = fp.arena[:start+need] // new cell: commit the key copy
				fp.offs = append(fp.offs, uint32(len(fp.arena)))
				t.add(j&mask, h)
				break
			}
			if e&tagMask == tag {
				idx := int32(e&idxMask) - 1
				if bytes.Equal(fp.key(idx), buf) {
					cell = fp.cube.order[idx]
					break
				}
			}
			j++
		}
		cell.Sum += r.Measure
		cell.Count++
	}
	// Rows and generation are bumped once per chunk, not per row: a fold
	// that errors leaves them unset, which is fine — the callers discard
	// the partial on any error.
	fp.cube.rows += hi - lo
	fp.cube.gen += uint64(hi - lo)
	return fp, nil
}

// mergeInto folds p's cells into base, reusing the hashes and key spans
// both folds already computed: every merge step is a packed-table probe
// of base's table, and no joined key is ever rebuilt or converted to a
// string. Cell order is first-occurrence in chunk order, matching the
// sequential reference.
func (base *foldPartial) mergeInto(p *foldPartial) {
	t := base.table
	for k, cell := range p.cube.order {
		h := p.table.hashes[k]
		key := p.key(int32(k))
		tag := h & tagMask
		entries := t.entries // reloaded each cell: add() may grow the table
		mask := uint64(len(entries) - 1)
		j := h & mask
		for {
			e := entries[j&mask]
			if e == 0 {
				base.cube.order = append(base.cube.order, cell)
				base.arena = append(base.arena, key...)
				base.offs = append(base.offs, uint32(len(base.arena)))
				t.add(j&mask, h)
				break
			}
			if e&tagMask == tag {
				idx := int32(e&idxMask) - 1
				if bytes.Equal(base.key(idx), key) {
					dst := base.cube.order[idx]
					dst.Sum += cell.Sum
					dst.Count += cell.Count
					break
				}
			}
			j++
		}
	}
	base.cube.rows += p.cube.rows
	base.cube.gen += p.cube.gen
}

// absorb folds every cell of p into c, preserving p's cell order for
// first occurrences. Called chunk-by-chunk in index order by the pooled
// builders, so the merge — like the chunks — is deterministic.
func (c *Cube) absorb(p *Cube) {
	var buf []byte
	for _, cell := range p.order {
		buf, _ = appendCellKey(buf[:0], cell.Coords)
		dst, ok := c.cells[string(buf)]
		if !ok {
			c.cells[string(buf)] = cell
			c.order = append(c.order, cell)
			continue
		}
		dst.Sum += cell.Sum
		dst.Count += cell.Count
	}
	c.rows += p.rows
	c.gen += uint64(len(p.order))
}

// BuildCube constructs a cube over schema from rows. Width <= 1 (after
// resolving 0 to the process default) runs the plain reference path —
// NewCube + InsertAll, byte-for-byte the sequential semantics the
// determinism gate pins. Width > 1 folds fixed-grain row chunks into
// per-chunk partial cubes on the worker pool and merges them in chunk
// order: Counts and cell order match the reference exactly, and because
// the chunk grain is width-independent the float Sums are bit-identical
// at every width > 1 too. (Sums can differ from the width-1 fold in the
// last ulps — float addition is not associative — which is why nothing
// serialized by core.Report ever reads a cube Sum.)
func BuildCube(schema *Schema, rows []Row, width int) (*Cube, error) {
	width = parallel.Resolve(width)
	if width <= 1 || len(rows) <= buildGrain {
		out := NewCube(schema)
		if err := out.InsertAll(rows); err != nil {
			return nil, err
		}
		return out, nil
	}
	chunks := parallel.Chunks(len(rows), buildGrain)
	partials, err := parallel.MapOrdered(width, len(chunks), func(ci int) (*foldPartial, error) {
		lo, hi := chunks[ci][0], chunks[ci][1]
		return foldChunk(schema, rows, lo, hi)
	})
	if err != nil {
		return nil, err
	}
	// Merge later chunks into the first, reusing chunk 0's hash table and
	// the hashes and key spans every fold already computed; then
	// materialize, for the merged survivors only, the key strings (with
	// each cell's Coords as substrings of its key — one backing array per
	// cell) and the string cell index the finished cube's Lookup needs.
	base := partials[0]
	for _, p := range partials[1:] {
		base.mergeInto(p)
	}
	out := base.cube
	nd := schema.NumDims()
	for i, cell := range out.order {
		k := string(base.key(int32(i)))
		cell.Coords = splitKey(k, nd)
		out.cells[k] = cell
	}
	return out, nil
}

// dimensionCubePooled is DimensionCube's pooled fast path: project and
// fold fixed-grain chunks of the cell order into partial cubes, merge in
// chunk order. Returns nil when the cube is small or the pool width is 1,
// sending the caller down the sequential path.
func (c *Cube) dimensionCubePooled(ns *Schema, srcIdx []int) *Cube {
	width := parallel.DefaultWidth()
	if width <= 1 || len(c.order) < dimCubePooledMin {
		return nil
	}
	chunks := parallel.Chunks(len(c.order), dimCubeGrain)
	partials, err := parallel.MapOrdered(width, len(chunks), func(ci int) (*Cube, error) {
		lo, hi := chunks[ci][0], chunks[ci][1]
		p := &Cube{schema: ns, cells: make(map[string]*Cell, hi-lo)}
		var buf []byte
		coords := make([]string, len(srcIdx))
		for _, cell := range c.order[lo:hi] {
			for i, si := range srcIdx {
				coords[i] = cell.Coords[si]
			}
			buf, _ = appendCellKey(buf[:0], coords)
			dst, ok := p.cells[string(buf)]
			if !ok {
				dst = &Cell{Coords: append([]string(nil), coords...)}
				p.cells[string(buf)] = dst
				p.order = append(p.order, dst)
			}
			dst.Sum += cell.Sum
			dst.Count += cell.Count
		}
		return p, nil
	})
	if err != nil { // projection cannot fail; defensive
		return nil
	}
	out := partials[0]
	for _, p := range partials[1:] {
		out.absorb(p)
	}
	out.rows = c.rows
	return out
}
