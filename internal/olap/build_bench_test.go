package olap

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchRows mirrors the duplicate-heavy shape cube builds see in
// pre-processing: realistic multi-token coordinate strings, heavy cell
// collision (many rows aggregate into few cells).
func benchRows(n int) []Row {
	rng := rand.New(rand.NewSource(42))
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Coords: []string{
				fmt.Sprintf("region-us-east-%d", rng.Intn(5)),
				fmt.Sprintf("product-electronics-sku-%04d", rng.Intn(12)),
				fmt.Sprintf("day-2018-11-%02d", rng.Intn(8)),
			},
			Measure: rng.Float64() * 100,
		}
	}
	return rows
}

func BenchmarkInsertAll120k(b *testing.B) {
	schema := MustSchema("region", "product", "day")
	rows := benchRows(120_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCube(schema)
		if err := c.InsertAll(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFoldRows120kOneChunk(b *testing.B) {
	schema := MustSchema("region", "product", "day")
	rows := benchRows(120_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := foldChunk(schema, rows, 0, len(rows)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBuild(width int) func(*testing.B) {
	return func(b *testing.B) {
		schema := MustSchema("region", "product", "day")
		rows := benchRows(120_000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := BuildCube(schema, rows, width); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBuildCube120kWidth1(b *testing.B) { benchBuild(1)(b) }
func BenchmarkBuildCube120kWidth4(b *testing.B) { benchBuild(4)(b) }

// TestLookupZeroAlloc pins the columnar point-lookup hot path: dictionary
// id() hits, a stack coordinate buffer, and an open-addressed probe —
// nothing on the heap. Probe scoring calls Lookup per probed cell, so a
// single allocation here multiplies across every similarity check.
func TestLookupZeroAlloc(t *testing.T) {
	schema := MustSchema("region", "product", "day")
	rows := benchRows(10_000)
	c, err := BuildCube(schema, rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	hit := rows[0].Coords
	miss := []string{"region-none", "product-none", "day-none"}
	if allocs := testing.AllocsPerRun(100, func() {
		if _, ok := c.Lookup(hit[0], hit[1], hit[2]); !ok {
			t.Fatal("lookup of inserted coords failed")
		}
		if _, ok := c.Lookup(miss[0], miss[1], miss[2]); ok {
			t.Fatal("lookup of unseen coords succeeded")
		}
	}); allocs != 0 {
		t.Fatalf("Lookup allocates %.1f times per op, want 0", allocs)
	}
}

func BenchmarkLookup(b *testing.B) {
	schema := MustSchema("region", "product", "day")
	rows := benchRows(120_000)
	c, err := BuildCube(schema, rows, 1)
	if err != nil {
		b.Fatal(err)
	}
	coords := rows[len(rows)/2].Coords
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Lookup(coords[0], coords[1], coords[2]); !ok {
			b.Fatal("lookup failed")
		}
	}
}
