package olap

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchRows mirrors the duplicate-heavy shape cube builds see in
// pre-processing: realistic multi-token coordinate strings, heavy cell
// collision (many rows aggregate into few cells).
func benchRows(n int) []Row {
	rng := rand.New(rand.NewSource(42))
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Coords: []string{
				fmt.Sprintf("region-us-east-%d", rng.Intn(5)),
				fmt.Sprintf("product-electronics-sku-%04d", rng.Intn(12)),
				fmt.Sprintf("day-2018-11-%02d", rng.Intn(8)),
			},
			Measure: rng.Float64() * 100,
		}
	}
	return rows
}

func BenchmarkInsertAll120k(b *testing.B) {
	schema := MustSchema("region", "product", "day")
	rows := benchRows(120_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCube(schema)
		if err := c.InsertAll(rows); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFoldRows120kOneChunk(b *testing.B) {
	schema := MustSchema("region", "product", "day")
	rows := benchRows(120_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := foldChunk(schema, rows, 0, len(rows)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchBuild(width int) func(*testing.B) {
	return func(b *testing.B) {
		schema := MustSchema("region", "product", "day")
		rows := benchRows(120_000)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := BuildCube(schema, rows, width); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBuildCube120kWidth1(b *testing.B) { benchBuild(1)(b) }
func BenchmarkBuildCube120kWidth4(b *testing.B) { benchBuild(4)(b) }
