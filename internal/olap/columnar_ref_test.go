package olap

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"bohr/internal/parallel"
)

// refCube is an independent map-backed reference implementation of the
// cube's aggregation semantics — the representation the columnar slabs
// replaced. It keys cells by joined coordinates, tracks insertion order
// explicitly, and folds derived views in that order, so any divergence in
// the columnar cube's interning, hashing, or remap logic shows up as a
// cell-for-cell mismatch.
type refCube struct {
	dims  []string
	cells map[string]*Cell
	order []string
}

func newRefCube(dims []string) *refCube {
	return &refCube{dims: dims, cells: map[string]*Cell{}}
}

func (r *refCube) add(coords []string, sum float64, count int) {
	k := key(coords)
	if c, ok := r.cells[k]; ok {
		c.Sum += sum
		c.Count += count
		return
	}
	r.cells[k] = &Cell{Coords: append([]string(nil), coords...), Sum: sum, Count: count}
	r.order = append(r.order, k)
}

// inOrder returns the cells in insertion order (the ExportCells contract).
func (r *refCube) inOrder() []Cell {
	out := make([]Cell, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, *r.cells[k])
	}
	return out
}

// sorted returns the cells in the Cells() order: count desc, key asc.
func (r *refCube) sorted() []Cell {
	keys := append([]string(nil), r.order...)
	sort.Slice(keys, func(i, j int) bool {
		a, b := r.cells[keys[i]], r.cells[keys[j]]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return keys[i] < keys[j]
	})
	out := make([]Cell, 0, len(keys))
	for _, k := range keys {
		out = append(out, *r.cells[k])
	}
	return out
}

func (r *refCube) dimIndex(dim string) int {
	for i, d := range r.dims {
		if d == dim {
			return i
		}
	}
	return -1
}

func (r *refCube) slice(dim, value string) *refCube {
	di := r.dimIndex(dim)
	out := newRefCube(without(r.dims, di))
	for _, c := range r.inOrder() {
		if c.Coords[di] != value {
			continue
		}
		out.add(without(c.Coords, di), c.Sum, c.Count)
	}
	return out
}

func (r *refCube) dice(filters map[string][]string) *refCube {
	out := newRefCube(r.dims)
	for _, c := range r.inOrder() {
		keep := true
		for dim, vals := range filters {
			di := r.dimIndex(dim)
			ok := false
			for _, v := range vals {
				if c.Coords[di] == v {
					ok = true
					break
				}
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out.add(c.Coords, c.Sum, c.Count)
		}
	}
	return out
}

func (r *refCube) rollUp(dim string) *refCube {
	di := r.dimIndex(dim)
	out := newRefCube(without(r.dims, di))
	for _, c := range r.inOrder() {
		out.add(without(c.Coords, di), c.Sum, c.Count)
	}
	return out
}

func (r *refCube) pivot(dims []string) *refCube {
	out := newRefCube(dims)
	idx := make([]int, len(dims))
	for k, d := range dims {
		idx[k] = r.dimIndex(d)
	}
	coords := make([]string, len(dims))
	for _, c := range r.inOrder() {
		for k, di := range idx {
			coords[k] = c.Coords[di]
		}
		out.add(coords, c.Sum, c.Count)
	}
	return out
}

func without[T any](s []T, i int) []T {
	out := make([]T, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

// matchCells compares a cube against the reference cell-for-cell: same
// insertion order (ExportCells), same sorted order including tie-breaks
// (Cells / TopCells), and every reference cell reachable through Lookup.
// exact demands bit-equal sums (width-1 paths); otherwise a relative
// tolerance absorbs the chunked fold's reassociated additions.
func matchCells(t *testing.T, label string, c *Cube, ref *refCube, exact bool) {
	t.Helper()
	sumEq := func(a, b float64) bool {
		if exact {
			return a == b
		}
		return approxEq(a, b)
	}
	check := func(kind string, got, want []Cell) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s %s: %d cells, want %d", label, kind, len(got), len(want))
		}
		for i := range want {
			g, w := got[i], want[i]
			if fmt.Sprint(g.Coords) != fmt.Sprint(w.Coords) || g.Count != w.Count || !sumEq(g.Sum, w.Sum) {
				t.Fatalf("%s %s cell %d: got %v sum=%v count=%d, want %v sum=%v count=%d",
					label, kind, i, g.Coords, g.Sum, g.Count, w.Coords, w.Sum, w.Count)
			}
		}
	}
	check("export", c.ExportCells(), ref.inOrder())
	wantSorted := ref.sorted()
	check("cells", c.Cells(), wantSorted)
	k := len(wantSorted)/2 + 1
	check("topcells", c.TopCells(k), wantSorted[:min(k, len(wantSorted))])
	for _, w := range ref.inOrder() {
		got, ok := c.Lookup(w.Coords...)
		if !ok {
			t.Fatalf("%s lookup %v: missing", label, w.Coords)
		}
		if got.Count != w.Count || !sumEq(got.Sum, w.Sum) {
			t.Fatalf("%s lookup %v: got sum=%v count=%d, want sum=%v count=%d",
				label, w.Coords, got.Sum, got.Count, w.Sum, w.Count)
		}
	}
	if _, ok := c.Lookup(make([]string, len(ref.dims))...); ok {
		t.Fatalf("%s lookup of unseen coords succeeded", label)
	}
}

// TestColumnarMatchesMapReference property-tests the columnar cube
// against the map-backed reference across base construction and every
// derived view, at widths 1, 4 and 8. Width 1 must match the reference
// bit-for-bit (it is the sequential seed semantics); wider builds must
// agree on cells, counts, both orders and lookups, with sums equal up to
// the chunked fold's float reassociation.
func TestColumnarMatchesMapReference(t *testing.T) {
	prev := parallel.DefaultWidth()
	defer parallel.SetDefaultWidth(prev)

	dims := []string{"region", "product", "day"}
	for _, width := range []int{1, 4, 8} {
		parallel.SetDefaultWidth(width)
		exact := width == 1
		rng := rand.New(rand.NewSource(606)) // same rows at every width
		for trial := 0; trial < 4; trial++ {
			n := buildGrain + 500 + rng.Intn(2000) // cross the chunked-build threshold
			rows := make([]Row, n)
			for i := range rows {
				rows[i] = Row{
					Coords: []string{
						fmt.Sprintf("r%d", rng.Intn(5)),
						fmt.Sprintf("p%d", rng.Intn(7)),
						fmt.Sprintf("d%d", rng.Intn(11)),
					},
					Measure: rng.Float64() * 100,
				}
			}
			ref := newRefCube(dims)
			for _, r := range rows {
				ref.add(r.Coords, r.Measure, 1)
			}
			c, err := BuildCube(MustSchema(dims...), rows, width)
			if err != nil {
				t.Fatal(err)
			}
			label := fmt.Sprintf("width %d trial %d", width, trial)
			matchCells(t, label+" base", c, ref, exact)

			ru, err := c.RollUp("product")
			if err != nil {
				t.Fatal(err)
			}
			// Derived folds run over the base cube's cells sequentially in
			// both implementations, so even a width>1 base diverges only by
			// its already-accumulated sums.
			matchCells(t, label+" rollup", ru, ref.rollUp("product"), exact)

			sl, err := c.Slice("region", "r2")
			if err != nil {
				t.Fatal(err)
			}
			matchCells(t, label+" slice", sl, ref.slice("region", "r2"), exact)

			di, err := c.Dice(map[string][]string{"region": {"r0", "r3"}, "day": {"d1", "d4", "d7"}})
			if err != nil {
				t.Fatal(err)
			}
			matchCells(t, label+" dice", di, ref.dice(map[string][]string{"region": {"r0", "r3"}, "day": {"d1", "d4", "d7"}}), exact)

			pv, err := c.Pivot("day", "region", "product")
			if err != nil {
				t.Fatal(err)
			}
			// Pivot routes through the chunked DimensionCube fold at
			// width > 1, which reassociates sums; width 1 stays exact.
			matchCells(t, label+" pivot", pv, ref.pivot([]string{"day", "region", "product"}), exact)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
