package olap

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestCellsImmutableAfterMutation pins the immutability contract: the
// slice Cells returns — coordinates included — must not change when the
// cube is mutated afterwards, and mutating the returned cells must not
// corrupt the cube.
func TestCellsImmutableAfterMutation(t *testing.T) {
	c := NewCube(MustSchema("a", "b"))
	rows := []Row{
		{Coords: []string{"x", "1"}, Measure: 2},
		{Coords: []string{"y", "2"}, Measure: 3},
	}
	if err := c.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	snap := c.Cells()
	before := fmt.Sprint(snap)

	// Mutate the cube after the snapshot.
	if err := c.Insert(Row{Coords: []string{"x", "1"}, Measure: 10}); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(Row{Coords: []string{"z", "3"}, Measure: 1}); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(snap); got != before {
		t.Errorf("snapshot changed after cube mutation:\nbefore %s\nafter  %s", before, got)
	}

	// Mutate the snapshot; the cube must be unaffected.
	snap[0].Coords[0] = "corrupted"
	snap[0].Sum = -1e9
	if _, ok := c.Lookup("corrupted", "1"); ok {
		t.Error("mutating a returned cell's coords leaked into the cube")
	}
	cell, ok := c.Lookup("x", "1")
	if !ok || cell.Sum != 12 {
		t.Errorf("cube cell damaged by snapshot mutation: %+v ok=%v", cell, ok)
	}
}

// TestTopCellsTieBreakDeterministic builds a cube where every cell has
// the same count, in several different insertion orders, and checks the
// TopCells head is identical — the (count desc, key asc) order is total,
// so insertion order must not show through.
func TestTopCellsTieBreakDeterministic(t *testing.T) {
	schema := MustSchema("k")
	rows := make([]Row, 9)
	for i := range rows {
		rows[i] = Row{Coords: []string{fmt.Sprintf("v%d", i)}, Measure: 1}
	}
	var want string
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 6; trial++ {
		shuffled := append([]Row(nil), rows...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		c := NewCube(schema)
		if err := c.InsertAll(shuffled); err != nil {
			t.Fatal(err)
		}
		var got string
		for _, cell := range c.TopCells(5) {
			got += key(cell.Coords) + ";"
		}
		if trial == 0 {
			want = got
		} else if got != want {
			t.Fatalf("trial %d: TopCells order %q differs from %q despite all-tied counts", trial, got, want)
		}
	}
}

// TestCubeConcurrentReads stress-tests the documented contract that all
// read methods are safe concurrently (run under -race in make check):
// many goroutines read every accessor while no writer runs.
func TestCubeConcurrentReads(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c, _ := randomCube(t, rng, 2000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = c.Cells()
				_ = c.TopCells(3)
				_ = c.TotalMeasure()
				_ = c.TotalCount()
				_, _ = c.Lookup("r0", "p0", "d0")
				if _, err := c.RollUp("day"); err != nil {
					t.Error(err)
				}
				if _, err := c.DimensionCube("region"); err != nil {
					t.Error(err)
				}
				_ = c.Clone()
				_ = c.StorageBytes()
				_ = c.Generation()
			}
		}()
	}
	wg.Wait()
}

// TestGenerationTracksMutations pins the generation counter the CubeSet
// memo layer keys on: every inserted row advances it, derived cubes and
// reads do not.
func TestGenerationTracksMutations(t *testing.T) {
	c := NewCube(MustSchema("a", "b"))
	if c.Generation() != 0 {
		t.Fatalf("fresh cube generation %d, want 0", c.Generation())
	}
	if err := c.InsertAll([]Row{{Coords: []string{"x", "1"}, Measure: 1}, {Coords: []string{"y", "2"}, Measure: 1}}); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != 2 {
		t.Fatalf("generation %d after 2 inserts, want 2", c.Generation())
	}
	_ = c.Cells()
	if _, err := c.RollUp("b"); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != 2 {
		t.Fatalf("generation moved to %d on read-only operations", c.Generation())
	}
	// A duplicate coordinate still mutates state (sum/count) and must bump.
	if err := c.Insert(Row{Coords: []string{"x", "1"}, Measure: 5}); err != nil {
		t.Fatal(err)
	}
	if c.Generation() != 3 {
		t.Fatalf("generation %d after duplicate-key insert, want 3", c.Generation())
	}
}

// TestCubeSetCacheHitMiss exercises the versioned memo: a repeated
// Prepare with no new rows is a hit; buffered rows or base-cube movement
// invalidate and count a miss.
func TestCubeSetCacheHitMiss(t *testing.T) {
	cs := NewCubeSet(MustSchema("a", "b"))
	if err := cs.Insert(Row{Coords: []string{"x", "1"}, Measure: 1}); err != nil {
		t.Fatal(err)
	}
	id, err := cs.RegisterQueryType([]string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	// RegisterQueryType builds the dimension cube eagerly, so both of
	// these Prepares find it current: hits.
	if _, err := cs.Prepare(id); err != nil {
		t.Fatal(err)
	}
	if _, err := cs.Prepare(id); err != nil {
		t.Fatal(err)
	}
	hits, misses := cs.CacheStats()
	if hits != 2 || misses != 0 {
		t.Fatalf("after two unchanged prepares: hits=%d misses=%d, want 2/0", hits, misses)
	}
	if err := cs.Insert(Row{Coords: []string{"y", "2"}, Measure: 2}); err != nil {
		t.Fatal(err)
	}
	dc, err := cs.Prepare(id) // buffered row → miss, incremental fold
	if err != nil {
		t.Fatal(err)
	}
	if dc.TotalCount() != 2 {
		t.Fatalf("prepared cube count %d, want 2", dc.TotalCount())
	}
	hits, misses = cs.CacheStats()
	if hits != 2 || misses != 1 {
		t.Fatalf("after invalidating insert: hits=%d misses=%d, want 2/1", hits, misses)
	}
}

// TestBuildCubePooledConcurrentStress runs several pooled builds at
// width > 1 simultaneously (meaningful under -race): the builds share
// nothing and must all agree with the sequential reference.
func TestBuildCubePooledConcurrentStress(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	schema := MustSchema("region", "product", "day")
	n := buildGrain*2 + 53
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Coords: []string{
				fmt.Sprintf("r%d", rng.Intn(4)),
				fmt.Sprintf("p%d", rng.Intn(4)),
				fmt.Sprintf("d%d", rng.Intn(4)),
			},
			Measure: rng.Float64(),
		}
	}
	ref := NewCube(schema)
	if err := ref.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := BuildCube(schema, rows, 4)
			if err != nil {
				t.Error(err)
				return
			}
			if c.NumCells() != ref.NumCells() || c.TotalCount() != ref.TotalCount() {
				t.Errorf("pooled build diverged: cells %d/%d count %d/%d",
					c.NumCells(), ref.NumCells(), c.TotalCount(), ref.TotalCount())
			}
		}()
	}
	wg.Wait()
}
