package olap

import (
	"fmt"
	"sort"
	"strings"
)

// sep separates coordinates inside a cell key. It is a non-printing
// character that must not appear in coordinate values.
const sep = '\x1f'

// Cell is one populated cube cell: a coordinate per dimension, the
// aggregated measure (sum), and the number of raw records folded in.
type Cell struct {
	Coords []string
	Sum    float64
	Count  int
}

// dict interns one dimension's coordinate values: every distinct string
// gets a dense uint32 ID in first-seen order. IDs are local to one cube —
// a derived cube re-interns through a precomputed remap table — so a
// dimension with v distinct values costs one map plus one string slice,
// and every per-cell coordinate is a 4-byte column entry instead of a
// string header.
type dict struct {
	byVal map[string]uint32
	vals  []string // vals[id] is the interned string; len(vals) == len(byVal)
}

func newDict() dict { return dict{byVal: make(map[string]uint32)} }

// intern returns v's ID, assigning the next dense ID on first sight.
func (d *dict) intern(v string) uint32 {
	if id, ok := d.byVal[v]; ok {
		return id
	}
	id := uint32(len(d.vals))
	d.vals = append(d.vals, v)
	d.byVal[v] = id
	return id
}

// internBytes is intern for a byte-slice key span. The hit path does not
// allocate (Go's map[string] lookup on string(b) is optimized to skip the
// conversion); only a first-seen value materializes a string.
func (d *dict) internBytes(b []byte) uint32 {
	if id, ok := d.byVal[string(b)]; ok {
		return id
	}
	s := string(b)
	id := uint32(len(d.vals))
	d.vals = append(d.vals, s)
	d.byVal[s] = id
	return id
}

// id returns v's ID without interning.
func (d *dict) id(v string) (uint32, bool) {
	id, ok := d.byVal[v]
	return id, ok
}

func (d *dict) clone() dict {
	out := dict{
		byVal: make(map[string]uint32, len(d.byVal)),
		vals:  append([]string(nil), d.vals...),
	}
	for v, id := range d.byVal {
		out.byVal[v] = id
	}
	return out
}

// Cube is a sparse multi-dimensional OLAP cube stored as columnar slabs:
// one interned-coordinate-ID column per dimension plus contiguous Sum and
// Count measure columns, indexed by the same packed open-addressed hash
// table the pooled fold uses (build.go). Row position IS insertion order,
// so the fold walks that RollUp/Slice/Dice/DimensionCube and the Total*
// reductions perform are tight loops over contiguous memory — no map
// iteration, no string keys, no per-cell heap objects.
//
// Concurrency contract: a Cube is NOT self-synchronized. Any number of
// goroutines may call read-only methods (Lookup, Cells, TopCells,
// Total*, Slice, Dice, RollUp*, DimensionCube, Pivot, Clone,
// StorageBytes) concurrently, but mutation (Insert, InsertAll, add)
// must not overlap with reads or other mutations — CubeSet is the
// synchronized wrapper for mixed workloads. Cells and TopCells return
// fully independent copies (coordinate slices included), so holding a
// result across later mutations is safe.
//
// Iteration state: the cube tracks cell insertion order (row order) and
// every aggregation (RollUp, Slice, DimensionCube, …) folds cells in that
// order. Folding floats in map-iteration order — the pre-PR 4 behavior —
// made derived-cube Sums depend on Go's randomized map order; the
// insertion-order walk makes every derived cube bit-reproducible.
type Cube struct {
	schema *Schema
	dicts  []dict     // one interning dictionary per dimension
	cols   [][]uint32 // cols[d][row] = coordinate ID of cell `row` in dim d
	sums   []float64  // sums[row] = aggregated measure
	counts []int      // counts[row] = raw records folded in
	idx    *cellTable // ID-tuple hash → row, shared layout with the fold

	// keyBytes is the running total of joined-key bytes across cells
	// (coordinate bytes + nd-1 separators per cell), maintained as rows
	// are appended so StorageBytes is O(1).
	keyBytes int64

	scratch []uint32 // ID buffer for mutations (which never overlap)
	rows    int      // raw records inserted
	gen     uint64   // bumped on every mutation; keys derived-cube memoization
}

// NewCube creates an empty cube over the schema.
func NewCube(schema *Schema) *Cube {
	nd := schema.NumDims()
	c := &Cube{
		schema: schema,
		dicts:  make([]dict, nd),
		cols:   make([][]uint32, nd),
		// Cube indexes start at 256 slots (2KB): most cubes are small
		// derived views, and the table doubles cheaply for the few big ones.
		idx: newCellTableSized(256),
	}
	for d := range c.dicts {
		c.dicts[d] = newDict()
	}
	return c
}

// Schema returns the cube's schema.
func (c *Cube) Schema() *Schema { return c.schema }

// NumCells returns the number of populated cells.
func (c *Cube) NumCells() int { return len(c.sums) }

// NumRows returns the number of raw records inserted (directly or via the
// cube this one was derived from).
func (c *Cube) NumRows() int { return c.rows }

// Generation returns a counter that increases with every mutation of the
// cube. A derived artifact (dimension cube, probe, …) computed at
// generation g is still valid iff the base cube's generation is still g —
// the versioned-memo key CubeSet's cache and placement's cube cache use.
func (c *Cube) Generation() uint64 { return c.gen }

func key(coords []string) string { return strings.Join(coords, string(sep)) }

// hashIDs hashes a cell's coordinate-ID tuple: FNV-style fold over the
// IDs (offset by one so the all-zeros tuple doesn't hash to the FNV
// offset basis fixed point) finished with the same avalanche hashKey
// uses, because the packed table masks with the LOW bits.
func hashIDs(ids []uint32) uint64 {
	const (
		offset uint64 = 14695981039346656037
		prime  uint64 = 1099511628211
	)
	h := offset
	for _, id := range ids {
		h = (h ^ (uint64(id) + 1)) * prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// rowMatches reports whether the cell at row has exactly the given
// coordinate IDs.
func (c *Cube) rowMatches(row int32, ids []uint32) bool {
	for d, id := range ids {
		if c.cols[d][row] != id {
			return false
		}
	}
	return true
}

// findRow returns the row holding the ID tuple, or -1. Read-only — safe
// for concurrent lookups.
func (c *Cube) findRow(ids []uint32, h uint64) int32 {
	entries := c.idx.entries
	mask := uint64(len(entries) - 1)
	tag := h & tagMask
	for j := h & mask; ; j++ {
		e := entries[j&mask]
		if e == 0 {
			return -1
		}
		if e&tagMask == tag {
			row := int32(e&idxMask) - 1
			if c.rowMatches(row, ids) {
				return row
			}
		}
	}
}

// appendRow appends a zeroed cell with the given coordinate IDs and
// accounts its joined-key bytes. Callers must also index it (upsertRow
// does both).
func (c *Cube) appendRow(ids []uint32) int32 {
	kb := 0
	for d, id := range ids {
		c.cols[d] = append(c.cols[d], id)
		kb += len(c.dicts[d].vals[id])
	}
	if len(ids) > 1 {
		kb += len(ids) - 1
	}
	c.keyBytes += int64(kb)
	c.sums = append(c.sums, 0)
	c.counts = append(c.counts, 0)
	return int32(len(c.sums) - 1)
}

// upsertRow returns the row for the ID tuple, appending (and indexing) a
// new zeroed row when absent. Mutation — must not race with reads.
func (c *Cube) upsertRow(ids []uint32, h uint64) int32 {
	t := c.idx
	tag := h & tagMask
	entries := t.entries
	mask := uint64(len(entries) - 1)
	j := h & mask
	for {
		e := entries[j&mask]
		if e == 0 {
			row := c.appendRow(ids)
			t.add(j&mask, h)
			return row
		}
		if e&tagMask == tag {
			row := int32(e&idxMask) - 1
			if c.rowMatches(row, ids) {
				return row
			}
		}
		j++
	}
}

// Insert folds one row into the cube. The row must have exactly one
// coordinate per schema dimension, and coordinates must not contain the
// reserved separator character.
func (c *Cube) Insert(r Row) error {
	if len(r.Coords) != c.schema.NumDims() {
		return fmt.Errorf("olap: insert: row has %d coords, schema has %d dims",
			len(r.Coords), c.schema.NumDims())
	}
	for i, v := range r.Coords {
		if strings.ContainsRune(v, sep) {
			return fmt.Errorf("olap: insert: coord %d contains reserved separator", i)
		}
	}
	c.add(r.Coords, r.Measure, 1)
	c.rows++
	return nil
}

// InsertAll folds rows into the cube, stopping at the first error.
func (c *Cube) InsertAll(rows []Row) error {
	for i, r := range rows {
		if err := c.Insert(r); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	return nil
}

// add merges a pre-aggregated cell contribution.
func (c *Cube) add(coords []string, sum float64, count int) {
	if c.scratch == nil {
		c.scratch = make([]uint32, c.schema.NumDims())
	}
	ids := c.scratch[:len(coords)]
	for d, v := range coords {
		ids[d] = c.dicts[d].intern(v)
	}
	row := c.upsertRow(ids, hashIDs(ids))
	c.sums[row] += sum
	c.counts[row] += count
	c.gen++
}

// Lookup returns the cell's measures at the given coordinates, if
// populated. This is the hot probe-scoring path: coordinates resolve
// through the per-dimension dictionaries to a stack ID buffer and one
// packed-table probe — zero heap allocations, no key join. The returned
// Cell carries no Coords (the caller passed them in); use Cells for full
// copies.
func (c *Cube) Lookup(coords ...string) (Cell, bool) {
	nd := len(c.dicts)
	if len(coords) != nd || len(c.sums) == 0 {
		return Cell{}, false
	}
	var buf [8]uint32
	var ids []uint32
	if nd <= len(buf) {
		ids = buf[:nd]
	} else {
		ids = make([]uint32, nd)
	}
	for d, v := range coords {
		id, ok := c.dicts[d].id(v)
		if !ok {
			return Cell{}, false
		}
		ids[d] = id
	}
	row := c.findRow(ids, hashIDs(ids))
	if row < 0 {
		return Cell{}, false
	}
	return Cell{Sum: c.sums[row], Count: c.counts[row]}, true
}

// coordsForRow materializes a fresh coordinate slice for one cell row.
func (c *Cube) coordsForRow(row int) []string {
	coords := make([]string, len(c.dicts))
	for d := range c.dicts {
		coords[d] = c.dicts[d].vals[c.cols[d][row]]
	}
	return coords
}

// cellSorter sorts materialized cells by descending Count then lexical
// joined-key order, with the keys precomputed once instead of re-joined
// O(n log n) times inside the comparator.
type cellSorter struct {
	cells []Cell
	keys  []string
}

func (s *cellSorter) Len() int { return len(s.cells) }
func (s *cellSorter) Less(i, j int) bool {
	if s.cells[i].Count != s.cells[j].Count {
		return s.cells[i].Count > s.cells[j].Count
	}
	return s.keys[i] < s.keys[j]
}
func (s *cellSorter) Swap(i, j int) {
	s.cells[i], s.cells[j] = s.cells[j], s.cells[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// Cells returns all populated cells sorted by descending record count and
// then lexical key order, so iteration is deterministic. The paper's probe
// construction takes the head of this order (largest record clusters).
// The result is a deep copy — coordinate slices included — so it stays
// valid and immutable however the cube is mutated afterwards.
func (c *Cube) Cells() []Cell {
	n := len(c.sums)
	out := make([]Cell, 0, n)
	keys := make([]string, n)
	for row := 0; row < n; row++ {
		coords := c.coordsForRow(row)
		out = append(out, Cell{Coords: coords, Sum: c.sums[row], Count: c.counts[row]})
		keys[row] = key(coords)
	}
	sort.Sort(&cellSorter{cells: out, keys: keys})
	return out
}

// TopCells returns the k most populous cells (fewer if the cube is
// smaller), ties broken by lexical key order like Cells — the ordering is
// a total one, so the head-of-order probe selection is deterministic.
// These are the "representative records" a probe carries (§4.2).
func (c *Cube) TopCells(k int) []Cell {
	cells := c.Cells()
	if k < len(cells) {
		cells = cells[:k]
	}
	return cells
}

// TotalMeasure returns the sum of measures across all cells, folded in
// insertion order (deterministic despite float non-associativity).
func (c *Cube) TotalMeasure() float64 {
	var s float64
	for _, v := range c.sums {
		s += v
	}
	return s
}

// TotalCount returns the total raw record count across all cells.
func (c *Cube) TotalCount() int {
	var n int
	for _, v := range c.counts {
		n += v
	}
	return n
}

// buildRemap interns every value of the source dictionary into dst
// (optionally coarsened) and returns the srcID → dstID translation, so a
// derived-cube fold is pure integer column work with no per-row string
// handling. Interning runs in source-ID order — first-seen order — which
// keeps the derived cube's IDs, and therefore everything downstream,
// deterministic.
func buildRemap(src *dict, dst *dict, coarsen func(string) string) []uint32 {
	remap := make([]uint32, len(src.vals))
	for id, v := range src.vals {
		if coarsen != nil {
			v = coarsen(v)
		}
		remap[id] = dst.intern(v)
	}
	return remap
}

// Slice picks the sub-array where dim == value and removes that dimension,
// producing a cube with one fewer dimension (§2.2).
func (c *Cube) Slice(dim, value string) (*Cube, error) {
	di := c.schema.Index(dim)
	if di < 0 {
		return nil, fmt.Errorf("olap: slice: unknown dimension %q", dim)
	}
	ns, err := c.schema.Without(dim)
	if err != nil {
		return nil, fmt.Errorf("olap: slice: %w", err)
	}
	out := NewCube(ns)
	vid, ok := c.dicts[di].id(value)
	if !ok {
		return out, nil // value never seen: empty result
	}
	kept := make([]int, 0, len(c.dicts)-1)
	for d := range c.dicts {
		if d != di {
			kept = append(kept, d)
		}
	}
	remap := make([][]uint32, len(kept))
	for k, d := range kept {
		remap[k] = buildRemap(&c.dicts[d], &out.dicts[k], nil)
	}
	ids := make([]uint32, len(kept))
	filter := c.cols[di]
	for row := 0; row < len(c.sums); row++ {
		if filter[row] != vid {
			continue
		}
		for k, d := range kept {
			ids[k] = remap[k][c.cols[d][row]]
		}
		r := out.upsertRow(ids, hashIDs(ids))
		out.sums[r] += c.sums[row]
		out.counts[r] += c.counts[row]
		out.gen++
		out.rows += c.counts[row]
	}
	return out, nil
}

// Dice produces a subcube keeping only cells whose coordinate for each
// filtered dimension is in the allowed set. Dimensions absent from filters
// are unconstrained. The schema is unchanged (§2.2).
func (c *Cube) Dice(filters map[string][]string) (*Cube, error) {
	// allowed[d] is nil for unconstrained dimensions; otherwise a bitmap
	// over dimension d's IDs (filter values never seen stay false — no
	// cell can match them).
	allowed := make([][]bool, len(c.dicts))
	for dim, vals := range filters {
		di := c.schema.Index(dim)
		if di < 0 {
			return nil, fmt.Errorf("olap: dice: unknown dimension %q", dim)
		}
		set := make([]bool, len(c.dicts[di].vals))
		for _, v := range vals {
			if id, ok := c.dicts[di].id(v); ok {
				set[id] = true
			}
		}
		allowed[di] = set
	}
	out := NewCube(c.schema)
	// Same schema, same coordinates: share the interned vocabulary so the
	// kept rows' IDs pass through unchanged.
	for d := range c.dicts {
		out.dicts[d] = c.dicts[d].clone()
	}
	ids := make([]uint32, len(c.dicts))
	for row := 0; row < len(c.sums); row++ {
		keep := true
		for d, set := range allowed {
			if set != nil && !set[c.cols[d][row]] {
				keep = false
				break
			}
		}
		if !keep {
			continue
		}
		for d := range ids {
			ids[d] = c.cols[d][row]
		}
		r := out.upsertRow(ids, hashIDs(ids))
		out.sums[r] += c.sums[row]
		out.counts[r] += c.counts[row]
		out.gen++
		out.rows += c.counts[row]
	}
	return out, nil
}

// RollUp aggregates away one dimension entirely, producing the dimension
// cube over the remaining dimensions.
func (c *Cube) RollUp(dim string) (*Cube, error) {
	di := c.schema.Index(dim)
	if di < 0 {
		return nil, fmt.Errorf("olap: rollup: unknown dimension %q", dim)
	}
	ns, err := c.schema.Without(dim)
	if err != nil {
		return nil, fmt.Errorf("olap: rollup: %w", err)
	}
	out := NewCube(ns)
	kept := make([]int, 0, len(c.dicts)-1)
	for d := range c.dicts {
		if d != di {
			kept = append(kept, d)
		}
	}
	remap := make([][]uint32, len(kept))
	for k, d := range kept {
		remap[k] = buildRemap(&c.dicts[d], &out.dicts[k], nil)
	}
	ids := make([]uint32, len(kept))
	for row := 0; row < len(c.sums); row++ {
		for k, d := range kept {
			ids[k] = remap[k][c.cols[d][row]]
		}
		r := out.upsertRow(ids, hashIDs(ids))
		out.sums[r] += c.sums[row]
		out.counts[r] += c.counts[row]
		out.gen++
	}
	out.rows = c.rows
	return out, nil
}

// RollUpLevel coarsens one dimension in place of removing it, using the
// hierarchy's Coarsen function (e.g. day → month). The schema keeps the
// same dimension name.
func (c *Cube) RollUpLevel(h Hierarchy) (*Cube, error) {
	di := c.schema.Index(h.Dim)
	if di < 0 {
		return nil, fmt.Errorf("olap: rollup level: unknown dimension %q", h.Dim)
	}
	if h.Coarsen == nil {
		return nil, fmt.Errorf("olap: rollup level: hierarchy for %q has no coarsen function", h.Dim)
	}
	out := NewCube(c.schema)
	remap := make([][]uint32, len(c.dicts))
	for d := range c.dicts {
		coarsen := h.Coarsen
		if d != di {
			coarsen = nil
		}
		// Coarsening runs once per distinct value here, not once per cell.
		remap[d] = buildRemap(&c.dicts[d], &out.dicts[d], coarsen)
	}
	ids := make([]uint32, len(c.dicts))
	for row := 0; row < len(c.sums); row++ {
		for d := range ids {
			ids[d] = remap[d][c.cols[d][row]]
		}
		r := out.upsertRow(ids, hashIDs(ids))
		out.sums[r] += c.sums[row]
		out.counts[r] += c.counts[row]
		out.gen++
	}
	out.rows = c.rows
	return out, nil
}

// DimensionCube aggregates the cube down to exactly the named dimensions,
// in the order given — the per-query-type view of §4.1. Dimensions not
// named are aggregated away. At pool width > 1 the fold runs fixed-grain
// cell chunks through the worker pool (see dimensionCubeFold), which
// keeps the result bit-identical at every pool width > 1; width 1 is the
// plain sequential reference fold.
func (c *Cube) DimensionCube(dims ...string) (*Cube, error) {
	ns, err := c.schema.Project(dims...)
	if err != nil {
		return nil, fmt.Errorf("olap: dimension cube: %w", err)
	}
	srcIdx := make([]int, len(dims))
	for i, d := range dims {
		srcIdx[i] = c.schema.Index(d)
	}
	out := NewCube(ns)
	remap := make([][]uint32, len(dims))
	for k, si := range srcIdx {
		remap[k] = buildRemap(&c.dicts[si], &out.dicts[k], nil)
	}
	c.dimensionCubeFold(out, remap, srcIdx)
	out.rows = c.rows
	return out, nil
}

// Pivot reorders the cube's dimensions. dims must be a permutation of the
// schema's dimensions.
func (c *Cube) Pivot(dims ...string) (*Cube, error) {
	if len(dims) != c.schema.NumDims() {
		return nil, fmt.Errorf("olap: pivot: got %d dims, schema has %d", len(dims), c.schema.NumDims())
	}
	seen := make(map[string]bool, len(dims))
	for _, d := range dims {
		if !c.schema.Has(d) {
			return nil, fmt.Errorf("olap: pivot: unknown dimension %q", d)
		}
		if seen[d] {
			return nil, fmt.Errorf("olap: pivot: dimension %q repeated", d)
		}
		seen[d] = true
	}
	return c.DimensionCube(dims...)
}

// DrillDown rebuilds a finer-grained view from base: it returns base's
// dimension cube over c's dimensions plus the extra dimensions requested.
// (A derived cube cannot invent detail it aggregated away; like real OLAP
// engines we drill down by going back to the base cube.)
func (c *Cube) DrillDown(base *Cube, extra ...string) (*Cube, error) {
	dims := append(append([]string(nil), c.schema.Dims()...), extra...)
	for _, d := range dims {
		if !base.schema.Has(d) {
			return nil, fmt.Errorf("olap: drill down: base cube lacks dimension %q", d)
		}
	}
	return base.DimensionCube(dims...)
}

// Clone returns a deep copy of the cube (insertion order preserved).
func (c *Cube) Clone() *Cube {
	out := &Cube{
		schema:   c.schema,
		dicts:    make([]dict, len(c.dicts)),
		cols:     make([][]uint32, len(c.cols)),
		sums:     append([]float64(nil), c.sums...),
		counts:   append([]int(nil), c.counts...),
		idx:      c.idx.clone(),
		keyBytes: c.keyBytes,
		rows:     c.rows,
		// gen deliberately restarts at zero: a clone is a fresh cube, not a
		// continuation of the original's mutation history.
	}
	for d := range c.dicts {
		out.dicts[d] = c.dicts[d].clone()
		out.cols[d] = append([]uint32(nil), c.cols[d]...)
	}
	return out
}

// StorageBytes estimates the in-memory/on-disk footprint of the cube:
// per-cell key bytes plus fixed cell overhead. Table 6 of the paper reports
// this overhead; the estimate uses 16 bytes for the sum/count pair plus the
// coordinate bytes, mirroring a compact columnar encoding. Maintained
// incrementally as cells appear, so this is O(1).
func (c *Cube) StorageBytes() int64 {
	return c.keyBytes + 16*int64(len(c.sums))
}
