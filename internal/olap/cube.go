package olap

import (
	"fmt"
	"sort"
	"strings"
)

// sep separates coordinates inside a cell key. It is a non-printing
// character that must not appear in coordinate values.
const sep = '\x1f'

// Cell is one populated cube cell: a coordinate per dimension, the
// aggregated measure (sum), and the number of raw records folded in.
type Cell struct {
	Coords []string
	Sum    float64
	Count  int
}

// Cube is a sparse multi-dimensional OLAP cube.
//
// Concurrency contract: a Cube is NOT self-synchronized. Any number of
// goroutines may call read-only methods (Lookup, Cells, TopCells,
// Total*, Slice, Dice, RollUp*, DimensionCube, Pivot, Clone,
// StorageBytes) concurrently, but mutation (Insert, InsertAll, add)
// must not overlap with reads or other mutations — CubeSet is the
// synchronized wrapper for mixed workloads. Cells and TopCells return
// fully independent copies (coordinate slices included), so holding a
// result across later mutations is safe; Lookup's Coords alias cube
// internals for speed and must be treated as read-only.
//
// Iteration state: the cube tracks cell insertion order and every
// aggregation (RollUp, Slice, DimensionCube, …) folds cells in that
// order. Folding floats in map-iteration order — the pre-PR 4 behavior
// — made derived-cube Sums depend on Go's randomized map order; the
// insertion-order walk makes every derived cube bit-reproducible.
type Cube struct {
	schema *Schema
	cells  map[string]*Cell
	order  []*Cell // cells in first-insertion order; len(order) == len(cells)
	rows   int     // raw records inserted
	gen    uint64  // bumped on every mutation; keys derived-cube memoization
}

// NewCube creates an empty cube over the schema.
func NewCube(schema *Schema) *Cube {
	return &Cube{schema: schema, cells: make(map[string]*Cell)}
}

// Schema returns the cube's schema.
func (c *Cube) Schema() *Schema { return c.schema }

// NumCells returns the number of populated cells.
func (c *Cube) NumCells() int { return len(c.cells) }

// NumRows returns the number of raw records inserted (directly or via the
// cube this one was derived from).
func (c *Cube) NumRows() int { return c.rows }

// Generation returns a counter that increases with every mutation of the
// cube. A derived artifact (dimension cube, probe, …) computed at
// generation g is still valid iff the base cube's generation is still g —
// the versioned-memo key CubeSet's cache and placement's cube cache use.
func (c *Cube) Generation() uint64 { return c.gen }

func key(coords []string) string { return strings.Join(coords, string(sep)) }

// Insert folds one row into the cube. The row must have exactly one
// coordinate per schema dimension, and coordinates must not contain the
// reserved separator character.
func (c *Cube) Insert(r Row) error {
	if len(r.Coords) != c.schema.NumDims() {
		return fmt.Errorf("olap: insert: row has %d coords, schema has %d dims",
			len(r.Coords), c.schema.NumDims())
	}
	for i, v := range r.Coords {
		if strings.ContainsRune(v, sep) {
			return fmt.Errorf("olap: insert: coord %d contains reserved separator", i)
		}
	}
	c.add(r.Coords, r.Measure, 1)
	c.rows++
	return nil
}

// InsertAll folds rows into the cube, stopping at the first error.
func (c *Cube) InsertAll(rows []Row) error {
	for i, r := range rows {
		if err := c.Insert(r); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	return nil
}

// add merges a pre-aggregated cell contribution.
func (c *Cube) add(coords []string, sum float64, count int) {
	k := key(coords)
	cell, ok := c.cells[k]
	if !ok {
		cell = &Cell{Coords: append([]string(nil), coords...)}
		c.cells[k] = cell
		c.order = append(c.order, cell)
	}
	cell.Sum += sum
	cell.Count += count
	c.gen++
}

// Lookup returns the cell at the given coordinates, if populated. The
// returned Cell's Coords slice aliases cube internals (this is the hot
// probe-scoring path); callers must not mutate it. Use Cells for fully
// independent copies.
func (c *Cube) Lookup(coords ...string) (Cell, bool) {
	cell, ok := c.cells[key(coords)]
	if !ok {
		return Cell{}, false
	}
	return *cell, true
}

// Cells returns all populated cells sorted by descending record count and
// then lexical key order, so iteration is deterministic. The paper's probe
// construction takes the head of this order (largest record clusters).
// The result is a deep copy — coordinate slices included — so it stays
// valid and immutable however the cube is mutated afterwards.
func (c *Cube) Cells() []Cell {
	out := make([]Cell, 0, len(c.order))
	for _, cell := range c.order {
		cp := *cell
		cp.Coords = append([]string(nil), cell.Coords...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return key(out[i].Coords) < key(out[j].Coords)
	})
	return out
}

// TopCells returns the k most populous cells (fewer if the cube is
// smaller), ties broken by lexical key order like Cells — the ordering is
// a total one, so the head-of-order probe selection is deterministic.
// These are the "representative records" a probe carries (§4.2).
func (c *Cube) TopCells(k int) []Cell {
	cells := c.Cells()
	if k < len(cells) {
		cells = cells[:k]
	}
	return cells
}

// TotalMeasure returns the sum of measures across all cells, folded in
// insertion order (deterministic despite float non-associativity).
func (c *Cube) TotalMeasure() float64 {
	var s float64
	for _, cell := range c.order {
		s += cell.Sum
	}
	return s
}

// TotalCount returns the total raw record count across all cells.
func (c *Cube) TotalCount() int {
	var n int
	for _, cell := range c.order {
		n += cell.Count
	}
	return n
}

// Slice picks the sub-array where dim == value and removes that dimension,
// producing a cube with one fewer dimension (§2.2).
func (c *Cube) Slice(dim, value string) (*Cube, error) {
	di := c.schema.Index(dim)
	if di < 0 {
		return nil, fmt.Errorf("olap: slice: unknown dimension %q", dim)
	}
	ns, err := c.schema.Without(dim)
	if err != nil {
		return nil, fmt.Errorf("olap: slice: %w", err)
	}
	out := NewCube(ns)
	for _, cell := range c.order {
		if cell.Coords[di] != value {
			continue
		}
		coords := make([]string, 0, len(cell.Coords)-1)
		coords = append(coords, cell.Coords[:di]...)
		coords = append(coords, cell.Coords[di+1:]...)
		out.add(coords, cell.Sum, cell.Count)
		out.rows += cell.Count
	}
	return out, nil
}

// Dice produces a subcube keeping only cells whose coordinate for each
// filtered dimension is in the allowed set. Dimensions absent from filters
// are unconstrained. The schema is unchanged (§2.2).
func (c *Cube) Dice(filters map[string][]string) (*Cube, error) {
	idx := make(map[int]map[string]bool, len(filters))
	for dim, vals := range filters {
		di := c.schema.Index(dim)
		if di < 0 {
			return nil, fmt.Errorf("olap: dice: unknown dimension %q", dim)
		}
		set := make(map[string]bool, len(vals))
		for _, v := range vals {
			set[v] = true
		}
		idx[di] = set
	}
	out := NewCube(c.schema)
	for _, cell := range c.order {
		keep := true
		for di, set := range idx {
			if !set[cell.Coords[di]] {
				keep = false
				break
			}
		}
		if keep {
			out.add(cell.Coords, cell.Sum, cell.Count)
			out.rows += cell.Count
		}
	}
	return out, nil
}

// RollUp aggregates away one dimension entirely, producing the dimension
// cube over the remaining dimensions.
func (c *Cube) RollUp(dim string) (*Cube, error) {
	di := c.schema.Index(dim)
	if di < 0 {
		return nil, fmt.Errorf("olap: rollup: unknown dimension %q", dim)
	}
	ns, err := c.schema.Without(dim)
	if err != nil {
		return nil, fmt.Errorf("olap: rollup: %w", err)
	}
	out := NewCube(ns)
	for _, cell := range c.order {
		coords := make([]string, 0, len(cell.Coords)-1)
		coords = append(coords, cell.Coords[:di]...)
		coords = append(coords, cell.Coords[di+1:]...)
		out.add(coords, cell.Sum, cell.Count)
	}
	out.rows = c.rows
	return out, nil
}

// RollUpLevel coarsens one dimension in place of removing it, using the
// hierarchy's Coarsen function (e.g. day → month). The schema keeps the
// same dimension name.
func (c *Cube) RollUpLevel(h Hierarchy) (*Cube, error) {
	di := c.schema.Index(h.Dim)
	if di < 0 {
		return nil, fmt.Errorf("olap: rollup level: unknown dimension %q", h.Dim)
	}
	if h.Coarsen == nil {
		return nil, fmt.Errorf("olap: rollup level: hierarchy for %q has no coarsen function", h.Dim)
	}
	out := NewCube(c.schema)
	for _, cell := range c.order {
		coords := append([]string(nil), cell.Coords...)
		coords[di] = h.Coarsen(coords[di])
		out.add(coords, cell.Sum, cell.Count)
	}
	out.rows = c.rows
	return out, nil
}

// DimensionCube aggregates the cube down to exactly the named dimensions,
// in the order given — the per-query-type view of §4.1. Dimensions not
// named are aggregated away. Large cubes fold their cells through the
// worker pool in fixed-grain chunks (see dimensionCubePooled), which keeps
// the result bit-identical at every pool width.
func (c *Cube) DimensionCube(dims ...string) (*Cube, error) {
	ns, err := c.schema.Project(dims...)
	if err != nil {
		return nil, fmt.Errorf("olap: dimension cube: %w", err)
	}
	srcIdx := make([]int, len(dims))
	for i, d := range dims {
		srcIdx[i] = c.schema.Index(d)
	}
	if out := c.dimensionCubePooled(ns, srcIdx); out != nil {
		return out, nil
	}
	out := NewCube(ns)
	coords := make([]string, len(dims))
	for _, cell := range c.order {
		for i, si := range srcIdx {
			coords[i] = cell.Coords[si]
		}
		out.add(coords, cell.Sum, cell.Count)
	}
	out.rows = c.rows
	return out, nil
}

// Pivot reorders the cube's dimensions. dims must be a permutation of the
// schema's dimensions.
func (c *Cube) Pivot(dims ...string) (*Cube, error) {
	if len(dims) != c.schema.NumDims() {
		return nil, fmt.Errorf("olap: pivot: got %d dims, schema has %d", len(dims), c.schema.NumDims())
	}
	seen := make(map[string]bool, len(dims))
	for _, d := range dims {
		if !c.schema.Has(d) {
			return nil, fmt.Errorf("olap: pivot: unknown dimension %q", d)
		}
		if seen[d] {
			return nil, fmt.Errorf("olap: pivot: dimension %q repeated", d)
		}
		seen[d] = true
	}
	return c.DimensionCube(dims...)
}

// DrillDown rebuilds a finer-grained view from base: it returns base's
// dimension cube over c's dimensions plus the extra dimensions requested.
// (A derived cube cannot invent detail it aggregated away; like real OLAP
// engines we drill down by going back to the base cube.)
func (c *Cube) DrillDown(base *Cube, extra ...string) (*Cube, error) {
	dims := append(append([]string(nil), c.schema.Dims()...), extra...)
	for _, d := range dims {
		if !base.schema.Has(d) {
			return nil, fmt.Errorf("olap: drill down: base cube lacks dimension %q", d)
		}
	}
	return base.DimensionCube(dims...)
}

// Clone returns a deep copy of the cube (insertion order preserved).
func (c *Cube) Clone() *Cube {
	out := NewCube(c.schema)
	out.order = make([]*Cell, 0, len(c.order))
	for _, cell := range c.order {
		cp := *cell
		cp.Coords = append([]string(nil), cell.Coords...)
		out.cells[key(cell.Coords)] = &cp
		out.order = append(out.order, &cp)
	}
	out.rows = c.rows
	return out
}

// StorageBytes estimates the in-memory/on-disk footprint of the cube:
// per-cell key bytes plus fixed cell overhead. Table 6 of the paper reports
// this overhead; the estimate uses 16 bytes for the sum/count pair plus the
// coordinate bytes, mirroring a compact columnar encoding.
func (c *Cube) StorageBytes() int64 {
	var b int64
	for k := range c.cells {
		b += int64(len(k)) + 16
	}
	return b
}
