package olap

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"bohr/internal/stats"
)

// salesCube builds the paper's Figure-2 style cube: time × region × product.
func salesCube(t *testing.T) *Cube {
	t.Helper()
	c := NewCube(MustSchema("time", "region", "product"))
	rows := []Row{
		{Coords: []string{"2012", "US", "A"}, Measure: 10},
		{Coords: []string{"2012", "US", "B"}, Measure: 5},
		{Coords: []string{"2013", "EU", "A"}, Measure: 7},
		{Coords: []string{"2014", "US", "A"}, Measure: 3},
		{Coords: []string{"2014", "EU", "B"}, Measure: 4},
		{Coords: []string{"2014", "US", "A"}, Measure: 6}, // same cell as row 3
	}
	if err := c.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Fatal("empty schema should error")
	}
	if _, err := NewSchema("a", ""); err == nil {
		t.Fatal("empty dim name should error")
	}
	if _, err := NewSchema("a", "a"); err == nil {
		t.Fatal("duplicate dim should error")
	}
	if _, err := NewSchema("a\x1fb"); err == nil {
		t.Fatal("separator in dim name should error")
	}
}

func TestSchemaOps(t *testing.T) {
	s := MustSchema("a", "b", "c")
	if s.NumDims() != 3 || s.Index("b") != 1 || s.Index("z") != -1 {
		t.Fatalf("schema basics broken: %+v", s.Dims())
	}
	p, err := s.Project("c", "a")
	if err != nil || p.NumDims() != 2 || p.Dims()[0] != "c" {
		t.Fatalf("project: %v %v", p, err)
	}
	if _, err := s.Project("z"); err == nil {
		t.Fatal("project unknown should error")
	}
	w, err := s.Without("b")
	if err != nil || !w.Equal(MustSchema("a", "c")) {
		t.Fatalf("without: %v %v", w, err)
	}
	if _, err := s.Without("z"); err == nil {
		t.Fatal("without unknown should error")
	}
	one := MustSchema("a")
	if _, err := one.Without("a"); err == nil {
		t.Fatal("removing last dim should error")
	}
	if s.Equal(MustSchema("a", "b")) || s.Equal(MustSchema("a", "c", "b")) {
		t.Fatal("Equal too lax")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema should panic on error")
		}
	}()
	MustSchema()
}

func TestInsertValidation(t *testing.T) {
	c := NewCube(MustSchema("a", "b"))
	if err := c.Insert(Row{Coords: []string{"x"}, Measure: 1}); err == nil {
		t.Fatal("wrong arity should error")
	}
	if err := c.Insert(Row{Coords: []string{"x", "y\x1fz"}, Measure: 1}); err == nil {
		t.Fatal("separator in coord should error")
	}
	if err := c.InsertAll([]Row{{Coords: []string{"x", "y"}}, {Coords: []string{"w"}}}); err == nil {
		t.Fatal("InsertAll should surface row errors")
	}
}

func TestInsertAggregates(t *testing.T) {
	c := salesCube(t)
	if c.NumRows() != 6 {
		t.Fatalf("NumRows = %d", c.NumRows())
	}
	if c.NumCells() != 5 {
		t.Fatalf("NumCells = %d, want 5 (two rows share a cell)", c.NumCells())
	}
	cell, ok := c.Lookup("2014", "US", "A")
	if !ok || cell.Sum != 9 || cell.Count != 2 {
		t.Fatalf("merged cell = %+v ok=%v", cell, ok)
	}
	if _, ok := c.Lookup("1999", "US", "A"); ok {
		t.Fatal("absent cell should not be found")
	}
	if got := c.TotalMeasure(); got != 35 {
		t.Fatalf("TotalMeasure = %v", got)
	}
	if got := c.TotalCount(); got != 6 {
		t.Fatalf("TotalCount = %v", got)
	}
}

func TestCellsOrderDeterministic(t *testing.T) {
	c := salesCube(t)
	cells := c.Cells()
	if len(cells) != 5 {
		t.Fatalf("len = %d", len(cells))
	}
	if cells[0].Count != 2 {
		t.Fatalf("largest cluster first, got count %d", cells[0].Count)
	}
	// Two identical cubes must iterate identically.
	c2 := salesCube(t)
	cells2 := c2.Cells()
	for i := range cells {
		if strings.Join(cells[i].Coords, "|") != strings.Join(cells2[i].Coords, "|") {
			t.Fatal("iteration order not deterministic")
		}
	}
}

func TestTopCells(t *testing.T) {
	c := salesCube(t)
	top := c.TopCells(2)
	if len(top) != 2 || top[0].Count < top[1].Count {
		t.Fatalf("TopCells = %+v", top)
	}
	if got := c.TopCells(100); len(got) != 5 {
		t.Fatalf("TopCells over-ask = %d", len(got))
	}
}

func TestSlice(t *testing.T) {
	c := salesCube(t)
	s, err := c.Slice("time", "2014")
	if err != nil {
		t.Fatal(err)
	}
	if !s.Schema().Equal(MustSchema("region", "product")) {
		t.Fatalf("slice schema = %v", s.Schema().Dims())
	}
	if s.NumCells() != 2 {
		t.Fatalf("slice cells = %d", s.NumCells())
	}
	cell, ok := s.Lookup("US", "A")
	if !ok || cell.Sum != 9 {
		t.Fatalf("slice cell = %+v", cell)
	}
	if _, err := c.Slice("nope", "x"); err == nil {
		t.Fatal("unknown dim should error")
	}
}

func TestDice(t *testing.T) {
	c := salesCube(t)
	d, err := c.Dice(map[string][]string{"time": {"2014"}, "product": {"A"}})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumCells() != 1 {
		t.Fatalf("dice cells = %d", d.NumCells())
	}
	if !d.Schema().Equal(c.Schema()) {
		t.Fatal("dice must preserve schema")
	}
	if _, err := c.Dice(map[string][]string{"bogus": {"x"}}); err == nil {
		t.Fatal("unknown dim should error")
	}
	// Empty filter keeps everything.
	all, err := c.Dice(nil)
	if err != nil || all.NumCells() != c.NumCells() {
		t.Fatalf("empty dice: %v cells=%d", err, all.NumCells())
	}
}

func TestRollUp(t *testing.T) {
	c := salesCube(t)
	r, err := c.RollUp("region")
	if err != nil {
		t.Fatal(err)
	}
	if !r.Schema().Equal(MustSchema("time", "product")) {
		t.Fatalf("rollup schema = %v", r.Schema().Dims())
	}
	cell, ok := r.Lookup("2014", "A")
	if !ok || cell.Sum != 9 || cell.Count != 2 {
		t.Fatalf("rolled cell = %+v", cell)
	}
	if r.TotalMeasure() != c.TotalMeasure() {
		t.Fatal("rollup must conserve total measure")
	}
	if r.NumRows() != c.NumRows() {
		t.Fatal("rollup must keep row provenance")
	}
	if _, err := c.RollUp("bogus"); err == nil {
		t.Fatal("unknown dim should error")
	}
}

func TestRollUpLevel(t *testing.T) {
	c := NewCube(MustSchema("date", "product"))
	_ = c.InsertAll([]Row{
		{Coords: []string{"2014-01-03", "A"}, Measure: 1},
		{Coords: []string{"2014-01-20", "A"}, Measure: 2},
		{Coords: []string{"2014-02-01", "A"}, Measure: 4},
	})
	h := Hierarchy{Dim: "date", Level: "month", Coarsen: func(s string) string {
		if len(s) >= 7 {
			return s[:7]
		}
		return s
	}}
	m, err := c.RollUpLevel(h)
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := m.Lookup("2014-01", "A")
	if !ok || cell.Sum != 3 || cell.Count != 2 {
		t.Fatalf("month cell = %+v", cell)
	}
	if _, err := c.RollUpLevel(Hierarchy{Dim: "nope", Coarsen: h.Coarsen}); err == nil {
		t.Fatal("unknown dim should error")
	}
	if _, err := c.RollUpLevel(Hierarchy{Dim: "date"}); err == nil {
		t.Fatal("nil coarsen should error")
	}
}

func TestDimensionCube(t *testing.T) {
	c := salesCube(t)
	dc, err := c.DimensionCube("product", "time")
	if err != nil {
		t.Fatal(err)
	}
	if !dc.Schema().Equal(MustSchema("product", "time")) {
		t.Fatalf("dc schema = %v", dc.Schema().Dims())
	}
	cell, ok := dc.Lookup("A", "2014")
	if !ok || cell.Sum != 9 {
		t.Fatalf("dc cell = %+v", cell)
	}
	if dc.TotalMeasure() != c.TotalMeasure() || dc.TotalCount() != c.TotalCount() {
		t.Fatal("dimension cube must conserve totals")
	}
	if _, err := c.DimensionCube("zzz"); err == nil {
		t.Fatal("unknown dim should error")
	}
}

func TestPivot(t *testing.T) {
	c := salesCube(t)
	p, err := c.Pivot("product", "time", "region")
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := p.Lookup("A", "2014", "US")
	if !ok || cell.Sum != 9 {
		t.Fatalf("pivot cell = %+v", cell)
	}
	if p.NumCells() != c.NumCells() {
		t.Fatal("pivot must preserve cell count")
	}
	if _, err := c.Pivot("product", "time"); err == nil {
		t.Fatal("wrong arity should error")
	}
	if _, err := c.Pivot("product", "time", "time"); err == nil {
		t.Fatal("repeated dim should error")
	}
	if _, err := c.Pivot("product", "time", "bogus"); err == nil {
		t.Fatal("unknown dim should error")
	}
}

func TestDrillDown(t *testing.T) {
	base := salesCube(t)
	coarse, err := base.DimensionCube("time")
	if err != nil {
		t.Fatal(err)
	}
	fine, err := coarse.DrillDown(base, "region")
	if err != nil {
		t.Fatal(err)
	}
	if !fine.Schema().Equal(MustSchema("time", "region")) {
		t.Fatalf("drilldown schema = %v", fine.Schema().Dims())
	}
	if fine.TotalMeasure() != base.TotalMeasure() {
		t.Fatal("drilldown must conserve measure")
	}
	if _, err := coarse.DrillDown(base, "bogus"); err == nil {
		t.Fatal("unknown extra dim should error")
	}
}

func TestClone(t *testing.T) {
	c := salesCube(t)
	cp := c.Clone()
	if cp.NumCells() != c.NumCells() || cp.NumRows() != c.NumRows() {
		t.Fatal("clone differs")
	}
	_ = cp.Insert(Row{Coords: []string{"2015", "US", "C"}, Measure: 1})
	if c.NumCells() == cp.NumCells() {
		t.Fatal("clone must be independent")
	}
}

func TestStorageBytesGrows(t *testing.T) {
	c := NewCube(MustSchema("k"))
	before := c.StorageBytes()
	for i := 0; i < 100; i++ {
		_ = c.Insert(Row{Coords: []string{fmt.Sprintf("key-%d", i)}, Measure: 1})
	}
	if c.StorageBytes() <= before {
		t.Fatal("storage should grow with cells")
	}
	// Duplicate keys do not grow storage.
	mid := c.StorageBytes()
	for i := 0; i < 100; i++ {
		_ = c.Insert(Row{Coords: []string{fmt.Sprintf("key-%d", i)}, Measure: 1})
	}
	if c.StorageBytes() != mid {
		t.Fatal("aggregating into existing cells should not grow storage")
	}
}

// Property: any dimension cube conserves total measure and count, and has
// at most as many cells as the base.
func TestDimensionCubeConservationProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := stats.NewRand(seed)
		c := NewCube(MustSchema("a", "b", "c"))
		n := int(nRaw)%200 + 1
		for i := 0; i < n; i++ {
			_ = c.Insert(Row{
				Coords: []string{
					fmt.Sprintf("a%d", rng.Intn(5)),
					fmt.Sprintf("b%d", rng.Intn(5)),
					fmt.Sprintf("c%d", rng.Intn(5)),
				},
				Measure: rng.Float64(),
			})
		}
		dc, err := c.DimensionCube("b")
		if err != nil {
			return false
		}
		return math.Abs(dc.TotalMeasure()-c.TotalMeasure()) < 1e-6 &&
			dc.TotalCount() == c.TotalCount() &&
			dc.NumCells() <= c.NumCells()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: slice partitions the cube — summing slices over all observed
// values of a dimension reproduces the total measure.
func TestSlicePartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRand(seed)
		c := NewCube(MustSchema("x", "y"))
		vals := []string{"p", "q", "r"}
		for i := 0; i < 100; i++ {
			_ = c.Insert(Row{
				Coords:  []string{vals[rng.Intn(3)], fmt.Sprintf("y%d", rng.Intn(10))},
				Measure: rng.Float64(),
			})
		}
		var total float64
		for _, v := range vals {
			s, err := c.Slice("x", v)
			if err != nil {
				return false
			}
			total += s.TotalMeasure()
		}
		return math.Abs(total-c.TotalMeasure()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
