package olap

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"bohr/internal/obs"
)

// Counter names the cube-set cache registers on an attached collector.
// They flow into core.Report via the metrics snapshot.
const (
	CounterCubeCacheHits   = "olap.cubeset.hits"
	CounterCubeCacheMisses = "olap.cubeset.misses"
)

// QueryTypeID names one query type: the set of attributes a class of
// recurring queries accesses (§4.1). Two queries over the same attributes
// are the same type and share one dimension cube.
type QueryTypeID string

// QueryTypeFor derives the canonical ID for an attribute set: sorted,
// comma-joined dimension names.
func QueryTypeFor(dims []string) QueryTypeID {
	cp := append([]string(nil), dims...)
	sort.Strings(cp)
	return QueryTypeID(strings.Join(cp, ","))
}

// CubeSet manages the base OLAP cube of one dataset at one site plus the
// materialized dimension cubes for each registered query type. New data
// generated while a query is running are buffered; the dimension cube the
// incoming query needs is updated eagerly, the others lazily in the
// background (§4.1), which FlushBackground models.
//
// The derived cubes double as a versioned memo: each remembers the base
// cube's generation it was built at, and Prepare returns it without any
// work when the generation still matches and no rows are buffered — the
// recurring-round cache of PR 4. Hits and misses are counted, and
// reported through an attached obs.Collector when one is set.
type CubeSet struct {
	mu      sync.Mutex
	base    *Cube
	dims    map[QueryTypeID][]string
	derived map[QueryTypeID]*Cube
	pending map[QueryTypeID][]Row  // rows not yet folded into a derived cube
	builtAt map[QueryTypeID]uint64 // base generation each derived cube reflects
	hits    uint64
	misses  uint64
	col     *obs.Collector
}

// NewCubeSet creates a cube set over the given base schema.
func NewCubeSet(schema *Schema) *CubeSet {
	return &CubeSet{
		base:    NewCube(schema),
		dims:    make(map[QueryTypeID][]string),
		derived: make(map[QueryTypeID]*Cube),
		pending: make(map[QueryTypeID][]Row),
		builtAt: make(map[QueryTypeID]uint64),
	}
}

// AttachObs routes the cache's hit/miss counters to a collector (nil
// detaches). Counters are registered immediately so they appear in the
// metrics snapshot even before the first Prepare.
func (cs *CubeSet) AttachObs(col *obs.Collector) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.col = col
	col.Count(CounterCubeCacheHits, 0)
	col.Count(CounterCubeCacheMisses, 0)
}

// CacheStats reports how many Prepare calls were served straight from a
// current dimension cube (hits) versus had to fold or rebuild (misses).
func (cs *CubeSet) CacheStats() (hits, misses uint64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.hits, cs.misses
}

// Base returns the base cube. Callers must not mutate it directly;
// use Insert.
func (cs *CubeSet) Base() *Cube {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.base
}

// RegisterQueryType materializes a dimension cube for the attribute set and
// returns its ID. Registering an existing type is a no-op.
func (cs *CubeSet) RegisterQueryType(dims []string) (QueryTypeID, error) {
	id := QueryTypeFor(dims)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, ok := cs.derived[id]; ok {
		return id, nil
	}
	dc, err := cs.base.DimensionCube(dims...)
	if err != nil {
		return "", fmt.Errorf("olap: register query type: %w", err)
	}
	cs.dims[id] = append([]string(nil), dims...)
	cs.derived[id] = dc
	cs.builtAt[id] = cs.base.Generation()
	return id, nil
}

// QueryTypes returns the registered query type IDs in sorted order.
func (cs *CubeSet) QueryTypes() []QueryTypeID {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]QueryTypeID, 0, len(cs.derived))
	for id := range cs.derived {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Insert adds new raw rows: the base cube is updated immediately while
// every materialized dimension cube only gets the rows buffered, to be
// folded in by an eager Prepare (for the query type about to run) or by
// FlushBackground.
func (cs *CubeSet) Insert(rows ...Row) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for i, r := range rows {
		if err := cs.base.Insert(r); err != nil {
			return fmt.Errorf("olap: cubeset insert row %d: %w", i, err)
		}
	}
	for id := range cs.derived {
		cs.pending[id] = append(cs.pending[id], rows...)
	}
	return nil
}

// Prepare eagerly folds the pending rows into the dimension cube of one
// query type — what Bohr does for the cube "used by the coming query" —
// and returns that cube. When nothing changed since the cube was last
// brought current (no buffered rows, base generation unchanged) the
// stored cube is returned as-is and counted as a cache hit.
func (cs *CubeSet) Prepare(id QueryTypeID) (*Cube, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.prepareLocked(id)
}

func (cs *CubeSet) prepareLocked(id QueryTypeID) (*Cube, error) {
	dc, ok := cs.derived[id]
	if !ok {
		return nil, fmt.Errorf("olap: prepare: unknown query type %q", id)
	}
	rows := cs.pending[id]
	if len(rows) == 0 && cs.builtAt[id] == cs.base.Generation() {
		cs.hits++
		cs.col.Count(CounterCubeCacheHits, 1)
		return dc, nil
	}
	cs.misses++
	cs.col.Count(CounterCubeCacheMisses, 1)
	if len(rows) > 0 {
		// Incremental maintenance: the pending buffer is exactly the
		// base-cube delta since builtAt, so folding it brings the
		// derived cube back to the current generation.
		dims := cs.dims[id]
		srcIdx := make([]int, len(dims))
		for i, d := range dims {
			srcIdx[i] = cs.base.Schema().Index(d)
		}
		for _, r := range rows {
			coords := make([]string, len(dims))
			for i, si := range srcIdx {
				coords[i] = r.Coords[si]
			}
			dc.add(coords, r.Measure, 1)
			dc.rows++
		}
		cs.pending[id] = nil
	} else {
		// Generation moved without buffered rows (a future direct-base
		// mutation path): rebuild from the base cube, the always-correct
		// fallback the generation key exists to guard.
		nb, err := cs.base.DimensionCube(cs.dims[id]...)
		if err != nil {
			return nil, fmt.Errorf("olap: prepare: %w", err)
		}
		*dc = *nb
	}
	cs.builtAt[id] = cs.base.Generation()
	return dc, nil
}

// FlushBackground folds pending rows into every dimension cube, modeling
// the paper's background update of the cubes other queries use. It returns
// the number of cubes that had pending work.
func (cs *CubeSet) FlushBackground() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	n := 0
	for id := range cs.derived {
		if len(cs.pending[id]) > 0 {
			n++
			// prepareLocked cannot fail for a registered id.
			if _, err := cs.prepareLocked(id); err != nil {
				panic("olap: flush background: " + err.Error())
			}
		}
	}
	return n
}

// PendingRows reports how many buffered rows a query type's cube is behind.
func (cs *CubeSet) PendingRows(id QueryTypeID) int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.pending[id])
}

// StorageBytes returns the combined footprint of the base cube and all
// materialized dimension cubes, for Table 6's storage accounting.
func (cs *CubeSet) StorageBytes() int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	b := cs.base.StorageBytes()
	for _, dc := range cs.derived {
		b += dc.StorageBytes()
	}
	return b
}
