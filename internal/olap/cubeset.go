package olap

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"bohr/internal/cache"
	"bohr/internal/obs"
)

// Counter names the cube-set cache registers on an attached collector.
// They flow into core.Report via the metrics snapshot. The backing
// store additionally registers olap.cubeset.{entries,bytes,evictions}
// level counters; one collector attached to many per-site cube sets
// aggregates them additively.
const (
	CounterCubeCacheHits   = "olap.cubeset.hits"
	CounterCubeCacheMisses = "olap.cubeset.misses"
)

// cubeSetMetricPrefix names the bounded store's level counters.
const cubeSetMetricPrefix = "olap.cubeset"

// QueryTypeID names one query type: the set of attributes a class of
// recurring queries accesses (§4.1). Two queries over the same attributes
// are the same type and share one dimension cube.
type QueryTypeID string

// QueryTypeFor derives the canonical ID for an attribute set: sorted,
// comma-joined dimension names.
func QueryTypeFor(dims []string) QueryTypeID {
	cp := append([]string(nil), dims...)
	sort.Strings(cp)
	return QueryTypeID(strings.Join(cp, ","))
}

// derivedState is one memoized dimension cube plus its maintenance
// state: the rows buffered since it was last brought current and the
// base generation it reflects.
type derivedState struct {
	cube    *Cube
	pending []Row  // rows not yet folded into the cube
	builtAt uint64 // base generation the cube reflects
}

// derivedBytes estimates one derived state's resident size: the cube's
// storage estimate plus the pending-row buffer.
func derivedBytes(id QueryTypeID, st *derivedState) int64 {
	n := int64(len(id)) + 64
	if st == nil {
		return n
	}
	if st.cube != nil {
		n += st.cube.StorageBytes()
	}
	for _, r := range st.pending {
		n += 32
		for _, c := range r.Coords {
			n += int64(len(c))
		}
	}
	return n
}

// CubeSet manages the base OLAP cube of one dataset at one site plus the
// materialized dimension cubes for each registered query type. New data
// generated while a query is running are buffered; the dimension cube the
// incoming query needs is updated eagerly, the others lazily in the
// background (§4.1), which FlushBackground models.
//
// The derived cubes double as a versioned memo: each remembers the base
// cube's generation it was built at, and Prepare returns it without any
// work when the generation still matches and no rows are buffered — the
// recurring-round cache of PR 4. The memo lives in a bounded store
// (cache.DefaultCaps by default) whose logical clock is the base cube's
// generation: inserts advance it, and cold derived cubes (with their
// pending buffers) are evicted LRU once over capacity. Registration is
// permanent — an evicted query type rebuilds from the base cube on its
// next Prepare, correct by construction since the base always holds
// every row. Hits and misses are counted, and reported through an
// attached obs.Collector when one is set.
type CubeSet struct {
	mu     sync.Mutex
	base   *Cube
	dims   map[QueryTypeID][]string // permanent registry, survives eviction
	store  *cache.Store[QueryTypeID, *derivedState]
	hits   uint64
	misses uint64
	col    *obs.Collector
}

// NewCubeSet creates a cube set over the given base schema, bounded by
// the process-wide default capacities.
func NewCubeSet(schema *Schema) *CubeSet {
	return NewCubeSetSized(schema, cache.DefaultCaps())
}

// NewCubeSetSized creates a cube set with explicit derived-cube capacity
// limits (cache.Unlimited() disables eviction).
func NewCubeSetSized(schema *Schema, caps cache.Caps) *CubeSet {
	return &CubeSet{
		base:  NewCube(schema),
		dims:  make(map[QueryTypeID][]string),
		store: cache.New[QueryTypeID, *derivedState](cubeSetMetricPrefix, caps, nil, derivedBytes),
	}
}

// AttachObs routes the cache's hit/miss and store-level counters to a
// collector (nil detaches). Counters are registered immediately so they
// appear in the metrics snapshot even before the first Prepare; the
// store's current entry/byte levels transfer to the new collector.
func (cs *CubeSet) AttachObs(col *obs.Collector) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.col = col
	col.Count(CounterCubeCacheHits, 0)
	col.Count(CounterCubeCacheMisses, 0)
	cs.store.SetCollector(col)
}

// CacheStats reports how many Prepare calls were served straight from a
// current dimension cube (hits) versus had to fold or rebuild (misses).
func (cs *CubeSet) CacheStats() (hits, misses uint64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.hits, cs.misses
}

// CacheEvictions reports how many derived cubes were evicted over
// capacity.
func (cs *CubeSet) CacheEvictions() uint64 {
	return cs.store.Evictions()
}

// Base returns the base cube. Callers must not mutate it directly;
// use Insert.
func (cs *CubeSet) Base() *Cube {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.base
}

// RegisterQueryType materializes a dimension cube for the attribute set and
// returns its ID. Registering an existing type is a no-op.
func (cs *CubeSet) RegisterQueryType(dims []string) (QueryTypeID, error) {
	id := QueryTypeFor(dims)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, ok := cs.dims[id]; ok {
		return id, nil
	}
	dc, err := cs.base.DimensionCube(dims...)
	if err != nil {
		return "", fmt.Errorf("olap: register query type: %w", err)
	}
	cs.dims[id] = append([]string(nil), dims...)
	cs.store.Put(id, &derivedState{cube: dc, builtAt: cs.base.Generation()})
	return id, nil
}

// QueryTypes returns the registered query type IDs in sorted order.
// Registration is permanent: evicted types still appear here.
func (cs *CubeSet) QueryTypes() []QueryTypeID {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.idsLocked()
}

func (cs *CubeSet) idsLocked() []QueryTypeID {
	out := make([]QueryTypeID, 0, len(cs.dims))
	for id := range cs.dims {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Insert adds new raw rows: the base cube is updated immediately while
// every live materialized dimension cube only gets the rows buffered, to
// be folded in by an eager Prepare (for the query type about to run) or
// by FlushBackground. The store's logical clock then advances to the new
// base generation, which is where over-capacity derived cubes age out.
func (cs *CubeSet) Insert(rows ...Row) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for i, r := range rows {
		if err := cs.base.Insert(r); err != nil {
			return fmt.Errorf("olap: cubeset insert row %d: %w", i, err)
		}
	}
	for _, id := range cs.idsLocked() {
		st, ok := cs.store.Peek(id)
		if !ok {
			continue // evicted: rebuilt from base on next Prepare
		}
		st.pending = append(st.pending, rows...)
		cs.store.Put(id, st) // refresh the size estimate
	}
	cs.store.AdvanceTo(cs.base.Generation())
	return nil
}

// InsertBatch folds a batch of raw rows in one step — the streaming-
// ingest entry point, where arrivals are large and skewed. It differs
// from Insert in three ways: rows are validated up front so a bad row
// leaves the set untouched (all-or-nothing, which is what lets the
// ingest pipeline reject a batch cleanly instead of half-applying it);
// duplicate coordinates within the batch are pre-aggregated so the base
// cube sees one merge per distinct cell rather than one per record; and
// the store's logical clock advances once for the whole batch. Dimension
// cubes still buffer the raw rows, preserving Prepare's incremental
// fold and exact row accounting.
func (cs *CubeSet) InsertBatch(rows []Row) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for i, r := range rows {
		if len(r.Coords) != cs.base.schema.NumDims() {
			return fmt.Errorf("olap: cubeset batch row %d: has %d coords, schema has %d dims",
				i, len(r.Coords), cs.base.schema.NumDims())
		}
		for j, v := range r.Coords {
			if strings.ContainsRune(v, sep) {
				return fmt.Errorf("olap: cubeset batch row %d: coord %d contains reserved separator", i, j)
			}
		}
	}
	// Pre-aggregate per distinct cell in first-seen order, so the base
	// cube's insertion-order cell walk stays deterministic for a given
	// batch.
	type agg struct {
		coords []string
		sum    float64
		count  int
	}
	byKey := make(map[string]*agg, len(rows))
	var order []*agg
	for _, r := range rows {
		k := key(r.Coords)
		a, ok := byKey[k]
		if !ok {
			a = &agg{coords: r.Coords}
			byKey[k] = a
			order = append(order, a)
		}
		a.sum += r.Measure
		a.count++
	}
	for _, a := range order {
		cs.base.add(a.coords, a.sum, a.count)
	}
	cs.base.rows += len(rows)
	for _, id := range cs.idsLocked() {
		st, ok := cs.store.Peek(id)
		if !ok {
			continue // evicted: rebuilt from base on next Prepare
		}
		st.pending = append(st.pending, rows...)
		cs.store.Put(id, st) // refresh the size estimate
	}
	cs.store.AdvanceTo(cs.base.Generation())
	return nil
}

// Prepare eagerly folds the pending rows into the dimension cube of one
// query type — what Bohr does for the cube "used by the coming query" —
// and returns that cube. When nothing changed since the cube was last
// brought current (no buffered rows, base generation unchanged) the
// stored cube is returned as-is and counted as a cache hit. An evicted
// type rebuilds its cube from the base and counts as a miss.
func (cs *CubeSet) Prepare(id QueryTypeID) (*Cube, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.prepareLocked(id)
}

func (cs *CubeSet) prepareLocked(id QueryTypeID) (*Cube, error) {
	dims, registered := cs.dims[id]
	if !registered {
		return nil, fmt.Errorf("olap: prepare: unknown query type %q", id)
	}
	st, live := cs.store.Get(id)
	if live && len(st.pending) == 0 && st.builtAt == cs.base.Generation() {
		cs.hits++
		cs.col.Count(CounterCubeCacheHits, 1)
		return st.cube, nil
	}
	cs.misses++
	cs.col.Count(CounterCubeCacheMisses, 1)
	switch {
	case live && len(st.pending) > 0:
		// Incremental maintenance: the pending buffer is exactly the
		// base-cube delta since builtAt, so folding it brings the
		// derived cube back to the current generation.
		srcIdx := make([]int, len(dims))
		for i, d := range dims {
			srcIdx[i] = cs.base.Schema().Index(d)
		}
		for _, r := range st.pending {
			coords := make([]string, len(dims))
			for i, si := range srcIdx {
				coords[i] = r.Coords[si]
			}
			st.cube.add(coords, r.Measure, 1)
			st.cube.rows++
		}
		st.pending = nil
	case live:
		// Generation moved without buffered rows (a future direct-base
		// mutation path): rebuild from the base cube, the always-correct
		// fallback the generation key exists to guard.
		nb, err := cs.base.DimensionCube(dims...)
		if err != nil {
			return nil, fmt.Errorf("olap: prepare: %w", err)
		}
		*st.cube = *nb
	default:
		// Evicted: rebuild from the base cube, which holds every row.
		nb, err := cs.base.DimensionCube(dims...)
		if err != nil {
			return nil, fmt.Errorf("olap: prepare: %w", err)
		}
		st = &derivedState{cube: nb}
	}
	st.builtAt = cs.base.Generation()
	cs.store.Put(id, st)
	return st.cube, nil
}

// FlushBackground folds pending rows into every dimension cube, modeling
// the paper's background update of the cubes other queries use. It returns
// the number of cubes that had pending work.
func (cs *CubeSet) FlushBackground() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	n := 0
	for _, id := range cs.idsLocked() {
		st, ok := cs.store.Peek(id)
		if !ok || len(st.pending) == 0 {
			continue
		}
		n++
		// prepareLocked cannot fail for a live registered id.
		if _, err := cs.prepareLocked(id); err != nil {
			panic("olap: flush background: " + err.Error())
		}
	}
	return n
}

// PendingRows reports how many buffered rows a query type's cube is
// behind. An evicted type has no buffer — it reports zero and rebuilds
// in full on its next Prepare.
func (cs *CubeSet) PendingRows(id QueryTypeID) int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	st, ok := cs.store.Peek(id)
	if !ok {
		return 0
	}
	return len(st.pending)
}

// StorageBytes returns the combined footprint of the base cube and all
// live materialized dimension cubes, for Table 6's storage accounting.
func (cs *CubeSet) StorageBytes() int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	b := cs.base.StorageBytes()
	cs.store.Range(func(_ QueryTypeID, st *derivedState) bool {
		b += st.cube.StorageBytes()
		return true
	})
	return b
}
