package olap

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// QueryTypeID names one query type: the set of attributes a class of
// recurring queries accesses (§4.1). Two queries over the same attributes
// are the same type and share one dimension cube.
type QueryTypeID string

// QueryTypeFor derives the canonical ID for an attribute set: sorted,
// comma-joined dimension names.
func QueryTypeFor(dims []string) QueryTypeID {
	cp := append([]string(nil), dims...)
	sort.Strings(cp)
	return QueryTypeID(strings.Join(cp, ","))
}

// CubeSet manages the base OLAP cube of one dataset at one site plus the
// materialized dimension cubes for each registered query type. New data
// generated while a query is running are buffered; the dimension cube the
// incoming query needs is updated eagerly, the others lazily in the
// background (§4.1), which FlushBackground models.
type CubeSet struct {
	mu      sync.Mutex
	base    *Cube
	dims    map[QueryTypeID][]string
	derived map[QueryTypeID]*Cube
	pending map[QueryTypeID][]Row // rows not yet folded into a derived cube
}

// NewCubeSet creates a cube set over the given base schema.
func NewCubeSet(schema *Schema) *CubeSet {
	return &CubeSet{
		base:    NewCube(schema),
		dims:    make(map[QueryTypeID][]string),
		derived: make(map[QueryTypeID]*Cube),
		pending: make(map[QueryTypeID][]Row),
	}
}

// Base returns the base cube. Callers must not mutate it directly;
// use Insert.
func (cs *CubeSet) Base() *Cube {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.base
}

// RegisterQueryType materializes a dimension cube for the attribute set and
// returns its ID. Registering an existing type is a no-op.
func (cs *CubeSet) RegisterQueryType(dims []string) (QueryTypeID, error) {
	id := QueryTypeFor(dims)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if _, ok := cs.derived[id]; ok {
		return id, nil
	}
	dc, err := cs.base.DimensionCube(dims...)
	if err != nil {
		return "", fmt.Errorf("olap: register query type: %w", err)
	}
	cs.dims[id] = append([]string(nil), dims...)
	cs.derived[id] = dc
	return id, nil
}

// QueryTypes returns the registered query type IDs in sorted order.
func (cs *CubeSet) QueryTypes() []QueryTypeID {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	out := make([]QueryTypeID, 0, len(cs.derived))
	for id := range cs.derived {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Insert adds new raw rows: the base cube is updated immediately while
// every materialized dimension cube only gets the rows buffered, to be
// folded in by an eager Prepare (for the query type about to run) or by
// FlushBackground.
func (cs *CubeSet) Insert(rows ...Row) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for i, r := range rows {
		if err := cs.base.Insert(r); err != nil {
			return fmt.Errorf("olap: cubeset insert row %d: %w", i, err)
		}
	}
	for id := range cs.derived {
		cs.pending[id] = append(cs.pending[id], rows...)
	}
	return nil
}

// Prepare eagerly folds the pending rows into the dimension cube of one
// query type — what Bohr does for the cube "used by the coming query" —
// and returns that cube.
func (cs *CubeSet) Prepare(id QueryTypeID) (*Cube, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.prepareLocked(id)
}

func (cs *CubeSet) prepareLocked(id QueryTypeID) (*Cube, error) {
	dc, ok := cs.derived[id]
	if !ok {
		return nil, fmt.Errorf("olap: prepare: unknown query type %q", id)
	}
	rows := cs.pending[id]
	if len(rows) > 0 {
		dims := cs.dims[id]
		srcIdx := make([]int, len(dims))
		for i, d := range dims {
			srcIdx[i] = cs.base.Schema().Index(d)
		}
		for _, r := range rows {
			coords := make([]string, len(dims))
			for i, si := range srcIdx {
				coords[i] = r.Coords[si]
			}
			dc.add(coords, r.Measure, 1)
			dc.rows++
		}
		cs.pending[id] = nil
	}
	return dc, nil
}

// FlushBackground folds pending rows into every dimension cube, modeling
// the paper's background update of the cubes other queries use. It returns
// the number of cubes that had pending work.
func (cs *CubeSet) FlushBackground() int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	n := 0
	for id := range cs.derived {
		if len(cs.pending[id]) > 0 {
			n++
			// prepareLocked cannot fail for a registered id.
			if _, err := cs.prepareLocked(id); err != nil {
				panic("olap: flush background: " + err.Error())
			}
		}
	}
	return n
}

// PendingRows reports how many buffered rows a query type's cube is behind.
func (cs *CubeSet) PendingRows(id QueryTypeID) int {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return len(cs.pending[id])
}

// StorageBytes returns the combined footprint of the base cube and all
// materialized dimension cubes, for Table 6's storage accounting.
func (cs *CubeSet) StorageBytes() int64 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	b := cs.base.StorageBytes()
	for _, dc := range cs.derived {
		b += dc.StorageBytes()
	}
	return b
}
