package olap

import (
	"fmt"
	"testing"

	"bohr/internal/cache"
	"bohr/internal/obs"
)

// TestCubeSetEvictionRebuilds checks the bounded derived-cube store:
// registration survives eviction, an evicted query type's next Prepare
// rebuilds from the base cube, and the rebuilt cube is identical to one
// that never left the cache.
func TestCubeSetEvictionRebuilds(t *testing.T) {
	rows := []Row{
		{Coords: []string{"u1", "US", "00"}, Measure: 2},
		{Coords: []string{"u2", "JP", "00"}, Measure: 3},
		{Coords: []string{"u1", "US", "01"}, Measure: 5},
	}
	bounded := NewCubeSetSized(MustSchema("url", "country", "hour"), cache.Caps{Entries: 1})
	reference := NewCubeSet(MustSchema("url", "country", "hour"))
	for _, cs := range []*CubeSet{bounded, reference} {
		if err := cs.Insert(rows...); err != nil {
			t.Fatal(err)
		}
		for _, dims := range [][]string{{"url"}, {"country"}, {"hour"}} {
			if _, err := cs.RegisterQueryType(dims); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Inserting advances the store's clock past the registrations and
	// evicts down to the single-entry cap.
	extra := Row{Coords: []string{"u3", "DE", "02"}, Measure: 7}
	if err := bounded.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if err := reference.Insert(extra); err != nil {
		t.Fatal(err)
	}
	if bounded.CacheEvictions() == 0 {
		t.Fatal("no evictions with 3 derived cubes under a 1-entry cap")
	}
	if got := len(bounded.QueryTypes()); got != 3 {
		t.Fatalf("registration must survive eviction: %d types, want 3", got)
	}
	// Every query type — evicted or not — prepares to the same cells as
	// the unbounded reference.
	for _, id := range reference.QueryTypes() {
		want, err := reference.Prepare(id)
		if err != nil {
			t.Fatal(err)
		}
		got, err := bounded.Prepare(id)
		if err != nil {
			t.Fatal(err)
		}
		wc, gc := want.Cells(), got.Cells()
		if len(wc) != len(gc) {
			t.Fatalf("type %q: %d cells vs %d", id, len(gc), len(wc))
		}
		for i := range wc {
			if fmt.Sprintf("%+v", wc[i]) != fmt.Sprintf("%+v", gc[i]) {
				t.Fatalf("type %q cell %d: %+v vs %+v", id, i, gc[i], wc[i])
			}
		}
	}
}

// TestCubeSetBoundedGrowth scripts a long insert/prepare loop against a
// tiny cap and checks the store never settles over it.
func TestCubeSetBoundedGrowth(t *testing.T) {
	col := obs.NewCollector()
	cs := NewCubeSetSized(MustSchema("a", "b"), cache.Caps{Entries: 2})
	cs.AttachObs(col)
	ids := make([]QueryTypeID, 0, 4)
	for _, dims := range [][]string{{"a"}, {"b"}, {"a", "b"}} {
		id, err := cs.RegisterQueryType(dims)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i := 0; i < 30; i++ {
		if err := cs.Insert(Row{Coords: []string{fmt.Sprintf("x%d", i), "y"}, Measure: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := cs.Prepare(ids[i%len(ids)]); err != nil {
			t.Fatal(err)
		}
	}
	snap := col.MetricsSnapshot()
	if lvl := snap.Counters["olap.cubeset.entries"]; lvl > 2 {
		t.Fatalf("entries level %v over the 2-entry cap", lvl)
	}
	if cs.CacheEvictions() == 0 {
		t.Fatal("no evictions across 30 rounds with 3 types under a 2-entry cap")
	}
	if snap.Counters["olap.cubeset.evictions"] != float64(cs.CacheEvictions()) {
		t.Fatalf("evictions counter %v != %d",
			snap.Counters["olap.cubeset.evictions"], cs.CacheEvictions())
	}
}
