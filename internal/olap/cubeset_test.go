package olap

import (
	"sync"
	"testing"
)

func TestQueryTypeForCanonical(t *testing.T) {
	a := QueryTypeFor([]string{"b", "a"})
	b := QueryTypeFor([]string{"a", "b"})
	if a != b {
		t.Fatalf("query type not canonical: %q vs %q", a, b)
	}
	if a != "a,b" {
		t.Fatalf("unexpected id %q", a)
	}
}

func TestCubeSetRegisterAndPrepare(t *testing.T) {
	cs := NewCubeSet(MustSchema("url", "country", "hour"))
	_ = cs.Insert(
		Row{Coords: []string{"u1", "US", "00"}, Measure: 1},
		Row{Coords: []string{"u1", "US", "01"}, Measure: 1},
		Row{Coords: []string{"u2", "JP", "00"}, Measure: 1},
	)
	id, err := cs.RegisterQueryType([]string{"url"})
	if err != nil {
		t.Fatal(err)
	}
	dc, err := cs.Prepare(id)
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := dc.Lookup("u1")
	if !ok || cell.Count != 2 {
		t.Fatalf("url cube cell = %+v", cell)
	}
	// Re-registering is a no-op returning the same ID.
	id2, err := cs.RegisterQueryType([]string{"url"})
	if err != nil || id2 != id {
		t.Fatalf("re-register: %v %v", id2, err)
	}
	if _, err := cs.RegisterQueryType([]string{"nope"}); err == nil {
		t.Fatal("unknown dim should error")
	}
}

func TestCubeSetBufferedInserts(t *testing.T) {
	cs := NewCubeSet(MustSchema("url", "country"))
	idURL, _ := cs.RegisterQueryType([]string{"url"})
	idCty, _ := cs.RegisterQueryType([]string{"country"})

	_ = cs.Insert(Row{Coords: []string{"u1", "US"}, Measure: 1})
	if got := cs.PendingRows(idURL); got != 1 {
		t.Fatalf("pending url rows = %d", got)
	}
	if got := cs.PendingRows(idCty); got != 1 {
		t.Fatalf("pending country rows = %d", got)
	}
	// Base is always current.
	if cs.Base().NumRows() != 1 {
		t.Fatal("base cube must be updated eagerly")
	}
	// Eager prepare folds only the requested cube.
	dc, _ := cs.Prepare(idURL)
	if dc.NumRows() != 1 || cs.PendingRows(idURL) != 0 {
		t.Fatalf("prepare did not fold: rows=%d pending=%d", dc.NumRows(), cs.PendingRows(idURL))
	}
	if cs.PendingRows(idCty) != 1 {
		t.Fatal("other cubes stay buffered")
	}
	// Background flush catches the rest up.
	if n := cs.FlushBackground(); n != 1 {
		t.Fatalf("FlushBackground touched %d cubes, want 1", n)
	}
	if cs.PendingRows(idCty) != 0 {
		t.Fatal("flush should clear pending")
	}
	dcC, _ := cs.Prepare(idCty)
	if _, ok := dcC.Lookup("US"); !ok {
		t.Fatal("country cube missing flushed row")
	}
}

func TestCubeSetPrepareUnknown(t *testing.T) {
	cs := NewCubeSet(MustSchema("a"))
	if _, err := cs.Prepare("nope"); err == nil {
		t.Fatal("unknown query type should error")
	}
}

func TestCubeSetInsertValidation(t *testing.T) {
	cs := NewCubeSet(MustSchema("a", "b"))
	if err := cs.Insert(Row{Coords: []string{"only-one"}}); err == nil {
		t.Fatal("arity error should propagate")
	}
}

func TestCubeSetQueryTypesSorted(t *testing.T) {
	cs := NewCubeSet(MustSchema("a", "b", "c"))
	_, _ = cs.RegisterQueryType([]string{"c"})
	_, _ = cs.RegisterQueryType([]string{"a"})
	_, _ = cs.RegisterQueryType([]string{"b"})
	ids := cs.QueryTypes()
	if len(ids) != 3 || ids[0] != "a" || ids[1] != "b" || ids[2] != "c" {
		t.Fatalf("QueryTypes = %v", ids)
	}
}

func TestCubeSetStorageIncludesDerived(t *testing.T) {
	cs := NewCubeSet(MustSchema("a", "b"))
	_ = cs.Insert(Row{Coords: []string{"x", "y"}, Measure: 1})
	baseOnly := cs.StorageBytes()
	_, _ = cs.RegisterQueryType([]string{"a"})
	if cs.StorageBytes() <= baseOnly {
		t.Fatal("derived cubes should add storage")
	}
}

func TestCubeSetConcurrentInserts(t *testing.T) {
	cs := NewCubeSet(MustSchema("k"))
	id, _ := cs.RegisterQueryType([]string{"k"})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = cs.Insert(Row{Coords: []string{"key"}, Measure: 1})
			}
		}()
	}
	wg.Wait()
	dc, err := cs.Prepare(id)
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := dc.Lookup("key")
	if !ok || cell.Count != 800 {
		t.Fatalf("concurrent inserts lost: %+v", cell)
	}
}
