package olap

import "testing"

// TestInsertBatchMatchesInsert feeds the same rows through Insert and
// InsertBatch and requires identical cube state: the batch path
// pre-aggregates duplicate cells but must not change what any query
// observes.
func TestInsertBatchMatchesInsert(t *testing.T) {
	rows := []Row{
		{Coords: []string{"u1", "US"}, Measure: 2},
		{Coords: []string{"u1", "US"}, Measure: 3}, // duplicate cell
		{Coords: []string{"u2", "JP"}, Measure: 1},
		{Coords: []string{"u1", "JP"}, Measure: 5},
	}
	one := NewCubeSet(MustSchema("url", "country"))
	idOne, _ := one.RegisterQueryType([]string{"url"})
	for _, r := range rows {
		if err := one.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	batch := NewCubeSet(MustSchema("url", "country"))
	idBatch, _ := batch.RegisterQueryType([]string{"url"})
	if err := batch.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}

	if one.Base().NumRows() != batch.Base().NumRows() {
		t.Fatalf("row counts differ: %d vs %d", one.Base().NumRows(), batch.Base().NumRows())
	}
	a, _ := one.Prepare(idOne)
	b, _ := batch.Prepare(idBatch)
	for _, key := range []string{"u1", "u2"} {
		ca, oka := a.Lookup(key)
		cb, okb := b.Lookup(key)
		if oka != okb || ca.Sum != cb.Sum || ca.Count != cb.Count {
			t.Fatalf("cell %q differs: %+v/%v vs %+v/%v", key, ca, oka, cb, okb)
		}
	}
}

// TestInsertBatchAllOrNothing: one invalid row anywhere in the batch
// rejects the whole batch before any state mutates.
func TestInsertBatchAllOrNothing(t *testing.T) {
	cs := NewCubeSet(MustSchema("url", "country"))
	id, _ := cs.RegisterQueryType([]string{"url"})
	gen := cs.Base().Generation()
	err := cs.InsertBatch([]Row{
		{Coords: []string{"u1", "US"}, Measure: 1},
		{Coords: []string{"only-one"}, Measure: 1}, // wrong arity
	})
	if err == nil {
		t.Fatal("batch with a bad row accepted")
	}
	if cs.Base().NumRows() != 0 || cs.Base().Generation() != gen {
		t.Fatalf("rejected batch mutated the base cube: rows=%d", cs.Base().NumRows())
	}
	if cs.PendingRows(id) != 0 {
		t.Fatal("rejected batch left pending derived rows")
	}

	err = cs.InsertBatch([]Row{
		{Coords: []string{"u1", "US\x1fX"}, Measure: 1}, // reserved separator
	})
	if err == nil {
		t.Fatal("reserved separator accepted")
	}
	// Empty batches are no-ops.
	if err := cs.InsertBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestInsertBatchFeedsDerivedCubes: a batch lands in live derived cubes'
// pending buffers exactly like row-at-a-time inserts.
func TestInsertBatchFeedsDerivedCubes(t *testing.T) {
	cs := NewCubeSet(MustSchema("url", "country"))
	id, _ := cs.RegisterQueryType([]string{"country"})
	if err := cs.InsertBatch([]Row{
		{Coords: []string{"u1", "US"}, Measure: 1},
		{Coords: []string{"u2", "US"}, Measure: 2},
		{Coords: []string{"u3", "JP"}, Measure: 3},
	}); err != nil {
		t.Fatal(err)
	}
	if got := cs.PendingRows(id); got != 3 {
		t.Fatalf("pending derived rows = %d, want 3", got)
	}
	dc, err := cs.Prepare(id)
	if err != nil {
		t.Fatal(err)
	}
	cell, ok := dc.Lookup("US")
	if !ok || cell.Sum != 3 || cell.Count != 2 {
		t.Fatalf("US cell = %+v, %v", cell, ok)
	}
}
