package olap

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomCube builds a cube over a 3-dim schema with small value domains
// (to force cell collisions) from n random rows. Returns the cube and the
// rows it was built from.
func randomCube(t *testing.T, rng *rand.Rand, n int) (*Cube, []Row) {
	t.Helper()
	schema := MustSchema("region", "product", "day")
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Coords: []string{
				fmt.Sprintf("r%d", rng.Intn(5)),
				fmt.Sprintf("p%d", rng.Intn(7)),
				fmt.Sprintf("d%d", rng.Intn(11)),
			},
			Measure: rng.Float64() * 100,
		}
	}
	c := NewCube(schema)
	if err := c.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	return c, rows
}

func approxEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(a)+math.Abs(b))
}

// TestRollUpPreservesTotals is a property test: aggregating a dimension
// away must preserve TotalMeasure, TotalCount and NumRows exactly — the
// rows are the same, only the addressing coarsens.
func TestRollUpPreservesTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 10; trial++ {
		c, _ := randomCube(t, rng, 200+rng.Intn(800))
		for _, dim := range c.Schema().Dims() {
			ru, err := c.RollUp(dim)
			if err != nil {
				t.Fatal(err)
			}
			if !approxEq(ru.TotalMeasure(), c.TotalMeasure()) {
				t.Errorf("trial %d rollup %q: measure %v != %v", trial, dim, ru.TotalMeasure(), c.TotalMeasure())
			}
			if ru.TotalCount() != c.TotalCount() {
				t.Errorf("trial %d rollup %q: count %d != %d", trial, dim, ru.TotalCount(), c.TotalCount())
			}
			if ru.NumRows() != c.NumRows() {
				t.Errorf("trial %d rollup %q: rows %d != %d", trial, dim, ru.NumRows(), c.NumRows())
			}
		}
	}
}

// TestSlicePartitionsTotals is a property test: slicing a dimension at
// every one of its observed values partitions the cube — the per-slice
// totals must sum back to the whole.
func TestSlicePartitionsTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 10; trial++ {
		c, _ := randomCube(t, rng, 200+rng.Intn(800))
		for di, dim := range c.Schema().Dims() {
			vals := map[string]bool{}
			for _, cell := range c.Cells() {
				vals[cell.Coords[di]] = true
			}
			var sumMeasure float64
			var sumCount int
			for v := range vals {
				sl, err := c.Slice(dim, v)
				if err != nil {
					t.Fatal(err)
				}
				sumMeasure += sl.TotalMeasure()
				sumCount += sl.TotalCount()
			}
			if !approxEq(sumMeasure, c.TotalMeasure()) {
				t.Errorf("trial %d slice %q: measures sum to %v, cube has %v", trial, dim, sumMeasure, c.TotalMeasure())
			}
			if sumCount != c.TotalCount() {
				t.Errorf("trial %d slice %q: counts sum to %d, cube has %d", trial, dim, sumCount, c.TotalCount())
			}
		}
	}
}

// TestDiceSubsetAndIdentity is a property test: dicing with random value
// subsets never increases totals, and dicing with every observed value of
// every dimension is the identity on totals and cell count.
func TestDiceSubsetAndIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 10; trial++ {
		c, _ := randomCube(t, rng, 200+rng.Intn(800))
		full := map[string][]string{}
		for di, dim := range c.Schema().Dims() {
			seen := map[string]bool{}
			for _, cell := range c.Cells() {
				seen[cell.Coords[di]] = true
			}
			for v := range seen {
				full[dim] = append(full[dim], v)
			}
		}
		id, err := c.Dice(full)
		if err != nil {
			t.Fatal(err)
		}
		if !approxEq(id.TotalMeasure(), c.TotalMeasure()) || id.TotalCount() != c.TotalCount() || id.NumCells() != c.NumCells() {
			t.Errorf("trial %d: full dice not identity: measure %v/%v count %d/%d cells %d/%d",
				trial, id.TotalMeasure(), c.TotalMeasure(), id.TotalCount(), c.TotalCount(), id.NumCells(), c.NumCells())
		}
		partial := map[string][]string{"region": {"r0", "r1"}, "day": {"d0", "d3", "d5"}}
		sub, err := c.Dice(partial)
		if err != nil {
			t.Fatal(err)
		}
		if sub.TotalMeasure() > c.TotalMeasure()+1e-9 || sub.TotalCount() > c.TotalCount() {
			t.Errorf("trial %d: dice grew totals: measure %v > %v or count %d > %d",
				trial, sub.TotalMeasure(), c.TotalMeasure(), sub.TotalCount(), c.TotalCount())
		}
	}
}

// TestDimensionCubePreservesTotals is a property test: projecting onto any
// non-empty dimension subset preserves the totals — every row still lands
// in exactly one projected cell.
func TestDimensionCubePreservesTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	subsets := [][]string{{"region"}, {"day"}, {"region", "day"}, {"product", "region"}}
	for trial := 0; trial < 10; trial++ {
		c, _ := randomCube(t, rng, 200+rng.Intn(800))
		for _, dims := range subsets {
			dc, err := c.DimensionCube(dims...)
			if err != nil {
				t.Fatal(err)
			}
			if !approxEq(dc.TotalMeasure(), c.TotalMeasure()) {
				t.Errorf("trial %d dims %v: measure %v != %v", trial, dims, dc.TotalMeasure(), c.TotalMeasure())
			}
			if dc.TotalCount() != c.TotalCount() {
				t.Errorf("trial %d dims %v: count %d != %d", trial, dims, dc.TotalCount(), c.TotalCount())
			}
		}
	}
}

// TestBuildCubeMatchesSequential is a property test for the pooled
// builder: at widths past 1 it must produce the same cells in the same
// order with identical counts, and sums equal to the sequential reference
// within float tolerance. The row count crosses the pooled-path threshold
// so the chunked fold actually engages.
func TestBuildCubeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	schema := MustSchema("region", "product", "day")
	n := buildGrain*3 + 137 // force multiple chunks plus a ragged tail
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{
			Coords: []string{
				fmt.Sprintf("r%d", rng.Intn(5)),
				fmt.Sprintf("p%d", rng.Intn(7)),
				fmt.Sprintf("d%d", rng.Intn(11)),
			},
			Measure: rng.Float64() * 100,
		}
	}
	ref := NewCube(schema)
	if err := ref.InsertAll(rows); err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{2, 4, 8} {
		got, err := BuildCube(schema, rows, width)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumRows() != ref.NumRows() || got.NumCells() != ref.NumCells() {
			t.Fatalf("width %d: rows/cells %d/%d, want %d/%d", width, got.NumRows(), got.NumCells(), ref.NumRows(), ref.NumCells())
		}
		gc, rc := got.Cells(), ref.Cells()
		for i := range rc {
			if fmt.Sprint(gc[i].Coords) != fmt.Sprint(rc[i].Coords) || gc[i].Count != rc[i].Count {
				t.Fatalf("width %d cell %d: got %v/%d, want %v/%d", width, i, gc[i].Coords, gc[i].Count, rc[i].Coords, rc[i].Count)
			}
			if !approxEq(gc[i].Sum, rc[i].Sum) {
				t.Fatalf("width %d cell %d: sum %v, want %v", width, i, gc[i].Sum, rc[i].Sum)
			}
		}
	}
}
