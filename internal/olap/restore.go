package olap

import (
	"fmt"
	"strings"
)

// ExportCells returns the cube's cells in insertion order as fully
// independent copies — the canonical snapshot form. Cells() sorts by
// descending count, which would scramble the fold order a restore must
// reproduce; insertion order is what makes a restored cube's
// deterministic walks (TotalMeasure, derived cubes) bit-identical to
// the original's.
func (c *Cube) ExportCells() []Cell {
	out := make([]Cell, 0, len(c.sums))
	for row := 0; row < len(c.sums); row++ {
		out = append(out, Cell{
			Coords: c.coordsForRow(row),
			Sum:    c.sums[row],
			Count:  c.counts[row],
		})
	}
	return out
}

// RestoreCube rebuilds a cube from an ExportCells dump: cells are
// re-added in the given order (restoring insertion order) and the raw
// row count is set directly. Duplicate or schema-mismatched cells mean
// the dump is malformed and are rejected.
func RestoreCube(schema *Schema, cells []Cell, rows int) (*Cube, error) {
	out := NewCube(schema)
	for i, cell := range cells {
		if len(cell.Coords) != schema.NumDims() {
			return nil, fmt.Errorf("olap: restore cube: cell %d has %d coords, schema has %d dims",
				i, len(cell.Coords), schema.NumDims())
		}
		for j, v := range cell.Coords {
			if strings.ContainsRune(v, sep) {
				return nil, fmt.Errorf("olap: restore cube: cell %d coord %d contains reserved separator", i, j)
			}
		}
		before := out.NumCells()
		out.add(cell.Coords, cell.Sum, cell.Count)
		if out.NumCells() == before {
			return nil, fmt.Errorf("olap: restore cube: duplicate cell %v", cell.Coords)
		}
	}
	out.rows = rows
	return out, nil
}

// RestoreBase swaps the cube set's base cube for one rebuilt from a
// snapshot, invalidating every materialized dimension cube (they
// rebuild from the new base on their next Prepare — the always-correct
// eviction path). Registered query types survive; only their cached
// cubes drop.
func (cs *CubeSet) RestoreBase(cells []Cell, rows int) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	nb, err := RestoreCube(cs.base.schema, cells, rows)
	if err != nil {
		return err
	}
	// Carry the generation forward monotonically: a derived cube built
	// against the old base must never read as current against the new
	// one, and the store's logical clock cannot move backwards.
	nb.gen += cs.base.gen
	cs.base = nb
	for _, id := range cs.idsLocked() {
		cs.store.Delete(id)
	}
	cs.store.AdvanceTo(cs.base.Generation())
	return nil
}
