// Package olap implements the OLAP cube substrate Bohr uses to store raw
// data and to prepare per-query-type dimension cubes for similarity
// checking (§2.2, §4.1 of the paper).
//
// A cube is a sparse multi-dimensional array: each cell is addressed by one
// coordinate per dimension and holds an aggregated measure plus a record
// count. Common OLAP operations — slice, dice, roll up, drill down, pivot —
// produce derived cubes. Dimension cubes (subcubes aggregated down to the
// dimensions one query type needs) are first-class because Bohr's probes
// are built from their largest cells.
package olap

import (
	"fmt"
	"strings"
)

// Schema describes the dimensions of a cube, in order. Dimension names
// must be unique and non-empty.
type Schema struct {
	dims  []string
	index map[string]int
}

// NewSchema builds a schema from ordered dimension names.
func NewSchema(dims ...string) (*Schema, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("olap: schema needs at least one dimension")
	}
	s := &Schema{dims: append([]string(nil), dims...), index: make(map[string]int, len(dims))}
	for i, d := range dims {
		if d == "" {
			return nil, fmt.Errorf("olap: empty dimension name at position %d", i)
		}
		if strings.ContainsRune(d, sep) {
			return nil, fmt.Errorf("olap: dimension name %q contains reserved separator", d)
		}
		if _, dup := s.index[d]; dup {
			return nil, fmt.Errorf("olap: duplicate dimension %q", d)
		}
		s.index[d] = i
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for tests and literals.
func MustSchema(dims ...string) *Schema {
	s, err := NewSchema(dims...)
	if err != nil {
		panic(err)
	}
	return s
}

// Dims returns the ordered dimension names. The slice must not be mutated.
func (s *Schema) Dims() []string { return s.dims }

// NumDims returns the number of dimensions.
func (s *Schema) NumDims() int { return len(s.dims) }

// Index returns the position of a dimension, or -1 if absent.
func (s *Schema) Index(dim string) int {
	if i, ok := s.index[dim]; ok {
		return i
	}
	return -1
}

// Has reports whether the schema contains the dimension.
func (s *Schema) Has(dim string) bool { return s.Index(dim) >= 0 }

// Project returns a new schema containing only the named dimensions, in
// the order given. Every name must exist in s.
func (s *Schema) Project(dims ...string) (*Schema, error) {
	for _, d := range dims {
		if !s.Has(d) {
			return nil, fmt.Errorf("olap: project: unknown dimension %q", d)
		}
	}
	return NewSchema(dims...)
}

// Without returns a new schema with the named dimension removed.
func (s *Schema) Without(dim string) (*Schema, error) {
	i := s.Index(dim)
	if i < 0 {
		return nil, fmt.Errorf("olap: without: unknown dimension %q", dim)
	}
	if len(s.dims) == 1 {
		return nil, fmt.Errorf("olap: without: cannot remove the last dimension %q", dim)
	}
	rest := make([]string, 0, len(s.dims)-1)
	rest = append(rest, s.dims[:i]...)
	rest = append(rest, s.dims[i+1:]...)
	return NewSchema(rest...)
}

// Equal reports whether two schemas have identical dimensions in the same
// order.
func (s *Schema) Equal(o *Schema) bool {
	if len(s.dims) != len(o.dims) {
		return false
	}
	for i := range s.dims {
		if s.dims[i] != o.dims[i] {
			return false
		}
	}
	return true
}

// Row is one raw record: a coordinate per schema dimension plus a numeric
// measure (e.g. a page score, a sale amount).
type Row struct {
	Coords  []string
	Measure float64
}

// Hierarchy coarsens one dimension's coordinates to a higher level, e.g.
// day → month for a time dimension, or city → region. It backs the
// roll-up-by-level operation.
type Hierarchy struct {
	Dim     string
	Level   string
	Coarsen func(coord string) string
}
