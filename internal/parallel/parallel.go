// Package parallel is the bounded worker pool shared by the
// reproduction's hot kernels (olap cube builds, similarity signature
// batches, DIMSUM pair scoring, per-dataset placement planning).
//
// The package exists to make data parallelism safe for a system whose
// headline guarantee is byte-determinism: every primitive here assigns
// work by index and merges results in index order, so the observable
// output of a kernel depends only on its input — never on goroutine
// scheduling. Kernels that fold floating-point values additionally keep
// their reduction tree fixed (chunk boundaries derived from the input
// size, not the width), so even non-associative float sums are
// bit-identical across widths; see olap.BuildCube for the pattern.
//
// Width resolution: an explicit width > 0 wins; width <= 0 means "use
// the process default", which is GOMAXPROCS at init, overridable by the
// BOHR_PARALLEL_WIDTH environment variable or SetDefaultWidth. A
// resolved width of 1 runs the loop inline on the caller's goroutine —
// that path is the reference semantics the pooled path must match.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWidth is the environment variable consulted once at init to seed
// the process-wide default width. The determinism gate in the Makefile
// uses it to force width 1 and width N over identical runs.
const EnvWidth = "BOHR_PARALLEL_WIDTH"

var defaultWidth atomic.Int64

func init() {
	defaultWidth.Store(int64(widthFromEnv()))
}

func widthFromEnv() int {
	w := runtime.GOMAXPROCS(0)
	if s := os.Getenv(EnvWidth); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			w = n
		}
	}
	return w
}

// DefaultWidth returns the process-wide pool width used when a kernel
// passes width <= 0.
func DefaultWidth() int { return int(defaultWidth.Load()) }

// SetDefaultWidth sets the process-wide default width and returns the
// previous value. n <= 0 restores the GOMAXPROCS/env-derived default.
func SetDefaultWidth(n int) int {
	if n <= 0 {
		n = widthFromEnv()
	}
	return int(defaultWidth.Swap(int64(n)))
}

// Resolve maps a caller-supplied width to the effective one: positive
// values pass through, everything else takes the process default.
func Resolve(width int) int {
	if width > 0 {
		return width
	}
	return DefaultWidth()
}

// panicBox carries a recovered panic value from a worker goroutine back
// to the calling goroutine, where it is re-raised.
type panicBox struct {
	mu  sync.Mutex
	val any
	set bool
}

func (p *panicBox) capture(v any) {
	p.mu.Lock()
	if !p.set {
		p.val, p.set = v, true
	}
	p.mu.Unlock()
}

func (p *panicBox) rethrow() {
	if p.set {
		panic(p.val)
	}
}

// ForEach runs fn(i) for i in [0, n) using at most `width` goroutines
// (width <= 0 ⇒ DefaultWidth). It always runs every index — there is no
// early cancellation — and returns the error of the LOWEST failing
// index, matching what a sequential loop that collects the first error
// would report. This makes the returned error independent of goroutine
// scheduling; kernels here treat errors as exceptional, so the cost of
// finishing the loop after a failure is irrelevant. A panic in fn is
// re-raised on the calling goroutine.
func ForEach(width, n int, fn func(i int) error) error {
	width = Resolve(width)
	if n <= 0 {
		return nil
	}
	if width <= 1 || n == 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	if width > n {
		width = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					box.capture(r)
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	box.rethrow()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MapOrdered runs fn(i) for i in [0, n) on the pool and returns the
// results in index order — the deterministic ordered merge every pooled
// kernel builds on. Error and panic semantics match ForEach; on error
// the partial results are returned alongside it (entries whose fn
// failed hold the zero value).
func MapOrdered[T any](width, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(width, n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

// Chunks splits [0, n) into contiguous [lo, hi) half-open ranges of at
// most `grain` elements. Kernels that fold floats chunk with a FIXED
// grain (independent of pool width) so the reduction tree — and hence
// the bit pattern of the folded sums — is identical at every width.
func Chunks(n, grain int) [][2]int {
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = 1
	}
	out := make([][2]int, 0, (n+grain-1)/grain)
	for lo := 0; lo < n; lo += grain {
		hi := lo + grain
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}
