package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestDefaultWidthPositive(t *testing.T) {
	if DefaultWidth() < 1 {
		t.Fatalf("DefaultWidth = %d, want >= 1", DefaultWidth())
	}
}

func TestSetDefaultWidth(t *testing.T) {
	orig := DefaultWidth()
	defer SetDefaultWidth(orig)
	if prev := SetDefaultWidth(3); prev != orig {
		t.Fatalf("SetDefaultWidth returned %d, want previous %d", prev, orig)
	}
	if DefaultWidth() != 3 {
		t.Fatalf("DefaultWidth = %d after SetDefaultWidth(3)", DefaultWidth())
	}
	SetDefaultWidth(0) // restore env/GOMAXPROCS default
	if DefaultWidth() < 1 {
		t.Fatalf("DefaultWidth = %d after reset, want >= 1", DefaultWidth())
	}
}

func TestResolve(t *testing.T) {
	orig := DefaultWidth()
	defer SetDefaultWidth(orig)
	SetDefaultWidth(5)
	if got := Resolve(2); got != 2 {
		t.Fatalf("Resolve(2) = %d", got)
	}
	if got := Resolve(0); got != 5 {
		t.Fatalf("Resolve(0) = %d, want default 5", got)
	}
	if got := Resolve(-1); got != 5 {
		t.Fatalf("Resolve(-1) = %d, want default 5", got)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, width := range []int{1, 2, 4, 16, 100} {
		n := 257
		hits := make([]int32, n)
		err := ForEach(width, n, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("width %d: err = %v", width, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("width %d: index %d ran %d times", width, i, h)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	calls := 0
	if err := ForEach(4, 0, func(int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ForEach(4, -3, func(int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("fn ran %d times for n <= 0", calls)
	}
}

func TestForEachLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, width := range []int{1, 2, 8} {
		err := ForEach(width, 100, func(i int) error {
			switch i {
			case 17:
				return errLow
			case 80:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("width %d: err = %v, want lowest-index error", width, err)
		}
	}
}

func TestMapOrderedDeterministicAcrossWidths(t *testing.T) {
	n := 513
	want, err := MapOrdered(1, n, func(i int) (string, error) {
		return fmt.Sprintf("v%03d", i*i), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{2, 3, 7, 32} {
		got, err := MapOrdered(width, n, func(i int) (string, error) {
			return fmt.Sprintf("v%03d", i*i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("width %d: result[%d] = %q, want %q", width, i, got[i], want[i])
			}
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, width := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "kernel bug" {
					t.Fatalf("width %d: recovered %v, want kernel bug", width, r)
				}
			}()
			_ = ForEach(width, 16, func(i int) error {
				if i == 7 {
					panic("kernel bug")
				}
				return nil
			})
			t.Fatalf("width %d: ForEach returned without panicking", width)
		}()
	}
}

func TestChunksFixedGrain(t *testing.T) {
	cases := []struct {
		n, grain int
		want     [][2]int
	}{
		{0, 4, nil},
		{1, 4, [][2]int{{0, 1}}},
		{8, 4, [][2]int{{0, 4}, {4, 8}}},
		{9, 4, [][2]int{{0, 4}, {4, 8}, {8, 9}}},
		{5, 0, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}},
	}
	for _, c := range cases {
		got := Chunks(c.n, c.grain)
		if len(got) != len(c.want) {
			t.Fatalf("Chunks(%d,%d) = %v, want %v", c.n, c.grain, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Chunks(%d,%d) = %v, want %v", c.n, c.grain, got, c.want)
			}
		}
	}
}

// TestForEachStressRace hammers the pool under the race detector: many
// overlapping ForEach invocations with width > 1 writing disjoint slots.
func TestForEachStressRace(t *testing.T) {
	const rounds = 50
	for r := 0; r < rounds; r++ {
		n := 64 + r
		out := make([]int, n)
		if err := ForEach(8, n, func(i int) error {
			out[i] = i * 3
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*3 {
				t.Fatalf("round %d: out[%d] = %d", r, i, v)
			}
		}
	}
}
