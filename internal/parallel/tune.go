package parallel

import (
	"sync/atomic"
	"time"
)

// minParallelNs is the estimated total job cost below which fanning out
// to the pool is a loss: dispatching chunks costs on the order of a
// microsecond of handoff latency each, so jobs in the tens of
// microseconds finish sooner inline. One worker is also granted per
// minParallelNs of estimated work, so medium jobs ramp up gradually
// instead of jumping straight to full width.
const minParallelNs = 100_000 // 100µs

// Tuner sizes the worker count for one chunked kernel from its measured
// per-chunk cost, replacing fixed "pooled only above N items" size
// thresholds. A kernel keeps one package-level Tuner per call site and
// brackets each pooled run with Workers / Observe.
//
// Determinism: a Tuner decision can only change HOW MANY goroutines run
// a fixed set of chunks, never the chunk boundaries or the merge order —
// callers must derive chunking from the input alone. MapOrdered and
// ForEach produce identical results at every worker count, so the
// timing-driven (and therefore nondeterministic) choice the Tuner makes
// cannot surface in any output byte. In particular a kernel must NOT use
// the Tuner to pick between a sequential and a chunked algorithm with
// different float fold orders; it picks workers=1 and runs the same
// chunks inline.
type Tuner struct {
	// perChunkNs is an EWMA of the measured per-chunk CPU cost in
	// nanoseconds; zero means unmeasured.
	perChunkNs atomic.Uint64
}

// NewTuner returns an unmeasured tuner: the first pooled run goes wide
// (optimistically) and seeds the estimate.
func NewTuner() *Tuner { return &Tuner{} }

// Workers returns how many pool workers should run `chunks` fixed chunks
// at the requested width: capped by both, dropped to 1 when the measured
// per-chunk cost says the whole job is under minParallelNs, and scaled
// to one worker per minParallelNs of estimated work in between. An
// unmeasured kernel runs at full width once and learns from Observe.
func (t *Tuner) Workers(chunks, width int) int {
	if width > chunks {
		width = chunks
	}
	if width <= 1 {
		return 1
	}
	per := t.perChunkNs.Load()
	if per == 0 {
		return width
	}
	total := per * uint64(chunks)
	if total < minParallelNs {
		return 1
	}
	w := int(total / minParallelNs)
	if w < 2 {
		w = 2
	}
	if w > width {
		w = width
	}
	return w
}

// Observe feeds back one run's wall time for `chunks` chunks executed by
// `workers` goroutines. The per-chunk CPU cost is approximated as
// elapsed·workers/chunks — without the workers factor a wide run would
// under-report per-chunk cost by its own parallelism and the tuner would
// oscillate between wide and narrow. Quarter-weight EWMA; concurrent
// updates may lose a sample, which only costs adaptation speed, so a
// plain load/store race is fine.
func (t *Tuner) Observe(chunks, workers int, elapsed time.Duration) {
	if chunks <= 0 || workers <= 0 || elapsed <= 0 {
		return
	}
	sample := uint64(elapsed.Nanoseconds()) * uint64(workers) / uint64(chunks)
	if sample == 0 {
		sample = 1
	}
	old := t.perChunkNs.Load()
	if old == 0 {
		t.perChunkNs.Store(sample)
		return
	}
	t.perChunkNs.Store(old - old/4 + sample/4)
}
