package placement

import (
	"context"
	"testing"

	"bohr/internal/engine"
	"bohr/internal/lp"
	"bohr/internal/workload"
)

func TestTensorToMoves(t *testing.T) {
	sts := []*DatasetStats{{Name: "a"}}
	tensor := [][][]float64{{
		{0, 5, 0},
		{0, 0, 1e-9}, // below threshold: dropped
		{2, 0, 0},
	}}
	moves := tensorToMoves(sts, tensor)
	if len(moves) != 2 {
		t.Fatalf("moves = %+v", moves)
	}
	if moves[0].Src != 0 || moves[0].Dst != 1 || moves[0].MB != 5 {
		t.Fatalf("move 0 = %+v", moves[0])
	}
	if moves[1].Src != 2 || moves[1].Dst != 0 || moves[1].MB != 2 {
		t.Fatalf("move 1 = %+v", moves[1])
	}
}

func TestProfileVolumesMatchesEngine(t *testing.T) {
	c, w := testSetup(t, workload.BigDataScan, false)
	plan := &Plan{movers: map[string]engine.Mover{}}
	f, err := profileVolumes(c, w, plan, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != len(w.Datasets) {
		t.Fatalf("datasets = %d", len(f))
	}
	// With no moves the profile equals a plain run's intermediate volumes.
	res, err := c.Run(context.Background(), engine.JobConfig{Query: w.Datasets[0].DominantQuery().Query})
	if err != nil {
		t.Fatal(err)
	}
	for i := range f[0] {
		if d := f[0][i] - res.IntermediateMBPerSite[i]; d > 1e-9 || d < -1e-9 {
			t.Fatalf("site %d profiled %v vs realized %v", i, f[0][i], res.IntermediateMBPerSite[i])
		}
	}
	// profileVolumes must not mutate the real cluster.
	before := len(c.Data[0].Records(w.Datasets[0].Name))
	moves := []engine.MoveSpec{{Dataset: w.Datasets[0].Name, Src: 0, Dst: 1, MB: 0.01}}
	plan.movers[w.Datasets[0].Name] = engine.RandomMover{}
	if _, err := profileVolumes(c, w, plan, moves, 1); err != nil {
		t.Fatal(err)
	}
	if len(c.Data[0].Records(w.Datasets[0].Name)) != before {
		t.Fatal("profiling mutated the cluster")
	}
}

func TestCalibrateIncomingScalesEstimates(t *testing.T) {
	in := &lp.PlacementInput{
		Sites: 2, Datasets: 1,
		Input:     [][]float64{{100, 50}},
		Reduction: []float64{1},
		SelfSim:   [][]float64{{0, 0}},
		CrossSim:  [][][]float64{{{0, 0.8}, {0.8, 0}}},
		Up:        []float64{10, 10},
		Down:      []float64{10, 10},
		Lag:       30,
	}
	sts := []*DatasetStats{{Name: "a"}}
	tensor := [][][]float64{{{0, 40}, {0, 0}}}
	// Prediction: site 1 keeps 50 + incoming 40×0.2 = 58. Pretend reality
	// measured 66 (incoming combined at half the predicted rate).
	fReal := [][]float64{{60, 66}}
	if !calibrateIncoming(in, sts, tensor, fReal) {
		t.Fatal("calibration should report a change")
	}
	// Un-combined incoming fraction doubled: 0.2 → 0.4 ⇒ S = 0.6.
	if got := in.CrossSim[0][0][1]; got < 0.55 || got > 0.65 {
		t.Fatalf("calibrated cross-sim = %v, want ≈0.6", got)
	}
	// A second pass with matching reality reports no change.
	fPred := in.ShuffleVolumes(tensor)
	if calibrateIncoming(in, sts, tensor, fPred) {
		t.Fatal("matching predictions should not re-calibrate")
	}
}

func TestCalibrateIncomingSkipsNonReceivers(t *testing.T) {
	in := &lp.PlacementInput{
		Sites: 2, Datasets: 1,
		Input:     [][]float64{{100, 50}},
		Reduction: []float64{1},
		SelfSim:   [][]float64{{0, 0}},
		CrossSim:  [][][]float64{{{0, 0.8}, {0.8, 0}}},
		Up:        []float64{10, 10},
		Down:      []float64{10, 10},
	}
	sts := []*DatasetStats{{Name: "a"}}
	zero := [][][]float64{{{0, 0}, {0, 0}}}
	if calibrateIncoming(in, sts, zero, [][]float64{{100, 50}}) {
		t.Fatal("no movement means nothing to calibrate")
	}
	if in.CrossSim[0][0][1] != 0.8 {
		t.Fatal("estimates must be untouched without movement")
	}
}

func TestPlannedTimeRanksPlans(t *testing.T) {
	c, w := testSetup(t, workload.BigDataScan, false)
	plan := &Plan{movers: map[string]engine.Mover{}}
	for _, ds := range w.Datasets {
		plan.movers[ds.Name] = engine.RandomMover{}
	}
	tNone, err := plannedTime(c, c.Top, w, plan, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tNone <= 0 {
		t.Fatalf("no-move plan time = %v", tNone)
	}
	// A plan that piles half of every fast site's data onto the slowest
	// site must profile strictly worse than doing nothing. (Moving
	// EVERYTHING to one site would legitimately zero the shuffle — only
	// the lag budget prevents that degenerate consolidation in real
	// plans — so the test moves a partial amount.)
	var bad []engine.MoveSpec
	for _, ds := range w.Datasets {
		for src := 1; src < c.N(); src++ {
			half := c.MB(len(c.Data[src].Records(ds.Name))) / 2
			bad = append(bad, engine.MoveSpec{Dataset: ds.Name, Src: src, Dst: 0, MB: half})
		}
	}
	tBad, err := plannedTime(c, c.Top, w, plan, bad, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tBad <= tNone {
		t.Fatalf("pathological plan %v should profile worse than none %v", tBad, tNone)
	}
}

func TestPlannerTopologyJitter(t *testing.T) {
	c, w := testSetup(t, workload.BigDataScan, false)
	// Plans under mild bandwidth estimation noise stay valid and still
	// move data off the slow site.
	plan, err := PlanScheme(Bohr, c, w, Options{Seed: 3, BandwidthJitter: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) == 0 {
		t.Fatal("jittered plan should still move data")
	}
	var sum float64
	for _, f := range plan.TaskFrac {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("task fractions sum %v", sum)
	}
	// Zero jitter plans against the truth.
	top, err := plannerTopology(c.Top, Options{})
	if err != nil || top != c.Top {
		t.Fatalf("no jitter should return the true topology: %v %v", top, err)
	}
	est, err := plannerTopology(c.Top, Options{BandwidthJitter: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if est == c.Top {
		t.Fatal("jitter should produce an estimated topology")
	}
	for i := range est.Sites {
		truth := c.Top.Sites[i].UpMBps
		got := est.Sites[i].UpMBps
		if got < truth*0.6 || got > truth*1.4 {
			t.Fatalf("site %d estimate %v too far from truth %v", i, got, truth)
		}
	}
}
