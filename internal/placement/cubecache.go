package placement

import (
	"math"
	"sync"

	"bohr/internal/cache"
	"bohr/internal/engine"
	"bohr/internal/obs"
	"bohr/internal/olap"
)

// Counter names the planner cube cache registers on an attached
// collector. They flow into core.Report via the metrics snapshot. The
// backing store additionally registers placement.cubecache.{entries,
// bytes,evictions} level counters.
const (
	CounterCubeCacheHits   = "placement.cubecache.hits"
	CounterCubeCacheMisses = "placement.cubecache.misses"
)

// cubeCacheMetricPrefix names the bounded store's level counters.
const cubeCacheMetricPrefix = "placement.cubecache"

// CubeCache memoizes the per-site dominant-dimension cubes ComputeStats
// builds from a cluster snapshot, keyed by (dataset, site, query type)
// and validated by a content hash of the site's stored records. Dynamic
// mode replans every few batches over largely unchanged sites; a valid
// entry skips the full cube rebuild for that site. Cached cubes are
// shared read-only — every consumer (probe construction, scoring) only
// reads, per Cube's concurrency contract. The backing store is bounded
// (cache.DefaultCaps by default) with deterministic LRU eviction;
// drivers advance its logical clock once per placement round via
// Advance. A content-hash mismatch deletes the stale entry immediately
// so a superseded cube's memory is released even if no rebuild follows.
//
// A nil *CubeCache is valid and disables memoization.
type CubeCache struct {
	mu       sync.Mutex
	store    *cache.Store[string, cubeCacheEntry]
	inflight map[string]*cubeFlight
	hits     uint64
	misses   uint64
	col      *obs.Collector
}

type cubeCacheEntry struct {
	hash uint64
	cube *olap.Cube
}

// cubeFlight is one in-progress build other goroutines can wait on.
type cubeFlight struct {
	hash uint64
	wg   sync.WaitGroup
	cube *olap.Cube
	err  error
}

// cubeEntryBytes estimates a cached cube's resident size: the cube's
// own storage estimate plus key and entry overhead.
func cubeEntryBytes(key string, e cubeCacheEntry) int64 {
	n := int64(len(key)) + 64
	if e.cube != nil {
		n += e.cube.StorageBytes()
	}
	return n
}

// NewCubeCache creates a cache bounded by the process-wide default
// capacities. A non-nil collector receives the hit/miss and store-level
// counters (registered immediately at zero).
func NewCubeCache(col *obs.Collector) *CubeCache {
	return NewCubeCacheSized(col, cache.DefaultCaps())
}

// NewCubeCacheSized creates a cache with explicit capacity limits
// (cache.Unlimited() disables eviction).
func NewCubeCacheSized(col *obs.Collector, caps cache.Caps) *CubeCache {
	col.Count(CounterCubeCacheHits, 0)
	col.Count(CounterCubeCacheMisses, 0)
	return &CubeCache{
		store:    cache.New[string, cubeCacheEntry](cubeCacheMetricPrefix, caps, col, cubeEntryBytes),
		inflight: make(map[string]*cubeFlight),
		col:      col,
	}
}

// Advance moves the cache's logical clock one round forward and evicts
// over capacity. Call from sequential driver code at round boundaries.
func (cc *CubeCache) Advance() {
	if cc == nil {
		return
	}
	cc.store.Advance()
}

// Stats reports cumulative cache hits and misses.
func (cc *CubeCache) Stats() (hits, misses uint64) {
	if cc == nil {
		return 0, 0
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.hits, cc.misses
}

// Len reports the number of cached cubes.
func (cc *CubeCache) Len() int {
	if cc == nil {
		return 0
	}
	return cc.store.Len()
}

// Bytes reports the estimated resident bytes of cached cubes.
func (cc *CubeCache) Bytes() int64 {
	if cc == nil {
		return 0
	}
	return cc.store.Bytes()
}

// Evictions reports how many cubes have been evicted over capacity.
func (cc *CubeCache) Evictions() uint64 {
	if cc == nil {
		return 0
	}
	return cc.store.Evictions()
}

// hashRecords fingerprints a site's stored records for one dataset:
// FNV-1a over key bytes and measure bits with length framing. Record
// slices in the engine are deterministic, so an unchanged site hashes
// identically across rounds; any insert, move or reorder changes it.
func hashRecords(recs []engine.KV) uint64 {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for _, r := range recs {
		for i := 0; i < len(r.Key); i++ {
			h ^= uint64(r.Key[i])
			h *= prime64
		}
		h ^= 0x1e
		h *= prime64
		v := math.Float64bits(r.Val)
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// get returns the cached cube for key when its content hash matches. A
// mismatched entry is stale by definition (the site's records changed)
// and is deleted immediately rather than pinned until the next put.
func (cc *CubeCache) get(key string, hash uint64) (*olap.Cube, bool) {
	if cc == nil {
		return nil, false
	}
	e, ok := cc.store.Get(key)
	hit := ok && e.hash == hash
	if ok && !hit {
		cc.store.Delete(key)
	}
	cc.mu.Lock()
	if hit {
		cc.hits++
	} else {
		cc.misses++
	}
	cc.mu.Unlock()
	if hit {
		cc.col.Count(CounterCubeCacheHits, 1)
		return e.cube, true
	}
	cc.col.Count(CounterCubeCacheMisses, 1)
	return nil, false
}

// put stores a freshly built cube under key/hash.
func (cc *CubeCache) put(key string, hash uint64, cube *olap.Cube) {
	if cc == nil {
		return
	}
	cc.store.Put(key, cubeCacheEntry{hash: hash, cube: cube})
}

// GetOrBuild returns the cached cube for key/hash, or builds it exactly
// once under per-key singleflight: concurrent planner goroutines
// missing on the same key wait for the first builder instead of each
// rebuilding the full cube. Hit/miss counters see one lookup per
// caller (waiters missed too — they just share the rebuild cost). A
// flight for a different hash is not joined: the records changed under
// us, so the caller rebuilds for its own snapshot. A nil *CubeCache
// just builds.
func (cc *CubeCache) GetOrBuild(key string, hash uint64, build func() (*olap.Cube, error)) (*olap.Cube, error) {
	if cc == nil {
		return build()
	}
	if cube, ok := cc.get(key, hash); ok {
		return cube, nil
	}
	for {
		cc.mu.Lock()
		if fl, ok := cc.inflight[key]; ok && fl.hash == hash {
			cc.mu.Unlock()
			fl.wg.Wait()
			if fl.err == nil {
				return fl.cube, nil
			}
			// The builder we joined failed; retry as the builder.
			continue
		}
		// No matching flight. A successful builder puts before it
		// deregisters, so flight-absence means any finished build is
		// already visible here — re-check before building ourselves.
		if e, ok := cc.store.Peek(key); ok && e.hash == hash {
			cc.mu.Unlock()
			return e.cube, nil
		}
		fl := &cubeFlight{hash: hash}
		fl.wg.Add(1)
		cc.inflight[key] = fl
		cc.mu.Unlock()

		fl.cube, fl.err = build()
		if fl.err == nil {
			cc.put(key, hash, fl.cube)
		}
		cc.mu.Lock()
		delete(cc.inflight, key)
		cc.mu.Unlock()
		fl.wg.Done()
		if fl.err != nil {
			return nil, fl.err
		}
		return fl.cube, nil
	}
}
