package placement

import (
	"math"
	"sync"

	"bohr/internal/engine"
	"bohr/internal/obs"
	"bohr/internal/olap"
)

// Counter names the planner cube cache registers on an attached
// collector. They flow into core.Report via the metrics snapshot.
const (
	CounterCubeCacheHits   = "placement.cubecache.hits"
	CounterCubeCacheMisses = "placement.cubecache.misses"
)

// CubeCache memoizes the per-site dominant-dimension cubes ComputeStats
// builds from a cluster snapshot, keyed by (dataset, site, query type)
// and validated by a content hash of the site's stored records. Dynamic
// mode replans every few batches over largely unchanged sites; a valid
// entry skips the full cube rebuild for that site. Cached cubes are
// shared read-only — every consumer (probe construction, scoring) only
// reads, per Cube's concurrency contract. There is no eviction — see
// ROADMAP "Open items"; entries are bounded by datasets × sites.
//
// A nil *CubeCache is valid and disables memoization.
type CubeCache struct {
	mu      sync.Mutex
	entries map[string]cubeCacheEntry
	hits    uint64
	misses  uint64
	col     *obs.Collector
}

type cubeCacheEntry struct {
	hash uint64
	cube *olap.Cube
}

// NewCubeCache creates an empty cache. A non-nil collector receives the
// hit/miss counters (registered immediately at zero).
func NewCubeCache(col *obs.Collector) *CubeCache {
	col.Count(CounterCubeCacheHits, 0)
	col.Count(CounterCubeCacheMisses, 0)
	return &CubeCache{entries: make(map[string]cubeCacheEntry), col: col}
}

// Stats reports cumulative cache hits and misses.
func (cc *CubeCache) Stats() (hits, misses uint64) {
	if cc == nil {
		return 0, 0
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.hits, cc.misses
}

// hashRecords fingerprints a site's stored records for one dataset:
// FNV-1a over key bytes and measure bits with length framing. Record
// slices in the engine are deterministic, so an unchanged site hashes
// identically across rounds; any insert, move or reorder changes it.
func hashRecords(recs []engine.KV) uint64 {
	const (
		offset64 uint64 = 14695981039346656037
		prime64  uint64 = 1099511628211
	)
	h := offset64
	for _, r := range recs {
		for i := 0; i < len(r.Key); i++ {
			h ^= uint64(r.Key[i])
			h *= prime64
		}
		h ^= 0x1e
		h *= prime64
		v := math.Float64bits(r.Val)
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	return h
}

// get returns the cached cube for key when its content hash matches.
func (cc *CubeCache) get(key string, hash uint64) (*olap.Cube, bool) {
	if cc == nil {
		return nil, false
	}
	cc.mu.Lock()
	e, ok := cc.entries[key]
	hit := ok && e.hash == hash
	if hit {
		cc.hits++
	} else {
		cc.misses++
	}
	cc.mu.Unlock()
	if hit {
		cc.col.Count(CounterCubeCacheHits, 1)
		return e.cube, true
	}
	cc.col.Count(CounterCubeCacheMisses, 1)
	return nil, false
}

// put stores a freshly built cube under key/hash.
func (cc *CubeCache) put(key string, hash uint64, cube *olap.Cube) {
	if cc == nil {
		return
	}
	cc.mu.Lock()
	cc.entries[key] = cubeCacheEntry{hash: hash, cube: cube}
	cc.mu.Unlock()
}
