package placement

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"bohr/internal/cache"
	"bohr/internal/engine"
	"bohr/internal/obs"
	"bohr/internal/olap"
)

// TestCubeCacheMismatchDeletes is the regression test for the PR 4 bug
// where a content-hash mismatch left the stale entry (and its cube's
// memory) pinned until a later put: the mismatched entry must be gone
// immediately.
func TestCubeCacheMismatchDeletes(t *testing.T) {
	cc := NewCubeCache(obs.NewCollector())
	recs := []engine.KV{{Key: "a|b", Val: 1}}
	cc.put("k", hashRecords(recs), nil)
	if cc.Len() != 1 {
		t.Fatalf("len = %d, want 1", cc.Len())
	}
	changed := []engine.KV{{Key: "a|b", Val: 2}}
	if _, ok := cc.get("k", hashRecords(changed)); ok {
		t.Fatal("stale entry hit")
	}
	if cc.Len() != 0 {
		t.Fatalf("stale entry still resident: len = %d", cc.Len())
	}
}

// TestCubeCacheGetOrBuildSingleflight checks that concurrent misses on
// one key run the build exactly once and everybody gets its result.
func TestCubeCacheGetOrBuildSingleflight(t *testing.T) {
	cc := NewCubeCache(nil)
	schema, err := olap.NewSchema("d")
	if err != nil {
		t.Fatal(err)
	}
	want, err := olap.BuildCube(schema, []olap.Row{{Coords: []string{"x"}, Measure: 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var builds atomic.Int32
	start := make(chan struct{})
	var wg sync.WaitGroup
	results := make([]*olap.Cube, 16)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			cube, err := cc.GetOrBuild("key", 42, func() (*olap.Cube, error) {
				builds.Add(1)
				return want, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = cube
		}(g)
	}
	close(start)
	wg.Wait()
	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
	for g, cube := range results {
		if cube != want {
			t.Fatalf("goroutine %d got a different cube", g)
		}
	}
	// Hit/miss accounting: each caller counts exactly one lookup (a
	// late starter may hit the already-put result), and at least the
	// builder itself missed.
	hits, misses := cc.Stats()
	if hits+misses != 16 || misses < 1 {
		t.Fatalf("hits/misses = %d/%d, want 16 total with >=1 miss", hits, misses)
	}
	// The built cube is cached for the next round.
	if cube, ok := cc.get("key", 42); !ok || cube != want {
		t.Fatal("singleflight result not cached")
	}
}

// TestCubeCacheGetOrBuildError checks a failed build is not cached and
// joined waiters retry as builders rather than inheriting the error
// blindly.
func TestCubeCacheGetOrBuildError(t *testing.T) {
	cc := NewCubeCache(nil)
	boom := errors.New("boom")
	if _, err := cc.GetOrBuild("k", 1, func() (*olap.Cube, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if cc.Len() != 0 {
		t.Fatal("failed build was cached")
	}
	cube, err := cc.GetOrBuild("k", 1, func() (*olap.Cube, error) {
		return nil, nil
	})
	if err != nil || cube != nil {
		t.Fatalf("retry after failure: cube=%v err=%v", cube, err)
	}
}

// TestCubeCacheNilGetOrBuild checks the disabled-cache path.
func TestCubeCacheNilGetOrBuild(t *testing.T) {
	var cc *CubeCache
	n := 0
	for i := 0; i < 2; i++ {
		if _, err := cc.GetOrBuild("k", 1, func() (*olap.Cube, error) { n++; return nil, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if n != 2 {
		t.Fatalf("nil cache memoized: %d builds, want 2", n)
	}
	cc.Advance() // must not panic
}

// TestCubeCacheEviction checks bounded growth under many distinct keys.
func TestCubeCacheEviction(t *testing.T) {
	cc := NewCubeCacheSized(obs.NewCollector(), cache.Caps{Entries: 3})
	for round := 0; round < 8; round++ {
		cc.Advance()
		for i := 0; i < 2; i++ {
			cc.put(fmt.Sprintf("r%d-%d", round, i), uint64(round), nil)
		}
	}
	cc.Advance()
	if cc.Len() > 3 {
		t.Fatalf("len = %d over the 3-entry cap", cc.Len())
	}
	if cc.Evictions() == 0 {
		t.Fatal("no evictions with 16 keys under a 3-entry cap")
	}
}
