package placement

import (
	"testing"

	"bohr/internal/engine"
	"bohr/internal/obs"
)

// TestCubeCacheContentHashValidation pins the memo contract: same key +
// same records is a hit; any record change (value or order) misses and
// the entry is replaced on the next put.
func TestCubeCacheContentHashValidation(t *testing.T) {
	col := obs.NewCollector()
	cc := NewCubeCache(col)
	recs := []engine.KV{{Key: "a|b", Val: 1}, {Key: "c|d", Val: 2}}
	h := hashRecords(recs)

	if _, ok := cc.get("k", h); ok {
		t.Fatal("empty cache reported a hit")
	}
	cc.put("k", h, nil)
	if _, ok := cc.get("k", h); !ok {
		t.Fatal("unchanged records missed")
	}

	changedVal := []engine.KV{{Key: "a|b", Val: 1.5}, {Key: "c|d", Val: 2}}
	if _, ok := cc.get("k", hashRecords(changedVal)); ok {
		t.Fatal("value change still hit")
	}
	reordered := []engine.KV{{Key: "c|d", Val: 2}, {Key: "a|b", Val: 1}}
	if _, ok := cc.get("k", hashRecords(reordered)); ok {
		t.Fatal("reorder still hit")
	}

	hits, misses := cc.Stats()
	if hits != 1 || misses != 3 {
		t.Fatalf("hits=%d misses=%d, want 1/3", hits, misses)
	}
	snap := col.MetricsSnapshot()
	if snap.Counters[CounterCubeCacheHits] != 1 || snap.Counters[CounterCubeCacheMisses] != 3 {
		t.Fatalf("collector counters %v/%v, want 1/3",
			snap.Counters[CounterCubeCacheHits], snap.Counters[CounterCubeCacheMisses])
	}
}

// TestCubeCacheNilSafe checks the disabled-cache path every caller relies
// on: a nil *CubeCache never hits and absorbs puts silently.
func TestCubeCacheNilSafe(t *testing.T) {
	var cc *CubeCache
	if _, ok := cc.get("k", 1); ok {
		t.Fatal("nil cache hit")
	}
	cc.put("k", 1, nil) // must not panic
	if h, m := cc.Stats(); h != 0 || m != 0 {
		t.Fatalf("nil cache stats %d/%d, want 0/0", h, m)
	}
}
