package placement

import (
	"testing"

	"bohr/internal/faults"
	"bohr/internal/workload"
)

func TestPlanSchemeRoutesAroundDeadSite(t *testing.T) {
	c, w := testSetup(t, workload.BigDataScan, false)
	// Site 2 (a fast site that normally attracts tasks) is crashed
	// across the whole planning and query window.
	sched := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.KindSiteCrash, Site: 2, Start: 0, End: 3600},
	}}
	plan, err := PlanScheme(Bohr, c.Clone(), w, Options{Seed: 1, Faults: sched})
	if err != nil {
		t.Fatal(err)
	}
	if plan.TaskFrac[2] > 0.01 {
		t.Errorf("dead site kept task fraction %v, want ≈0", plan.TaskFrac[2])
	}
	var alive float64
	for i, f := range plan.TaskFrac {
		if i != 2 {
			alive += f
		}
	}
	if alive < 0.98 {
		t.Errorf("alive sites hold %v of the tasks, want ≈1", alive)
	}
	// No planned move may target the dead site.
	for _, mv := range plan.Moves {
		if mv.Dst == 2 {
			t.Errorf("planner moved %v MB of %s INTO the dead site", mv.MB, mv.Dataset)
		}
	}
	// The clean planner, by contrast, does use site 2.
	clean, err := PlanScheme(Bohr, c.Clone(), w, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if clean.TaskFrac[2] <= 0.01 {
		t.Skip("clean plan already avoids site 2; degraded comparison is vacuous")
	}
}

func TestWithFaultsOption(t *testing.T) {
	sched := &faults.Schedule{Events: []faults.Event{
		{Kind: faults.KindSiteCrash, Site: 0, Start: 0, End: 1},
	}}
	o := NewOptions(WithFaults(sched))
	if o.Faults != sched {
		t.Fatal("WithFaults did not attach the schedule")
	}
}
