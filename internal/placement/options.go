package placement

import (
	"bohr/internal/faults"
	"bohr/internal/obs"
	"bohr/internal/similarity"
)

// Option is a functional configuration knob for planning. Options build on
// the plain Options struct — both forms work, and NewOptions/With bridge
// them: NewOptions(WithLag(60)) and Options{Lag: 60} are equivalent.
type Option func(*Options)

// NewOptions builds an Options value from functional options. Unset fields
// keep their zero values and are filled with defaults by PlanScheme.
func NewOptions(opts ...Option) Options {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// With returns a copy of the receiver with the given options applied on
// top — the bridge from struct-literal to functional style.
func (o Options) With(opts ...Option) Options {
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithLag sets T, the time between recurring query arrivals (seconds).
func WithLag(t float64) Option { return func(o *Options) { o.Lag = t } }

// WithProbeK sets the total probe record budget per dataset.
func WithProbeK(k int) Option { return func(o *Options) { o.ProbeK = k } }

// WithSeed sets the seed driving random record selection.
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithPaperObjective makes the joint LP use the literal Eq. (1) objective:
// incoming moved data combines at the destination's own rate instead of
// the pairwise probe rate.
func WithPaperObjective() Option { return func(o *Options) { o.PaperObjective = true } }

// WithoutCalibration skips the profiled re-solve loop of the joint
// planner (ablation knob).
func WithoutCalibration() Option { return func(o *Options) { o.DisableCalibration = true } }

// WithBandwidthJitter makes the planner consume estimated bandwidth with
// the given relative noise instead of ground truth (§7 periodic probing).
func WithBandwidthJitter(rel float64) Option { return func(o *Options) { o.BandwidthJitter = rel } }

// WithObs attaches an observability collector that gathers planning phase
// spans (probes, lp, calibrate, move) and metrics.
func WithObs(c *obs.Collector) Option { return func(o *Options) { o.Obs = c } }

// WithFaults attaches a fault schedule: the planner consumes the degraded
// bandwidth view it implies, and the modeled run applies its events in
// modeled time.
func WithFaults(s *faults.Schedule) Option { return func(o *Options) { o.Faults = s } }

// WithCubeCache attaches a shared planning cube cache that persists
// across planning rounds (content-hash validated, bounded LRU).
func WithCubeCache(cc *CubeCache) Option { return func(o *Options) { o.CubeCache = cc } }

// WithSigCache attaches a shared minhash signature cache for the RDD
// assigner that persists across planning rounds (bounded LRU).
func WithSigCache(sc *similarity.SignatureCache) Option { return func(o *Options) { o.SigCache = sc } }
