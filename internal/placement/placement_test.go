package placement

import (
	"context"
	"math"
	"testing"

	"bohr/internal/engine"
	"bohr/internal/stats"
	"bohr/internal/wan"
	"bohr/internal/workload"
)

// testSetup builds a 4-site cluster with one small generated workload.
func testSetup(t *testing.T, kind workload.Kind, locality bool) (*engine.Cluster, *workload.Workload) {
	t.Helper()
	cfg := workload.DefaultConfig(kind)
	cfg.Sites = 4
	cfg.Datasets = 3
	cfg.RowsPerSite = 800
	cfg.KeysPerPool = 120
	cfg.LocalityAware = locality
	w, err := workload.Generate(kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	top, err := wan.NewTopology(
		[]string{"s0", "s1", "s2", "s3"},
		[]float64{4, 10, 20, 20}, []float64{4, 10, 20, 20})
	if err != nil {
		t.Fatal(err)
	}
	c, err := engine.NewCluster(top, 1, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Populate(c); err != nil {
		t.Fatal(err)
	}
	return c, w
}

func TestSchemeStrings(t *testing.T) {
	if len(AllSchemes()) != 6 {
		t.Fatal("six schemes expected")
	}
	for _, s := range AllSchemes() {
		if s.String() == "unknown" {
			t.Fatalf("scheme %d unnamed", s)
		}
	}
	if SchemeID(99).String() != "unknown" {
		t.Fatal("bad scheme should be unknown")
	}
}

func TestSchemeTraits(t *testing.T) {
	if Iridium.usesCubes() || !IridiumC.usesCubes() {
		t.Fatal("cube traits wrong")
	}
	if Iridium.usesSimilarity() || IridiumC.usesSimilarity() {
		t.Fatal("Iridium variants must be similarity-agnostic")
	}
	for _, s := range []SchemeID{BohrSim, BohrJoint, BohrRDD, Bohr} {
		if !s.usesSimilarity() {
			t.Fatalf("%v should use similarity", s)
		}
	}
	if BohrSim.usesJointLP() || !BohrJoint.usesJointLP() || !Bohr.usesJointLP() {
		t.Fatal("joint LP traits wrong")
	}
	if BohrSim.usesRDD() || !BohrRDD.usesRDD() || !Bohr.usesRDD() {
		t.Fatal("RDD traits wrong")
	}
}

func TestComputeStats(t *testing.T) {
	c, w := testSetup(t, workload.BigDataScan, false)
	st, err := ComputeStats(c, w.Datasets[0], 30)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != w.Datasets[0].Name {
		t.Fatalf("name = %q", st.Name)
	}
	if len(st.InputMB) != 4 || len(st.SelfSim) != 4 || len(st.CrossSim) != 4 {
		t.Fatalf("stats shape: %d/%d/%d", len(st.InputMB), len(st.SelfSim), len(st.CrossSim))
	}
	for i, s := range st.SelfSim {
		if s < 0 || s > 1 {
			t.Fatalf("self-sim[%d] = %v", i, s)
		}
		for j, x := range st.CrossSim[i] {
			if x < 0 || x > 1 {
				t.Fatalf("cross-sim[%d][%d] = %v", i, j, x)
			}
		}
	}
	if st.Reduction <= 0 {
		t.Fatalf("reduction = %v", st.Reduction)
	}
	if st.CheckTime <= 0 {
		t.Fatalf("check time = %v", st.CheckTime)
	}
	if st.NumDims != 3 {
		t.Fatalf("dims = %d", st.NumDims)
	}
	if _, err := ComputeStats(c, w.Datasets[0], 0); err == nil {
		t.Fatal("k=0 should error")
	}
}

func TestReductionProfilesUDF(t *testing.T) {
	c, w := testSetup(t, workload.BigDataUDF, false)
	st, err := ComputeStats(c, w.Datasets[0], 30)
	if err != nil {
		t.Fatal(err)
	}
	// The UDF map emits two records per input.
	if math.Abs(st.Reduction-2) > 1e-9 {
		t.Fatalf("UDF reduction = %v, want 2", st.Reduction)
	}
}

func TestPlanSchemeAllSchemes(t *testing.T) {
	c, w := testSetup(t, workload.BigDataScan, false)
	opts := Options{Lag: 30, ProbeK: 30, Seed: 1}
	for _, id := range AllSchemes() {
		plan, err := PlanScheme(id, c, w, opts)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if plan.Scheme != id {
			t.Fatalf("%v: scheme mismatch", id)
		}
		var fracSum float64
		for _, f := range plan.TaskFrac {
			if f < -1e-9 {
				t.Fatalf("%v: negative task fraction", id)
			}
			fracSum += f
		}
		if math.Abs(fracSum-1) > 1e-3 {
			t.Fatalf("%v: task fractions sum %v", id, fracSum)
		}
		if plan.UseCubes != (id != Iridium) {
			t.Fatalf("%v: cube flag wrong", id)
		}
		if (plan.Assigner != nil) != id.usesRDD() {
			t.Fatalf("%v: assigner presence wrong", id)
		}
		if id.usesSimilarity() && plan.CheckTime <= 0 {
			t.Fatalf("%v: similarity scheme needs check time", id)
		}
		if !id.usesSimilarity() && plan.CheckTime != 0 {
			t.Fatalf("%v: agnostic scheme has check time %v", id, plan.CheckTime)
		}
		if plan.LPTime < 0 {
			t.Fatalf("%v: negative LP time", id)
		}
		// Movement must respect lag budgets per site.
		upMB := make([]float64, c.N())
		downMB := make([]float64, c.N())
		for _, sp := range plan.Moves {
			if sp.MB < 0 {
				t.Fatalf("%v: negative move", id)
			}
			upMB[sp.Src] += sp.MB
			downMB[sp.Dst] += sp.MB
		}
		for i := 0; i < c.N(); i++ {
			if upMB[i] > opts.Lag*c.Top.Sites[i].UpMBps+1e-3 {
				t.Fatalf("%v: site %d uploads %v MB over lag budget", id, i, upMB[i])
			}
			if downMB[i] > opts.Lag*c.Top.Sites[i].DownMBps+1e-3 {
				t.Fatalf("%v: site %d downloads %v MB over lag budget", id, i, downMB[i])
			}
		}
	}
}

func TestPlanExecuteMovesData(t *testing.T) {
	c, w := testSetup(t, workload.BigDataScan, false)
	plan, err := PlanScheme(Bohr, c, w, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Moves) == 0 {
		t.Fatal("expected the joint LP to move data off the slow site")
	}
	before := 0
	for i := 0; i < c.N(); i++ {
		before += len(c.Data[i].Records(w.Datasets[0].Name))
	}
	res, err := plan.Execute(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records <= 0 {
		t.Fatal("no records moved")
	}
	after := 0
	for i := 0; i < c.N(); i++ {
		after += len(c.Data[i].Records(w.Datasets[0].Name))
	}
	if before != after {
		t.Fatalf("records not conserved: %d → %d", before, after)
	}
	if res.Duration <= 0 {
		t.Fatal("movement duration missing")
	}
}

func TestJobConfigFor(t *testing.T) {
	c, w := testSetup(t, workload.BigDataScan, false)
	plan, err := PlanScheme(IridiumC, c, w, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := w.Datasets[0].Queries[0].Query
	cfg := plan.JobConfigFor(q)
	if !cfg.CubeInput {
		t.Fatal("cube scheme should read cube input")
	}
	wantLP := plan.LPTime / float64(len(plan.Stats))
	if math.Abs(cfg.ExtraQCT-wantLP) > 1e-12 {
		t.Fatalf("LP time must flow into QCT amortized over datasets: got %v want %v", cfg.ExtraQCT, wantLP)
	}
	planRaw, _ := PlanScheme(Iridium, c, w, Options{Seed: 1})
	if planRaw.JobConfigFor(q).CubeInput {
		t.Fatal("raw scheme should not read cube input")
	}
}

func TestMoverForDefaultsToRandom(t *testing.T) {
	p := &Plan{movers: map[string]engine.Mover{}}
	if _, ok := p.MoverFor("missing").(engine.RandomMover); !ok {
		t.Fatal("unknown dataset should get the random mover")
	}
}

// The headline behaviour: on a workload with real cross-site similarity,
// Bohr must produce less intermediate data than Iridium-C, which in turn
// should not beat Bohr. This is the Figure 8/11 mechanism distilled.
func TestBohrReducesIntermediateVsIridiumC(t *testing.T) {
	base, w := testSetup(t, workload.BigDataScan, false)
	opts := Options{Lag: 30, ProbeK: 30, Seed: 5}

	interFor := func(id SchemeID) float64 {
		c := base.Clone()
		plan, err := PlanScheme(id, c, w, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := plan.Execute(c, 11); err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, ds := range w.Datasets {
			q := ds.DominantQuery().Query
			res, err := c.Run(context.Background(), plan.JobConfigFor(q))
			if err != nil {
				t.Fatal(err)
			}
			total += stats.Sum(res.IntermediateMBPerSite)
		}
		return total
	}
	bohr := interFor(Bohr)
	iridiumC := interFor(IridiumC)
	if bohr >= iridiumC {
		t.Fatalf("Bohr intermediate %v should be below Iridium-C %v", bohr, iridiumC)
	}
}

// Bohr-Sim must also beat Iridium-C (§8.3.1: most of the gain comes from
// data similarity alone). The Facebook workload has fine-grained job-class
// keys, where record choice matters; coarse aggregation keys (country ×
// hour) would make the two schemes indistinguishable at this scale.
func TestBohrSimBeatsIridiumC(t *testing.T) {
	base, w := testSetup(t, workload.Facebook, false)
	opts := Options{Lag: 30, ProbeK: 30, Seed: 3}
	interFor := func(id SchemeID) float64 {
		c := base.Clone()
		plan, err := PlanScheme(id, c, w, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := plan.Execute(c, 4); err != nil {
			t.Fatal(err)
		}
		var total float64
		for _, ds := range w.Datasets {
			res, err := c.Run(context.Background(), plan.JobConfigFor(ds.DominantQuery().Query))
			if err != nil {
				t.Fatal(err)
			}
			total += stats.Sum(res.IntermediateMBPerSite)
		}
		return total
	}
	if sim, irc := interFor(BohrSim), interFor(IridiumC); sim >= irc {
		t.Fatalf("Bohr-Sim %v should be below Iridium-C %v", sim, irc)
	}
}

func TestMovesToTensor(t *testing.T) {
	sts := []*DatasetStats{{Name: "a"}, {Name: "b"}}
	moves := []engine.MoveSpec{
		{Dataset: "a", Src: 0, Dst: 1, MB: 5},
		{Dataset: "a", Src: 0, Dst: 1, MB: 3},
		{Dataset: "b", Src: 1, Dst: 0, MB: 2},
		{Dataset: "zzz", Src: 0, Dst: 1, MB: 9}, // unknown: ignored
		{Dataset: "a", Src: 1, Dst: 1, MB: 9},   // self: ignored
	}
	tns := movesToTensor(2, sts, moves)
	if tns[0][0][1] != 8 || tns[1][1][0] != 2 {
		t.Fatalf("tensor = %v", tns)
	}
	if tns[0][1][1] != 0 {
		t.Fatal("self moves must be ignored")
	}
}

func TestSequentialHeuristicRespectsBudgets(t *testing.T) {
	c, w := testSetup(t, workload.TPCDS, false)
	sts, err := ComputeAllStats(c, w, 30)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Lag: 2, ProbeK: 30}.withDefaults()
	moves := sequentialHeuristic(c.Top, sts, opts, true)
	up := make([]float64, c.N())
	for _, sp := range moves {
		up[sp.Src] += sp.MB
	}
	for i := 0; i < c.N(); i++ {
		if up[i] > opts.Lag*c.Top.Sites[i].UpMBps+1e-6 {
			t.Fatalf("site %d over budget: %v MB in %v s lag", i, up[i], opts.Lag)
		}
	}
}

func TestBottleneckHelper(t *testing.T) {
	f := []float64{100, 10, 10}
	up := []float64{1, 1, 1}
	b, t1, t2 := bottleneck(f, up)
	if b != 0 || t1 != 100 || t2 != 10 {
		t.Fatalf("bottleneck = %d %v %v", b, t1, t2)
	}
}

func TestPickReceiver(t *testing.T) {
	st := &DatasetStats{CrossSim: [][]float64{
		{0, 0.1, 0.9},
		{0.1, 0, 0},
		{0.9, 0, 0},
	}}
	budget := []float64{100, 100, 100}
	up := []float64{5, 10, 10}
	f := []float64{50, 1, 1}
	t1 := f[0] / up[0]
	// Similarity-aware from site 0: site 2 has the similar data.
	if j := pickReceiver(st, 0, t1, f, up, budget, true); j != 2 {
		t.Fatalf("aware receiver = %d, want 2", j)
	}
	// Exhausted budget removes a receiver.
	budget[2] = 0
	if j := pickReceiver(st, 0, t1, f, up, budget, true); j != 1 {
		t.Fatalf("receiver with budget = %d, want 1", j)
	}
	// No receiver available.
	if j := pickReceiver(st, 0, t1, f, up, []float64{0, 0, 0}, true); j != -1 {
		t.Fatalf("no receiver should be -1, got %d", j)
	}
	// A receiver with a slower uplink than the bottleneck is skipped.
	slowUp := []float64{10, 5, 5}
	if j := pickReceiver(st, 0, 5, []float64{50, 1, 1}, slowUp, []float64{100, 100, 100}, true); j != -1 {
		t.Fatalf("slower receivers should be skipped, got %d", j)
	}
}
